package sim

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// TestRunCtxCancellation: a cancelled context aborts the round loop with
// ctx.Err(), and the progress stream can drive the cancellation
// deterministically mid-simulation.
func TestRunCtxCancellation(t *testing.T) {
	jobs := testJobs(t, 20)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := RunCtx(ctx, Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true,
	}); err != context.Canceled || res != nil {
		t.Fatalf("pre-cancelled run: res=%v err=%v, want nil/context.Canceled", res, err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var rounds atomic.Int32
	res, err := RunCtx(ctx2, Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true,
		Progress: func(e core.Event) {
			if rounds.Add(1) == 3 {
				cancel2()
			}
		},
	})
	if err != context.Canceled || res != nil {
		t.Fatalf("mid-flight cancel: res=%v err=%v, want nil/context.Canceled", res, err)
	}
	if got := rounds.Load(); got != 3 {
		t.Fatalf("simulation ran %d rounds after cancellation at round 3", got)
	}
}
