// Command shadowcheck is the repository's shadow gate: it rejects any
// declaration that shadows a context.Context-typed parameter in a
// nested scope. The pattern it exists for: sim.RunCtx once declared
// `ctx := &sched.Context{...}` inside its round loop, shadowing the
// `ctx context.Context` parameter — the cancellation check read the
// right variable only by accident of statement order, and any later
// edit touching the loop could silently stop honouring cancellation.
//
// The check is deliberately narrower than the x/tools shadow analyzer:
// shadowing a cancellation context is never intentional in this tree
// (rename the local instead), while a general shadow lint drowns that
// signal in idiomatic `err :=` noise. It is pure go/ast — no type
// information, no dependencies — so it runs offline, in CI (see
// .github/workflows/ci.yml), and inside `go test ./...` via its own
// package test, which sweeps the whole repository.
//
// It also enforces the repository's clock discipline: scheduling code
// (non-test files under internal/sched, internal/sim and internal/
// server) must never read time directly — time.Now, time.Sleep and
// friends are banned there, so every instant flows through the
// internal/clock interface and a journaled server run replays
// bit-identically on a virtual clock. Test files are exempt (tests
// legitimately sleep waiting for goroutines), as is the rest of the
// tree (internal/clock itself wraps the real clock; internal/store
// backs off with real sleeps).
//
// Usage: go run ./internal/shadowcheck <dir>...
// Exit status 1 means at least one violation was found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var diags []string
	for _, root := range roots {
		ds, err := checkTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// checkTree walks a directory tree and checks every .go file.
func checkTree(root string) ([]string, error) {
	var diags []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		ds, err := checkFile(path)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	})
	return diags, err
}

// Tracking levels for a context-parameter name, relative to the function
// body being walked: an own parameter is reused (not shadowed) by a
// same-scope `:=`, while a name captured from an enclosing function is
// shadowed by any declaration inside the literal, including top-level.
const (
	ownParam = iota + 1
	captured
)

// checkFile parses one file and reports context-parameter shadows.
func checkFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var diags []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		diags = append(diags, fmt.Sprintf("%s: declaration of %q shadows a context.Context parameter", p, name))
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		names := map[string]int{}
		for name := range ctxParams(fn.Type) {
			names[name] = ownParam
		}
		walkBody(fn.Body, names, report)
	}
	if clockBanned(path) {
		diags = append(diags, checkClock(fset, f)...)
	}
	return diags, nil
}

// bannedTimeFuncs are the package-time entry points that read or wait on
// the real clock. Types and constants (time.Duration, time.Second) stay
// legal — the ban is on acquiring instants, not on describing durations.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// clockBanned reports whether a file lives in the clock-disciplined
// zone: scheduling logic whose every instant must come from
// internal/clock so journaled runs replay bit-identically.
func clockBanned(path string) bool {
	p := filepath.ToSlash(path)
	if strings.HasSuffix(p, "_test.go") {
		return false
	}
	for _, zone := range []string{"internal/sched/", "internal/sim/", "internal/server/"} {
		if strings.Contains(p, zone) {
			return true
		}
	}
	return false
}

// checkClock flags direct real-clock reads in a clock-disciplined file.
// Matching is syntactic, like the rest of this tool: any selector on the
// file's `time` import hitting a banned name. A local variable named
// `time` could in principle false-positive; this tree never writes one.
func checkClock(fset *token.FileSet, f *ast.File) []string {
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"time"` {
			continue
		}
		name := "time"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		timeNames[name] = true
	}
	if len(timeNames) == 0 {
		return nil
	}
	var diags []string
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && timeNames[id.Name] && bannedTimeFuncs[sel.Sel.Name] {
			p := fset.Position(sel.Pos())
			diags = append(diags, fmt.Sprintf("%s: %s.%s in scheduling code: take time from internal/clock so journaled runs replay deterministically", p, id.Name, sel.Sel.Name))
		}
		return true
	})
	return diags
}

// ctxParams returns the names of a function's context.Context-typed
// parameters (matched syntactically — the conventional spelling).
func ctxParams(ft *ast.FuncType) map[string]bool {
	names := map[string]bool{}
	if ft.Params == nil {
		return names
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				names[name.Name] = true
			}
		}
	}
	return names
}

// walkBody walks a function's outermost block, where `:=` reuses an own
// parameter (Go forbids a same-scope redeclaration) but still shadows a
// captured name.
func walkBody(body *ast.BlockStmt, names map[string]int, report func(token.Pos, string)) {
	for _, st := range body.List {
		walkStmt(st, names, false, report)
	}
}

// walkStmt inspects one statement. nested reports whether the statement
// sits in a scope below the function's outermost block, where a `:=` of
// any tracked name declares a fresh (shadowing) variable.
func walkStmt(st ast.Stmt, names map[string]int, nested bool, report func(token.Pos, string)) {
	shadows := func(name string) bool {
		lvl, ok := names[name]
		return ok && (nested || lvl == captured)
	}
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			for _, e := range s.Lhs {
				if id, ok := e.(*ast.Ident); ok && shadows(id.Name) {
					report(id.Pos(), id.Name)
				}
			}
		}
		for _, rhs := range s.Rhs {
			walkExpr(rhs, names, report)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if shadows(name.Name) {
						report(name.Pos(), name.Name)
					}
				}
				for _, v := range vs.Values {
					walkExpr(v, names, report)
				}
			}
		}
	case *ast.BlockStmt:
		for _, inner := range s.List {
			walkStmt(inner, names, true, report)
		}
	case *ast.IfStmt:
		walkInit(s.Init, names, report)
		walkExpr(s.Cond, names, report)
		walkStmt(s.Body, names, true, report)
		if s.Else != nil {
			walkStmt(s.Else, names, true, report)
		}
	case *ast.ForStmt:
		walkInit(s.Init, names, report)
		walkExpr(s.Cond, names, report)
		if s.Post != nil {
			walkStmt(s.Post, names, true, report)
		}
		walkStmt(s.Body, names, true, report)
	case *ast.RangeStmt:
		if s.Tok == token.DEFINE {
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && names[id.Name] != 0 {
					report(id.Pos(), id.Name) // range vars always open a new scope
				}
			}
		}
		walkExpr(s.X, names, report)
		walkStmt(s.Body, names, true, report)
	case *ast.SwitchStmt:
		walkInit(s.Init, names, report)
		walkExpr(s.Tag, names, report)
		walkStmt(s.Body, names, true, report)
	case *ast.TypeSwitchStmt:
		walkInit(s.Init, names, report)
		walkStmt(s.Assign, names, true, report)
		walkStmt(s.Body, names, true, report)
	case *ast.SelectStmt:
		walkStmt(s.Body, names, true, report)
	case *ast.CaseClause:
		for _, inner := range s.Body {
			walkStmt(inner, names, true, report)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			walkStmt(s.Comm, names, true, report)
		}
		for _, inner := range s.Body {
			walkStmt(inner, names, true, report)
		}
	case *ast.LabeledStmt:
		walkStmt(s.Stmt, names, nested, report)
	case *ast.ExprStmt:
		walkExpr(s.X, names, report)
	case *ast.GoStmt:
		walkExpr(s.Call, names, report)
	case *ast.DeferStmt:
		walkExpr(s.Call, names, report)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			walkExpr(e, names, report)
		}
	case *ast.SendStmt:
		walkExpr(s.Chan, names, report)
		walkExpr(s.Value, names, report)
	}
}

// walkInit handles the implicit scope of an if/for/switch initializer:
// `if ctx := ...; ...` shadows exactly like a declaration in the body.
func walkInit(st ast.Stmt, names map[string]int, report func(token.Pos, string)) {
	if st != nil {
		walkStmt(st, names, true, report)
	}
}

// walkExpr descends into expressions looking for function literals. A
// literal's tracking set demotes the enclosing function's names to
// captured (any redeclaration inside the literal shadows them), removes
// names the literal rebinds as parameters of a non-context type, and
// adds the literal's own context parameters as own.
func walkExpr(e ast.Expr, names map[string]int, report func(token.Pos, string)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := map[string]int{}
		for name := range names {
			inner[name] = captured
		}
		if lit.Type.Params != nil {
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					delete(inner, name.Name)
				}
			}
		}
		for name := range ctxParams(lit.Type) {
			inner[name] = ownParam
		}
		walkBody(lit.Body, inner, report)
		return false // walkBody descends further
	})
}
