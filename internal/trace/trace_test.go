package trace

import (
	"testing"

	"github.com/sjtu-epcc/arena/internal/model"
)

func gen(t *testing.T, cfg Config) []Job {
	t.Helper()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PhillySixHour(7, []string{"A40", "A10"})
	a, b := gen(t, cfg), gen(t, cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := gen(t, PhillySixHour(1, []string{"A40"}))
	b := gen(t, PhillySixHour(2, []string{"A40"}))
	same := 0
	for i := range a {
		if a[i].SubmitTime == b[i].SubmitTime {
			same++
		}
	}
	if same > len(a)/4 {
		t.Fatalf("%d/%d identical submit times across seeds", same, len(a))
	}
}

func TestJobFieldsValid(t *testing.T) {
	cfg := PhillySixHour(42, []string{"A40", "A10"})
	cfg.DeadlineFraction = 0.3
	jobs := gen(t, cfg)
	if len(jobs) != 244 {
		t.Fatalf("got %d jobs, want 244 (§5.2)", len(jobs))
	}
	ids := map[string]bool{}
	deadlines := 0
	for i, j := range jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %s", j.ID)
		}
		ids[j.ID] = true
		if j.SubmitTime < 0 || j.SubmitTime > cfg.Duration {
			t.Errorf("job %d submit time %v outside trace", i, j.SubmitTime)
		}
		if j.Iterations < 20 {
			t.Errorf("job %d has %d iterations", i, j.Iterations)
		}
		if j.ReqGPUs < 1 || j.ReqGPUs > cfg.MaxGPUs || j.ReqGPUs&(j.ReqGPUs-1) != 0 {
			t.Errorf("job %d requests %d GPUs", i, j.ReqGPUs)
		}
		if j.ReqType != "A40" && j.ReqType != "A10" {
			t.Errorf("job %d requests type %s", i, j.ReqType)
		}
		if j.Priority < 1 || j.Priority > 3 {
			t.Errorf("job %d priority %d", i, j.Priority)
		}
		if j.Workload.GlobalBatch == 0 {
			t.Errorf("job %d has no workload", i)
		}
		if j.Deadline > 0 {
			deadlines++
		}
		if j.TotalSamples() != float64(j.Iterations)*float64(j.Workload.GlobalBatch) {
			t.Errorf("job %d sample accounting wrong", i)
		}
	}
	if deadlines == 0 || deadlines == len(jobs) {
		t.Errorf("deadline fraction not applied: %d/%d", deadlines, len(jobs))
	}
}

func TestSubmitTimesSorted(t *testing.T) {
	jobs := gen(t, PhillyWeek(42, []string{"A100", "A40", "A10", "V100"}, 1000))
	for i := 1; i < len(jobs); i++ {
		if jobs[i].SubmitTime < jobs[i-1].SubmitTime {
			t.Fatal("jobs not sorted by submit time")
		}
	}
}

func TestPhillyLoadShape(t *testing.T) {
	// Fig. 11: low-load prefix (first 3/7), heavy-load suffix (last 4/7).
	jobs := gen(t, PhillyWeek(42, []string{"A40"}, 2000))
	duration := 7.0 * 24 * 3600
	cut := duration * 3 / 7
	early, late := 0, 0
	for _, j := range jobs {
		if j.SubmitTime < cut {
			early++
		} else {
			late++
		}
	}
	if float64(early) > 0.35*float64(len(jobs)) {
		t.Errorf("prefix holds %d of %d jobs; want a clear minority", early, len(jobs))
	}
	if late <= early*2 {
		t.Errorf("suffix (%d) should dominate prefix (%d)", late, early)
	}
}

func TestPAILighterThanHelios(t *testing.T) {
	// PAI thins arrivals towards the end; its median arrival lands earlier.
	helios := gen(t, HeliosDay(42, []string{"A40"}, 500))
	pai := gen(t, PAIDay(42, []string{"A40"}, 500))
	medianOf := func(jobs []Job) float64 { return jobs[len(jobs)/2].SubmitTime }
	if medianOf(pai) >= medianOf(helios) {
		t.Error("PAI median arrival should precede Helios's")
	}
}

func TestLifespanScale(t *testing.T) {
	base := Config{Kind: Helios, Duration: 3600, NumJobs: 200, Seed: 9, GPUTypes: []string{"A40"}, MaxGPUs: 8}
	scaled := base
	scaled.LifespanScale = 2.5
	a, b := gen(t, base), gen(t, scaled)
	var sumA, sumB float64
	for i := range a {
		sumA += float64(a[i].Iterations)
		sumB += float64(b[i].Iterations)
	}
	ratio := sumB / sumA
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("lifespan scaling ratio = %v, want ≈ 2.5", ratio)
	}
}

func TestCustomWorkloads(t *testing.T) {
	only := []model.Workload{{Model: "GPT-1.3B", GlobalBatch: 128}}
	cfg := Config{Kind: PAI, Duration: 3600, NumJobs: 50, Seed: 3, GPUTypes: []string{"A40"}, Workloads: only}
	for _, j := range gen(t, cfg) {
		if j.Workload.Model != "GPT-1.3B" {
			t.Fatalf("unexpected workload %v", j.Workload)
		}
	}
}

func TestDefaultWorkloadsMix(t *testing.T) {
	hasGiant := false
	for _, w := range DefaultWorkloads() {
		if w.Model == "MoE-27B" {
			t.Errorf("default mix should exclude %s (exceeds the 16-GPU cap)", w.Model)
		}
		if w.Model == "GPT-6.7B" {
			hasGiant = true
		}
	}
	if !hasGiant {
		t.Error("default mix should include AP-only giants (GPT-6.7B)")
	}
	// 13 models × 3 batch sizes.
	if len(DefaultWorkloads()) != 39 {
		t.Errorf("default mix has %d workloads, want 39", len(DefaultWorkloads()))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := Generate(Config{Kind: Philly, Duration: 100, NumJobs: 10}); err == nil {
		t.Error("missing GPU types should error")
	}
}
