package hw

// Roofline implements the classic roofline performance model the planner
// relies on (§3.3, Eq. 2): the attainable throughput of a kernel with
// arithmetic intensity I (FLOPs per byte of memory traffic) on a device is
//
//	R(I) = min(PeakFLOPS, I * MemBandwidth)
//
// It depends only on hardware specifications, never on execution — which is
// exactly what makes Arena's execution-free load estimation possible.
func (g GPU) Roofline(intensity float64) float64 {
	if intensity <= 0 {
		// Pure memory traffic: report bandwidth-limited "throughput" of
		// effectively zero FLOPs; callers should use bytes/bandwidth.
		return 0
	}
	bound := intensity * g.MemBandwidth
	if bound < g.PeakFLOPS {
		return bound
	}
	return g.PeakFLOPS
}

// RidgeIntensity returns the arithmetic intensity (FLOPs/byte) at which the
// device transitions from memory-bound to compute-bound: Peak / Bandwidth.
func (g GPU) RidgeIntensity() float64 {
	return g.PeakFLOPS / g.MemBandwidth
}

// IdealKernelTime returns the roofline lower bound for a kernel performing
// flops floating-point operations and moving bytes through memory: the
// larger of the compute-bound and memory-bound times. This is the quantity
// the planner uses as an operator "load" denominator; the execution engine
// layers efficiency curves and overheads on top of it.
func (g GPU) IdealKernelTime(flops, bytes float64) float64 {
	var tc, tm float64
	if g.PeakFLOPS > 0 {
		tc = flops / g.PeakFLOPS
	}
	if g.MemBandwidth > 0 {
		tm = bytes / g.MemBandwidth
	}
	if tc > tm {
		return tc
	}
	return tm
}

// ShapeEfficiency models how much of the roofline a kernel of the given
// total work (FLOPs) actually achieves on this device. Real kernels need
// enough parallel work to fill all SMs and hide memory latency; as
// parallelism strategies slice operators thinner (more TP/DP ways), the
// per-GPU work shrinks and utilization drops — the "diminishing returns"
// phenomenon of §2.2 and Fig. 18.
//
// The curve is work/(work + EffHalfWork) scaled into [floor, ceiling]:
// tiny kernels bottom out near the floor (~25% of roofline), huge kernels
// approach the ceiling (~92%, matching the ~63-70% end-to-end compute
// utilizations reported in the paper once launch overheads stack on top).
func (g GPU) ShapeEfficiency(work float64) float64 {
	const (
		floor   = 0.25
		ceiling = 0.92
	)
	if work <= 0 {
		return floor
	}
	frac := work / (work + g.EffHalfWork)
	return floor + (ceiling-floor)*frac
}
