// Tests of the public facade: the API a downstream user programs against.
package arena_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	arena "github.com/sjtu-epcc/arena"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment quick start must work end to end.
	eng := arena.NewEngine(42)
	graph := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")

	pl := arena.NewPlanner()
	grid := arena.Grid{
		Workload: arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 4, S: 2,
	}
	gp, err := pl.PlanGrid(graph, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !gp.Feasible || gp.Proxy == nil {
		t.Fatal("grid should be feasible")
	}
	res, err := eng.Evaluate(graph, gp.Proxy.Plan, spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fits || res.Throughput <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestCatalogAndClusters(t *testing.T) {
	if len(arena.GPUCatalog()) != 6 {
		t.Error("catalog should have the 6 Table 1 GPUs")
	}
	if arena.ClusterSim().TotalGPUs() != 1280 {
		t.Error("simulated cluster should have 1280 GPUs")
	}
	if len(arena.ModelNames()) != 14 {
		t.Errorf("expected 14 model variants, got %d", len(arena.ModelNames()))
	}
}

func TestFacadeSearches(t *testing.T) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("MoE-1.3B")
	spec := arena.MustGPU("A40")
	full, err := arena.FullSearch(eng, g, spec, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible() {
		t.Fatal("full search found nothing")
	}
	pl := arena.NewPlanner()
	gp, err := pl.PlanGrid(g, arena.Grid{
		Workload: arena.Workload{Model: "MoE-1.3B", GlobalBatch: 256},
		GPUType:  "A40", N: 4, S: full.Plan.PipelineDegree(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := arena.PrunedSearch(eng, g, spec, 256, 4, gp)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Result.Throughput < 0.85*full.Result.Throughput {
		t.Errorf("pruned quality too low: %v vs %v", pruned.Result.Throughput, full.Result.Throughput)
	}
}

func TestFacadeSimulation(t *testing.T) {
	spec := arena.ClusterA()
	jobs, err := arena.GenerateTrace(arena.TraceConfig{
		Kind: "philly", Duration: 3600, NumJobs: 12, Seed: 3,
		GPUTypes: spec.GPUTypes(), MaxGPUs: 8,
		Workloads: []arena.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := arena.BuildPerfDB(arena.NewEngine(42), arena.PerfDBOptions{
		GPUTypes: spec.GPUTypes(), MaxN: 8,
		Workloads: []arena.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := arena.Simulate(arena.SimConfig{
		Spec: spec, Policy: arena.NewArenaPolicy(), Jobs: jobs, DB: db,
		RoundSeconds: 300, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 12 {
		t.Errorf("finished %d/12", res.Finished)
	}
}

func TestObjectiveConstants(t *testing.T) {
	p := arena.NewArenaPolicy()
	p.Objective = arena.ObjFairness
	if p.Name() != "arena-fair" {
		t.Errorf("name = %s", p.Name())
	}
}

// TestSessionMatchesFreeFunctions asserts the redesign's bit-identity
// contract: every Session method returns exactly what the deprecated
// free-function wiring returned for the same inputs.
func TestSessionMatchesFreeFunctions(t *testing.T) {
	ctx := context.Background()
	s, err := arena.New(arena.WithSeed(42), arena.WithGPUTypes("A40"), arena.WithMaxN(4))
	if err != nil {
		t.Fatal(err)
	}
	g := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}

	// Full search: session (cached, parallel) vs legacy serial reference.
	eng := arena.NewEngine(42)
	serial, err := arena.FullSearch(eng, g, spec, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := s.FullSearch(ctx, g, "A40", 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, viaSession) {
		t.Errorf("session full search diverged from free function\nfree:    %+v plan %v\nsession: %+v plan %v",
			serial.Result, serial.Plan, viaSession.Result, viaSession.Plan)
	}

	// Plan + Evaluate.
	grid := arena.Grid{Workload: w, GPUType: "A40", N: 4, S: 2}
	gpFree, err := arena.NewPlanner().PlanGrid(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	gpSess, err := s.Plan(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gpFree.Proxy.Plan, gpSess.Proxy.Plan) {
		t.Errorf("session plan diverged: %v vs %v", gpFree.Proxy.Plan, gpSess.Proxy.Plan)
	}
	resFree, err := eng.Evaluate(g, gpFree.Proxy.Plan, spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	resSess, err := s.Evaluate(ctx, g, gpSess.Proxy.Plan, "A40", 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resFree, resSess) {
		t.Errorf("session evaluate diverged: %+v vs %+v", resFree, resSess)
	}

	// ProfileJob: same grids, same estimates, same profiling bill.
	ct, err := arena.SampleComm(eng, []string{"A40"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	jpFree, err := arena.ProfileJob(arena.NewPlanner(), arena.NewProfiler(eng, ct), g, w, []string{"A40"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	jpSess, err := s.ProfileJob(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if jpFree.TotalProfileGPUTime != jpSess.TotalProfileGPUTime {
		t.Errorf("profiling bill diverged: %v vs %v", jpFree.TotalProfileGPUTime, jpSess.TotalProfileGPUTime)
	}
	if !reflect.DeepEqual(jpFree.Estimates, jpSess.Estimates) {
		t.Error("profile estimates diverged")
	}
}

// TestSessionSimulateMatchesFreeSimulate covers the database + simulator
// half of the bit-identity contract.
func TestSessionSimulateMatchesFreeSimulate(t *testing.T) {
	ctx := context.Background()
	spec := arena.ClusterA()
	w := arena.Workload{Model: "WRes-1B", GlobalBatch: 256}
	jobs, err := arena.GenerateTrace(arena.TraceConfig{
		Kind: "philly", Duration: 3600, NumJobs: 12, Seed: 3,
		GPUTypes: spec.GPUTypes(), MaxGPUs: 8,
		Workloads: []arena.Workload{w},
	})
	if err != nil {
		t.Fatal(err)
	}

	dbFree, err := arena.BuildPerfDB(arena.NewEngine(42), arena.PerfDBOptions{
		GPUTypes: spec.GPUTypes(), MaxN: 8, Workloads: []arena.Workload{w},
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := arena.Simulate(arena.SimConfig{
		Spec: spec, Policy: arena.NewArenaPolicy(), Jobs: jobs, DB: dbFree,
		RoundSeconds: 300, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := arena.New(
		arena.WithSeed(42), arena.WithCluster(spec), arena.WithMaxN(8),
		arena.WithWorkloads(w),
	)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := s.Simulate(ctx, arena.SimConfig{
		Policy: arena.NewArenaPolicy(), Jobs: jobs,
		RoundSeconds: 300, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(free.Summary, viaSession.Summary) {
		t.Errorf("session simulation diverged from free function\nfree:    %+v\nsession: %+v",
			free.Summary, viaSession.Summary)
	}

	// The session memoizes its database: a second call must return the
	// same instance.
	db1, err := s.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := s.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if db1 != db2 {
		t.Error("session rebuilt its performance database")
	}
}

// TestSessionCancellation: cancelled contexts abort the session's
// long-running methods with ctx.Err().
func TestSessionCancellation(t *testing.T) {
	w := arena.Workload{Model: "WRes-1B", GlobalBatch: 256}
	s, err := arena.New(arena.WithSeed(42), arena.WithGPUTypes("A40"), arena.WithMaxN(4),
		arena.WithWorkloads(w))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BuildPerfDB(ctx); err != context.Canceled {
		t.Errorf("BuildPerfDB: err = %v, want context.Canceled", err)
	}
	if _, err := s.Search(ctx, w, "A40", 4); err != context.Canceled {
		t.Errorf("Search: err = %v, want context.Canceled", err)
	}
	g := arena.MustBuildModel("WRes-1B")
	if _, err := s.FullSearch(ctx, g, "A40", 256, 4); err != context.Canceled {
		t.Errorf("FullSearch: err = %v, want context.Canceled", err)
	}
	if _, err := s.Simulate(ctx, arena.SimConfig{Policy: arena.NewArenaPolicy()}); err != context.Canceled {
		t.Errorf("Simulate: err = %v, want context.Canceled", err)
	}
	// The session is still fully usable after cancelled calls.
	out, err := s.Search(context.Background(), w, "A40", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible() {
		t.Error("post-cancel search found no feasible plan")
	}
}

func TestSessionSearchRejectsOutOfScopeResource(t *testing.T) {
	s, err := arena.New(arena.WithSeed(42), arena.WithGPUTypes("A40"), arena.WithMaxN(4))
	if err != nil {
		t.Fatal(err)
	}
	w := arena.Workload{Model: "WRes-1B", GlobalBatch: 256}
	if _, err := s.Search(context.Background(), w, "A100", 4); err == nil {
		t.Error("want error for GPU type outside the session's scope")
	}
	if _, err := s.Search(context.Background(), w, "A40", 32); err == nil {
		t.Error("want error for n beyond the sampled communicator bound")
	}
}

func TestSessionRejectsBadOptions(t *testing.T) {
	if _, err := arena.New(arena.WithGPUTypes("NoSuchGPU")); err == nil {
		t.Error("want error for unknown GPU type")
	}
	if _, err := arena.New(arena.WithMaxN(0)); err == nil {
		t.Error("want error for MaxN 0")
	}
	cache := arena.NewEvalCache(arena.NewEngine(7))
	if _, err := arena.New(arena.WithSeed(42), arena.WithEvalCache(cache)); err == nil {
		t.Error("want error for eval cache bound to a different seed")
	}
}

// ExampleNew shows the execution-free planner through a Session.
func ExampleNew() {
	s, _ := arena.New(arena.WithSeed(42), arena.WithGPUTypes("A40"))
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	gp, _ := s.Plan(context.Background(), arena.Grid{Workload: w, GPUType: "A40", N: 4, S: 2})
	fmt.Println(gp.Proxy.Plan)
	// Output: PP2[DP2,DP2]
}

// ExampleSession_Search runs the whole deployment pipeline — plan every
// grid, profile the proxies, pruned-search the best grid — in one call.
func ExampleSession_Search() {
	s := arena.MustNew(arena.WithSeed(42), arena.WithGPUTypes("A40"), arena.WithMaxN(4))
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	out, _ := s.Search(context.Background(), w, "A40", 4)
	fmt.Println(out.Plan)
	// Output: PP2[DP2,DP2]
}
