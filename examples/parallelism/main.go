// Parallelism tour: how the optimal hybrid plan shifts across models,
// GPU counts, types, and interconnects — the phenomenon behind Fig. 2 of
// the paper and the reason static-parallelism scheduling misallocates.
//
// One arena.Session serves every search below: its shared
// stage-measurement cache means a candidate measured for the 4-GPU
// search is reused verbatim by the 8- and 16-GPU ones.
//
//	go run ./examples/parallelism
package main

import (
	"context"
	"fmt"
	"log"

	arena "github.com/sjtu-epcc/arena"
)

func main() {
	ctx := context.Background()
	s, err := arena.New(arena.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Scaling the GPU count (A40) ===")
	for _, m := range []struct {
		name string
		gb   int
	}{
		{"WRes-0.5B", 256}, {"GPT-1.3B", 128}, {"MoE-1.3B", 256},
	} {
		graph := arena.MustBuildModel(m.name)
		fmt.Printf("%-10s:", m.name)
		for _, n := range []int{1, 2, 4, 8, 16} {
			out, err := s.FullSearch(ctx, graph, "A40", m.gb, n)
			if err != nil {
				log.Fatal(err)
			}
			if out.Feasible() {
				fmt.Printf("  %2d GPUs: %7.1f sm/s (%s)", n, out.Result.Throughput, out.Plan.Degrees())
			} else {
				fmt.Printf("  %2d GPUs: OOM", n)
			}
		}
		fmt.Println()
	}

	fmt.Println("\n=== Changing the GPU type (4 GPUs) ===")
	for _, m := range []struct {
		name string
		gb   int
	}{
		{"WRes-2B", 512}, {"GPT-2.6B", 128}, {"MoE-2.4B", 256},
	} {
		graph := arena.MustBuildModel(m.name)
		fmt.Printf("%-10s:", m.name)
		for _, typ := range []string{"V100", "A100", "A40", "H100"} {
			out, err := s.FullSearch(ctx, graph, typ, m.gb, 4)
			if err != nil {
				log.Fatal(err)
			}
			if out.Feasible() {
				fmt.Printf("  %5s: %7.1f (%s)", typ, out.Result.Throughput, out.Plan.Degrees())
			} else {
				fmt.Printf("  %5s: OOM", typ)
			}
		}
		fmt.Println()
	}

	fmt.Println("\n=== Memory: why DP's footprint hides dense allocations (§2.2 Case#2) ===")
	for _, name := range []string{"GPT-2.6B", "MoE-2.4B", "GPT-6.7B"} {
		graph := arena.MustBuildModel(name)
		spec := arena.MustGPU("A40")
		fmt.Printf("%-10s on A40:", name)
		for _, n := range []int{1, 2, 4, 8} {
			_, dpFits := arena.PlanMemory(graph, arena.PureDP(graph, n), spec, 128)
			out, err := s.FullSearch(ctx, graph, "A40", 128, n)
			if err != nil {
				log.Fatal(err)
			}
			dp := "DP:OOM"
			if dpFits {
				dp = "DP:ok"
			}
			ap := "AP:OOM"
			if out.Feasible() {
				ap = "AP:" + out.Plan.Degrees()
			}
			fmt.Printf("  n=%d[%s %s]", n, dp, ap)
		}
		fmt.Println()
	}
	fmt.Println("\nA job an SP-aware scheduler believes needs 8 GPUs often runs on 2 with AP.")
}
