// Package search implements adaptive-parallelism plan search over the
// execution engine: the full-space search (the Alpa baseline the paper
// compares against in §5.4) and Arena's space-pruned search (§3.6).
//
// Both searches follow Alpa's structure: enumerate stage candidates
// (operator range × GPU count × intra-stage shape), "profile" each on the
// engine — the expensive step on real hardware — then compose stages into
// pipelines with dynamic programming under a bottleneck bound, and
// finally measure the best few compositions end to end. Search cost is
// accounted in profiled stage candidates and converted to modeled
// wall-clock seconds, calibrated so a 16-GPU full search costs on the
// order of the paper's "20 minutes per allocable resource" (§2.3).
package search

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// Per-candidate profiling cost model: each stage candidate is compiled and
// measured on hardware; a search session additionally pays a fixed
// compilation/tracing base cost.
const (
	stageProfileSeconds = 0.33
	searchBaseSeconds   = 120.0
	topKEndToEnd        = 12 // compositions measured end-to-end per degree
)

// Outcome reports a search's best plan and its cost accounting.
type Outcome struct {
	Plan   *parallel.Plan
	Result exec.Result

	StageEvals int     // profiled stage candidates (the dominant cost)
	PlanEvals  int     // end-to-end plan measurements
	SearchTime float64 // modeled wall-clock seconds for the search
}

// Feasible reports whether the search found any memory-feasible plan.
func (o Outcome) Feasible() bool { return o.Plan != nil && o.Result.Fits }

// stageCand is one profiled stage candidate.
type stageCand struct {
	start, end int
	gpus       int
	dp, tp     int
	time       float64 // per-microbatch latency (engine measurement)
	feasible   bool
}

// searcher carries shared state across one search session.
type searcher struct {
	eng         *exec.Engine
	graph       *model.Graph
	spec        hw.GPU
	globalBatch int
	gpusPerNode int

	stageEvals int
}

// FullSearch explores the complete adaptive-parallelism space for n GPUs
// of the given type: every pipeline degree, every contiguous partition,
// every power-of-two GPU assignment and intra-stage shape — the Alpa
// workflow. It returns the best measured plan.
func FullSearch(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int) (Outcome, error) {
	return FullSearchWithNodes(eng, g, spec, globalBatch, n, spec.GPUsPerNode)
}

// FullSearchWithNodes is FullSearch with explicit GPUs-per-node placement.
func FullSearchWithNodes(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n, gpusPerNode int) (Outcome, error) {
	if n < 1 {
		return Outcome{}, fmt.Errorf("search: n=%d", n)
	}
	s := &searcher{eng: eng, graph: g, spec: spec, globalBatch: globalBatch, gpusPerNode: gpusPerNode}
	var best Outcome
	for _, deg := range core.PipelineDegrees(n, len(g.Ops)) {
		out := s.searchDegree(deg, n, nil)
		mergeBest(&best, out)
	}
	best.StageEvals = s.stageEvals
	best.SearchTime = searchBaseSeconds + float64(s.stageEvals)*stageProfileSeconds
	return best, nil
}

// mergeBest folds a per-degree outcome into the running best, keeping
// plan-eval counts cumulative.
func mergeBest(best *Outcome, out Outcome) {
	best.PlanEvals += out.PlanEvals
	if out.Plan == nil || !out.Result.Fits {
		return
	}
	if best.Plan == nil || !best.Result.Fits || out.Result.Throughput > best.Result.Throughput {
		best.Plan, best.Result = out.Plan, out.Result
	}
}

// searchDegree finds the best plan with exactly `deg` stages over n GPUs.
// When restrict is non-nil it is consulted to prune stage candidates
// (Arena's runtime pruning rules).
func (s *searcher) searchDegree(deg, n int, restrict *Restriction) Outcome {
	numMicro := parallel.DefaultMicrobatches(deg)
	cands := s.profileStageCandidates(deg, n, numMicro, restrict)
	if len(cands) == 0 {
		return Outcome{}
	}

	// Bottleneck-bounded composition: enumerate t_max candidates from the
	// profiled latency distribution, DP-compose minimal-total pipelines
	// under each bound, measure the distinct results end-to-end.
	bounds := latencyQuantiles(cands, 24)
	type planKey string
	seen := map[planKey]bool{}
	var out Outcome
	for _, tmax := range bounds {
		stages := s.compose(cands, deg, n, tmax)
		if stages == nil {
			continue
		}
		plan := &parallel.Plan{Stages: stages, NumMicrobatches: numMicro}
		key := planKey(plan.String() + fmt.Sprint(stages))
		if seen[key] {
			continue
		}
		seen[key] = true
		if out.PlanEvals >= topKEndToEnd {
			break
		}
		res, err := s.eng.EvaluateWithNodes(s.graph, plan, s.spec, s.globalBatch, s.gpusPerNode)
		out.PlanEvals++
		if err != nil || !res.Fits {
			continue
		}
		if out.Plan == nil || res.Throughput > out.Result.Throughput {
			out.Plan, out.Result = plan, res
		}
	}
	return out
}

// profileStageCandidates profiles every (range, gpus, dp, tp) stage
// candidate valid for a deg-stage pipeline of n GPUs, applying the
// restriction's range and shape pruning when present.
func (s *searcher) profileStageCandidates(deg, n, numMicro int, restrict *Restriction) []stageCand {
	numOps := len(s.graph.Ops)
	microSamples := float64(s.globalBatch) / float64(numMicro)
	var cands []stageCand
	for start := 0; start < numOps; start++ {
		for end := start + 1; end <= numOps; end++ {
			// A stage of a deg-pipeline must leave ≥ start ops before and
			// ≥ (deg-1) ops behind overall; cheap necessary conditions:
			if deg > 1 && end-start > numOps-(deg-1) {
				continue
			}
			if restrict != nil && !restrict.RangeAllowed(s.graph, start, end) {
				continue
			}
			for gpus := 1; gpus <= n-(deg-1); gpus *= 2 {
				for tp := 1; tp <= gpus; tp *= 2 {
					dp := gpus / tp
					if dp*tp != gpus {
						continue
					}
					if restrict != nil && !restrict.ShapeAllowed(start, end, gpus, dp, tp) {
						continue
					}
					st := parallel.StagePlan{OpStart: start, OpEnd: end, DP: dp, TP: tp}
					s.stageEvals++ // profiling happens regardless of OOM outcome
					feasible := exec.StageFitsMemory(s.graph, st, s.spec, s.globalBatch, numMicro, deg)
					if !feasible {
						continue
					}
					m := s.eng.MeasureStage(s.graph, st, s.spec, microSamples, s.gpusPerNode)
					cands = append(cands, stageCand{
						start: start, end: end, gpus: gpus, dp: dp, tp: tp,
						time: m.Time(), feasible: true,
					})
				}
			}
		}
	}
	return cands
}

// latencyQuantiles returns up to k representative bottleneck bounds drawn
// from the candidate latency distribution.
func latencyQuantiles(cands []stageCand, k int) []float64 {
	times := make([]float64, 0, len(cands))
	for _, c := range cands {
		times = append(times, c.time)
	}
	sort.Float64s(times)
	if len(times) <= k {
		return times
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		idx := (len(times) - 1) * i / (k - 1)
		out = append(out, times[idx])
	}
	return out
}

// compose runs the inter-operator DP: split ops into exactly deg stages
// over exactly n GPUs minimizing total per-microbatch latency subject to
// every stage ≤ tmax. Returns nil when infeasible. Table layout:
// tables[k][start][g] = min total latency covering ops[start:] with
// exactly k stages using exactly g GPUs.
func (s *searcher) compose(cands []stageCand, deg, n int, tmax float64) []parallel.StagePlan {
	numOps := len(s.graph.Ops)
	const inf = math.MaxFloat64
	type cell struct {
		cost float64
		cand *stageCand
	}
	// Index candidates by start op, pre-filtered by the bottleneck bound.
	byStart := make([][]*stageCand, numOps)
	for i := range cands {
		c := &cands[i]
		if c.time <= tmax {
			byStart[c.start] = append(byStart[c.start], c)
		}
	}
	tables := make([][][]cell, deg+1)
	for k := 0; k <= deg; k++ {
		tables[k] = make([][]cell, numOps+1)
		for i := range tables[k] {
			tables[k][i] = make([]cell, n+1)
			for j := range tables[k][i] {
				tables[k][i][j] = cell{cost: inf}
			}
		}
	}
	tables[0][numOps][0] = cell{cost: 0}
	for k := 1; k <= deg; k++ {
		for start := numOps - 1; start >= 0; start-- {
			for _, c := range byStart[start] {
				for g := c.gpus; g <= n; g++ {
					rest := tables[k-1][c.end][g-c.gpus]
					if rest.cost == inf {
						continue
					}
					total := c.time + rest.cost
					if total < tables[k][start][g].cost {
						tables[k][start][g] = cell{cost: total, cand: c}
					}
				}
			}
		}
	}
	if tables[deg][0][n].cost == inf {
		return nil
	}
	// Reconstruct the stage sequence front to back.
	stages := make([]parallel.StagePlan, 0, deg)
	start, g := 0, n
	for k := deg; k >= 1; k-- {
		c := tables[k][start][g].cand
		if c == nil {
			return nil
		}
		stages = append(stages, parallel.StagePlan{OpStart: c.start, OpEnd: c.end, DP: c.dp, TP: c.tp})
		start, g = c.end, g-c.gpus
	}
	if start != numOps || g != 0 {
		return nil
	}
	return stages
}
