package perfdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/model"
)

func smallOpts() Options {
	return Options{
		GPUTypes: []string{"A40"},
		MaxN:     8,
		Workloads: []model.Workload{
			{Model: "GPT-1.3B", GlobalBatch: 128},
			{Model: "WRes-1B", GlobalBatch: 256},
		},
	}
}

// equalDB asserts two databases are bit-identical in every externally
// observable dimension.
func equalDB(t *testing.T, a, b *DB, label string) {
	t.Helper()
	if !reflect.DeepEqual(a.Keys(), b.Keys()) {
		t.Fatalf("%s: key sets differ", label)
	}
	for _, k := range a.Keys() {
		ea, eb := a.entries[k], b.entries[k]
		if !reflect.DeepEqual(*ea, *eb) {
			t.Errorf("%s: entry %v differs:\n a: %+v\n b: %+v", label, k, *ea, *eb)
		}
	}
	if !reflect.DeepEqual(a.arenaProfileWall, b.arenaProfileWall) {
		t.Errorf("%s: arena profile wall differs", label)
	}
	if !reflect.DeepEqual(a.dpProfileWall, b.dpProfileWall) {
		t.Errorf("%s: dp profile wall differs", label)
	}
	if !reflect.DeepEqual(a.siaProfileWall, b.siaProfileWall) {
		t.Errorf("%s: sia profile wall differs", label)
	}
}

// TestCachedBuildMatchesUncachedSerial is the perfdb half of the tentpole
// determinism guarantee: the memoized fan-out build and the pre-cache
// serial build produce byte-identical databases — entries (throughputs,
// plans, modeled search times) and profiling wall-time accumulators.
func TestCachedBuildMatchesUncachedSerial(t *testing.T) {
	cached, err := Build(exec.NewEngine(42), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	baselineOpts := smallOpts()
	baselineOpts.NoCache = true
	baselineOpts.Serial = true
	baseline, err := Build(exec.NewEngine(42), baselineOpts)
	if err != nil {
		t.Fatal(err)
	}
	equalDB(t, cached, baseline, "cached vs serial-uncached")
}

func TestSnapshotRoundTrip(t *testing.T) {
	built, err := Build(exec.NewEngine(42), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.json")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	equalDB(t, built, loaded, "save/load")
	if loaded.seed != built.seed || loaded.MaxN != built.MaxN ||
		!reflect.DeepEqual(loaded.GPUTypes, built.GPUTypes) {
		t.Error("snapshot metadata did not round-trip")
	}
	// A loaded database must be fully usable, including observations.
	w := smallOpts().Workloads[0]
	loaded.Observe(w, "A40", 4, 123)
	if got := loaded.ObservedThr(w, "A40", 4); got != 123 {
		t.Errorf("observations broken after load: %v", got)
	}
}

func TestBuildOrLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.json")
	eng := exec.NewEngine(42)

	first, loaded, err := BuildOrLoad(eng, smallOpts(), path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("first call must build")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	second, loaded, err := BuildOrLoad(eng, smallOpts(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("second call must load the snapshot")
	}
	equalDB(t, first, second, "built vs reloaded")

	// A subset request (fewer workloads) is served by the wider snapshot.
	sub := smallOpts()
	sub.Workloads = sub.Workloads[:1]
	_, loaded, err = BuildOrLoad(eng, sub, path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded {
		t.Fatal("subset request should load the covering snapshot")
	}

	// A different seed invalidates the snapshot (and overwrites it).
	third, loaded, err := BuildOrLoad(exec.NewEngine(7), smallOpts(), path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded {
		t.Fatal("mismatched seed must rebuild")
	}
	if third.seed != 7 {
		t.Fatalf("rebuild kept stale seed %d", third.seed)
	}
}

func TestBuildOrLoadKeepsDBWhenSaveFails(t *testing.T) {
	// A failed snapshot write must not discard the expensive build.
	db, loaded, err := BuildOrLoad(exec.NewEngine(42), smallOpts(), "/proc/nonexistent/db.json")
	if err == nil {
		t.Fatal("want a save error for an unwritable path")
	}
	if loaded {
		t.Fatal("nothing to load")
	}
	if db == nil || len(db.Keys()) == 0 {
		t.Fatal("built database was discarded over a persistence failure")
	}
}

func TestLoadRejectsCorruptAndMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("want error for corrupt snapshot")
	}
}
