package main

import (
	"os"
	"path/filepath"
	"testing"
)

// check parses one synthetic source and returns its diagnostics.
func check(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "src.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestShadowInNestedBlock(t *testing.T) {
	// The sim.RunCtx bug, minimized: a loop-local declaration reusing
	// the context parameter's name.
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	for i := 0; i < 3; i++ {
		ctx := &struct{}{}
		_ = ctx
	}
	_ = ctx
}`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestSameScopeReassignIsFine(t *testing.T) {
	// `ctx, cancel := context.WithCancel(ctx)` at body top level reuses
	// the parameter — the idiom must not be flagged.
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = ctx
}`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestShadowInIfInit(t *testing.T) {
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	if ctx := 1; ctx > 0 {
		_ = ctx
	}
	_ = ctx
}`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestShadowInRange(t *testing.T) {
	diags := check(t, `package p
import "context"
func run(ctx context.Context, xs []int) {
	for _, ctx = range xs {
	}
	for _, ctx := range xs {
		_ = ctx
	}
}`)
	if len(diags) != 1 { // only the := form declares
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestShadowInVarDecl(t *testing.T) {
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	{
		var ctx int
		_ = ctx
	}
	_ = ctx
}`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestFuncLitCapturedShadow(t *testing.T) {
	// Inside a literal the captured parameter is shadowed even by a
	// top-level declaration — the literal's body is a fresh scope.
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	f := func() {
		ctx := 1
		_ = ctx
	}
	f()
	_ = ctx
}`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
}

func TestFuncLitOwnParamIsFine(t *testing.T) {
	// A literal taking its own context parameter owns the name; its
	// top-level := then reuses, exactly like a named function.
	diags := check(t, `package p
import "context"
func run(ctx context.Context) {
	f := func(ctx context.Context) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		_ = ctx
	}
	f(ctx)
}`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestNonContextParamsUntracked(t *testing.T) {
	diags := check(t, `package p
func run(n int) {
	{
		n := 2
		_ = n
	}
	_ = n
}`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

// checkAt parses one synthetic source placed at a repo-relative path, so
// path-scoped checks (the clock-discipline ban) see the zone they key on.
func checkAt(t *testing.T, rel, src string) []string {
	t.Helper()
	path := filepath.Join(t.TempDir(), filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := checkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const clockOffender = `package p
import "time"
func round() float64 { time.Sleep(time.Second); return time.Since(time.Now()).Seconds() }`

func TestClockBanInSchedulingCode(t *testing.T) {
	for _, rel := range []string{
		"internal/sched/x.go", "internal/sim/x.go", "internal/server/x.go",
	} {
		diags := checkAt(t, rel, clockOffender)
		if len(diags) != 3 { // Sleep, Since, Now; time.Second stays legal
			t.Fatalf("%s: want 3 diagnostics (Sleep, Since, Now), got %v", rel, diags)
		}
	}
}

func TestClockBanSkipsTestsAndOtherPackages(t *testing.T) {
	for _, rel := range []string{
		"internal/sim/x_test.go",   // tests may sleep
		"internal/clock/clock.go",  // the one real-clock wrapper
		"internal/store/store.go",  // retry backoff is not scheduling
		"cmd/arena-server/main.go", // process plumbing
	} {
		if diags := checkAt(t, rel, clockOffender); len(diags) != 0 {
			t.Fatalf("%s: want no diagnostics, got %v", rel, diags)
		}
	}
}

func TestClockBanAllowsDurations(t *testing.T) {
	diags := checkAt(t, "internal/server/x.go", `package p
import "time"
const gracePeriod = 10 * time.Second
var d time.Duration`)
	if len(diags) != 0 {
		t.Fatalf("durations/constants flagged: %v", diags)
	}
}

func TestClockBanSeesAliasedImport(t *testing.T) {
	diags := checkAt(t, "internal/sim/x.go", `package p
import wall "time"
func f() { _ = wall.Now() }`)
	if len(diags) != 1 {
		t.Fatalf("aliased time import: want 1 diagnostic, got %v", diags)
	}
}

// TestRepositoryIsShadowFree sweeps the whole module: the sim.RunCtx
// class of bug cannot recur while this test is green.
func TestRepositoryIsShadowFree(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Error(d)
	}
}
