package model

import (
	"fmt"
	"math"
)

// WResConfig describes a Wide-ResNet-50-style convolutional network scaled
// to billions of parameters by channel widening (Table 2: 0.5B – 6.8B).
// The paper notes (Fig. 6 caption) that "the later layers in Wide-ResNet
// are typically larger": channel counts double per block group while
// spatial resolution shrinks more slowly in the wide regime, so both
// parameters and per-layer time grow with depth — the model family with
// the most *imbalanced* layer structure, used in §5.4's Pareto case study.
type WResConfig struct {
	Name        string
	WidthFactor float64 // channel multiplier over ResNet-50's 64-channel stem
	BlocksPer   [4]int  // bottleneck blocks per group (ResNet-50: 3,4,6,3)
	ImageSize   int     // input resolution (224 in the paper's workloads)
	Nominal     float64
}

// Wide-ResNet sizes from the paper (Table 2). Width factors are chosen so
// the analytic parameter counts land near the nominal sizes.
var wresConfigs = map[string]WResConfig{
	"WRes-0.5B": {Name: "WRes-0.5B", WidthFactor: 4.4, BlocksPer: [4]int{3, 4, 6, 3}, ImageSize: 224, Nominal: 0.5e9},
	"WRes-1B":   {Name: "WRes-1B", WidthFactor: 6.3, BlocksPer: [4]int{3, 4, 6, 3}, ImageSize: 224, Nominal: 1e9},
	"WRes-2B":   {Name: "WRes-2B", WidthFactor: 8.8, BlocksPer: [4]int{3, 4, 6, 3}, ImageSize: 224, Nominal: 2e9},
	"WRes-4B":   {Name: "WRes-4B", WidthFactor: 12.5, BlocksPer: [4]int{3, 4, 6, 3}, ImageSize: 224, Nominal: 4e9},
	"WRes-6.8B": {Name: "WRes-6.8B", WidthFactor: 16.3, BlocksPer: [4]int{3, 4, 6, 3}, ImageSize: 224, Nominal: 6.8e9},
}

// WResSizes returns the available Wide-ResNet variant names ascending.
func WResSizes() []string {
	return []string{"WRes-0.5B", "WRes-1B", "WRes-2B", "WRes-4B", "WRes-6.8B"}
}

// WResConfigFor returns the configuration for a named Wide-ResNet variant.
func WResConfigFor(name string) (WResConfig, error) {
	c, ok := wresConfigs[name]
	if !ok {
		return WResConfig{}, fmt.Errorf("model: unknown Wide-ResNet variant %q", name)
	}
	return c, nil
}

// Build constructs the operator graph: a stem convolution, 16 bottleneck
// blocks across 4 groups, and a pooled classifier head. Per group, channels
// double while spatial extent divides by 1.6 (wide networks retain
// resolution longer than the canonical stride-2 ladder), so per-block
// FLOPs grow ≈ 1.56× and parameters grow 4× per group — later layers are
// larger in both time and memory, as the paper observes.
func (c WResConfig) Build() *Graph {
	const bytesPerParam = 2
	img := float64(c.ImageSize)

	ops := make([]Op, 0, 18)

	// Stem: 7×7 conv, stride 2 + pooling. Channels = 64 × width.
	stemC := 64 * c.WidthFactor
	stemHW := img / 4 // conv stride 2 + pool stride 2
	stemParams := 7 * 7 * 3 * stemC * bytesPerParam
	stemFLOPs := 2 * 7 * 7 * 3 * stemC * (img / 2) * (img / 2)
	stemAct := stemC * stemHW * stemHW * bytesPerParam
	ops = append(ops, Op{
		Name: "stem", Kind: KindConv,
		FLOPs:      stemFLOPs,
		Bytes:      stemParams + 3*img*img*bytesPerParam + 2*stemAct,
		ParamBytes: stemParams,
		ActBytes:   stemAct,
		// Channel-parallel conv all-reduces its output activation.
		TPCommBytes: stemAct,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	hw := stemHW // 56 at 224 input
	inC := stemC
	for g := 0; g < 4; g++ {
		outC := 64 * c.WidthFactor * math.Pow(2, float64(g)) * 4 // bottleneck expansion 4
		midC := outC / 4
		if g > 0 {
			hw = hw / 1.6 // gentle spatial reduction (wide regime)
		}
		for b := 0; b < c.BlocksPer[g]; b++ {
			cin := inC
			if b > 0 {
				cin = outC
			}
			// Bottleneck: 1×1 (cin→mid), 3×3 (mid→mid), 1×1 (mid→out).
			params := (cin*midC + 9*midC*midC + midC*outC) * bytesPerParam
			flops := 2 * (cin*midC + 9*midC*midC + midC*outC) * hw * hw
			actOut := outC * hw * hw * bytesPerParam
			actIn := cin * hw * hw * bytesPerParam
			ops = append(ops, Op{
				Name: fmt.Sprintf("group%d/block%d", g+1, b), Kind: KindConv,
				FLOPs:       flops,
				Bytes:       params + actIn + 2*actOut,
				ParamBytes:  params,
				ActBytes:    actOut,
				TPCommBytes: actOut,
				TPPrimitive: "all-reduce",
				Shardable:   true,
			})
		}
		inC = outC
	}

	// Classifier head: global pool + FC to 1000 classes.
	headParams := inC * 1000 * bytesPerParam
	ops = append(ops, Op{
		Name: "head", Kind: KindHead,
		FLOPs:       2 * inC * 1000,
		Bytes:       headParams + inC*bytesPerParam,
		ParamBytes:  headParams,
		ActBytes:    1000 * 4,
		TPCommBytes: inC * bytesPerParam,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	return &Graph{
		Name:         c.Name,
		Family:       "wresnet",
		SeqLen:       0,
		Ops:          ops,
		Nominal:      c.Nominal,
		ActMemFactor: 2.5,
	}
}
