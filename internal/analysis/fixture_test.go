package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Fixture tests mirror x/tools' analysistest: each testdata/<dir> is one
// package, type-checked under a caller-chosen import path — so scoped
// analyzers see the fixture as in-scope production code — and every
// expected finding is declared in place with a comment of the form
//
//	// want `regexp`
//
// on the flagged line. The pattern is matched against
// "<message> [<analyzer>]", so fixtures can pin which analyzer fired.
// Hygiene diagnostics for malformed //arena:allow directives land on the
// directive's own line, where a want comment cannot sit (a line holds
// one line comment); those cases assert programmatically instead.

var (
	fixOnce sync.Once
	fixLd   *moduleLoader
	fixErr  error
)

// fixtureExtraImports are packages fixtures may import beyond the
// module's own dependency closure.
var fixtureExtraImports = []string{"math/rand", "math/rand/v2"}

// fixtureLoader builds (once) a moduleLoader able to type-check fixture
// packages: module-internal imports resolve from source, everything else
// from the build cache's export data.
func fixtureLoader(t *testing.T) *moduleLoader {
	t.Helper()
	fixOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			fixErr = err
			return
		}
		listed, err := goList(root, "", false, []string{"./..."})
		if err != nil {
			fixErr = err
			return
		}
		external := map[string]bool{}
		for _, p := range fixtureExtraImports {
			external[p] = true
		}
		byPath := map[string]*listedPackage{}
		for _, p := range listed {
			if p.Standard || !strings.HasPrefix(p.ImportPath, ModulePath) {
				continue
			}
			byPath[p.ImportPath] = p
			for _, lists := range [][]string{p.Imports, p.TestImports, p.XTestImports} {
				for _, imp := range lists {
					if imp != "C" && imp != "unsafe" && !strings.HasPrefix(imp, ModulePath) {
						external[imp] = true
					}
				}
			}
		}
		exports, err := exportData(root, "", sortedKeys(external))
		if err != nil {
			fixErr = err
			return
		}
		fset := token.NewFileSet()
		fixLd = &moduleLoader{
			fset:    fset,
			byPath:  byPath,
			checked: map[string]*types.Package{},
			gc:      gcImporter(fset, exports),
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLd
}

// fixtureDiags type-checks testdata/<dir> under importPath and returns
// RunPackage's findings plus the loaded package.
func fixtureDiags(t *testing.T, analyzers []*Analyzer, dir, importPath string) (*Package, []Diagnostic) {
	t.Helper()
	ld := fixtureLoader(t)
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", full)
	}
	pkg, err := ld.check(importPath, full, files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, diags
}

// runFixture checks the fixture and matches findings against its want
// comments.
func runFixture(t *testing.T, analyzers []*Analyzer, dir, importPath string) {
	t.Helper()
	pkg, diags := fixtureDiags(t, analyzers, dir, importPath)
	matchWants(t, pkg, diags)
}

type wantPattern struct {
	re      *regexp.Regexp
	matched bool
}

var wantArgRe = regexp.MustCompile("`([^`]*)`")

// matchWants pairs each diagnostic with exactly one want pattern on the
// diagnostic's line; leftover diagnostics and unmatched wants both fail.
func matchWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[string]map[int][]*wantPattern{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := wants[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*wantPattern{}
					wants[pos.Filename] = byLine
				}
				matches := wantArgRe.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s: want comment without a backquoted pattern: %s", pos, c.Text)
					continue
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					byLine[pos.Line] = append(byLine[pos.Line], &wantPattern{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		got := fmt.Sprintf("%s [%s]", d.Message, d.Analyzer)
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(got) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, got)
		}
	}
	for file, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.re)
				}
			}
		}
	}
}

// TestAnalyzerFixtures drives the five analyzers over their golden
// fixtures: positive cases (each historical bug class re-introduced),
// negative cases, and reason-carrying suppressions.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzers  []*Analyzer
	}{
		{"ctxshadow", ModulePath + "/internal/sim", []*Analyzer{CtxShadow}},
		{"clockdiscipline", ModulePath + "/internal/sched", []*Analyzer{ClockDiscipline}},
		{"maporder", ModulePath + "/internal/sched", []*Analyzer{MapOrder}},
		{"stablesort", ModulePath + "/internal/planner", []*Analyzer{StableSort}},
		{"rngdiscipline", ModulePath + "/internal/faults", []*Analyzer{RngDiscipline}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			runFixture(t, c.analyzers, c.dir, c.importPath)
		})
	}
}

// TestReasonlessAllowFails proves a reasonless //arena:allow suppresses
// nothing: the original finding survives AND the directive itself
// becomes a hygiene finding.
func TestReasonlessAllowFails(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		a          *Analyzer
	}{
		{"ctxshadow_badallow", ModulePath + "/internal/sim", CtxShadow},
		{"clockdiscipline_badallow", ModulePath + "/internal/sched", ClockDiscipline},
		{"maporder_badallow", ModulePath + "/internal/sched", MapOrder},
		{"stablesort_badallow", ModulePath + "/internal/planner", StableSort},
		{"rngdiscipline_badallow", ModulePath + "/internal/faults", RngDiscipline},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			_, diags := fixtureDiags(t, []*Analyzer{c.a}, c.dir, c.importPath)
			var original, hygiene int
			for _, d := range diags {
				switch d.Analyzer {
				case c.a.Name:
					original++
				case "arena-allow":
					if !strings.Contains(d.Message, "has no reason") {
						t.Errorf("hygiene finding without the no-reason message: %s", d)
					}
					hygiene++
				default:
					t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
				}
			}
			if original != 1 || hygiene != 1 {
				t.Fatalf("want 1 surviving finding + 1 hygiene finding, got %d + %d: %v",
					original, hygiene, diags)
			}
		})
	}
}

// TestAllowHygiene covers the remaining directive defects: a missing
// analyzer name, an unknown analyzer, and a stale directive that
// suppresses nothing. A non-directive //arena:allowance comment must
// stay invisible.
func TestAllowHygiene(t *testing.T) {
	_, diags := fixtureDiags(t, All(), "allowhygiene", ModulePath+"/internal/sched")
	wantParts := []string{
		"needs an analyzer name",
		`unknown analyzer "nosuchcheck"`,
		"suppresses nothing",
	}
	if len(diags) != len(wantParts) {
		t.Fatalf("want %d hygiene findings, got %d: %v", len(wantParts), len(diags), diags)
	}
	for i, part := range wantParts {
		if diags[i].Analyzer != "arena-allow" || !strings.Contains(diags[i].Message, part) {
			t.Errorf("finding %d = %s, want arena-allow message containing %q", i, diags[i], part)
		}
	}
}
