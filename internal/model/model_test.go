package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllModelsBuild(t *testing.T) {
	for _, name := range Names() {
		g, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", name, err)
		}
	}
}

func TestParamsNearNominal(t *testing.T) {
	// Analytic parameter counts should land within 30% of the nominal
	// sizes of Table 2 (the paper's names are rounded marketing sizes).
	for _, name := range Names() {
		g, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		ratio := g.Params() / g.Nominal
		if ratio < 0.55 || ratio > 1.45 {
			t.Errorf("%s: %0.2fB params vs nominal %0.2fB (ratio %.2f)",
				name, g.Params()/1e9, g.Nominal/1e9, ratio)
		}
	}
}

func TestGPTConfigLadder(t *testing.T) {
	// Larger GPT variants must have strictly more params and FLOPs.
	var prevP, prevF float64
	for _, name := range GPTSizes() {
		g, _ := Build(name)
		if g.Params() <= prevP || g.FwdFLOPs() <= prevF {
			t.Errorf("%s does not grow monotonically", name)
		}
		prevP, prevF = g.Params(), g.FwdFLOPs()
	}
}

func TestTrainFLOPsIsTripleForward(t *testing.T) {
	g, _ := Build("GPT-1.3B")
	if math.Abs(g.TrainFLOPs()-3*g.FwdFLOPs()) > 1 {
		t.Error("training FLOPs should be 3× forward")
	}
}

func TestMoEParamHeavy(t *testing.T) {
	// MoE models carry far more parameters per FLOP than dense GPT —
	// the property behind the paper's Case#2 overestimation (§2.2).
	gpt, _ := Build("GPT-1.3B")
	moe, _ := Build("MoE-1.3B")
	gptRatio := gpt.FwdFLOPs() / gpt.Params()
	moeRatio := moe.FwdFLOPs() / moe.Params()
	if moeRatio >= gptRatio/2 {
		t.Errorf("MoE FLOPs/param ratio %.2f should be well below GPT's %.2f", moeRatio, gptRatio)
	}
}

func TestWResLaterLayersLarger(t *testing.T) {
	// Fig. 6's caption: later Wide-ResNet layers are typically larger.
	g, _ := Build("WRes-1B")
	n := len(g.Ops)
	firstHalf, secondHalf := 0.0, 0.0
	for i, op := range g.Ops {
		if i < n/2 {
			firstHalf += op.FLOPs
		} else {
			secondHalf += op.FLOPs
		}
	}
	if secondHalf <= firstHalf {
		t.Errorf("later layers should carry more FLOPs: %v vs %v", secondHalf, firstHalf)
	}
}

func TestUnknownModelErrors(t *testing.T) {
	if _, err := Build("BERT-340M"); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := GPTConfigFor("GPT-175B"); err == nil {
		t.Fatal("expected error for unknown GPT size")
	}
	if _, err := MoEConfigFor("MoE-1T"); err == nil {
		t.Fatal("expected error for unknown MoE size")
	}
	if _, err := WResConfigFor("WRes-10B"); err == nil {
		t.Fatal("expected error for unknown WRes size")
	}
}

func TestClusterPreservesTotals(t *testing.T) {
	for _, name := range []string{"GPT-2.6B", "MoE-2.4B", "WRes-2B"} {
		g, _ := Build(name)
		c := g.Cluster(DefaultClusterSize)
		if len(c.Ops) != DefaultClusterSize {
			t.Errorf("%s clustered to %d ops, want %d", name, len(c.Ops), DefaultClusterSize)
		}
		if math.Abs(c.FwdFLOPs()-g.FwdFLOPs())/g.FwdFLOPs() > 1e-9 {
			t.Errorf("%s clustering changed FLOPs", name)
		}
		if math.Abs(c.ParamBytes()-g.ParamBytes())/g.ParamBytes() > 1e-9 {
			t.Errorf("%s clustering changed params", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("clustered %s invalid: %v", name, err)
		}
	}
}

func TestClusterBalance(t *testing.T) {
	// The DP-based clustering should produce clusters whose FLOPs are
	// reasonably uniform for a homogeneous layer stack like GPT.
	g, _ := Build("GPT-1.3B")
	c := g.Cluster(16)
	var minF, maxF float64 = math.MaxFloat64, 0
	for _, op := range c.Ops {
		minF = math.Min(minF, op.FLOPs)
		maxF = math.Max(maxF, op.FLOPs)
	}
	if maxF/minF > 4 {
		t.Errorf("cluster imbalance too high: max/min = %.2f", maxF/minF)
	}
}

func TestClusterDegenerateCases(t *testing.T) {
	g, _ := Build("GPT-0.76B")
	// o >= len(ops): unchanged copy.
	same := g.Cluster(len(g.Ops) + 10)
	if len(same.Ops) != len(g.Ops) {
		t.Error("oversized cluster count should not change the graph")
	}
	// o = 1: single merged op.
	one := g.Cluster(1)
	if len(one.Ops) != 1 {
		t.Fatalf("Cluster(1) gave %d ops", len(one.Ops))
	}
	if math.Abs(one.Ops[0].FLOPs-g.FwdFLOPs()) > 1 {
		t.Error("Cluster(1) lost FLOPs")
	}
}

func TestClusterPropertyCoverage(t *testing.T) {
	// Property: for any valid cluster count, totals are preserved and the
	// result has exactly min(o, len) ops.
	g, _ := Build("MoE-1.3B")
	f := func(raw uint8) bool {
		o := int(raw%20) + 1
		c := g.Cluster(o)
		wantLen := o
		if o >= len(g.Ops) {
			wantLen = len(g.Ops)
		}
		if len(c.Ops) != wantLen {
			return false
		}
		return math.Abs(c.FwdFLOPs()-g.FwdFLOPs())/g.FwdFLOPs() < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntensity(t *testing.T) {
	op := Op{FLOPs: 100, Bytes: 10}
	if op.Intensity() != 10 {
		t.Errorf("intensity = %v", op.Intensity())
	}
	if (Op{FLOPs: 5}).Intensity() != 0 {
		t.Error("zero-byte op should report zero intensity")
	}
}

func TestBatchSizesTable2(t *testing.T) {
	gpt, err := BatchSizes("gpt")
	if err != nil || len(gpt) != 3 || gpt[0] != 128 {
		t.Errorf("gpt batches = %v, %v", gpt, err)
	}
	if _, err := BatchSizes("rnn"); err == nil {
		t.Error("unknown family should error")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a, b := Workloads(), Workloads()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("workload counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Workloads() not deterministic")
		}
	}
	// Table 2: 5 WRes + 4 GPT + 5 MoE models × 3 batches = 42 workloads.
	if len(a) != 42 {
		t.Errorf("expected 42 workloads, got %d", len(a))
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g, _ := Build("GPT-0.76B")
	g.Ops[3].Bytes = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero-byte op should fail validation")
	}
	empty := &Graph{Name: "x"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty graph should fail validation")
	}
}

func TestMustBuildClusteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustBuildClustered("nope")
}

func TestActMemFactorSet(t *testing.T) {
	for _, name := range []string{"GPT-1.3B", "MoE-1.3B", "WRes-1B"} {
		g, _ := Build(name)
		if g.ActMemFactor <= 0 {
			t.Errorf("%s has no ActMemFactor", name)
		}
	}
}

func TestTPCommBytesPositive(t *testing.T) {
	for _, name := range Names() {
		g, _ := Build(name)
		for _, op := range g.Ops {
			if op.Shardable && op.TPCommBytes <= 0 {
				t.Errorf("%s op %s shardable but no TP comm volume", name, op.Name)
			}
		}
	}
}
