package exec

import (
	"math"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// StageMeasure is the engine's measurement of one pipeline stage under a
// given intra-stage parallelization, per microbatch unless noted. It is
// the unit both the full AP search (which "profiles" stage candidates, as
// Alpa does) and end-to-end plan evaluation consume.
type StageMeasure struct {
	FwdCompute float64 // forward compute kernels
	BwdCompute float64 // backward compute kernels (≈ BwdFactor × forward)
	TPComm     float64 // tensor-parallel collectives, forward direction
	Straggler  float64 // multiplicative sync penalty applied to compute
	GradSync   float64 // per-iteration data-parallel gradient all-reduce
	ParamBytes float64 // stage parameter bytes (before TP sharding)
}

// Time returns the stage's per-microbatch latency: straggler-inflated
// compute plus the tensor-parallel collectives of both directions.
func (m StageMeasure) Time() float64 {
	return (m.FwdCompute+m.BwdCompute)*m.Straggler + 2*m.TPComm
}

// OpMeasure is the engine's measurement of one operator inside a stage
// context: its forward kernel latency and (when tensor-parallel) its
// forward collective latency. It depends only on (op, device, samples per
// replica, TP width, node packing) — the unit of the op-level
// compute-redundancy elimination (§3.4) the evalcache performs.
type OpMeasure struct {
	Fwd    float64
	TPComm float64
}

// MeasureOp measures one operator with spr samples per replica under
// tp-way tensor parallelism.
func (e *Engine) MeasureOp(op model.Op, spec hw.GPU, spr float64, tp, gpusPerNode int) OpMeasure {
	om := OpMeasure{Fwd: e.KernelTime(op, spec, spr, tp)}
	if tp > 1 && op.TPCommBytes > 0 {
		topo := hw.Topology{
			GPUType: spec.Name, Workers: tp,
			CrossNode: tp > gpusPerNode, NICShare: gpusPerNode,
		}
		prim := hw.Primitive(op.TPPrimitive)
		if prim == "" {
			prim = hw.AllReduce
		}
		om.TPComm = e.CollectiveTime(prim, topo, op.TPCommBytes*spr)
	}
	return om
}

// MeasureStage measures one stage candidate: the operator range and
// (dp, tp) shape of st, with microSamples samples per microbatch split
// across dp replicas. This is the quantity a real system obtains by
// compiling and profiling the stage executable on hardware — the unit of
// AP search cost.
func (e *Engine) MeasureStage(g *model.Graph, st parallel.StagePlan, spec hw.GPU, microSamples float64, gpusPerNode int) StageMeasure {
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	spr := microSamples / float64(st.DP) // samples per replica per microbatch
	return e.MeasureStageFromOps(g, st, spec, microSamples, gpusPerNode, func(i int) OpMeasure {
		return e.MeasureOp(g.Ops[i], spec, spr, st.TP, gpusPerNode)
	})
}

// MeasureStageFromOps assembles a stage measurement from per-operator
// measurements supplied by opAt (indexed into g.Ops), exactly as
// MeasureStage does — same accumulation order, so an opAt serving
// memoized MeasureOp values reproduces MeasureStage bit for bit.
func (e *Engine) MeasureStageFromOps(g *model.Graph, st parallel.StagePlan, spec hw.GPU, microSamples float64, gpusPerNode int, opAt func(i int) OpMeasure) StageMeasure {
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	var m StageMeasure
	for i := st.OpStart; i < st.OpEnd; i++ {
		om := opAt(i)
		m.FwdCompute += om.Fwd
		m.ParamBytes += g.Ops[i].ParamBytes
		if om.TPComm != 0 {
			m.TPComm += om.TPComm
		}
	}
	m.BwdCompute = m.FwdCompute * e.BwdFactor

	// Replica-synchronization straggler: the slowest of dp×tp workers
	// gates every microbatch boundary.
	m.Straggler = 1.0
	if group := st.GPUs(); group > 1 {
		m.Straggler = 1 + e.StragglerCoef*math.Log2(float64(group))
	}

	// Data-parallel gradient all-reduce (once per iteration).
	if st.DP > 1 {
		share := gpusPerNode / st.TP
		if share < 1 {
			share = 1
		}
		topo := hw.Topology{
			GPUType: spec.Name, Workers: st.DP,
			CrossNode: st.GPUs() > gpusPerNode, NICShare: share,
		}
		m.GradSync = e.CollectiveTime(hw.AllReduce, topo, m.ParamBytes/float64(st.TP))
	}
	return m
}

// StageFitsMemory reports whether the stage candidate fits device memory
// under the pessimistic assumption that it is the pipeline's first stage
// (which retains the most in-flight microbatches under 1F1B).
func StageFitsMemory(g *model.Graph, st parallel.StagePlan, spec hw.GPU, globalBatch, numMicro, numStages int) bool {
	mem := parallel.StageMemoryBytes(g, st, globalBatch, numMicro, 0, numStages)
	return mem <= spec.MemBytes*parallel.MemoryReserveFraction
}
