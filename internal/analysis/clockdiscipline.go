package analysis

import (
	"go/ast"
	"go/types"
)

// ClockDiscipline bans direct real-clock reads in scheduling code.
// Every instant in internal/sched, internal/sim and internal/server
// must flow through the internal/clock interface so a journaled
// arena-server run replays bit-identically on a virtual clock (PR 7's
// crash-recovery guarantee). time.Duration values and constants stay
// legal — the ban is on acquiring instants or waiting on the real
// clock, not on describing durations.
//
// This is the go/types port of shadowcheck's syntactic check: uses are
// resolved through the type checker, so aliased imports, dot-imports
// and local variables named `time` are all handled exactly.
var ClockDiscipline = &Analyzer{
	Name: "clockdiscipline",
	Doc: "report direct time.Now/Sleep/... calls in scheduling code; " +
		"take instants from internal/clock so journaled runs replay deterministically",
	Scope:     []string{"internal/sched", "internal/sim", "internal/server"},
	SkipTests: true,
	Run:       runClockDiscipline,
}

// bannedTimeFuncs are the package-time entry points that read or wait
// on the real clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runClockDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !bannedTimeFuncs[obj.Name()] {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s in scheduling code: take time from internal/clock so journaled runs replay deterministically",
				obj.Name())
			return true
		})
	}
	return nil
}
