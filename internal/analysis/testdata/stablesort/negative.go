package fixture

import "sort"

type item struct {
	key string
	n   int
}

// A tie-break chain ending in a strict final discriminator is the
// proven total-order shape.
func chained(xs []item) {
	sort.Slice(xs, func(i, j int) bool {
		a, b := xs[i], xs[j]
		if a.key != b.key {
			return a.key < b.key
		}
		return a.n < b.n
	})
}

// The expanded two-sided spelling of the same chain.
func twoSided(xs []item) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].key < xs[j].key {
			return true
		}
		if xs[j].key < xs[i].key {
			return false
		}
		return xs[i].n < xs[j].n
	})
}

// SliceStable preserves a deterministic input order on ties.
func stable(xs []item) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].n < xs[j].n })
}
