package sched

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	dbOnce sync.Once
	testDB *perfdb.DB
	dbErr  error
)

// testWorkloads keeps the fixture DB small but representative: one small
// model (DP-friendly), one memory-bound model (DP OOMs on small parts),
// and one AP-only giant.
func testWorkloads() []model.Workload {
	return []model.Workload{
		{Model: "WRes-1B", GlobalBatch: 256},
		{Model: "GPT-2.6B", GlobalBatch: 128},
		{Model: "GPT-6.7B", GlobalBatch: 128},
	}
}

func db(t *testing.T) *perfdb.DB {
	t.Helper()
	dbOnce.Do(func() {
		testDB, dbErr = perfdb.Build(exec.NewEngine(42), perfdb.Options{
			GPUTypes:  []string{"A40", "A10"},
			MaxN:      16,
			Workloads: testWorkloads(),
		})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func testCtx(t *testing.T, queued, running []*Job) *Context {
	t.Helper()
	cl, err := cluster.New(hw.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range running {
		j.State = StateRunning
		if err := cl.Alloc(j.Trace.ID, j.Alloc.GPUType, j.Alloc.N); err != nil {
			t.Fatal(err)
		}
	}
	return &Context{
		Now:       0,
		Queued:    queued,
		Running:   running,
		Cluster:   cl,
		DB:        db(t),
		MaxPerJob: 16,
	}
}

func mkJob(id, modelName string, gb, reqGPUs, prio int) *Job {
	return &Job{
		Trace: trace.Job{
			ID: id, Workload: model.Workload{Model: modelName, GlobalBatch: gb},
			Iterations: 100, ReqGPUs: reqGPUs, ReqType: "A40", Priority: prio,
		},
		State:            StateQueued,
		LaunchedAt:       -1,
		RemainingSamples: 100 * float64(gb),
		CurPriority:      prio,
	}
}

func TestArenaLaunchesQueuedJobs(t *testing.T) {
	p := NewArena()
	j := mkJob("j1", "WRes-1B", 256, 2, 1)
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	alloc, ok := asg.Place["j1"]
	if !ok || alloc.IsZero() {
		t.Fatal("queued job not launched on an empty cluster")
	}
	if p.PerceivedThr(ctx.DB, j.Workload(), alloc.GPUType, alloc.N) <= 0 {
		t.Fatal("launched on a perceived-infeasible allocation")
	}
}

func TestArenaDenseAllocationForAPOnlyModel(t *testing.T) {
	// GPT-2.6B cannot run DP on A10 and needs ≥4 A40 for DP, but AP runs
	// it on 2×A40: Arena must be willing to use the dense allocation.
	p := NewArena()
	j := mkJob("j1", "GPT-2.6B", 128, 2, 1)
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not placed")
	}
	if thr := ctx.DB.ArenaActualThr(j.Workload(), alloc.GPUType, alloc.N); thr <= 0 {
		t.Fatalf("allocation %v is not actually runnable", alloc)
	}
}

func TestArenaGiantModelSchedulable(t *testing.T) {
	// GPT-6.7B fits no GPU type with pure DP; Arena schedules it anyway.
	p := NewArena()
	j := mkJob("j1", "GPT-6.7B", 128, 4, 1)
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	if _, ok := asg.Place["j1"]; !ok {
		t.Fatal("AP-only model not scheduled")
	}
}

func TestArenaPriorityOrder(t *testing.T) {
	// With capacity for only one job, the higher-priority (lower λ) job
	// launches first even if it arrived later.
	p := NewArena()
	lo := mkJob("lo", "WRes-1B", 256, 16, 3)
	hi := mkJob("hi", "WRes-1B", 256, 16, 1)
	lo.SubmittedAt, hi.SubmittedAt = 0, 10
	ctx := testCtx(t, []*Job{lo, hi}, nil)
	// Shrink capacity: occupy most of the cluster.
	if err := ctx.Cluster.Alloc("blocker", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Cluster.Alloc("blocker2", "A10", 32); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(ctx)
	if _, ok := asg.Place["hi"]; !ok {
		t.Fatal("high-priority job should launch")
	}
}

func TestArenaPriorityPromotion(t *testing.T) {
	p := NewArena()
	j := mkJob("j1", "WRes-1B", 256, 2, 3)
	j.SubmittedAt = 0
	ctx := testCtx(t, []*Job{j}, nil)
	ctx.Now = 5 * 3600 // queued five hours: promoted twice
	p.promote(ctx)
	if j.CurPriority != 1 {
		t.Fatalf("priority = %d after 5h, want 1", j.CurPriority)
	}
}

func TestArenaScaleDownToAdmit(t *testing.T) {
	// A running job holds the whole A40 region; a queued job arrives.
	// Arena must scale the incumbent down to launch the newcomer.
	p := NewArena()
	run := mkJob("big", "WRes-1B", 256, 16, 1)
	run.Alloc = Alloc{GPUType: "A40", N: 16}
	queued := mkJob("new", "WRes-1B", 256, 2, 1)
	ctx := testCtx(t, []*Job{queued}, []*Job{run})
	// Exhaust the rest of the cluster so scale-down is the only path.
	if err := ctx.Cluster.Alloc("filler-a40", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Cluster.Alloc("filler-a10", "A10", 32); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(ctx)
	if _, ok := asg.Place["new"]; !ok {
		t.Fatal("newcomer not admitted")
	}
	down, ok := asg.Place["big"]
	if !ok || down.N >= 16 {
		t.Fatalf("incumbent not scaled down: %v", down)
	}
}

func TestArenaScaleDownRespectsDepth(t *testing.T) {
	p := NewArena()
	p.D = 0 // no scaling budget
	run := mkJob("big", "WRes-1B", 256, 16, 1)
	run.Alloc = Alloc{GPUType: "A40", N: 16}
	queued := mkJob("new", "WRes-1B", 256, 2, 1)
	ctx := testCtx(t, []*Job{queued}, []*Job{run})
	if err := ctx.Cluster.Alloc("filler-a40", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Cluster.Alloc("filler-a10", "A10", 32); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(ctx)
	if _, ok := asg.Place["big"]; ok {
		t.Fatal("scale-down happened despite D=0")
	}
}

func TestArenaScaleUpIdleCapacity(t *testing.T) {
	// One long job on 2 GPUs, empty queue, idle cluster: scale it up.
	p := NewArena()
	run := mkJob("solo", "WRes-1B", 256, 2, 1)
	run.Alloc = Alloc{GPUType: "A40", N: 2}
	run.RemainingSamples = 1e9 // long enough to amortize the restart
	ctx := testCtx(t, nil, []*Job{run})
	asg := p.Assign(ctx)
	up, ok := asg.Place["solo"]
	if !ok || up.N <= 2 {
		t.Fatalf("idle capacity not used: %v (ok=%v)", up, ok)
	}
}

func TestArenaNoScaleUpForNearlyDoneJob(t *testing.T) {
	// A job about to finish should not pay a restart for a small gain.
	p := NewArena()
	run := mkJob("done-soon", "WRes-1B", 256, 2, 1)
	run.Alloc = Alloc{GPUType: "A40", N: 2}
	run.RemainingSamples = 10 // finishes within seconds
	ctx := testCtx(t, nil, []*Job{run})
	asg := p.Assign(ctx)
	if _, ok := asg.Place["done-soon"]; ok {
		t.Fatal("nearly-done job should not be rescaled")
	}
}

func TestArenaRevertsWastedScaleDown(t *testing.T) {
	// Regression for the speculative scale-down leak: a queued GPT-6.7B
	// needs ≥ 4 A40 (and ≥ 8 A10), but the only shrinkable victim runs on
	// 4 A40 — halving it twice frees 3 GPUs at most, so the launch can
	// never land. The shrinks are speculative capacity-freeing moves for
	// that launch; when it fails they must be rolled back, not left in
	// asg.Place to rob the victim of half its GPUs for nothing.
	p := NewArena() // D = 3: deep enough to stage both halvings
	victim := mkJob("victim", "WRes-1B", 256, 4, 1)
	victim.Alloc = Alloc{GPUType: "A40", N: 4}
	queued := mkJob("new", "GPT-6.7B", 128, 4, 1)
	ctx := testCtx(t, []*Job{queued}, []*Job{victim})
	// Exhaust everything else so scale-down is the only possible source
	// of capacity (Cluster A: 32×A40 + 32×A10, victim holds 4 A40).
	if err := ctx.Cluster.Alloc("filler-a40", "A40", 28); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Cluster.Alloc("filler-a10", "A10", 32); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(ctx)
	if alloc, ok := asg.Place["new"]; ok {
		t.Fatalf("GPT-6.7B cannot fit in 3 freeable GPUs, yet launched at %v", alloc)
	}
	if down, ok := asg.Place["victim"]; ok {
		t.Fatalf("victim shrunk to %v although the enabling launch never landed", down)
	}
	if len(asg.Place) != 0 {
		t.Fatalf("failed launch must leave no placements, got %v", asg.Place)
	}
}

func TestArenaScaleDownStillLandsWhenLaunchFits(t *testing.T) {
	// The staging must not break the successful path: identical setup but
	// with a victim large enough that one halving frees room — the shrink
	// and the launch must both be in the assignment.
	p := NewArena()
	victim := mkJob("victim", "WRes-1B", 256, 16, 1)
	victim.Alloc = Alloc{GPUType: "A40", N: 16}
	queued := mkJob("new", "GPT-6.7B", 128, 4, 1)
	ctx := testCtx(t, []*Job{queued}, []*Job{victim})
	if err := ctx.Cluster.Alloc("filler-a40", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Cluster.Alloc("filler-a10", "A10", 32); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(ctx)
	if _, ok := asg.Place["new"]; !ok {
		t.Fatal("launch should land once the victim's halving frees 8 GPUs")
	}
	down, ok := asg.Place["victim"]
	if !ok || down.N >= 16 {
		t.Fatalf("victim shrink must persist with the landed launch, got %v (ok=%v)", down, ok)
	}
}

func TestArenaRigidNonPow2SnapsToProfiledSize(t *testing.T) {
	// Regression for rigid-mode starvation: the database profiles
	// power-of-two grid sizes only, so a rigid 3-GPU request must snap to
	// 4 (the next profiled size) instead of probing 3→6→12 off the grid
	// and queueing forever.
	p := NewArena()
	p.DisableElastic = true
	j := mkJob("j1", "WRes-1B", 256, 3, 1)
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("rigid non-power-of-two job starved on an empty cluster")
	}
	if alloc.N != 4 {
		t.Fatalf("request of 3 must run at the next profiled size 4, got %v", alloc)
	}
}

func TestArenaRigidInfeasibleDropped(t *testing.T) {
	// A rigid request no profiled size can serve (GPT-6.7B needs ≥ 8 A10,
	// capped here at 4 per job) is dropped with a warning rather than
	// left to head-of-line-block its priority queue forever.
	p := NewArena()
	p.DisableElastic = true
	p.DisableHetero = true
	var warnings []string
	p.Warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	j := mkJob("j1", "GPT-6.7B", 128, 3, 1)
	j.Trace.ReqType = "A10"
	ctx := testCtx(t, []*Job{j}, nil)
	ctx.MaxPerJob = 4
	asg := p.Assign(ctx)
	if len(asg.Drop) != 1 || asg.Drop[0] != "j1" {
		t.Fatalf("infeasible rigid job not dropped: %v", asg.Drop)
	}
	if _, ok := asg.Place["j1"]; ok {
		t.Fatal("dropped job must not be placed")
	}
	if len(warnings) != 1 {
		t.Fatalf("expected one drop warning, got %v", warnings)
	}
}

func TestArenaDisableElastic(t *testing.T) {
	p := NewArena()
	p.DisableElastic = true
	j := mkJob("j1", "WRes-1B", 256, 4, 1)
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not placed")
	}
	if alloc.N != 4 {
		t.Fatalf("w/o elasticity the request size must be honoured: %v", alloc)
	}
}

func TestArenaDisableHetero(t *testing.T) {
	p := NewArena()
	p.DisableHetero = true
	j := mkJob("j1", "WRes-1B", 256, 2, 1)
	j.Trace.ReqType = "A10"
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not placed")
	}
	if alloc.GPUType != "A10" {
		t.Fatalf("w/o heterogeneity the requested type must be honoured: %v", alloc)
	}
}

func TestArenaAblationKnowledge(t *testing.T) {
	d := db(t)
	w := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	std := NewArena()
	noPlanner := NewArena()
	noPlanner.DisablePlanner = true
	// GPT-2.6B at 2×A40: AP feasible, DP not — the w/o-planner view hides
	// the dense allocation (Case#2).
	if std.PerceivedThr(d, w, "A40", 2) <= 0 {
		t.Fatal("Arena should see the dense AP allocation")
	}
	if noPlanner.PerceivedThr(d, w, "A40", 2) != 0 {
		t.Fatal("w/o planner the dense allocation must look infeasible")
	}
	// Deployment overheads: pruning ablation pays the full search.
	noPruning := NewArena()
	noPruning.DisablePruning = true
	if noPruning.DeployOverhead(d, w, "A40", 8) <= std.DeployOverhead(d, w, "A40", 8) {
		t.Fatal("w/o pruning must cost more to deploy")
	}
	// Profiler ablation: longer ahead-of-time pass.
	noProfiler := NewArena()
	noProfiler.DisableProfiler = true
	if noProfiler.ProfilePrepend(d, w) <= std.ProfilePrepend(d, w) {
		t.Fatal("w/o profiler must cost more to profile")
	}
}

func TestArenaDeadlineDropsHopeless(t *testing.T) {
	p := NewArena()
	p.Objective = ObjDeadline
	j := mkJob("j1", "GPT-2.6B", 128, 2, 1)
	j.Trace.Deadline = 1 // impossible
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	if len(asg.Drop) != 1 || asg.Drop[0] != "j1" {
		t.Fatalf("hopeless job not dropped: %v", asg.Drop)
	}
}

func TestArenaDeadlineKeepsFeasible(t *testing.T) {
	p := NewArena()
	p.Objective = ObjDeadline
	j := mkJob("j1", "WRes-1B", 256, 2, 1)
	j.Trace.Deadline = 7 * 24 * 3600
	ctx := testCtx(t, []*Job{j}, nil)
	asg := p.Assign(ctx)
	if len(asg.Drop) != 0 {
		t.Fatal("feasible-deadline job dropped")
	}
	if _, ok := asg.Place["j1"]; !ok {
		t.Fatal("feasible-deadline job not placed")
	}
}

func TestBestFeasibleHelpers(t *testing.T) {
	ctx := testCtx(t, nil, nil)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	thr := func(typ string, n int) float64 { return ctx.DB.APThr(w, typ, n) }
	best, ok := BestFeasible(ctx, thr)
	if !ok || best.IsZero() {
		t.Fatal("no feasible allocation on an empty cluster")
	}
	min, ok := MinFeasible(ctx, thr)
	if !ok || min.N > best.N {
		t.Fatalf("min %v should not exceed best %v", min, best)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewArena().Name() != "arena" {
		t.Error("default name")
	}
	abl := NewArena()
	abl.DisablePruning = true
	if abl.Name() != "arena-w/o-pruning" {
		t.Errorf("ablation name = %s", abl.Name())
	}
	ddl := NewArena()
	ddl.Objective = ObjDeadline
	if ddl.Name() != "arena-ddl" {
		t.Errorf("deadline name = %s", ddl.Name())
	}
}
