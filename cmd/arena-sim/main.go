// Command arena-sim runs trace-driven cluster scheduling simulations —
// the analogue of the paper artifact's simulator.py (§A.4.4).
//
// Usage:
//
//	arena-sim -policy arena -trace philly -cluster sim -jobs 3000
//	arena-sim -policy all -trace philly -cluster a
//	arena-sim -policy sia -trace pai -cluster sim -jobs 450
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/trace"
)

func main() {
	var (
		policyName  = flag.String("policy", "all", "fcfs|gavel|elasticflow|sia|arena|all")
		traceKind   = flag.String("trace", "philly", "philly|helios|pai")
		clusterName = flag.String("cluster", "sim", "a|b|sim|b-homogeneous")
		jobs        = flag.Int("jobs", 0, "job count (0 = per-trace default)")
		scale       = flag.Float64("scale", 12, "job lifespan scale")
		seed        = flag.Uint64("seed", 42, "determinism seed")
		rounds      = flag.Int("rounds", 0, "max scheduling rounds (0 = auto)")
		dbCache     = flag.String("db-cache", "", "PerfDB JSON snapshot path: load when valid, write after a fresh build")
	)
	flag.Parse()

	spec, err := pickCluster(*clusterName)
	if err != nil {
		fatal(err)
	}
	types := spec.GPUTypes()

	cfg, err := pickTrace(*traceKind, *seed, types, *jobs)
	if err != nil {
		fatal(err)
	}
	cfg.LifespanScale = *scale
	traceJobs, err := trace.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("building performance database for %v (this exercises the planner, profiler and AP searches)...\n", types)
	start := time.Now()
	db, loaded, err := perfdb.BuildOrLoad(exec.NewEngine(*seed), perfdb.Options{
		Seed: *seed, GPUTypes: types, MaxN: 16,
		Workloads: trace.DefaultWorkloads(),
	}, *dbCache)
	if err != nil {
		if db == nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "arena-sim: warning: %v (continuing with the built database)\n", err)
	}
	if loaded {
		fmt.Printf("  %d entries loaded from snapshot %s in %v\n\n", len(db.Keys()), *dbCache, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("  %d entries in %v\n\n", len(db.Keys()), time.Since(start).Round(time.Millisecond))
	}

	pols, err := pickPolicies(*policyName)
	if err != nil {
		fatal(err)
	}
	window := int(cfg.Duration / 300)
	fmt.Printf("%-16s %10s %10s %10s %10s %8s %9s\n",
		"policy", "avgJCT(s)", "avgQ(s)", "avgThr", "peakThr", "finished", "resched")
	for _, p := range pols {
		res, err := sim.Run(sim.Config{
			Spec: spec, Policy: p, Jobs: traceJobs, DB: db,
			RoundSeconds: 300, MaxRounds: pick(*rounds, 2*window+576),
			IncludeUnfinished: true, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		series := res.ThroughputSeries
		if len(series) > window {
			series = series[:window]
		}
		fmt.Printf("%-16s %10.0f %10.0f %10.1f %10.1f %5d/%-3d %9.2f\n",
			p.Name(), res.AvgJCT, res.AvgQueue,
			metrics.Mean(series), metrics.Max(series),
			res.Finished, res.Total, res.AvgReschedules)
	}
}

func pickCluster(name string) (hw.ClusterSpec, error) {
	switch name {
	case "a":
		return hw.ClusterA(), nil
	case "b":
		return hw.ClusterB(), nil
	case "sim":
		return hw.ClusterSim(), nil
	case "b-homogeneous":
		return hw.ClusterBHomogeneous(), nil
	default:
		return hw.ClusterSpec{}, fmt.Errorf("unknown cluster %q", name)
	}
}

func pickTrace(kind string, seed uint64, types []string, jobs int) (trace.Config, error) {
	switch kind {
	case "philly":
		if jobs == 0 {
			jobs = 3000
		}
		return trace.PhillyWeek(seed, types, jobs), nil
	case "helios":
		if jobs == 0 {
			jobs = 900
		}
		return trace.HeliosDay(seed, types, jobs), nil
	case "pai":
		if jobs == 0 {
			jobs = 450
		}
		return trace.PAIDay(seed, types, jobs), nil
	default:
		return trace.Config{}, fmt.Errorf("unknown trace %q", kind)
	}
}

func pickPolicies(name string) ([]sched.Policy, error) {
	switch name {
	case "fcfs":
		return []sched.Policy{policy.NewFCFS()}, nil
	case "gavel":
		return []sched.Policy{policy.NewGavel()}, nil
	case "elasticflow":
		return []sched.Policy{policy.NewElasticFlow()}, nil
	case "sia":
		return []sched.Policy{policy.NewSia()}, nil
	case "arena":
		return []sched.Policy{sched.NewArena()}, nil
	case "all":
		return []sched.Policy{
			policy.NewFCFS(), policy.NewGavel(), policy.NewElasticFlow(),
			policy.NewSia(), sched.NewArena(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arena-sim:", err)
	os.Exit(1)
}
