package core

import (
	"testing"
	"testing/quick"

	"github.com/sjtu-epcc/arena/internal/model"
)

func TestPipelineDegrees(t *testing.T) {
	got := PipelineDegrees(4, 16)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("degrees = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degrees = %v, want %v", got, want)
		}
	}
	// Capped by MaxPipelineDegree.
	if got := PipelineDegrees(64, 64); got[len(got)-1] != MaxPipelineDegree {
		t.Errorf("degrees should cap at %d: %v", MaxPipelineDegree, got)
	}
	// Capped by operator count.
	if got := PipelineDegrees(16, 3); got[len(got)-1] != 3 {
		t.Errorf("degrees should cap at op count: %v", got)
	}
}

func TestGPUCounts(t *testing.T) {
	got := GPUCounts(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v", got)
		}
	}
}

func TestEnumerate(t *testing.T) {
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	grids := Enumerate(w, 16, []string{"A40", "A10"}, 4)
	// Per type: n=1 (s=1), n=2 (s=1,2), n=4 (s=1..4) → 7 grids; 2 types.
	if len(grids) != 14 {
		t.Fatalf("got %d grids, want 14", len(grids))
	}
	seen := map[string]bool{}
	for _, g := range grids {
		if seen[g.String()] {
			t.Fatalf("duplicate grid %v", g)
		}
		seen[g.String()] = true
		if g.S > g.N {
			t.Errorf("grid %v has more stages than GPUs", g)
		}
	}
}

func TestGridStringStable(t *testing.T) {
	w := model.Workload{Model: "MoE-2.4B", GlobalBatch: 256}
	g := Grid{Workload: w, GPUType: "A100", N: 8, S: 2}
	if g.String() != "MoE-2.4B@256/8xA100/s2" {
		t.Errorf("String() = %q", g.String())
	}
}

func TestMeasureSpaceReduction(t *testing.T) {
	// §3.2: grid sharding cuts the profiled space from the full joint
	// product to O(K·N²·M) points.
	s := MeasureSpace(16, 4, 16)
	if s.JointPlans <= float64(s.GridCount) {
		t.Fatal("joint space should dwarf the grid count")
	}
	// The reduction factor must be astronomical for the paper's example.
	if s.JointPlans/float64(s.GridCount) < 1e4 {
		t.Errorf("reduction factor too small: %v", s.JointPlans/float64(s.GridCount))
	}
	if s.PerGridEstOnly <= 1 {
		t.Error("each grid should contain many estimated-only plans")
	}
}

func TestPow2CompositionsProperty(t *testing.T) {
	// Property: the count of ordered power-of-two compositions is at least
	// 1 whenever n ≥ s and n is reachable (s ones + powers), and 0 when
	// n < s.
	f := func(rawN, rawS uint8) bool {
		n := int(rawN%16) + 1
		s := int(rawS%8) + 1
		c := pow2Compositions(n, s)
		if n < s {
			return c == 0
		}
		return c >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Known values: compositions of 4 into 2 power-of-two parts:
	// (1,?)→ no (3 not pow2 reachable as single part? 1+3 invalid), valid:
	// (2,2), (1,3)✗, (3,1)✗ → plus (1,1) sums 2 ✗. So exactly 1.
	if got := pow2Compositions(4, 2); got != 1 {
		t.Errorf("pow2Compositions(4,2) = %v, want 1", got)
	}
	if got := pow2Compositions(3, 2); got != 2 {
		// (1,2) and (2,1).
		t.Errorf("pow2Compositions(3,2) = %v, want 2", got)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{15, 0, 1}, {15, 1, 15}, {15, 3, 455}, {15, 7, 6435}, {5, 6, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBestPerResource(t *testing.T) {
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	scores := map[Grid]float64{
		{Workload: w, GPUType: "A40", N: 4, S: 1}: 10,
		{Workload: w, GPUType: "A40", N: 4, S: 2}: 14,
		{Workload: w, GPUType: "A40", N: 4, S: 4}: 12,
		{Workload: w, GPUType: "A40", N: 8, S: 2}: 20,
		{Workload: w, GPUType: "A10", N: 4, S: 2}: 9,
	}
	best := BestPerResource(scores)
	if len(best) != 3 {
		t.Fatalf("got %d resources", len(best))
	}
	if g := best[Resource{GPUType: "A40", N: 4}]; g.S != 2 {
		t.Errorf("best 4×A40 grid = %v", g)
	}
	if g := best[Resource{GPUType: "A40", N: 8}]; g.S != 2 {
		t.Errorf("best 8×A40 grid = %v", g)
	}
	if g := best[Resource{GPUType: "A10", N: 4}]; g.S != 2 {
		t.Errorf("best 4×A10 grid = %v", g)
	}
}

func TestResourceString(t *testing.T) {
	r := Resource{GPUType: "V100", N: 16}
	if r.String() != "16xV100" {
		t.Errorf("String() = %q", r.String())
	}
}
