package search

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// Per-candidate profiling cost model: each stage candidate is compiled and
// measured on hardware; a search session additionally pays a fixed
// compilation/tracing base cost.
const (
	stageProfileSeconds = 0.33
	searchBaseSeconds   = 120.0
	topKEndToEnd        = 12 // compositions measured end-to-end per degree
)

// Outcome reports a search's best plan and its cost accounting.
type Outcome struct {
	Plan   *parallel.Plan
	Result exec.Result

	StageEvals int     // profiled stage candidates (the dominant cost)
	PlanEvals  int     // end-to-end plan measurements
	SearchTime float64 // modeled wall-clock seconds for the search
}

// Feasible reports whether the search found any memory-feasible plan.
func (o Outcome) Feasible() bool { return o.Plan != nil && o.Result.Fits }

// stageCand is one profiled stage candidate.
type stageCand struct {
	start, end int
	gpus       int
	dp, tp     int
	time       float64 // per-microbatch latency (engine measurement)
	feasible   bool
}

// Options tune how a search session executes. The zero value reproduces
// the legacy behavior: default node packing, no memoization, serial
// candidate profiling. Options change only wall-clock execution, never
// outcomes: the engine is a pure function of its seed, so the cached and
// parallel paths are bit-identical to the serial one (including the
// StageEvals/SearchTime cost model, which accounts profiled candidates,
// not cache misses — a real system re-deploying a memoized measurement
// still models the paper's per-candidate profiling bill).
type Options struct {
	// GPUsPerNode overrides the device catalog's node packing (0 = the
	// spec default).
	GPUsPerNode int
	// Cache, when non-nil, memoizes stage measurements and plan
	// evaluations across degrees and across searches sharing the cache.
	// It must be bound to the same engine the search runs on.
	Cache *evalcache.Cache
	// Workers bounds the candidate-profiling fan-out per degree
	// (<= 1 = serial, < 0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one event per pipeline degree
	// searched. It never affects outcomes.
	Progress core.ProgressFunc
}

// workers resolves the effective pool width.
func (o Options) workers() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// searcher carries shared state across one search session.
type searcher struct {
	ctx         context.Context
	eng         *exec.Engine
	graph       *model.Graph
	spec        hw.GPU
	globalBatch int
	gpusPerNode int
	cache       *evalcache.Cache
	shard       *evalcache.StageShard // session view of cache; nil iff cache is
	workers     int

	stageEvals int
	err        error // sticky cancellation error (always ctx.Err())
}

// measureStage profiles one candidate, through the memo table when the
// session has one.
func (s *searcher) measureStage(st parallel.StagePlan, microSamples float64) exec.StageMeasure {
	if s.shard != nil {
		return s.shard.Measure(st, microSamples)
	}
	return s.eng.MeasureStage(s.graph, st, s.spec, microSamples, s.gpusPerNode)
}

// evaluate measures a composed plan end to end, through the memo table
// when the session has one.
func (s *searcher) evaluate(plan *parallel.Plan) (exec.Result, error) {
	if s.cache != nil {
		return s.cache.Evaluate(s.graph, plan, s.spec, s.globalBatch, s.gpusPerNode)
	}
	return s.eng.EvaluateWithNodes(s.graph, plan, s.spec, s.globalBatch, s.gpusPerNode)
}

// FullSearch explores the complete adaptive-parallelism space for n GPUs
// of the given type: every pipeline degree, every contiguous partition,
// every power-of-two GPU assignment and intra-stage shape — the Alpa
// workflow. It returns the best measured plan.
func FullSearch(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int) (Outcome, error) {
	return FullSearchWithNodes(eng, g, spec, globalBatch, n, spec.GPUsPerNode)
}

// FullSearchWithNodes is FullSearch with explicit GPUs-per-node placement.
func FullSearchWithNodes(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n, gpusPerNode int) (Outcome, error) {
	return FullSearchOpts(eng, g, spec, globalBatch, n, Options{GPUsPerNode: gpusPerNode})
}

// FullSearchOpts is FullSearch with execution options (memoization cache,
// profiling fan-out, node packing).
func FullSearchOpts(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int, opts Options) (Outcome, error) {
	return FullSearchCtx(context.Background(), eng, g, spec, globalBatch, n, opts)
}

// FullSearchCtx is FullSearchOpts with cooperative cancellation: when ctx
// is cancelled the search stops within one scheduling quantum of its
// worker pool and returns ctx.Err() with a zero Outcome. Uncancelled, it
// is bit-identical to FullSearchOpts.
func FullSearchCtx(ctx context.Context, eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int, opts Options) (Outcome, error) {
	if n < 1 {
		return Outcome{}, fmt.Errorf("search: n=%d", n)
	}
	s, err := newSearcher(ctx, eng, g, spec, globalBatch, opts)
	if err != nil {
		return Outcome{}, err
	}
	var best Outcome
	degrees := core.PipelineDegrees(n, len(g.Ops))
	for i, deg := range degrees {
		out := s.searchDegree(deg, n, nil)
		if s.err != nil {
			return Outcome{}, s.err
		}
		mergeBest(&best, out)
		opts.Progress.Emit("search.full", fmt.Sprintf("deg=%d", deg), i+1, len(degrees))
	}
	best.StageEvals = s.stageEvals
	best.SearchTime = searchBaseSeconds + float64(s.stageEvals)*stageProfileSeconds
	return best, nil
}

// newSearcher validates options and builds a search session.
func newSearcher(ctx context.Context, eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch int, opts Options) (*searcher, error) {
	if opts.Cache != nil && opts.Cache.Engine() != eng {
		return nil, fmt.Errorf("search: cache is bound to a different engine")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gpusPerNode := opts.GPUsPerNode
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	s := &searcher{
		ctx: ctx, eng: eng, graph: g, spec: spec, globalBatch: globalBatch,
		gpusPerNode: gpusPerNode, cache: opts.Cache, workers: opts.workers(),
	}
	if s.cache != nil {
		s.shard = s.cache.StageShard(g, spec, gpusPerNode)
	}
	return s, nil
}

// mergeBest folds a per-degree outcome into the running best, keeping
// plan-eval counts cumulative.
func mergeBest(best *Outcome, out Outcome) {
	best.PlanEvals += out.PlanEvals
	if out.Plan == nil || !out.Result.Fits {
		return
	}
	if best.Plan == nil || !best.Result.Fits || out.Result.Throughput > best.Result.Throughput {
		best.Plan, best.Result = out.Plan, out.Result
	}
}

// searchDegree finds the best plan with exactly `deg` stages over n GPUs.
// When restrict is non-nil it is consulted to prune stage candidates
// (Arena's runtime pruning rules).
func (s *searcher) searchDegree(deg, n int, restrict *Restriction) Outcome {
	numMicro := parallel.DefaultMicrobatches(deg)
	cands := s.profileStageCandidates(deg, n, numMicro, restrict)
	if s.err != nil || len(cands) == 0 {
		return Outcome{}
	}

	// Bottleneck-bounded composition: enumerate t_max candidates from the
	// profiled latency distribution, DP-compose minimal-total pipelines
	// under each bound, measure the distinct results end-to-end.
	bounds := latencyQuantiles(cands, 24)
	// The memoized session additionally collapses redundant compose DPs:
	// bounds at or above a result's own bottleneck provably reproduce it
	// (see composeBounds). The plain session runs one DP per bound — the
	// legacy path the determinism tests compare against.
	var composed [][]parallel.StagePlan
	if s.cache != nil {
		composed = s.composeBounds(cands, deg, n, bounds)
	}
	seen := map[string]bool{}
	var out Outcome
	for bi, tmax := range bounds {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return Outcome{}
		}
		var stages []parallel.StagePlan
		if composed != nil {
			stages = composed[bi]
		} else {
			stages, _ = s.compose(cands, deg, n, tmax)
		}
		if stages == nil {
			continue
		}
		// StagesKey uniquely encodes the stage sequence (ranges + shapes),
		// which — with numMicro fixed per degree — is the whole plan.
		key := parallel.StagesKey(stages)
		if seen[key] {
			continue
		}
		seen[key] = true
		if out.PlanEvals >= topKEndToEnd {
			break
		}
		plan := &parallel.Plan{Stages: stages, NumMicrobatches: numMicro}
		res, err := s.evaluate(plan)
		out.PlanEvals++
		if err != nil || !res.Fits {
			continue
		}
		if out.Plan == nil || res.Throughput > out.Result.Throughput {
			out.Plan, out.Result = plan, res
		}
	}
	return out
}

// profileStageCandidates profiles every (range, gpus, dp, tp) stage
// candidate valid for a deg-stage pipeline of n GPUs, applying the
// restriction's range and shape pruning when present.
//
// Enumeration, cost accounting and memory feasibility run serially (they
// are cheap and deterministic); the expensive engine measurements then fan
// out over the session's worker pool. Because the engine is pure, the
// resulting candidate list is bit-identical to the serial path.
func (s *searcher) profileStageCandidates(deg, n, numMicro int, restrict *Restriction) []stageCand {
	numOps := len(s.graph.Ops)
	microSamples := float64(s.globalBatch) / float64(numMicro)
	var jobs []parallel.StagePlan
	for start := 0; start < numOps; start++ {
		for end := start + 1; end <= numOps; end++ {
			// A stage of a deg-pipeline must leave ≥ start ops before and
			// ≥ (deg-1) ops behind overall; cheap necessary conditions:
			if deg > 1 && end-start > numOps-(deg-1) {
				continue
			}
			if restrict != nil && !restrict.RangeAllowed(s.graph, start, end) {
				continue
			}
			for gpus := 1; gpus <= n-(deg-1); gpus *= 2 {
				for tp := 1; tp <= gpus; tp *= 2 {
					dp := gpus / tp
					if dp*tp != gpus {
						continue
					}
					if restrict != nil && !restrict.ShapeAllowed(start, end, gpus, dp, tp) {
						continue
					}
					st := parallel.StagePlan{OpStart: start, OpEnd: end, DP: dp, TP: tp}
					s.stageEvals++ // profiling happens regardless of OOM outcome
					if !exec.StageFitsMemory(s.graph, st, s.spec, s.globalBatch, numMicro, deg) {
						continue
					}
					jobs = append(jobs, st)
				}
			}
		}
	}

	cands := make([]stageCand, len(jobs))
	if err := core.ParallelForCtx(s.ctx, len(jobs), s.workers, func(i int) {
		st := jobs[i]
		m := s.measureStage(st, microSamples)
		cands[i] = stageCand{
			start: st.OpStart, end: st.OpEnd, gpus: st.GPUs(), dp: st.DP, tp: st.TP,
			time: m.Time(), feasible: true,
		}
	}); err != nil {
		s.err = err
		return nil
	}
	return cands
}

// latencyQuantiles returns up to k representative bottleneck bounds drawn
// from the candidate latency distribution. The result is deduplicated:
// identical bounds would DP-compose identical pipelines, so repeats only
// waste compose work.
func latencyQuantiles(cands []stageCand, k int) []float64 {
	times := make([]float64, 0, len(cands))
	for _, c := range cands {
		times = append(times, c.time)
	}
	sort.Float64s(times)
	var out []float64
	if len(times) <= k {
		out = times
	} else {
		out = make([]float64, 0, k)
		for i := 0; i < k; i++ {
			idx := (len(times) - 1) * i / (k - 1)
			out = append(out, times[idx])
		}
	}
	return slices.Compact(out)
}

// composeBounds returns compose's result for every bound, running the DP
// only once per distinct outcome. It relies on admitted-set monotonicity:
// the candidates admitted under bound t are a subset of those admitted
// under t' ≥ t, so the optimum under t' whose own bottleneck is b ≤ t is
// feasible — and therefore still optimal — under every bound in [b, t'].
// Likewise a bound with no feasible composition proves every smaller
// bound infeasible. Solving the bound list by descending intervals costs
// one DP per distinct result plan instead of one per bound.
//
// When the optimum under a bound is unique (the generic case: candidate
// latencies carry engine jitter, so exact cost ties between different
// compositions do not occur), the per-bound results are identical to
// running compose on each bound — the determinism tests cross-validate
// this path against the legacy loop.
func (s *searcher) composeBounds(cands []stageCand, deg, n int, bounds []float64) [][]parallel.StagePlan {
	results := make([][]parallel.StagePlan, len(bounds))
	scr := newComposeScratch(len(s.graph.Ops), deg, n)
	var solve func(lo, hi int)
	solve = func(lo, hi int) {
		if lo > hi {
			return
		}
		stages, bottleneck := s.composeScratch(cands, deg, n, bounds[hi], scr)
		if stages == nil {
			return // every bound ≤ bounds[hi] is infeasible too
		}
		j := sort.SearchFloat64s(bounds[lo:hi+1], bottleneck) + lo
		for i := j; i <= hi; i++ {
			results[i] = stages
		}
		solve(lo, j-1)
	}
	solve(0, len(bounds)-1)
	return results
}

// composeScratch is compose over a reusable flat table: cells carry an
// epoch stamp instead of being reallocated and cleared per bound. The
// relaxation order, comparisons and tie-breaking are identical to
// compose, so both produce the same stages for the same inputs (the
// determinism tests cross-validate the two).
type composeScratch struct {
	numOps, n int
	cost      []float64
	cand      []*stageCand
	stamp     []uint32
	epoch     uint32
	byStart   [][]*stageCand
}

func newComposeScratch(numOps, deg, n int) *composeScratch {
	size := (deg + 1) * (numOps + 1) * (n + 1)
	return &composeScratch{
		numOps: numOps, n: n,
		cost:    make([]float64, size),
		cand:    make([]*stageCand, size),
		stamp:   make([]uint32, size),
		byStart: make([][]*stageCand, numOps),
	}
}

func (scr *composeScratch) idx(k, start, g int) int {
	return (k*(scr.numOps+1)+start)*(scr.n+1) + g
}

func (s *searcher) composeScratch(cands []stageCand, deg, n int, tmax float64, scr *composeScratch) ([]parallel.StagePlan, float64) {
	numOps := len(s.graph.Ops)
	const inf = math.MaxFloat64
	scr.epoch++
	byStart := scr.byStart
	for i := range byStart {
		byStart[i] = byStart[i][:0]
	}
	for i := range cands {
		c := &cands[i]
		if c.time <= tmax {
			byStart[c.start] = append(byStart[c.start], c)
		}
	}
	get := func(k, start, g int) (float64, *stageCand) {
		i := scr.idx(k, start, g)
		if scr.stamp[i] != scr.epoch {
			return inf, nil
		}
		return scr.cost[i], scr.cand[i]
	}
	set := func(k, start, g int, cost float64, c *stageCand) {
		i := scr.idx(k, start, g)
		scr.cost[i], scr.cand[i], scr.stamp[i] = cost, c, scr.epoch
	}
	set(0, numOps, 0, 0, nil)
	for k := 1; k <= deg; k++ {
		for start := numOps - 1; start >= 0; start-- {
			for _, c := range byStart[start] {
				for g := c.gpus; g <= n; g++ {
					rest, _ := get(k-1, c.end, g-c.gpus)
					if rest == inf {
						continue
					}
					total := c.time + rest
					if cur, _ := get(k, start, g); total < cur {
						set(k, start, g, total, c)
					}
				}
			}
		}
	}
	if cost, _ := get(deg, 0, n); cost == inf {
		return nil, 0
	}
	// Reconstruct the stage sequence front to back.
	stages := make([]parallel.StagePlan, 0, deg)
	var bottleneck float64
	start, g := 0, n
	for k := deg; k >= 1; k-- {
		_, c := get(k, start, g)
		if c == nil {
			return nil, 0
		}
		stages = append(stages, parallel.StagePlan{OpStart: c.start, OpEnd: c.end, DP: c.dp, TP: c.tp})
		if c.time > bottleneck {
			bottleneck = c.time
		}
		start, g = c.end, g-c.gpus
	}
	if start != numOps || g != 0 {
		return nil, 0
	}
	return stages, bottleneck
}

// compose runs the inter-operator DP: split ops into exactly deg stages
// over exactly n GPUs minimizing total per-microbatch latency subject to
// every stage ≤ tmax. Returns the stage sequence and its bottleneck (the
// slowest stage's latency), or nil when infeasible. Table layout:
// tables[k][start][g] = min total latency covering ops[start:] with
// exactly k stages using exactly g GPUs.
func (s *searcher) compose(cands []stageCand, deg, n int, tmax float64) ([]parallel.StagePlan, float64) {
	numOps := len(s.graph.Ops)
	const inf = math.MaxFloat64
	type cell struct {
		cost float64
		cand *stageCand
	}
	// Index candidates by start op, pre-filtered by the bottleneck bound.
	byStart := make([][]*stageCand, numOps)
	for i := range cands {
		c := &cands[i]
		if c.time <= tmax {
			byStart[c.start] = append(byStart[c.start], c)
		}
	}
	tables := make([][][]cell, deg+1)
	for k := 0; k <= deg; k++ {
		tables[k] = make([][]cell, numOps+1)
		for i := range tables[k] {
			tables[k][i] = make([]cell, n+1)
			for j := range tables[k][i] {
				tables[k][i][j] = cell{cost: inf}
			}
		}
	}
	tables[0][numOps][0] = cell{cost: 0}
	for k := 1; k <= deg; k++ {
		for start := numOps - 1; start >= 0; start-- {
			for _, c := range byStart[start] {
				for g := c.gpus; g <= n; g++ {
					rest := tables[k-1][c.end][g-c.gpus]
					if rest.cost == inf {
						continue
					}
					total := c.time + rest.cost
					if total < tables[k][start][g].cost {
						tables[k][start][g] = cell{cost: total, cand: c}
					}
				}
			}
		}
	}
	if tables[deg][0][n].cost == inf {
		return nil, 0
	}
	// Reconstruct the stage sequence front to back.
	stages := make([]parallel.StagePlan, 0, deg)
	var bottleneck float64
	start, g := 0, n
	for k := deg; k >= 1; k-- {
		c := tables[k][start][g].cand
		if c == nil {
			return nil, 0
		}
		stages = append(stages, parallel.StagePlan{OpStart: c.start, OpEnd: c.end, DP: c.dp, TP: c.tp})
		if c.time > bottleneck {
			bottleneck = c.time
		}
		start, g = c.end, g-c.gpus
	}
	if start != numOps || g != 0 {
		return nil, 0
	}
	return stages, bottleneck
}
