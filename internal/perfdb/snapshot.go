package perfdb

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/model"
)

// SnapshotError marks a snapshot persistence failure that did not affect
// the built database: the build succeeded and the returned DB is fully
// usable; only the cross-run cache was lost. Callers distinguish it with
// errors.As to warn-and-continue instead of aborting.
type SnapshotError struct {
	Path string
	Err  error
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("perfdb: saving snapshot %s: %v", e.Path, e.Err)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// snapshotVersion guards the on-disk schema; bump on incompatible change.
const snapshotVersion = 1

// snapshot is the JSON form of a DB. Struct-keyed maps cannot marshal
// directly, so entries and wall times flatten into sorted slices;
// encoding/json round-trips float64 exactly, so a loaded database is
// bit-identical to the built one. Online observations are deliberately
// excluded — they are per-simulation state the simulator resets anyway.
type snapshot struct {
	Version  int      `json:"version"`
	Seed     uint64   `json:"seed"`
	GPUTypes []string `json:"gpuTypes"`
	MaxN     int      `json:"maxN"`

	Entries []entrySnap `json:"entries"`

	ArenaWall []wallSnap `json:"arenaProfileWall"`
	DPWall    []wallSnap `json:"dpProfileWall"`
	SiaWall   []wallSnap `json:"siaProfileWall"`
}

type entrySnap struct {
	Model       string `json:"model"`
	GlobalBatch int    `json:"globalBatch"`
	GPUType     string `json:"gpuType"`
	N           int    `json:"n"`
	Entry       Entry  `json:"entry"`
}

type wallSnap struct {
	Model       string  `json:"model"`
	GlobalBatch int     `json:"globalBatch"`
	Seconds     float64 `json:"seconds"`
}

// Save writes the database as a JSON snapshot, atomically (write to a
// temp file in the target directory, then rename).
func (db *DB) Save(path string) error {
	snap := snapshot{
		Version:  snapshotVersion,
		Seed:     db.seed,
		GPUTypes: db.GPUTypes,
		MaxN:     db.MaxN,
	}
	for _, k := range db.Keys() {
		snap.Entries = append(snap.Entries, entrySnap{
			Model: k.Workload.Model, GlobalBatch: k.Workload.GlobalBatch,
			GPUType: k.GPUType, N: k.N,
			Entry: *db.entries[k],
		})
	}
	snap.ArenaWall = wallSnaps(db.arenaProfileWall)
	snap.DPWall = wallSnaps(db.dpProfileWall)
	snap.SiaWall = wallSnaps(db.siaProfileWall)

	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".perfdb-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// wallSnaps flattens a per-workload wall-time map, sorted for stable dumps.
func wallSnaps(m map[model.Workload]float64) []wallSnap {
	out := make([]wallSnap, 0, len(m))
	for w, s := range m {
		out = append(out, wallSnap{Model: w.Model, GlobalBatch: w.GlobalBatch, Seconds: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].GlobalBatch < out[j].GlobalBatch
	})
	return out
}

// Load reads a JSON snapshot back into a fully usable database.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("perfdb: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("perfdb: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	db := &DB{
		GPUTypes:         snap.GPUTypes,
		MaxN:             snap.MaxN,
		seed:             snap.Seed,
		entries:          map[Key]*Entry{},
		arenaProfileWall: map[model.Workload]float64{},
		dpProfileWall:    map[model.Workload]float64{},
		siaProfileWall:   map[model.Workload]float64{},
		observed:         map[Key]float64{},
	}
	for _, es := range snap.Entries {
		e := es.Entry
		db.entries[Key{
			Workload: model.Workload{Model: es.Model, GlobalBatch: es.GlobalBatch},
			GPUType:  es.GPUType, N: es.N,
		}] = &e
	}
	loadWalls(db.arenaProfileWall, snap.ArenaWall)
	loadWalls(db.dpProfileWall, snap.DPWall)
	loadWalls(db.siaProfileWall, snap.SiaWall)
	return db, nil
}

func loadWalls(dst map[model.Workload]float64, src []wallSnap) {
	for _, ws := range src {
		dst[model.Workload{Model: ws.Model, GlobalBatch: ws.GlobalBatch}] = ws.Seconds
	}
}

// Matches reports whether the database can serve a build request: same
// engine seed, same GPU-type set, at least the requested MaxN, and an
// entry column for every requested workload. Options defaults are applied
// exactly as Build applies them, including rejecting a non-zero
// Options.Seed that contradicts the engine's — so a misconfigured pairing
// falls through to Build, which reports it.
func (db *DB) Matches(seed uint64, opts Options) bool {
	if db.seed != seed {
		return false
	}
	if opts.Seed != 0 && opts.Seed != seed {
		return false
	}
	if opts.MaxN < 1 {
		opts.MaxN = 16
	}
	if len(opts.Workloads) == 0 {
		opts.Workloads = model.Workloads()
	}
	if db.MaxN < opts.MaxN || len(db.GPUTypes) != len(opts.GPUTypes) {
		return false
	}
	for i, t := range opts.GPUTypes {
		if db.GPUTypes[i] != t {
			return false
		}
	}
	for _, w := range opts.Workloads {
		for _, t := range opts.GPUTypes {
			if _, ok := db.entries[Key{Workload: w, GPUType: t, N: 1}]; !ok {
				return false
			}
		}
	}
	return true
}

// BuildOrLoad returns a database for the request, loading the snapshot at
// path when it exists and matches (seed, types, counts, workloads), and
// otherwise building fresh and writing the snapshot for the next run. The
// returned bool reports whether the snapshot was used. An empty path
// always builds and never writes. A failed snapshot write returns the
// (fully usable) database together with a *SnapshotError: persistence is
// a cache concern, and an expensive successful build must not be
// discarded over it — callers decide whether to warn or abort.
func BuildOrLoad(eng *exec.Engine, opts Options, path string) (*DB, bool, error) {
	return BuildOrLoadCtx(context.Background(), eng, opts, path)
}

// BuildOrLoadCtx is BuildOrLoad with cooperative cancellation of the
// build step (snapshot loads are quick and run to completion regardless).
func BuildOrLoadCtx(ctx context.Context, eng *exec.Engine, opts Options, path string) (*DB, bool, error) {
	if path == "" {
		db, err := BuildCtx(ctx, eng, opts)
		return db, false, err
	}
	if db, err := Load(path); err == nil && db.Matches(eng.Seed(), opts) {
		return db, true, nil
	}
	db, err := BuildCtx(ctx, eng, opts)
	if err != nil {
		return nil, false, err
	}
	if err := db.Save(path); err != nil {
		return db, false, &SnapshotError{Path: path, Err: err}
	}
	return db, false, nil
}
