package arena_test

import (
	"context"
	"reflect"
	"testing"

	arena "github.com/sjtu-epcc/arena"
)

// TestSessionStorePersistsMeasurements is the cross-process reuse
// guarantee behind `arena-plan -store dir` run twice: a second session
// opening the same store performs the same work without a single cold
// stage measurement, and the results are bit-identical.
func TestSessionStorePersistsMeasurements(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}

	run := func(t *testing.T) (arena.SearchOutcome, *arena.Session) {
		t.Helper()
		sess, err := arena.New(
			arena.WithSeed(42),
			arena.WithGPUTypes("A40"),
			arena.WithMaxN(4),
			arena.WithWorkloads(w),
			arena.WithStore(dir),
		)
		if err != nil {
			t.Fatal(err)
		}
		g := arena.MustBuildModel(w.Model)
		out, err := sess.FullSearch(ctx, g, "A40", w.GlobalBatch, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		return out, sess
	}

	cold, s1 := run(t)
	if st := s1.EvalCache().Stats(); st.StageMisses == 0 {
		t.Fatal("first run should measure stages cold")
	}
	if st := s1.EvalStoreStats(); st.Shards != 0 {
		t.Fatalf("first run should start from an empty store, got %+v", st)
	}

	warm, s2 := run(t)
	if st := s2.EvalStoreStats(); st.Stages == 0 || st.Ops == 0 {
		t.Fatalf("second run restored nothing: %+v", st)
	}
	if len(s2.EvalStoreStats().Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", s2.EvalStoreStats().Skipped)
	}
	if st := s2.EvalCache().Stats(); st.StageMisses != 0 {
		t.Fatalf("second run re-measured %d stages (want 0: cold profiling skipped)", st.StageMisses)
	}
	if cold.Plan.Degrees() != warm.Plan.Degrees() || !reflect.DeepEqual(cold.Result, warm.Result) {
		t.Fatalf("store-served search diverged: %+v vs %+v", warm, cold)
	}
}

// TestSessionStoreServesPerfDB verifies BuildPerfDB through the store:
// second session's database is served entirely from columns and matches
// the first build's entries.
func TestSessionStoreServesPerfDB(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	newSess := func() *arena.Session {
		return arena.MustNew(
			arena.WithSeed(42),
			arena.WithGPUTypes("A40"),
			arena.WithMaxN(4),
			arena.WithWorkloads(w),
			arena.WithStore(dir),
		)
	}

	s1 := newSess()
	db1, err := s1.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1.PerfDBFromSnapshot() {
		t.Fatal("first build cannot come from the store")
	}
	if st := s1.PerfDBStoreStats(); st.BuiltColumns != 1 {
		t.Fatalf("first build stats: %+v", st)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newSess()
	db2, err := s2.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.PerfDBFromSnapshot() {
		t.Fatal("second build should be served from the store")
	}
	if st := s2.PerfDBStoreStats(); !st.FromStore() || st.LoadedColumns != 1 {
		t.Fatalf("second build stats: %+v", st)
	}
	k1, k2 := db1.Keys(), db2.Keys()
	if len(k1) == 0 || len(k1) != len(k2) {
		t.Fatalf("key sets differ: %d vs %d", len(k1), len(k2))
	}
	for i, k := range k1 {
		if k != k2[i] {
			t.Fatalf("key %d differs: %+v vs %+v", i, k, k2[i])
		}
		e1, _ := db1.Entry(k.Workload, k.GPUType, k.N)
		e2, _ := db2.Entry(k.Workload, k.GPUType, k.N)
		if *e1 != *e2 {
			t.Fatalf("entry %+v differs:\n first %+v\n store %+v", k, *e1, *e2)
		}
	}
}

// TestSessionFirstPerfDBBuildReusesStoredMeasurements closes the
// ROADMAP's last store gap: a session whose earlier searches persisted
// op/stage measurements hands its store-hydrated eval cache to the
// *first* performance-database build, so even a cold database (no
// persisted columns yet) starts from warm measurements instead of
// profiling every workload column from scratch — and stays
// bit-identical to a storeless build.
func TestSessionFirstPerfDBBuildReusesStoredMeasurements(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	opts := func(extra ...arena.Option) []arena.Option {
		return append([]arena.Option{
			arena.WithSeed(42),
			arena.WithGPUTypes("A40"),
			arena.WithMaxN(4),
			arena.WithWorkloads(w),
		}, extra...)
	}

	// Session 1: search only — persists measurements but never builds a
	// database, so no perfdb column objects exist afterwards.
	s1, err := arena.New(opts(arena.WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	g := arena.MustBuildModel(w.Model)
	if _, err := s1.FullSearch(ctx, g, "A40", w.GlobalBatch, 4); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: its first database build must hydrate the persisted
	// measurement contexts through the shared eval cache.
	s2, err := arena.New(opts(arena.WithStore(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	db, err := s2.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats := s2.EvalStoreStats()
	if stats.Ops == 0 && stats.Stages == 0 {
		t.Fatalf("first build restored no measurements from the store: %+v", stats)
	}
	if len(stats.Skipped) > 0 {
		t.Fatalf("store restore skipped objects: %v", stats.Skipped)
	}
	if colStats := s2.PerfDBStoreStats(); colStats.LoadedColumns != 0 || colStats.BuiltColumns == 0 {
		t.Fatalf("expected a cold column build, got %+v", colStats)
	}

	// Reuse must not change a single bit vs a storeless session.
	ref, err := arena.New(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	refDB, err := ref.BuildPerfDB(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db.Keys(), refDB.Keys()) {
		t.Fatal("key sets diverged between store-warmed and cold builds")
	}
	for _, k := range refDB.Keys() {
		a, _ := db.Entry(k.Workload, k.GPUType, k.N)
		b, _ := refDB.Entry(k.Workload, k.GPUType, k.N)
		if !reflect.DeepEqual(*a, *b) {
			t.Fatalf("entry %v diverged between store-warmed and cold builds", k)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
