// Package server is the scheduler as a long-running service: the same
// sim.Engine and clock.Tick round loop the batch simulator runs, wrapped
// in an HTTP job API and a write-ahead journal so a killed daemon
// restarts, replays its journal, and resumes with bit-identical
// scheduler state. The paper's dynamic-scheduling half (§3.5) only pays
// off operationally when re-planning runs continuously as jobs arrive
// and leave — this is that form.
//
// Determinism is the design axis. Scheduling decisions are pure
// functions of (engine state, policy, perf database, seed); engine state
// is a pure function of the journaled operation sequence applied at
// nominal round instants k*RoundSeconds. So the journal — submits and
// cancels written before they apply, rounds written after they commit
// with a digest of the policy's Assignment — is the whole truth, and
// recovery is re-execution: replay ops in order, re-fire each journaled
// round at its recorded instant, and verify every digest. A crash
// between a round's in-memory commit and its journal record loses
// nothing: restart replays up to the previous round and the resumed
// clock re-fires the lost round, deterministically reproducing it.
//
// Time discipline: the server never reads the wall clock directly
// (the clockdiscipline analyzer in internal/analysis, run by
// arena-vet, enforces this package-wide); all instants come
// from the configured internal/clock, so tests drive the very same loop
// with a stepped clock and the journal's timeline is the only timeline.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"github.com/sjtu-epcc/arena/internal/clock"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Typed failures the HTTP layer and operators branch on.
var (
	// ErrReplay marks a journal that is internally valid but does not
	// reproduce under this binary: a round's recorded digest disagrees
	// with the re-executed decision, or the round sequence has gaps. The
	// server refuses to start rather than diverge silently.
	ErrReplay = errors.New("journal replay diverged")
	// ErrConfig marks a journal written under a different scheduler
	// configuration (policy, round length, seed or cluster); resuming it
	// would replay decisions the current configuration cannot reproduce.
	ErrConfig = errors.New("journal written under a different configuration")
	// ErrBadJob marks a submission that fails validation.
	ErrBadJob = errors.New("invalid job")
	// ErrExists marks a submission reusing a live or historical job ID.
	ErrExists = errors.New("job ID already exists")
	// ErrUnknownJob marks an operation on a job the server has never seen.
	ErrUnknownJob = errors.New("no such job")
	// ErrJobDone marks a cancel of a job already finished, dropped or
	// failed.
	ErrJobDone = errors.New("job already completed")
)

// Config assembles a server. Spec, Policy and DB are the scheduling
// inputs the batch simulator takes; they must be identical across
// restarts of the same store (the journal records and enforces this).
type Config struct {
	Spec   hw.ClusterSpec
	Policy sched.Policy
	DB     *perfdb.DB

	// RoundSeconds is the scheduling interval (paper: 5 minutes); 0
	// defaults to 300.
	RoundSeconds float64
	// MaxPerJob caps per-job allocations; 0 uses the database's MaxN.
	MaxPerJob int
	Seed      uint64

	// Store persists the journal and must be held for the server's
	// lifetime (its single-writer lock is what makes the journal safe).
	Store *store.Store

	// Clock drives rounds and timestamps submissions. Nil defaults to a
	// wall clock resumed at the journal's tail, so a restarted daemon
	// continues the run timeline where the dead one stopped. Tests plug
	// in clock.Stepped to drive the identical loop deterministically.
	Clock clock.Clock
}

// journalKind* name the record kinds in the server's journal.
const (
	kindConfig = "config"
	kindSubmit = "submit"
	kindCancel = "cancel"
	kindRound  = "round"
)

// record is one journal entry; Kind selects which fields are meaningful.
type record struct {
	Kind string `json:"kind"`

	// kindConfig: the run's identity, verified on every restart.
	Policy       string  `json:"policy,omitempty"`
	RoundSeconds float64 `json:"round_seconds,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Cluster      string  `json:"cluster,omitempty"`

	// kindSubmit: the full job, written before it enters the engine.
	Job *trace.Job `json:"job,omitempty"`

	// kindCancel: the target job, written before it enters the inbox.
	ID string `json:"id,omitempty"`

	// kindRound: written after the round commits in memory. Digest is
	// the Assignment's fingerprint; replay re-executes the round and
	// must reproduce it exactly.
	Round  int     `json:"round,omitempty"`
	Now    float64 `json:"now,omitempty"`
	Digest string  `json:"digest,omitempty"`
}

// Server is the daemon: an Engine, its journal, and the round cursor.
// All mutable state is behind mu; HTTP handlers and the round loop
// serialize through it, which is also what keeps the journal ordered.
type Server struct {
	cfg Config
	clk clock.Clock

	mu      sync.Mutex
	eng     *sim.Engine
	journal *store.Journal
	// inbox holds journaled cancels awaiting the next round: cancels
	// apply at round boundaries, at the round's nominal instant, so
	// replay and live execution see identical timing.
	inbox     []string
	inboxSet  map[string]bool
	nextRound int
	lastNow   float64
	autoID    int // all-time submit count, for generated job IDs
}

// crashBeforeCommit, when non-nil, runs between a round's in-memory
// commit and its journal record — the widest recovery window. Tests
// simulate a process dying mid-round by failing here and discarding the
// server, then proving a restart reproduces the lost round.
var crashBeforeCommit func() error

// New builds a server over the store's journal: an empty journal starts
// a fresh run (stamping the configuration as record 0); a non-empty one
// is replayed — configuration verified, every submit and cancel
// re-applied, every round re-executed at its recorded instant with its
// digest checked — so the returned server's engine state is bit-identical
// to the dead process's at its last journaled round. Corrupt journals
// (store.ErrCorrupt/ErrSchema) and non-reproducing ones (ErrReplay,
// ErrConfig) refuse to start.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: need an open store (the journal lives there)")
	}
	if cfg.RoundSeconds <= 0 {
		cfg.RoundSeconds = 300
	}
	eng, err := sim.NewEngine(sim.Config{
		Spec: cfg.Spec, Policy: cfg.Policy, DB: cfg.DB,
		RoundSeconds: cfg.RoundSeconds, MaxPerJob: cfg.MaxPerJob, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	journal, entries, err := cfg.Store.OpenJournal("server")
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, eng: eng, journal: journal, inboxSet: map[string]bool{}}
	if len(entries) == 0 {
		if err := journal.Append(s.configRecord()); err != nil {
			journal.Close()
			return nil, err
		}
	} else if err := s.replay(entries); err != nil {
		journal.Close()
		return nil, err
	}
	s.clk = cfg.Clock
	if s.clk == nil {
		s.clk = clock.NewWallAt(s.resumeOffsetLocked())
	}
	return s, nil
}

// configRecord fingerprints the run's scheduling identity.
func (s *Server) configRecord() record {
	return record{
		Kind:         kindConfig,
		Policy:       s.cfg.Policy.Name(),
		RoundSeconds: s.cfg.RoundSeconds,
		Seed:         s.cfg.Seed,
		Cluster:      jsonDigest(s.cfg.Spec),
	}
}

// replay re-executes the journal. Called once, before the server is
// shared, so it runs unlocked.
func (s *Server) replay(entries []json.RawMessage) error {
	for i, raw := range entries {
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("server: journal record %d: %w: %v", i, store.ErrCorrupt, err)
		}
		if i == 0 {
			if rec.Kind != kindConfig {
				return fmt.Errorf("server: journal record 0 is %q, not a config stamp: %w", rec.Kind, store.ErrCorrupt)
			}
			if want := s.configRecord(); rec != want {
				return fmt.Errorf("server: %w: journal has (policy=%s round=%gs seed=%d cluster=%s), this server runs (policy=%s round=%gs seed=%d cluster=%s)",
					ErrConfig, rec.Policy, rec.RoundSeconds, rec.Seed, rec.Cluster,
					want.Policy, want.RoundSeconds, want.Seed, want.Cluster)
			}
			continue
		}
		switch rec.Kind {
		case kindSubmit:
			if rec.Job == nil {
				return fmt.Errorf("server: journal record %d: submit without a job: %w", i, store.ErrCorrupt)
			}
			// Journaled jobs carry explicit SubmitTimes; now=0 means the
			// engine re-stages them verbatim, keeping replay bit-identical.
			s.eng.Submit(*rec.Job, 0)
			s.autoID++
		case kindCancel:
			if !s.inboxSet[rec.ID] {
				s.inboxSet[rec.ID] = true
				s.inbox = append(s.inbox, rec.ID)
			}
		case kindRound:
			if rec.Round != s.nextRound {
				return fmt.Errorf("server: %w: journal record %d is round %d, expected round %d", ErrReplay, i, rec.Round, s.nextRound)
			}
			asg := s.fireLocked(rec.Round, rec.Now)
			if got := jsonDigest(asg); got != rec.Digest {
				return fmt.Errorf("server: %w: round %d re-executed to digest %s, journal recorded %s (code or inputs changed since the journal was written)",
					ErrReplay, rec.Round, got, rec.Digest)
			}
		default:
			return fmt.Errorf("server: journal record %d has unknown kind %q: %w", i, rec.Kind, store.ErrCorrupt)
		}
	}
	return nil
}

// fireLocked applies the inbox and fires one round — the single round
// body shared by live execution (step) and replay. Callers hold mu (or
// own the server exclusively, during New).
func (s *Server) fireLocked(round int, now float64) sched.Assignment {
	for _, id := range s.inbox {
		s.eng.Cancel(id, now)
	}
	s.inbox = nil
	s.inboxSet = map[string]bool{}
	asg := s.eng.Round(now)
	s.nextRound = round + 1
	s.lastNow = now
	return asg
}

// stepLocked is the live round: fire, then journal the committed
// decision. A journal failure is returned so the loop can stop — a
// server that cannot persist its decisions must not keep making them.
func (s *Server) stepLocked(round int, now float64) (sched.Assignment, error) {
	asg := s.fireLocked(round, now)
	if crashBeforeCommit != nil {
		if err := crashBeforeCommit(); err != nil {
			return asg, err
		}
	}
	err := s.journal.Append(record{Kind: kindRound, Round: round, Now: now, Digest: jsonDigest(asg)})
	return asg, err
}

// step is stepLocked behind the lock — the Run loop's round body.
func (s *Server) step(round int, now float64) (sched.Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked(round, now)
}

// Step fires the next round at its nominal instant, synchronously —
// the benchmark's and tests' handle on the round loop. Live serving
// uses Run, which drives the identical body from the clock.
func (s *Server) Step() (sched.Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked(s.nextRound, float64(s.nextRound)*s.cfg.RoundSeconds)
}

// Run drives scheduling rounds from the server's clock until ctx is
// cancelled — the daemon's main loop, and literally the simulator's:
// both hand a round callback to clock.TickFrom. Cancellation is only
// observed between rounds, so the in-flight round always drains and is
// journaled before Run returns; Run leaves no goroutines behind.
// Returns ctx.Err() on graceful shutdown, or the journal failure that
// stopped the loop.
func (s *Server) Run(ctx context.Context) error {
	s.mu.Lock()
	start := s.nextRound
	s.mu.Unlock()
	var stepErr error
	err := clock.TickFrom(ctx, s.clk, s.cfg.RoundSeconds, start, func(round int, now float64) bool {
		_, stepErr = s.step(round, now)
		return stepErr == nil
	})
	if stepErr != nil {
		return stepErr
	}
	return err
}

// Close flushes and closes the journal. The store (and its lock) belong
// to the caller. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Close()
}

// resumeOffsetLocked is the instant a resumed clock should read at
// startup: the last journaled round's nominal time, so the next round
// fires one full interval later — exactly where the dead process's
// timeline stood. Fresh servers start at 0 (round 0 fires immediately,
// on an empty queue).
func (s *Server) resumeOffsetLocked() float64 {
	if s.nextRound == 0 {
		return 0
	}
	return float64(s.nextRound-1) * s.cfg.RoundSeconds
}

// NextRound returns the index of the next round to fire.
func (s *Server) NextRound() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextRound
}

// Now returns the current instant on the server's run timeline: the
// clock's reading, but never before the last committed round — a
// synchronously stepped server (tests, benchmarks) has a timeline even
// when its clock never moves.
func (s *Server) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nowLocked()
}

func (s *Server) nowLocked() float64 {
	if now := s.clk.Now(); now > s.lastNow {
		return now
	}
	return s.lastNow
}

// Submit validates, journals and registers one job. A zero SubmitTime
// is stamped with the clock's current instant; an empty ID is assigned
// a unique generated one. The job is durable (journaled and fsynced)
// before Submit returns; it becomes schedulable at the next round.
func (s *Server) Submit(tj trace.Job) (trace.Job, error) {
	if err := s.validate(&tj); err != nil {
		return tj, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if tj.SubmitTime == 0 {
		tj.SubmitTime = s.nowLocked()
	}
	if tj.ID == "" {
		for {
			tj.ID = fmt.Sprintf("job-%06d", s.autoID)
			if s.eng.Find(tj.ID) == nil {
				break
			}
			s.autoID++
		}
	} else if s.eng.Find(tj.ID) != nil {
		return tj, fmt.Errorf("%w: %q", ErrExists, tj.ID)
	}
	if err := s.journal.Append(record{Kind: kindSubmit, Job: &tj}); err != nil {
		return tj, err
	}
	s.autoID++
	s.eng.Submit(tj, s.nowLocked())
	return tj, nil
}

// validate rejects jobs the scheduler could never place: the perf
// database must know the workload on at least one GPU type, and the
// request must be positive.
func (s *Server) validate(tj *trace.Job) error {
	if tj.Iterations <= 0 {
		return fmt.Errorf("%w: iterations must be positive", ErrBadJob)
	}
	if tj.SubmitTime < 0 {
		return fmt.Errorf("%w: negative submit time", ErrBadJob)
	}
	if tj.ReqGPUs <= 0 {
		tj.ReqGPUs = 1
	}
	if tj.Priority <= 0 {
		tj.Priority = 1
	}
	db := s.cfg.DB
	for _, g := range db.GPUTypes {
		for n := 1; n <= db.MaxN; n *= 2 {
			if _, ok := db.Entry(tj.Workload, g, n); ok {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: workload %s@%d is not in the performance database", ErrBadJob, tj.Workload.Model, tj.Workload.GlobalBatch)
}

// Cancel journals a cancellation for the named job; it takes effect at
// the next round's nominal instant (replay and live execution must see
// identical timing, so cancels never apply mid-interval). Idempotent
// while the cancel is pending; ErrUnknownJob / ErrJobDone otherwise.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.eng.Find(id)
	if j == nil {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.State {
	case sched.StateFinished, sched.StateDropped, sched.StateFailed:
		return fmt.Errorf("%w: %q is %s", ErrJobDone, id, j.State)
	}
	if s.inboxSet[id] {
		return nil
	}
	if err := s.journal.Append(record{Kind: kindCancel, ID: id}); err != nil {
		return err
	}
	s.inboxSet[id] = true
	s.inbox = append(s.inbox, id)
	return nil
}

// jsonDigest fingerprints any JSON-marshalable value: sha256 of its
// encoding, truncated hex. Map keys marshal sorted, so the digest is
// deterministic for Assignment's Place map.
func jsonDigest(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Assignment and ClusterSpec are static struct/map shapes whose
		// encoding cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:16]
}
