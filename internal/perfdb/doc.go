// Package perfdb builds and serves the performance database that every
// scheduler consults — the reproduction of the paper's
// ./database/prof_database.pkl (§A.4.4). For each (workload, GPU type,
// GPU count) it records three views of job performance:
//
//   - the static data-parallel view (what SP-aware schedulers profile),
//   - the adaptive-parallelism optimum (what jobs actually achieve at
//     runtime, §5.1: baselines execute with AP),
//   - Arena's view: the profiler's estimate used for scheduling and the
//     engine-measured throughput of the pruned-search plan used when the
//     job runs.
//
// The gaps between these views are the paper's Case#1 (inverted
// allocation) and Case#2 (demand overestimation) pathologies, and the
// η-knob of §2.3 interpolates between Sia's linear bootstrap and fully
// precise data.
//
// # Building and reuse
//
// Build exercises the planner, profiler and both AP searches for every
// (workload, type, count) point; grid planning runs the planner's
// default fast paths — the prefix-DP enumerator streaming into the
// incremental Pareto sweep, which is where a cold build's planning cost
// concentrates (see docs/ARCHITECTURE.md §planner) — while workloads
// fan out over a worker pool and all points of a workload share stage
// measurements through an evalcache (a candidate measured for n=4 is
// byte-identical for n=8).
// Options.EvalCache substitutes a caller-owned cache — the session
// passes its store-attached one, so even a first-ever build starts from
// measurements persisted by earlier searches. All execution options
// (NoCache, Serial, Workers, EvalCache) change wall-clock only; the
// reference paths and determinism tests in this package prove results
// stay bit-identical.
//
// Two persistence layers avoid rebuilding: BuildOrLoad reads/writes an
// all-or-nothing JSON snapshot (legacy -db-cache), and BuildOrLoadStore
// persists one content-addressed object per workload column with partial
// invalidation — adding a workload to a cached request builds exactly
// the missing column (see store.go for the key derivation rules).
package perfdb
