package experiments

import (
	"context"

	"fmt"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/search"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Fig2 benchmarks adaptive parallelism across (a) GPU amount, (b) GPU
// type, and (c) interconnect, annotating the searched optimal plan —
// demonstrating AP's dynamicity across hardware (§2.2, Fig. 2).
func (e *Env) Fig2(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "AP throughput and optimal plan across amount / type / interconnect",
		Header: []string{"panel", "model", "hardware", "thr(samples/s)", "optimal-plan"},
	}

	type cse struct {
		panel, modelName string
		gb               int
		gpu              string
		n                int
		gpusPerNode      int // 0 = default
		label            string
	}
	var cases []cse
	// (a) Changing amount: 2..8 A40 GPUs.
	for _, m := range []struct {
		name string
		gb   int
	}{{"WRes-0.5B", 256}, {"GPT-1.3B", 128}, {"MoE-1.3B", 256}} {
		for _, n := range []int{2, 4, 8} {
			cases = append(cases, cse{
				panel: "a", modelName: m.name, gb: m.gb, gpu: "A40", n: n,
				label: fmt.Sprintf("%dxA40", n),
			})
		}
	}
	// (b) Changing type: 1×4 V100 vs 1×4 A100.
	for _, m := range []struct {
		name string
		gb   int
	}{{"WRes-2B", 512}, {"GPT-2.6B", 128}, {"MoE-1.3B", 256}} {
		for _, gpu := range []string{"V100", "A100"} {
			cases = append(cases, cse{
				panel: "b", modelName: m.name, gb: m.gb, gpu: gpu, n: 4,
				label: "1x4 " + gpu,
			})
		}
	}
	// (c) Changing interconnect: 1×2 A40 (PCIe) vs 2×1 A40 (InfiniBand).
	for _, m := range []struct {
		name string
		gb   int
	}{{"WRes-0.5B", 256}, {"GPT-1.3B", 128}, {"MoE-1.3B", 256}} {
		for _, layout := range []struct {
			gpn   int
			label string
		}{{2, "1x2 A40 (PCIe)"}, {1, "2x1 A40 (IB)"}} {
			cases = append(cases, cse{
				panel: "c", modelName: m.name, gb: m.gb, gpu: "A40", n: 2,
				gpusPerNode: layout.gpn, label: layout.label,
			})
		}
	}

	for _, c := range cases {
		g, err := model.BuildClustered(c.modelName)
		if err != nil {
			return nil, err
		}
		spec := hw.MustLookup(c.gpu)
		gpn := c.gpusPerNode
		if gpn == 0 {
			gpn = spec.GPUsPerNode
		}
		out, err := search.FullSearchCtx(ctx, e.eng, g, spec, c.gb, c.n, search.Options{GPUsPerNode: gpn})
		if err != nil {
			return nil, err
		}
		thr, plan := 0.0, "OOM"
		if out.Feasible() {
			thr = out.Result.Throughput
			plan = out.Plan.Degrees()
		}
		t.AddRow(c.panel, c.modelName, c.label, fmt.Sprintf("%.1f", thr), plan)
	}
	t.Note("paper: optimal plans shift P/D/M across models and hardware rather than staying static")
	return t, nil
}

// Fig3 reproduces the DP-view vs AP-view scheduling case study (§2.2,
// Fig. 3): cluster-level plan selection inverts between the two views,
// and DP's memory demands hide dense allocations (OOM bars).
func (e *Env) Fig3(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Scheduling plan selection: static-DP view vs adaptive-parallelism view",
		Header: []string{"panel", "plan", "DP-view(sum thr)", "AP-view(sum thr)", "notes"},
	}
	db, err := e.DB(ctx, []string{"A100", "V100"})
	if err != nil {
		return nil, err
	}

	// (a) Allocating a×A100 to WRes-2B, b× to MoE-2.4B, c× to GPT-1.3B,
	// d× to MoE-1.3B.
	jobsA := []model.Workload{
		{Model: "WRes-2B", GlobalBatch: 512},
		{Model: "MoE-2.4B", GlobalBatch: 256},
		{Model: "GPT-1.3B", GlobalBatch: 128},
		{Model: "MoE-1.3B", GlobalBatch: 256},
	}
	plansA := [][]int{{2, 2, 2, 2}, {4, 2, 2, 0}, {4, 4, 0, 0}, {8, 0, 0, 0}}
	bestDPa, bestAPa, bestDPaPlan, bestAPaPlan := 0.0, 0.0, "", ""
	for _, plan := range plansA {
		var dpSum, apSum float64
		oom := false
		for i, n := range plan {
			if n == 0 {
				continue
			}
			dp := db.DPThr(jobsA[i], "A100", n)
			ap := db.APThr(jobsA[i], "A100", n)
			if dp == 0 {
				oom = true
			}
			dpSum += dp
			apSum += ap
		}
		note := ""
		if oom {
			note = "DP-view: OOM (missing bar)"
		}
		label := fmt.Sprintf("(%d,%d,%d,%d)", plan[0], plan[1], plan[2], plan[3])
		t.AddRow("a", label, fmt.Sprintf("%.1f", dpSum), fmt.Sprintf("%.1f", apSum), note)
		if !oom && dpSum > bestDPa {
			bestDPa, bestDPaPlan = dpSum, label
		}
		if apSum > bestAPa {
			bestAPa, bestAPaPlan = apSum, label
		}
	}
	t.Note("panel a: DP-view selects %s; AP-view optimal is %s (%s)", bestDPaPlan, bestAPaPlan,
		map[bool]string{true: "INVERTED allocation", false: "consistent"}[bestDPaPlan != bestAPaPlan])

	// (b) (A,B): 4×A GPUs for WRes-2B, 4×B for GPT-2.6B.
	wres := model.Workload{Model: "WRes-2B", GlobalBatch: 512}
	gpt := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	bestDPb, bestAPb, bestDPbPlan, bestAPbPlan := 0.0, 0.0, "", ""
	for _, pair := range [][2]string{{"V100", "A100"}, {"A100", "V100"}} {
		dpSum := db.DPThr(wres, pair[0], 4) + db.DPThr(gpt, pair[1], 4)
		apSum := db.APThr(wres, pair[0], 4) + db.APThr(gpt, pair[1], 4)
		note := ""
		if db.DPThr(gpt, pair[1], 4) == 0 {
			note = "GPT-2.6B OOM under DP"
		}
		label := fmt.Sprintf("(%s,%s)", pair[0], pair[1])
		t.AddRow("b", label, fmt.Sprintf("%.1f", dpSum), fmt.Sprintf("%.1f", apSum), note)
		if dpSum > bestDPb {
			bestDPb, bestDPbPlan = dpSum, label
		}
		if apSum > bestAPb {
			bestAPb, bestAPbPlan = apSum, label
		}
	}
	t.Note("panel b: DP-view selects %s; AP-view optimal is %s", bestDPbPlan, bestAPbPlan)
	return t, nil
}

// Fig6 evaluates stage-partition balance at a fixed pipeline degree
// (§3.2, Fig. 6): balanced 2-stage partitions beat imbalanced ones, and
// the best 2-stage plan can beat the 1-stage (perfectly "balanced") case.
func (e *Env) Fig6(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Throughput vs stage partition ratio (2 stages, 4xA40) and the 1-stage reference",
		Header: []string{"model", "partition(X:Y)", "thr(samples/s)"},
	}
	cases := []struct {
		name string
		gb   int
	}{{"GPT-1.3B", 128}, {"MoE-1.3B", 256}, {"WRes-1B", 256}}
	spec := hw.MustLookup("A40")
	for _, c := range cases {
		g, err := model.BuildClustered(c.name)
		if err != nil {
			return nil, err
		}
		// 1-stage reference: best single-stage plan on the 4 GPUs.
		best1 := 0.0
		for tp := 1; tp <= 4; tp *= 2 {
			p := &parallel.Plan{
				Stages:          []parallel.StagePlan{{OpStart: 0, OpEnd: len(g.Ops), DP: 4 / tp, TP: tp}},
				NumMicrobatches: parallel.DefaultMicrobatches(1),
			}
			res, err := e.eng.Evaluate(g, p, spec, c.gb)
			if err == nil && res.Fits && res.Throughput > best1 {
				best1 = res.Throughput
			}
		}
		t.AddRow(c.name, "1-stage", fmt.Sprintf("%.1f", best1))

		best2, best2Ratio := 0.0, ""
		for cut := 1; cut < len(g.Ops); cut++ {
			p := &parallel.Plan{
				Stages: []parallel.StagePlan{
					{OpStart: 0, OpEnd: cut, DP: 2, TP: 1},
					{OpStart: cut, OpEnd: len(g.Ops), DP: 2, TP: 1},
				},
				NumMicrobatches: parallel.DefaultMicrobatches(2),
			}
			res, err := e.eng.Evaluate(g, p, spec, c.gb)
			thr := 0.0
			if err == nil && res.Fits {
				thr = res.Throughput
			}
			ratio := fmt.Sprintf("%d:%d", cut, len(g.Ops)-cut)
			if cut == 1 || cut == len(g.Ops)/2 || cut == len(g.Ops)-1 ||
				cut == 5 || cut == 10 {
				t.AddRow(c.name, ratio, fmt.Sprintf("%.1f", thr))
			}
			if thr > best2 {
				best2, best2Ratio = thr, ratio
			}
		}
		t.AddRow(c.name, "best-2-stage "+best2Ratio, fmt.Sprintf("%.1f", best2))
	}
	t.Note("balanced partitions dominate within a fixed degree; multi-stage can beat 1-stage (paper: up to 1.34x for GPT-3)")
	return t, nil
}

// EtaKnob reproduces the §2.3 strawman analysis: the error of Sia's
// linear estimation vs GPU count, and cluster throughput as the η knob
// sweeps from stock linear estimation (η=1) to fully precise data (η=5).
func (e *Env) EtaKnob(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "eta",
		Title:  "Sia's bootstrapped linear estimation: per-point error and the η precision knob",
		Header: []string{"metric", "setting", "value"},
	}
	db, err := e.DB(ctx, hw.ClusterSim().GPUTypes())
	if err != nil {
		return nil, err
	}
	// Per-point estimation error for GPT-1.3B on A40 (§2.3 reports
	// 1.14×@2GPUs → 2.12×@16GPUs).
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	for _, n := range []int{2, 4, 8, 16} {
		truth := db.APThr(w, "A40", n)
		est := db.SiaEst(w, "A40", n, 1)
		if truth <= 0 {
			continue
		}
		t.AddRow("linear-estimate error", fmt.Sprintf("GPT-1.3B %dxA40", n), ratio(est, truth))
	}

	// Cluster throughput vs η on the simulated cluster under heavy load,
	// with Sia's online refinement disabled so the knob alone governs the
	// estimate precision.
	spec := hw.ClusterSim()
	cfg := trace.PhillyWeek(e.Seed, spec.GPUTypes(), 3000)
	cfg.LifespanScale = 14
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	window := int(7 * 24 * 3600 / 300)
	var base float64
	for eta := 1; eta <= 5; eta++ {
		p := policy.NewSia()
		p.Eta = eta
		p.DisableRefinement = true
		res, err := sim.RunCtx(ctx, sim.Config{
			Spec: spec, Policy: p, Jobs: jobs, DB: db,
			RoundSeconds: 300, MaxRounds: 2 * window,
			IncludeUnfinished: true, Seed: e.Seed,
		})
		if err != nil {
			return nil, err
		}
		thr := meanWindow(res.ThroughputSeries, window)
		if eta == 1 {
			base = thr
		}
		t.AddRow("cluster throughput", fmt.Sprintf("eta=%d", eta),
			fmt.Sprintf("%.1f (%s vs eta=1), avgJCT %.0fs", thr, ratio(thr, base), res.AvgJCT))
	}
	t.Note("paper: precise data (eta=5) improves overall throughput by 1.19x over stock linear estimation")
	return t, nil
}
