package profiler

import (
	"math"
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
)

func testSetup(t *testing.T) (*exec.Engine, *CommTable) {
	t.Helper()
	eng := exec.NewEngine(42)
	ct, err := OfflineSampleComm(eng, []string{"A40", "A10", "A100", "V100"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ct
}

func gridPlan(t *testing.T, modelName string, gb int, typ string, n, s int) (*model.Graph, *planner.GridPlan) {
	t.Helper()
	g, err := model.BuildClustered(modelName)
	if err != nil {
		t.Fatal(err)
	}
	grid := core.Grid{
		Workload: model.Workload{Model: modelName, GlobalBatch: gb},
		GPUType:  typ, N: n, S: s,
	}
	gp, err := planner.New().PlanGrid(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	return g, gp
}

func TestInterpolationAccuracy(t *testing.T) {
	// The profiler's volume interpolation should track the engine's
	// measured collectives within a few percent at unseen volumes.
	eng, ct := testSetup(t)
	topo := hw.Topology{GPUType: "A40", Workers: 4, CrossNode: true, NICShare: 2}
	for _, v := range []float64{3e4, 7e5, 2.3e7, 9e8, 1.7e10} {
		got, err := ct.Interpolate(hw.AllReduce, topo, v)
		if err != nil {
			t.Fatal(err)
		}
		want := eng.CollectiveTime(hw.AllReduce, topo, v)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("volume %g: interpolated %v vs measured %v", v, got, want)
		}
	}
}

func TestInterpolationEdgeCases(t *testing.T) {
	_, ct := testSetup(t)
	topo := hw.Topology{GPUType: "A40", Workers: 2, CrossNode: false, NICShare: 1}
	if v, err := ct.Interpolate(hw.AllReduce, topo, 0); err != nil || v != 0 {
		t.Errorf("zero volume: %v, %v", v, err)
	}
	single := hw.Topology{GPUType: "A40", Workers: 1}
	if v, err := ct.Interpolate(hw.AllReduce, single, 1e6); err != nil || v != 0 {
		t.Errorf("single worker: %v, %v", v, err)
	}
	// Extrapolation beyond the sampled range still returns something sane.
	big, err := ct.Interpolate(hw.AllReduce, topo, 5e11)
	if err != nil || big <= 0 {
		t.Errorf("extrapolation: %v, %v", big, err)
	}
	// Missing topology errors.
	missing := hw.Topology{GPUType: "H100", Workers: 2}
	if _, err := ct.Interpolate(hw.AllReduce, missing, 1e6); err == nil {
		t.Error("unsampled topology should error")
	}
}

func TestProfileErrorSmall(t *testing.T) {
	// Fig. 16(a): the profiler's end-to-end estimate stays within ≈10% of
	// direct measurement across models and GPU counts.
	eng, ct := testSetup(t)
	cases := []struct {
		model string
		gb    int
		n, s  int
	}{
		{"WRes-1B", 256, 1, 1},
		{"WRes-1B", 256, 4, 2},
		{"GPT-1.3B", 128, 2, 2},
		{"GPT-1.3B", 128, 8, 2},
		{"MoE-1.3B", 256, 4, 4},
		{"GPT-2.6B", 128, 8, 4},
	}
	for _, c := range cases {
		g, gp := gridPlan(t, c.model, c.gb, "A40", c.n, c.s)
		if !gp.Feasible {
			t.Errorf("%s n=%d s=%d infeasible", c.model, c.n, c.s)
			continue
		}
		pr := New(eng, ct)
		est, err := pr.ProfileGridPlan(g, gp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Evaluate(g, gp.Proxy.Plan, hw.MustLookup("A40"), c.gb)
		if err != nil || !res.Fits {
			t.Fatalf("%s: engine eval failed", c.model)
		}
		relErr := math.Abs(est.IterTime-res.IterTime) / res.IterTime
		if relErr > 0.12 {
			t.Errorf("%s n=%d s=%d: profiling error %.1f%% too large", c.model, c.n, c.s, 100*relErr)
		}
	}
}

func TestProfilerCheaperThanOracle(t *testing.T) {
	// Fig. 16(b): single-device disaggregated profiling costs a fraction
	// of direct multi-GPU measurement.
	eng, ct := testSetup(t)
	g, gp := gridPlan(t, "GPT-2.6B", 128, "A40", 8, 4)
	pr := New(eng, ct)
	est, err := pr.ProfileGridPlan(g, gp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate(g, gp.Proxy.Plan, hw.MustLookup("A40"), 128)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exec.DirectMeasureCost(res, gp.Proxy.Plan, pr.Trials)
	if est.ProfileGPUTime >= oracle/2 {
		t.Errorf("profiling cost %v should be well under oracle %v", est.ProfileGPUTime, oracle)
	}
}

func TestComputeRedundancyElimination(t *testing.T) {
	// Repeated transformer layers must collapse to few unique
	// configurations (§3.4 observation (ii)).
	eng, ct := testSetup(t)
	g, gp := gridPlan(t, "GPT-1.3B", 128, "A40", 4, 2)
	pr := New(eng, ct)
	est, err := pr.ProfileGridPlan(g, gp)
	if err != nil {
		t.Fatal(err)
	}
	if est.UniqueOps >= est.TotalOps {
		t.Errorf("no redundancy eliminated: %d unique of %d", est.UniqueOps, est.TotalOps)
	}
}

func TestCrossGridCacheReuse(t *testing.T) {
	// Profiling a second grid with overlapping configurations reuses the
	// cache: its incremental cost is lower (§5.8: "skipping repeated
	// operators across grids").
	eng, ct := testSetup(t)
	g, gp1 := gridPlan(t, "GPT-1.3B", 128, "A40", 4, 2)
	_, gp2 := gridPlan(t, "GPT-1.3B", 128, "A40", 4, 4)

	fresh := New(eng, ct)
	est2Fresh, err := fresh.ProfileGridPlan(g, gp2)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(eng, ct)
	if _, err := warm.ProfileGridPlan(g, gp1); err != nil {
		t.Fatal(err)
	}
	cacheAfterFirst := warm.CacheSize()
	est2Warm, err := warm.ProfileGridPlan(g, gp2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheSize() < cacheAfterFirst {
		t.Fatal("cache shrank")
	}
	if est2Warm.UniqueOps > est2Fresh.UniqueOps {
		t.Errorf("warm profiling measured more configs (%d) than cold (%d)",
			est2Warm.UniqueOps, est2Fresh.UniqueOps)
	}
	// The estimate itself must not depend on cache state.
	if math.Abs(est2Warm.IterTime-est2Fresh.IterTime) > 1e-12 {
		t.Error("cache reuse changed the estimate")
	}
}

func TestProfileJobAcrossGrids(t *testing.T) {
	eng, ct := testSetup(t)
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	pr := New(eng, ct)
	jp, err := ProfileJob(planner.New(), pr, g, w, []string{"A40", "A10"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(jp.Estimates) == 0 {
		t.Fatal("no grids profiled")
	}
	if jp.TotalProfileGPUTime <= 0 {
		t.Error("no profiling cost accounted")
	}
	// Best-grid query per resource.
	r := core.Resource{GPUType: "A40", N: 4}
	best, ok := jp.BestGrid(r)
	if !ok {
		t.Fatal("no best grid for 4×A40")
	}
	if best.N != 4 || best.GPUType != "A40" {
		t.Errorf("best grid %v has wrong resource", best)
	}
	if jp.Throughput(r) <= 0 {
		t.Error("best throughput should be positive")
	}
	// GPT-1.3B cannot run on 1 A10 (24 GB): that resource has no grids.
	if thr := jp.Throughput(core.Resource{GPUType: "A10", N: 1}); thr != 0 {
		t.Errorf("1×A10 should be infeasible for GPT-1.3B, got %v", thr)
	}
}

func TestProfileGridPlanRejectsInfeasible(t *testing.T) {
	eng, ct := testSetup(t)
	pr := New(eng, ct)
	if _, err := pr.ProfileGridPlan(nil, nil); err == nil {
		t.Fatal("nil grid plan should error")
	}
	g, _ := model.BuildClustered("MoE-27B")
	gp, err := planner.New().PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "MoE-27B", GlobalBatch: 256},
		GPUType:  "A10", N: 1, S: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.ProfileGridPlan(g, gp); err == nil {
		t.Fatal("infeasible grid should error")
	}
}

func TestOfflineTableCoverage(t *testing.T) {
	_, ct := testSetup(t)
	if len(ct.Keys()) == 0 {
		t.Fatal("empty table")
	}
	if ct.OfflineCostSeconds <= 0 {
		t.Error("offline campaign cost not modeled")
	}
	// The one-shot campaign should be hours, not weeks (§5.8 reports
	// ≈3.5h per node type).
	if h := ct.OfflineCostSeconds / 3600; h > 24 {
		t.Errorf("offline campaign %vh unreasonably long", h)
	}
}
