package planner

// This file is the frontier-aware incremental Pareto sweep — the default
// reduction path behind PlanGrid. The post-hoc reference (pareto.go)
// materializes every memory-feasible candidate of a grid, sorts the full
// population and sweeps it once; for the 16-operator graphs at s = 8
// that is up to 6,435 materializations and an O(C log C) sort to keep a
// frontier of at most a few dozen plans. The sweep fuses the reduction
// into candidate emission instead: a staircase of the current
// (BComp, LComm) minima is maintained online, every emitted candidate is
// judged against it in O(log F), and only candidates that enter the
// staircase are ever materialized. Dominated candidates cost one binary
// search plus however many per-stage communication terms it takes for a
// running lower bound of their LComm to cross the staircase — the
// intra-stage selector (intra.go) is queried stage by stage and the scan
// stops at the first stage that proves domination, so most of the
// population never queries intra-stage selection at all.
//
// Equivalence with the reference is an ordering argument. The staircase
// keeps exactly the candidates no other candidate beats under the strict
// partial order "at most equal on both metrics and better on one, or
// exactly tied on both with a smaller lexicographic partition rank".
// That set is a property of the candidate *population*, not of the order
// candidates arrive in — which is what lets the prefix DP (colex
// discovery order) and the exhaustive enumerator (lex order) route
// through one frontier and still emit bit-identical GridPlans. The rank
// tie-break is load-bearing: dropping it would make exact (BComp, LComm)
// ties — which uniform transformer layers and zero-load operators
// produce routinely — fall to whichever duplicate arrives first, and the
// two enumerators arrive in different orders. See docs/ARCHITECTURE.md
// §planner for why the pre-sweep sort had the same tie problem in a
// worse form.

import (
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/parallel"
)

// frontierEntry is one staircase member: a materialized candidate plus
// the lexicographic rank of its partition, the global tie-break.
type frontierEntry struct {
	cand *Candidate
	rank int
}

// sweepFrontier maintains the (BComp, LComm) Pareto staircase online
// under simultaneous minimization: entries are strictly increasing in
// BComp and strictly decreasing in LComm. It implements candidateSink,
// so either enumerator can stream into it.
type sweepFrontier struct {
	intra    *intraSelector
	numMicro int

	entries []frontierEntry
	stages  []parallel.StagePlan // per-offer trial buffer, copied on accept
}

func newSweepFrontier(s int, intra *intraSelector, numMicro int) *sweepFrontier {
	return &sweepFrontier{
		intra:    intra,
		numMicro: numMicro,
		stages:   make([]parallel.StagePlan, s),
	}
}

// offer implements candidateSink: judge one partition + assignment
// against the staircase, materializing it only if it enters. The
// communication load is accumulated stage by stage through the shared
// commAccum (the exact float expressions of the reference path), and the
// scan aborts as soon as the running lower bound strictly exceeds the
// LComm the staircase requires at this BComp — later stages only add
// non-negative terms, so domination is already certain and the remaining
// intra-stage queries are skipped.
func (f *sweepFrontier) offer(bounds, assign, opsPer []int, ideal []float64, bias2 float64, rank int) {
	bComp := math.Sqrt(bias2)
	// pred is the staircase entry with the largest BComp ≤ bComp; its
	// LComm is the minimum over every kept candidate at most as biased,
	// i.e. the bar this candidate's LComm must beat.
	idx := sort.Search(len(f.entries), func(i int) bool { return f.entries[i].cand.BComp > bComp })
	hasPred := idx > 0
	var predL float64
	if hasPred {
		predL = f.entries[idx-1].cand.LComm
	}

	var acc commAccum
	start := 0
	for j, end := range bounds {
		choice := f.intra.best(start, end, assign[j])
		if choice == nil {
			return // stage infeasible at the assigned GPU count
		}
		f.stages[j] = parallel.StagePlan{OpStart: start, OpEnd: end, DP: choice.dp, TP: choice.tp}
		acc.add(choice)
		if hasPred && acc.load(f.numMicro) > predL {
			return // strictly dominated whatever the remaining stages cost
		}
		start = end
	}
	lComm := acc.load(f.numMicro)
	if !f.admit(idx, bComp, lComm, rank) {
		return
	}

	cand := &Candidate{
		Plan: &parallel.Plan{
			Stages:          append([]parallel.StagePlan(nil), f.stages...),
			NumMicrobatches: f.numMicro,
		},
		BComp:        bComp,
		LComm:        lComm,
		OpsPerStage:  append([]int(nil), opsPer...),
		GPUsPerStage: append([]int(nil), assign...),
		IdealAssign:  append([]float64(nil), ideal...),
	}
	f.insert(frontierEntry{cand: cand, rank: rank}, idx)
}

// admit decides whether a candidate with the given metrics enters the
// staircase, judged against pred (the entry before idx): a strictly
// smaller LComm beats pred; an exact dual tie falls to the smaller
// lexicographic rank; anything else is dominated — pred is at least as
// good on both metrics. admit plus insert define the staircase's
// semantics: the kept set is the minima of the strict partial order
// "≤ on both metrics and (< on one, or < on rank with both tied)", a
// property of the candidate population alone, which the order-
// independence tests drive directly with synthetic populations.
func (f *sweepFrontier) admit(idx int, bComp, lComm float64, rank int) bool {
	if idx == 0 {
		return true
	}
	pred := f.entries[idx-1]
	if pred.cand.BComp == bComp && pred.cand.LComm == lComm {
		return rank < pred.rank
	}
	return pred.cand.LComm > lComm
}

// insert splices an accepted entry into the staircase at its BComp
// position, evicting the members it dominates: the contiguous run of
// entries with BComp ≥ its BComp and LComm ≥ its LComm (LComm decreases
// along the staircase, so the run ends at the first smaller LComm). An
// exact-tie replacement is the run of length one starting at pred.
func (f *sweepFrontier) insert(e frontierEntry, idx int) {
	lo := idx
	if idx > 0 && f.entries[idx-1].cand.BComp == e.cand.BComp {
		lo = idx - 1 // equal-bias pred has LComm ≥ ours: part of the evicted run
	}
	hi := lo
	for hi < len(f.entries) && f.entries[hi].cand.LComm >= e.cand.LComm {
		hi++
	}
	if hi == lo {
		f.entries = append(f.entries, frontierEntry{})
		copy(f.entries[lo+1:], f.entries[lo:])
		f.entries[lo] = e
		return
	}
	f.entries[lo] = e
	f.entries = append(f.entries[:lo+1], f.entries[hi:]...)
}

// candidates returns the staircase in ascending-BComp order — the exact
// order the reference sort-and-sweep emits its frontier in.
func (f *sweepFrontier) candidates() []*Candidate {
	if len(f.entries) == 0 {
		return nil
	}
	out := make([]*Candidate, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.cand
	}
	return out
}
