package search

import (
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/planner"
)

func fullSearch(t *testing.T, modelName string, gb, n int) (*model.Graph, Outcome) {
	t.Helper()
	g, err := model.BuildClustered(modelName)
	if err != nil {
		t.Fatal(err)
	}
	out, err := FullSearch(exec.NewEngine(42), g, hw.MustLookup("A40"), gb, n)
	if err != nil {
		t.Fatal(err)
	}
	return g, out
}

func TestFullSearchFindsValidPlan(t *testing.T) {
	g, out := fullSearch(t, "GPT-1.3B", 128, 4)
	if !out.Feasible() {
		t.Fatal("no feasible plan found")
	}
	if err := out.Plan.Validate(g); err != nil {
		t.Fatal(err)
	}
	if out.Plan.TotalGPUs() != 4 {
		t.Errorf("plan uses %d GPUs, want 4", out.Plan.TotalGPUs())
	}
	if out.StageEvals == 0 || out.SearchTime <= 0 {
		t.Error("search cost not accounted")
	}
}

func TestFullSearchBeatsPureDP(t *testing.T) {
	// The searched optimum must be at least as good as static DP wherever
	// DP is feasible (it is in the search space).
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	for _, tc := range []struct {
		model string
		gb, n int
	}{
		{"MoE-1.3B", 256, 8},
		{"WRes-1B", 256, 4},
		{"GPT-1.3B", 128, 8},
	} {
		g, err := model.BuildClustered(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		out, err := FullSearch(eng, g, spec, tc.gb, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := eng.Evaluate(g, parallel.PureDP(g, tc.n), spec, tc.gb)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Fits && out.Result.Throughput < dp.Throughput*0.999 {
			t.Errorf("%s: search (%v) lost to pure DP (%v)", tc.model, out.Result.Throughput, dp.Throughput)
		}
	}
}

func TestFullSearchHandlesOOMModels(t *testing.T) {
	// GPT-2.6B pure DP OOMs on V100; the search must still find an AP plan
	// (the paper's Case#2: AP unlocks denser allocations).
	g, err := model.BuildClustered("GPT-2.6B")
	if err != nil {
		t.Fatal(err)
	}
	out, err := FullSearch(exec.NewEngine(42), g, hw.MustLookup("V100"), 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible() {
		t.Fatal("search should find a feasible AP plan on 4×V100")
	}
	if out.Plan.PipelineDegree() == 1 && out.Plan.Stages[0].TP == 1 {
		t.Errorf("found plan %s should not be pure DP (it OOMs)", out.Plan)
	}
}

func TestSearchSingleGPU(t *testing.T) {
	g, out := fullSearch(t, "WRes-0.5B", 256, 1)
	if !out.Feasible() {
		t.Fatal("single-GPU plan should exist")
	}
	if out.Plan.TotalGPUs() != 1 || out.Plan.PipelineDegree() != 1 {
		t.Errorf("plan = %s", out.Plan)
	}
	_ = g
}

func TestSearchInvalidN(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	if _, err := FullSearch(exec.NewEngine(1), g, hw.MustLookup("A40"), 128, 0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func prunedSetup(t *testing.T, modelName string, gb, n int) (*model.Graph, *planner.GridPlan, Outcome, Outcome) {
	t.Helper()
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	g, err := model.BuildClustered(modelName)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FullSearch(eng, g, spec, gb, n)
	if err != nil {
		t.Fatal(err)
	}
	// Select the best grid by engine-evaluated proxy throughput (stand-in
	// for the profiler in this package's tests).
	pl := planner.New()
	var bestGP *planner.GridPlan
	var bestThr float64
	w := model.Workload{Model: modelName, GlobalBatch: gb}
	for _, s := range core.PipelineDegrees(n, len(g.Ops)) {
		gp, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: "A40", N: n, S: s})
		if err != nil {
			t.Fatal(err)
		}
		if !gp.Feasible {
			continue
		}
		res, err := eng.Evaluate(g, gp.Proxy.Plan, spec, gb)
		if err != nil || !res.Fits {
			continue
		}
		if bestGP == nil || res.Throughput > bestThr {
			bestGP, bestThr = gp, res.Throughput
		}
	}
	if bestGP == nil {
		t.Fatal("no feasible grid")
	}
	pruned, err := PrunedSearch(eng, g, spec, gb, n, bestGP)
	if err != nil {
		t.Fatal(err)
	}
	return g, bestGP, full, pruned
}

func TestPrunedSearchQualityAndCost(t *testing.T) {
	// §5.4: pruned search retains ≈96% of Alpa's plan quality at a
	// fraction of the search cost.
	for _, tc := range []struct {
		model string
		gb, n int
	}{
		{"GPT-1.3B", 128, 4},
		{"WRes-1B", 256, 4},
		{"MoE-1.3B", 256, 8},
	} {
		g, _, full, pruned := prunedSetup(t, tc.model, tc.gb, tc.n)
		if !pruned.Feasible() {
			t.Fatalf("%s: pruned search found nothing", tc.model)
		}
		if err := pruned.Plan.Validate(g); err != nil {
			t.Fatal(err)
		}
		quality := pruned.Result.Throughput / full.Result.Throughput
		if quality < 0.85 {
			t.Errorf("%s: pruned quality %.2f below 0.85", tc.model, quality)
		}
		if pruned.StageEvals >= full.StageEvals {
			t.Errorf("%s: pruning did not reduce stage evals (%d vs %d)",
				tc.model, pruned.StageEvals, full.StageEvals)
		}
		if pruned.SearchTime >= full.SearchTime {
			t.Errorf("%s: pruning did not reduce search time", tc.model)
		}
	}
}

func TestPrunedSearchRejectsBadInput(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	eng := exec.NewEngine(42)
	if _, err := PrunedSearch(eng, g, hw.MustLookup("A40"), 128, 4, nil); err == nil {
		t.Fatal("nil grid plan should error")
	}
	gp, err := planner.New().PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 8, S: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrunedSearch(eng, g, hw.MustLookup("A40"), 128, 4, gp); err == nil {
		t.Fatal("mismatched N should error")
	}
}

func TestProxyExecutionZeroOverhead(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	gp, err := planner.New().PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 4, S: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ProxyExecution(exec.NewEngine(42), g, hw.MustLookup("A40"), 128, 0, gp)
	if err != nil {
		t.Fatal(err)
	}
	if out.StageEvals != 0 || out.SearchTime != 0 {
		t.Error("proxy execution must have zero search cost")
	}
	if !out.Feasible() {
		t.Error("proxy should be feasible")
	}
}

func TestRestrictionRules(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	spec := hw.MustLookup("A40")
	gp, err := planner.New().PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 4, S: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := BuildRestriction(g, spec, gp.Frontier)
	if r == nil {
		t.Fatal("restriction should exist for a non-empty frontier")
	}
	// Rule 2: a 1-op range of a 16-op model is far below any Pareto
	// stage's load share.
	if r.RangeAllowed(g, 0, 1) {
		t.Error("tiny range should be pruned")
	}
	// A Pareto stage's own range is allowed and shape-pinned (rule 3).
	st := gp.Frontier[0].Plan.Stages[0]
	if !r.RangeAllowed(g, st.OpStart, st.OpEnd) {
		t.Error("frontier stage range should be allowed")
	}
	if !r.ShapeAllowed(st.OpStart, st.OpEnd, st.GPUs(), st.DP, st.TP) {
		t.Error("frontier stage shape should be allowed")
	}
	if r.ShapeAllowed(st.OpStart, st.OpEnd, st.GPUs(), st.DP*7, st.TP) {
		t.Error("mismatched shape on a matched range should be pruned")
	}
	// Unmatched ranges are shape-free.
	if !r.ShapeAllowed(0, 1, 1, 1, 1) {
		t.Error("unmatched ranges should be shape-free")
	}
	// Nil restriction allows everything.
	var nilR *Restriction
	if !nilR.RangeAllowed(g, 0, 1) || !nilR.ShapeAllowed(0, 1, 1, 1, 1) {
		t.Error("nil restriction must allow everything")
	}
}

func TestSearchDeterministic(t *testing.T) {
	_, a := fullSearch(t, "MoE-1.3B", 256, 4)
	_, b := fullSearch(t, "MoE-1.3B", 256, 4)
	if a.Plan.String() != b.Plan.String() || a.Result.Throughput != b.Result.Throughput {
		t.Fatal("full search is not deterministic")
	}
}
