// Package trace synthesizes production-shaped job traces. The paper
// evaluates on three real traces — a two-week Philly trace (13k+ jobs,
// bursty, with a distinct low-load prefix and heavy-load suffix, §5.3),
// a moderate-load Helios Venus day, and a light-load PAI day — and adapts
// each record by randomly generating GPU count, type, model configuration
// and iteration count (§5.1). Since the raw traces are production data we
// cannot ship, this package reproduces their *load shapes* with seeded
// deterministic generators; schedulers are sensitive to arrival pattern
// and load level, not to trace identity.
package trace

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/rng"
)

// Kind selects a load shape.
type Kind string

// The three trace families of §5.1.
const (
	// Philly: three low-load days with transient bursts followed by four
	// days of intensive heavy load (Fig. 11's annotation).
	Philly Kind = "philly"
	// Helios: moderate, steady load (Fig. 13a/c).
	Helios Kind = "helios"
	// PAI: light load (Fig. 13b/d).
	PAI Kind = "pai"
)

// Job is one trace record: what the user submitted.
type Job struct {
	ID         string
	SubmitTime float64 // seconds from trace start
	Workload   model.Workload
	Iterations int // training iterations to completion

	// User-specified rigid request (what FCFS honours and the elastic
	// schedulers treat as the preference / starting point).
	ReqGPUs int
	ReqType string

	// Priority ∈ [1, P]; smaller launches earlier (§3.5).
	Priority int

	// Deadline, seconds from submission; 0 = none (§5.6 populates this).
	Deadline float64
}

// TotalSamples returns the job's total training work in samples.
func (j Job) TotalSamples() float64 {
	return float64(j.Iterations) * float64(j.Workload.GlobalBatch)
}

// Config drives trace synthesis.
type Config struct {
	Kind     Kind
	Duration float64 // trace span, seconds
	NumJobs  int
	Seed     uint64

	// GPUTypes are the cluster's types; job type requests draw from them.
	GPUTypes []string
	// MaxGPUs bounds per-job GPU requests (power of two). The paper's
	// profiling-cost example uses N = 16 (§2.3).
	MaxGPUs int

	// Workloads restricts the (model, batch) candidates; nil = a default
	// mix that excludes the >10B models (which need more than 16 GPUs of
	// most types and would never finish on the small testbeds).
	Workloads []model.Workload

	// LifespanScale multiplies iteration counts (Fig. 19's sweep).
	LifespanScale float64

	// DeadlineFraction is the share of jobs given deadlines (§5.6);
	// deadlines are set to a multiple of the job's ideal duration.
	DeadlineFraction float64

	// PriorityLevels is the number of priority queues P (§3.5; default 3).
	PriorityLevels int
}

// DefaultWorkloads returns the standard trace workload mix: every Table 2
// model up to 10B parameters with its family's batch sizes. The largest
// variants (GPT-6.7B, WRes-6.8B, MoE-10B) fit *no* GPU type with pure
// data parallelism — they are schedulable only through adaptive
// parallelism, the population where SP-aware scheduling fails hardest
// (§2.2). MoE-27B is excluded: it exceeds the 16-GPU per-job cap even
// with AP on most types.
func DefaultWorkloads() []model.Workload {
	var out []model.Workload
	include := map[string]bool{
		"WRes-0.5B": true, "WRes-1B": true, "WRes-2B": true, "WRes-4B": true, "WRes-6.8B": true,
		"GPT-0.76B": true, "GPT-1.3B": true, "GPT-2.6B": true, "GPT-6.7B": true,
		"MoE-0.69B": true, "MoE-1.3B": true, "MoE-2.4B": true, "MoE-10B": true,
	}
	for _, w := range model.Workloads() {
		if include[w.Model] {
			out = append(out, w)
		}
	}
	return out
}

// normalized validates the configuration and resolves its defaults,
// returning the effective workload mix. Shared by Generate and Stream so
// both synthesis paths accept exactly the same configurations.
func (cfg Config) normalized() (Config, []model.Workload, error) {
	if cfg.NumJobs <= 0 || cfg.Duration <= 0 {
		return cfg, nil, fmt.Errorf("trace: need positive NumJobs and Duration")
	}
	if len(cfg.GPUTypes) == 0 {
		return cfg, nil, fmt.Errorf("trace: no GPU types")
	}
	if cfg.MaxGPUs < 1 {
		cfg.MaxGPUs = 16
	}
	if cfg.LifespanScale <= 0 {
		cfg.LifespanScale = 1
	}
	if cfg.PriorityLevels < 1 {
		cfg.PriorityLevels = 3
	}
	workloads := cfg.Workloads
	if len(workloads) == 0 {
		workloads = DefaultWorkloads()
	}
	return cfg, workloads, nil
}

// workloadWeights draws weights for the workload mix. Large-model
// clusters are dominated by large jobs: weight the workload draw by
// model size so the DP/AP mismatch the paper targets is well represented
// (§2.2's case studies all use ≥1.3B models).
func workloadWeights(workloads []model.Workload) ([]float64, error) {
	weights := make([]float64, len(workloads))
	for i, w := range workloads {
		g, err := model.Build(w.Model)
		if err != nil {
			return nil, err
		}
		weights[i] = math.Sqrt(g.Params() / 1e9)
	}
	return weights, nil
}

// synthesize draws one job's attributes (everything except its arrival
// time, which the caller supplies) from the stream r. Generate and the
// streaming Generator share this so a job's workload/size/priority
// mixture is identical across both synthesis paths.
func synthesize(r *rng.SplitMix64, cfg Config, workloads []model.Workload, weights []float64, i int, submit float64) Job {
	w := workloads[weightedChoice(r, weights)]

	// Iterations: heavy-tailed, matching production duration skew.
	iters := int(r.LogNormalish(200, 2.6) * cfg.LifespanScale)
	if iters < 20 {
		iters = 20
	}

	// GPU request: production traces skew small; powers of two.
	reqGPUs := 1 << weightedChoice(r, []float64{0.18, 0.27, 0.28, 0.19, 0.08})
	for reqGPUs > cfg.MaxGPUs {
		reqGPUs /= 2
	}

	// Priority: most jobs are routine; few are expedited (§3.5).
	prio := 1 + weightedChoice(r, priorityWeights(cfg.PriorityLevels))

	j := Job{
		ID:         fmt.Sprintf("%s-%04d", cfg.Kind, i),
		SubmitTime: submit,
		Workload:   w,
		Iterations: iters,
		ReqGPUs:    reqGPUs,
		ReqType:    cfg.GPUTypes[r.Intn(len(cfg.GPUTypes))],
		Priority:   prio,
	}
	if cfg.DeadlineFraction > 0 && r.Float64() < cfg.DeadlineFraction {
		// Deadline = 3-10× a nominal ideal runtime guess derived from
		// work volume (users pad their estimates generously).
		nominal := j.TotalSamples() / 100 // assume ~100 samples/s
		j.Deadline = nominal*r.Range(3, 10) + 3600
	}
	return j
}

// Generate synthesizes a deterministic trace for the configuration.
func Generate(cfg Config) ([]Job, error) {
	cfg, workloads, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	r := rng.Derive(cfg.Seed, rng.HashString(string(cfg.Kind)))
	weights, err := workloadWeights(workloads)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, cfg.NumJobs)
	for i := 0; i < cfg.NumJobs; i++ {
		submit := arrivalTime(cfg.Kind, r, cfg.Duration)
		jobs = append(jobs, synthesize(r, cfg, workloads, weights, i, submit))
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].SubmitTime < jobs[b].SubmitTime })
	return jobs, nil
}

// arrivalTime draws one submission time following the kind's load shape.
func arrivalTime(kind Kind, r *rng.SplitMix64, duration float64) float64 {
	u := r.Float64()
	switch kind {
	case Philly:
		// 3/7 of the span carries ~20% of jobs (low-load prefix with
		// transient bursts); 4/7 carries ~80% (heavy suffix).
		if r.Float64() < 0.20 {
			t := u * duration * 3 / 7
			// Transient bursts: cluster 40% of prefix jobs into narrow spikes.
			if r.Float64() < 0.4 {
				spike := float64(r.Intn(3)) / 3 * duration * 3 / 7
				t = spike + u*duration*0.01
			}
			return t
		}
		return duration*3/7 + u*duration*4/7
	case Helios:
		// Moderate steady load with a gentle diurnal ripple.
		return u * duration
	case PAI:
		// Light load: arrivals thin out towards the end of the day.
		return u * u * duration
	default:
		return u * duration
	}
}

// weightedChoice returns an index drawn according to the weights.
func weightedChoice(r *rng.SplitMix64, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// priorityWeights skews mass towards lower (more urgent) priorities.
func priorityWeights(levels int) []float64 {
	w := make([]float64, levels)
	for i := range w {
		w[i] = 1 / float64(i+2) // 1/2, 1/3, 1/4, ...
	}
	// Reverse so priority 1 (index 0) is least common: production clusters
	// reserve top priority for few jobs, most run at the default level.
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		w[i], w[j] = w[j], w[i]
	}
	return w
}

// PhillySixHour returns the §5.2 testbed trace configuration: 6 hours,
// 244 jobs.
func PhillySixHour(seed uint64, gpuTypes []string) Config {
	return Config{
		Kind: Philly, Duration: 6 * 3600, NumJobs: 244, Seed: seed,
		GPUTypes: gpuTypes, MaxGPUs: 16,
	}
}

// PhillyWeek returns the §5.3 large-scale simulation trace configuration:
// one week of Philly-shaped load.
func PhillyWeek(seed uint64, gpuTypes []string, jobs int) Config {
	return Config{
		Kind: Philly, Duration: 7 * 24 * 3600, NumJobs: jobs, Seed: seed,
		GPUTypes: gpuTypes, MaxGPUs: 16,
	}
}

// HeliosDay returns the §5.3 moderate-load one-day trace configuration.
func HeliosDay(seed uint64, gpuTypes []string, jobs int) Config {
	return Config{
		Kind: Helios, Duration: 24 * 3600, NumJobs: jobs, Seed: seed,
		GPUTypes: gpuTypes, MaxGPUs: 16,
	}
}

// PAIDay returns the §5.3 light-load one-day trace configuration.
func PAIDay(seed uint64, gpuTypes []string, jobs int) Config {
	return Config{
		Kind: PAI, Duration: 24 * 3600, NumJobs: jobs, Seed: seed,
		GPUTypes: gpuTypes, MaxGPUs: 16,
	}
}
