package fixture

import (
	//arena:allow rngdiscipline
	"math/rand"
)

func roll() int64 { return rand.Int63() }
