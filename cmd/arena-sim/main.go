// Command arena-sim runs trace-driven cluster scheduling simulations —
// the analogue of the paper artifact's simulator.py (§A.4.4).
//
// Usage:
//
//	arena-sim -policy arena -trace philly -cluster sim -jobs 3000
//	arena-sim -policy all -trace philly -cluster a -store ./measurements
//	arena-sim -policy sia -trace pai -cluster sim -jobs 450 -workers 4
//
// Streaming generation (jobs are drawn on demand instead of materialized,
// so -trace-jobs can be very large at O(active jobs) memory):
//
//	arena-sim -policy arena -trace-gen helios-day -trace-jobs 100000
//	arena-sim -policy all -trace-gen philly-week
//
// Fault injection (deterministic, drawn from -seed):
//
//	arena-sim -policy arena -mtbf 12 -mttr 0.5 -straggler-mtbs 24
//	arena-sim -policy all -fault-trace storm.txt -checkpoint-interval 900
//	arena-sim -policy arena -mtbf 6 -no-fault-recovery   # ablation
package main

import (
	"flag"
	"fmt"
	"time"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/cli"
	"github.com/sjtu-epcc/arena/internal/metrics"
)

func main() {
	var (
		policyName  = flag.String("policy", "all", "fcfs|gavel|elasticflow|sia|arena|all")
		traceKind   = flag.String("trace", "philly", "philly|helios|pai")
		traceGen    = flag.String("trace-gen", "", "streaming trace generator preset: philly-6h|philly-week|helios-day|pai-day (replaces -trace/-jobs; memory stays O(active jobs))")
		traceJobsN  = flag.Int("trace-jobs", 0, "expected job count for -trace-gen (0 = preset default)")
		clusterName = flag.String("cluster", "sim", "a|b|sim|b-homogeneous")
		jobs        = flag.Int("jobs", 0, "job count (0 = per-trace default)")
		scale       = flag.Float64("scale", 12, "job lifespan scale")
		rounds      = flag.Int("rounds", 0, "max scheduling rounds (0 = auto)")

		mtbf       = flag.Float64("mtbf", 0, "mean time between per-node crashes, hours (0 = no crash injection)")
		mttr       = flag.Float64("mttr", 0.5, "mean node repair time, hours")
		slowMTBS   = flag.Float64("straggler-mtbs", 0, "mean time between per-node straggler episodes, hours (0 = none)")
		faultTrace = flag.String("fault-trace", "", "scripted failure-trace file (lines: <time> crash|recover <type> <node>, <time> slow <type> <node> <factor> <dur>)")
		ckptEvery  = flag.Float64("checkpoint-interval", 1800, "modeled checkpoint period, seconds of productive training")
		noRecovery = flag.Bool("no-fault-recovery", false, "ablation: preempted jobs fail instead of restarting from checkpoint")
		refScore   = flag.Bool("reference-score", false, "run the policies' full per-round rescans instead of their incremental score caches (bit-identical, slower; the parity oracle)")
	)
	c := cli.CommonFlags()
	flag.Parse()
	ctx := cli.Context()

	spec, err := cli.PickCluster(*clusterName)
	if err != nil {
		cli.Fatal(err)
	}
	types := spec.GPUTypes()

	// -trace-gen streams jobs into the simulator on demand (a fresh
	// single-use source per policy run); the default path materializes
	// the whole trace up front.
	var (
		cfg       arena.TraceConfig
		traceJobs []arena.TraceJob
	)
	if *traceGen != "" {
		cfg, err = cli.PickTraceGen(*traceGen, c.Seed, types, *traceJobsN)
	} else {
		cfg, err = cli.PickTrace(*traceKind, c.Seed, types, *jobs)
	}
	if err != nil {
		cli.Fatal(err)
	}
	cfg.LifespanScale = *scale
	if *traceGen == "" {
		traceJobs, err = arena.GenerateTrace(cfg)
		if err != nil {
			cli.Fatal(err)
		}
	}

	sess := cli.NewSession(c,
		arena.WithSeed(c.Seed),
		arena.WithWorkers(c.Workers),
		arena.WithCluster(spec),
		arena.WithMaxN(16),
		arena.WithWorkloads(arena.DefaultWorkloads()...),
	)
	defer cli.CloseSession(c, sess)

	fmt.Printf("building performance database for %v (this exercises the planner, profiler and AP searches)...\n", types)
	start := time.Now()
	db, src := cli.BuildDB(ctx, sess)
	fmt.Printf("  %d entries (%s) in %v\n\n", len(db.Keys()), src, time.Since(start).Round(time.Millisecond))

	fc, err := faultConfig(*mtbf, *mttr, *slowMTBS, *faultTrace, *ckptEvery, *noRecovery)
	if err != nil {
		cli.Fatal(err)
	}

	pols, err := cli.PickPolicies(*policyName)
	if err != nil {
		cli.Fatal(err)
	}
	window := int(cfg.Duration / 300)
	header := fmt.Sprintf("%-16s %10s %10s %10s %10s %8s %9s",
		"policy", "avgJCT(s)", "avgQ(s)", "avgThr", "peakThr", "finished", "resched")
	if fc.Enabled() {
		header += fmt.Sprintf(" %10s %10s %7s %6s", "goodGPUh", "wasteGPUh", "restart", "failed")
	}
	fmt.Println(header)
	for _, p := range pols {
		sc := arena.SimConfig{
			Policy: p, Jobs: traceJobs,
			RoundSeconds: 300, MaxRounds: pick(*rounds, 2*window+576),
			IncludeUnfinished: true, Seed: c.Seed,
			Faults: fc, ReferenceScore: *refScore,
		}
		if *traceGen != "" {
			// Sources are single-use: each policy gets its own (identical)
			// stream. Streaming mode keeps memory O(active jobs).
			src, err := arena.StreamTrace(cfg)
			if err != nil {
				cli.Fatal(err)
			}
			sc.Jobs, sc.Source, sc.Streaming = nil, src, true
		}
		res, err := sess.Simulate(ctx, sc)
		if err != nil {
			cli.Fatal(err)
		}
		series := res.ThroughputSeries
		if len(series) > window {
			series = series[:window]
		}
		row := fmt.Sprintf("%-16s %10.0f %10.0f %10.1f %10.1f %5d/%-3d %9.2f",
			p.Name(), res.AvgJCT, res.AvgQueue,
			metrics.Mean(series), metrics.Max(series),
			res.Finished, res.Total, res.AvgReschedules)
		if fc.Enabled() {
			row += fmt.Sprintf(" %10.1f %10.1f %7d %6d",
				res.GoodputGPUHours, res.WastedGPUHours, res.Restarts, res.Failed)
		}
		fmt.Println(row)
	}
}

// faultConfig assembles the fault-injection configuration from the flags;
// nil (disabled) when neither a crash/straggler model nor a trace is
// requested.
func faultConfig(mtbfH, mttrH, slowH float64, tracePath string, ckptEvery float64, noRecovery bool) (*arena.FaultsConfig, error) {
	fc := &arena.FaultsConfig{
		CheckpointInterval: ckptEvery,
		DisableRecovery:    noRecovery,
	}
	if mtbfH > 0 || slowH > 0 {
		fc.Model = &arena.FaultModel{
			Default: arena.TypeFaults{
				MTBF:      mtbfH * 3600,
				MTTR:      mttrH * 3600,
				SlowEvery: slowH * 3600,
			},
		}
	}
	if tracePath != "" {
		sched, err := arena.LoadFaultTrace(tracePath)
		if err != nil {
			return nil, err
		}
		fc.Trace = sched
	}
	if !fc.Enabled() {
		return nil, nil
	}
	return fc, nil
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
