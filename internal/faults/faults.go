// Package faults is the deterministic fault-injection subsystem: seeded
// Poisson crash/recovery processes per GPU type, transient straggler
// (degraded-throughput) episodes, and script-driven failure traces. At
// the cluster scales the paper targets, node failures and stragglers are
// the normal operating condition, not an exception — this package lets
// the simulator re-evaluate every scheduling claim under them.
//
// Everything is drawn from internal/rng streams derived from (seed,
// stream label, GPU type, node index), so a fault realization is a pure
// function of the seed and the cluster shape: the same seed always
// produces the same crashes at the same times, independent of how the
// simulation interleaves them — the same determinism discipline the
// execution engine follows. Events are materialized up front for the
// simulation horizon and consumed in a totally ordered sequence
// (time, kind, GPU type, node), so no map iteration or scheduling
// decision can perturb the realization.
package faults

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/rng"
)

// Kind is a fault event type.
type Kind string

// Event kinds. A Crash takes a node (and every job allocated on it) down
// instantly; Recover returns its capacity. SlowStart degrades the node's
// achieved throughput by Factor until the matching SlowEnd.
const (
	Crash     Kind = "crash"
	Recover   Kind = "recover"
	SlowStart Kind = "slow-start"
	SlowEnd   Kind = "slow-end"
)

// kindRank orders simultaneous events deterministically: recoveries and
// episode ends first (capacity returns before it is taken), crashes last
// (a completion at the same instant beats the crash).
func kindRank(k Kind) int {
	switch k {
	case Recover:
		return 0
	case SlowEnd:
		return 1
	case SlowStart:
		return 2
	case Crash:
		return 3
	default:
		return 4
	}
}

// Event is one fault occurrence on one node.
type Event struct {
	Time    float64 // seconds from simulation start
	Kind    Kind
	GPUType string
	Node    int     // node index within the typed region
	Factor  float64 // SlowStart only: throughput multiplier in (0, 1)
}

// Schedule is a time-ordered fault-event sequence.
type Schedule []Event

// Sort orders the schedule by (time, kind, GPU type, node, factor) — a
// total order, so a merged model+trace schedule is deterministic no
// matter how it was assembled.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(a, b int) bool {
		x, y := s[a], s[b]
		if x.Time != y.Time {
			return x.Time < y.Time
		}
		if kindRank(x.Kind) != kindRank(y.Kind) {
			return kindRank(x.Kind) < kindRank(y.Kind)
		}
		if x.GPUType != y.GPUType {
			return x.GPUType < y.GPUType
		}
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		return x.Factor < y.Factor
	})
}

// Validate checks every event against a cluster spec: known GPU type,
// node index within the region, non-negative time, and a straggler
// factor in (0, 1). The first offending event is reported.
func (s Schedule) Validate(spec hw.ClusterSpec) error {
	for i, ev := range s {
		r, ok := spec.Region(ev.GPUType)
		if !ok {
			return fmt.Errorf("faults: event %d: unknown GPU type %q in cluster %s", i, ev.GPUType, spec.Name)
		}
		if ev.Node < 0 || ev.Node >= r.Nodes {
			return fmt.Errorf("faults: event %d: node %d outside region %s (%d nodes)", i, ev.Node, ev.GPUType, r.Nodes)
		}
		if ev.Time < 0 {
			return fmt.Errorf("faults: event %d: negative time %v", i, ev.Time)
		}
		switch ev.Kind {
		case Crash, Recover, SlowEnd:
		case SlowStart:
			if ev.Factor <= 0 || ev.Factor >= 1 {
				return fmt.Errorf("faults: event %d: straggler factor %v outside (0, 1)", i, ev.Factor)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// TypeFaults parameterizes the stochastic fault processes of one GPU
// type's nodes. Zero fields disable the corresponding process.
type TypeFaults struct {
	// MTBF is the mean time between crashes of one node, seconds
	// (exponential inter-failure times — a Poisson failure process, the
	// standard cluster reliability model). 0 disables crashes.
	MTBF float64
	// MTTR is the mean node repair time, seconds (exponential). Defaults
	// to 1800 when crashes are enabled.
	MTTR float64

	// SlowEvery is the mean time between straggler episodes on one node,
	// seconds. 0 disables straggler injection.
	SlowEvery float64
	// SlowDuration is the mean episode length, seconds (default 1800).
	SlowDuration float64
	// SlowFactorLo/Hi bound the degraded throughput multiplier drawn per
	// episode (defaults 0.3 and 0.8).
	SlowFactorLo, SlowFactorHi float64
}

// withDefaults fills the conventional defaults for enabled processes.
func (tf TypeFaults) withDefaults() TypeFaults {
	if tf.MTBF > 0 && tf.MTTR <= 0 {
		tf.MTTR = 1800
	}
	if tf.SlowEvery > 0 {
		if tf.SlowDuration <= 0 {
			tf.SlowDuration = 1800
		}
		if tf.SlowFactorLo <= 0 {
			tf.SlowFactorLo = 0.3
		}
		if tf.SlowFactorHi <= 0 || tf.SlowFactorHi <= tf.SlowFactorLo {
			tf.SlowFactorHi = 0.8
		}
	}
	return tf
}

// Model is the stochastic fault model of a cluster: per-GPU-type crash
// and straggler processes, with Default applied to types PerType omits.
// GPU generations fail at different rates (new silicon and dense HGX
// boards fail more), which is exactly the asymmetric capacity loss that
// heterogeneity-aware re-planning responds to.
type Model struct {
	Default TypeFaults
	PerType map[string]TypeFaults
}

// forType resolves the fault parameters of one GPU type.
func (m *Model) forType(gpuType string) TypeFaults {
	if tf, ok := m.PerType[gpuType]; ok {
		return tf.withDefaults()
	}
	return m.Default.withDefaults()
}

// Schedule materializes the model's fault realization for a cluster over
// [0, horizon): one independent rng stream per (process, GPU type, node),
// so adding nodes or types never shifts another node's realization.
func (m *Model) Schedule(spec hw.ClusterSpec, seed uint64, horizon float64) Schedule {
	var out Schedule
	for _, region := range spec.Regions {
		tf := m.forType(region.GPUType)
		for node := 0; node < region.Nodes; node++ {
			out = append(out, crashProcess(tf, region.GPUType, node, seed, horizon)...)
			out = append(out, stragglerProcess(tf, region.GPUType, node, seed, horizon)...)
		}
	}
	out.Sort()
	return out
}

// crashProcess draws one node's alternating up/down renewal process.
func crashProcess(tf TypeFaults, gpuType string, node int, seed uint64, horizon float64) Schedule {
	if tf.MTBF <= 0 {
		return nil
	}
	r := rng.Derive(seed, rng.HashString("faults/crash"), rng.HashString(gpuType), uint64(node))
	var out Schedule
	t := 0.0
	for {
		t += r.Exp(tf.MTBF)
		if t >= horizon {
			return out
		}
		out = append(out, Event{Time: t, Kind: Crash, GPUType: gpuType, Node: node})
		t += r.Exp(tf.MTTR)
		if t >= horizon {
			return out // stays down past the horizon
		}
		out = append(out, Event{Time: t, Kind: Recover, GPUType: gpuType, Node: node})
	}
}

// stragglerProcess draws one node's transient degraded-throughput
// episodes.
func stragglerProcess(tf TypeFaults, gpuType string, node int, seed uint64, horizon float64) Schedule {
	if tf.SlowEvery <= 0 {
		return nil
	}
	r := rng.Derive(seed, rng.HashString("faults/slow"), rng.HashString(gpuType), uint64(node))
	var out Schedule
	t := 0.0
	for {
		t += r.Exp(tf.SlowEvery)
		if t >= horizon {
			return out
		}
		factor := r.Range(tf.SlowFactorLo, tf.SlowFactorHi)
		dur := r.Exp(tf.SlowDuration)
		out = append(out, Event{Time: t, Kind: SlowStart, GPUType: gpuType, Node: node, Factor: factor})
		if t+dur >= horizon {
			return out // slow past the horizon
		}
		t += dur
		out = append(out, Event{Time: t, Kind: SlowEnd, GPUType: gpuType, Node: node})
	}
}

// Config drives fault injection and failure handling for one simulation.
// The zero value (or a nil pointer) disables injection entirely, leaving
// the failure-free simulation bit-identical to the pre-fault model.
type Config struct {
	// Model generates stochastic crash/straggler events from the
	// simulation seed (nil = none).
	Model *Model
	// Trace is an explicit scripted event sequence (see ParseTrace),
	// merged with the model's realization.
	Trace Schedule

	// CheckpointInterval is the modeled checkpoint period in seconds of
	// productive training time: a crash rolls a job back to its last
	// completed checkpoint. Default 1800.
	CheckpointInterval float64
	// RetryBudget is how many crash-restarts a job may consume before it
	// is declared failed. Default 5.
	RetryBudget int
	// BackoffBase is the first restart's backoff delay in seconds; each
	// further restart doubles it (exponential backoff keeps a flapping
	// node from burning the whole retry budget in one storm). Default 60.
	BackoffBase float64

	// DisableRecovery is the ablation switch: preempted jobs die
	// immediately instead of restarting from their checkpoint — the
	// configuration that proves the failure-handling path earns its keep.
	DisableRecovery bool
}

// Enabled reports whether the configuration injects any faults.
func (c *Config) Enabled() bool {
	return c != nil && (c.Model != nil || len(c.Trace) > 0)
}

// WithDefaults returns a copy with zero knobs filled with the defaults.
func (c Config) WithDefaults() Config {
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 1800
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 60
	}
	return c
}
