package fixture

import "sort"

// The collect-then-sort idiom: the later sort erases insertion order.
func sortedKeysOf(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Integer accumulation commutes.
func count(m map[string]bool) int {
	n := 0
	for _, on := range m {
		if on {
			n++
		}
	}
	return n
}

// Writes keyed by distinct map keys commute.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// delete on the ranged map is explicitly defined and order-free.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

type counter struct{ n int }

func (c *counter) bump(by int) { c.n += by }

// A method call on a range-local receiver with no outer-variable
// arguments keeps effects within per-key state.
func bumpAll(m map[string]*counter) {
	for _, c := range m {
		c.bump(1)
	}
}
