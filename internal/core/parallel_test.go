package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCtxUncancelledMatchesParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran [64]atomic.Int32
		if err := ParallelForCtx(context.Background(), len(ran), workers, func(i int) {
			ran[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ParallelForCtx(ctx, 100, workers, func(i int) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The parallel path may hand out up to `workers` indices before the
		// cancelled select is observed; the serial path starts none.
		if got := ran.Load(); got > int32(workers) {
			t.Fatalf("workers=%d: %d iterations ran after pre-cancel", workers, got)
		}
	}
}

func TestParallelForCtxCancelMidRunStopsAndJoins(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ParallelForCtx(ctx, 1000, 4, func(i int) {
		if ran.Add(1) == 8 {
			cancel() // cancel from inside the pool, deterministically
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight iterations finish, queued ones never start: with 4 workers
	// and an unbuffered feed only a handful can follow the 8th.
	if got := ran.Load(); got >= 1000 || got < 8 {
		t.Fatalf("ran %d of 1000 iterations after cancel", got)
	}
	// The pool must be fully joined — poll briefly for the runtime to
	// retire the worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}
