package fixture

import "time"

func reasonless() time.Time {
	//arena:allow clockdiscipline
	return time.Now()
}
