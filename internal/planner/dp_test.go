package planner

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/model"
)

// dpTestMatrix is the grid matrix the determinism tests sweep: the
// models the existing planner/search/perfdb tests exercise, on a big and
// a small device, across every (N, S) the profiler enumerates. It
// deliberately includes tie-heavy inputs (uniform transformer layers,
// MoE models memory-tight on the A10) — exact (BComp, LComm) ties are
// where enumeration order and float regrouping would show first.
func dpTestMatrix() []core.Grid {
	var grids []core.Grid
	for _, tc := range []struct {
		model string
		gb    int
	}{
		{"GPT-1.3B", 128},
		{"WRes-1B", 256},
		{"MoE-1.3B", 256},
		{"MoE-10B", 256},
	} {
		w := model.Workload{Model: tc.model, GlobalBatch: tc.gb}
		for _, typ := range []string{"A40", "A10"} {
			g := model.MustBuildClustered(tc.model)
			grids = append(grids, core.Enumerate(w, len(g.Ops), []string{typ}, 16)...)
		}
	}
	return grids
}

// plannerVariants is the parity matrix's axis: every combination of
// enumerator (prefix DP vs exhaustive reference) and Pareto reduction
// (incremental sweep vs post-hoc sorted reference). The first entry is
// the default fast path; all four must emit bit-identical GridPlans.
func plannerVariants() []struct {
	name string
	pl   *Planner
} {
	mk := func(exhaustive, sorted bool) *Planner {
		pl := New()
		pl.Exhaustive = exhaustive
		pl.SortedPareto = sorted
		return pl
	}
	return []struct {
		name string
		pl   *Planner
	}{
		{"dp+sweep", mk(false, false)},
		{"dp+sorted", mk(false, true)},
		{"exhaustive+sweep", mk(true, false)},
		{"exhaustive+sorted", mk(true, true)},
	}
}

// TestPrefixDPMatchesExhaustive is the tentpole's frontier-stability
// proof: across the whole grid matrix, every enumerator × reduction
// combination emits GridPlans bit-identical to the default (prefix DP +
// incremental sweep) — same feasibility, same partition count,
// deep-equal proxy and frontier (plans, metrics, assignments, ideals).
// The exhaustive enumerator offers candidates in lexicographic order and
// the DP in colexicographic order, so agreement through the shared sweep
// also proves the staircase's order independence on real populations.
func TestPrefixDPMatchesExhaustive(t *testing.T) {
	variants := plannerVariants()
	for _, grid := range dpTestMatrix() {
		g := model.MustBuildClustered(grid.Workload.Model)
		want, err := variants[0].pl.PlanGrid(g, grid)
		if err != nil {
			t.Fatalf("%v: %s: %v", grid, variants[0].name, err)
		}
		for _, v := range variants[1:] {
			got, err := v.pl.PlanGrid(g, grid)
			if err != nil {
				t.Fatalf("%v: %s: %v", grid, v.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v: %s GridPlan diverged from %s\n%s: feasible=%v evaluated=%d frontier=%d proxy=%+v\n%s: feasible=%v evaluated=%d frontier=%d proxy=%+v",
					grid, v.name, variants[0].name,
					v.name, got.Feasible, got.CandidatesEvaluated, len(got.Frontier), got.Proxy,
					variants[0].name, want.Feasible, want.CandidatesEvaluated, len(want.Frontier), want.Proxy)
			}
		}
	}
}

// TestSweepFrontierTieStress drives the full variant matrix over the
// zero-load graphs — the strongest exact-tie stress available: uniform
// compute operators make fractional shares exactly equal and zero-load
// operators make them exactly 0, so the candidate populations contain
// large groups with identical (BComp, LComm) whose surviving member is
// decided purely by the lexicographic-rank tie rule. Any tie-break drift
// between the sweep staircase and the sorted reference, or any offer-
// order sensitivity between the two enumerators, shows here first.
func TestSweepFrontierTieStress(t *testing.T) {
	variants := plannerVariants()
	for _, tc := range []struct{ ops, zero, n, s int }{
		{12, 3, 8, 2}, {12, 3, 8, 4}, {12, 3, 16, 6},
		{16, 2, 16, 8}, {16, 4, 16, 5}, {10, 5, 16, 3},
	} {
		g := zeroLoadGraph(tc.ops, tc.zero)
		gr := grid(g.Name, 64, "A40", tc.n, tc.s)
		want, err := variants[0].pl.PlanGrid(g, gr)
		if err != nil {
			t.Fatalf("%v: %v", gr, err)
		}
		for _, v := range variants[1:] {
			got, err := v.pl.PlanGrid(g, gr)
			if err != nil {
				t.Fatalf("%v: %s: %v", gr, v.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v: %s diverged from %s on a tie-stress graph", gr, v.name, variants[0].name)
			}
		}
	}
}

// TestEnumerateCandidatesDPMatchesExhaustive extends the parity proof to
// the unfiltered candidate population (what Fig. 14 measures), including
// emission order — candidate lists are compared element-wise.
func TestEnumerateCandidatesDPMatchesExhaustive(t *testing.T) {
	dp := New()
	ex := New()
	ex.Exhaustive = true
	for _, grid := range dpTestMatrix() {
		if grid.S == 1 || grid.N < 4 {
			continue // thin grids are covered by the PlanGrid sweep
		}
		g := model.MustBuildClustered(grid.Workload.Model)
		got := dp.EnumerateCandidates(g, grid)
		want := ex.EnumerateCandidates(g, grid)
		if len(got) != len(want) {
			t.Fatalf("%v: %d candidates via DP, %d exhaustive", grid, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%v: candidate %d diverged\ndp:        %+v\nexhaustive: %+v", grid, i, got[i], want[i])
			}
		}
	}
}

// zeroLoadGraph builds an ad-hoc graph mixing zero-load operators
// (FLOPs = Bytes = 0) with uniform compute operators. Zero-load stages
// make ideal shares exactly 0 and uniform ones make them exactly equal —
// the strongest tie stress for assignment normalization and Pareto
// ordering on both enumeration paths.
func zeroLoadGraph(numOps int, zeroEvery int) *model.Graph {
	g := &model.Graph{Name: fmt.Sprintf("zero-load-%d-%d", numOps, zeroEvery), SeqLen: 128}
	for i := 0; i < numOps; i++ {
		op := model.Op{
			Name:       fmt.Sprintf("op%d", i),
			FLOPs:      1e12,
			Bytes:      1e9,
			ParamBytes: 1e6,
			ActBytes:   1e5,
		}
		if zeroEvery > 0 && i%zeroEvery == 0 {
			op.FLOPs, op.Bytes = 0, 0 // reshape/cast-like op: no load
		}
		g.Ops = append(g.Ops, op)
	}
	return g
}

// TestPlannerEdgePartitions covers the degenerate partitions on every
// enumerator × reduction combination before the reference paths are
// deleted: s=1 (single stage), s=numOps (one operator per stage), and
// graphs with zero-load operators, asserting path parity plus basic
// shape invariants.
func TestPlannerEdgePartitions(t *testing.T) {
	type gcase struct {
		name string
		g    *model.Graph
		grid core.Grid
	}
	gpt := model.MustBuildClustered("GPT-1.3B")
	numOps := len(gpt.Ops)
	zg := zeroLoadGraph(12, 3)
	cases := []gcase{
		{"s=1", gpt, core.Grid{Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}, GPUType: "A40", N: 4, S: 1}},
		{"s=numOps", gpt, core.Grid{Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}, GPUType: "A40", N: 16, S: numOps}},
		{"zero-load/s=2", zg, core.Grid{Workload: model.Workload{Model: zg.Name, GlobalBatch: 64}, GPUType: "A40", N: 8, S: 2}},
		{"zero-load/s=4", zg, core.Grid{Workload: model.Workload{Model: zg.Name, GlobalBatch: 64}, GPUType: "A40", N: 8, S: 4}},
		{"zero-load/s=numOps", zg, core.Grid{Workload: model.Workload{Model: zg.Name, GlobalBatch: 64}, GPUType: "A10", N: 16, S: 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			variants := plannerVariants()
			got, err := variants[0].pl.PlanGrid(tc.g, tc.grid)
			if err != nil {
				t.Fatalf("%s: %v", variants[0].name, err)
			}
			for _, v := range variants[1:] {
				want, err := v.pl.PlanGrid(tc.g, tc.grid)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("paths diverged: %s=%+v %s=%+v", variants[0].name, got, v.name, want)
				}
			}
			if wantCount := binom(len(tc.g.Ops)-1, tc.grid.S-1); got.CandidatesEvaluated != wantCount {
				t.Errorf("evaluated %d partitions, want C(%d,%d)=%d",
					got.CandidatesEvaluated, len(tc.g.Ops)-1, tc.grid.S-1, wantCount)
			}
			if !got.Feasible {
				t.Fatal("edge grid should be feasible")
			}
			if err := got.Proxy.Plan.Validate(tc.g); err != nil {
				t.Fatal(err)
			}
			if got.Proxy.Plan.PipelineDegree() != tc.grid.S || got.Proxy.Plan.TotalGPUs() != tc.grid.N {
				t.Errorf("proxy shape %s, want s=%d n=%d", got.Proxy.Plan, tc.grid.S, tc.grid.N)
			}
		})
	}
}

// TestPrefixDPSkipCounting pins the subtree-pruning arithmetic: a grid
// whose graph fits nowhere must still report the full C(O−1, s−1)
// partition count with an empty candidate set, exactly like the
// reference path that visits every partition individually.
func TestPrefixDPSkipCounting(t *testing.T) {
	g := model.MustBuildClustered("MoE-27B") // ≈210 GB state: no A10 grid fits
	for _, s := range []int{2, 3, 5, 8} {
		grid := core.Grid{Workload: model.Workload{Model: "MoE-27B", GlobalBatch: 256}, GPUType: "A10", N: 16, S: s}
		gp, err := New().PlanGrid(g, grid)
		if err != nil {
			t.Fatal(err)
		}
		if gp.Feasible || len(gp.Frontier) != 0 {
			t.Fatalf("s=%d: expected infeasible grid, got %+v", s, gp)
		}
		if want := binom(len(g.Ops)-1, s-1); gp.CandidatesEvaluated != want {
			t.Errorf("s=%d: evaluated %d, want %d", s, gp.CandidatesEvaluated, want)
		}
	}
}

// binom is an independent C(n, k) for the count assertions.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// TestPascalTriangle sanity-checks the skip-count table against the
// closed form.
func TestPascalTriangle(t *testing.T) {
	p := pascalTriangle(16)
	for m := 0; m <= 16; m++ {
		for k := 0; k <= 16; k++ {
			if p[m][k] != binom(m, k) {
				t.Fatalf("pascal[%d][%d] = %d, want %d", m, k, p[m][k], binom(m, k))
			}
		}
	}
}

// TestExhaustiveFlagChangesNothingVisible guards the reference toggle
// itself: an Exhaustive planner must keep satisfying the public
// invariants the default path is tested for (frontier non-domination,
// proxy provenance).
func TestExhaustiveFlagChangesNothingVisible(t *testing.T) {
	pl := New()
	pl.Exhaustive = true
	g := model.MustBuildClustered("WRes-2B")
	gp, err := pl.PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "WRes-2B", GlobalBatch: 512},
		GPUType:  "A40", N: 8, S: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gp.Feasible || gp.Proxy == nil {
		t.Fatal("reference path lost feasibility")
	}
	onFrontier := false
	for _, c := range gp.Frontier {
		if c == gp.Proxy {
			onFrontier = true
		}
	}
	if !onFrontier {
		t.Fatal("reference proxy not on its frontier")
	}
}
