package fixture

// Each directive below is defective in a distinct way; none suppresses
// anything, and each becomes its own finding.

//arena:allow
func missingName() {}

//arena:allow nosuchcheck because reasons
func unknownAnalyzer() {}

//arena:allow ctxshadow this suppresses nothing on a clean line
func stale() {}

//arena:allowance is not a directive at all and must stay invisible
func notADirective() {}
