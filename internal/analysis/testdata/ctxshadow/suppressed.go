package fixture

import "context"

// A directive with a reason suppresses the finding on the line below.
func suppressed(ctx context.Context) {
	{
		//arena:allow ctxshadow fixture demonstrates an audited shadow
		ctx := context.TODO()
		_ = ctx
	}
	_ = ctx
}
