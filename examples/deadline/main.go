// Deadline-aware scheduling (§5.6): Arena's generalized event-driven
// policy swaps its objective from throughput maximization (Eq. 5) to the
// deadline constraint (Eq. 6), dropping jobs that cannot make their
// deadlines and packing the rest.
//
//	go run ./examples/deadline
package main

import (
	"context"
	"fmt"
	"log"

	arena "github.com/sjtu-epcc/arena"
)

func main() {
	ctx := context.Background()
	spec := arena.ClusterA()

	cfg := arena.TraceConfig{
		Kind: "philly", Duration: 3 * 3600, NumJobs: 100, Seed: 7,
		GPUTypes: spec.GPUTypes(), MaxGPUs: 16,
		DeadlineFraction: 0.7, // §5.6: most jobs carry deadlines
	}
	jobs, err := arena.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	s, err := arena.New(
		arena.WithSeed(42),
		arena.WithCluster(spec),
		arena.WithMaxN(16),
	)
	if err != nil {
		log.Fatal(err)
	}

	// ElasticFlow is the paper's deadline-aware baseline; Arena runs with
	// the deadline objective enabled.
	arenaDDL := arena.NewArenaPolicy()
	arenaDDL.Objective = arena.ObjDeadline

	for _, p := range []arena.Policy{arena.NewElasticFlow(), arenaDDL} {
		res, err := s.Simulate(ctx, arena.SimConfig{
			Policy: p, Jobs: jobs,
			RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s deadline satisfaction %5.1f%%  avgJCT %7.0fs  avgThr %7.1f  dropped %d\n",
			p.Name(), 100*res.DeadlineRatio(), res.AvgJCT, res.AvgThr, res.Dropped)
	}
	fmt.Println("\nArena drops hopeless jobs early (Eq. 6) instead of letting them occupy GPUs past their deadlines.")
}
