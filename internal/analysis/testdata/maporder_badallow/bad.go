package fixture

func reasonless(m map[string]int) string {
	for k := range m {
		//arena:allow maporder
		return k
	}
	return ""
}
