// Tests of the public facade: the API a downstream user programs against.
package arena_test

import (
	"testing"

	arena "github.com/sjtu-epcc/arena"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment quick start must work end to end.
	eng := arena.NewEngine(42)
	graph := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")

	pl := arena.NewPlanner()
	grid := arena.Grid{
		Workload: arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 4, S: 2,
	}
	gp, err := pl.PlanGrid(graph, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !gp.Feasible || gp.Proxy == nil {
		t.Fatal("grid should be feasible")
	}
	res, err := eng.Evaluate(graph, gp.Proxy.Plan, spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fits || res.Throughput <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestCatalogAndClusters(t *testing.T) {
	if len(arena.GPUCatalog()) != 6 {
		t.Error("catalog should have the 6 Table 1 GPUs")
	}
	if arena.ClusterSim().TotalGPUs() != 1280 {
		t.Error("simulated cluster should have 1280 GPUs")
	}
	if len(arena.ModelNames()) != 14 {
		t.Errorf("expected 14 model variants, got %d", len(arena.ModelNames()))
	}
}

func TestFacadeSearches(t *testing.T) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("MoE-1.3B")
	spec := arena.MustGPU("A40")
	full, err := arena.FullSearch(eng, g, spec, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible() {
		t.Fatal("full search found nothing")
	}
	pl := arena.NewPlanner()
	gp, err := pl.PlanGrid(g, arena.Grid{
		Workload: arena.Workload{Model: "MoE-1.3B", GlobalBatch: 256},
		GPUType:  "A40", N: 4, S: full.Plan.PipelineDegree(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := arena.PrunedSearch(eng, g, spec, 256, 4, gp)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Result.Throughput < 0.85*full.Result.Throughput {
		t.Errorf("pruned quality too low: %v vs %v", pruned.Result.Throughput, full.Result.Throughput)
	}
}

func TestFacadeSimulation(t *testing.T) {
	spec := arena.ClusterA()
	jobs, err := arena.GenerateTrace(arena.TraceConfig{
		Kind: "philly", Duration: 3600, NumJobs: 12, Seed: 3,
		GPUTypes: spec.GPUTypes(), MaxGPUs: 8,
		Workloads: []arena.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := arena.BuildPerfDB(arena.NewEngine(42), arena.PerfDBOptions{
		GPUTypes: spec.GPUTypes(), MaxN: 8,
		Workloads: []arena.Workload{{Model: "WRes-1B", GlobalBatch: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := arena.Simulate(arena.SimConfig{
		Spec: spec, Policy: arena.NewArenaPolicy(), Jobs: jobs, DB: db,
		RoundSeconds: 300, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 12 {
		t.Errorf("finished %d/12", res.Finished)
	}
}

func TestObjectiveConstants(t *testing.T) {
	p := arena.NewArenaPolicy()
	p.Objective = arena.ObjFairness
	if p.Name() != "arena-fair" {
		t.Errorf("name = %s", p.Name())
	}
}
