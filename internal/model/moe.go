package model

import "fmt"

// MoEConfig describes a GShard-style mixture-of-experts transformer: every
// other transformer layer replaces its dense MLP with an expert-routed MLP
// bank (top-2 gating, capacity factor 2). MoE models carry far more
// parameters than FLOPs — precisely the property that makes static
// data-parallel scheduling overestimate their memory demands (§2.2 Case#2:
// "MoE-2.4B is assigned 4 GPUs though trainable on 2 GPUs with AP").
type MoEConfig struct {
	Name      string
	Layers    int // total transformer layers; every 2nd is MoE
	Hidden    int
	Experts   int // experts per MoE layer
	SeqLen    int
	VocabSize int
	Nominal   float64
}

// MoE sizes from the paper (Table 2): 0.69B – 27B.
var moeConfigs = map[string]MoEConfig{
	"MoE-0.69B": {Name: "MoE-0.69B", Layers: 12, Hidden: 768, Experts: 20, SeqLen: 1024, VocabSize: 51200, Nominal: 0.69e9},
	"MoE-1.3B":  {Name: "MoE-1.3B", Layers: 16, Hidden: 768, Experts: 32, SeqLen: 1024, VocabSize: 51200, Nominal: 1.3e9},
	"MoE-2.4B":  {Name: "MoE-2.4B", Layers: 16, Hidden: 1024, Experts: 32, SeqLen: 1024, VocabSize: 51200, Nominal: 2.4e9},
	"MoE-10B":   {Name: "MoE-10B", Layers: 16, Hidden: 1536, Experts: 64, SeqLen: 1024, VocabSize: 51200, Nominal: 10e9},
	"MoE-27B":   {Name: "MoE-27B", Layers: 16, Hidden: 2048, Experts: 96, SeqLen: 1024, VocabSize: 51200, Nominal: 27e9},
}

// MoESizes returns the available MoE variant names in ascending size.
func MoESizes() []string {
	return []string{"MoE-0.69B", "MoE-1.3B", "MoE-2.4B", "MoE-10B", "MoE-27B"}
}

// MoEConfigFor returns the configuration for a named MoE variant.
func MoEConfigFor(name string) (MoEConfig, error) {
	c, ok := moeConfigs[name]
	if !ok {
		return MoEConfig{}, fmt.Errorf("model: unknown MoE variant %q", name)
	}
	return c, nil
}

// Build constructs the operator graph. Dense layers follow GPT arithmetic;
// MoE layers hold Experts × 8h² parameters but compute only the top-2
// routed experts (≈ 2× a dense MLP with capacity factor 2) and add two
// all-to-all dispatch/combine exchanges across the expert-parallel group
// per forward pass.
func (c MoEConfig) Build() *Graph {
	const bytesPerParam = 2
	s := float64(c.SeqLen)
	h := float64(c.Hidden)
	actBytes := s * h * bytesPerParam

	ops := make([]Op, 0, 2*c.Layers+2)

	embedParams := (float64(c.VocabSize) + s) * h * bytesPerParam
	ops = append(ops, Op{
		Name: "embed", Kind: KindEmbedding,
		FLOPs:       2 * s * h,
		Bytes:       embedParams/float64(c.Layers) + 2*actBytes,
		ParamBytes:  embedParams,
		ActBytes:    actBytes,
		TPCommBytes: actBytes,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	for l := 0; l < c.Layers; l++ {
		attnParams := 4 * h * h * bytesPerParam
		ops = append(ops, Op{
			Name: fmt.Sprintf("layer%d/attn", l), Kind: KindAttention,
			FLOPs:       8*s*h*h + 4*s*s*h,
			Bytes:       attnParams + (8*s*h+2*s*s)*bytesPerParam,
			ParamBytes:  attnParams,
			ActBytes:    actBytes,
			TPCommBytes: actBytes,
			TPPrimitive: "all-reduce",
			Shardable:   true,
		})

		if l%2 == 1 {
			// MoE layer: E experts × 8h² params; top-2 routing computes two
			// experts per token (capacity factor 2).
			expertParams := float64(c.Experts) * 8 * h * h * bytesPerParam
			moeFLOPs := 2 * 16 * s * h * h // two routed experts
			// Traffic: touched expert weights (top-2 of E) + activations.
			moeBytes := 2*8*h*h*bytesPerParam + (2*s*h+2*2*4*s*h)*bytesPerParam
			ops = append(ops, Op{
				Name: fmt.Sprintf("layer%d/moe", l), Kind: KindMoE,
				FLOPs:      moeFLOPs,
				Bytes:      moeBytes,
				ParamBytes: expertParams,
				ActBytes:   actBytes,
				// Dispatch + combine all-to-all: capacity-factor-2 routed
				// activations, twice per forward pass.
				TPCommBytes: 2 * 2 * actBytes,
				TPPrimitive: "all-to-all",
				Shardable:   true,
			})
		} else {
			mlpParams := 8 * h * h * bytesPerParam
			ops = append(ops, Op{
				Name: fmt.Sprintf("layer%d/mlp", l), Kind: KindMLP,
				FLOPs:       16 * s * h * h,
				Bytes:       mlpParams + (2*s*h+8*s*h)*bytesPerParam,
				ParamBytes:  mlpParams,
				ActBytes:    actBytes,
				TPCommBytes: actBytes,
				TPPrimitive: "all-reduce",
				Shardable:   true,
			})
		}
	}

	ops = append(ops, Op{
		Name: "lm-head", Kind: KindHead,
		FLOPs:       2 * s * h * float64(c.VocabSize),
		Bytes:       float64(c.VocabSize)*h*bytesPerParam + actBytes + s*float64(c.VocabSize)*bytesPerParam,
		ParamBytes:  0,
		ActBytes:    s * 4,
		TPCommBytes: actBytes,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	return &Graph{
		Name:         c.Name,
		Family:       "moe",
		SeqLen:       c.SeqLen,
		Ops:          ops,
		Nominal:      c.Nominal,
		ActMemFactor: 5,
	}
}
