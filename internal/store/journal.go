package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// A Journal is an append-only, per-record-checksummed log inside a store
// — the durability mechanism behind the server's crash recovery. Records
// are JSON payloads framed one per line as
//
//	{"version":1,"seq":N,"sum":"<sha256 of compact payload>","payload":...}
//
// with sequence numbers contiguous from 0. OpenJournal validates every
// frame before returning: any unparseable, version-skewed, out-of-order
// or checksum-failing record — including a torn final line — yields a
// *Error wrapping ErrCorrupt (or ErrSchema), and the caller is expected
// to refuse to proceed rather than replay garbage. Append fsyncs each
// record before returning, so an acknowledged record survives the
// process.
//
// A Journal is not safe for concurrent use; the store's single-writer
// lock already serializes processes, and the owning process serializes
// its own appends.
type Journal struct {
	path string
	f    *os.File
	next int // sequence number of the next record to append
}

// journalRecord frames one journal payload on disk.
type journalRecord struct {
	Version int             `json:"version"`
	Seq     int             `json:"seq"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// journalName guards path construction the way Key.valid does for keys.
func journalName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		if !strings.ContainsRune("abcdefghijklmnopqrstuvwxyz0123456789-", c) {
			return false
		}
	}
	return true
}

// OpenJournal opens (creating if needed) the journal `name`, validates
// every existing record, and returns the journal positioned to append
// along with the validated payloads in order — the replay input. Any
// invalid record fails the open; a store that has been tampered with or
// torn is surfaced, never silently truncated.
func (s *Store) OpenJournal(name string) (*Journal, []json.RawMessage, error) {
	if !journalName(name) {
		return nil, nil, &Error{Op: "journal", Path: name, Err: fmt.Errorf("invalid journal name %q", name)}
	}
	dir := filepath.Join(s.dir, "journal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, &Error{Op: "journal", Path: dir, Err: err}
	}
	path := filepath.Join(dir, name+".log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, &Error{Op: "journal", Path: path, Err: err}
	}
	entries, next, err := readJournal(path, f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{path: path, f: f, next: next}, entries, nil
}

// readJournal scans and validates every frame, returning the payloads
// and the next sequence number.
func readJournal(path string, f *os.File) ([]json.RawMessage, int, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var entries []json.RawMessage
	seq := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, &Error{Op: "journal", Path: path, Err: fmt.Errorf("%w: record %d: %v", ErrCorrupt, seq, err)}
		}
		if rec.Version != Version {
			return nil, 0, &Error{Op: "journal", Path: path, Err: fmt.Errorf("%w: record %d has v%d, this build reads v%d", ErrSchema, seq, rec.Version, Version)}
		}
		if rec.Seq != seq {
			return nil, 0, &Error{Op: "journal", Path: path, Err: fmt.Errorf("%w: record %d carries seq %d (reordered or spliced)", ErrCorrupt, seq, rec.Seq)}
		}
		if payloadSum(rec.Payload) != rec.Sum {
			return nil, 0, &Error{Op: "journal", Path: path, Err: fmt.Errorf("%w: record %d payload checksum mismatch", ErrCorrupt, seq)}
		}
		entries = append(entries, append(json.RawMessage(nil), rec.Payload...))
		seq++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, &Error{Op: "journal", Path: path, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	return entries, seq, nil
}

// Len returns the number of records appended so far (validated records
// at open plus Appends since).
func (j *Journal) Len() int { return j.next }

// Append frames, writes and fsyncs one record. When Append returns nil
// the record is durable; on error the journal may hold a torn tail,
// which the next OpenJournal will surface as corruption rather than
// drop.
func (j *Journal) Append(v any) error {
	if j.f == nil {
		return &Error{Op: "journal", Path: j.path, Err: errors.New("append to closed journal")}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return &Error{Op: "journal", Path: j.path, Err: err}
	}
	rec := journalRecord{Version: Version, Seq: j.next, Sum: payloadSum(payload), Payload: payload}
	line, err := json.Marshal(rec)
	if err != nil {
		return &Error{Op: "journal", Path: j.path, Err: err}
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return &Error{Op: "journal", Path: j.path, Err: err}
	}
	if err := j.f.Sync(); err != nil {
		return &Error{Op: "journal", Path: j.path, Err: err}
	}
	j.next++
	return nil
}

// Close flushes and closes the journal file. Idempotent.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return &Error{Op: "journal", Path: j.path, Err: err}
	}
	return nil
}
