package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The standalone loader: parse and type-check every package of this
// module using only the standard library plus the go command. Package
// metadata comes from `go list -json`; type information for external
// dependencies (the standard library — go.mod declares nothing else)
// comes from export data produced by `go list -export`, which works
// fully offline against the build cache. Module packages are
// type-checked from source in dependency order so the analyzers see
// syntax trees, not just export data.
//
// Each module package yields up to two analysis units: the package
// including its in-package _test.go files, and — when present — the
// external test package (pkg_test). Production-only analyzers filter
// test files per Analyzer.SkipTests; type-checking with tests included
// is what lets external test files resolve the package under test.

// listedPackage is the subset of `go list -json` output the loader
// reads.
type listedPackage struct {
	ImportPath     string
	Dir            string
	Standard       bool
	Export         string
	GoFiles        []string
	CgoFiles       []string
	TestGoFiles    []string
	XTestGoFiles   []string
	IgnoredGoFiles []string
	Imports        []string
	TestImports    []string
	XTestImports   []string
}

// LoadConfig parameterizes a module load.
type LoadConfig struct {
	Dir      string   // module root (a directory containing go.mod)
	Patterns []string // package patterns, default ./...
	Tags     string   // -tags to forward to the go command
}

// LoadResult is one loaded module, plus the files the active build
// configuration left out (so a sweep can refuse to silently skip
// tag-gated code).
type LoadResult struct {
	Packages     []*Package
	IgnoredFiles []string // per-package IgnoredGoFiles under the current tags
}

// LoadModule loads, parses and type-checks the module rooted at
// cfg.Dir.
func LoadModule(cfg LoadConfig) (*LoadResult, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	listed, err := goList(cfg.Dir, cfg.Tags, false, patterns)
	if err != nil {
		return nil, err
	}
	var mod []*listedPackage
	ignored := []string{}
	for _, p := range listed {
		if p.Standard || !strings.HasPrefix(p.ImportPath, ModulePath) {
			continue
		}
		mod = append(mod, p)
		for _, f := range p.IgnoredGoFiles {
			ignored = append(ignored, filepath.Join(p.Dir, f))
		}
	}

	// Export data for everything imported from outside the module.
	external := map[string]bool{}
	for _, p := range mod {
		for _, lists := range [][]string{p.Imports, p.TestImports, p.XTestImports} {
			for _, imp := range lists {
				if imp != "C" && imp != "unsafe" && !strings.HasPrefix(imp, ModulePath) {
					external[imp] = true
				}
			}
		}
	}
	exports, err := exportData(cfg.Dir, cfg.Tags, sortedKeys(external))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &moduleLoader{
		fset:    fset,
		byPath:  map[string]*listedPackage{},
		checked: map[string]*types.Package{},
		gc:      gcImporter(fset, exports),
	}
	for _, p := range mod {
		ld.byPath[p.ImportPath] = p
	}

	var out []*Package
	for _, p := range mod {
		// Unit 1: the package with its in-package test files.
		files := append(append([]string{}, p.GoFiles...), p.CgoFiles...)
		files = append(files, p.TestGoFiles...)
		unit, err := ld.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, unit)

		// Unit 2: the external test package, if any.
		if len(p.XTestGoFiles) > 0 {
			xunit, err := ld.check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xunit)
		}
	}
	sort.Strings(ignored)
	return &LoadResult{Packages: out, IgnoredFiles: ignored}, nil
}

type moduleLoader struct {
	fset    *token.FileSet
	byPath  map[string]*listedPackage
	checked map[string]*types.Package // base units only, by import path
	gc      types.Importer
}

// Import implements types.Importer over the module graph: module-local
// packages are type-checked from source on demand (base unit, no test
// files — importable packages cannot depend on their importers' test
// variants); everything else resolves through gc export data.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	p, ok := ld.byPath[path]
	if !ok {
		return ld.gc.Import(path)
	}
	files := append(append([]string{}, p.GoFiles...), p.CgoFiles...)
	unit, err := ld.checkBase(path, p.Dir, files)
	if err != nil {
		return nil, err
	}
	return unit, nil
}

func (ld *moduleLoader) checkBase(importPath, dir string, files []string) (*types.Package, error) {
	unit, err := ld.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	ld.checked[importPath] = unit.Pkg
	return unit.Pkg, nil
}

// check parses and type-checks one unit.
func (ld *moduleLoader) check(importPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := NewTypesInfo()
	tc := &types.Config{Importer: ld}
	pkg, err := tc.Check(importPath, ld.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		Fset:       ld.fset,
		Files:      parsed,
		Pkg:        pkg,
		TypesInfo:  info,
		ImportPath: importPath,
	}, nil
}

// goList runs `go list -json` and decodes the stream.
func goList(dir, tags string, export bool, patterns []string) ([]*listedPackage, error) {
	args := []string{"list", "-json"}
	if export {
		args = append(args, "-deps", "-export")
	}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// exportData resolves import paths to export-data files via
// `go list -deps -export`, returning a path → file map.
func exportData(dir, tags string, paths []string) (map[string]string, error) {
	out := map[string]string{}
	if len(paths) == 0 {
		return out, nil
	}
	listed, err := goList(dir, tags, true, paths)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// gcImporter builds a types.Importer reading gc export data through a
// path → file map.
func gcImporter(fset *token.FileSet, files map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
