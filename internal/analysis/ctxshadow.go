package analysis

import (
	"go/ast"
	"go/types"
)

// CtxShadow rejects any declaration that shadows a context.Context
// parameter in a nested scope — the sim.RunCtx bug class: a round loop
// once declared `ctx := &sched.Context{...}`, shadowing the
// cancellation context, and the cancellation check kept reading the
// right variable only by accident of statement order.
//
// This is the go/types port of internal/shadowcheck's original go/ast
// check. The typed view removes the syntactic heuristics: a parameter
// counts as a context whatever the import is named (`c "context"`,
// dot-imports, type aliases), and a same-scope reuse like
// `ctx, cancel := context.WithCancel(ctx)` produces no new object so it
// can never be flagged by construction.
//
// A nested function literal's own context.Context parameter is exempt:
// `withRetry(func(ctx context.Context) error {...})` is the callback
// idiom where the callee supplies a derived context on purpose. Every
// other redeclaration — including rebinding the name to another
// context — must rename the local instead.
var CtxShadow = &Analyzer{
	Name: "ctxshadow",
	Doc: "report declarations that shadow a context.Context parameter; " +
		"rename the local so cancellation keeps flowing through the parameter",
	Run: runCtxShadow,
}

func runCtxShadow(pass *Pass) error {
	// Pass 1: collect every parameter object, noting which ones are
	// context.Context-typed.
	ctxParams := make(map[types.Object]bool)
	allParams := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Matching the FuncType node covers declarations, literals
			// and named parameters inside function-type expressions.
			ft, ok := n.(*ast.FuncType)
			if !ok || ft.Params == nil {
				return true
			}
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					allParams[obj] = true
					if isContextType(obj.Type()) {
						ctxParams[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(ctxParams) == 0 {
		return nil
	}

	// Pass 2: any *other* object defined with the same name inside a
	// context parameter's scope shadows it. go/types scopes make the
	// nesting question exact — no per-statement walk needed.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || ctxParams[obj] {
				return true
			}
			if _, ok := obj.(*types.Var); !ok {
				return true
			}
			// The callback idiom: a nested function's own
			// context.Context parameter is a deliberate rebind.
			if allParams[obj] && isContextType(obj.Type()) {
				return true
			}
			for param := range ctxParams {
				if param.Name() != obj.Name() {
					continue
				}
				if scopeContains(param.Parent(), obj.Parent()) {
					pass.Reportf(id.Pos(),
						"declaration of %q shadows a context.Context parameter", id.Name)
					break
				}
			}
			return true
		})
	}
	return nil
}

// scopeContains reports whether inner is strictly nested within outer.
func scopeContains(outer, inner *types.Scope) bool {
	if outer == nil || inner == nil {
		return false
	}
	for s := inner.Parent(); s != nil; s = s.Parent() {
		if s == outer {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context (through aliases).
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
