package sim

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// runFaultSim is runSim with a fault configuration and a round bound.
func runFaultSim(t *testing.T, p sched.Policy, jobs []trace.Job, fc *faults.Config, maxRounds int) *Result {
	t.Helper()
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: p, Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: maxRounds,
		IncludeUnfinished: true, Seed: 1, Faults: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// longJobs builds jobs with enough work to still be running when a
// mid-trace failure storm hits.
func longJobs(n int) []trace.Job {
	jobs := make([]trace.Job, n)
	for i := range jobs {
		jobs[i] = trace.Job{
			ID:         fmt.Sprintf("long-%02d", i),
			Workload:   model.Workload{Model: "WRes-1B", GlobalBatch: 256},
			Iterations: 20000, ReqGPUs: 2, ReqType: "A40", Priority: 1,
		}
	}
	return jobs
}

// stormTrace scripts a cluster-wide outage: every node of both regions
// crashes at t=5000 and recovers at t=6000, so every running job is
// preempted exactly once.
func stormTrace(t *testing.T) faults.Schedule {
	t.Helper()
	var sb strings.Builder
	for _, typ := range []string{"A40", "A10"} {
		for node := 0; node < 16; node++ {
			fmt.Fprintf(&sb, "5000 crash %s %d\n6000 recover %s %d\n", typ, node, typ, node)
		}
	}
	s, err := faults.ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// faultOutcome extends the determinism comparison with the fault-path
// counters jobOutcome predates.
type faultOutcome struct {
	jobOutcome
	Preemptions int
	Restarts    int
	Migrations  int
}

func faultOutcomes(res *Result) map[string]faultOutcome {
	base := outcomes(res)
	out := map[string]faultOutcome{}
	for _, j := range res.Jobs {
		out[j.Trace.ID] = faultOutcome{
			jobOutcome:  base[j.Trace.ID],
			Preemptions: j.Preemptions,
			Restarts:    j.Restarts,
			Migrations:  j.Migrations,
		}
	}
	return out
}

func TestSimFaultDeterminismMatrix(t *testing.T) {
	// The whole point of seeding the fault realization: a run with crash
	// injection, straggler injection, or a scripted trace must be
	// bit-identical to a rerun with the same seed — and a disabled config
	// must stay deterministic too.
	jobs := testJobs(t, 30)
	configs := map[string]*faults.Config{
		"off": nil,
		"model": {
			Model: &faults.Model{
				Default: faults.TypeFaults{MTBF: 2 * 3600, MTTR: 1800, SlowEvery: 4 * 3600},
			},
			CheckpointInterval: 900,
		},
		"trace": {Trace: stormTrace(t), CheckpointInterval: 600},
	}
	for name, fc := range configs {
		a := runFaultSim(t, sched.NewArena(), jobs, fc, 0)
		b := runFaultSim(t, sched.NewArena(), jobs, fc, 0)
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("%s: summaries differ between identical seeded runs", name)
		}
		if !reflect.DeepEqual(faultOutcomes(a), faultOutcomes(b)) {
			t.Errorf("%s: per-job outcomes differ between identical seeded runs", name)
		}
		switch name {
		case "off":
			if a.Preemptions != 0 || a.Restarts != 0 || a.WastedGPUHours != 0 {
				t.Errorf("off: fault counters nonzero on a fault-free run: %+v", a.Summary)
			}
			if a.GoodputGPUHours <= 0 {
				t.Error("off: goodput accounting should run even without faults")
			}
		case "model":
			if a.Preemptions == 0 {
				t.Error("model: a 2h-MTBF realization preempted nothing; the matrix is vacuous")
			}
		}
	}
}

func TestSimFaultRecoveryAblation(t *testing.T) {
	// The acceptance ablation: on the same scripted outage, checkpoint
	// recovery must yield strictly more goodput AND strictly fewer wasted
	// GPU-hours than letting preempted jobs die.
	jobs := longJobs(8)
	fc := &faults.Config{Trace: stormTrace(t), CheckpointInterval: 600}
	off := &faults.Config{Trace: stormTrace(t), CheckpointInterval: 600, DisableRecovery: true}
	en := runFaultSim(t, sched.NewArena(), jobs, fc, 60)
	dis := runFaultSim(t, sched.NewArena(), jobs, off, 60)

	if en.Preemptions == 0 {
		t.Fatal("outage preempted nothing; fixture broken")
	}
	if en.Failed != 0 {
		t.Errorf("with recovery, %d jobs failed inside a %d-retry budget", en.Failed, en.Preemptions)
	}
	if en.Restarts == 0 {
		t.Error("with recovery, preempted jobs must restart")
	}
	if dis.Failed == 0 {
		t.Error("without recovery, preempted jobs must fail")
	}
	if en.GoodputGPUHours <= dis.GoodputGPUHours {
		t.Errorf("recovery goodput %.1f GPUh must exceed no-recovery %.1f",
			en.GoodputGPUHours, dis.GoodputGPUHours)
	}
	if en.WastedGPUHours >= dis.WastedGPUHours {
		t.Errorf("recovery waste %.1f GPUh must undercut no-recovery %.1f",
			en.WastedGPUHours, dis.WastedGPUHours)
	}
	if en.RecomputeSeconds <= 0 {
		t.Error("restarted jobs recompute their lost checkpoint window")
	}
}

func TestSimCrashRollsBackToCheckpoint(t *testing.T) {
	// A preempted job resumes from its last modeled checkpoint, not from
	// its live progress: remaining work grows back at the crash.
	jobs := longJobs(1)
	fc := &faults.Config{Trace: stormTrace(t), CheckpointInterval: 600}
	res := runFaultSim(t, policy.NewFCFS(), jobs, fc, 40)
	j := res.Jobs[0]
	if j.Preemptions != 1 || j.Restarts != 1 {
		t.Fatalf("preemptions=%d restarts=%d, want 1/1", j.Preemptions, j.Restarts)
	}
	total := jobs[0].TotalSamples()
	if j.RemainingSamples >= total {
		t.Error("job lost all progress despite checkpointing")
	}
	if res.WastedGPUHours <= 0 {
		t.Error("the rolled-back window must be accounted as waste")
	}
	// Conservation: everything the cluster computed is either retained
	// goodput or waste.
	if res.GoodputGPUHours <= 0 {
		t.Error("checkpointed progress must be retained as goodput")
	}
}

func TestSimRestartBackoffGatesRelaunch(t *testing.T) {
	// A preempted job with a large backoff base must sit out the rest of
	// a short horizon even though capacity recovered long before.
	jobs := longJobs(1)
	fc := &faults.Config{Trace: stormTrace(t), CheckpointInterval: 600, BackoffBase: 100000}
	res := runFaultSim(t, policy.NewFCFS(), jobs, fc, 30) // horizon 9000s << 5000+100000
	j := res.Jobs[0]
	if j.Preemptions != 1 {
		t.Fatalf("preemptions=%d, want 1", j.Preemptions)
	}
	if j.State != sched.StateQueued {
		t.Errorf("job state %s; a 100000s backoff must keep it queued through t=9000", j.State)
	}
	if want := 5000 + 100000.0; math.Abs(j.NextEligibleAt-want) > 1e-6 {
		t.Errorf("NextEligibleAt = %v, want %v", j.NextEligibleAt, want)
	}
}

func TestSimRetryBudgetExhaustionFails(t *testing.T) {
	// Three cluster-wide outages against a retry budget of 2: the third
	// preemption must fail the job instead of requeueing it.
	var sb strings.Builder
	for _, at := range [][2]int{{1000, 1200}, {2500, 2700}, {4000, 4200}} {
		for _, typ := range []string{"A40", "A10"} {
			for node := 0; node < 16; node++ {
				fmt.Fprintf(&sb, "%d crash %s %d\n%d recover %s %d\n", at[0], typ, node, at[1], typ, node)
			}
		}
	}
	sched3, err := faults.ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fc := &faults.Config{Trace: sched3, CheckpointInterval: 600, RetryBudget: 2, BackoffBase: 60}
	res := runFaultSim(t, policy.NewFCFS(), longJobs(1), fc, 25)
	j := res.Jobs[0]
	if j.State != sched.StateFailed {
		t.Fatalf("job state %s, want failed after exhausting 2 retries (preemptions=%d)",
			j.State, j.Preemptions)
	}
	if j.Preemptions != 3 || j.Restarts != 2 {
		t.Errorf("preemptions=%d restarts=%d, want 3/2", j.Preemptions, j.Restarts)
	}
	if res.Failed != 1 {
		t.Errorf("Summary.Failed = %d, want 1", res.Failed)
	}
	if res.GoodputGPUHours != 0 {
		t.Errorf("a failed job retains no goodput, got %.2f GPUh", res.GoodputGPUHours)
	}
}

func TestSimArenaRoutesAroundStraggler(t *testing.T) {
	// A long straggler episode on the job's nodes, with healthy same-type
	// capacity free: Arena must migrate the job off the slow nodes (and a
	// straggler-blind policy must not).
	var sb strings.Builder
	for _, typ := range []string{"A40", "A10"} {
		for node := 0; node < 8; node++ {
			fmt.Fprintf(&sb, "2000 slow %s %d 0.2 100000\n", typ, node)
		}
	}
	slowTrace, err := faults.ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	fc := &faults.Config{Trace: slowTrace, CheckpointInterval: 1800}

	p := sched.NewArena()
	p.D = 0 // pin the allocation: isolate routing from elastic rescaling
	arena := runFaultSim(t, p, longJobs(1), fc, 0)
	aj := arena.Jobs[0]
	if aj.Migrations == 0 {
		t.Fatalf("Arena never migrated off the straggler (slow factor %v)", aj.SlowFactor)
	}
	if aj.State != sched.StateFinished {
		t.Fatalf("migrated job state %s, want finished", aj.State)
	}
	if aj.SlowFactor != 1 {
		t.Errorf("after routing, the job should sit on healthy nodes, factor %v", aj.SlowFactor)
	}

	fcfs := runFaultSim(t, policy.NewFCFS(), longJobs(1), fc, 0)
	fj := fcfs.Jobs[0]
	if fj.Migrations != 0 {
		t.Fatal("FCFS has no routing; fixture assumption broken")
	}
	if fj.State == sched.StateFinished && aj.State == sched.StateFinished &&
		aj.FinishedAt >= fj.FinishedAt {
		t.Errorf("routing must beat sitting on a 0.2x node: arena %v vs fcfs %v",
			aj.FinishedAt, fj.FinishedAt)
	}
}

func TestSimCancellationMidFailureStorm(t *testing.T) {
	// Cancelling during a fault-heavy run stops at the round boundary and
	// leaks nothing: the simulator is synchronous, so the goroutine count
	// must return to its baseline.
	before := runtime.NumGoroutine()
	jobs := testJobs(t, 30)
	fc := &faults.Config{
		Model:              &faults.Model{Default: faults.TypeFaults{MTBF: 1800, MTTR: 900, SlowEvery: 3600}},
		CheckpointInterval: 600,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rounds atomic.Int32
	res, err := RunCtx(ctx, Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true, Seed: 1, Faults: fc,
		Progress: func(e core.Event) {
			if rounds.Add(1) == 5 {
				cancel()
			}
		},
	})
	if err != context.Canceled || res != nil {
		t.Fatalf("mid-storm cancel: res=%v err=%v, want nil/context.Canceled", res, err)
	}
	if got := rounds.Load(); got != 5 {
		t.Fatalf("simulation ran %d rounds after cancellation at round 5", got)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestSimFaultTraceValidatedAgainstSpec(t *testing.T) {
	// A trace naming nodes outside the simulated cluster must be rejected
	// up front, not crash mid-run.
	bad := faults.Schedule{{Time: 10, Kind: faults.Crash, GPUType: "A40", Node: 99}}
	_, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), Jobs: longJobs(1), DB: db(t),
		RoundSeconds: 300, Faults: &faults.Config{Trace: bad},
	})
	if err == nil {
		t.Fatal("off-spec fault trace accepted")
	}
}

// scriptPolicy replays a fixed per-round assignment script with constant
// throughput and overheads — a harness for exact overhead arithmetic.
type scriptPolicy struct {
	script map[int]sched.Assignment
	round  int
	deploy float64
	thr    float64
}

func (p *scriptPolicy) Name() string { return "script" }
func (p *scriptPolicy) Assign(ctx *sched.Context) sched.Assignment {
	asg := p.script[p.round]
	p.round++
	return asg
}
func (p *scriptPolicy) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return p.thr
}
func (p *scriptPolicy) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return p.thr
}
func (p *scriptPolicy) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 { return 0 }
func (p *scriptPolicy) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return p.deploy
}

func TestSimRescaleStacksOnPendingDeploy(t *testing.T) {
	// Regression: rescaling a job that was still inside its deployment
	// window used to recharge BusyUntil from `now`, so the rescale
	// *shortened* the stall and the job finished impossibly early.
	//
	// Script: launch at t=0 on 2 GPUs with a 2000s deploy (busy until
	// 2000), rescale at t=300 to 4 GPUs. The rescale must stack its
	// checkpoint-resume (300s) plus 20% of the search (400s) on top of the
	// pending deploy: busy until 2700, and the 1024-sample job at 1
	// sample/s finishes at 3724. The buggy arithmetic gave 300+300+400 =
	// busy until 1000, finishing at 2024.
	p := &scriptPolicy{
		thr:    1.0,
		deploy: 2000,
		script: map[int]sched.Assignment{
			0: {Place: map[string]sched.Alloc{"j1": {GPUType: "A40", N: 2}}},
			1: {Place: map[string]sched.Alloc{"j1": {GPUType: "A40", N: 4}}},
		},
	}
	jobs := []trace.Job{{
		ID:       "j1",
		Workload: model.Workload{Model: "WRes-1B", GlobalBatch: 256},
		// 4 iterations x 256 samples = 1024 samples = 1024s at thr 1.
		Iterations: 4, ReqGPUs: 2, ReqType: "A40", Priority: 1,
	}}
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: p, Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: 40, IncludeUnfinished: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.State != sched.StateFinished {
		t.Fatalf("job state %s, want finished", j.State)
	}
	if want := 3724.0; math.Abs(j.FinishedAt-want) > 1e-6 {
		t.Fatalf("FinishedAt = %v, want %v (overlapping reconfiguration overheads must stack)",
			j.FinishedAt, want)
	}
}
