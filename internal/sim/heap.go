package sim

import "github.com/sjtu-epcc/arena/internal/sched"

// The event classes, in same-instant processing order. Completions beat
// fault events at the same instant — a job that finishes exactly when
// its node crashes has finished (internal/faults' kindRank orders
// crashes last among faults for the same reason), and the reference
// scan core implements the identical tie rule.
const (
	classCompletion uint8 = iota
	classFault
)

// event is one entry of the simulator's unified event heap: a predicted
// job completion, or the next pending fault event from the materialized
// fault schedule.
//
// Completion entries are lazily deleted: any rate change bumps the job's
// epoch and pushes a fresh prediction, so an entry is live only while
// its epoch matches the job's. Stale entries pop and are skipped —
// cheaper than in-place heap repair, and the epoch check makes the skip
// O(1).
type event struct {
	at    float64
	class uint8
	// seq totally orders same-instant events of the same class:
	// completions carry the job's rate-change sequence number, fault
	// entries their schedule index (the schedule is pre-sorted by time,
	// then kind rank). A total order is what keeps the heap core's event
	// sequence — and therefore every order-dependent float accumulation —
	// bit-identical to the reference scan's.
	seq   uint64
	job   *sched.Job // completion entries
	epoch uint64     // completion entries: liveness check
	fault int        // fault entries: index into state.events
}

// eventHeap is a binary min-heap of events ordered by (at, class, seq).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // drop the job pointer so retired jobs can be collected
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// pushFault publishes the fault-schedule entry at index idx.
func (s *state) pushFault(idx int) {
	s.heap.push(event{at: s.events[idx].Time, class: classFault, seq: uint64(idx), fault: idx})
}

// advanceHeap is the event core: pop due events until the heap's front
// is beyond t. Between-round work is O(events · log heap) — no per-event
// rescan of the running set. The fault stream is merged into the same
// heap one entry at a time (the schedule is already sorted, so a single
// cursor entry suffices); popping a fault event publishes its successor.
func (s *state) advanceHeap(t float64) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		ev := s.heap.pop()
		switch ev.class {
		case classCompletion:
			js := s.sim[ev.job]
			if js == nil || js.epoch != ev.epoch {
				continue // stale prediction, lazily deleted
			}
			s.materialize(ev.job, ev.at)
			s.complete(ev.job, ev.at)
		case classFault:
			fe := s.events[ev.fault]
			s.evIdx = ev.fault + 1
			if s.evIdx < len(s.events) {
				s.pushFault(s.evIdx)
			}
			s.applyFault(fe)
		}
	}
}
