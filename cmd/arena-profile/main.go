// Command arena-profile runs the single-device disaggregated profiler and
// compares its end-to-end estimate against direct measurement on the
// simulated testbed — the analogue of the paper artifact's
// runtime_profiler.py with --estimate_e2e vs --measure_with_alpa
// (§A.4.2).
//
// Usage:
//
//	arena-profile -model WRes-1B -batch 256 -gpu A40 -n 4 -s 4
//	arena-profile -model GPT-2.6B -batch 128 -gpu V100 -n 4   # all degrees
package main

import (
	"flag"
	"fmt"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/cli"
)

func main() {
	var (
		modelName = flag.String("model", "WRes-1B", "model variant")
		batch     = flag.Int("batch", 256, "global batch size")
		gpu       = flag.String("gpu", "A40", "GPU type")
		n         = flag.Int("n", 4, "allocated GPU count")
		s         = flag.Int("s", 0, "pipeline degree; 0 = all grids")
	)
	c := cli.CommonFlags()
	flag.Parse()
	ctx := cli.Context()

	g, err := arena.BuildModel(*modelName)
	if err != nil {
		cli.Fatal(err)
	}
	w := arena.Workload{Model: *modelName, GlobalBatch: *batch}
	sess := cli.NewSession(c,
		arena.WithSeed(c.Seed),
		arena.WithWorkers(c.Workers),
		arena.WithGPUTypes(*gpu),
		arena.WithMaxN(*n),
		arena.WithWorkloads(w),
	)
	defer cli.CloseSession(c, sess)

	fmt.Printf("offline-sampling communication primitives for %s...\n", *gpu)
	ct, err := sess.CommTable(ctx)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("  %d (primitive, topology) tables, modeled one-shot cost %.1fh\n\n",
		len(ct.Keys()), ct.OfflineCostSeconds/3600)

	pr, err := sess.Profiler(ctx)
	if err != nil {
		cli.Fatal(err)
	}

	degrees := arena.PipelineDegrees(*n, len(g.Ops))
	if *s > 0 {
		degrees = []int{*s}
	}
	fmt.Printf("profiling %s (batch %d) on %dx%s with a single profiling GPU\n\n", *modelName, *batch, *n, *gpu)
	for _, deg := range degrees {
		gp, err := sess.Plan(ctx, arena.Grid{Workload: w, GPUType: *gpu, N: *n, S: deg})
		if err != nil {
			cli.Fatal(err)
		}
		if !gp.Feasible {
			fmt.Printf("s=%d: infeasible\n", deg)
			continue
		}
		est, err := pr.ProfileGridPlan(g, gp)
		if err != nil {
			cli.Fatal(err)
		}
		res, err := sess.Evaluate(ctx, g, gp.Proxy.Plan, *gpu, *batch)
		if err != nil {
			cli.Fatal(err)
		}
		oracle := arena.DirectMeasureCost(res, gp.Proxy.Plan, pr.Trials)
		errPct := 100 * (est.IterTime - res.IterTime) / res.IterTime
		fmt.Printf("s=%d plan %-24s estimated %.3fs/iter, measured %.3fs/iter (err %+.1f%%)\n",
			deg, gp.Proxy.Plan, est.IterTime, res.IterTime, errPct)
		fmt.Printf("     profiling cost %.1f GPU*s (%d/%d unique ops) vs direct measurement %.1f GPU*s => %.1fx cheaper\n",
			est.ProfileGPUTime, est.UniqueOps, est.TotalOps, oracle, oracle/est.ProfileGPUTime)
	}

	if c.Persistent() {
		db, src := cli.BuildDB(ctx, sess)
		if e, ok := db.Entry(w, *gpu, *n); ok {
			fmt.Printf("\nperfdb (%s): profiler estimate %8.1f samples/s vs deployed plan %-12s %8.1f samples/s\n",
				src, e.ArenaEstThr, e.ArenaPlan, e.ArenaActualThr)
		}
	}
}
