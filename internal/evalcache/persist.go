package evalcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/store"
)

// This file persists the cache's memo tables through a content-addressed
// store, extending measurement reuse across processes: a CLI invocation
// that profiled a stage candidate leaves its measurement on disk, and the
// next invocation — same seed, same model definitions, same device specs —
// starts with the memo warm and skips even cold-search profiling.
//
// One store object holds one measurement context (what StageShard holds in
// memory): the op-measurement table keyed like opCtxKey, the stage memo,
// and the plan evaluations of that (graph, device, node-packing) triple.
// The object's key hashes everything that determines the measurements:
// the eval schema version, the engine fingerprint (seed plus every
// tunable), the model-graph fingerprint (every operator's static
// quantities), the GPU-spec fingerprint, and the node packing.
//
// Loading is lazy and exactly as wide as the session's working set: a
// context's object is read once, when the context is first resolved —
// never sooner. A store shared across seeds, models or weeks of
// accumulated objects costs a session nothing for the objects it does not
// touch, and objects orphaned by definition drift (a retuned engine, an
// edited model) are simply never looked up, because the drifted inputs
// derive a different key. Saving is equally scoped: SaveStore writes only
// the contexts that gained measurements since they were loaded.
const evalSchema = 1

// evalDomain is the store domain the cache persists under.
const evalDomain = "eval"

// ErrStale marks a store object whose payload identity does not match the
// context it was looked up for — a hash-keyed file whose content belongs
// elsewhere. (Ordinary definition drift never produces ErrStale: drifted
// inputs derive a different key, so the old object is simply not found.)
var ErrStale = errors.New("evalcache: store object is stale")

// shardDump is the serializable content of one measurement context.
type shardDump struct {
	Seed        uint64 `json:"seed"`
	Graph       string `json:"graph"`
	GPU         string `json:"gpu"`
	GPUsPerNode int    `json:"gpusPerNode"`

	Stages []stageEntry `json:"stages,omitempty"`
	OpCtxs []opCtxDump  `json:"opCtxs,omitempty"`
	Plans  []planEntry  `json:"plans,omitempty"`
}

// stageEntry flattens one stageKey → StageMeasure memo row. The
// micro-batch sample count travels as its exact bit pattern, like the
// in-memory key.
type stageEntry struct {
	Start     int32             `json:"start"`
	End       int32             `json:"end"`
	DP        int32             `json:"dp"`
	TP        int32             `json:"tp"`
	MicroBits uint64            `json:"microBits"`
	M         exec.StageMeasure `json:"m"`
}

// opCtxDump flattens one opCtxKey context: the measured subset of the
// graph's operators under (tp, samples-per-replica).
type opCtxDump struct {
	TP      int32     `json:"tp"`
	SprBits uint64    `json:"sprBits"`
	Ops     []opEntry `json:"ops"`
}

type opEntry struct {
	Index int            `json:"i"`
	M     exec.OpMeasure `json:"m"`
}

// planEntry flattens one end-to-end plan evaluation of the shard's
// context.
type planEntry struct {
	Sig         string      `json:"sig"`
	GlobalBatch int         `json:"globalBatch"`
	Res         exec.Result `json:"res"`
}

// LoadStats reports what a cache has restored from its backing store so
// far, and what it refused.
type LoadStats struct {
	Shards, Stages, Ops, Plans int

	// Skipped collects one typed error per store object that was not
	// restored: *store.Error for corrupt/truncated/version-skewed files,
	// ErrStale for payload-identity mismatches. Skipping is the rebuild
	// path — the session just re-measures — so callers warn, never abort.
	Skipped []error
}

// EngineFingerprint condenses everything about an engine that determines
// its measurements: the seed and every tunable, each by exact bit pattern.
func EngineFingerprint(eng *exec.Engine) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d", eng.Seed())
	for _, f := range []float64{
		eng.StragglerCoef, eng.ContentionCoef, eng.MicrobatchNoise,
		eng.OverlapFraction, eng.CrossNodeOverlap, eng.IterOverheadS,
		eng.BwdFactor, eng.EffCeiling, eng.EffFloor,
	} {
		fmt.Fprintf(h, ",%x", math.Float64bits(f))
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// GraphFingerprint condenses a model graph's static definition — name,
// family, sequence length, activation factor and every operator quantity —
// via its canonical JSON encoding.
func GraphFingerprint(g *model.Graph) string { return jsonFingerprint(g) }

// GPUFingerprint condenses a device specification.
func GPUFingerprint(spec hw.GPU) string { return jsonFingerprint(spec) }

// jsonFingerprint hashes a value's canonical JSON encoding. Go marshals
// struct fields in declaration order, so the encoding — and the
// fingerprint — is deterministic for a fixed schema.
func jsonFingerprint(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Fingerprinted types are plain data structs; marshal cannot fail.
		panic(fmt.Sprintf("evalcache: fingerprint %T: %v", v, err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:32]
}

// shardStoreKey derives the content address of one measurement context.
func shardStoreKey(engineFP, graphFP, gpuFP string, gpusPerNode int) store.Key {
	return store.NewKey(evalDomain,
		"v"+strconv.Itoa(evalSchema), engineFP, graphFP, gpuFP, strconv.Itoa(gpusPerNode))
}

// AttachStore binds the cache to a backing store. From then on each
// measurement context hydrates from its store object when first resolved
// (contexts the session never touches are never read), and SaveStore
// writes back the contexts that gained measurements. Contexts resolved
// before the attach are hydrated immediately, so attaching to a shared,
// already-warm cache composes.
//
// Attach before mutating the engine's tunables, or call Reset afterwards —
// the store keys embed the engine fingerprint, exactly like the in-memory
// memo assumes a fixed engine.
func (c *Cache) AttachStore(st *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backing = st
	c.engineFP = EngineFingerprint(c.eng)
	for _, sh := range c.sortedShardsLocked() {
		c.loadShardLocked(sh)
	}
}

// StoreStats returns a snapshot of what the cache has restored from (and
// refused out of) its backing store so far. Loading is lazy, so the
// counts grow as the session touches more measurement contexts.
func (c *Cache) StoreStats() LoadStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	stats := c.loadStats
	stats.Skipped = append([]error(nil), c.loadStats.Skipped...)
	return stats
}

// loadShardLocked hydrates one shard from the backing store; the caller
// must hold c.mu (StageShard's creation path and AttachStore do).
func (c *Cache) loadShardLocked(sh *StageShard) {
	if c.backing == nil {
		return
	}
	key := shardStoreKey(c.engineFP, GraphFingerprint(sh.graph), GPUFingerprint(sh.spec), sh.gpn)
	var d shardDump
	if err := c.backing.Get(evalDomain, key, &d); err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			c.loadStats.Skipped = append(c.loadStats.Skipped, err)
		}
		return
	}
	// Payload identity must match the context the key was derived from;
	// anything else is a hash collision or tampering the envelope checks
	// missed — refuse it rather than serve foreign measurements.
	if d.Seed != c.eng.Seed() || d.Graph != sh.graph.Name || d.GPU != sh.spec.Name || d.GPUsPerNode != sh.gpn {
		c.loadStats.Skipped = append(c.loadStats.Skipped,
			fmt.Errorf("%w: object %s declares context %s/%s/gpn=%d seed=%d, want %s/%s/gpn=%d seed=%d",
				ErrStale, key, d.Graph, d.GPU, d.GPUsPerNode, d.Seed,
				sh.graph.Name, sh.spec.Name, sh.gpn, c.eng.Seed()))
		return
	}
	numOps := len(sh.graph.Ops)
	for _, oc := range d.OpCtxs {
		for _, op := range oc.Ops {
			if op.Index < 0 || op.Index >= numOps {
				c.loadStats.Skipped = append(c.loadStats.Skipped,
					fmt.Errorf("%w: object %s: op index %d out of range for %s (%d ops)",
						ErrStale, key, op.Index, sh.graph.Name, numOps))
				return
			}
		}
	}

	added := LoadStats{Shards: 1}
	sh.mu.Lock()
	for _, e := range d.Stages {
		k := stageKey{start: e.Start, end: e.End, dp: e.DP, tp: e.TP, microBits: e.MicroBits}
		if _, ok := sh.m[k]; !ok {
			sh.m[k] = e.M
			added.Stages++
		}
	}
	for _, oc := range d.OpCtxs {
		key := opCtxKey{tp: oc.TP, sprBits: oc.SprBits}
		ctx, ok := sh.ops[key]
		if !ok {
			ctx = &opCtx{vals: make([]exec.OpMeasure, numOps), have: make([]bool, numOps)}
			sh.ops[key] = ctx
		}
		ctx.mu.Lock()
		for _, op := range oc.Ops {
			if !ctx.have[op.Index] {
				ctx.vals[op.Index] = op.M
				ctx.have[op.Index] = true
				added.Ops++
			}
		}
		ctx.mu.Unlock()
	}
	sh.mu.Unlock()
	for _, p := range d.Plans {
		k := planKey{graph: sh.graph.Name, sig: p.Sig, gpu: sh.spec.Name, globalBatch: p.GlobalBatch, gpusPerNode: sh.gpn}
		if _, ok := c.plans[k]; !ok {
			c.plans[k] = copyResult(p.Res)
			added.Plans++
		}
	}
	c.loadStats.Shards += added.Shards
	c.loadStats.Stages += added.Stages
	c.loadStats.Ops += added.Ops
	c.loadStats.Plans += added.Plans
}

// SaveStore persists every measurement context that gained measurements
// since it was loaded (clean contexts are left untouched on disk), each
// as one atomically replaced store object. Because a context is hydrated
// before it accumulates new measurements, a save writes a superset of
// what it read; concurrent processes degrade to last-complete-write-wins
// without ever producing a torn object. Without an attached store,
// SaveStore is a no-op.
func (c *Cache) SaveStore(st *store.Store) error {
	c.mu.RLock()
	engineFP := c.engineFP
	if c.backing == nil {
		engineFP = EngineFingerprint(c.eng)
	}
	shards := c.sortedShardsLocked()
	plans := make(map[planKey]exec.Result, len(c.plans))
	for k, v := range c.plans {
		plans[k] = v
	}
	c.mu.RUnlock()

	for _, sh := range shards {
		sh.mu.Lock()
		if !sh.dirty {
			sh.mu.Unlock()
			continue
		}
		dump := sh.dumpLocked(c.eng.Seed())
		sh.dirty = false
		sh.mu.Unlock()
		for pk, res := range plans {
			if pk.graph == sh.graph.Name && pk.gpu == sh.spec.Name && pk.gpusPerNode == sh.gpn {
				dump.Plans = append(dump.Plans, planEntry{Sig: pk.sig, GlobalBatch: pk.globalBatch, Res: res})
			}
		}
		sort.Slice(dump.Plans, func(i, j int) bool {
			a, b := dump.Plans[i], dump.Plans[j]
			if a.Sig != b.Sig {
				return a.Sig < b.Sig
			}
			return a.GlobalBatch < b.GlobalBatch
		})
		key := shardStoreKey(engineFP, GraphFingerprint(sh.graph), GPUFingerprint(sh.spec), sh.gpn)
		if err := st.Put(evalDomain, key, dump); err != nil {
			sh.mu.Lock()
			sh.dirty = true // not persisted; retry on the next save
			sh.mu.Unlock()
			return err
		}
	}
	return nil
}

// dumpLocked snapshots one shard's memo tables in deterministic order;
// the caller holds sh.mu.
func (sh *StageShard) dumpLocked(seed uint64) shardDump {
	d := shardDump{
		Seed: seed, Graph: sh.graph.Name, GPU: sh.spec.Name, GPUsPerNode: sh.gpn,
	}
	for k, m := range sh.m {
		d.Stages = append(d.Stages, stageEntry{
			Start: k.start, End: k.end, DP: k.dp, TP: k.tp, MicroBits: k.microBits, M: m,
		})
	}
	sort.Slice(d.Stages, func(i, j int) bool {
		a, b := d.Stages[i], d.Stages[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.DP != b.DP {
			return a.DP < b.DP
		}
		if a.TP != b.TP {
			return a.TP < b.TP
		}
		return a.MicroBits < b.MicroBits
	})
	for k, ctx := range sh.ops {
		ctx.mu.Lock()
		oc := opCtxDump{TP: k.tp, SprBits: k.sprBits}
		for i, have := range ctx.have {
			if have {
				oc.Ops = append(oc.Ops, opEntry{Index: i, M: ctx.vals[i]})
			}
		}
		ctx.mu.Unlock()
		if len(oc.Ops) > 0 {
			d.OpCtxs = append(d.OpCtxs, oc)
		}
	}
	sort.Slice(d.OpCtxs, func(i, j int) bool {
		a, b := d.OpCtxs[i], d.OpCtxs[j]
		if a.TP != b.TP {
			return a.TP < b.TP
		}
		return a.SprBits < b.SprBits
	})
	return d
}
