package schedtest

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	once   sync.Once
	testDB *perfdb.DB
	bErr   error
)

func db(t *testing.T) *perfdb.DB {
	t.Helper()
	once.Do(func() {
		testDB, bErr = perfdb.Build(exec.NewEngine(42), perfdb.Options{
			GPUTypes: []string{"A40", "A10"},
			MaxN:     16,
			Workloads: []model.Workload{
				{Model: "WRes-1B", GlobalBatch: 256},
				{Model: "GPT-1.3B", GlobalBatch: 128},
				{Model: "GPT-2.6B", GlobalBatch: 128},
			},
		})
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return testDB
}

func seededJobs(t *testing.T, seed uint64, n int) []trace.Job {
	t.Helper()
	jobs, err := trace.Generate(trace.Config{
		Kind: trace.Philly, Duration: 3 * 3600, NumJobs: n, Seed: seed,
		GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
			{Model: "GPT-2.6B", GlobalBatch: 128},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// checkedRun simulates jobs under the wrapped policy; Wrap fails the
// test at the first round whose assignment breaks an invariant.
func checkedRun(t *testing.T, p sched.Policy, jobs []trace.Job, opts Options, fc *faults.Config) {
	t.Helper()
	_, err := sim.Run(sim.Config{
		Spec: hw.ClusterA(), Policy: Wrap(t, p, opts), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: 200, IncludeUnfinished: true, Seed: 1,
		Faults: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolicyInvariantsProperty(t *testing.T) {
	// Randomized property test: seeded trace realizations, all five
	// policies, 200 rounds each, every round's assignment checked against
	// the full invariant set. A 70-job backlog on ClusterA keeps the
	// queue several times deeper than capacity, so admission failure,
	// victim shrinking, growth and memo paths all run constantly.
	mks := map[string]func() sched.Policy{
		"fcfs":        func() sched.Policy { return policy.NewFCFS() },
		"gavel":       func() sched.Policy { return policy.NewGavel() },
		"elasticflow": func() sched.Policy { return policy.NewElasticFlow() },
		"sia":         func() sched.Policy { return policy.NewSia() },
		"arena":       func() sched.Policy { return sched.NewArena() },
	}
	for _, seed := range []uint64{7, 21, 1009} {
		for name, mk := range mks {
			name, mk, seed := name, mk, seed
			t.Run(name, func(t *testing.T) {
				checkedRun(t, mk(), seededJobs(t, seed, 70), Options{}, nil)
			})
		}
	}
}

func TestRigidArenaPlacesProfiledPow2(t *testing.T) {
	// Rigid mode (DisableElastic) pins each job to one snapped count; the
	// checker additionally requires every placement to be a profiled
	// power of two the policy's own perceived table knows about.
	p := sched.NewArena()
	p.DisableElastic = true
	opts := Options{
		RequirePow2: true,
		Profiled: func(w model.Workload, gpuType string, n int) bool {
			return p.PerceivedThr(db(t), w, gpuType, n) > 0
		},
	}
	checkedRun(t, p, seededJobs(t, 7, 50), opts, nil)
}

func TestArenaMigratesOntoHealthyCapacity(t *testing.T) {
	// Straggler injection drives arena's routeStragglers: every proposed
	// Migrate must target a running job with a fully healthy destination
	// for its exact shape (the engine re-allocates the same alloc).
	fc := &faults.Config{
		Model: &faults.Model{Default: faults.TypeFaults{
			SlowEvery: 2 * 3600, SlowDuration: 3600,
		}},
		CheckpointInterval: 900,
	}
	checkedRun(t, sched.NewArena(), seededJobs(t, 21, 50), Options{}, fc)
}

func TestCheckFlagsViolations(t *testing.T) {
	// The checker itself must reject hand-built bad assignments — a
	// checker that passes everything proves nothing.
	jobs := seededJobs(t, 7, 4)
	// A minimal synthetic context suffices: the invariants only read
	// Queued/Running/Cluster.
	cl := mustCluster(t)
	q := &sched.Job{Trace: jobs[0], State: sched.StateQueued}
	ctx := &sched.Context{Now: 0, Queued: []*sched.Job{q}, Cluster: cl, DB: db(t), MaxPerJob: 16}

	cases := map[string]sched.Assignment{
		"unknown id": {Place: map[string]sched.Alloc{"ghost": {GPUType: "A40", N: 2}}},
		"over-commit": {Place: map[string]sched.Alloc{
			q.Trace.ID: {GPUType: "A40", N: cl.FreeGPUs("A40") + 1},
		}},
		"unknown type":   {Place: map[string]sched.Alloc{q.Trace.ID: {GPUType: "H100", N: 1}}},
		"zero on queued": {Place: map[string]sched.Alloc{q.Trace.ID: {}}},
		"place+drop": {
			Place: map[string]sched.Alloc{q.Trace.ID: {GPUType: "A40", N: 1}},
			Drop:  []string{q.Trace.ID},
		},
		"drop twice":      {Drop: []string{q.Trace.ID, q.Trace.ID}},
		"migrate queued":  {Migrate: []string{q.Trace.ID}},
		"migrate unknown": {Migrate: []string{"ghost"}},
	}
	for name, asg := range cases {
		if asg.Place == nil {
			asg.Place = map[string]sched.Alloc{}
		}
		if err := Check(ctx, asg, Options{}); err == nil {
			t.Errorf("%s: accepted, want violation", name)
		}
	}
	if err := Check(ctx, sched.NewAssignment(), Options{}); err != nil {
		t.Errorf("empty assignment rejected: %v", err)
	}
	pow2 := sched.Assignment{Place: map[string]sched.Alloc{q.Trace.ID: {GPUType: "A40", N: 3}}}
	if err := Check(ctx, pow2, Options{RequirePow2: true}); err == nil {
		t.Error("non-power-of-two placement accepted under RequirePow2")
	}
}

func TestCheckReportsViolationsInSortedIDOrder(t *testing.T) {
	// Check's error joins one message per violation; Place is a map, so
	// without the sorted iteration the placement section of the report
	// would come out in map-range order — different every call. Eight
	// unknown ids make an accidentally-sorted order vanishingly likely
	// (1/8! per call), so this fails against an unsorted loop.
	cl := mustCluster(t)
	ctx := &sched.Context{Now: 0, Cluster: cl}
	asg := sched.Assignment{Place: map[string]sched.Alloc{}}
	suffixes := []string{"g", "c", "a", "e", "h", "b", "f", "d"}
	for _, s := range suffixes {
		asg.Place["ghost-"+s] = sched.Alloc{GPUType: "A40", N: 1}
	}

	var want []string
	for _, s := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		want = append(want, fmt.Sprintf("Place[ghost-%s]: unknown job id", s))
	}
	wantErr := "schedtest: " + strings.Join(want, "; ")
	for i := 0; i < 5; i++ {
		err := Check(ctx, asg, Options{})
		if err == nil {
			t.Fatal("unknown placement ids accepted")
		}
		if got := err.Error(); got != wantErr {
			t.Fatalf("call %d: violations not in sorted id order:\n got: %s\nwant: %s", i, got, wantErr)
		}
	}
}

func mustCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(hw.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}
