package metrics

import (
	"math"
	"testing"

	"github.com/sjtu-epcc/arena/internal/rng"
)

func TestP2ExactBelowFive(t *testing.T) {
	q := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 3} {
		q.Add(x)
	}
	if got, want := q.Value(), Percentile([]float64{1, 3, 5}, 0.5); got != want {
		t.Errorf("median of 3 samples: sketch %g, exact %g", got, want)
	}
	if q.Count() != 3 {
		t.Errorf("Count = %d", q.Count())
	}
}

func TestP2Empty(t *testing.T) {
	if v := NewP2Quantile(0.9).Value(); v != 0 {
		t.Errorf("empty sketch Value = %g", v)
	}
	if m := NewStream().Mean(); m != 0 {
		t.Errorf("empty stream Mean = %g", m)
	}
}

func TestP2ApproximatesQuantiles(t *testing.T) {
	// Lognormal-ish data, the shape of JCT distributions. The sketch must
	// land within a few percent of the exact order statistic at n=50k.
	r := rng.Derive(7, rng.HashString("p2-test"))
	for _, p := range []float64{0.5, 0.9} {
		q := NewP2Quantile(p)
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := r.LogNormalish(1000, 2.0)
			xs = append(xs, x)
			q.Add(x)
		}
		exact := Percentile(xs, p)
		if math.Abs(q.Value()-exact) > 0.05*exact {
			t.Errorf("p=%g: sketch %g vs exact %g (>5%% off)", p, q.Value(), exact)
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	mk := func() float64 {
		r := rng.Derive(3, rng.HashString("p2-det"))
		q := NewP2Quantile(0.9)
		for i := 0; i < 1000; i++ {
			q.Add(r.Float64())
		}
		return q.Value()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same input order gave %g then %g", a, b)
	}
}

func TestStreamMeanMatchesSliceSum(t *testing.T) {
	// The streaming mean must be bitwise the slice mean for the same
	// addition order — that is what keeps streaming-mode summaries
	// comparable to exact ones.
	r := rng.Derive(9, rng.HashString("stream-test"))
	st := NewStream(0.5)
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := r.Exp(100)
		xs = append(xs, x)
		st.Add(x)
	}
	if st.Count() != len(xs) {
		t.Fatalf("Count %d != %d", st.Count(), len(xs))
	}
	if st.Mean() != Mean(xs) {
		t.Errorf("stream mean %g != slice mean %g", st.Mean(), Mean(xs))
	}
	if st.Quantile(0.5) == 0 {
		t.Error("configured quantile returned 0")
	}
	if st.Quantile(0.9) != 0 {
		t.Error("unconfigured quantile should return 0")
	}
}
