// Package evalcache provides a concurrency-safe memoization layer between
// the AP searchers and the execution engine.
//
// The engine is a pure function of its seed: measuring the same stage
// candidate (operator range × DP × TP on a given device, with the same
// per-microbatch sample count and node packing) always returns the same
// StageMeasure, and evaluating the same plan always returns the same
// Result. The AP search, however, re-measures overlapping candidate sets
// over and over — across the pipeline degrees of one search, across the
// full and pruned searches of the same (workload, type, count) point, and
// across every GPU count of one perfdb column (a stage candidate measured
// for n=4 is byte-identical for n=8). On real hardware each of those
// measurements is a compile-and-profile cycle; the paper's §2.3 puts the
// un-memoized bill at "20 minutes per allocable resource".
//
// A Cache is bound to one engine and memoizes both measurement entry
// points:
//
//   - MeasureStage — the per-candidate profiling step of the search,
//     keyed by (graph, op range, DP, TP, device, micro-batch samples,
//     GPUs per node);
//   - Evaluate — end-to-end plan measurement, keyed by (graph, plan
//     signature, device, global batch, GPUs per node).
//
// Stages assemble from memoized per-operator measurements (opCtxKey:
// every op under (tp, samples-per-replica)), the op-level
// compute-redundancy elimination of §3.4 — so the search's O(ranges ×
// range-length) kernel measurements collapse to one per distinct
// operator configuration.
//
// Because the underlying computation is pure, concurrent misses on the
// same key are benign: both goroutines compute the identical value and
// the last write wins. Graphs are identified by their Name, which the
// model registry guarantees to determine the operator list; callers
// constructing ad-hoc graphs must give distinct names. Mutating the
// engine's tunables after populating a cache invalidates it — call Reset.
//
// AttachStore extends the memo across processes: each measurement
// context hydrates lazily from a content-addressed store object on first
// resolution, and SaveStore writes back only the contexts that gained
// measurements. Keys hash everything that determines a measurement
// (engine fingerprint, graph fingerprint, GPU spec, node packing, schema
// version), so definition drift orphans old objects instead of serving
// them; see persist.go for the exact rules.
package evalcache
