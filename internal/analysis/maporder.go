package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder keeps Go's randomized map iteration order from escaping
// into scheduling, planning or serialization output — the PR 8 bug
// class: the elasticflow and sia policies once picked victim jobs by
// ranging over a map and keeping the first candidate that tied on
// score, so the schedule differed run to run until a parity test
// caught it.
//
// A `range` over a map is accepted only when the analyzer can see the
// body is order-insensitive — a commutative fold. Every statement must
// be one of:
//
//   - a write whose destination is local to the range body (range
//     variables included), or a map index assignment (distinct keys
//     commute);
//   - an integer accumulation into outer state (`+= -= |= &= ^= *=`,
//     `++ --`): order-independent by associativity. Float accumulation
//     is flagged — float addition is not associative, so iteration
//     order changes the bits;
//   - the collect-then-sort idiom: `s = append(s, x)` into an outer
//     slice that a statement after the range (in any enclosing block)
//     passes to sort.* or slices.Sort* — the sort erases insertion
//     order, provided its comparator is total, which is the stablesort
//     analyzer's department;
//   - a method call on a range-local receiver whose arguments touch no
//     outer variables (`sh.mu.RLock()`);
//   - `delete(m, k)`, `continue`, or control flow (if/for/switch/block)
//     whose nested statements all qualify.
//
// Everything else — early return or break, channel sends, calls with
// possible effects, plain assignment to outer variables (the
// keep-the-best-tie pattern) — is a finding: iterate sorted keys
// instead, or suppress with //arena:allow maporder <reason> when the
// fold is provably commutative beyond the analyzer's sight.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "report map ranges whose iteration order can escape into output; " +
		"iterate sorted keys or keep the fold commutative",
	Scope: []string{
		"internal/sched", "internal/sim", "internal/planner",
		"internal/faults", "internal/trace", "internal/evalcache",
		"internal/server",
	},
	SkipTests: true,
	Run:       runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			w := &mapOrderWalker{pass: pass, rs: rs, parents: parents}
			w.walkStmt(rs.Body, 0)
			return true
		})
	}
	return nil
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// buildParents records each node's enclosing node for one file.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

type mapOrderWalker struct {
	pass    *Pass
	rs      *ast.RangeStmt
	parents map[ast.Node]ast.Node
}

func (w *mapOrderWalker) report(pos token.Pos, why string) {
	w.pass.Reportf(pos, "map iteration order escapes: %s; iterate sorted keys or keep the fold commutative", why)
}

// isLocal reports whether the identifier's object is declared within
// the range statement (range variables included).
func (w *mapOrderWalker) isLocal(id *ast.Ident) bool {
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return id.Name == "_"
	}
	return obj.Pos() >= w.rs.Pos() && obj.Pos() <= w.rs.End()
}

// sortedLater reports whether, after the range statement, some
// statement in an enclosing block passes dst (matched syntactically,
// so selector chains like d.Stages work) to a sort.* or slices.*
// function.
func (w *mapOrderWalker) sortedLater(dst ast.Expr) bool {
	want := types.ExprString(ast.Unparen(dst))
	child := ast.Node(w.rs)
	for parent := w.parents[child]; parent != nil; child, parent = parent, w.parents[parent] {
		block, ok := parent.(*ast.BlockStmt)
		if !ok {
			if _, isFunc := parent.(*ast.FuncLit); isFunc {
				break
			}
			if _, isFunc := parent.(*ast.FuncDecl); isFunc {
				break
			}
			continue
		}
		past := false
		for _, st := range block.List {
			if st == child {
				past = true
				continue
			}
			if past && stmtSorts(w.pass, st, want) {
				return true
			}
		}
	}
	return false
}

// stmtSorts reports whether st calls sort.* or slices.* with an
// argument spelled like want.
func stmtSorts(pass *Pass, st ast.Stmt, want string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(ast.Unparen(arg)) == want {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkStmt enforces the commutative-fold rules on one statement.
// breakable counts enclosing for/switch/select levels inside the range
// body, so a plain `break` that exits the map range itself is caught.
func (w *mapOrderWalker) walkStmt(st ast.Stmt, breakable int) {
	switch s := st.(type) {
	case nil, *ast.EmptyStmt, *ast.DeclStmt:
		// Declarations create range-locals; reads are unrestricted.
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.walkStmt(inner, breakable)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, breakable)
	case *ast.IfStmt:
		w.walkStmt(s.Init, breakable)
		w.walkStmt(s.Body, breakable)
		w.walkStmt(s.Else, breakable)
	case *ast.ForStmt:
		w.walkStmt(s.Init, breakable)
		w.walkStmt(s.Post, breakable)
		w.walkStmt(s.Body, breakable+1)
	case *ast.RangeStmt:
		w.checkAssignTargets(s, breakable)
		if isMapRange(w.pass, s) {
			return // analyzed separately with its own, tighter local set
		}
		w.walkStmt(s.Body, breakable+1)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, breakable)
		w.walkStmt(s.Body, breakable+1)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, breakable)
		w.walkStmt(s.Assign, breakable)
		w.walkStmt(s.Body, breakable+1)
	case *ast.CaseClause:
		for _, inner := range s.Body {
			w.walkStmt(inner, breakable)
		}
	case *ast.BranchStmt:
		switch {
		case s.Label != nil:
			w.report(s.Pos(), "labeled "+s.Tok.String()+" exits the map range early")
		case s.Tok == token.BREAK && breakable == 0:
			w.report(s.Pos(), "break exits the map range early, keeping an order-dependent prefix")
		case s.Tok == token.GOTO:
			w.report(s.Pos(), "goto inside a map range")
		}
	case *ast.ReturnStmt:
		w.report(s.Pos(), "return inside a map range makes the result depend on which key is visited first")
	case *ast.SendStmt:
		w.report(s.Pos(), "channel send in iteration order")
	case *ast.GoStmt:
		w.report(s.Pos(), "goroutine launched per key observes iteration order")
	case *ast.DeferStmt:
		w.report(s.Pos(), "defers run in (reverse) iteration order")
	case *ast.SelectStmt:
		w.report(s.Pos(), "select inside a map range")
	case *ast.AssignStmt:
		w.checkAssign(s)
	case *ast.IncDecStmt:
		w.checkIncDec(s)
	case *ast.ExprStmt:
		w.checkExprStmt(s)
	default:
		w.report(st.Pos(), "statement the analyzer cannot prove order-insensitive")
	}
}

// checkAssignTargets flags a nested range that assigns (Tok==ASSIGN)
// its key/value into outer variables.
func (w *mapOrderWalker) checkAssignTargets(s *ast.RangeStmt, _ int) {
	if s.Tok != token.ASSIGN {
		return
	}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && !w.isLocal(id) {
			w.report(id.Pos(), fmt.Sprintf("range assigns outer variable %q in iteration order", id.Name))
		}
	}
}

func (w *mapOrderWalker) checkAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return // declares range-locals
	}
	// The collect-then-sort idiom: `s = append(s, x)` is fine when a
	// later statement sorts s, erasing the insertion order.
	if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && len(call.Args) >= 1 &&
			isBuiltin(w.pass, call.Fun, "append") &&
			types.ExprString(ast.Unparen(call.Args[0])) == types.ExprString(ast.Unparen(s.Lhs[0])) {
			if root := exprRoot(s.Lhs[0]); root != nil && w.isLocal(root) {
				return
			}
			if w.sortedLater(s.Lhs[0]) {
				return
			}
			w.report(s.Lhs[0].Pos(), fmt.Sprintf(
				"elements appended to %q in map iteration order are never sorted afterwards",
				types.ExprString(ast.Unparen(s.Lhs[0]))))
			return
		}
	}
	for _, lhs := range s.Lhs {
		w.checkWrite(lhs, s.Tok)
	}
}

// exprRoot returns the base identifier of an lvalue chain, or nil.
func exprRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *mapOrderWalker) checkIncDec(s *ast.IncDecStmt) {
	// ++/-- on an outer integer is a commutative count; anything else
	// goes through the same gate as compound assignment.
	tok := token.ADD_ASSIGN
	if s.Tok == token.DEC {
		tok = token.SUB_ASSIGN
	}
	w.checkWrite(s.X, tok)
}

// commutativeOps are compound-assignment operators whose folds are
// order-independent on integers.
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

// checkWrite gates one write destination.
func (w *mapOrderWalker) checkWrite(lhs ast.Expr, tok token.Token) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if w.isLocal(e) {
			return
		}
		if commutativeOps[tok] {
			if t := w.pass.TypesInfo.TypeOf(e); t != nil && isIntegerType(t) {
				return
			}
			w.report(lhs.Pos(), fmt.Sprintf(
				"non-integer accumulation into outer %q is order-dependent (float addition is not associative)", e.Name))
			return
		}
		w.report(lhs.Pos(), fmt.Sprintf(
			"plain assignment to outer variable %q keeps an iteration-order-dependent winner", e.Name))
	case *ast.IndexExpr:
		if t := w.pass.TypesInfo.TypeOf(e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return // distinct map keys commute
			}
		}
		w.checkWrite(e.X, token.ASSIGN)
	case *ast.SelectorExpr:
		w.checkWrite(e.X, token.ASSIGN)
	case *ast.StarExpr:
		w.report(lhs.Pos(), "write through a pointer may mutate state shared beyond the range")
	default:
		w.report(lhs.Pos(), "write destination the analyzer cannot prove range-local")
	}
}

// checkExprStmt gates bare calls. delete on a map commutes; a method
// call on a range-local receiver with no outer-variable arguments
// (`sh.mu.RLock()`, `j.recompute(k)`) cannot carry iteration order
// beyond per-key state. Everything else — package functions (fmt.*,
// io writes), closures over outer state, calls with outer arguments —
// may carry iteration order into shared state or output.
func (w *mapOrderWalker) checkExprStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if isBuiltin(w.pass, call.Fun, "delete") {
		return
	}
	if w.isLocalReceiverCall(call) {
		return
	}
	w.report(s.Pos(), "call with possible effects inside a map range")
}

// isLocalReceiverCall reports whether call is a method call rooted in
// a range-local receiver whose arguments reference no outer variables.
func (w *mapOrderWalker) isLocalReceiverCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := exprRoot(sel.X)
	if root == nil || !w.isLocal(root) {
		return false
	}
	if obj := w.pass.TypesInfo.Uses[root]; obj != nil {
		if _, isVar := obj.(*types.Var); !isVar {
			return false // a range-local package alias cannot exist; be strict
		}
	}
	for _, arg := range call.Args {
		ok := true
		ast.Inspect(arg, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			if v, isVar := w.pass.TypesInfo.Uses[id].(*types.Var); isVar && v != nil && !w.isLocal(id) {
				ok = false
			}
			return ok
		})
		if !ok {
			return false
		}
	}
	return true
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
