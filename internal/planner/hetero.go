package planner

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// HeteroPool describes the mixed GPUs available to one job for the
// intra-job heterogeneity extension (§6): a count per type. Stages stay
// internally homogeneous; the planner decides which *stage* runs on which
// type.
type HeteroPool map[string]int

// Total returns the pool's GPU count.
func (p HeteroPool) Total() int {
	n := 0
	for _, c := range p {
		n += c
	}
	return n
}

// types returns the pool's type names fastest-first (canonical order).
func (p HeteroPool) types() []string {
	var out []string
	for _, name := range hw.TypeNames() {
		if p[name] > 0 {
			out = append(out, name)
		}
	}
	var extra []string
	for name := range p {
		if _, err := hw.Lookup(name); err == nil {
			found := false
			for _, o := range out {
				if o == name {
					found = true
				}
			}
			if !found {
				extra = append(extra, name)
			}
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// PlanHetero partitions the model into s stages across a mixed GPU pool,
// following the paper's §6 recipe: the operator load definition is
// extended by quantifying each type's compute capability, the GPU
// assignment becomes capability-proportional, and each stage is pinned to
// one type. It returns the generated heterogeneous plan; candidate
// ranking reuses the homogeneous machinery's balance criterion.
func (pl *Planner) PlanHetero(g *model.Graph, pool HeteroPool, s, globalBatch int) (*exec.HeteroPlan, error) {
	if s < 1 || s > len(g.Ops) {
		return nil, fmt.Errorf("planner: hetero degree %d over %d ops", s, len(g.Ops))
	}
	types := pool.types()
	if len(types) == 0 {
		return nil, fmt.Errorf("planner: empty hetero pool")
	}
	numMicro := parallel.DefaultMicrobatches(s)

	// Capability quantification (§6): per-type attainable throughput on
	// this model's aggregate intensity, normalized to the slowest type.
	capability := map[string]float64{}
	slowest := math.MaxFloat64
	var totalFLOPs, totalBytes float64
	for _, op := range g.Ops {
		totalFLOPs += op.FLOPs
		totalBytes += op.Bytes
	}
	for _, typ := range types {
		spec := hw.MustLookup(typ)
		// Inverse ideal time per sample = capability.
		c := 1 / spec.IdealKernelTime(3*totalFLOPs, 3*totalBytes)
		capability[typ] = c
		if c < slowest {
			slowest = c
		}
	}

	// Capability-weighted pool capacity and per-op loads on a reference
	// device (loads are device-relative; the reference cancels out in the
	// proportional assignment).
	ref := hw.MustLookup(types[0])
	loads := make([]float64, len(g.Ops))
	var totalLoad float64
	for i, op := range g.Ops {
		loads[i] = OperatorLoad(op, ref)
		totalLoad += loads[i]
	}
	var capacity float64 // in slowest-GPU equivalents
	for _, typ := range types {
		capacity += float64(pool[typ]) * capability[typ] / slowest
	}

	// Enumerate partitions; for each, greedily bind stages to types:
	// heavier stages get faster types, stage GPU counts are power-of-two
	// within the type's remaining budget.
	var best *exec.HeteroPlan
	bestBias := math.MaxFloat64
	forEachPartition(len(g.Ops), s, func(_ int, bounds []int) {
		plan, bias := pl.bindHeteroStages(g, pool, types, capability, slowest, loads, totalLoad, capacity, bounds, numMicro, globalBatch)
		if plan != nil && bias < bestBias {
			best, bestBias = plan, bias
		}
	})
	if best == nil {
		return nil, fmt.Errorf("planner: no feasible heterogeneous plan for s=%d", s)
	}
	return best, nil
}

// bindHeteroStages materializes one partition: stages sorted by load take
// types fastest-first, each receiving a power-of-two slice of that type's
// budget proportional to its capability-normalized load. Returns nil when
// any stage cannot fit memory or budget.
func (pl *Planner) bindHeteroStages(
	g *model.Graph, pool HeteroPool, types []string,
	capability map[string]float64, slowest float64,
	loads []float64, totalLoad, capacity float64,
	bounds []int, numMicro, globalBatch int,
) (*exec.HeteroPlan, float64) {
	s := len(bounds)
	type stageInfo struct {
		idx        int
		start, end int
		load       float64
	}
	infos := make([]stageInfo, s)
	start := 0
	for j, end := range bounds {
		var load float64
		for i := start; i < end; i++ {
			load += loads[i]
		}
		infos[j] = stageInfo{idx: j, start: start, end: end, load: load}
		start = end
	}
	order := append([]stageInfo(nil), infos...)
	// Load ties resolve by stage index: on the metric alone, sort.Slice's
	// unstable pdqsort would pick which equally-loaded stage gets the
	// faster GPU type — a per-Go-release artifact, the same class as the
	// PR 5 frontier tie bug. The index extension makes the order total.
	sort.Slice(order, func(a, b int) bool {
		if order[a].load != order[b].load {
			return order[a].load > order[b].load
		}
		return order[a].idx < order[b].idx
	})

	remaining := map[string]int{}
	for t, c := range pool {
		remaining[t] = c
	}
	stages := make([]exec.HeteroStage, s)
	var bias float64
	for _, info := range order {
		// Ideal share of total capability for this stage, in slowest-GPU
		// equivalents.
		idealCap := info.load / totalLoad * capacity
		placed := false
		for _, typ := range types {
			if remaining[typ] == 0 {
				continue
			}
			perGPU := capability[typ] / slowest
			ideal := idealCap / perGPU // ideal GPU count on this type
			n := nearestPow2(ideal, remaining[typ])
			if n == 0 {
				continue
			}
			st := parallel.StagePlan{OpStart: info.start, OpEnd: info.end, DP: n, TP: 1}
			// Pick the least-communication feasible (dp, tp) shape.
			spec := hw.MustLookup(typ)
			shaped := false
			for tp := 1; tp <= n; tp *= 2 {
				st.DP, st.TP = n/tp, tp
				if st.DP*st.TP != n {
					continue
				}
				mem := parallel.StageMemoryBytes(g, st, globalBatch, numMicro, 0, len(bounds))
				if mem <= spec.MemBytes*parallel.MemoryReserveFraction {
					shaped = true
					break
				}
			}
			if !shaped {
				continue
			}
			remaining[typ] -= n
			stages[info.idx] = exec.HeteroStage{StagePlan: st, GPUType: typ}
			d := float64(n)*perGPU - idealCap
			bias += d * d
			placed = true
			break
		}
		if !placed {
			return nil, 0
		}
	}
	return &exec.HeteroPlan{Stages: stages, NumMicrobatches: numMicro}, math.Sqrt(bias)
}

// nearestPow2 rounds a fractional GPU demand to the closest power of two
// within the budget (minimum 1, 0 when the budget is empty).
func nearestPow2(ideal float64, budget int) int {
	if budget < 1 {
		return 0
	}
	best, bestDist := 1, math.Abs(1-ideal)
	for n := 2; n <= budget; n *= 2 {
		if d := math.Abs(float64(n) - ideal); d < bestDist {
			best, bestDist = n, d
		}
	}
	if best > budget {
		return budget
	}
	return best
}
