package faults

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ErrTraceSyntax is the sentinel wrapped by every *ParseError, so callers
// can match the class with errors.Is and still read the line detail.
var ErrTraceSyntax = errors.New("malformed fault trace")

// ParseError reports a rejected fault-trace line. It wraps ErrTraceSyntax.
type ParseError struct {
	Line int    // 1-based line number
	Text string // the offending line, trimmed
	Err  error  // what was wrong with it
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("fault trace line %d %q: %v", e.Line, e.Text, e.Err)
}

func (e *ParseError) Unwrap() error { return ErrTraceSyntax }

// ParseTrace reads a scripted failure trace. One event per line, blank
// lines and #-comments ignored:
//
//	<time> crash <gpu-type> <node>
//	<time> recover <gpu-type> <node>
//	<time> slow <gpu-type> <node> <factor> <duration>
//
// Times and durations are seconds; slow lines expand to a SlowStart /
// SlowEnd pair with the given throughput factor in (0, 1). Malformed
// input is rejected with a *ParseError naming the line — never silently
// skipped, so a typo'd experiment script cannot quietly run failure-free.
func ParseTrace(r io.Reader) (Schedule, error) {
	var out Schedule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(err error) (Schedule, error) {
			return nil, &ParseError{Line: lineNo, Text: line, Err: err}
		}
		if len(fields) < 4 {
			return fail(fmt.Errorf("want <time> <kind> <gpu-type> <node>, got %d fields", len(fields)))
		}
		// ParseFloat happily returns NaN and ±Inf; `t < 0` is false for
		// NaN, so the finiteness check must be explicit or "NaN crash A40
		// 0" schedules an event at an unorderable instant.
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fail(fmt.Errorf("bad time %q", fields[0]))
		}
		node, err := strconv.Atoi(fields[3])
		if err != nil || node < 0 {
			return fail(fmt.Errorf("bad node index %q", fields[3]))
		}
		gpuType := fields[2]
		switch fields[1] {
		case "crash", "recover":
			if len(fields) != 4 {
				return fail(fmt.Errorf("%s takes exactly 4 fields, got %d", fields[1], len(fields)))
			}
			kind := Crash
			if fields[1] == "recover" {
				kind = Recover
			}
			out = append(out, Event{Time: t, Kind: kind, GPUType: gpuType, Node: node})
		case "slow":
			if len(fields) != 6 {
				return fail(fmt.Errorf("slow takes exactly 6 fields, got %d", len(fields)))
			}
			// NaN slips through both range comparisons below — reject it
			// by name.
			factor, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || math.IsNaN(factor) || factor <= 0 || factor >= 1 {
				return fail(fmt.Errorf("bad straggler factor %q (want (0, 1))", fields[4]))
			}
			dur, err := strconv.ParseFloat(fields[5], 64)
			if err != nil || math.IsNaN(dur) || math.IsInf(dur, 0) || dur <= 0 {
				return fail(fmt.Errorf("bad duration %q", fields[5]))
			}
			if math.IsInf(t+dur, 0) {
				// Two representable values whose sum overflows: the SlowEnd
				// event would land at +Inf and never fire.
				return fail(fmt.Errorf("slow end time %g+%g overflows", t, dur))
			}
			out = append(out,
				Event{Time: t, Kind: SlowStart, GPUType: gpuType, Node: node, Factor: factor},
				Event{Time: t + dur, Kind: SlowEnd, GPUType: gpuType, Node: node})
		default:
			return fail(fmt.Errorf("unknown event kind %q", fields[1]))
		}
	}
	if err := sc.Err(); err != nil {
		// Scanner failures (a line beyond the 64KB token limit, a broken
		// reader) are malformed input too: report them as a *ParseError at
		// the line that broke, so the "error ⇒ *ParseError" contract holds
		// for every failure mode.
		return nil, &ParseError{Line: lineNo + 1, Text: "", Err: err}
	}
	out.Sort()
	return out, nil
}

// LoadTrace reads a scripted failure trace from a file.
func LoadTrace(path string) (Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
