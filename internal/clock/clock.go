// Package clock abstracts scheduler time so the simulator and the
// long-running server drive the *same* round loop: time is float64
// seconds since the run's epoch, a Virtual clock reaches any instant
// immediately (the simulator's discrete-event time), a Wall clock maps
// the run timeline onto real time (the server's daemon mode), and a
// Stepped clock advances only when told to (deterministic server tests).
//
// The round loop itself lives here too (Tick/TickFrom), so "one shared
// scheduling code path" is literal: sim.RunCtx and server.Server.Run
// both hand the same per-round callback to the same driver and differ
// only in the Clock they plug in — the paper's shared-code fidelity
// argument (§4) extended from the policy layer to the loop that invokes
// it.
//
// Scheduling logic must never read time directly: the clockdiscipline
// analyzer (internal/analysis, run by arena-vet) bans time.Now,
// time.Sleep and friends inside internal/{sched,sim,server}, so every
// time source flows through this interface and a journaled run can be
// replayed bit-identically.
package clock

import (
	"context"
	"math"
	"sync"
	"time"
)

// Clock is the scheduler's time source. Instants are float64 seconds
// since the run's epoch (the unit every simulator quantity already
// uses), not wall timestamps: a restarted server resumes the *run*
// timeline, not the machine's.
type Clock interface {
	// Now returns the current instant on the run timeline.
	Now() float64
	// Wait blocks until the clock reaches t or ctx is cancelled,
	// returning ctx.Err() in the latter case. If the clock is already at
	// or past t, Wait still observes ctx (a cancelled context always
	// wins) but does not block.
	Wait(ctx context.Context, t float64) error
}

// Virtual is the simulator's clock: Wait advances it to the target
// instant immediately, so a discrete-event run burns no wall time.
// Safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now float64
}

// NewVirtual returns a Virtual clock at instant 0.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the furthest instant any Wait has reached.
func (v *Virtual) Now() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Wait advances the clock to t (never backwards) and returns
// immediately; a cancelled context wins over the advance.
func (v *Virtual) Wait(ctx context.Context, t float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	v.mu.Lock()
	if t > v.now {
		v.now = t
	}
	v.mu.Unlock()
	return nil
}

// Wall maps the run timeline onto real time: instant 0 is the epoch the
// clock was constructed against, and Wait really sleeps. Safe for
// concurrent use.
type Wall struct {
	epoch time.Time
}

// NewWall returns a Wall clock whose run timeline starts now.
func NewWall() *Wall { return NewWallAt(0) }

// NewWallAt returns a Wall clock that currently reads `offset` seconds —
// how a recovered server resumes its journaled timeline: restarting at
// offset L makes round ⌈L/interval⌉+1 fire one interval later, exactly
// where the crashed process would have been.
func NewWallAt(offset float64) *Wall {
	return &Wall{epoch: time.Now().Add(-time.Duration(offset * float64(time.Second)))}
}

// Now returns seconds elapsed on the run timeline.
func (w *Wall) Now() float64 { return time.Since(w.epoch).Seconds() }

// Wait sleeps until the run timeline reaches t or ctx is cancelled.
func (w *Wall) Wait(ctx context.Context, t float64) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		d := t - w.Now()
		if d <= 0 {
			return nil
		}
		timer := time.NewTimer(time.Duration(d * float64(time.Second)))
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
			// Re-check: timers can fire marginally early after rounding.
		}
	}
}

// Stepped is a manually advanced clock for deterministic tests of the
// live server loop: Wait blocks until Advance/Set moves the clock past
// the target, so a test releases rounds one at a time while the server
// runs its real Tick loop. Safe for concurrent use.
type Stepped struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  float64
}

// NewStepped returns a Stepped clock at instant 0.
func NewStepped() *Stepped {
	s := &Stepped{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Now returns the clock's current instant.
func (s *Stepped) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Set moves the clock to t (never backwards) and wakes all waiters.
func (s *Stepped) Set(t float64) {
	s.mu.Lock()
	if t > s.now {
		s.now = t
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Advance moves the clock forward by d seconds.
func (s *Stepped) Advance(d float64) {
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wait blocks until the clock reaches t or ctx is cancelled.
func (s *Stepped) Wait(ctx context.Context, t float64) error {
	// A condition variable cannot select on ctx.Done(); a watcher
	// goroutine turns cancellation into a broadcast so waiters re-check.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.cond.Broadcast()
		case <-done:
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.now < t {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return ctx.Err()
}

// TickFrom drives scheduling rounds on a clock: round k fires when the
// clock reaches k*interval, and fn receives the round index and the
// round's *nominal* instant (k*interval, not the possibly-late wall
// reading) — nominal instants are what make a wall-clock run replayable
// bit-identically from its journal. fn returning false stops the loop
// with a nil error; context cancellation stops it with ctx.Err(), always
// *between* rounds, so an in-flight round is never interrupted
// mid-decision (the server's graceful-drain guarantee).
//
// startRound lets a recovered server resume the round sequence where the
// journal ends; fresh runs start at 0 via Tick.
func TickFrom(ctx context.Context, c Clock, interval float64, startRound int, fn func(round int, now float64) bool) error {
	if startRound > math.MaxInt-1 {
		startRound = math.MaxInt - 1
	}
	for round := startRound; ; round++ {
		if err := c.Wait(ctx, float64(round)*interval); err != nil {
			return err
		}
		if !fn(round, float64(round)*interval) {
			return nil
		}
	}
}

// Tick is TickFrom starting at round 0 — the fresh-run spelling shared
// by the simulator and a newly started server.
func Tick(ctx context.Context, c Clock, interval float64, fn func(round int, now float64) bool) error {
	return TickFrom(ctx, c, interval, 0, fn)
}
