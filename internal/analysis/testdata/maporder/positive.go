package fixture

// The PR 8 victim-pick bug: keep-the-first-tie over a map range makes
// the chosen victim depend on iteration order.
func pickVictim(score map[string]float64) string {
	best := ""
	for id := range score {
		if best == "" {
			best = id // want `plain assignment to outer variable "best" keeps an iteration-order-dependent winner`
		}
	}
	return best
}

func firstKey(m map[string]int) (string, bool) {
	for k := range m {
		return k, true // want `return inside a map range makes the result depend on which key is visited first`
	}
	return "", false
}

func emit(m map[string]int, out chan<- string) {
	for k := range m {
		out <- k // want `channel send in iteration order`
	}
}

// Float addition is not associative: the accumulated bits depend on
// visit order even though the fold looks commutative.
func sumLoad(load map[string]float64) float64 {
	var total float64
	for _, v := range load {
		total += v // want `non-integer accumulation into outer "total" is order-dependent`
	}
	return total
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `elements appended to "keys" in map iteration order are never sorted afterwards`
	}
	return keys
}

func stopEarly(m map[string]int, limit int) int {
	n := 0
	for range m {
		n++
		if n == limit {
			break // want `break exits the map range early`
		}
	}
	return n
}
