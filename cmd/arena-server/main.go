// Command arena-server runs the scheduler as a long-running service: the
// same policies and round loop the simulator drives, on a wall clock,
// behind an HTTP job API, journaling every state transition so a killed
// server restarts from its -store and resumes bit-identical scheduling.
//
// Usage:
//
//	arena-server -store ./state -policy arena -cluster a
//	arena-server -store ./state -addr :8080 -round-seconds 60
//
// Submit, inspect and cancel jobs over HTTP:
//
//	curl -X POST localhost:8080/v1/jobs -d \
//	  '{"Workload":{"Model":"GPT-1.3B","GlobalBatch":128},"Iterations":5000,"ReqGPUs":4,"ReqType":"A40"}'
//	curl localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/job-000000
//	curl -X DELETE localhost:8080/v1/jobs/job-000000
//	curl localhost:8080/v1/stats
//
// SIGTERM (or ^C) shuts down gracefully: the in-flight round drains and
// is journaled, the HTTP listener stops, and the measurement store is
// flushed. Restarting with the same -store replays the journal — every
// submit, cancel and round re-executed and digest-verified — and resumes
// the run timeline where it stopped. A corrupt or tampered journal, or
// one written under a different policy/seed/cluster, refuses to start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/cli"
	"github.com/sjtu-epcc/arena/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "HTTP listen address")
		policyName  = flag.String("policy", "arena", "fcfs|gavel|elasticflow|sia|arena")
		clusterName = flag.String("cluster", "a", "a|b|sim|b-homogeneous")
		roundSecs   = flag.Float64("round-seconds", 300, "scheduling interval (paper: 300)")
		models      = flag.String("models", "", "comma-separated model names restricting the workload mix (default: all)")
	)
	c := cli.CommonFlags()
	flag.Parse()
	if c.Store == "" {
		cli.Fatal(fmt.Errorf("arena-server requires -store: the journal that makes the daemon crash-recoverable lives there"))
	}
	ctx := cli.Context()

	pol, err := cli.PickPolicy(*policyName)
	if err != nil {
		cli.Fatal(err)
	}
	spec, err := cli.PickCluster(*clusterName)
	if err != nil {
		cli.Fatal(err)
	}
	workloads, err := pickWorkloads(*models)
	if err != nil {
		cli.Fatal(err)
	}

	sess := cli.NewSession(c,
		arena.WithSeed(c.Seed),
		arena.WithWorkers(c.Workers),
		arena.WithCluster(spec),
		arena.WithMaxN(16),
		arena.WithWorkloads(workloads...),
	)
	defer cli.CloseSession(c, sess)

	fmt.Printf("building performance database for %v...\n", spec.GPUTypes())
	start := time.Now()
	db, src := cli.BuildDB(ctx, sess)
	fmt.Printf("  %d entries (%s) in %v\n", len(db.Keys()), src, time.Since(start).Round(time.Millisecond))

	srv, err := server.New(server.Config{
		Spec: spec, Policy: pol, DB: db,
		RoundSeconds: *roundSecs, Seed: c.Seed,
		Store: sess.Store(),
	})
	if err != nil {
		cli.Fatal(err)
	}
	defer srv.Close()
	if r := srv.NextRound(); r > 0 {
		fmt.Printf("recovered from journal: %d rounds replayed, resuming at round %d (t=%.0fs)\n", r, r, srv.Now())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("arena-server: policy=%s cluster=%s round=%gs listening on %s\n",
		pol.Name(), spec.Name, *roundSecs, *addr)

	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()

	select {
	case err := <-runErr:
		// Graceful shutdown (signal) or a journal failure: either way the
		// in-flight round has drained. Stop accepting HTTP and exit.
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if herr := httpSrv.Shutdown(shCtx); herr != nil {
			fmt.Fprintf(os.Stderr, "arena-server: http shutdown: %v\n", herr)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			cli.Fatal(err)
		}
	case err := <-httpErr:
		if !errors.Is(err, http.ErrServerClosed) {
			cli.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		cli.Fatal(err)
	}
	fmt.Println("arena-server: clean shutdown, journal flushed")
}

// pickWorkloads restricts the default workload mix to the named models;
// an empty spec keeps the whole mix.
func pickWorkloads(models string) ([]arena.Workload, error) {
	all := arena.DefaultWorkloads()
	if models == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, m := range strings.Split(models, ",") {
		want[strings.TrimSpace(m)] = true
	}
	var out []arena.Workload
	for _, w := range all {
		if want[w.Model] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no known models in -models %q", models)
	}
	return out, nil
}
