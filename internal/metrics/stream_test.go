package metrics

import (
	"math"
	"testing"

	"github.com/sjtu-epcc/arena/internal/rng"
)

func TestP2ExactBelowFive(t *testing.T) {
	q := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 3} {
		q.Add(x)
	}
	if got, want := q.Value(), Percentile([]float64{1, 3, 5}, 0.5); got != want {
		t.Errorf("median of 3 samples: sketch %g, exact %g", got, want)
	}
	if q.Count() != 3 {
		t.Errorf("Count = %d", q.Count())
	}
}

func TestP2Empty(t *testing.T) {
	if v := NewP2Quantile(0.9).Value(); v != 0 {
		t.Errorf("empty sketch Value = %g", v)
	}
	if m := NewStream().Mean(); m != 0 {
		t.Errorf("empty stream Mean = %g", m)
	}
}

func TestP2ApproximatesQuantiles(t *testing.T) {
	// Lognormal-ish data, the shape of JCT distributions. The sketch must
	// land within a few percent of the exact order statistic at n=50k.
	r := rng.Derive(7, rng.HashString("p2-test"))
	for _, p := range []float64{0.5, 0.9} {
		q := NewP2Quantile(p)
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := r.LogNormalish(1000, 2.0)
			xs = append(xs, x)
			q.Add(x)
		}
		exact := Percentile(xs, p)
		if math.Abs(q.Value()-exact) > 0.05*exact {
			t.Errorf("p=%g: sketch %g vs exact %g (>5%% off)", p, q.Value(), exact)
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	mk := func() float64 {
		r := rng.Derive(3, rng.HashString("p2-det"))
		q := NewP2Quantile(0.9)
		for i := 0; i < 1000; i++ {
			q.Add(r.Float64())
		}
		return q.Value()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same input order gave %g then %g", a, b)
	}
}

func TestP2ExactBelowFiveAllQuantiles(t *testing.T) {
	// Below five observations the sketch has not initialized its markers
	// and must return the interpolated percentile of everything seen —
	// exactly, for any tracked p and any prefix length 1..4.
	samples := []float64{42, -3, 17, 8}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		q := NewP2Quantile(p)
		for i, x := range samples {
			q.Add(x)
			sorted := append([]float64(nil), samples[:i+1]...)
			if got, want := q.Value(), Percentile(sorted, p); got != want {
				t.Errorf("p=%g after %d samples: sketch %g, exact %g", p, i+1, got, want)
			}
		}
	}
}

func TestP2AllEqualSamples(t *testing.T) {
	// Constant input: every marker height is pinned to the same value, so
	// the estimate must be exactly that value at every count — before and
	// long after the five-marker initialization.
	q := NewP2Quantile(0.9)
	for i := 1; i <= 1000; i++ {
		q.Add(7.5)
		if v := q.Value(); v != 7.5 {
			t.Fatalf("after %d equal samples: Value = %g, want 7.5", i, v)
		}
	}
}

func TestP2MonotoneRamp(t *testing.T) {
	// A strictly increasing ramp 1..n: the exact p-quantile is ≈ p*n, and
	// ordered input is a classic P² stressor (every observation lands in
	// the top cell). The sketch must stay within a few percent.
	const n = 10000
	for _, p := range []float64{0.5, 0.9} {
		q := NewP2Quantile(p)
		var xs []float64
		for i := 1; i <= n; i++ {
			x := float64(i)
			xs = append(xs, x)
			q.Add(x)
		}
		exact := Percentile(xs, p)
		if math.Abs(q.Value()-exact) > 0.05*exact {
			t.Errorf("p=%g on ramp: sketch %g vs exact %g (>5%% off)", p, q.Value(), exact)
		}
	}
}

func TestP2BimodalAdversarial(t *testing.T) {
	// 10k samples from two well-separated modes (most mass near 10, a
	// heavy cluster near 1000 — short jobs and long jobs). Quantiles near
	// the gap are where a five-marker sketch is weakest; require the P90
	// estimate to land inside the data range and within 15% of the exact
	// order statistic, an honest bound for this shape.
	r := rng.Derive(13, rng.HashString("p2-bimodal"))
	q := NewP2Quantile(0.9)
	var xs []float64
	for i := 0; i < 10000; i++ {
		var x float64
		if r.Float64() < 0.85 {
			x = 10 + r.Float64()
		} else {
			x = 1000 + 10*r.Float64()
		}
		xs = append(xs, x)
		q.Add(x)
	}
	exact := Percentile(xs, 0.9)
	got := q.Value()
	if got < 10 || got > 1010+1 {
		t.Fatalf("P90 estimate %g escaped the data range", got)
	}
	if math.Abs(got-exact) > 0.15*exact {
		t.Errorf("bimodal P90: sketch %g vs exact %g (>15%% off)", got, exact)
	}
}

func TestStreamMeanMatchesSliceSum(t *testing.T) {
	// The streaming mean must be bitwise the slice mean for the same
	// addition order — that is what keeps streaming-mode summaries
	// comparable to exact ones.
	r := rng.Derive(9, rng.HashString("stream-test"))
	st := NewStream(0.5)
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := r.Exp(100)
		xs = append(xs, x)
		st.Add(x)
	}
	if st.Count() != len(xs) {
		t.Fatalf("Count %d != %d", st.Count(), len(xs))
	}
	if st.Mean() != Mean(xs) {
		t.Errorf("stream mean %g != slice mean %g", st.Mean(), Mean(xs))
	}
	if st.Quantile(0.5) == 0 {
		t.Error("configured quantile returned 0")
	}
	if st.Quantile(0.9) != 0 {
		t.Error("unconfigured quantile should return 0")
	}
}
