package planner

import (
	"math"
	"sort"
)

// paretoFrontier returns the non-dominated candidates under simultaneous
// minimization of (BComp, LComm): a plan is kept iff no other plan is at
// least as good on both metrics and strictly better on one (§3.3). It is
// the post-hoc reference the incremental sweep (frontier.go) is proven
// against, reachable through Planner.SortedPareto.
//
// Exact (BComp, LComm) ties keep the candidate at the lowest input
// position — the lexicographic partition rank, since both enumerators
// present candidates in that order. The position tie-break is explicit
// in the comparator: an earlier revision sorted on the metrics alone,
// which let sort.Slice's unstable pdqsort pick the surviving duplicate —
// deterministic for a fixed Go release but an artifact of the sort
// algorithm, observed to keep non-first members in two thirds of the
// tie-heavy matrix's frontier tie groups. The rank rule makes the
// reference a pure function of the candidate population and is what the
// incremental sweep reproduces order-independently.
func paretoFrontier(cands []*Candidate) []*Candidate {
	// Sort by BComp ascending, LComm ascending, input position ascending
	// (a total order, so sort instability cannot matter); then sweep: a
	// candidate is on the frontier iff its LComm is strictly below every
	// previously kept LComm (classic 2-D skyline).
	pos := make(map[*Candidate]int, len(cands))
	for i, c := range cands {
		pos[c] = i
	}
	sorted := append([]*Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].BComp != sorted[j].BComp {
			return sorted[i].BComp < sorted[j].BComp
		}
		if sorted[i].LComm != sorted[j].LComm {
			return sorted[i].LComm < sorted[j].LComm
		}
		return pos[sorted[i]] < pos[sorted[j]]
	})
	var frontier []*Candidate
	bestLComm := math.MaxFloat64
	for _, c := range sorted {
		if c.LComm < bestLComm {
			frontier = append(frontier, c)
			bestLComm = c.LComm
		}
	}
	return frontier
}

// reduceFrontier shrinks an oversized frontier by repeatedly locating the
// pair of plans with the most similar stage partitions and dropping the
// one with the higher communication load (§3.3).
func (pl *Planner) reduceFrontier(frontier []*Candidate) []*Candidate {
	max := pl.MaxFrontier
	if max <= 0 {
		max = 16
	}
	out := append([]*Candidate(nil), frontier...)
	for len(out) > max {
		bi, bj := -1, -1
		bestSim := math.MaxFloat64
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				sim := partitionDistance(out[i].OpsPerStage, out[j].OpsPerStage)
				if sim < bestSim {
					bestSim, bi, bj = sim, i, j
				}
			}
		}
		drop := bi
		if out[bj].LComm > out[bi].LComm {
			drop = bj
		}
		out = append(out[:drop], out[drop+1:]...)
	}
	return out
}

// partitionDistance is the L1 distance between two ops-per-stage vectors;
// vectors of different lengths are padded with zeros (they cannot occur
// within one grid, but the metric stays total).
func partitionDistance(a, b []int) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var d float64
	for i := 0; i < n; i++ {
		var av, bv int
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d += math.Abs(float64(av - bv))
	}
	return d
}

// selectProxy picks the grid's proxy plan from the Pareto frontier: filter
// to plans with (near-)minimum computation bias — computation typically
// dominates end-to-end performance — then take the lowest communication
// load among them (§3.3).
func (pl *Planner) selectProxy(frontier []*Candidate) *Candidate {
	if len(frontier) == 0 {
		return nil
	}
	minBias := math.MaxFloat64
	for _, c := range frontier {
		if c.BComp < minBias {
			minBias = c.BComp
		}
	}
	tol := pl.BiasTolerance
	if tol < 0 {
		tol = 0
	}
	cutoff := minBias*(1+tol) + 1e-12
	var proxy *Candidate
	for _, c := range frontier {
		if c.BComp > cutoff {
			continue
		}
		if proxy == nil || c.LComm < proxy.LComm {
			proxy = c
		}
	}
	return proxy
}
