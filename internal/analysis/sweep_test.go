package analysis

import "testing"

// TestRepoSweep runs the full analyzer suite over the module at HEAD
// and requires zero findings — the same gate CI applies through
// `go vet -vettool=arena-vet`, held here inside plain `go test ./...`
// so the discipline binds offline and in every checkout.
func TestRepoSweep(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := LoadModule(LoadConfig{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	// No file may hide from the sweep behind a build tag: the repo has
	// no tag-gated Go files today, and any future ones must come with a
	// per-configuration arena-vet invocation before this can relax.
	for _, f := range res.IgnoredFiles {
		t.Errorf("file excluded by the active build configuration escapes the sweep: %s", f)
	}
	total := 0
	for _, pkg := range res.Packages {
		diags, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
			total++
		}
	}
	if total > 0 {
		t.Fatalf("%d determinism findings at HEAD; fix them or add a reasoned //arena:allow", total)
	}
}
