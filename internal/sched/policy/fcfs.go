// Package policy implements the four baseline schedulers the paper
// compares against (§5.1): FCFS, Gavel, ElasticFlow-LS, and Sia. Each
// baseline schedules on static-parallelism knowledge (or linear
// estimates) while its jobs execute with adaptive parallelism — the
// SP-scheduling / AP-execution mismatch the paper dissects (§2.2).
package policy

import (
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// FCFS rigidly schedules jobs with their user-specified resources in
// arrival order (the Kubernetes default the paper cites). A blocked head
// job blocks everything behind it; no scaling ever happens.
//
// FCFS deliberately implements no sched.ReferenceScorer: head-of-line
// blocking already bounds per-round work to the launched prefix plus one
// blocked probe, so there is nothing for a score cache to save and no
// fast/reference pair to keep in parity.
type FCFS struct{}

// NewFCFS returns the policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements sched.Policy.
func (f *FCFS) Name() string { return "fcfs" }

// Assign launches queued jobs strictly in order until the first one that
// does not fit.
func (f *FCFS) Assign(ctx *sched.Context) sched.Assignment {
	asg := sched.NewAssignment()
	free := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		free[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	for _, job := range ctx.Queued {
		alloc := f.request(ctx, job)
		if alloc.N > free[alloc.GPUType] {
			break // head-of-line blocking
		}
		asg.Place[job.Trace.ID] = alloc
		free[alloc.GPUType] -= alloc.N
	}
	return asg
}

// request returns the user's rigid request, bumped up to the smallest
// count at which the job can run at all (users of rigid schedulers size
// their requests to fit, and AP execution defines what fits).
func (f *FCFS) request(ctx *sched.Context, job *sched.Job) sched.Alloc {
	n := job.Trace.ReqGPUs
	typ := job.Trace.ReqType
	min := ctx.DB.MinFeasibleAP(job.Workload(), typ)
	if min == 0 {
		// Infeasible on the requested type: the user picks the fastest
		// type that works.
		for _, t := range ctx.Cluster.GPUTypes() {
			if m := ctx.DB.MinFeasibleAP(job.Workload(), t); m != 0 {
				typ, min = t, m
				break
			}
		}
	}
	if min > n {
		n = min
	}
	return sched.Alloc{GPUType: typ, N: n}
}

// PerceivedThr implements sched.Policy: FCFS consults no performance
// data; report what execution will achieve so feasibility checks work.
func (f *FCFS) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.APThr(w, gpuType, n)
}

// ActualThr implements sched.Policy: jobs execute with AP (§5.1).
func (f *FCFS) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.APThr(w, gpuType, n)
}

// ProfilePrepend implements sched.Policy: no ahead-of-time profiling.
func (f *FCFS) ProfilePrepend(*perfdb.DB, model.Workload) float64 { return 0 }

// DeployOverhead implements sched.Policy: every launch pays the full AP
// search of the execution backend.
func (f *FCFS) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.SearchTimeFull(w, gpuType, n)
}
