package search

import (
	"context"
	"fmt"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
)

// Restriction encodes Arena's three runtime pruning rules (§3.6), derived
// from the planner's Pareto-optimal plans for the selected grid:
//
//  1. the pipeline degree is fixed to the best grid's (applied by the
//     caller choosing which degree to search);
//  2. stage partitions more imbalanced than the most imbalanced
//     Pareto-optimal partition are pruned — expressed as per-range load
//     share bounds;
//  3. a stage whose operator composition matches a stage of a
//     Pareto-optimal plan directly adopts that stage's GPU count and
//     intra-stage parallelism.
type Restriction struct {
	minShare, maxShare float64
	prefixLoad         []float64
	totalLoad          float64
	match              map[[2]int]stageShape
}

type stageShape struct {
	gpus, dp, tp int
}

// shareSlack loosens the Pareto-derived load-share bounds: the runtime
// search may explore slightly beyond the planner's frontier.
const shareSlack = 0.10

// BuildRestriction derives the pruning rules from a grid's Pareto
// frontier. It returns nil when the frontier is empty (no pruning).
func BuildRestriction(g *model.Graph, spec hw.GPU, frontier []*planner.Candidate) *Restriction {
	if len(frontier) == 0 {
		return nil
	}
	r := &Restriction{
		minShare: 1, maxShare: 0,
		prefixLoad: make([]float64, len(g.Ops)+1),
		match:      map[[2]int]stageShape{},
	}
	for i, op := range g.Ops {
		r.prefixLoad[i+1] = r.prefixLoad[i] + planner.OperatorLoad(op, spec)
	}
	r.totalLoad = r.prefixLoad[len(g.Ops)]

	for _, cand := range frontier {
		for _, st := range cand.Plan.Stages {
			share := (r.prefixLoad[st.OpEnd] - r.prefixLoad[st.OpStart]) / r.totalLoad
			if share < r.minShare {
				r.minShare = share
			}
			if share > r.maxShare {
				r.maxShare = share
			}
			key := [2]int{st.OpStart, st.OpEnd}
			// First-seen wins; frontier plans are ordered best-bias first.
			if _, ok := r.match[key]; !ok {
				r.match[key] = stageShape{gpus: st.GPUs(), dp: st.DP, tp: st.TP}
			}
		}
	}
	r.minShare *= 1 - shareSlack
	r.maxShare *= 1 + shareSlack
	return r
}

// RangeAllowed implements rule 2: the operator range's load share must lie
// within the Pareto-observed bounds.
func (r *Restriction) RangeAllowed(g *model.Graph, start, end int) bool {
	if r == nil {
		return true
	}
	share := (r.prefixLoad[end] - r.prefixLoad[start]) / r.totalLoad
	return share >= r.minShare && share <= r.maxShare
}

// ShapeAllowed implements rule 3: ranges matching a Pareto stage are
// pinned to that stage's GPU count and intra-stage parallelism.
func (r *Restriction) ShapeAllowed(start, end, gpus, dp, tp int) bool {
	if r == nil {
		return true
	}
	shape, ok := r.match[[2]int{start, end}]
	if !ok {
		return true
	}
	return shape.gpus == gpus && shape.dp == dp && shape.tp == tp
}

// prunedSearchBaseSeconds is the session overhead of the pruned search:
// stage candidates are far fewer, but session setup, tracing and the
// final plan's compilation are still paid.
const prunedSearchBaseSeconds = 90.0

// PrunedSearch runs Arena's space-pruned AP search (§3.6) for the grid the
// scheduler selected: only the grid's pipeline degree is explored, with
// partition-imbalance and composition-matching pruning derived from the
// planner's Pareto frontier.
func PrunedSearch(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int, gp *planner.GridPlan) (Outcome, error) {
	return PrunedSearchWithNodes(eng, g, spec, globalBatch, n, spec.GPUsPerNode, gp)
}

// PrunedSearchWithNodes is PrunedSearch with explicit placement.
func PrunedSearchWithNodes(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n, gpusPerNode int, gp *planner.GridPlan) (Outcome, error) {
	return PrunedSearchOpts(eng, g, spec, globalBatch, n, gp, Options{GPUsPerNode: gpusPerNode})
}

// PrunedSearchOpts is PrunedSearch with execution options (memoization
// cache, profiling fan-out, node packing). Sharing one cache between the
// full and pruned searches of a point reuses every overlapping stage
// measurement.
func PrunedSearchOpts(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int, gp *planner.GridPlan, opts Options) (Outcome, error) {
	return PrunedSearchCtx(context.Background(), eng, g, spec, globalBatch, n, gp, opts)
}

// PrunedSearchCtx is PrunedSearchOpts with cooperative cancellation: when
// ctx is cancelled the search stops within one scheduling quantum of its
// worker pool and returns ctx.Err() with a zero Outcome. Uncancelled, it
// is bit-identical to PrunedSearchOpts.
func PrunedSearchCtx(ctx context.Context, eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, n int, gp *planner.GridPlan, opts Options) (Outcome, error) {
	if gp == nil || !gp.Feasible || gp.Proxy == nil {
		return Outcome{}, fmt.Errorf("search: pruned search needs a feasible grid plan")
	}
	if gp.Grid.N != n {
		return Outcome{}, fmt.Errorf("search: grid is for %d GPUs, searching %d", gp.Grid.N, n)
	}
	s, err := newSearcher(ctx, eng, g, spec, globalBatch, opts)
	if err != nil {
		return Outcome{}, err
	}
	restrict := BuildRestriction(g, spec, gp.Frontier)

	out := s.searchDegree(gp.Grid.S, n, restrict)
	if s.err != nil {
		return Outcome{}, s.err
	}
	out.StageEvals = s.stageEvals
	out.SearchTime = prunedSearchBaseSeconds + float64(s.stageEvals)*stageProfileSeconds
	opts.Progress.Emit("search.pruned", fmt.Sprintf("deg=%d", gp.Grid.S), 1, 1)

	// Fall back to the proxy plan if the restricted DP found nothing; the
	// measurement goes through the session cache when one is attached.
	if out.Plan == nil || !out.Result.Fits {
		res, err := s.evaluate(gp.Proxy.Plan)
		if err != nil {
			return out, err
		}
		return Outcome{
			Plan: gp.Proxy.Plan, Result: res,
			PlanEvals:  out.PlanEvals + 1,
			StageEvals: out.StageEvals,
			SearchTime: out.SearchTime,
		}, nil
	}
	return out, nil
}

// ProxyExecution directly executes the grid's proxy plan with zero search
// overhead — the alternative deployment mode of §3.6.
func ProxyExecution(eng *exec.Engine, g *model.Graph, spec hw.GPU, globalBatch, gpusPerNode int, gp *planner.GridPlan) (Outcome, error) {
	if gp == nil || gp.Proxy == nil {
		return Outcome{}, fmt.Errorf("search: no proxy plan available")
	}
	res, err := eng.EvaluateWithNodes(g, gp.Proxy.Plan, spec, globalBatch, gpusPerNode)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Plan: gp.Proxy.Plan, Result: res, PlanEvals: 1}, nil
}
