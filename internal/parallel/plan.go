// Package parallel defines the hybrid-parallelism plan representation the
// whole system operates on: a model is partitioned into pipeline stages
// (inter-operator parallelism, P_inter in §3.2), and each stage is
// parallelized across its assigned GPUs with a data-parallel ×
// tensor-parallel factorization (intra-operator parallelism, P_intra).
// The package also provides the per-GPU memory-footprint model used to
// decide plan feasibility (OOM), the root cause of the paper's Case#2
// scheduling pathology (§2.2).
package parallel

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
)

// StagePlan assigns a contiguous operator range [OpStart, OpEnd) of a
// clustered graph to DP×TP GPUs.
type StagePlan struct {
	OpStart int // inclusive index into Graph.Ops
	OpEnd   int // exclusive
	DP      int // data-parallel ways (microbatch split)
	TP      int // tensor/model-parallel ways (operator split)
}

// GPUs returns the stage's GPU count (DP × TP).
func (s StagePlan) GPUs() int { return s.DP * s.TP }

// NumOps returns the operator count of the stage.
func (s StagePlan) NumOps() int { return s.OpEnd - s.OpStart }

// StagesKey renders a stage sequence as a compact unique string — the
// canonical dedup/memo key for plan identity. Unlike Plan.String (which
// shows only the intra-stage degrees), it encodes the operator ranges, so
// two plans differing only in partition boundaries never collide.
func StagesKey(stages []StagePlan) string {
	var b strings.Builder
	b.Grow(12 * len(stages))
	for _, s := range stages {
		b.WriteString(strconv.Itoa(s.OpStart))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(s.OpEnd))
		b.WriteByte('d')
		b.WriteString(strconv.Itoa(s.DP))
		b.WriteByte('t')
		b.WriteString(strconv.Itoa(s.TP))
		b.WriteByte(';')
	}
	return b.String()
}

// Plan is a complete scheduling-parallelism execution plan for one job on
// a fixed GPU allocation: pipeline stages plus the microbatch count.
type Plan struct {
	Stages []StagePlan
	// NumMicrobatches is the gradient-accumulation microbatch count B.
	// The paper sets B = 4 × pipeline stages (§5.1).
	NumMicrobatches int
}

// DefaultMicrobatches returns the paper's microbatch policy: 4 microbatches
// per pipeline stage (§5.1, following GPipe guidance).
func DefaultMicrobatches(stages int) int { return 4 * stages }

// PipelineDegree returns the number of stages (the grid dimension s, §3.2).
func (p *Plan) PipelineDegree() int { return len(p.Stages) }

// TotalGPUs returns the plan's total GPU demand.
func (p *Plan) TotalGPUs() int {
	n := 0
	for _, s := range p.Stages {
		n += s.GPUs()
	}
	return n
}

// MaxStageGPUs returns the largest per-stage GPU group, which bounds the
// collective-communicator sizes in the plan.
func (p *Plan) MaxStageGPUs() int {
	m := 0
	for _, s := range p.Stages {
		if s.GPUs() > m {
			m = s.GPUs()
		}
	}
	return m
}

// String renders the plan compactly, e.g. "PP2[DP2,DP2]" or
// "PP2[DP2xTP2,TP4]"; single-stage plans render as "DP4" / "TP2" / "DP2xTP2".
func (p *Plan) String() string {
	if p == nil || len(p.Stages) == 0 {
		return "<empty>"
	}
	stage := func(s StagePlan) string {
		switch {
		case s.TP == 1 && s.DP == 1:
			return "G1"
		case s.TP == 1:
			return fmt.Sprintf("DP%d", s.DP)
		case s.DP == 1:
			return fmt.Sprintf("TP%d", s.TP)
		default:
			return fmt.Sprintf("DP%dxTP%d", s.DP, s.TP)
		}
	}
	if len(p.Stages) == 1 {
		return stage(p.Stages[0])
	}
	parts := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		parts[i] = stage(s)
	}
	return fmt.Sprintf("PP%d[%s]", len(p.Stages), strings.Join(parts, ","))
}

// Degrees renders the paper's Fig. 2/18-style plan annotation using the
// dominant degrees, e.g. "PP2,DP2", "DP4", "TP2", "PP2,DP2,TP2".
func (p *Plan) Degrees() string {
	if p == nil || len(p.Stages) == 0 {
		return ""
	}
	var parts []string
	if len(p.Stages) > 1 {
		parts = append(parts, fmt.Sprintf("PP%d", len(p.Stages)))
	}
	// Use the first stage's intra-parallelism as the representative.
	s := p.Stages[0]
	if s.DP > 1 {
		parts = append(parts, fmt.Sprintf("DP%d", s.DP))
	}
	if s.TP > 1 {
		parts = append(parts, fmt.Sprintf("TP%d", s.TP))
	}
	if len(parts) == 0 {
		return "G1"
	}
	return strings.Join(parts, ",")
}

// Validate checks the plan is well-formed against a graph: stages cover
// [0, len(Ops)) contiguously in order, with positive parallel degrees and
// a positive microbatch count.
func (p *Plan) Validate(g *model.Graph) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("parallel: plan has no stages")
	}
	if p.NumMicrobatches <= 0 {
		return fmt.Errorf("parallel: plan has %d microbatches", p.NumMicrobatches)
	}
	next := 0
	for i, s := range p.Stages {
		if s.OpStart != next {
			return fmt.Errorf("parallel: stage %d starts at op %d, want %d", i, s.OpStart, next)
		}
		if s.OpEnd <= s.OpStart {
			return fmt.Errorf("parallel: stage %d is empty", i)
		}
		if s.DP < 1 || s.TP < 1 {
			return fmt.Errorf("parallel: stage %d has DP=%d TP=%d", i, s.DP, s.TP)
		}
		next = s.OpEnd
	}
	if next != len(g.Ops) {
		return fmt.Errorf("parallel: stages cover %d ops, graph has %d", next, len(g.Ops))
	}
	return nil
}

// PureDP builds the single-stage pure data-parallel plan over n GPUs — the
// static parallelism (SP) assumption of prior schedulers (§2.2).
func PureDP(g *model.Graph, n int) *Plan {
	return &Plan{
		Stages:          []StagePlan{{OpStart: 0, OpEnd: len(g.Ops), DP: n, TP: 1}},
		NumMicrobatches: DefaultMicrobatches(1),
	}
}

// PureTP builds the single-stage pure tensor-parallel plan over n GPUs.
func PureTP(g *model.Graph, n int) *Plan {
	return &Plan{
		Stages:          []StagePlan{{OpStart: 0, OpEnd: len(g.Ops), DP: 1, TP: n}},
		NumMicrobatches: DefaultMicrobatches(1),
	}
}

// EvenPipeline builds an s-stage pipeline with operator counts split as
// evenly as possible and g GPUs per stage in the given (dp, tp) shape.
func EvenPipeline(gr *model.Graph, s, dp, tp int) (*Plan, error) {
	n := len(gr.Ops)
	if s < 1 || s > n {
		return nil, fmt.Errorf("parallel: cannot build %d stages over %d ops", s, n)
	}
	stages := make([]StagePlan, 0, s)
	start := 0
	for i := 0; i < s; i++ {
		end := start + (n-start)/(s-i)
		stages = append(stages, StagePlan{OpStart: start, OpEnd: end, DP: dp, TP: tp})
		start = end
	}
	return &Plan{Stages: stages, NumMicrobatches: DefaultMicrobatches(s)}, nil
}

// MemoryReserveFraction is the usable fraction of device memory; the
// remainder is held back for framework workspace and fragmentation.
const MemoryReserveFraction = 0.90

// AdamStateMultiplier converts FP16 parameter bytes into total static
// training state: fp16 weights + fp16 gradients + fp32 master weights +
// fp32 Adam first/second moments = 16 bytes per parameter = 8× the fp16
// parameter bytes. Data parallelism replicates this state on every
// replica — the reason "static DP consumes the most memory among all
// parallelism" (§1, Case#2).
const AdamStateMultiplier = 8.0

// StageMemoryBytes returns the per-GPU memory footprint of a stage:
//
//	static:      AdamStateMultiplier × stageParamBytes / TP
//	activations: ActMemFactor × Σ ActBytes × samplesPerReplica × inflight / TP
//
// where samplesPerReplica = globalBatch / (NumMicrobatches × DP) and
// inflight is the number of microbatches a 1F1B schedule keeps live on
// this stage (numStages − stageIdx, capped by the microbatch count).
func StageMemoryBytes(g *model.Graph, st StagePlan, globalBatch, numMicro, stageIdx, numStages int) float64 {
	var params, acts float64
	for _, op := range g.Ops[st.OpStart:st.OpEnd] {
		params += op.ParamBytes
		acts += op.ActBytes
	}
	static := AdamStateMultiplier * params / float64(st.TP)

	samplesPerReplica := float64(globalBatch) / (float64(numMicro) * float64(st.DP))
	inflight := numStages - stageIdx
	if inflight > numMicro {
		inflight = numMicro
	}
	if inflight < 1 {
		inflight = 1
	}
	actFactor := g.ActMemFactor
	if actFactor <= 0 {
		actFactor = 1
	}
	activation := actFactor * acts * samplesPerReplica * float64(inflight) / float64(st.TP)
	return static + activation
}

// PlanMemory reports the maximum per-GPU memory footprint across stages
// and whether the plan fits the device (within the usable fraction).
func PlanMemory(g *model.Graph, p *Plan, spec hw.GPU, globalBatch int) (maxBytes float64, fits bool) {
	n := len(p.Stages)
	for i, st := range p.Stages {
		m := StageMemoryBytes(g, st, globalBatch, p.NumMicrobatches, i, n)
		if m > maxBytes {
			maxBytes = m
		}
	}
	return maxBytes, maxBytes <= spec.MemBytes*MemoryReserveFraction
}

// MinDPGPUs returns the smallest power-of-two GPU count at which the pure
// data-parallel plan fits the device, or 0 if it never fits within maxN.
// This is the resource demand an SP-aware scheduler perceives (§2.2).
func MinDPGPUs(g *model.Graph, spec hw.GPU, globalBatch, maxN int) int {
	for n := 1; n <= maxN; n *= 2 {
		if _, ok := PlanMemory(g, PureDP(g, n), spec, globalBatch); ok {
			return n
		}
	}
	return 0
}
