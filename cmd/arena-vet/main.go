// Command arena-vet is the driver for the repository's
// determinism-discipline analyzer suite (internal/analysis). It runs
// two ways:
//
//	arena-vet [-tags tags] [packages]     standalone, like shadowcheck was
//	go vet -vettool=$(which arena-vet) ./...
//
// The second form speaks the go vet unitchecker protocol (-V=full,
// -flags, and a JSON .cfg file per compilation unit), so the go
// command's build cache drives incremental analysis, test files are
// included per unit, and packages outside this module are skipped
// cheaply. Diagnostics print as
//
//	file:line:col: message [analyzer]
//
// and any finding makes the process exit non-zero: 1 for findings,
// 2 for operational errors (standalone mode), matching the retired
// internal/shadowcheck tool.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/sjtu-epcc/arena/internal/analysis"
)

var (
	tagsFlag = flag.String("tags", "", "build tags to forward to the go command (standalone mode)")
	jsonFlag = flag.Bool("json", false, "emit diagnostics as JSON")
)

func main() {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	// -V=full and -flags are the go vet tool handshake.
	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Parse()

	if *printflags {
		printFlagDefs()
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}
	runStandalone(args)
}

// runStandalone loads the whole module from source and sweeps it.
func runStandalone(patterns []string) {
	wd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		log.Fatal(err)
	}
	res, err := analysis.LoadModule(analysis.LoadConfig{
		Dir:      root,
		Patterns: patterns,
		Tags:     *tagsFlag,
	})
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range res.Packages {
		ds, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}
	printDiags(os.Stdout, diags)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetConfig mirrors the JSON compilation-unit description the go
// command hands a -vettool (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit under the go vet protocol.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The go command caches analysis output ("facts") per unit and
	// feeds it to dependents; this suite carries no facts, but the
	// output file must exist for the cache entry to form.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}
	// Units outside this module (the standard library, typically) have
	// nothing in scope; skip without even parsing.
	if !applicable(cfg.ImportPath) {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	imp := newVetImporter(fset, cfg)
	info := analysis.NewTypesInfo()
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion, FakeImportC: true}
	pkg, err := tc.Check(cfg.ImportPath, fset, parsed, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	unit := &analysis.Package{
		Fset:       fset,
		Files:      parsed,
		Pkg:        pkg,
		TypesInfo:  info,
		ImportPath: cfg.ImportPath,
	}
	diags, err := analysis.RunPackage(unit, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	printDiags(os.Stderr, diags)
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// applicable reports whether any analyzer could fire on importPath.
func applicable(importPath string) bool {
	importPath = strings.TrimSuffix(importPath, "_test")
	return importPath == analysis.ModulePath ||
		strings.HasPrefix(importPath, analysis.ModulePath+"/")
}

// vetImporter resolves imports through the unit's ImportMap and reads
// type information from the compiler export data files the go command
// listed in PackageFile.
type vetImporter struct {
	fset     *token.FileSet
	cfg      *vetConfig
	compiler types.Importer
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	v := &vetImporter{fset: fset, cfg: cfg}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	v.compiler = importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return v
}

func (v *vetImporter) Import(importPath string) (*types.Package, error) {
	path, ok := v.cfg.ImportMap[importPath]
	if !ok {
		return nil, fmt.Errorf("can't resolve import %q", importPath)
	}
	return v.compiler.Import(path)
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func printDiags(w io.Writer, diags []analysis.Diagnostic) {
	if *jsonFlag {
		type jsonDiag struct {
			Posn     string `json:"posn"`
			Message  string `json:"message"`
			Analyzer string `json:"analyzer"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.String(), d.Message, d.Analyzer})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		w.Write(append(data, '\n'))
		return
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: the go command hashes
// the reported build ID into its action cache key, so the output must
// change when the binary does.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(os.Args[0]), string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
