package planner

import (
	"math/bits"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// intraSelector chooses the intra-stage parallelism (dp, tp) for every
// (operator range, GPU count) pair of a grid, minimizing analytic
// communication cost subject to device memory (§3.3: "Arena further
// determines intra-stage parallelism per stage by minimizing communication
// cost within memory limits"). Results are memoized: only O(O²) distinct
// ranges exist across all partitions of a grid.
type intraSelector struct {
	graph    *model.Graph
	spec     hw.GPU
	grid     core.Grid
	numMicro int

	// memo is a dense table over (start, end, log2 gpus): O(O² log N)
	// entries, all hit many times across a grid's partitions — an array
	// avoids map hashing on the planner's hottest lookup.
	memo    []*intraChoice
	memoSet []bool
	numOps  int
	logGPUs int
}

// intraChoice is the selected factorization with its analytic comm costs.
type intraChoice struct {
	dp, tp       int
	perMicroComm float64 // tensor-parallel collectives per microbatch (fwd+bwd)
	iterComm     float64 // data-parallel gradient sync per iteration
}

func newIntraSelector(g *model.Graph, spec hw.GPU, grid core.Grid, numMicro int) *intraSelector {
	logGPUs := 1
	for p := 1; p < grid.N; p *= 2 {
		logGPUs++
	}
	size := (len(g.Ops) + 1) * (len(g.Ops) + 1) * logGPUs
	return &intraSelector{
		graph: g, spec: spec, grid: grid, numMicro: numMicro,
		memo: make([]*intraChoice, size), memoSet: make([]bool, size),
		numOps: len(g.Ops), logGPUs: logGPUs,
	}
}

// memoIdx flattens (start, end, gpus) — gpus is always a power of two,
// so its log is one bit scan on the planner's hottest lookup.
func (is *intraSelector) memoIdx(start, end, gpus int) int {
	lg := bits.Len(uint(gpus)) - 1
	return (start*(is.numOps+1)+end)*is.logGPUs + lg
}

// best returns the minimal-communication feasible (dp, tp) for a stage of
// ops [start, end) on `gpus` GPUs, or nil when nothing fits memory.
// The memory check is pessimistic (first stage of the pipeline holds the
// most in-flight microbatches), keeping the planner's feasibility
// judgement independent of where the stage lands in the pipeline.
func (is *intraSelector) best(start, end, gpus int) *intraChoice {
	key := is.memoIdx(start, end, gpus)
	if is.memoSet[key] {
		return is.memo[key]
	}
	var best *intraChoice
	for tp := 1; tp <= gpus; tp *= 2 {
		dp := gpus / tp
		if dp*tp != gpus {
			continue
		}
		st := parallel.StagePlan{OpStart: start, OpEnd: end, DP: dp, TP: tp}
		mem := parallel.StageMemoryBytes(is.graph, st, is.grid.Workload.GlobalBatch, is.numMicro, 0, is.grid.S)
		if mem > is.spec.MemBytes*parallel.MemoryReserveFraction {
			continue
		}
		perMicro, iter := is.commCost(st)
		if best == nil || perMicro+iter < best.perMicroComm+best.iterComm {
			best = &intraChoice{dp: dp, tp: tp, perMicroComm: perMicro, iterComm: iter}
		}
	}
	is.memo[key] = best
	is.memoSet[key] = true
	return best
}

// commAccum accumulates the communication-load metric (Eq. 4) stage by
// stage. It is the single home of the metric's float arithmetic, shared
// by the eager reference path (stageMetrics) and the incremental sweep
// (sweepFrontier.offer) so a candidate's LComm bits depend only on its
// stage choices, never on which path computed them. Both partial terms
// are monotone — the running maximum never decreases and every added
// term is non-negative — so load() after any stage prefix is a valid
// lower bound of the final load, which is what licenses the sweep's
// early rejection.
type commAccum struct {
	maxStage float64 // bottleneck per-microbatch communication so far
	total    float64 // fill-phase + gradient-sync terms so far
}

// add folds one stage's intra-stage choice into the metric.
func (a *commAccum) add(c *intraChoice) {
	if c.perMicroComm > a.maxStage {
		a.maxStage = c.perMicroComm
	}
	a.total += c.perMicroComm + c.iterComm
}

// load is the communication load (Eq. 4) of the stages folded so far:
// the bottleneck stage's per-microbatch communication repeats for B−1
// microbatches; every communication operator contributes once for the
// fill phase, and per-iteration gradient synchronization counts once.
func (a *commAccum) load(numMicro int) float64 {
	return float64(numMicro-1)*a.maxStage + a.total
}

// commCost returns the stage's analytic communication costs: the
// per-microbatch tensor-parallel collectives (forward + mirrored backward)
// and the per-iteration data-parallel gradient all-reduce. Costs use the
// pure alpha-beta model from hardware specifications — the execution
// engine's contention and jitter effects are deliberately absent, because
// the planner never executes anything.
func (is *intraSelector) commCost(st parallel.StagePlan) (perMicro, perIter float64) {
	microSamples := float64(is.grid.Workload.GlobalBatch) / float64(is.numMicro)
	spr := microSamples / float64(st.DP)
	gpusPerNode := is.spec.GPUsPerNode

	var stageParams float64
	for _, op := range is.graph.Ops[st.OpStart:st.OpEnd] {
		stageParams += op.ParamBytes
		if st.TP > 1 && op.TPCommBytes > 0 {
			topo := hw.Topology{
				GPUType: is.spec.Name, Workers: st.TP,
				CrossNode: st.TP > gpusPerNode, NICShare: gpusPerNode,
			}
			prim := hw.Primitive(op.TPPrimitive)
			if prim == "" {
				prim = hw.AllReduce
			}
			if t, err := hw.CollectiveTime(prim, topo, op.TPCommBytes*spr); err == nil {
				perMicro += 2 * t // forward + mirrored backward
			}
		}
	}
	if st.DP > 1 {
		share := gpusPerNode / st.TP
		if share < 1 {
			share = 1
		}
		topo := hw.Topology{
			GPUType: is.spec.Name, Workers: st.DP,
			CrossNode: st.GPUs() > gpusPerNode, NICShare: share,
		}
		if t, err := hw.CollectiveTime(hw.AllReduce, topo, stageParams/float64(st.TP)); err == nil {
			perIter = t
		}
	}
	return perMicro, perIter
}
