package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// JobView is the API's job representation: the trace record plus the
// scheduler-facing lifecycle the engine tracks.
type JobView struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Model       string  `json:"model"`
	GlobalBatch int     `json:"global_batch"`
	Iterations  int     `json:"iterations"`
	ReqGPUs     int     `json:"req_gpus"`
	ReqType     string  `json:"req_type,omitempty"`
	Priority    int     `json:"priority"`
	SubmitTime  float64 `json:"submit_time"`
	SubmittedAt float64 `json:"submitted_at"` // effective: submit + profiling prepend
	LaunchedAt  float64 `json:"launched_at"`  // <0 = never launched
	FinishedAt  float64 `json:"finished_at,omitempty"`

	GPUType       string  `json:"gpu_type,omitempty"` // current grant
	GPUs          int     `json:"gpus,omitempty"`
	RemainingFrac float64 `json:"remaining_frac"` // work left, 0..1
	Resched       int     `json:"resched"`
	Preemptions   int     `json:"preemptions,omitempty"`
	Restarts      int     `json:"restarts,omitempty"`
	Migrations    int     `json:"migrations,omitempty"`
	CancelPending bool    `json:"cancel_pending,omitempty"`
}

// viewLocked renders one engine job; callers hold mu.
func (s *Server) viewLocked(j *sched.Job) JobView {
	v := JobView{
		ID:          j.Trace.ID,
		State:       string(j.State),
		Model:       j.Trace.Workload.Model,
		GlobalBatch: j.Trace.Workload.GlobalBatch,
		Iterations:  j.Trace.Iterations,
		ReqGPUs:     j.Trace.ReqGPUs,
		ReqType:     j.Trace.ReqType,
		Priority:    j.Trace.Priority,
		SubmitTime:  j.Trace.SubmitTime,
		SubmittedAt: j.SubmittedAt,
		LaunchedAt:  j.LaunchedAt,
		FinishedAt:  j.FinishedAt,
		GPUType:     j.Alloc.GPUType,
		GPUs:        j.Alloc.N,
		Resched:     j.Resched,
		Preemptions: j.Preemptions,
		Restarts:    j.Restarts,
		Migrations:  j.Migrations,
	}
	if total := j.Trace.TotalSamples(); total > 0 {
		v.RemainingFrac = j.RemainingSamples / total
	}
	v.CancelPending = s.inboxSet[j.Trace.ID]
	return v
}

// Job returns one job's view, or ErrUnknownJob.
func (s *Server) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.eng.Find(id)
	if j == nil {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return s.viewLocked(j), nil
}

// Jobs lists every job the server has ever seen, completed first.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.eng.Jobs()
	views := make([]JobView, 0, len(all))
	for _, j := range all {
		views = append(views, s.viewLocked(j))
	}
	return views
}

// StatsView is the monitoring snapshot the stats endpoint serves:
// sim-grade counters plus the daemon's own cursor.
type StatsView struct {
	Policy       string  `json:"policy"`
	Now          float64 `json:"now"` // clock instant, seconds on the run timeline
	RoundSeconds float64 `json:"round_seconds"`
	Rounds       int     `json:"rounds"` // rounds committed so far
	NextRound    int     `json:"next_round"`

	Pending        int `json:"pending"` // submitted for a future instant
	Queued         int `json:"queued"`  // awaiting resources
	Running        int `json:"running"`
	Finished       int `json:"finished"`
	Dropped        int `json:"dropped"`
	Failed         int `json:"failed"`
	CancelsPending int `json:"cancels_pending"`

	Preemptions int `json:"preemptions"`
	Restarts    int `json:"restarts"`
	Migrations  int `json:"migrations"`

	GoodputGPUHours float64 `json:"goodput_gpu_hours"`
	WastedGPUHours  float64 `json:"wasted_gpu_hours"`
	Utilization     float64 `json:"utilization"`

	JournalRecords int `json:"journal_records"`
}

// Stats assembles the monitoring snapshot.
func (s *Server) Stats() StatsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	es := s.eng.Stats()
	return StatsView{
		Policy:       s.cfg.Policy.Name(),
		Now:          s.nowLocked(),
		RoundSeconds: s.cfg.RoundSeconds,
		Rounds:       s.nextRound,
		NextRound:    s.nextRound,

		Pending:        es.Pending,
		Queued:         es.Queued,
		Running:        es.Running,
		Finished:       es.Finished,
		Dropped:        es.Dropped,
		Failed:         es.Failed,
		CancelsPending: len(s.inbox),

		Preemptions: es.Preemptions,
		Restarts:    es.Restarts,
		Migrations:  es.Migrations,

		GoodputGPUHours: es.GoodputGPUSeconds / 3600,
		WastedGPUHours:  es.WastedGPUSeconds / 3600,
		Utilization:     es.Utilization,

		JournalRecords: s.journal.Len(),
	}
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs      submit a job (JSON trace record; ID/SubmitTime optional)
//	GET    /v1/jobs      list all jobs
//	GET    /v1/jobs/{id} one job
//	DELETE /v1/jobs/{id} cancel (applies at the next round)
//	GET    /v1/stats     monitoring snapshot (JSON)
//	GET    /metrics      the same counters, Prometheus text format
//	GET    /healthz      liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		// Accepted, not OK: the cancel is journaled but applies at the
		// next round boundary.
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleSubmit decodes, registers and echoes one job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var tj trace.Job
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tj); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadJob, err))
		return
	}
	tj, err := s.Submit(tj)
	if err != nil {
		writeError(w, err)
		return
	}
	v, err := s.Job(tj.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, v)
}

// handleMetrics serves the stats snapshot in Prometheus exposition
// format, one gauge per counter.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, m := range []struct {
		name string
		val  float64
	}{
		{"arena_clock_seconds", st.Now},
		{"arena_rounds_total", float64(st.Rounds)},
		{"arena_jobs_pending", float64(st.Pending)},
		{"arena_jobs_queued", float64(st.Queued)},
		{"arena_jobs_running", float64(st.Running)},
		{"arena_jobs_finished_total", float64(st.Finished)},
		{"arena_jobs_dropped_total", float64(st.Dropped)},
		{"arena_jobs_failed_total", float64(st.Failed)},
		{"arena_cancels_pending", float64(st.CancelsPending)},
		{"arena_preemptions_total", float64(st.Preemptions)},
		{"arena_restarts_total", float64(st.Restarts)},
		{"arena_migrations_total", float64(st.Migrations)},
		{"arena_goodput_gpu_hours", st.GoodputGPUHours},
		{"arena_wasted_gpu_hours", st.WastedGPUHours},
		{"arena_utilization", st.Utilization},
		{"arena_journal_records_total", float64(st.JournalRecords)},
	} {
		fmt.Fprintf(w, "%s %g\n", m.name, m.val)
	}
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// writeError maps typed server errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, ErrJobDone):
		status = http.StatusConflict
	case errors.Is(err, ErrBadJob):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
