// Package cluster tracks runtime GPU-cluster state for the scheduler:
// typed homogeneous regions, per-node free maps, buddy-style locality-
// preserving allocation, and fragmentation accounting (§3.5: "to ensure
// job locality, Arena follows the buddy allocation rule").
package cluster

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/hw"
)

// Cluster is the mutable allocation state over a static ClusterSpec.
type Cluster struct {
	spec    hw.ClusterSpec
	regions map[string]*regionState
	allocs  map[string][]allocation // jobID -> held blocks
}

type regionState struct {
	gpuType     string
	gpusPerNode int
	freePerNode []int // free GPUs per node
	totalFree   int   // free GPUs on *up* nodes (down capacity is not free)
	totalGPUs   int

	// Fault state (internal/faults): down nodes are excluded from
	// allocation and from totalFree; slow[i] > 0 marks a straggler node
	// whose achieved throughput is multiplied by that factor.
	down []bool
	slow []float64
}

type allocation struct {
	gpuType string
	node    int
	gpus    int
}

// New builds an empty (fully free) cluster from a validated spec.
func New(spec hw.ClusterSpec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		spec:    spec,
		regions: map[string]*regionState{},
		allocs:  map[string][]allocation{},
	}
	for _, r := range spec.Regions {
		g := hw.MustLookup(r.GPUType)
		rs := &regionState{
			gpuType:     r.GPUType,
			gpusPerNode: g.GPUsPerNode,
			freePerNode: make([]int, r.Nodes),
			down:        make([]bool, r.Nodes),
			slow:        make([]float64, r.Nodes),
		}
		for i := range rs.freePerNode {
			rs.freePerNode[i] = g.GPUsPerNode
		}
		rs.totalFree = r.Nodes * g.GPUsPerNode
		rs.totalGPUs = rs.totalFree
		c.regions[r.GPUType] = rs
	}
	return c, nil
}

// Spec returns the underlying static specification.
func (c *Cluster) Spec() hw.ClusterSpec { return c.spec }

// GPUTypes returns the cluster's types, fastest first.
func (c *Cluster) GPUTypes() []string { return c.spec.GPUTypes() }

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int { return c.spec.TotalGPUs() }

// FreeGPUs returns the free GPU count in one typed region (0 for unknown
// types).
func (c *Cluster) FreeGPUs(gpuType string) int {
	rs, ok := c.regions[gpuType]
	if !ok {
		return 0
	}
	return rs.totalFree
}

// TotalFree returns the cluster-wide free GPU count.
func (c *Cluster) TotalFree() int {
	total := 0
	for _, rs := range c.regions {
		total += rs.totalFree
	}
	return total
}

// Utilization returns the fraction of GPUs currently allocated.
func (c *Cluster) Utilization() float64 {
	total := c.TotalGPUs()
	if total == 0 {
		return 0
	}
	return 1 - float64(c.TotalFree())/float64(total)
}

// Holding returns the job's current allocation as (type, GPU count);
// n = 0 when the job holds nothing.
func (c *Cluster) Holding(jobID string) (string, int) {
	blocks := c.allocs[jobID]
	if len(blocks) == 0 {
		return "", 0
	}
	n := 0
	for _, b := range blocks {
		n += b.gpus
	}
	return blocks[0].gpuType, n
}

// CanAlloc reports whether n GPUs of the type are allocatable right now
// under the locality rule (without mutating state).
func (c *Cluster) CanAlloc(gpuType string, n int) bool {
	rs, ok := c.regions[gpuType]
	if !ok || n < 1 || rs.totalFree < n {
		return false
	}
	if n <= rs.gpusPerNode {
		// Best-fit within one node.
		for i, free := range rs.freePerNode {
			if !rs.down[i] && free >= n {
				return true
			}
		}
		return false
	}
	// Multi-node: require fully free nodes (rack-affine buddy blocks).
	if n%rs.gpusPerNode != 0 {
		// Round up to whole nodes: the tail shares a node with nothing else.
	}
	needed := (n + rs.gpusPerNode - 1) / rs.gpusPerNode
	freeNodes := 0
	for i, free := range rs.freePerNode {
		if !rs.down[i] && free == rs.gpusPerNode {
			freeNodes++
		}
	}
	return freeNodes >= needed
}

// CanAllocHealthy is CanAlloc restricted to fully healthy nodes: up and
// not degraded. The straggler-routing policy uses it to check that a slow
// allocation has somewhere better to go before paying a migration.
func (c *Cluster) CanAllocHealthy(gpuType string, n int) bool {
	rs, ok := c.regions[gpuType]
	if !ok || n < 1 {
		return false
	}
	if n <= rs.gpusPerNode {
		for i, free := range rs.freePerNode {
			if !rs.down[i] && rs.slow[i] == 0 && free >= n {
				return true
			}
		}
		return false
	}
	needed := (n + rs.gpusPerNode - 1) / rs.gpusPerNode
	freeNodes := 0
	for i, free := range rs.freePerNode {
		if !rs.down[i] && rs.slow[i] == 0 && free == rs.gpusPerNode {
			freeNodes++
		}
	}
	return freeNodes >= needed
}

// Alloc reserves n GPUs of the type for a job. The job must not already
// hold resources (scale operations free first, then re-allocate — the
// checkpoint-resume path of §4).
func (c *Cluster) Alloc(jobID, gpuType string, n int) error {
	if len(c.allocs[jobID]) != 0 {
		return fmt.Errorf("cluster: job %s already holds resources", jobID)
	}
	rs, ok := c.regions[gpuType]
	if !ok {
		return fmt.Errorf("cluster: no region for %s", gpuType)
	}
	if n < 1 {
		return fmt.Errorf("cluster: alloc of %d GPUs", n)
	}
	if !c.CanAlloc(gpuType, n) {
		return fmt.Errorf("cluster: cannot allocate %d×%s", n, gpuType)
	}
	var blocks []allocation
	if n <= rs.gpusPerNode {
		// Best fit: the fullest node that still fits, preserving big
		// blocks. Two passes — fully healthy nodes first, then degraded
		// (but up) ones — so placement avoids stragglers when it can.
		// With no fault state every node is healthy and the first pass is
		// exactly the historic best-fit.
		best, bestFree := -1, rs.gpusPerNode+1
		for i, free := range rs.freePerNode {
			if !rs.down[i] && rs.slow[i] == 0 && free >= n && free < bestFree {
				best, bestFree = i, free
			}
		}
		if best < 0 {
			for i, free := range rs.freePerNode {
				if !rs.down[i] && free >= n && free < bestFree {
					best, bestFree = i, free
				}
			}
		}
		rs.freePerNode[best] -= n
		rs.totalFree -= n
		blocks = append(blocks, allocation{gpuType: gpuType, node: best, gpus: n})
	} else {
		needed := (n + rs.gpusPerNode - 1) / rs.gpusPerNode
		remaining := n
		// Healthy fully-free nodes first, then degraded fully-free ones.
		for pass := 0; pass < 2 && needed > 0; pass++ {
			for i := 0; i < len(rs.freePerNode) && needed > 0; i++ {
				if rs.down[i] || rs.freePerNode[i] != rs.gpusPerNode {
					continue
				}
				if (pass == 0) != (rs.slow[i] == 0) {
					continue
				}
				take := rs.gpusPerNode
				if remaining < take {
					take = remaining
				}
				rs.freePerNode[i] -= take
				rs.totalFree -= take
				blocks = append(blocks, allocation{gpuType: gpuType, node: i, gpus: take})
				remaining -= take
				needed--
			}
		}
		if remaining != 0 {
			// CanAlloc guaranteed feasibility; this is a programming error.
			panic("cluster: allocation accounting mismatch")
		}
	}
	c.allocs[jobID] = blocks
	return nil
}

// Free releases everything a job holds. Freeing an unknown job is a no-op.
// Blocks on down nodes return to the node's free map but not to totalFree
// — that capacity comes back only when the node recovers.
func (c *Cluster) Free(jobID string) {
	for _, b := range c.allocs[jobID] {
		rs := c.regions[b.gpuType]
		rs.freePerNode[b.node] += b.gpus
		if !rs.down[b.node] {
			rs.totalFree += b.gpus
		}
	}
	delete(c.allocs, jobID)
}

// FailNode marks a node down, removing its free capacity, and returns the
// IDs of jobs holding GPUs on it (sorted) — the victims the caller must
// preempt (each Free returns its blocks to the node's map, parked until
// recovery). Failing a node that is already down is a no-op.
func (c *Cluster) FailNode(gpuType string, node int) []string {
	rs, ok := c.regions[gpuType]
	if !ok || node < 0 || node >= len(rs.freePerNode) || rs.down[node] {
		return nil
	}
	rs.down[node] = true
	rs.totalFree -= rs.freePerNode[node]
	var victims []string
	for id, blocks := range c.allocs {
		for _, b := range blocks {
			if b.gpuType == gpuType && b.node == node {
				victims = append(victims, id)
				break
			}
		}
	}
	sort.Strings(victims)
	return victims
}

// RecoverNode returns a down node's capacity to service. The caller must
// have preempted (freed) the node's victims at failure time, so the whole
// node is free again. Recovering an up node is a no-op.
func (c *Cluster) RecoverNode(gpuType string, node int) {
	rs, ok := c.regions[gpuType]
	if !ok || node < 0 || node >= len(rs.freePerNode) || !rs.down[node] {
		return
	}
	rs.down[node] = false
	rs.totalFree += rs.freePerNode[node]
}

// NodeDown reports whether a node is currently failed.
func (c *Cluster) NodeDown(gpuType string, node int) bool {
	rs, ok := c.regions[gpuType]
	if !ok || node < 0 || node >= len(rs.down) {
		return false
	}
	return rs.down[node]
}

// SetSlow marks a node as a straggler with the given throughput factor;
// ClearSlow ends the episode. Out-of-range targets are ignored.
func (c *Cluster) SetSlow(gpuType string, node int, factor float64) {
	rs, ok := c.regions[gpuType]
	if !ok || node < 0 || node >= len(rs.slow) {
		return
	}
	rs.slow[node] = factor
}

// ClearSlow ends a node's straggler episode.
func (c *Cluster) ClearSlow(gpuType string, node int) {
	rs, ok := c.regions[gpuType]
	if !ok || node < 0 || node >= len(rs.slow) {
		return
	}
	rs.slow[node] = 0
}

// SlowFactor returns the job's achieved-throughput multiplier: the worst
// (minimum) straggler factor over the nodes it occupies — synchronous
// training runs at the slowest worker's pace. 1 means healthy.
func (c *Cluster) SlowFactor(jobID string) float64 {
	factor := 1.0
	for _, b := range c.allocs[jobID] {
		rs := c.regions[b.gpuType]
		if s := rs.slow[b.node]; s > 0 && s < factor {
			factor = s
		}
	}
	return factor
}

// LargestAllocatable returns the biggest power-of-two GPU count currently
// allocatable in the typed region under the locality rule.
func (c *Cluster) LargestAllocatable(gpuType string) int {
	best := 0
	for n := 1; n <= c.regionTotal(gpuType); n *= 2 {
		if c.CanAlloc(gpuType, n) {
			best = n
		}
	}
	return best
}

func (c *Cluster) regionTotal(gpuType string) int {
	rs, ok := c.regions[gpuType]
	if !ok {
		return 0
	}
	return rs.totalGPUs
}

// Fragmentation returns the fraction of a region's free GPUs that sit on
// partially occupied nodes — free capacity that cannot serve multi-node
// jobs without migration (§3.5's defragmentation motivation).
func (c *Cluster) Fragmentation(gpuType string) float64 {
	rs, ok := c.regions[gpuType]
	if !ok || rs.totalFree == 0 {
		return 0
	}
	fragmented := 0
	for _, free := range rs.freePerNode {
		if free > 0 && free < rs.gpusPerNode {
			fragmented += free
		}
	}
	return float64(fragmented) / float64(rs.totalFree)
}

// Snapshot returns a human-readable free-capacity summary, deterministic
// across runs.
func (c *Cluster) Snapshot() string {
	types := c.GPUTypes()
	sort.Strings(types)
	out := ""
	for _, t := range types {
		out += fmt.Sprintf("%s:%d/%d ", t, c.FreeGPUs(t), c.regionTotal(t))
	}
	return out
}
