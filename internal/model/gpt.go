package model

import "fmt"

// GPTConfig describes a GPT-3-family decoder-only transformer. The paper
// evaluates GPT-3 at 0.76B, 1.3B, 2.6B and 6.7B parameters with sequence
// length 1024 (Table 2, §5.1); the layer/hidden pairs below are the
// standard GPT-3 scaling-ladder configurations.
type GPTConfig struct {
	Name      string
	Layers    int
	Hidden    int
	Heads     int
	SeqLen    int
	VocabSize int
	Nominal   float64 // nominal parameter count for reporting
}

// GPT sizes from the paper (Table 2).
var gptConfigs = map[string]GPTConfig{
	"GPT-0.76B": {Name: "GPT-0.76B", Layers: 24, Hidden: 1536, Heads: 16, SeqLen: 1024, VocabSize: 51200, Nominal: 0.76e9},
	"GPT-1.3B":  {Name: "GPT-1.3B", Layers: 24, Hidden: 2048, Heads: 16, SeqLen: 1024, VocabSize: 51200, Nominal: 1.3e9},
	"GPT-2.6B":  {Name: "GPT-2.6B", Layers: 32, Hidden: 2560, Heads: 32, SeqLen: 1024, VocabSize: 51200, Nominal: 2.6e9},
	"GPT-6.7B":  {Name: "GPT-6.7B", Layers: 32, Hidden: 4096, Heads: 32, SeqLen: 1024, VocabSize: 51200, Nominal: 6.7e9},
}

// GPTSizes returns the available GPT variant names in ascending size.
func GPTSizes() []string {
	return []string{"GPT-0.76B", "GPT-1.3B", "GPT-2.6B", "GPT-6.7B"}
}

// GPTConfigFor returns the configuration for a named GPT variant.
func GPTConfigFor(name string) (GPTConfig, error) {
	c, ok := gptConfigs[name]
	if !ok {
		return GPTConfig{}, fmt.Errorf("model: unknown GPT variant %q", name)
	}
	return c, nil
}

// Build constructs the fine-grained operator graph: token embedding, one
// fused operator per transformer layer split into attention and MLP halves,
// and the LM head. Standard transformer arithmetic with fp16 storage:
//
//	attention params/layer: 4h²      MLP params/layer: 8h²
//	attention fwd FLOPs:    8sh² + 4s²h
//	MLP fwd FLOPs:          16sh²
//
// Tensor parallelism (Megatron-style) all-reduces the s×h activation once
// after the attention block and once after the MLP block per forward pass.
func (c GPTConfig) Build() *Graph {
	const bytesPerParam = 2 // fp16
	s := float64(c.SeqLen)
	h := float64(c.Hidden)
	actBytes := s * h * bytesPerParam // boundary activation per sample

	ops := make([]Op, 0, 2*c.Layers+2)

	// Token + position embedding. Lookup is memory-bound; params dominate.
	embedParams := (float64(c.VocabSize) + s) * h * bytesPerParam
	ops = append(ops, Op{
		Name: "embed", Kind: KindEmbedding,
		FLOPs:      2 * s * h,                                  // gather + scale
		Bytes:      embedParams/float64(c.Layers) + 2*actBytes, // hot rows + output
		ParamBytes: embedParams,
		ActBytes:   actBytes,
		// Vocab-parallel embedding all-reduces the output activation.
		TPCommBytes: actBytes,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	for l := 0; l < c.Layers; l++ {
		attnParams := 4 * h * h * bytesPerParam
		attnFLOPs := 8*s*h*h + 4*s*s*h
		// Traffic: weights once + Q/K/V/attn-probs/output activations.
		attnBytes := attnParams + (8*s*h+2*s*s)*bytesPerParam
		ops = append(ops, Op{
			Name: fmt.Sprintf("layer%d/attn", l), Kind: KindAttention,
			FLOPs:      attnFLOPs,
			Bytes:      attnBytes,
			ParamBytes: attnParams,
			ActBytes:   actBytes,
			// One all-reduce of the s×h output activation per fwd pass.
			TPCommBytes: actBytes,
			TPPrimitive: "all-reduce",
			Shardable:   true,
		})

		mlpParams := 8 * h * h * bytesPerParam
		mlpFLOPs := 16 * s * h * h
		mlpBytes := mlpParams + (2*s*h+2*4*s*h)*bytesPerParam
		ops = append(ops, Op{
			Name: fmt.Sprintf("layer%d/mlp", l), Kind: KindMLP,
			FLOPs:       mlpFLOPs,
			Bytes:       mlpBytes,
			ParamBytes:  mlpParams,
			ActBytes:    actBytes,
			TPCommBytes: actBytes,
			TPPrimitive: "all-reduce",
			Shardable:   true,
		})
	}

	// LM head: projection back to vocabulary (weights tied with embedding
	// in many implementations; we keep separate compute, zero extra params).
	ops = append(ops, Op{
		Name: "lm-head", Kind: KindHead,
		FLOPs:       2 * s * h * float64(c.VocabSize),
		Bytes:       float64(c.VocabSize)*h*bytesPerParam + actBytes + s*float64(c.VocabSize)*bytesPerParam,
		ParamBytes:  0,
		ActBytes:    s * 4, // loss scalar-ish; negligible boundary traffic
		TPCommBytes: actBytes,
		TPPrimitive: "all-reduce",
		Shardable:   true,
	})

	return &Graph{
		Name:         c.Name,
		Family:       "gpt",
		SeqLen:       c.SeqLen,
		Ops:          ops,
		Nominal:      c.Nominal,
		ActMemFactor: 5,
	}
}
