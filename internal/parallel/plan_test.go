package parallel

import (
	"testing"
	"testing/quick"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
)

func graph(t *testing.T, name string) *model.Graph {
	t.Helper()
	g, err := model.BuildClustered(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPureDPShape(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	p := PureDP(g, 4)
	if p.PipelineDegree() != 1 || p.TotalGPUs() != 4 {
		t.Fatalf("PureDP: %s", p)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.String() != "DP4" {
		t.Errorf("String() = %q", p.String())
	}
	if p.Degrees() != "DP4" {
		t.Errorf("Degrees() = %q", p.Degrees())
	}
}

func TestPureTPShape(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	p := PureTP(g, 8)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.String() != "TP8" || p.Degrees() != "TP8" {
		t.Errorf("%q / %q", p.String(), p.Degrees())
	}
}

func TestEvenPipeline(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	p, err := EvenPipeline(g, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.PipelineDegree() != 4 || p.TotalGPUs() != 8 {
		t.Fatalf("pipeline shape wrong: %s", p)
	}
	if p.NumMicrobatches != DefaultMicrobatches(4) {
		t.Errorf("microbatches = %d", p.NumMicrobatches)
	}
	if p.Degrees() != "PP4,DP2" {
		t.Errorf("Degrees() = %q", p.Degrees())
	}
}

func TestEvenPipelineTooManyStages(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	if _, err := EvenPipeline(g, len(g.Ops)+1, 1, 1); err == nil {
		t.Fatal("expected error for more stages than ops")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	n := len(g.Ops)
	bad := &Plan{
		Stages: []StagePlan{
			{OpStart: 0, OpEnd: n / 2, DP: 1, TP: 1},
			{OpStart: n/2 + 1, OpEnd: n, DP: 1, TP: 1}, // gap
		},
		NumMicrobatches: 8,
	}
	if err := bad.Validate(g); err == nil {
		t.Fatal("gap in stage coverage should fail")
	}
	short := &Plan{
		Stages:          []StagePlan{{OpStart: 0, OpEnd: n - 1, DP: 1, TP: 1}},
		NumMicrobatches: 4,
	}
	if err := short.Validate(g); err == nil {
		t.Fatal("incomplete coverage should fail")
	}
	zero := &Plan{
		Stages:          []StagePlan{{OpStart: 0, OpEnd: n, DP: 0, TP: 1}},
		NumMicrobatches: 4,
	}
	if err := zero.Validate(g); err == nil {
		t.Fatal("zero DP should fail")
	}
	noMicro := PureDP(g, 2)
	noMicro.NumMicrobatches = 0
	if err := noMicro.Validate(g); err == nil {
		t.Fatal("zero microbatches should fail")
	}
	if err := (&Plan{}).Validate(g); err == nil {
		t.Fatal("empty plan should fail")
	}
}

func TestMaxStageGPUs(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	n := len(g.Ops)
	p := &Plan{
		Stages: []StagePlan{
			{OpStart: 0, OpEnd: n / 2, DP: 4, TP: 2},
			{OpStart: n / 2, OpEnd: n, DP: 2, TP: 1},
		},
		NumMicrobatches: 8,
	}
	if p.MaxStageGPUs() != 8 || p.TotalGPUs() != 10 {
		t.Fatalf("gpu accounting wrong: max=%d total=%d", p.MaxStageGPUs(), p.TotalGPUs())
	}
}

func TestDPMemoryDominates(t *testing.T) {
	// §1 Case#2: static DP consumes the most memory among all parallelism.
	g := graph(t, "GPT-2.6B")
	spec := hw.MustLookup("A40")
	dpMem, _ := PlanMemory(g, PureDP(g, 4), spec, 128)
	tpMem, _ := PlanMemory(g, PureTP(g, 4), spec, 128)
	pp, err := EvenPipeline(g, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ppMem, _ := PlanMemory(g, pp, spec, 128)
	if dpMem <= tpMem || dpMem <= ppMem {
		t.Errorf("DP memory %v should exceed TP %v and PP %v", dpMem, tpMem, ppMem)
	}
}

func TestTPShardsStaticMemory(t *testing.T) {
	g := graph(t, "GPT-2.6B")
	m1 := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 1, TP: 1}, 128, 4, 0, 1)
	m4 := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: 1, TP: 4}, 128, 4, 0, 1)
	if m4 >= m1/2 {
		t.Errorf("TP4 memory %v should be well under TP1 %v", m4, m1)
	}
}

func TestGPT26BOOMOnV100DP(t *testing.T) {
	// Fig. 2(b) / Fig. 3(a): GPT-2.6B cannot run pure-DP on 32-40 GB parts.
	g := graph(t, "GPT-2.6B")
	for _, typ := range []string{"V100", "A100"} {
		spec := hw.MustLookup(typ)
		if _, fits := PlanMemory(g, PureDP(g, 4), spec, 128); fits {
			t.Errorf("GPT-2.6B pure DP should OOM on %s", typ)
		}
	}
	// But an AP plan (PP2 × TP2) fits the same V100s.
	pp, err := EvenPipeline(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, fits := PlanMemory(g, pp, hw.MustLookup("V100"), 128); !fits {
		t.Error("PP2xTP2 should fit GPT-2.6B on V100")
	}
}

func TestMinDPGPUs(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	a40 := MinDPGPUs(g, hw.MustLookup("A40"), 128, 16)
	if a40 == 0 {
		t.Fatal("GPT-1.3B should fit DP on some A40 count")
	}
	// A10 (24 GB) can never hold GPT-2.6B's Adam state (≈42 GB static,
	// replicated on every DP rank): MinDPGPUs reports infeasible.
	big := graph(t, "GPT-2.6B")
	a10 := MinDPGPUs(big, hw.MustLookup("A10"), 128, 16)
	if a10 != 0 {
		t.Errorf("GPT-2.6B DP should never fit A10, got %d", a10)
	}
}

func TestMemoryMonotoneInDP(t *testing.T) {
	// More DP replicas shrink per-replica activations but keep static
	// state constant: memory must be non-increasing in DP.
	g := graph(t, "WRes-1B")
	f := func(raw uint8) bool {
		dp := 1 << (raw % 4) // 1..8
		m1 := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: dp, TP: 1}, 256, 4, 0, 1)
		m2 := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: len(g.Ops), DP: dp * 2, TP: 1}, 256, 4, 0, 1)
		return m2 <= m1+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEarlierStagesHoldMoreMicrobatches(t *testing.T) {
	// 1F1B: stage 0 keeps more in-flight microbatches than the last stage.
	g := graph(t, "GPT-1.3B")
	half := len(g.Ops) / 2
	first := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: half, DP: 1, TP: 1}, 128, 8, 0, 2)
	// Same operator range pretending it were the last stage:
	last := StageMemoryBytes(g, StagePlan{OpStart: 0, OpEnd: half, DP: 1, TP: 1}, 128, 8, 1, 2)
	if first <= last {
		t.Errorf("first stage %v should hold more memory than last %v", first, last)
	}
}

func TestPlanStringForms(t *testing.T) {
	g := graph(t, "GPT-1.3B")
	n := len(g.Ops)
	p := &Plan{
		Stages: []StagePlan{
			{OpStart: 0, OpEnd: n / 2, DP: 2, TP: 2},
			{OpStart: n / 2, OpEnd: n, DP: 1, TP: 4},
		},
		NumMicrobatches: 8,
	}
	if got := p.String(); got != "PP2[DP2xTP2,TP4]" {
		t.Errorf("String() = %q", got)
	}
	if got := p.Degrees(); got != "PP2,DP2,TP2" {
		t.Errorf("Degrees() = %q", got)
	}
	var nilPlan *Plan
	if nilPlan.String() != "<empty>" {
		t.Error("nil plan String()")
	}
}

func TestDefaultMicrobatchesRule(t *testing.T) {
	// §5.1: number of microbatches = 4× the number of pipeline stages.
	for s := 1; s <= 8; s++ {
		if DefaultMicrobatches(s) != 4*s {
			t.Fatalf("DefaultMicrobatches(%d) = %d", s, DefaultMicrobatches(s))
		}
	}
}

func TestStagesKeyDistinguishesRanges(t *testing.T) {
	// Plan.String collapses operator ranges ("PP2[DP2,DP2]" for any
	// balanced split); the memo/dedup key must not.
	a := []StagePlan{{OpStart: 0, OpEnd: 4, DP: 2, TP: 1}, {OpStart: 4, OpEnd: 8, DP: 2, TP: 1}}
	b := []StagePlan{{OpStart: 0, OpEnd: 3, DP: 2, TP: 1}, {OpStart: 3, OpEnd: 8, DP: 2, TP: 1}}
	if StagesKey(a) == StagesKey(b) {
		t.Fatal("keys collide across different partitions")
	}
	if StagesKey(a) != StagesKey([]StagePlan{a[0], a[1]}) {
		t.Fatal("key is not a pure function of the stage values")
	}
	// Multi-digit fields must not concatenate ambiguously (e.g. 1,12 vs 11,2).
	c := []StagePlan{{OpStart: 1, OpEnd: 12, DP: 1, TP: 1}}
	d := []StagePlan{{OpStart: 11, OpEnd: 2, DP: 1, TP: 1}}
	if StagesKey(c) == StagesKey(d) {
		t.Fatal("ambiguous digit concatenation")
	}
}
