package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RngDiscipline keeps scheduling and fault randomness on derived,
// seeded streams. Two rules, enforced in the scheduling/fault zone
// (internal/{sched,sim,planner,faults,trace,server}):
//
//  1. math/rand and math/rand/v2 are banned outright: their generators
//     are either globally seeded process state or platform-sensitive,
//     and a single stray call forks the (seed → schedule) function the
//     paper's reproducibility claims rest on. Every stream must be
//     derived from the run seed via internal/rng.Derive, which is a
//     pure function of (seed, stream keys).
//
//  2. Package-level rng generator state is banned even for internal/
//     rng types: a global *rng.SplitMix64 is shared mutable state whose
//     consumption order depends on goroutine interleaving. Streams
//     must be derived per entity at the point of use.
var RngDiscipline = &Analyzer{
	Name: "rngdiscipline",
	Doc: "report math/rand use and global RNG state in scheduling/fault code; " +
		"derive per-entity streams with internal/rng.Derive instead",
	Scope: []string{
		"internal/sched", "internal/sim", "internal/planner",
		"internal/faults", "internal/trace", "internal/server",
	},
	SkipTests: true,
	Run:       runRngDiscipline,
}

func runRngDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"%s in scheduling/fault code: derive a seeded stream with internal/rng.Derive instead", path)
			}
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || obj.Parent() != pass.Pkg.Scope() {
						continue
					}
					if isRNGType(obj.Type()) {
						pass.Reportf(name.Pos(),
							"package-level RNG %q is shared mutable stream state: derive a stream at the point of use with internal/rng.Derive", name.Name)
					}
				}
			}
		}
	}
	return nil
}

// isRNGType reports whether t is (a pointer to) an internal/rng
// generator or a math/rand source/generator type.
func isRNGType(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == ModulePath+"/internal/rng" ||
		path == "math/rand" || path == "math/rand/v2"
}
