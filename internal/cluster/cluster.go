// Package cluster tracks runtime GPU-cluster state for the scheduler:
// typed homogeneous regions, per-node free maps, buddy-style locality-
// preserving allocation, and fragmentation accounting (§3.5: "to ensure
// job locality, Arena follows the buddy allocation rule").
package cluster

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/hw"
)

// Cluster is the mutable allocation state over a static ClusterSpec.
type Cluster struct {
	spec    hw.ClusterSpec
	regions map[string]*regionState
	allocs  map[string][]allocation // jobID -> held blocks
}

type regionState struct {
	gpuType     string
	gpusPerNode int
	freePerNode []int // free GPUs per node
	totalFree   int
	totalGPUs   int
}

type allocation struct {
	gpuType string
	node    int
	gpus    int
}

// New builds an empty (fully free) cluster from a validated spec.
func New(spec hw.ClusterSpec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		spec:    spec,
		regions: map[string]*regionState{},
		allocs:  map[string][]allocation{},
	}
	for _, r := range spec.Regions {
		g := hw.MustLookup(r.GPUType)
		rs := &regionState{
			gpuType:     r.GPUType,
			gpusPerNode: g.GPUsPerNode,
			freePerNode: make([]int, r.Nodes),
		}
		for i := range rs.freePerNode {
			rs.freePerNode[i] = g.GPUsPerNode
		}
		rs.totalFree = r.Nodes * g.GPUsPerNode
		rs.totalGPUs = rs.totalFree
		c.regions[r.GPUType] = rs
	}
	return c, nil
}

// Spec returns the underlying static specification.
func (c *Cluster) Spec() hw.ClusterSpec { return c.spec }

// GPUTypes returns the cluster's types, fastest first.
func (c *Cluster) GPUTypes() []string { return c.spec.GPUTypes() }

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int { return c.spec.TotalGPUs() }

// FreeGPUs returns the free GPU count in one typed region (0 for unknown
// types).
func (c *Cluster) FreeGPUs(gpuType string) int {
	rs, ok := c.regions[gpuType]
	if !ok {
		return 0
	}
	return rs.totalFree
}

// TotalFree returns the cluster-wide free GPU count.
func (c *Cluster) TotalFree() int {
	total := 0
	for _, rs := range c.regions {
		total += rs.totalFree
	}
	return total
}

// Utilization returns the fraction of GPUs currently allocated.
func (c *Cluster) Utilization() float64 {
	total := c.TotalGPUs()
	if total == 0 {
		return 0
	}
	return 1 - float64(c.TotalFree())/float64(total)
}

// Holding returns the job's current allocation as (type, GPU count);
// n = 0 when the job holds nothing.
func (c *Cluster) Holding(jobID string) (string, int) {
	blocks := c.allocs[jobID]
	if len(blocks) == 0 {
		return "", 0
	}
	n := 0
	for _, b := range blocks {
		n += b.gpus
	}
	return blocks[0].gpuType, n
}

// CanAlloc reports whether n GPUs of the type are allocatable right now
// under the locality rule (without mutating state).
func (c *Cluster) CanAlloc(gpuType string, n int) bool {
	rs, ok := c.regions[gpuType]
	if !ok || n < 1 || rs.totalFree < n {
		return false
	}
	if n <= rs.gpusPerNode {
		// Best-fit within one node.
		for _, free := range rs.freePerNode {
			if free >= n {
				return true
			}
		}
		return false
	}
	// Multi-node: require fully free nodes (rack-affine buddy blocks).
	if n%rs.gpusPerNode != 0 {
		// Round up to whole nodes: the tail shares a node with nothing else.
	}
	needed := (n + rs.gpusPerNode - 1) / rs.gpusPerNode
	freeNodes := 0
	for _, free := range rs.freePerNode {
		if free == rs.gpusPerNode {
			freeNodes++
		}
	}
	return freeNodes >= needed
}

// Alloc reserves n GPUs of the type for a job. The job must not already
// hold resources (scale operations free first, then re-allocate — the
// checkpoint-resume path of §4).
func (c *Cluster) Alloc(jobID, gpuType string, n int) error {
	if len(c.allocs[jobID]) != 0 {
		return fmt.Errorf("cluster: job %s already holds resources", jobID)
	}
	rs, ok := c.regions[gpuType]
	if !ok {
		return fmt.Errorf("cluster: no region for %s", gpuType)
	}
	if n < 1 {
		return fmt.Errorf("cluster: alloc of %d GPUs", n)
	}
	if !c.CanAlloc(gpuType, n) {
		return fmt.Errorf("cluster: cannot allocate %d×%s", n, gpuType)
	}
	var blocks []allocation
	if n <= rs.gpusPerNode {
		// Best fit: the fullest node that still fits, preserving big blocks.
		best, bestFree := -1, rs.gpusPerNode+1
		for i, free := range rs.freePerNode {
			if free >= n && free < bestFree {
				best, bestFree = i, free
			}
		}
		rs.freePerNode[best] -= n
		rs.totalFree -= n
		blocks = append(blocks, allocation{gpuType: gpuType, node: best, gpus: n})
	} else {
		needed := (n + rs.gpusPerNode - 1) / rs.gpusPerNode
		remaining := n
		for i := 0; i < len(rs.freePerNode) && needed > 0; i++ {
			if rs.freePerNode[i] != rs.gpusPerNode {
				continue
			}
			take := rs.gpusPerNode
			if remaining < take {
				take = remaining
			}
			rs.freePerNode[i] -= take
			rs.totalFree -= take
			blocks = append(blocks, allocation{gpuType: gpuType, node: i, gpus: take})
			remaining -= take
			needed--
		}
		if remaining != 0 {
			// CanAlloc guaranteed feasibility; this is a programming error.
			panic("cluster: allocation accounting mismatch")
		}
	}
	c.allocs[jobID] = blocks
	return nil
}

// Free releases everything a job holds. Freeing an unknown job is a no-op.
func (c *Cluster) Free(jobID string) {
	for _, b := range c.allocs[jobID] {
		rs := c.regions[b.gpuType]
		rs.freePerNode[b.node] += b.gpus
		rs.totalFree += b.gpus
	}
	delete(c.allocs, jobID)
}

// LargestAllocatable returns the biggest power-of-two GPU count currently
// allocatable in the typed region under the locality rule.
func (c *Cluster) LargestAllocatable(gpuType string) int {
	best := 0
	for n := 1; n <= c.regionTotal(gpuType); n *= 2 {
		if c.CanAlloc(gpuType, n) {
			best = n
		}
	}
	return best
}

func (c *Cluster) regionTotal(gpuType string) int {
	rs, ok := c.regions[gpuType]
	if !ok {
		return 0
	}
	return rs.totalGPUs
}

// Fragmentation returns the fraction of a region's free GPUs that sit on
// partially occupied nodes — free capacity that cannot serve multi-node
// jobs without migration (§3.5's defragmentation motivation).
func (c *Cluster) Fragmentation(gpuType string) float64 {
	rs, ok := c.regions[gpuType]
	if !ok || rs.totalFree == 0 {
		return 0
	}
	fragmented := 0
	for _, free := range rs.freePerNode {
		if free > 0 && free < rs.gpusPerNode {
			fragmented += free
		}
	}
	return float64(fragmented) / float64(rs.totalFree)
}

// Snapshot returns a human-readable free-capacity summary, deterministic
// across runs.
func (c *Cluster) Snapshot() string {
	types := c.GPUTypes()
	sort.Strings(types)
	out := ""
	for _, t := range types {
		out += fmt.Sprintf("%s:%d/%d ", t, c.FreeGPUs(t), c.regionTotal(t))
	}
	return out
}
