// Package model provides analytic operator graphs for the three model
// families the paper evaluates (Table 2): GPT-3, GShard MoE, and
// Wide-ResNet. Arena's planner and profiler consume only static per-operator
// information — FLOPs, memory traffic, parameter bytes, activation bytes
// (§3.3: "Arena calculates operator FLOPs and memory access from static
// information (e.g., shapes)") — so closed-form graphs built from standard
// transformer/conv arithmetic substitute exactly for XLA HLO analysis.
//
// All per-sample quantities are for the *forward* pass of one sample (one
// sequence for language models, one image for Wide-ResNet); training costs
// (backward ≈ 2× forward) are applied by the execution engine.
package model

import (
	"fmt"
	"math"
)

// OpKind classifies a (clustered) operator; kernel-efficiency jitter and
// tensor-parallel communication patterns are keyed on it.
type OpKind string

// Operator kinds appearing in the three model families.
const (
	KindEmbedding OpKind = "embedding"
	KindAttention OpKind = "attention"
	KindMLP       OpKind = "mlp"
	KindMoE       OpKind = "moe"
	KindConv      OpKind = "conv"
	KindHead      OpKind = "head"
	KindNorm      OpKind = "norm"
)

// Op is one (possibly pre-clustered) operator of a model graph. Quantities
// are per forward pass of a single sample unless noted.
type Op struct {
	Name string
	Kind OpKind

	FLOPs float64 // forward floating-point operations per sample
	Bytes float64 // forward memory traffic per sample (reads+writes)

	ParamBytes float64 // FP16 parameter bytes held by this operator
	ActBytes   float64 // output activation bytes per sample (stage-boundary P2P volume)

	// TPCommBytes is the per-sample volume all-reduced across the tensor-
	// parallel group during the forward pass when this operator is sharded
	// (Megatron-style: activations re-synchronized after row-parallel
	// matmuls). Backward incurs the mirrored volume. For MoE operators this
	// models the expert-parallel all-to-all instead.
	TPCommBytes float64

	// TPPrimitive is the collective used for intra-operator parallelism
	// (all-reduce for dense ops, all-to-all for MoE dispatch).
	TPPrimitive string

	// Shardable reports whether tensor/model parallelism can split this
	// operator. Embeddings and heads are shardable in practice; we keep
	// them shardable with their own comm volumes.
	Shardable bool
}

// Intensity returns the operator's arithmetic intensity in FLOPs per byte,
// the roofline model's x-axis (§3.3, Eq. 2).
func (o Op) Intensity() float64 {
	if o.Bytes <= 0 {
		return 0
	}
	return o.FLOPs / o.Bytes
}

// Graph is a model's operator sequence together with workload metadata.
type Graph struct {
	Name    string  // e.g. "GPT-1.3B"
	Family  string  // "gpt", "moe", "wresnet"
	SeqLen  int     // tokens per sample (0 for vision models)
	Ops     []Op    // topological (sequential) operator order
	Nominal float64 // nominal parameter count (e.g. 1.3e9), for reporting

	// ActMemFactor scales per-operator boundary activations (ActBytes) to
	// the *live* activation footprint retained for the backward pass:
	// transformers keep Q/K/V projections, attention probabilities and MLP
	// intermediates (~5× the boundary tensor with selective
	// rematerialization), conv nets retain post-BN/ReLU maps (~2.5×).
	ActMemFactor float64
}

// ParamBytes returns total FP16 parameter bytes of the graph.
func (g *Graph) ParamBytes() float64 {
	var total float64
	for _, o := range g.Ops {
		total += o.ParamBytes
	}
	return total
}

// Params returns the total parameter count (ParamBytes / 2 for FP16).
func (g *Graph) Params() float64 { return g.ParamBytes() / 2 }

// FwdFLOPs returns total forward FLOPs per sample.
func (g *Graph) FwdFLOPs() float64 {
	var total float64
	for _, o := range g.Ops {
		total += o.FLOPs
	}
	return total
}

// TrainFLOPs returns total training FLOPs per sample (fwd + bwd ≈ 3× fwd).
func (g *Graph) TrainFLOPs() float64 { return 3 * g.FwdFLOPs() }

// Validate checks structural invariants: non-empty, positive FLOPs and
// traffic on every op, monotone non-negative parameters.
func (g *Graph) Validate() error {
	if len(g.Ops) == 0 {
		return fmt.Errorf("model: graph %s has no operators", g.Name)
	}
	for i, o := range g.Ops {
		if o.FLOPs < 0 || o.Bytes <= 0 || o.ParamBytes < 0 || o.ActBytes < 0 {
			return fmt.Errorf("model: graph %s op %d (%s) has invalid quantities", g.Name, i, o.Name)
		}
	}
	return nil
}

// Cluster merges the graph's operators into at most o contiguous clusters,
// balancing per-cluster forward FLOPs (the paper pre-clusters operators to
// control problem size, O = 16 in Alpa; §3.3 footnote). The partition is
// computed with dynamic programming minimizing the maximum cluster FLOPs,
// which keeps clusters as uniform as the layer structure allows. Cluster
// metadata is aggregated: FLOPs/bytes/params sum; ActBytes and TP fields
// take the values at the cluster boundary (its last operator).
func (g *Graph) Cluster(o int) *Graph {
	n := len(g.Ops)
	if o <= 0 || o >= n {
		cp := *g
		cp.Ops = append([]Op(nil), g.Ops...)
		return &cp
	}
	bounds := balancedPartition(g.Ops, o)
	clustered := make([]Op, 0, o)
	start := 0
	for ci, end := range bounds {
		merged := mergeOps(g.Ops[start:end], fmt.Sprintf("%s/cluster%d", g.Name, ci))
		clustered = append(clustered, merged)
		start = end
	}
	cp := *g
	cp.Ops = clustered
	return &cp
}

// balancedPartition returns the end indices (exclusive) of k contiguous
// groups of ops minimizing the maximum group FLOPs, via binary search on
// the bottleneck value with a greedy feasibility check.
func balancedPartition(ops []Op, k int) []int {
	n := len(ops)
	prefix := make([]float64, n+1)
	for i, op := range ops {
		prefix[i+1] = prefix[i] + op.FLOPs
	}
	var maxOp float64
	for _, op := range ops {
		maxOp = math.Max(maxOp, op.FLOPs)
	}
	lo, hi := maxOp, prefix[n]
	feasible := func(cap float64) bool {
		groups, sum := 1, 0.0
		for _, op := range ops {
			if sum+op.FLOPs > cap {
				groups++
				sum = 0
			}
			sum += op.FLOPs
		}
		return groups <= k
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Greedy split at the found bottleneck; then pad boundaries so we emit
	// exactly k groups (bottleneck may allow fewer).
	var bounds []int
	sum := 0.0
	for i, op := range ops {
		if sum+op.FLOPs > hi && len(bounds) < k-1 {
			bounds = append(bounds, i)
			sum = 0
		}
		sum += op.FLOPs
	}
	// Force exactly k groups by splitting the largest remaining groups.
	for len(bounds) < k-1 {
		bounds = splitLargest(ops, bounds)
	}
	return append(bounds, n)
}

// splitLargest splits the group with the largest FLOPs at its FLOPs
// midpoint, returning the new sorted bounds.
func splitLargest(ops []Op, bounds []int) []int {
	full := append(append([]int{0}, bounds...), len(ops))
	bestIdx, bestFlops := -1, -1.0
	for gi := 0; gi+1 < len(full); gi++ {
		if full[gi+1]-full[gi] < 2 {
			continue // cannot split a singleton
		}
		var f float64
		for _, op := range ops[full[gi]:full[gi+1]] {
			f += op.FLOPs
		}
		if f > bestFlops {
			bestFlops, bestIdx = f, gi
		}
	}
	if bestIdx < 0 {
		return bounds // nothing splittable; caller will emit fewer groups
	}
	lo, hi := full[bestIdx], full[bestIdx+1]
	var acc float64
	cut := lo + 1
	for i := lo; i < hi-1; i++ {
		acc += ops[i].FLOPs
		if acc >= bestFlops/2 {
			cut = i + 1
			break
		}
	}
	out := make([]int, 0, len(bounds)+1)
	inserted := false
	for _, b := range bounds {
		if !inserted && cut < b {
			out = append(out, cut)
			inserted = true
		}
		out = append(out, b)
	}
	if !inserted {
		out = append(out, cut)
	}
	return out
}

// mergeOps aggregates a contiguous operator run into one clustered Op.
func mergeOps(ops []Op, name string) Op {
	if len(ops) == 1 {
		merged := ops[0]
		return merged
	}
	merged := Op{Name: name, Kind: dominantKind(ops), Shardable: true}
	for _, o := range ops {
		merged.FLOPs += o.FLOPs
		merged.Bytes += o.Bytes
		merged.ParamBytes += o.ParamBytes
		merged.TPCommBytes += o.TPCommBytes
		if !o.Shardable {
			merged.Shardable = false
		}
	}
	last := ops[len(ops)-1]
	merged.ActBytes = last.ActBytes
	merged.TPPrimitive = dominantPrimitive(ops)
	return merged
}

func dominantKind(ops []Op) OpKind {
	flops := map[OpKind]float64{}
	for _, o := range ops {
		flops[o.Kind] += o.FLOPs
	}
	best, bestF := ops[0].Kind, -1.0
	for _, k := range []OpKind{KindMoE, KindConv, KindMLP, KindAttention, KindEmbedding, KindHead, KindNorm} {
		if f, ok := flops[k]; ok && f > bestF {
			best, bestF = k, f
		}
	}
	return best
}

func dominantPrimitive(ops []Op) string {
	vol := map[string]float64{}
	for _, o := range ops {
		if o.TPPrimitive != "" {
			vol[o.TPPrimitive] += o.TPCommBytes
		}
	}
	best, bestV := "all-reduce", -1.0
	for _, p := range []string{"all-reduce", "all-to-all", "all-gather"} {
		if v, ok := vol[p]; ok && v > bestV {
			best, bestV = p, v
		}
	}
	return best
}
