package perfdb

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/store"
)

var storeTestWorkloads = []model.Workload{
	{Model: "GPT-1.3B", GlobalBatch: 128},
	{Model: "WRes-1B", GlobalBatch: 256},
}

func storeTestOpts(ws ...model.Workload) Options {
	return Options{GPUTypes: []string{"A40"}, MaxN: 8, Workloads: ws}
}

// equalDB asserts two databases are bit-identical in every serialized
// dimension (entries, wall times, metadata).
func equalDBExact(t *testing.T, got, want *DB) {
	t.Helper()
	if got.seed != want.seed || got.MaxN != want.MaxN || !reflect.DeepEqual(got.GPUTypes, want.GPUTypes) {
		t.Fatalf("metadata mismatch: %v/%d/%d vs %v/%d/%d",
			got.GPUTypes, got.MaxN, got.seed, want.GPUTypes, want.MaxN, want.seed)
	}
	if len(got.entries) != len(want.entries) {
		t.Fatalf("entry count %d vs %d", len(got.entries), len(want.entries))
	}
	for k, we := range want.entries {
		ge, ok := got.entries[k]
		if !ok {
			t.Fatalf("missing entry %+v", k)
		}
		if *ge != *we {
			t.Fatalf("entry %+v differs:\n got %+v\nwant %+v", k, *ge, *we)
		}
	}
	for _, m := range []struct {
		name      string
		got, want map[model.Workload]float64
	}{
		{"arenaWall", got.arenaProfileWall, want.arenaProfileWall},
		{"dpWall", got.dpProfileWall, want.dpProfileWall},
		{"siaWall", got.siaProfileWall, want.siaProfileWall},
	} {
		if !reflect.DeepEqual(m.got, m.want) {
			t.Fatalf("%s differs: %v vs %v", m.name, m.got, m.want)
		}
	}
}

// TestStorePartialBuildMatchesColdBuild is the partial-invalidation
// determinism proof: build workload A alone (persisting its column), then
// request {A, B} through the store — only B's column is built, A's is
// reused from disk — and the merged database must be bit-identical to a
// cold full build of {A, B}.
func TestStorePartialBuildMatchesColdBuild(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads[0]), st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BuiltColumns != 1 || stats.LoadedColumns != 0 {
		t.Fatalf("first build: %+v", stats)
	}
	if len(first.Keys()) == 0 {
		t.Fatal("first build produced no entries")
	}

	merged, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads...), st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoadedColumns != 1 || stats.BuiltColumns != 1 {
		t.Fatalf("partial build should load 1 and build 1 column, got %+v", stats)
	}

	cold, err := Build(exec.NewEngine(42), storeTestOpts(storeTestWorkloads...))
	if err != nil {
		t.Fatal(err)
	}
	equalDBExact(t, merged, cold)

	// A third run is a full store hit.
	warm, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads...), st)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromStore() || stats.LoadedColumns != 2 {
		t.Fatalf("warm run should serve both columns from the store, got %+v", stats)
	}
	equalDBExact(t, warm, cold)
}

// TestStoreColumnSharedAcrossWorkloadSets verifies content addressing
// shares columns between different request mixes: a request for {A} hits
// the column a {A, B} build wrote.
func TestStoreColumnSharedAcrossWorkloadSets(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads...), st); err != nil {
		t.Fatal(err)
	}
	_, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads[1]), st)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromStore() {
		t.Fatalf("subset request should be served from the store, got %+v", stats)
	}
}

// TestStoreSeedInvalidation verifies a different seed misses every column
// (the engine fingerprint is part of the key).
func TestStoreSeedInvalidation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := storeTestOpts(storeTestWorkloads[0])
	if _, _, err := BuildOrLoadStore(ctx, exec.NewEngine(42), opts, st); err != nil {
		t.Fatal(err)
	}
	_, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(7), opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoadedColumns != 0 || stats.BuiltColumns != 1 {
		t.Fatalf("other seed must rebuild, got %+v", stats)
	}
}

// TestStoreCorruptColumnRebuilds verifies the corruption path: a truncated
// column object is skipped with a typed error and transparently rebuilt,
// and the result still matches a cold build.
func TestStoreCorruptColumnRebuilds(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := storeTestOpts(storeTestWorkloads[0])
	if _, _, err := BuildOrLoadStore(ctx, exec.NewEngine(42), opts, st); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "perfdb"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(dir, "perfdb", e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	db, stats, err := BuildOrLoadStore(ctx, exec.NewEngine(42), opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BuiltColumns != 1 || len(stats.Skipped) != 1 {
		t.Fatalf("corrupt column should rebuild with one skip, got %+v", stats)
	}
	if !errors.Is(stats.Skipped[0], store.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", stats.Skipped[0])
	}
	cold, err := Build(exec.NewEngine(42), opts)
	if err != nil {
		t.Fatal(err)
	}
	equalDBExact(t, db, cold)

	// The rebuild re-persisted the column: next run hits.
	_, stats, err = BuildOrLoadStore(ctx, exec.NewEngine(42), opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FromStore() {
		t.Fatalf("repaired store should hit, got %+v", stats)
	}
}

// TestStoreCancellation verifies a cancelled context aborts the build
// phase with ctx.Err() and no database.
func TestStoreCancellation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db, _, err := BuildOrLoadStore(ctx, exec.NewEngine(42), storeTestOpts(storeTestWorkloads[0]), st)
	if db != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled build, got db=%v err=%v", db, err)
	}
}
