package planner

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

func grid(modelName string, gb int, typ string, n, s int) core.Grid {
	return core.Grid{
		Workload: model.Workload{Model: modelName, GlobalBatch: gb},
		GPUType:  typ, N: n, S: s,
	}
}

func planGrid(t *testing.T, modelName string, gb int, typ string, n, s int) (*model.Graph, *GridPlan) {
	t.Helper()
	g, err := model.BuildClustered(modelName)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := New().PlanGrid(g, grid(modelName, gb, typ, n, s))
	if err != nil {
		t.Fatal(err)
	}
	return g, gp
}

func TestPartitionEnumerationCount(t *testing.T) {
	// The planner must enumerate exactly C(O−1, s−1) partitions (§3.3).
	cases := []struct {
		s, want int
	}{{1, 1}, {2, 15}, {3, 105}, {4, 455}}
	for _, c := range cases {
		_, gp := planGrid(t, "GPT-1.3B", 128, "A40", 8, c.s)
		if gp.CandidatesEvaluated != c.want {
			t.Errorf("s=%d: evaluated %d partitions, want %d", c.s, gp.CandidatesEvaluated, c.want)
		}
	}
}

func TestForEachPartitionShapes(t *testing.T) {
	var count int
	forEachPartition(6, 3, func(rank int, bounds []int) {
		if rank != count {
			t.Fatalf("rank %d at partition %d: ranks must count lexicographic emission", rank, count)
		}
		count++
		if len(bounds) != 3 || bounds[2] != 6 {
			t.Fatalf("bad bounds %v", bounds)
		}
		prev := 0
		for _, b := range bounds {
			if b <= prev {
				t.Fatalf("non-increasing bounds %v", bounds)
			}
			prev = b
		}
	})
	if count != 10 { // C(5,2)
		t.Fatalf("enumerated %d partitions, want 10", count)
	}
}

func TestNormalizeAssignmentOptimal(t *testing.T) {
	// DP result must match brute force on small instances.
	bruteBest := func(ideal []float64, n int) float64 {
		s := len(ideal)
		best := math.MaxFloat64
		var rec func(j, rem int, cost float64)
		rec = func(j, rem int, cost float64) {
			if j == s {
				if rem == 0 && cost < best {
					best = cost
				}
				return
			}
			for p := 1; p <= rem; p *= 2 {
				d := float64(p) - ideal[j]
				rec(j+1, rem-p, cost+d*d)
			}
		}
		rec(0, n, 0)
		return best
	}
	f := func(a, b, c uint8) bool {
		ideal := []float64{float64(a%8) + 0.3, float64(b%8) + 0.7, float64(c%8) + 0.1}
		n := 8
		assign, cost := normalizeAssignment(ideal, n, newCandScratch(len(ideal), n))
		if assign == nil {
			return false
		}
		sum := 0
		for _, g := range assign {
			sum += g
			if g < 1 || g&(g-1) != 0 {
				return false // must be powers of two
			}
		}
		if sum != n {
			return false
		}
		return math.Abs(cost-bruteBest(ideal, n)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAssignmentInfeasible(t *testing.T) {
	if assign, _ := normalizeAssignment([]float64{1, 1, 1}, 2, newCandScratch(3, 2)); assign != nil {
		t.Fatal("3 stages cannot share 2 GPUs")
	}
}

func TestProxyPlanValid(t *testing.T) {
	g, gp := planGrid(t, "WRes-1B", 256, "A40", 4, 2)
	if !gp.Feasible || gp.Proxy == nil {
		t.Fatal("grid should be feasible")
	}
	if err := gp.Proxy.Plan.Validate(g); err != nil {
		t.Fatal(err)
	}
	if gp.Proxy.Plan.PipelineDegree() != 2 || gp.Proxy.Plan.TotalGPUs() != 4 {
		t.Fatalf("proxy shape: %s", gp.Proxy.Plan)
	}
}

func TestFrontierNonDominated(t *testing.T) {
	_, gp := planGrid(t, "WRes-2B", 512, "A40", 8, 4)
	if len(gp.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i, a := range gp.Frontier {
		for j, b := range gp.Frontier {
			if i == j {
				continue
			}
			if b.BComp <= a.BComp && b.LComm <= a.LComm &&
				(b.BComp < a.BComp || b.LComm < a.LComm) {
				t.Fatalf("plan %d dominated by plan %d", i, j)
			}
		}
	}
}

func TestProxyOnFrontier(t *testing.T) {
	_, gp := planGrid(t, "GPT-1.3B", 128, "A40", 4, 2)
	found := false
	for _, c := range gp.Frontier {
		if c == gp.Proxy {
			found = true
		}
	}
	if !found {
		t.Fatal("proxy plan must come from the frontier")
	}
}

func TestFrontierReduction(t *testing.T) {
	pl := New()
	pl.MaxFrontier = 2
	g, _ := model.BuildClustered("WRes-2B")
	gp, err := pl.PlanGrid(g, grid("WRes-2B", 512, "A40", 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(gp.Frontier) > 2 {
		t.Fatalf("frontier not reduced: %d plans", len(gp.Frontier))
	}
	if gp.Proxy == nil {
		t.Fatal("proxy lost during reduction")
	}
}

func TestInfeasibleGrid(t *testing.T) {
	// MoE-27B (≈210 GB Adam state with experts) cannot fit 1 A10 at all.
	g, _ := model.BuildClustered("MoE-27B")
	gp, err := New().PlanGrid(g, grid("MoE-27B", 256, "A10", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if gp.Feasible {
		t.Fatal("MoE-27B on a single A10 should be infeasible")
	}
}

func TestGridShapeErrors(t *testing.T) {
	g, _ := model.BuildClustered("GPT-1.3B")
	if _, err := New().PlanGrid(g, grid("GPT-1.3B", 128, "A40", 2, 4)); err == nil {
		t.Error("s > n should error")
	}
	if _, err := New().PlanGrid(g, grid("GPT-1.3B", 128, "XPU", 4, 2)); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestOperatorLoadRoofline(t *testing.T) {
	spec := hw.MustLookup("A100")
	compute := model.Op{FLOPs: 1e12, Bytes: 1e6}
	memory := model.Op{FLOPs: 1e6, Bytes: 1e12}
	lc := OperatorLoad(compute, spec)
	lm := OperatorLoad(memory, spec)
	if math.Abs(lc-3e12/spec.PeakFLOPS)/lc > 1e-9 {
		t.Errorf("compute-bound load %v", lc)
	}
	if math.Abs(lm-3e12/spec.MemBandwidth)/lm > 1e-9 {
		t.Errorf("memory-bound load %v", lm)
	}
}

func TestBalancedPartitionWins(t *testing.T) {
	// The planner's core observation (§3.2, Fig. 6): with a fixed pipeline
	// degree, the proxy (balanced) partition outperforms a maximally
	// imbalanced one on the real engine.
	g, gp := planGrid(t, "GPT-1.3B", 128, "A40", 4, 2)
	if !gp.Feasible {
		t.Fatal("grid infeasible")
	}
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")

	proxyRes, err := eng.Evaluate(g, gp.Proxy.Plan, spec, 128)
	if err != nil || !proxyRes.Fits {
		t.Fatalf("proxy eval: %v fits=%v", err, proxyRes.Fits)
	}

	// A maximally imbalanced 1:15 partition keeping the proxy's per-stage
	// GPU shapes.
	imbalanced := &parallel.Plan{
		Stages: []parallel.StagePlan{
			{OpStart: 0, OpEnd: 1, DP: gp.Proxy.Plan.Stages[0].DP, TP: gp.Proxy.Plan.Stages[0].TP},
			{OpStart: 1, OpEnd: len(g.Ops), DP: gp.Proxy.Plan.Stages[1].DP, TP: gp.Proxy.Plan.Stages[1].TP},
		},
		NumMicrobatches: gp.Proxy.Plan.NumMicrobatches,
	}
	imbRes, err := eng.Evaluate(g, imbalanced, spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if imbRes.Fits && imbRes.Throughput >= proxyRes.Throughput {
		t.Errorf("1:15 partition (%v) should lose to proxy (%v)", imbRes.Throughput, proxyRes.Throughput)
	}
}

func TestPlannerDeterministic(t *testing.T) {
	_, gp1 := planGrid(t, "MoE-1.3B", 256, "A40", 4, 2)
	_, gp2 := planGrid(t, "MoE-1.3B", 256, "A40", 4, 2)
	if gp1.Proxy.Plan.String() != gp2.Proxy.Plan.String() {
		t.Fatal("planner not deterministic")
	}
	if gp1.Proxy.BComp != gp2.Proxy.BComp || gp1.Proxy.LComm != gp2.Proxy.LComm {
		t.Fatal("metrics not deterministic")
	}
}

func TestSingleStageGrid(t *testing.T) {
	g, gp := planGrid(t, "GPT-1.3B", 128, "A40", 4, 1)
	if !gp.Feasible {
		t.Fatal("single-stage grid should be feasible on A40")
	}
	if gp.CandidatesEvaluated != 1 {
		t.Errorf("s=1 should evaluate exactly 1 partition, got %d", gp.CandidatesEvaluated)
	}
	if gp.Proxy.Plan.PipelineDegree() != 1 || gp.Proxy.Plan.TotalGPUs() != 4 {
		t.Errorf("proxy = %s", gp.Proxy.Plan)
	}
	if err := gp.Proxy.Plan.Validate(g); err != nil {
		t.Fatal(err)
	}
}
