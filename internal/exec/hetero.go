package exec

import (
	"fmt"
	"math"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// HeteroStage assigns one pipeline stage to a GPU type: the §6 intra-job
// heterogeneity extension. Each stage remains internally homogeneous
// (stages are the natural heterogeneity boundary — pipeline stages only
// exchange small boundary activations, so slow cross-region links hurt
// far less between stages than inside a tensor- or data-parallel group).
type HeteroStage struct {
	parallel.StagePlan
	GPUType string
}

// HeteroPlan is a pipeline whose stages may run on different GPU types.
type HeteroPlan struct {
	Stages          []HeteroStage
	NumMicrobatches int
}

// TotalGPUs returns the aggregate GPU demand per type.
func (p *HeteroPlan) TotalGPUs() map[string]int {
	m := map[string]int{}
	for _, st := range p.Stages {
		m[st.GPUType] += st.GPUs()
	}
	return m
}

// Validate checks structure: contiguous coverage, known GPU types,
// positive degrees.
func (p *HeteroPlan) Validate(g *model.Graph) error {
	if len(p.Stages) == 0 || p.NumMicrobatches <= 0 {
		return fmt.Errorf("exec: empty hetero plan")
	}
	next := 0
	for i, st := range p.Stages {
		if _, err := hw.Lookup(st.GPUType); err != nil {
			return fmt.Errorf("exec: hetero stage %d: %w", i, err)
		}
		if st.OpStart != next || st.OpEnd <= st.OpStart || st.DP < 1 || st.TP < 1 {
			return fmt.Errorf("exec: hetero stage %d malformed", i)
		}
		next = st.OpEnd
	}
	if next != len(g.Ops) {
		return fmt.Errorf("exec: hetero plan covers %d of %d ops", next, len(g.Ops))
	}
	return nil
}

// EvaluateHetero measures a heterogeneous pipeline: each stage computes on
// its own GPU type; boundary transfers between stages of different types
// cross regions and pay the slower of the two NIC paths (§3.5: "allocating
// heterogeneous GPUs to a single job results in cross-region communication
// with much limited bandwidth").
func (e *Engine) EvaluateHetero(g *model.Graph, p *HeteroPlan, globalBatch int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	if globalBatch < 1 {
		return Result{}, fmt.Errorf("exec: global batch %d", globalBatch)
	}
	numStages := len(p.Stages)
	numMicro := p.NumMicrobatches
	microSamples := float64(globalBatch) / float64(numMicro)

	// Memory feasibility per stage on its own device type.
	res := Result{Fits: true}
	for i, st := range p.Stages {
		spec := hw.MustLookup(st.GPUType)
		mem := parallel.StageMemoryBytes(g, st.StagePlan, globalBatch, numMicro, i, numStages)
		if mem > res.MaxMem {
			res.MaxMem = mem
		}
		if mem > spec.MemBytes*parallel.MemoryReserveFraction {
			res.Fits = false
		}
	}
	if !res.Fits {
		return res, nil
	}

	stageTimes := make([]float64, numStages)
	p2pTimes := make([]float64, numStages)
	var computeGPU, commGPU float64
	var maxGradSyncLatency float64
	totalGPUs := 0

	for i, st := range p.Stages {
		spec := hw.MustLookup(st.GPUType)
		m := e.MeasureStage(g, st.StagePlan, spec, microSamples, spec.GPUsPerNode)
		m.BwdCompute *= e.bwdJitter(g, i)
		stageTimes[i] = m.Time()
		group := float64(st.GPUs())
		totalGPUs += st.GPUs()

		if m.GradSync > 0 {
			commGPU += m.GradSync * group
			overlap := e.OverlapFraction
			if st.GPUs() > spec.GPUsPerNode {
				overlap = e.CrossNodeOverlap
			}
			if latent := m.GradSync * (1 - overlap); latent > maxGradSyncLatency {
				maxGradSyncLatency = latent
			}
		}

		if i < numStages-1 {
			lastOp := g.Ops[st.OpEnd-1]
			next := p.Stages[i+1]
			vol := lastOp.ActBytes * microSamples
			if next.GPUType != st.GPUType {
				// Cross-region hop: bottlenecked by the slower NIC.
				a := hw.P2PTime(spec, vol, true)
				b := hw.P2PTime(hw.MustLookup(next.GPUType), vol, true)
				p2pTimes[i] = math.Max(a, b) * (1 + crossRegionPenalty)
			} else {
				p2pTimes[i] = hw.P2PTime(spec, vol, st.GPUs()+next.GPUs() > spec.GPUsPerNode)
			}
		}

		computeGPU += (m.FwdCompute + m.BwdCompute) * float64(numMicro) * group
		commGPU += 2 * m.TPComm * float64(numMicro) * group
		if i < numStages-1 {
			commGPU += p2pTimes[i] * float64(numMicro)
		}
	}

	pipeEnd := e.pipelineWavefront(g, stageTimes, p2pTimes, numMicro)
	iter := (pipeEnd + maxGradSyncLatency + e.IterOverheadS) * e.heteroJitter(g, p)

	res.IterTime = iter
	res.Throughput = float64(globalBatch) / iter
	res.StageTime = stageTimes
	res.ComputeGPUTime = computeGPU
	res.CommGPUTime = commGPU
	res.IdleGPUTime = math.Max(0, iter*float64(totalGPUs)-computeGPU-commGPU)
	return res, nil
}

// crossRegionPenalty models routing/congestion between typed regions on
// top of the slower NIC's transfer time.
const crossRegionPenalty = 0.25

// heteroJitter mirrors allocJitter for heterogeneous plans.
func (e *Engine) heteroJitter(g *model.Graph, p *HeteroPlan) float64 {
	key := uint64(len(p.Stages))
	for _, st := range p.Stages {
		key = key*31 + uint64(st.GPUs())
	}
	r := deriveFor(e.seed, g.Name, key)
	return 1.01 + 0.04*r
}
