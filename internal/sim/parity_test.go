package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// The event-heap core and the reference linear-scan core share every
// progress/accounting primitive and must produce bit-identical results —
// not approximately equal: both cores perform the same float operations
// in the same order, so reflect.DeepEqual on the summaries is the
// contract. These tests are the proof the ReferenceScan flag exists for.

// parityPolicies returns constructors for the paper's five schedulers.
// Constructors, not instances: some policies carry internal state across
// rounds, so each core run needs its own fresh policy.
func parityPolicies() map[string]func() sched.Policy {
	return map[string]func() sched.Policy{
		"fcfs":        func() sched.Policy { return policy.NewFCFS() },
		"gavel":       func() sched.Policy { return policy.NewGavel() },
		"elasticflow": func() sched.Policy { return policy.NewElasticFlow() },
		"sia":         func() sched.Policy { return policy.NewSia() },
		"arena":       func() sched.Policy { return sched.NewArena() },
	}
}

// runParityCfg is the shared divergence check: build a fresh config per
// run (policies carry state and Sources are single-use, so mkCfg must
// return independent configs), flip the oracle flag via set, and fail on
// any difference between reference and fast results.
func runParityCfg(t *testing.T, name string, mkCfg func() Config, set func(*Config, bool)) (*Result, *Result) {
	t.Helper()
	refCfg := mkCfg()
	set(&refCfg, true)
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatalf("%s: reference run: %v", name, err)
	}
	fastCfg := mkCfg()
	set(&fastCfg, false)
	fast, err := Run(fastCfg)
	if err != nil {
		t.Fatalf("%s: fast run: %v", name, err)
	}
	if !reflect.DeepEqual(ref.Summary, fast.Summary) {
		t.Errorf("%s: summaries diverge between reference and fast paths:\nref:  %+v\nfast: %+v",
			name, ref.Summary, fast.Summary)
	}
	if !reflect.DeepEqual(outcomes(ref), outcomes(fast)) {
		t.Errorf("%s: per-job outcomes diverge between reference and fast paths", name)
	}
	return ref, fast
}

// setScan flips the event-core oracle; setScore flips the policy-scoring
// oracle. Each parity axis is tested with the other axis at its default.
func setScan(cfg *Config, ref bool)  { cfg.ReferenceScan = ref }
func setScore(cfg *Config, ref bool) { cfg.ReferenceScore = ref }

// runParity runs cfg through both cores (a fresh policy each) and fails
// on any divergence.
func runParity(t *testing.T, name string, mk func() sched.Policy, cfg Config) (*Result, *Result) {
	t.Helper()
	return runParityCfg(t, name, func() Config {
		c := cfg
		c.Policy = mk()
		return c
	}, setScan)
}

// phillyStream returns a fresh streamed philly-6h source over the test
// database's workloads. Sources are single-use: call once per run.
func phillyStream(t *testing.T) *trace.Generator {
	t.Helper()
	cfg := trace.PhillySixHour(9, []string{"A40", "A10"})
	cfg.Workloads = []model.Workload{
		{Model: "WRes-1B", GlobalBatch: 256},
		{Model: "GPT-1.3B", GlobalBatch: 128},
		{Model: "GPT-2.6B", GlobalBatch: 128},
	}
	src, err := trace.Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// parityFaults is the random fault model both parity matrices share.
func parityFaults() *faults.Config {
	return &faults.Config{
		Model:              &faults.Model{Default: faults.TypeFaults{MTBF: 2 * 3600, MTTR: 1800, SlowEvery: 4 * 3600}},
		CheckpointInterval: 900,
	}
}

func TestScanHeapParityMatrix(t *testing.T) {
	// Every policy, with and without the random fault model, on the
	// standard 40-job slice trace AND a streamed philly-6h source —
	// streamed arrival staging exercises a different engine path (pull-on-
	// demand vs pre-staged pending), so the cores must agree on both.
	jobs := testJobs(t, 40)
	fm := parityFaults()
	for name, mk := range parityPolicies() {
		base := Config{
			Spec: hw.ClusterA(), Jobs: jobs, DB: db(t),
			RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
		}
		runParity(t, name, mk, base)
		withFaults := base
		withFaults.Faults = fm
		withFaults.MaxRounds = 400
		runParity(t, name+"+faults", mk, withFaults)
		for _, faulted := range []bool{false, true} {
			faulted := faulted
			label := name + "+stream"
			if faulted {
				label += "+faults"
			}
			runParityCfg(t, label, func() Config {
				c := Config{
					Spec: hw.ClusterA(), Source: phillyStream(t), DB: db(t),
					RoundSeconds: 300, MaxRounds: 400,
					IncludeUnfinished: true, Seed: 1, Policy: mk(),
				}
				if faulted {
					c.Faults = fm
				}
				return c
			}, setScan)
		}
	}
}

func TestScoreParityMatrix(t *testing.T) {
	// The incremental-scoring twin of TestScanHeapParityMatrix: every
	// policy's score caches (launch ladders, failure memos, gain heaps,
	// round-scoped score tables) against its full-rescan reference, across
	// faults on/off and slice + streamed sources. Bit-identity, not
	// tolerance: both paths are required to run the same float operations
	// in the same order on the entries they actually score.
	jobs := testJobs(t, 40)
	fm := parityFaults()
	for name, mk := range parityPolicies() {
		for _, faulted := range []bool{false, true} {
			faulted := faulted
			suffix := ""
			if faulted {
				suffix = "+faults"
			}
			runParityCfg(t, name+suffix, func() Config {
				c := Config{
					Spec: hw.ClusterA(), Jobs: jobs, DB: db(t),
					RoundSeconds: 300, IncludeUnfinished: true, Seed: 1, Policy: mk(),
				}
				if faulted {
					c.Faults = fm
					c.MaxRounds = 400
				}
				return c
			}, setScore)
			runParityCfg(t, name+"+stream"+suffix, func() Config {
				c := Config{
					Spec: hw.ClusterA(), Source: phillyStream(t), DB: db(t),
					RoundSeconds: 300, MaxRounds: 400,
					IncludeUnfinished: true, Seed: 1, Policy: mk(),
				}
				if faulted {
					c.Faults = fm
				}
				return c
			}, setScore)
		}
	}
}

func TestScoreParityArenaVariants(t *testing.T) {
	// Arena's ladders and memos key off the ablation knobs (DisableHetero
	// pins types, DisableElastic pins counts, ObjDeadline disables the
	// failure memo entirely) — every variant must match its own reference.
	jobs := testJobs(t, 40)
	for name, mk := range arenaVariants() {
		mk := mk
		runParityCfg(t, name, func() Config {
			return Config{
				Spec: hw.ClusterA(), Jobs: jobs, DB: db(t),
				RoundSeconds: 300, IncludeUnfinished: true, Seed: 1, Policy: mk(),
			}
		}, setScore)
	}
}

func TestScoreParityDeepQueue(t *testing.T) {
	// A backlog several times cluster capacity: admission failures, victim
	// shrinks and memo clears all fire repeatedly — the regime the failure
	// memo and admission window exist for, and the easiest place for a
	// subtly unsound cache to diverge.
	jobs := testJobs(t, 120)
	for _, name := range []string{"arena", "sia", "elasticflow"} {
		mk := parityPolicies()[name]
		runParityCfg(t, name+"+deep", func() Config {
			return Config{
				Spec: hw.ClusterA(), Jobs: jobs, DB: db(t),
				RoundSeconds: 300, IncludeUnfinished: true, Seed: 1, Policy: mk(),
			}
		}, setScore)
	}
}

func TestScanHeapParityFaultStorm(t *testing.T) {
	// A cluster-wide outage preempts every running job at the same
	// instant — the worst case for same-instant event ordering (many
	// crashes, completions, and requeues at one time point).
	fc := &faults.Config{Trace: stormTrace(t), CheckpointInterval: 600}
	for _, name := range []string{"fcfs", "arena"} {
		runParity(t, name+"+storm", parityPolicies()[name], Config{
			Spec: hw.ClusterA(), Jobs: longJobs(24), DB: db(t),
			RoundSeconds: 300, MaxRounds: 300,
			IncludeUnfinished: true, Seed: 1, Faults: fc,
		})
	}
}

func TestScanHeapParitySynthetic10k(t *testing.T) {
	// A 10k-job streaming synthetic trace, truncated by MaxRounds —
	// parity must hold mid-trace too, with the source only partially
	// drained at the horizon. Sources are single-use, so each core run
	// gets its own (deterministically identical) generator.
	mkCfg := func(ref bool) Config {
		src, err := trace.Stream(trace.HeliosDay(11, []string{"A40", "A10"}, 10000))
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Spec: hw.ClusterA(), Policy: policy.NewFCFS(), Source: src, DB: db(t),
			RoundSeconds: 300, MaxRounds: 400,
			IncludeUnfinished: true, Seed: 1, ReferenceScan: ref,
		}
	}
	scan, err := Run(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Run(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scan.Summary, heap.Summary) {
		t.Errorf("10k synthetic: summaries diverge between scan and heap cores")
	}
	if !reflect.DeepEqual(outcomes(scan), outcomes(heap)) {
		t.Errorf("10k synthetic: per-job outcomes diverge between scan and heap cores")
	}
	if scan.Total < 5000 {
		t.Errorf("10k synthetic saw only %d jobs inside the horizon", scan.Total)
	}
}

func TestSliceSourceMatchesJobs(t *testing.T) {
	// Config.Jobs and Config.Source = SliceSource(jobs) are the same
	// trace through two staging paths; results must be bit-identical.
	jobs := testJobs(t, 40)
	base := Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
	}
	byJobs := base
	byJobs.Jobs = jobs
	a, err := Run(byJobs)
	if err != nil {
		t.Fatal(err)
	}
	bySrc := base
	bySrc.Source = trace.SliceSource(jobs)
	b, err := Run(bySrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("Jobs vs SliceSource summaries diverge")
	}
	if !reflect.DeepEqual(outcomes(a), outcomes(b)) {
		t.Errorf("Jobs vs SliceSource per-job outcomes diverge")
	}
}

func TestSimRejectsJobsAndSource(t *testing.T) {
	_, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), DB: db(t),
		Jobs: testJobs(t, 2), Source: trace.SliceSource(nil),
	})
	if err == nil {
		t.Fatal("Jobs+Source config accepted; want error")
	}
}

func TestSimSourceWithoutSpanNeedsMaxRounds(t *testing.T) {
	// A bare Source (no Spanner) gives the engine no horizon to derive.
	src := spanlessSource{}
	_, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), DB: db(t), Source: src,
	})
	if err == nil {
		t.Fatal("span-less Source without MaxRounds accepted; want error")
	}
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), DB: db(t), Source: src,
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 {
		t.Errorf("empty span-less source simulated %d jobs", res.Total)
	}
}

type spanlessSource struct{}

func (spanlessSource) Next() (trace.Job, bool) { return trace.Job{}, false }

func TestStreamingMatchesExact(t *testing.T) {
	// Streaming mode folds terminal jobs into aggregates instead of
	// retaining them: every count must match the exact run, means must
	// agree to float tolerance (the addition order differs only for
	// censored jobs), and the raw slices must stay nil.
	jobs := testJobs(t, 40)
	base := Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
	}
	exact, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sCfg := base
	sCfg.Streaming = true
	stream, err := Run(sCfg)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Jobs != nil || stream.JCTs != nil || stream.QueueTimes != nil {
		t.Errorf("streaming run retained per-job data (Jobs=%d JCTs=%d QueueTimes=%d)",
			len(stream.Jobs), len(stream.JCTs), len(stream.QueueTimes))
	}
	if stream.Total != exact.Total || stream.Finished != exact.Finished ||
		stream.Dropped != exact.Dropped || stream.Failed != exact.Failed ||
		stream.DeadlineSatisfied != exact.DeadlineSatisfied ||
		stream.DeadlineTotal != exact.DeadlineTotal ||
		stream.Preemptions != exact.Preemptions || stream.Restarts != exact.Restarts {
		t.Errorf("streaming counters diverge from exact run:\nexact:  %+v\nstream: %+v",
			exact.Summary, stream.Summary)
	}
	approx := func(name string, a, b float64) {
		if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
			t.Errorf("%s: exact %g vs streaming %g", name, a, b)
		}
	}
	approx("AvgJCT", exact.AvgJCT, stream.AvgJCT)
	approx("AvgQueue", exact.AvgQueue, stream.AvgQueue)
	approx("GoodputGPUHours", exact.GoodputGPUHours, stream.GoodputGPUHours)
	approx("AvgReschedules", exact.AvgReschedules, stream.AvgReschedules)
	// P50/P90 are P² sketch estimates; for a few dozen observations they
	// land near — not on — the exact order statistics.
	if exact.P90JCT > 0 {
		if r := stream.P90JCT / exact.P90JCT; r < 0.5 || r > 2 {
			t.Errorf("P90JCT sketch %g implausibly far from exact %g", stream.P90JCT, exact.P90JCT)
		}
	}
}

func TestRunStopsWhenArrivalsBeyondHorizon(t *testing.T) {
	// Regression for the stop condition: a trace whose remaining
	// arrivals all land beyond the round budget used to keep the loop
	// alive (pending non-empty -> not Done) for the full MaxRounds —
	// hundreds of empty rounds deciding nothing. The loop must now stop
	// as soon as the world is provably idle until past the horizon.
	jobs := []trace.Job{{
		ID: "far-future", Workload: testJobs(t, 1)[0].Workload,
		Iterations: 100, ReqGPUs: 2, ReqType: "A40", Priority: 1,
		SubmitTime: 1e7,
	}}
	rounds := 0
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: 400, IncludeUnfinished: true, Seed: 1,
		Progress: func(core.Event) { rounds++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= 400 {
		t.Errorf("idle run burned all %d rounds; want early stop", rounds)
	}
	if rounds > 10 {
		t.Errorf("idle run took %d rounds to stop; want a handful", rounds)
	}
	if res.Total != 0 {
		t.Errorf("job beyond the horizon counted into Total=%d", res.Total)
	}
}

func TestEngineSubmitStampsNow(t *testing.T) {
	e, err := NewEngine(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), DB: db(t), MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := testJobs(t, 1)[0].Workload
	j := e.Submit(trace.Job{ID: "live", Workload: w, Iterations: 100, ReqGPUs: 2, ReqType: "A40"}, 1234)
	if j.Trace.SubmitTime != 1234 {
		t.Errorf("zero SubmitTime not stamped with now: got %g", j.Trace.SubmitTime)
	}
	j2 := e.Submit(trace.Job{ID: "replay", Workload: w, Iterations: 100, ReqGPUs: 2, ReqType: "A40", SubmitTime: 77}, 1234)
	if j2.Trace.SubmitTime != 77 {
		t.Errorf("explicit SubmitTime overwritten: got %g", j2.Trace.SubmitTime)
	}
}
