package sim

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/rng"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Engine is the simulator's world exposed one step at a time: the same
// state machine and round body RunCtx drives to completion, usable
// incrementally so a long-running scheduler daemon can feed it jobs as
// they arrive over HTTP and fire rounds from a wall clock. The batch
// simulator and internal/server literally share this code path — the
// paper's shared-scheduling-code fidelity claim (§4), made structural.
//
// An Engine is not safe for concurrent use; callers that take input from
// many goroutines (the server) serialize access themselves. All instants
// are seconds on the run timeline (see internal/clock); rounds must be
// fired with non-decreasing `now`.
type Engine struct {
	s         *state
	maxRounds int
}

// NewEngine validates the configuration and builds the initial world:
// cfg.Jobs become pending submissions exactly as RunCtx stages them. An
// empty Jobs slice is valid — the daemon starts idle and submits later.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Policy == nil || cfg.DB == nil {
		return nil, fmt.Errorf("sim: need a policy and a perfdb")
	}
	if cfg.RoundSeconds <= 0 {
		cfg.RoundSeconds = 300
	}
	if cfg.MaxPerJob <= 0 {
		cfg.MaxPerJob = cfg.DB.MaxN
	}
	cl, err := cluster.New(cfg.Spec)
	if err != nil {
		return nil, err
	}
	// Online-profiled observations belong to a single run (Fig. 4(b)'s
	// refinement loop); clear any left by a previous simulation.
	cfg.DB.ResetObservations()

	s := &state{
		cfg:     cfg,
		cluster: cl,
		noise:   rng.Derive(cfg.Seed, rng.HashString("sim-noise")),
		acct:    map[*sched.Job]*jobAcct{},
	}
	e := &Engine{s: s}
	for _, tj := range cfg.Jobs {
		w := tj.Workload
		j := &sched.Job{
			Trace:            tj,
			State:            sched.StateQueued,
			SubmittedAt:      tj.SubmitTime + cfg.Policy.ProfilePrepend(cfg.DB, w),
			LaunchedAt:       -1,
			RemainingSamples: tj.TotalSamples(),
			CurPriority:      tj.Priority,
		}
		s.pending = append(s.pending, j)
	}
	sort.SliceStable(s.pending, func(a, b int) bool {
		return s.pending[a].SubmittedAt < s.pending[b].SubmittedAt
	})

	e.maxRounds = cfg.MaxRounds
	if e.maxRounds <= 0 {
		// Horizon: trace span plus generous drain time.
		var last float64
		for _, j := range cfg.Jobs {
			if j.SubmitTime > last {
				last = j.SubmitTime
			}
		}
		e.maxRounds = int((last*3+48*3600)/cfg.RoundSeconds) + 1
	}

	if cfg.Faults.Enabled() {
		fc := cfg.Faults.WithDefaults()
		s.faults = &fc
		// Materialize the whole fault realization up front: a pure
		// function of (seed, cluster shape, horizon), untouched by
		// scheduling decisions.
		horizon := float64(e.maxRounds+1) * cfg.RoundSeconds
		if err := fc.Trace.Validate(cfg.Spec); err != nil {
			return nil, err
		}
		s.events = append(s.events, fc.Trace...)
		if fc.Model != nil {
			s.events = append(s.events, fc.Model.Schedule(cfg.Spec, cfg.Seed, horizon)...)
		}
		s.events.Sort()
	}
	return e, nil
}

// cfg returns the normalized configuration (defaults resolved).
func (e *Engine) cfg() Config { return e.s.cfg }

// RoundSeconds returns the scheduling interval after defaulting.
func (e *Engine) RoundSeconds() float64 { return e.s.cfg.RoundSeconds }

// MaxRounds returns the round bound RunCtx enforces: the configured cap,
// or the horizon derived from the initial trace. Incremental drivers
// (the server) ignore it and run for the process's lifetime.
func (e *Engine) MaxRounds() int { return e.maxRounds }

// Round fires one scheduling round at instant `now`: progress running
// jobs (and any fault events) up to now, admit newly submitted jobs,
// filter crash-backoff holds, ask the policy for its assignment, and
// apply it. Returns the policy's decision — the value the server
// journals and the crash-recovery test proves bit-identical across a
// restart.
func (e *Engine) Round(now float64) sched.Assignment {
	s := e.s
	s.advanceTo(now)
	s.admit(now)

	// Crash-restart backoff gates relaunch uniformly across policies:
	// a job still backing off is invisible this round.
	eligible := s.queued
	if s.faults != nil {
		eligible = make([]*sched.Job, 0, len(s.queued))
		for _, j := range s.queued {
			if j.NextEligibleAt <= now {
				eligible = append(eligible, j)
			}
		}
	}

	// Named rctx, not ctx: shadowing a context.Context parameter here
	// once hid a cancellation bug (the vet shadow check in CI now
	// rejects the pattern).
	rctx := &sched.Context{
		Now:       now,
		Queued:    eligible,
		Running:   s.running,
		Cluster:   s.cluster,
		DB:        s.cfg.DB,
		MaxPerJob: s.cfg.MaxPerJob,
	}
	asg := s.cfg.Policy.Assign(rctx)
	s.apply(now, asg)

	s.sampleThroughput(now)
	return asg
}

// Submit registers a job after construction — the daemon's submit path.
// The job's SubmittedAt gains the policy's profiling prepend exactly as
// trace jobs do, and it is inserted keeping pending sorted by effective
// submission time with ties in arrival order, so an incremental sequence
// of Submits reproduces the batch constructor's stable sort and a
// journal replay reconstructs identical state.
func (e *Engine) Submit(tj trace.Job) *sched.Job {
	s := e.s
	j := &sched.Job{
		Trace:            tj,
		State:            sched.StateQueued,
		SubmittedAt:      tj.SubmitTime + s.cfg.Policy.ProfilePrepend(s.cfg.DB, tj.Workload),
		LaunchedAt:       -1,
		RemainingSamples: tj.TotalSamples(),
		CurPriority:      tj.Priority,
	}
	// First index whose SubmittedAt exceeds the new job's: insert there,
	// i.e. after every earlier-or-equal submission.
	i := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].SubmittedAt > j.SubmittedAt
	})
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = j
	return j
}

// Cancel abandons a job at instant `now`: a pending or queued job is
// dropped outright; a running job is evicted and its resources freed.
// Finished, dropped and failed jobs are left untouched. Reports whether
// a live job was cancelled.
func (e *Engine) Cancel(id string, now float64) bool {
	s := e.s
	for i, j := range s.pending {
		if j.Trace.ID == id {
			j.State = sched.StateDropped
			j.FinishedAt = now
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.done_ = append(s.done_, j)
			return true
		}
	}
	if j := s.findQueued(id); j != nil {
		j.State = sched.StateDropped
		j.FinishedAt = now
		s.queued = removeJob(s.queued, j)
		s.done_ = append(s.done_, j)
		return true
	}
	for _, j := range s.running {
		if j.Trace.ID == id {
			s.cluster.Free(id)
			j.State = sched.StateDropped
			j.FinishedAt = now
			j.Alloc = sched.Alloc{}
			j.ActualThr = 0
			s.running = removeJob(s.running, j)
			s.done_ = append(s.done_, j)
			return true
		}
	}
	return false
}

// Find returns the job with the given trace ID in any lifecycle state,
// or nil. The returned pointer is the engine's live record; callers must
// not mutate it.
func (e *Engine) Find(id string) *sched.Job {
	s := e.s
	if j := s.findAny(id); j != nil {
		return j
	}
	for _, list := range [][]*sched.Job{s.pending, s.done_} {
		for _, j := range list {
			if j.Trace.ID == id {
				return j
			}
		}
	}
	return nil
}

// Jobs returns every job the engine has ever seen (completed first, then
// running, queued and pending), in the same order Finish reports them.
func (e *Engine) Jobs() []*sched.Job {
	s := e.s
	jobs := append([]*sched.Job(nil), s.done_...)
	jobs = append(jobs, s.running...)
	jobs = append(jobs, s.queued...)
	jobs = append(jobs, s.pending...)
	return jobs
}

// Done reports whether no work remains anywhere in the world.
func (e *Engine) Done() bool { return e.s.done() }

// Finish progresses the world to `end` and assembles the final metrics
// summary — the batch simulator's last step. The engine remains usable
// (a daemon can snapshot metrics without stopping), but Finish at a
// given instant is idempotent only if no rounds fire in between.
func (e *Engine) Finish(end float64) *Result {
	e.s.advanceTo(end)
	return e.s.finish(end)
}

// Stats is a monitoring snapshot of the engine's live state — the
// counters the server's stats endpoint surfaces.
type Stats struct {
	Pending, Queued, Running            int
	Finished, Dropped, Failed           int
	Preemptions, Restarts, Migrations   int
	GoodputGPUSeconds, WastedGPUSeconds float64
	Utilization                         float64
}

// Stats summarizes the engine's current world for monitoring. O(jobs);
// never affects scheduling state.
func (e *Engine) Stats() Stats {
	s := e.s
	st := Stats{
		Pending:           len(s.pending),
		Queued:            len(s.queued),
		Running:           len(s.running),
		GoodputGPUSeconds: s.goodputGPUSec,
		WastedGPUSeconds:  s.wastedGPUSec,
		Utilization:       s.cluster.Utilization(),
	}
	for _, j := range s.done_ {
		switch j.State {
		case sched.StateFinished:
			st.Finished++
		case sched.StateDropped:
			st.Dropped++
		case sched.StateFailed:
			st.Failed++
		}
	}
	for _, list := range [][]*sched.Job{s.done_, s.running, s.queued, s.pending} {
		for _, j := range list {
			st.Preemptions += j.Preemptions
			st.Restarts += j.Restarts
			st.Migrations += j.Migrations
		}
	}
	return st
}
