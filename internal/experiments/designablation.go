package experiments

import (
	"context"

	"fmt"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
)

// DesignAblation evaluates the planner's own design choices (DESIGN.md §4):
// the proxy selection rule (minimum computation bias first, as in §3.3,
// vs. minimum communication load first) and the Pareto-frontier reduction
// threshold, measured by the proxy's fraction of the grid optimum.
func (e *Env) DesignAblation(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "design",
		Title:  "Planner design-choice ablation: proxy rule and frontier threshold",
		Header: []string{"knob", "setting", "mean proxy/optimal", "mean frontier size"},
	}
	cases := []struct {
		modelName string
		gb, n, s  int
	}{
		{"WRes-1B", 256, 4, 2},
		{"WRes-2B", 512, 8, 4},
		{"GPT-1.3B", 128, 8, 4},
		{"MoE-1.3B", 256, 8, 4},
	}
	spec := hw.MustLookup("A40")

	// evaluate returns the mean proxy quality and frontier size over the
	// cases for a configured planner and proxy-selection override.
	evaluate := func(pl *planner.Planner, commFirst bool) (float64, float64, error) {
		var fracSum, frontierSum float64
		for _, c := range cases {
			g, err := model.BuildClustered(c.modelName)
			if err != nil {
				return 0, 0, err
			}
			grid := core.Grid{
				Workload: model.Workload{Model: c.modelName, GlobalBatch: c.gb},
				GPUType:  "A40", N: c.n, S: c.s,
			}
			gp, err := pl.PlanGrid(g, grid)
			if err != nil || !gp.Feasible {
				return 0, 0, fmt.Errorf("design: %s infeasible: %v", c.modelName, err)
			}
			proxy := gp.Proxy
			if commFirst {
				// Alternative rule: minimum communication load outright.
				for _, cand := range gp.Frontier {
					if proxy == nil || cand.LComm < proxy.LComm {
						proxy = cand
					}
				}
			}
			proxyRes, err := e.eng.Evaluate(g, proxy.Plan, spec, c.gb)
			if err != nil || !proxyRes.Fits {
				return 0, 0, fmt.Errorf("design: proxy eval failed for %s", c.modelName)
			}
			best := 0.0
			for _, cand := range pl.EnumerateCandidates(g, grid) {
				res, err := e.eng.Evaluate(g, cand.Plan, spec, c.gb)
				if err == nil && res.Fits && res.Throughput > best {
					best = res.Throughput
				}
			}
			if best <= 0 {
				return 0, 0, fmt.Errorf("design: empty grid for %s", c.modelName)
			}
			fracSum += proxyRes.Throughput / best
			frontierSum += float64(len(gp.Frontier))
		}
		n := float64(len(cases))
		return fracSum / n, frontierSum / n, nil
	}

	// Proxy rule: bias-first (the paper's rule) vs comm-first.
	for _, rule := range []struct {
		label     string
		commFirst bool
	}{{"bias-first (paper)", false}, {"comm-first", true}} {
		frac, fsize, err := evaluate(planner.New(), rule.commFirst)
		if err != nil {
			return nil, err
		}
		t.AddRow("proxy-rule", rule.label,
			fmt.Sprintf("%.1f%%", 100*frac), fmt.Sprintf("%.1f", fsize))
	}

	// Frontier reduction threshold sweep.
	for _, max := range []int{2, 4, 8, 16} {
		pl := planner.New()
		pl.MaxFrontier = max
		frac, fsize, err := evaluate(pl, false)
		if err != nil {
			return nil, err
		}
		t.AddRow("max-frontier", fmt.Sprintf("%d", max),
			fmt.Sprintf("%.1f%%", 100*frac), fmt.Sprintf("%.1f", fsize))
	}

	// Bias tolerance sweep (how much l_comm is allowed to break ties).
	for _, tol := range []float64{0, 0.05, 0.15, 0.5} {
		pl := planner.New()
		pl.BiasTolerance = tol
		frac, _, err := evaluate(pl, false)
		if err != nil {
			return nil, err
		}
		t.AddRow("bias-tolerance", fmt.Sprintf("%.2f", tol),
			fmt.Sprintf("%.1f%%", 100*frac), "-")
	}
	t.Note("the paper's bias-first rule should dominate comm-first (computation dominates end-to-end performance, §3.3)")
	return t, nil
}
