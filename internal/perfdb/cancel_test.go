package perfdb

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/model"
)

func cancelOpts() Options {
	return Options{
		GPUTypes:  []string{"A40"},
		MaxN:      4,
		Workloads: []model.Workload{{Model: "WRes-0.5B", GlobalBatch: 256}},
	}
}

// TestBuildCtxCancellation asserts the tentpole contract for database
// builds: cancelling mid-build returns ctx.Err() promptly with no
// database and no leaked goroutines, and a subsequent uncancelled build
// on the same engine matches the pre-cancellation reference bit for bit.
func TestBuildCtxCancellation(t *testing.T) {
	eng := exec.NewEngine(42)
	before := runtime.NumGoroutine()

	// Pre-cancelled: the build refuses before sampling anything.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if db, err := BuildCtx(ctx, eng, cancelOpts()); err != context.Canceled || db != nil {
		t.Fatalf("pre-cancelled build: db=%v err=%v, want nil/context.Canceled", db, err)
	}

	// Cancelled mid-flight, deterministically: the progress stream fires
	// after the first (workload, type, count) point lands.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts := cancelOpts()
	opts.Progress = func(e core.Event) {
		if e.Step == "perfdb.build" && e.Done == 1 {
			cancel2()
		}
	}
	db, err := BuildCtx(ctx2, eng, opts)
	if err != context.Canceled || db != nil {
		t.Fatalf("mid-flight cancel: db=%v err=%v, want nil/context.Canceled", db, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}

	// The engine is stateless across builds: after the aborted attempts an
	// uncancelled build still matches the serial reference exactly.
	serialOpts := cancelOpts()
	serialOpts.NoCache, serialOpts.Serial = true, true
	ref, err := Build(eng, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildCtx(context.Background(), eng, cancelOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.entries, rebuilt.entries) {
		t.Error("post-cancel rebuild diverged from the serial reference")
	}
	if !reflect.DeepEqual(ref.arenaProfileWall, rebuilt.arenaProfileWall) ||
		!reflect.DeepEqual(ref.dpProfileWall, rebuilt.dpProfileWall) ||
		!reflect.DeepEqual(ref.siaProfileWall, rebuilt.siaProfileWall) {
		t.Error("post-cancel rebuild wall times diverged from the serial reference")
	}
}

// TestBuildCtxProgressCoversEveryPoint asserts the progress stream emits
// exactly one event per (workload, type, count) point with a stable
// total.
func TestBuildCtxProgressCoversEveryPoint(t *testing.T) {
	eng := exec.NewEngine(42)
	opts := cancelOpts()
	seen := map[string]int{}
	var mu sync.Mutex
	opts.Progress = func(e core.Event) {
		mu.Lock()
		seen[e.Item]++
		mu.Unlock()
		if e.Total != 3 { // 1 workload × 1 type × counts {1,2,4}
			t.Errorf("event total = %d, want 3", e.Total)
		}
	}
	if _, err := BuildCtx(context.Background(), eng, opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("progress covered %d points, want 3: %v", len(seen), seen)
	}
	for item, n := range seen {
		if n != 1 {
			t.Errorf("point %s reported %d times", item, n)
		}
	}
}
