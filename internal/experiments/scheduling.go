package experiments

import (
	"context"

	"fmt"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// testbedTrace builds the §5.2 trace for a physical testbed: a 6-hour
// Philly slice with 244 jobs; Cluster-B scales the workload up (larger
// iteration counts, ≈10×, §5.2).
func (e *Env) testbedTrace(spec hw.ClusterSpec, scale float64) ([]trace.Job, error) {
	cfg := trace.PhillySixHour(e.Seed, spec.GPUTypes())
	cfg.LifespanScale = scale
	return trace.Generate(cfg)
}

// Fig10 runs the real-testbed comparison (§5.2, Fig. 10): JCT, queuing
// time and cluster throughput for five schedulers on Cluster-A and
// Cluster-B.
func (e *Env) Fig10(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Testbed comparison: JCT, queuing time, throughput (Cluster-A and Cluster-B)",
		Header: []string{"cluster", "policy", "avgJCT(s)", "JCT-vs-FCFS", "avgQueue(s)", "queue-vs-FCFS", "avgThr", "thr-vs-FCFS", "peakThr"},
	}
	for _, tc := range []struct {
		spec  hw.ClusterSpec
		scale float64
	}{
		{hw.ClusterA(), 1},
		{hw.ClusterB(), 10},
	} {
		jobs, err := e.testbedTrace(tc.spec, tc.scale)
		if err != nil {
			return nil, err
		}
		db, err := e.DB(ctx, tc.spec.GPUTypes())
		if err != nil {
			return nil, err
		}
		results, order, err := e.runPolicies(ctx, tc.spec, jobs, db, 0, Policies())
		if err != nil {
			return nil, err
		}
		base := results["fcfs"]
		window := maxHorizon(results)
		for _, name := range order {
			r := results[name]
			t.AddRow(tc.spec.Name, name,
				fmt.Sprintf("%.0f", r.AvgJCT), pct(r.AvgJCT, base.AvgJCT),
				fmt.Sprintf("%.0f", r.AvgQueue), pct(r.AvgQueue, base.AvgQueue),
				fmt.Sprintf("%.1f", meanWindow(r.ThroughputSeries, window)),
				ratio(meanWindow(r.ThroughputSeries, window), meanWindow(base.ThroughputSeries, window)),
				fmt.Sprintf("%.1f", maxWindow(r.ThroughputSeries, window)))
		}
	}
	t.Note("paper Cluster-A: Arena -49.3%% JCT, -71.0%% queuing, 1.49x thr; Cluster-B: -48.9%% JCT, -74.9%% queuing, 1.60x thr")
	return t, nil
}

// simWeekTrace is the §5.3 large-scale configuration: a one-week Philly
// trace on the 1,280-GPU 4-type simulated cluster.
func (e *Env) simWeekTrace(jobs int) ([]trace.Job, hw.ClusterSpec, error) {
	spec := hw.ClusterSim()
	cfg := trace.PhillyWeek(e.Seed, spec.GPUTypes(), jobs)
	cfg.LifespanScale = 12
	js, err := trace.Generate(cfg)
	return js, spec, err
}

// Fig11 reports the cluster-throughput time series of the week-long
// simulation (§5.3, Fig. 11), bucketed per half-day, with the low-load
// and heavy-load phases summarized.
func (e *Env) Fig11(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Cluster throughput over one week, 1280-GPU simulated cluster (per half-day buckets)",
		Header: []string{"policy", "phase", "avg-thr(samples/s)"},
	}
	jobs, spec, err := e.simWeekTrace(3000)
	if err != nil {
		return nil, err
	}
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	window := int(7 * 24 * 3600 / 300)
	results, order, err := e.runPolicies(ctx, spec, jobs, db, 2*window, Policies())
	if err != nil {
		return nil, err
	}
	bucket := window / 14 // half-day
	for _, name := range order {
		series := results[name].ThroughputSeries
		if len(series) > window {
			series = series[:window]
		}
		for b := 0; b < 14 && b*bucket < len(series); b++ {
			end := (b + 1) * bucket
			if end > len(series) {
				end = len(series)
			}
			t.AddRow(name, fmt.Sprintf("day%4.1f", float64(b)/2+0.5),
				fmt.Sprintf("%.0f", metrics.Mean(series[b*bucket:end])))
		}
		cut := window * 3 / 7
		t.AddRow(name, "LOW(first 3d)", fmt.Sprintf("%.0f", metrics.Mean(series[:min(cut, len(series))])))
		if len(series) > cut {
			t.AddRow(name, "HEAVY(last 4d)", fmt.Sprintf("%.0f", metrics.Mean(series[cut:])))
		}
	}
	t.Note("paper: Arena scales up faster under burst loads and scales down earlier when load drops")
	return t, nil
}

// Fig12 reports the numerical comparison of the week-long simulation
// (§5.3, Fig. 12): JCT CDF points, finished jobs, average/peak throughput.
func (e *Env) Fig12(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Large-scale simulation: JCT distribution, finished jobs, throughput",
		Header: []string{"policy", "avgJCT(s)", "JCT-vs-FCFS", "p50JCT", "p90JCT", "finished", "finished-x", "avgThr", "thr-x", "peakThr", "resched/job"},
	}
	jobs, spec, err := e.simWeekTrace(3000)
	if err != nil {
		return nil, err
	}
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	window := int(7 * 24 * 3600 / 300)
	results, order, err := e.runPolicies(ctx, spec, jobs, db, 2*window, Policies())
	if err != nil {
		return nil, err
	}
	base := results["fcfs"]
	for _, name := range order {
		r := results[name]
		t.AddRow(name,
			fmt.Sprintf("%.0f", r.AvgJCT), pct(r.AvgJCT, base.AvgJCT),
			fmt.Sprintf("%.0f", r.P50JCT), fmt.Sprintf("%.0f", r.P90JCT),
			fmt.Sprintf("%d", r.Finished), ratio(float64(r.Finished), float64(base.Finished)),
			fmt.Sprintf("%.0f", meanWindow(r.ThroughputSeries, window)),
			ratio(meanWindow(r.ThroughputSeries, window), meanWindow(base.ThroughputSeries, window)),
			fmt.Sprintf("%.0f", maxWindow(r.ThroughputSeries, window)),
			fmt.Sprintf("%.2f", r.AvgReschedules))
	}
	t.Note("paper: Arena cuts avg JCT by 81.3%%(FCFS)/80.5%%(EF)/76.6%%(Gavel)/75.2%%(Sia); 1.45x more finished jobs; 1.55x avg and 1.58x peak throughput; 2.29 reschedules/job")
	return t, nil
}

// Fig13 runs the Helios (moderate) and PAI (light) day traces (§5.3,
// Fig. 13).
func (e *Env) Fig13(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Helios (moderate load) and PAI (light load) traces on the simulated cluster",
		Header: []string{"trace", "policy", "avgJCT(s)", "JCT-vs-FCFS", "avgThr", "thr-x", "peakThr"},
	}
	spec := hw.ClusterSim()
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	for _, tr := range []struct {
		name string
		cfg  trace.Config
	}{
		{"helios", trace.HeliosDay(e.Seed, spec.GPUTypes(), 900)},
		{"pai", trace.PAIDay(e.Seed, spec.GPUTypes(), 450)},
	} {
		cfg := tr.cfg
		cfg.LifespanScale = 12
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		window := int(24 * 3600 / 300)
		results, order, err := e.runPolicies(ctx, spec, jobs, db, 4*window, Policies())
		if err != nil {
			return nil, err
		}
		base := results["fcfs"]
		for _, name := range order {
			r := results[name]
			t.AddRow(tr.name, name,
				fmt.Sprintf("%.0f", r.AvgJCT), pct(r.AvgJCT, base.AvgJCT),
				fmt.Sprintf("%.0f", meanWindow(r.ThroughputSeries, window)),
				ratio(meanWindow(r.ThroughputSeries, window), meanWindow(base.ThroughputSeries, window)),
				fmt.Sprintf("%.0f", maxWindow(r.ThroughputSeries, window)))
		}
	}
	t.Note("paper: up to 74.2%%/63.0%% JCT reduction and 1.64x/1.44x throughput on Helios/PAI")
	return t, nil
}

// Fig17 is the component ablation (§5.7, Fig. 17): Arena with each
// component disabled, against full Arena and FCFS.
func (e *Env) Fig17(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "Performance breakdown: disabling Arena components one at a time",
		Header: []string{"variant", "avgThr", "thr-vs-arena", "avgJCT(s)", "JCT-vs-arena"},
	}
	jobs, spec, err := e.simWeekTrace(3000)
	if err != nil {
		return nil, err
	}
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	variants := []sched.Policy{
		sched.NewArena(),
		func() sched.Policy { p := sched.NewArena(); p.DisablePlanner = true; return p }(),
		func() sched.Policy { p := sched.NewArena(); p.DisableProfiler = true; return p }(),
		func() sched.Policy { p := sched.NewArena(); p.DisableElastic = true; return p }(),
		func() sched.Policy { p := sched.NewArena(); p.DisableHetero = true; return p }(),
		func() sched.Policy { p := sched.NewArena(); p.DisablePruning = true; return p }(),
		policy.NewFCFS(),
	}
	window := int(7 * 24 * 3600 / 300)
	results, order, err := e.runPolicies(ctx, spec, jobs, db, 2*window, variants)
	if err != nil {
		return nil, err
	}
	arena := results["arena"]
	arenaThr := meanWindow(arena.ThroughputSeries, window)
	for _, name := range order {
		r := results[name]
		thr := meanWindow(r.ThroughputSeries, window)
		t.AddRow(name,
			fmt.Sprintf("%.0f", thr), pct(thr, arenaThr),
			fmt.Sprintf("%.0f", r.AvgJCT), pct(r.AvgJCT, arena.AvgJCT))
	}
	t.Note("paper: w/o profiler -25.8%% thr / +56.3%% JCT; w/o planner -14.8%% thr; w/o hetero -17.4%% thr / +56.9%% JCT; w/o pruning has limited impact (2.29 reschedules/job)")
	return t, nil
}

// Fig19 sweeps job lifespans and compares Arena's scheduler alone
// (scheduling on DP performance data like the baselines, §5.7, Fig. 19).
func (e *Env) Fig19(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig19",
		Title:  "Arena-Sched (scheduler only, DP performance data) vs baselines over job lifespan scaling",
		Header: []string{"lifespan-x", "policy", "avgThr", "thr-vs-FCFS"},
	}
	spec := hw.ClusterSim()
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	for _, scale := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		cfg := trace.PhillyWeek(e.Seed, spec.GPUTypes(), 2400)
		cfg.LifespanScale = 12 * scale
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		arenaSched := sched.NewArena()
		arenaSched.DisablePlanner = true // schedule on DP data (§5.7)
		arenaSched.DisablePruning = true // other components disabled
		pols := []sched.Policy{
			policy.NewFCFS(), policy.NewGavel(), policy.NewElasticFlow(),
			policy.NewSia(), arenaSched,
		}
		window := int(7 * 24 * 3600 / 300)
		results, order, err := e.runPolicies(ctx, spec, jobs, db, 2*window, pols)
		if err != nil {
			return nil, err
		}
		base := meanWindow(results["fcfs"].ThroughputSeries, window)
		for _, name := range order {
			thr := meanWindow(results[name].ThroughputSeries, window)
			label := name
			if name == "arena-w/o-planner" {
				label = "arena-sched"
			}
			t.AddRow(fmt.Sprintf("%.1f", scale), label,
				fmt.Sprintf("%.0f", thr), ratio(thr, base))
		}
	}
	t.Note("paper: Arena-Sched's advantage grows with lifespan (up to 1.59x); with sparse jobs the multi-level queues fall back to FCFS")
	return t, nil
}

// Deadline evaluates deadline-aware scheduling (§5.6): Arena's deadline
// objective vs ElasticFlow on a deadline-bearing trace.
func (e *Env) Deadline(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "ddl",
		Title:  "Deadline-aware scheduling: Arena (deadline objective) vs ElasticFlow",
		Header: []string{"policy", "ddl-satisfaction", "avgJCT(s)", "avgThr", "peakThr", "dropped"},
	}
	spec := hw.ClusterA()
	cfg := trace.PhillySixHour(e.Seed, spec.GPUTypes())
	cfg.DeadlineFraction = 0.6
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	arenaDDL := sched.NewArena()
	arenaDDL.Objective = sched.ObjDeadline
	pols := []sched.Policy{policy.NewElasticFlow(), arenaDDL}
	results, order, err := e.runPolicies(ctx, spec, jobs, db, 0, pols)
	if err != nil {
		return nil, err
	}
	for _, name := range order {
		r := results[name]
		t.AddRow(name,
			fmt.Sprintf("%.1f%%", 100*r.DeadlineRatio()),
			fmt.Sprintf("%.0f", r.AvgJCT),
			fmt.Sprintf("%.1f", r.AvgThr),
			fmt.Sprintf("%.1f", r.PeakThr),
			fmt.Sprintf("%d", r.Dropped))
	}
	t.Note("paper: Arena improves deadline satisfaction by 1.69x, cuts JCT 26.1%%, with 1.73x avg / 1.96x peak throughput")
	return t, nil
}

// Fidelity compares the coarse 5-minute simulator against a fine-grained
// noisy "testbed" configuration sharing the same policy code (§5.2).
func (e *Env) Fidelity(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fidelity",
		Title:  "Simulation fidelity: 5-min rounds (sim) vs 60s rounds + measurement noise (testbed-like)",
		Header: []string{"policy", "thr-error", "JCT-error"},
	}
	spec := hw.ClusterA()
	jobs, err := e.testbedTrace(spec, 1)
	if err != nil {
		return nil, err
	}
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	var thrErrSum, jctErrSum float64
	var count int
	for _, p := range Policies() {
		coarse, err := sim.RunCtx(ctx, sim.Config{
			Spec: spec, Policy: p, Jobs: jobs, DB: db,
			RoundSeconds: 300, IncludeUnfinished: true, Seed: e.Seed,
		})
		if err != nil {
			return nil, err
		}
		fine, err := sim.RunCtx(ctx, sim.Config{
			Spec: spec, Policy: p, Jobs: jobs, DB: db,
			RoundSeconds: 100, ThroughputNoise: 0.03,
			IncludeUnfinished: true, Seed: e.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Compare over a common wall-clock window (zero-padded).
		windowS := 16.0 * 3600
		coarseThr := meanWindow(coarse.ThroughputSeries, int(windowS/300))
		fineThr := meanWindow(fine.ThroughputSeries, int(windowS/100))
		thrErr := metrics.RelErr(coarseThr, fineThr)
		jctErr := metrics.RelErr(coarse.AvgJCT, fine.AvgJCT)
		thrErrSum += thrErr
		jctErrSum += jctErr
		count++
		t.AddRow(p.Name(), fmt.Sprintf("%.2f%%", 100*thrErr), fmt.Sprintf("%.2f%%", 100*jctErr))
	}
	t.AddRow("MEAN", fmt.Sprintf("%.2f%%", 100*thrErrSum/float64(count)), fmt.Sprintf("%.2f%%", 100*jctErrSum/float64(count)))
	t.Note("paper: 3.16%% throughput and 7.22%% JCT simulation error vs the real testbed")
	return t, nil
}

// Sensitivity sweeps the priority-queue count P and scaling search depth D
// (§5.8) on a reduced simulated workload.
func (e *Env) Sensitivity(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "sens",
		Title:  "Sensitivity: priority queues P and scaling search depth D",
		Header: []string{"knob", "value", "avgJCT(s)", "avgThr"},
	}
	spec := hw.ClusterSim()
	db, err := e.DB(ctx, spec.GPUTypes())
	if err != nil {
		return nil, err
	}
	cfg := trace.PhillyWeek(e.Seed, spec.GPUTypes(), 1200)
	cfg.LifespanScale = 12
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cfg.PriorityLevels = 5
	jobsP, err := trace.Generate(cfg)
	if err != nil {
		return nil, err
	}
	window := int(7 * 24 * 3600 / 300)
	run := func(p *sched.ArenaPolicy, js []trace.Job) (*sim.Result, error) {
		return sim.RunCtx(ctx, sim.Config{
			Spec: spec, Policy: p, Jobs: js, DB: db,
			RoundSeconds: 300, MaxRounds: 2 * window,
			IncludeUnfinished: true, Seed: e.Seed,
		})
	}
	for _, pQ := range []int{1, 2, 3, 4, 5} {
		p := sched.NewArena()
		p.P = pQ
		res, err := run(p, jobsP)
		if err != nil {
			return nil, err
		}
		t.AddRow("P", fmt.Sprintf("%d", pQ), fmt.Sprintf("%.0f", res.AvgJCT),
			fmt.Sprintf("%.0f", meanWindow(res.ThroughputSeries, window)))
	}
	for _, d := range []int{1, 2, 3, 4, 5} {
		p := sched.NewArena()
		p.D = d
		res, err := run(p, jobs)
		if err != nil {
			return nil, err
		}
		t.AddRow("D", fmt.Sprintf("%d", d), fmt.Sprintf("%.0f", res.AvgJCT),
			fmt.Sprintf("%.0f", meanWindow(res.ThroughputSeries, window)))
	}
	t.Note("paper: P=3 balances starvation vs fairness; D 1->3 cuts JCT 14.6%% for +1.03%% throughput at 0.88->5.98s per-job overhead")
	return t, nil
}

// Overheads summarizes the system-overhead analysis of §5.8: profiling,
// rescheduling, and offline communication sampling.
func (e *Env) Overheads(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "overheads",
		Title:  "System overheads (§5.8)",
		Header: []string{"overhead", "workload", "value"},
	}
	types := hw.ClusterSim().GPUTypes()
	db, err := e.DB(ctx, types)
	if err != nil {
		return nil, err
	}
	ct, err := e.CommTable(types)
	if err != nil {
		return nil, err
	}
	for _, w := range sortedWorkloadsOf(mustTrace(e, types)) {
		t.AddRow("arena grid profiling", w.String(), seconds(db.ArenaProfileWall(w)))
		t.AddRow("baseline DP profiling", w.String(), seconds(db.DPProfileWall(w)))
		if len(t.Rows) >= 12 {
			break
		}
	}
	w := sortedWorkloadsOf(mustTrace(e, types))[0]
	t.AddRow("full AP search (16 GPUs)", w.String(), seconds(db.SearchTimeFull(w, types[0], 16)))
	t.AddRow("pruned AP search (16 GPUs)", w.String(), seconds(db.SearchTimePruned(w, types[0], 16)))
	t.AddRow("checkpoint-resume", "-", seconds(sched.CheckpointResume))
	t.AddRow("offline comm sampling", "one-shot", fmt.Sprintf("%.1fh", ct.OfflineCostSeconds/3600))
	t.Note("paper: profiling <20min (8.5min at N=16,M=4); rescheduling 1-2min search + <5min resume; offline sampling ~3.5h per node type")
	return t, nil
}

func mustTrace(e *Env, types []string) []trace.Job {
	cfg := trace.PhillyWeek(e.Seed, types, 200)
	js, err := trace.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return js
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
