package sim

import (
	"fmt"
	"sort"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Engine is the simulator's world exposed one step at a time: the same
// state machine and round body RunCtx drives to completion, usable
// incrementally so a long-running scheduler daemon can feed it jobs as
// they arrive over HTTP and fire rounds from a wall clock. The batch
// simulator and internal/server literally share this code path — the
// paper's shared-scheduling-code fidelity claim (§4), made structural.
//
// An Engine is not safe for concurrent use; callers that take input from
// many goroutines (the server) serialize access themselves. All instants
// are seconds on the run timeline (see internal/clock); rounds must be
// fired with non-decreasing `now`.
type Engine struct {
	s         *state
	maxRounds int
}

// NewEngine validates the configuration and builds the initial world:
// cfg.Jobs become pending submissions exactly as RunCtx stages them,
// while a cfg.Source is held back and pulled from on demand as rounds
// reach its submission times. An empty world is valid — the daemon
// starts idle and submits later.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Policy == nil || cfg.DB == nil {
		return nil, fmt.Errorf("sim: need a policy and a perfdb")
	}
	if cfg.Source != nil && len(cfg.Jobs) > 0 {
		return nil, fmt.Errorf("sim: set Jobs or Source, not both")
	}
	if cfg.RoundSeconds <= 0 {
		cfg.RoundSeconds = 300
	}
	if cfg.MaxPerJob <= 0 {
		cfg.MaxPerJob = cfg.DB.MaxN
	}
	// Policies with incremental score caches expose a reference-rescan
	// toggle; propagate the oracle flag (a no-op for cacheless policies).
	if rs, ok := cfg.Policy.(sched.ReferenceScorer); ok {
		rs.SetReferenceScore(cfg.ReferenceScore)
	}
	cl, err := cluster.New(cfg.Spec)
	if err != nil {
		return nil, err
	}
	// Online-profiled observations belong to a single run (Fig. 4(b)'s
	// refinement loop); clear any left by a previous simulation.
	cfg.DB.ResetObservations()

	s := &state{
		cfg:     cfg,
		cluster: cl,
		src:     cfg.Source,
		sim:     map[*sched.Job]*jobSim{},
	}
	if cfg.Streaming {
		s.jctS = metrics.NewStream(0.50, 0.90)
		s.queueS = metrics.NewStream()
	}
	e := &Engine{s: s}
	for _, tj := range cfg.Jobs {
		j := &sched.Job{
			Trace:            tj,
			State:            sched.StateQueued,
			SubmittedAt:      tj.SubmitTime + cfg.Policy.ProfilePrepend(cfg.DB, tj.Workload),
			LaunchedAt:       -1,
			RemainingSamples: tj.TotalSamples(),
			CurPriority:      tj.Priority,
		}
		s.pending = append(s.pending, j)
	}
	sort.SliceStable(s.pending, func(a, b int) bool {
		return s.pending[a].SubmittedAt < s.pending[b].SubmittedAt
	})

	e.maxRounds = cfg.MaxRounds
	if e.maxRounds <= 0 {
		// Horizon: trace span plus generous drain time.
		var last float64
		if s.src != nil {
			sp, ok := s.src.(trace.Spanner)
			if !ok {
				return nil, fmt.Errorf("sim: a Source without a Span needs an explicit MaxRounds")
			}
			last = sp.Span()
		} else {
			for _, j := range cfg.Jobs {
				if j.SubmitTime > last {
					last = j.SubmitTime
				}
			}
		}
		e.maxRounds = int((last*3+48*3600)/cfg.RoundSeconds) + 1
	}

	if cfg.Faults.Enabled() {
		fc := cfg.Faults.WithDefaults()
		s.faults = &fc
		// Materialize the whole fault realization up front: a pure
		// function of (seed, cluster shape, horizon), untouched by
		// scheduling decisions.
		horizon := float64(e.maxRounds+1) * cfg.RoundSeconds
		if err := fc.Trace.Validate(cfg.Spec); err != nil {
			return nil, err
		}
		s.events = append(s.events, fc.Trace...)
		if fc.Model != nil {
			s.events = append(s.events, fc.Model.Schedule(cfg.Spec, cfg.Seed, horizon)...)
		}
		s.events.Sort()
		// The event core merges the fault stream into its heap; the
		// schedule is sorted, so one cursor entry at a time suffices.
		if !cfg.ReferenceScan && len(s.events) > 0 {
			s.pushFault(0)
		}
	}
	return e, nil
}

// cfg returns the normalized configuration (defaults resolved).
func (e *Engine) cfg() Config { return e.s.cfg }

// RoundSeconds returns the scheduling interval after defaulting.
func (e *Engine) RoundSeconds() float64 { return e.s.cfg.RoundSeconds }

// MaxRounds returns the round bound RunCtx enforces: the configured cap,
// or the horizon derived from the initial trace. Incremental drivers
// (the server) ignore it and run for the process's lifetime.
func (e *Engine) MaxRounds() int { return e.maxRounds }

// Round fires one scheduling round at instant `now`: progress running
// jobs (and any fault events) up to now, admit newly submitted jobs,
// filter crash-backoff holds, ask the policy for its assignment, and
// apply it. Returns the policy's decision — the value the server
// journals and the crash-recovery test proves bit-identical across a
// restart.
func (e *Engine) Round(now float64) sched.Assignment {
	s := e.s
	s.advance(now)
	// Policies read RemainingSamples directly when ranking jobs; bring
	// every running job's record current before Assign sees it.
	s.materializeRunning(now)
	s.pull(now)
	s.admit(now)

	// Crash-restart backoff gates relaunch uniformly across policies:
	// a job still backing off is invisible this round.
	eligible := s.queued
	if s.faults != nil {
		eligible = make([]*sched.Job, 0, len(s.queued))
		for _, j := range s.queued {
			if j.NextEligibleAt <= now {
				eligible = append(eligible, j)
			}
		}
	}

	// Named rctx, not ctx: shadowing a context.Context parameter here
	// once hid a cancellation bug (the vet shadow check in CI now
	// rejects the pattern).
	rctx := &sched.Context{
		Now:       now,
		Queued:    eligible,
		Running:   s.running,
		Cluster:   s.cluster,
		DB:        s.cfg.DB,
		MaxPerJob: s.cfg.MaxPerJob,
	}
	asg := s.cfg.Policy.Assign(rctx)
	s.apply(now, asg)

	s.sampleThroughput(now)
	return asg
}

// Submit registers a job after construction — the daemon's submit path.
// `now` is the caller's current instant: a job submitted with a zero
// SubmitTime is stamped with it, so live submissions land on the run
// timeline without every caller re-implementing the defaulting (replay
// paths that carry explicit SubmitTimes pass now=0 and are untouched).
// The job's SubmittedAt gains the policy's profiling prepend exactly as
// trace jobs do, and it is inserted keeping pending sorted by effective
// submission time with ties in arrival order, so an incremental sequence
// of Submits reproduces the batch constructor's stable sort and a
// journal replay reconstructs identical state.
func (e *Engine) Submit(tj trace.Job, now float64) *sched.Job {
	if tj.SubmitTime == 0 && now > 0 {
		tj.SubmitTime = now
	}
	return e.s.stage(tj)
}

// Cancel abandons a job at instant `now`: a pending or queued job is
// dropped outright; a running job is evicted and its resources freed.
// Finished, dropped and failed jobs are left untouched. Reports whether
// a live job was cancelled.
func (e *Engine) Cancel(id string, now float64) bool {
	s := e.s
	for i, j := range s.pending {
		if j.Trace.ID == id {
			j.State = sched.StateDropped
			j.FinishedAt = now
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			s.retire(j)
			return true
		}
	}
	if j := s.findQueued(id); j != nil {
		j.State = sched.StateDropped
		j.FinishedAt = now
		s.queued = removeJob(s.queued, j)
		s.retire(j)
		return true
	}
	for _, j := range s.running {
		if j.Trace.ID == id {
			// Account the work done up to the cancel instant, then drop
			// the stale completion prediction before the job leaves the
			// running set.
			s.materialize(j, now)
			s.invalidate(j)
			s.cluster.Free(id)
			j.State = sched.StateDropped
			j.FinishedAt = now
			j.Alloc = sched.Alloc{}
			j.ActualThr = 0
			s.running = removeJob(s.running, j)
			s.retire(j)
			return true
		}
	}
	return false
}

// Find returns the job with the given trace ID in any lifecycle state,
// or nil. The returned pointer is the engine's live record; callers must
// not mutate it.
func (e *Engine) Find(id string) *sched.Job {
	s := e.s
	if j := s.findAny(id); j != nil {
		return j
	}
	for _, list := range [][]*sched.Job{s.pending, s.done_} {
		for _, j := range list {
			if j.Trace.ID == id {
				return j
			}
		}
	}
	return nil
}

// Jobs returns every job the engine has ever seen (completed first, then
// running, queued and pending), in the same order Finish reports them.
func (e *Engine) Jobs() []*sched.Job {
	s := e.s
	jobs := append([]*sched.Job(nil), s.done_...)
	jobs = append(jobs, s.running...)
	jobs = append(jobs, s.queued...)
	jobs = append(jobs, s.pending...)
	return jobs
}

// Done reports whether no work remains anywhere in the world.
func (e *Engine) Done() bool { return e.s.done() }

// Finish progresses the world to `end` and assembles the final metrics
// summary — the batch simulator's last step. The engine remains usable
// (a daemon can snapshot metrics without stopping), but Finish at a
// given instant is idempotent only if no rounds fire in between.
func (e *Engine) Finish(end float64) *Result {
	e.s.advance(end)
	e.s.materializeRunning(end)
	return e.s.finish(end)
}

// idleBeyond reports whether the world cannot change state before
// instant t: nothing runs or waits in the queue, and every not-yet-
// admitted submission (staged or still inside the source) arrives after
// t. RunCtx uses it with the horizon to stop a run whose remaining
// arrivals all land beyond the round budget, instead of burning the
// budget three empty rounds at a time. A source that has not been
// peeked yet is conservatively not idle — the next pull decides.
func (e *Engine) idleBeyond(t float64) bool {
	s := e.s
	if len(s.running) > 0 || len(s.queued) > 0 {
		return false
	}
	if len(s.pending) > 0 && s.pending[0].SubmittedAt <= t {
		return false
	}
	if s.src != nil && !s.srcDone {
		if s.srcPeek == nil || s.srcPeek.SubmitTime <= t {
			return false
		}
	}
	return true
}

// Stats is a monitoring snapshot of the engine's live state — the
// counters the server's stats endpoint surfaces.
type Stats struct {
	Pending, Queued, Running            int
	Finished, Dropped, Failed           int
	Preemptions, Restarts, Migrations   int
	GoodputGPUSeconds, WastedGPUSeconds float64
	Utilization                         float64
}

// Stats summarizes the engine's current world for monitoring. O(jobs);
// never affects scheduling state.
func (e *Engine) Stats() Stats {
	s := e.s
	st := Stats{
		Pending:           len(s.pending),
		Queued:            len(s.queued),
		Running:           len(s.running),
		GoodputGPUSeconds: s.goodputGPUSec,
		WastedGPUSeconds:  s.wastedGPUSec,
		Utilization:       s.cluster.Utilization(),
	}
	// In streaming mode terminal jobs are folded into counters at
	// retirement instead of being kept on done_; both tallies below see
	// each job exactly once.
	st.Finished, st.Dropped, st.Failed = s.mFinished, s.mDropped, s.mFailed
	st.Preemptions, st.Restarts = s.mPreempt, s.mRestarts
	for _, j := range s.done_ {
		switch j.State {
		case sched.StateFinished:
			st.Finished++
		case sched.StateDropped:
			st.Dropped++
		case sched.StateFailed:
			st.Failed++
		}
	}
	for _, list := range [][]*sched.Job{s.done_, s.running, s.queued, s.pending} {
		for _, j := range list {
			st.Preemptions += j.Preemptions
			st.Restarts += j.Restarts
			st.Migrations += j.Migrations
		}
	}
	return st
}
