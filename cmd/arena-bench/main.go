// Command arena-bench regenerates the paper's evaluation tables and
// figures (§5). With no arguments it runs the full suite in paper order;
// -fig selects a comma-separated subset.
//
// Usage:
//
//	arena-bench                 # run everything
//	arena-bench -list           # list experiment IDs
//	arena-bench -fig fig11,fig12
//	arena-bench -seed 7         # change the determinism seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sjtu-epcc/arena/internal/cli"
	"github.com/sjtu-epcc/arena/internal/experiments"
)

func main() {
	var (
		figs = flag.String("fig", "all", "comma-separated experiment IDs, or 'all'")
		list = flag.Bool("list", false, "list available experiments and exit")
	)
	c := cli.CommonFlags()
	flag.Parse()

	env := experiments.NewEnv(c.Seed)
	env.DBCacheDir = c.DBCache
	env.Workers = c.Workers
	env.Ctx = cli.Context()
	env.SnapshotWarn = cli.WarnSnapshot
	if *list {
		for _, ex := range env.Registry() {
			fmt.Printf("%-10s %s\n", ex.ID, ex.Brief)
		}
		return
	}

	var selected []experiments.Experiment
	if *figs == "all" || *figs == "" {
		selected = env.Registry()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			ex, err := env.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, ex)
		}
	}

	for _, ex := range selected {
		start := time.Now()
		table, err := ex.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
}
