// Package cli holds the plumbing shared by the four arena command-line
// tools (arena-sim, arena-bench, arena-plan, arena-profile): the common
// -seed/-workers/-db-cache flags, cluster and trace pickers, a
// signal-aware root context, and one error/warning path so every tool
// reports failures in the same format.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Common carries the flags every arena tool spells identically.
type Common struct {
	// Seed is the determinism seed (-seed).
	Seed uint64
	// Workers bounds profiling/search/build worker pools; 0 = all cores
	// (-workers).
	Workers int
	// DBCache is the PerfDB snapshot path — a JSON file, or a directory
	// for arena-bench (-db-cache).
	DBCache string
}

// CommonFlags registers the shared flag set on flag.CommandLine. Call
// before flag.Parse.
func CommonFlags() *Common {
	c := &Common{}
	flag.Uint64Var(&c.Seed, "seed", 42, "determinism seed")
	flag.IntVar(&c.Workers, "workers", 0, "worker goroutines for profiling/search/build fan-out (0 = all cores)")
	flag.StringVar(&c.DBCache, "db-cache", "", "PerfDB JSON snapshot path (arena-bench: directory): load when valid, write after a fresh build")
	return c
}

// Tool returns the running tool's name for message prefixes.
func Tool() string { return filepath.Base(os.Args[0]) }

// Fatal prints "<tool>: <err>" to stderr and exits 1.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", Tool(), err)
	os.Exit(1)
}

// WarnSnapshot prints the uniform snapshot-persistence warning: the
// database was built fine, only the cross-run cache write failed.
func WarnSnapshot(err error) {
	fmt.Fprintf(os.Stderr, "%s: warning: %v (continuing with the built database)\n", Tool(), err)
}

// ReportDB funnels every tool's BuildPerfDB outcome through one policy:
// nil error passes, a snapshot persistence failure on a usable database
// warns and continues, anything else is fatal.
func ReportDB(db *perfdb.DB, err error) {
	if err == nil {
		return
	}
	var snapErr *perfdb.SnapshotError
	if db != nil && errors.As(err, &snapErr) {
		WarnSnapshot(err)
		return
	}
	Fatal(err)
}

// BuildDB builds (or snapshot-loads) the session's performance database,
// funnels the outcome through ReportDB, and labels the source the way the
// tools print it ("snapshot" vs "searched").
func BuildDB(ctx context.Context, sess *arena.Session) (*perfdb.DB, string) {
	db, err := sess.BuildPerfDB(ctx)
	ReportDB(db, err)
	if sess.PerfDBFromSnapshot() {
		return db, "snapshot"
	}
	return db, "searched"
}

// Context returns the tool's root context, cancelled on SIGINT/SIGTERM so
// a ^C aborts in-flight database builds and searches promptly instead of
// killing the process mid-write. After the first signal the registration
// is dropped, so a second ^C terminates the process the default way even
// if some code path ignores the cancellation.
func Context() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// PickCluster resolves the -cluster flag spelling shared by the tools.
func PickCluster(name string) (hw.ClusterSpec, error) {
	switch name {
	case "a":
		return hw.ClusterA(), nil
	case "b":
		return hw.ClusterB(), nil
	case "sim":
		return hw.ClusterSim(), nil
	case "b-homogeneous":
		return hw.ClusterBHomogeneous(), nil
	default:
		return hw.ClusterSpec{}, fmt.Errorf("unknown cluster %q", name)
	}
}

// PickTrace resolves the -trace flag spelling shared by the tools,
// applying each trace's default job count when jobs is 0.
func PickTrace(kind string, seed uint64, types []string, jobs int) (trace.Config, error) {
	switch kind {
	case "philly":
		if jobs == 0 {
			jobs = 3000
		}
		return trace.PhillyWeek(seed, types, jobs), nil
	case "helios":
		if jobs == 0 {
			jobs = 900
		}
		return trace.HeliosDay(seed, types, jobs), nil
	case "pai":
		if jobs == 0 {
			jobs = 450
		}
		return trace.PAIDay(seed, types, jobs), nil
	default:
		return trace.Config{}, fmt.Errorf("unknown trace %q", kind)
	}
}
