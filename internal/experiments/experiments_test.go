package experiments

import (
	"context"
	"errors"

	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:     "test",
		Title:  "a title",
		Header: []string{"col1", "longer-column"},
	}
	tbl.AddRow("a", "b")
	tbl.AddRow("longer-cell", "c")
	tbl.Note("note %d", 7)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== test: a title ==", "col1", "longer-cell", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	env := NewEnv(42)
	reg := env.Registry()
	if len(reg) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(reg))
	}
	seen := map[string]bool{}
	for _, ex := range reg {
		if ex.ID == "" || ex.Brief == "" || ex.Run == nil {
			t.Errorf("incomplete experiment %+v", ex)
		}
		if seen[ex.ID] {
			t.Errorf("duplicate experiment %s", ex.ID)
		}
		seen[ex.ID] = true
	}
	// Every paper figure of §5 must be present.
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := env.Lookup("fig15"); err != nil {
		t.Error(err)
	}
	if _, err := env.Lookup("nope"); err == nil {
		t.Error("unknown lookup should error")
	}
}

func TestFig6RunsAndShowsBalanceEffect(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestFig14ProxyNearOptimal(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig14(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Each case's proxy/best column should be ≥ 80%.
	for _, row := range tbl.Rows {
		frac := row[4]
		if frac == "-" {
			t.Errorf("infeasible case %v", row)
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(frac, "%"), 64)
		if err != nil {
			t.Fatalf("bad fraction %q", frac)
		}
		if v < 80 {
			t.Errorf("proxy quality %s below 80%% in %v", frac, row)
		}
	}
}

func TestFig15QualityAndCostCut(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig15(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
}

func TestFig2OptimalPlansShift(t *testing.T) {
	env := NewEnv(42)
	tbl, err := env.Fig2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a) must contain at least two distinct optimal plans across
	// GPU counts (the dynamicity claim).
	plans := map[string]bool{}
	for _, row := range tbl.Rows {
		if row[0] == "a" {
			plans[row[4]] = true
		}
	}
	if len(plans) < 2 {
		t.Errorf("no plan dynamicity in panel (a): %v", plans)
	}
}

// TestRunCancelsMidFigure is the registry-migration guarantee: every
// experiment observes its context, so arena-bench's ^C aborts mid-figure —
// not only mid-DB-build — with ctx.Err() and no table.
func TestRunCancelsMidFigure(t *testing.T) {
	env := NewEnv(42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"fig2", "fig3", "fig11", "fig15"} {
		ex, err := env.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := ex.Run(ctx)
		if tbl != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want canceled run, got table=%v err=%v", id, tbl, err)
		}
	}
}
