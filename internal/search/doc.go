// Package search implements adaptive-parallelism plan search over the
// execution engine: the full-space search (the Alpa baseline the paper
// compares against in §5.4) and Arena's space-pruned search (§3.6).
//
// Both searches follow Alpa's structure: enumerate stage candidates
// (operator range × GPU count × intra-stage shape), "profile" each on the
// engine — the expensive step on real hardware — then compose stages into
// pipelines with dynamic programming under a bottleneck bound, and
// finally measure the best few compositions end to end. Search cost is
// accounted in profiled stage candidates and converted to modeled
// wall-clock seconds, calibrated so a 16-GPU full search costs on the
// order of the paper's "20 minutes per allocable resource" (§2.3).
//
// The pruned search consumes the planner's GridPlan for one selected
// grid: instead of every (range × count × shape) candidate it profiles
// only the stage candidates reachable from the grid's Pareto frontier,
// which is what collapses redeployment cost from the full search's
// minutes to seconds (§5.4, Fig. 15).
//
// Execution options (Options) control wall-clock only, never results:
// Cache threads an evalcache.Cache so repeated candidates are measured
// once (across degrees, across the full and pruned searches of one
// point, and across GPU counts of one perfdb column), Workers fans
// candidate profiling out over a pool, and Progress streams per-candidate
// completion events. Determinism tests in this package prove the cached,
// parallel and planner-DP paths all return outcomes bit-identical to the
// serial uncached reference.
package search
