// Package analysis is the repository's determinism-discipline analyzer
// suite: a dependency-free re-creation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) built on the
// standard library's go/ast and go/types, plus the five checks that
// machine-enforce the guarantees ARCHITECTURE.md's determinism table
// documents:
//
//	ctxshadow       no declaration may shadow a context.Context parameter
//	clockdiscipline scheduling code takes instants from internal/clock only
//	maporder        map iteration order must not escape into output
//	stablesort      sort.Slice needs a proven total order; ties need a rank
//	rngdiscipline   scheduling/fault randomness flows through internal/rng
//
// Each bug class shipped at least once before being caught by a parity
// test (see the analyzer docstrings for the archaeology); the suite
// turns those one-off postmortems into vet-time gates. The analyzers
// run three ways: `go vet -vettool=$(which arena-vet) ./...` in CI,
// `arena-vet ./...` standalone, and a repo-sweep package test inside
// plain `go test ./...` so the gate holds offline too.
//
// A finding can be suppressed with a trailing or immediately preceding
// comment of the form
//
//	//arena:allow <analyzer> <reason>
//
// The reason is mandatory: an allow directive with an empty reason is
// itself a finding, as is one naming an unknown analyzer or one that
// suppresses nothing (stale allows rot into silent holes).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import path of the module this suite guards. Scope
// allowlists are expressed relative to it.
const ModulePath = "github.com/sjtu-epcc/arena"

// An Analyzer describes one determinism-discipline check. The shape
// deliberately mirrors golang.org/x/tools/go/analysis so the suite can
// migrate onto the real framework wholesale if the dependency ever
// becomes available; only the scoping fields are local inventions.
type Analyzer struct {
	Name string // short lower-case identifier, used in //arena:allow
	Doc  string // one-paragraph description for `arena-vet help`

	// Scope lists import-path prefixes relative to ModulePath (e.g.
	// "internal/sched") where the analyzer applies. Empty means the
	// whole module. Packages outside ModulePath are never analyzed.
	Scope []string

	// SkipTests excludes _test.go files from the analyzer's view.
	// Tests legitimately sleep, shuffle and brute-force; the
	// discipline protects production scheduling output.
	SkipTests bool

	Run func(*Pass) error
}

// appliesTo reports whether the analyzer's scope covers importPath.
// External-test packages ("pkg_test") share their base package's scope.
func (a *Analyzer) appliesTo(importPath string) bool {
	importPath = strings.TrimSuffix(importPath, "_test")
	if importPath != ModulePath && !strings.HasPrefix(importPath, ModulePath+"/") {
		return false
	}
	if len(a.Scope) == 0 {
		return true
	}
	rel := strings.TrimPrefix(importPath, ModulePath+"/")
	for _, dir := range a.Scope {
		if rel == dir || strings.HasPrefix(rel, dir+"/") {
			return true
		}
	}
	return false
}

// A Pass connects one analyzer to one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File // already filtered by SkipTests
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with the position already resolved so
// callers can sort and print without holding the FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Package is one type-checked unit ready for analysis. Loaders
// (load.go, the arena-vet unitchecker mode, the fixture runner) all
// funnel into this shape.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string
}

// NewTypesInfo returns a types.Info with every map the analyzers read
// allocated. All loaders must use it so a Pass never sees a nil map.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// RunPackage applies every applicable analyzer to pkg, resolves
// //arena:allow suppressions, and returns the surviving findings in
// position order. Directive hygiene problems (missing reason, unknown
// analyzer, allow that suppressed nothing) are returned as findings
// too.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := collectAllows(pkg.Fset, pkg.Files)

	var raw []Diagnostic
	for _, a := range analyzers {
		if !a.appliesTo(pkg.ImportPath) {
			continue
		}
		files := pkg.Files
		if a.SkipTests {
			files = nil
			for _, f := range pkg.Files {
				if !strings.HasSuffix(pkg.Fset.File(f.Pos()).Name(), "_test.go") {
					files = append(files, f)
				}
			}
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Pkg,
			TypesInfo:  pkg.TypesInfo,
			ImportPath: pkg.ImportPath,
			diags:      &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if al := allows.match(d.Pos, d.Analyzer); al != nil {
			al.used = true
			continue
		}
		out = append(out, d)
	}
	out = append(out, allows.hygiene(known)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowDirective is one parsed //arena:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

type allowSet struct {
	// byLoc indexes directives by (file, line, analyzer). A directive
	// suppresses findings on its own line and on the line directly
	// below it (the comment-above-the-statement placement).
	byLoc map[string]map[int][]*allowDirective
	all   []*allowDirective
}

const allowPrefix = "//arena:allow"

// collectAllows scans every comment in files for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{byLoc: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //arena:allowance — not ours
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				d := &allowDirective{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				}
				s.all = append(s.all, d)
				byLine := s.byLoc[d.pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowDirective)
					s.byLoc[d.pos.Filename] = byLine
				}
				byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
			}
		}
	}
	return s
}

// match returns the directive suppressing a finding by analyzer at pos,
// or nil. Directives with problems (empty reason, unknown analyzer) do
// not suppress: the code stays red until the directive is fixed.
func (s *allowSet) match(pos token.Position, analyzer string) *allowDirective {
	byLine := s.byLoc[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return d
			}
		}
	}
	return nil
}

// hygiene returns findings for malformed or stale directives.
func (s *allowSet) hygiene(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{
				Analyzer: "arena-allow", Pos: d.pos,
				Message: "//arena:allow needs an analyzer name and a reason",
			})
		case !known[d.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "arena-allow", Pos: d.pos,
				Message: fmt.Sprintf("//arena:allow names unknown analyzer %q", d.analyzer),
			})
		case d.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "arena-allow", Pos: d.pos,
				Message: fmt.Sprintf("//arena:allow %s has no reason: justify the suppression or fix the finding", d.analyzer),
			})
		case !d.used:
			out = append(out, Diagnostic{
				Analyzer: "arena-allow", Pos: d.pos,
				Message: fmt.Sprintf("//arena:allow %s suppresses nothing: remove the stale directive", d.analyzer),
			})
		}
	}
	return out
}
