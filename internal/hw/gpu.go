// Package hw models the hardware substrate of the Arena reproduction: GPU
// specifications, the roofline performance model, interconnect topologies,
// and analytic cost models for communication collectives.
//
// The paper (Table 1) evaluates on six NVIDIA GPU types spanning four
// architectures with NVLink or PCIe intra-node fabrics and ConnectX-5/6
// InfiniBand across nodes. Arena's planner consumes only hardware
// *specifications* (SM count, peak throughput, memory bandwidth — the
// roofline inputs, §3.3), so a specification catalog is a faithful
// substitute for physical devices. All quantities use SI base units:
// FLOP/s, bytes, bytes/s, seconds.
package hw

import "fmt"

// Arch identifies a GPU micro-architecture generation. Kernel efficiency
// curves and launch overheads are architecture-dependent (newer parts hide
// latency better and need larger tiles to saturate).
type Arch string

// Architectures present in the paper's testbeds (Table 1).
const (
	Volta  Arch = "Volta"
	Ampere Arch = "Ampere"
	Ada    Arch = "Ada"
	Hopper Arch = "Hopper"
)

// GPU describes one accelerator type. PeakFLOPS is the dense FP16/BF16
// tensor-core throughput (the precision used for large-model training);
// MemBandwidth is HBM/GDDR bandwidth. IntraLink describes the intra-node
// fabric reachable from this GPU, InterLink the NIC used across nodes.
type GPU struct {
	Name           string
	Architecture   Arch
	SMCount        int
	PeakFLOPS      float64 // FLOP/s, dense FP16 tensor
	MemBandwidth   float64 // bytes/s
	MemBytes       float64 // device memory capacity, bytes
	IntraLink      Link    // NVLink or PCIe within a node
	InterLink      Link    // InfiniBand NIC across nodes
	GPUsPerNode    int     // Table 1 "#GPU/Node"
	LaunchOverhead float64 // per-kernel launch + dispatch latency, seconds
	// EffHalfWork is the per-kernel work size (FLOPs) at which the GPU
	// reaches half of its shape efficiency ceiling; larger values mean the
	// part needs bigger tiles to saturate (models diminishing returns when
	// parallelism slices operators thin, §2.2).
	EffHalfWork float64
}

// String implements fmt.Stringer.
func (g GPU) String() string { return g.Name }

// GiB is a convenience constant for capacity math.
const GiB = 1024 * 1024 * 1024

// Catalog returns the GPU specification table used across the paper
// (Table 1 augmented with public architecture specs). The returned map is
// freshly allocated; callers may mutate their copy.
func Catalog() map[string]GPU {
	m := make(map[string]GPU, len(catalog))
	for k, v := range catalog {
		m[k] = v
	}
	return m
}

// Lookup returns the spec for a named GPU type.
func Lookup(name string) (GPU, error) {
	g, ok := catalog[name]
	if !ok {
		return GPU{}, fmt.Errorf("hw: unknown GPU type %q", name)
	}
	return g, nil
}

// MustLookup is Lookup for static configuration; it panics on unknown names.
func MustLookup(name string) GPU {
	g, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return g
}

// TypeNames returns the catalog's GPU names in a fixed canonical order
// (fastest to slowest), convenient for deterministic iteration.
func TypeNames() []string {
	return []string{"H100", "A100", "L20", "A40", "A10", "V100"}
}

var catalog = map[string]GPU{
	// Hopper flagship: 80 GB HBM3, NVLink4 900 GB/s, ConnectX-6 NIC.
	"H100": {
		Name: "H100", Architecture: Hopper, SMCount: 132,
		PeakFLOPS:      989e12,
		MemBandwidth:   3.35e12,
		MemBytes:       80 * GiB,
		IntraLink:      NVLink4,
		InterLink:      ConnectX6,
		GPUsPerNode:    8,
		LaunchOverhead: 4e-6,
		EffHalfWork:    6e9,
	},
	// Ada data-center inference/training part: 48 GB GDDR6, PCIe 4.0.
	"L20": {
		Name: "L20", Architecture: Ada, SMCount: 92,
		PeakFLOPS:      119.5e12,
		MemBandwidth:   864e9,
		MemBytes:       48 * GiB,
		IntraLink:      PCIe4,
		InterLink:      ConnectX6,
		GPUsPerNode:    16,
		LaunchOverhead: 5e-6,
		EffHalfWork:    1.2e9,
	},
	// Ampere flagship (40 GB SXM variant, NVLink3 600 GB/s).
	"A100": {
		Name: "A100", Architecture: Ampere, SMCount: 108,
		PeakFLOPS:      312e12,
		MemBandwidth:   1.555e12,
		MemBytes:       40 * GiB,
		IntraLink:      NVLink3,
		InterLink:      ConnectX5,
		GPUsPerNode:    4,
		LaunchOverhead: 5e-6,
		EffHalfWork:    2.5e9,
	},
	// Ampere workstation/server part: 48 GB GDDR6, PCIe 4.0.
	"A40": {
		Name: "A40", Architecture: Ampere, SMCount: 84,
		PeakFLOPS:      149.7e12,
		MemBandwidth:   696e9,
		MemBytes:       48 * GiB,
		IntraLink:      PCIe4,
		InterLink:      ConnectX5,
		GPUsPerNode:    2,
		LaunchOverhead: 6e-6,
		EffHalfWork:    1.4e9,
	},
	// Ampere inference part: 24 GB GDDR6, PCIe 4.0, ConnectX-6 NIC.
	"A10": {
		Name: "A10", Architecture: Ampere, SMCount: 72,
		PeakFLOPS:      125e12,
		MemBandwidth:   600e9,
		MemBytes:       24 * GiB,
		IntraLink:      PCIe4,
		InterLink:      ConnectX6,
		GPUsPerNode:    2,
		LaunchOverhead: 6e-6,
		EffHalfWork:    1.1e9,
	},
	// Volta: 32 GB HBM2, NVLink2 300 GB/s, 16-GPU nodes (Table 1).
	"V100": {
		Name: "V100", Architecture: Volta, SMCount: 80,
		PeakFLOPS:      125e12,
		MemBandwidth:   900e9,
		MemBytes:       32 * GiB,
		IntraLink:      NVLink2,
		InterLink:      ConnectX5,
		GPUsPerNode:    16,
		LaunchOverhead: 8e-6,
		EffHalfWork:    1.6e9,
	},
}
