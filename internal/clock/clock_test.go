package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvancesOnWait(t *testing.T) {
	v := NewVirtual()
	ctx := context.Background()
	if got := v.Now(); got != 0 {
		t.Fatalf("fresh virtual clock at %v, want 0", got)
	}
	if err := v.Wait(ctx, 300); err != nil {
		t.Fatal(err)
	}
	if got := v.Now(); got != 300 {
		t.Fatalf("after Wait(300): %v", got)
	}
	// Never backwards.
	if err := v.Wait(ctx, 100); err != nil {
		t.Fatal(err)
	}
	if got := v.Now(); got != 300 {
		t.Fatalf("Wait(100) moved the clock backwards to %v", got)
	}
}

func TestVirtualWaitHonoursCancellation(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := v.Wait(ctx, 300); err != context.Canceled {
		t.Fatalf("cancelled Wait returned %v", err)
	}
	if got := v.Now(); got != 0 {
		t.Fatalf("cancelled Wait advanced the clock to %v", got)
	}
}

func TestTickRoundSequence(t *testing.T) {
	var rounds []int
	var nows []float64
	err := Tick(context.Background(), NewVirtual(), 300, func(round int, now float64) bool {
		rounds = append(rounds, round)
		nows = append(nows, now)
		return round < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := []int{0, 1, 2, 3}
	wantNows := []float64{0, 300, 600, 900}
	for i := range wantRounds {
		if i >= len(rounds) || rounds[i] != wantRounds[i] || nows[i] != wantNows[i] {
			t.Fatalf("tick sequence %v @ %v, want %v @ %v", rounds, nows, wantRounds, wantNows)
		}
	}
	if len(rounds) != len(wantRounds) {
		t.Fatalf("tick ran %d rounds, want %d", len(rounds), len(wantRounds))
	}
}

func TestTickFromResumesSequence(t *testing.T) {
	var rounds []int
	err := TickFrom(context.Background(), NewVirtual(), 300, 5, func(round int, now float64) bool {
		if now != float64(round)*300 {
			t.Fatalf("round %d at %v, want %v", round, now, float64(round)*300)
		}
		rounds = append(rounds, round)
		return round < 6
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 || rounds[0] != 5 || rounds[1] != 6 {
		t.Fatalf("resumed tick ran %v, want [5 6]", rounds)
	}
}

func TestTickCancellationBetweenRounds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := Tick(ctx, NewVirtual(), 300, func(round int, now float64) bool {
		ran++
		cancel() // next Wait must observe it; this round completes
		return true
	})
	if err != context.Canceled {
		t.Fatalf("cancelled tick returned %v", err)
	}
	if ran != 1 {
		t.Fatalf("tick ran %d rounds after cancellation, want 1 (in-flight round drains, no new round starts)", ran)
	}
}

func TestWallAtResumesOffset(t *testing.T) {
	w := NewWallAt(1234)
	if got := w.Now(); got < 1234 || got > 1235 {
		t.Fatalf("resumed wall clock reads %v, want ~1234", got)
	}
	// Waiting for an instant already past returns immediately.
	start := time.Now()
	if err := w.Wait(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait for a past instant blocked")
	}
}

func TestWallWaitSleepsAndCancels(t *testing.T) {
	w := NewWall()
	// A short real wait completes.
	if err := w.Wait(context.Background(), 0.01); err != nil {
		t.Fatal(err)
	}
	if w.Now() < 0.01 {
		t.Fatalf("wall clock at %v after waiting for 0.01", w.Now())
	}
	// A long wait is interruptible.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Wait(ctx, 3600) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled wall Wait returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled wall Wait did not return")
	}
}

func TestSteppedWaitBlocksUntilAdvance(t *testing.T) {
	s := NewStepped()
	var mu sync.Mutex
	released := false
	done := make(chan error, 1)
	go func() {
		err := s.Wait(context.Background(), 300)
		mu.Lock()
		released = true
		mu.Unlock()
		done <- err
	}()
	// Not released by a partial advance.
	s.Set(100)
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	if released {
		mu.Unlock()
		t.Fatal("Wait(300) released at t=100")
	}
	mu.Unlock()
	s.Set(300)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait(300) not released at t=300")
	}
}

func TestSteppedWaitCancellable(t *testing.T) {
	s := NewStepped()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Wait(ctx, 300) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled stepped Wait returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stepped Wait did not return")
	}
}
