package cluster

import (
	"reflect"
	"sort"
	"testing"

	"github.com/sjtu-epcc/arena/internal/hw"
)

func TestFailNodeReturnsVictimsAndShrinksCapacity(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	// j1 on A40 node 0 (best fit lands the first 2-GPU block there); j2
	// takes a second block, filling node 0 before spilling.
	if err := c.Alloc("j1", "A40", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc("j2", "A40", 2); err != nil {
		t.Fatal(err)
	}
	victims := c.FailNode("A40", 0)
	if len(victims) == 0 {
		t.Fatal("node 0 held allocations; FailNode returned none")
	}
	if !c.NodeDown("A40", 0) {
		t.Fatal("node not marked down")
	}
	// Victims' IDs come back sorted.
	want := append([]string(nil), victims...)
	sort.Strings(want)
	if !reflect.DeepEqual(victims, want) {
		t.Errorf("victims not sorted: %v", victims)
	}
	// Double-fail is a no-op.
	if again := c.FailNode("A40", 0); again != nil {
		t.Errorf("failing a down node returned victims: %v", again)
	}
}

func TestFailRecoverTotalFreeInvariant(t *testing.T) {
	// totalFree must equal the sum of free GPUs over *up* nodes at every
	// step of fail → free-victims → recover.
	c := newCluster(t, hw.ClusterA())
	check := func(stage string, wantA40 int) {
		t.Helper()
		if got := c.FreeGPUs("A40"); got != wantA40 {
			t.Fatalf("%s: A40 free = %d, want %d", stage, got, wantA40)
		}
	}
	check("fresh", 32)
	if err := c.Alloc("j1", "A40", 2); err != nil { // node 0
		t.Fatal(err)
	}
	check("alloc", 30)
	victims := c.FailNode("A40", 0)
	// Node 0 down: its 0 free GPUs leave totalFree (already allocated).
	check("fail", 30)
	for _, id := range victims {
		c.Free(id)
	}
	// Freed blocks park on the down node: still not free capacity.
	check("free victims", 30)
	if c.CanAlloc("A40", 32) {
		t.Fatal("a down node's capacity must not be allocatable")
	}
	c.RecoverNode("A40", 0)
	check("recover", 32)
	if !c.CanAlloc("A40", 32) {
		t.Fatal("recovered capacity must be allocatable again")
	}
	// Recovering an up node is a no-op.
	c.RecoverNode("A40", 0)
	check("double recover", 32)
}

func TestDownNodesExcludedFromPlacement(t *testing.T) {
	spec := hw.ClusterSpec{Regions: []hw.Region{{GPUType: "A40", Nodes: 2}}}
	c := newCluster(t, spec)
	c.FailNode("A40", 0)
	if err := c.Alloc("j1", "A40", 2); err != nil {
		t.Fatal(err)
	}
	// The only possible home is node 1.
	c.SetSlow("A40", 1, 0.5)
	if f := c.SlowFactor("j1"); f != 0.5 {
		t.Fatalf("job placed on node %v? slow factor %v, want 0.5", 0, f)
	}
	// With node 1 occupied and node 0 down, a 4-GPU ask (both nodes) fails.
	c.Free("j1")
	if c.CanAlloc("A40", 4) {
		t.Fatal("multi-node alloc must not span a down node")
	}
}

func TestHealthyFirstPlacement(t *testing.T) {
	// Best-fit placement prefers healthy nodes: with node 0 a straggler,
	// a fresh allocation lands on a healthy node even though the historic
	// best-fit order would pick node 0 first.
	c := newCluster(t, hw.ClusterA())
	c.SetSlow("A40", 0, 0.3)
	if err := c.Alloc("j1", "A40", 2); err != nil {
		t.Fatal(err)
	}
	if f := c.SlowFactor("j1"); f != 1 {
		t.Fatalf("single-node alloc landed on the straggler (factor %v)", f)
	}
	// Multi-node: slow nodes are a last resort. 8 GPUs = 4 nodes out of
	// 16 with only node 0 slow → all healthy.
	if err := c.Alloc("j2", "A40", 8); err != nil {
		t.Fatal(err)
	}
	if f := c.SlowFactor("j2"); f != 1 {
		t.Fatalf("multi-node alloc touched the straggler (factor %v)", f)
	}
	// When only the straggler remains, allocation degrades onto it rather
	// than failing.
	spec := hw.ClusterSpec{Regions: []hw.Region{{GPUType: "A10", Nodes: 1}}}
	small := newCluster(t, spec)
	small.SetSlow("A10", 0, 0.4)
	if small.CanAllocHealthy("A10", 2) {
		t.Fatal("no healthy capacity, CanAllocHealthy must say so")
	}
	if err := small.Alloc("j3", "A10", 2); err != nil {
		t.Fatalf("degraded capacity must still be usable: %v", err)
	}
	if f := small.SlowFactor("j3"); f != 0.4 {
		t.Fatalf("factor %v, want 0.4", f)
	}
	small.ClearSlow("A10", 0)
	if f := small.SlowFactor("j3"); f != 1 {
		t.Fatalf("episode cleared but factor still %v", f)
	}
}

func TestSlowFactorIsWorstOverBlocks(t *testing.T) {
	// Synchronous training paces at the slowest worker: a job spanning a
	// 0.6x and a 0.2x node runs at 0.2x.
	c := newCluster(t, hw.ClusterA())
	for i := 0; i < 16; i++ {
		c.SetSlow("A40", i, 0.6)
	}
	c.SetSlow("A40", 1, 0.2)
	if err := c.Alloc("j1", "A40", 4); err != nil { // nodes 0+1
		t.Fatal(err)
	}
	if f := c.SlowFactor("j1"); f != 0.2 {
		t.Fatalf("factor %v, want the worst block's 0.2", f)
	}
}

func TestCanAllocHealthyRequiresCleanNodes(t *testing.T) {
	spec := hw.ClusterSpec{Regions: []hw.Region{{GPUType: "A40", Nodes: 2}}}
	c := newCluster(t, spec)
	if !c.CanAllocHealthy("A40", 4) {
		t.Fatal("fresh cluster is all-healthy")
	}
	c.SetSlow("A40", 0, 0.5)
	if c.CanAllocHealthy("A40", 4) {
		t.Fatal("a straggler node is not healthy capacity")
	}
	if !c.CanAllocHealthy("A40", 2) {
		t.Fatal("node 1 is still healthy")
	}
	c.FailNode("A40", 1)
	if c.CanAllocHealthy("A40", 2) {
		t.Fatal("a down node is not healthy capacity")
	}
	if c.CanAllocHealthy("H100", 1) {
		t.Fatal("unknown region")
	}
}
