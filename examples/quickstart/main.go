// Quickstart: plan, profile, and execute one large-model training job.
//
// This walks the full Arena pipeline for a single job on a fixed
// allocation (4×A40) through one arena.Session: the execution-free
// planner shards the joint space into grids and picks a proxy plan per
// pipeline degree (§3.3), the disaggregated profiler estimates each proxy
// on a single device (§3.4), the best grid drives the space-pruned AP
// search (§3.6), and the simulated testbed measures the deployed plan.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	arena "github.com/sjtu-epcc/arena"
)

func main() {
	const (
		modelName   = "GPT-1.3B"
		globalBatch = 128
		gpuType     = "A40"
		numGPUs     = 4
	)
	ctx := context.Background()

	// One Session owns the engine, planner, profiler, comm table and
	// eval cache — every method below shares them.
	s, err := arena.New(
		arena.WithSeed(42),
		arena.WithGPUTypes(gpuType),
		arena.WithMaxN(numGPUs),
	)
	if err != nil {
		log.Fatal(err)
	}

	graph := arena.MustBuildModel(modelName)
	w := arena.Workload{Model: modelName, GlobalBatch: globalBatch}

	fmt.Printf("model %s: %.2fB params, %.2f TFLOPs/sample forward, %d clustered operators\n\n",
		modelName, graph.Params()/1e9, graph.FwdFLOPs()/1e12, len(graph.Ops))

	// 1. Plan + profile every grid of the job (all pipeline degrees).
	// The session samples the communication table lazily on first use.
	jobProfile, err := s.ProfileJob(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d feasible grids at a total single-GPU cost of %.1f GPU-seconds\n",
		len(jobProfile.Estimates), jobProfile.TotalProfileGPUTime)

	// 2. The scheduler-side query: best grid for this resource.
	resource := arena.Resource{GPUType: gpuType, N: numGPUs}
	bestGrid, ok := jobProfile.BestGrid(resource)
	if !ok {
		log.Fatalf("no feasible grid for %v", resource)
	}
	est := jobProfile.Estimates[bestGrid]
	fmt.Printf("best grid: %v -> proxy %s, estimated %.1f samples/s\n",
		bestGrid, est.Plan, est.Throughput)

	// 3. Deployment: space-pruned AP search seeded by the grid's frontier.
	outcome, err := s.PrunedSearch(ctx, graph, gpuType, globalBatch, numGPUs,
		jobProfile.GridPlans[bestGrid])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned search: plan %s in %.0f modeled seconds (%d stage candidates)\n",
		outcome.Plan, outcome.SearchTime, outcome.StageEvals)

	// 4. Compare against the full-space (Alpa-style) search.
	full, err := s.FullSearch(ctx, graph, gpuType, globalBatch, numGPUs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full search:   plan %s in %.0f modeled seconds (%d stage candidates)\n",
		full.Plan, full.SearchTime, full.StageEvals)
	fmt.Printf("\nArena keeps %.1f%% of the full-search throughput at %.1fx lower search cost\n",
		100*outcome.Result.Throughput/full.Result.Throughput,
		full.SearchTime/outcome.SearchTime)

	// 5. And the static-parallelism contrast that motivates it all (§2.2).
	dp, err := s.Evaluate(ctx, graph, arena.PureDP(graph, numGPUs), gpuType, globalBatch)
	if err != nil {
		log.Fatal(err)
	}
	if dp.Fits {
		fmt.Printf("pure data parallelism would reach only %.1f samples/s (%.0f%% of Arena's plan)\n",
			dp.Throughput, 100*dp.Throughput/outcome.Result.Throughput)
	} else {
		fmt.Printf("pure data parallelism does not even fit %s memory (needs %.0f GB)\n",
			gpuType, dp.MaxMem/arena.GiB)
	}
}
