package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Version is the store schema version; bump on incompatible envelope or
// layout change. It is also hashed into every client key, so a bump
// invalidates all prior objects without touching them.
const Version = 1

// Sentinel errors distinguishing read-side failure modes; always wrapped
// in a *Error, test with errors.Is.
var (
	// ErrNotFound marks a key with no stored object — the ordinary cache
	// miss, not a failure.
	ErrNotFound = errors.New("object not found")
	// ErrSchema marks a store or object written under a different schema
	// version.
	ErrSchema = errors.New("schema version mismatch")
	// ErrCorrupt marks an unparseable or checksum-failing object (torn
	// write, truncation, external modification).
	ErrCorrupt = errors.New("corrupt object")
	// ErrKeyMismatch marks an object whose embedded key differs from the
	// one it was looked up under (renamed or misplaced file).
	ErrKeyMismatch = errors.New("key mismatch")
	// ErrLocked marks a store directory already held by another process —
	// a daemon and a CLI pointed at the same -store, or two daemons. The
	// second opener fails fast instead of racing the first's writes.
	ErrLocked = errors.New("store locked by another process")
)

// Error reports one store operation failure with enough context to warn
// usefully. Unwrap exposes the sentinel (or underlying I/O) cause.
type Error struct {
	Op   string // "open", "get", "put", "list"
	Path string // file or directory involved
	Err  error
}

func (e *Error) Error() string {
	return fmt.Sprintf("store: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Key addresses one object: the hex digest of the canonical encoding of
// everything that determines the object's content.
type Key string

// NewKey derives a key from a domain label and the ordered fields that
// determine the object. Fields are length-prefixed before hashing so
// distinct field lists can never collide by concatenation.
func NewKey(domain string, fields ...string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(domain), domain)
	for _, f := range fields {
		fmt.Fprintf(h, "%d:%s", len(f), f)
	}
	return Key(hex.EncodeToString(h.Sum(nil))[:32])
}

// valid reports whether k looks like a NewKey product; it guards file-path
// construction against injection through hand-built keys.
func (k Key) valid() bool {
	if len(k) != 32 {
		return false
	}
	for _, c := range k {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return false
		}
	}
	return true
}

// Store is an open store directory. The zero value is not usable;
// construct with Open. A Store is safe for concurrent use by multiple
// goroutines, but Open enforces a single writer per directory across
// processes: the store is held via an advisory file lock until Close (or
// process exit — the kernel releases the lock either way, so a crashed
// holder never wedges the directory).
type Store struct {
	dir  string
	lock *os.File
}

// manifest is the store-level version stamp.
type manifest struct {
	Version int `json:"version"`
}

// Open opens (creating if needed) the store at dir. A directory written by
// a different schema version yields a *Error wrapping ErrSchema — the
// caller decides whether to warn and continue without persistence or to
// abort; Open never deletes existing data.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, &Error{Op: "open", Path: dir, Err: errors.New("empty store directory")}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, &Error{Op: "open", Path: dir, Err: err}
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	if err := checkManifest(dir); err != nil {
		lock.Close()
		return nil, err
	}
	return &Store{dir: dir, lock: lock}, nil
}

// checkManifest verifies (stamping on first open) the store's schema
// version.
func checkManifest(dir string) error {
	mpath := filepath.Join(dir, "MANIFEST.json")
	data, err := os.ReadFile(mpath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := writeAtomic(mpath, mustJSON(manifest{Version: Version})); err != nil {
			return &Error{Op: "open", Path: mpath, Err: err}
		}
	case err != nil:
		return &Error{Op: "open", Path: mpath, Err: err}
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return &Error{Op: "open", Path: mpath, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
		}
		if m.Version != Version {
			return &Error{Op: "open", Path: mpath, Err: fmt.Errorf("%w: store has v%d, this build writes v%d", ErrSchema, m.Version, Version)}
		}
	}
	return nil
}

// acquireLock takes the store's advisory single-writer lock (LOCK inside
// dir), failing fast with ErrLocked if another process holds it. flock
// follows the open file description, so the lock outlives forks but
// vanishes with the process — a crash cannot leave the store wedged.
func acquireLock(dir string) (*os.File, error) {
	lpath := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(lpath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, &Error{Op: "open", Path: lpath, Err: err}
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, &Error{Op: "open", Path: lpath, Err: ErrLocked}
		}
		return nil, &Error{Op: "open", Path: lpath, Err: err}
	}
	return f, nil
}

// Close releases the store's single-writer lock. Idempotent; using the
// Store after Close is a caller bug (another process may own the
// directory by then).
func (s *Store) Close() error {
	if s.lock == nil {
		return nil
	}
	err := s.lock.Close() // closing the descriptor drops the flock
	s.lock = nil
	if err != nil {
		return &Error{Op: "close", Path: s.dir, Err: err}
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// envelope is the on-disk frame around every object payload.
type envelope struct {
	Version int             `json:"version"`
	Key     Key             `json:"key"`
	Sum     string          `json:"sum"` // sha256 of Payload bytes
	Payload json.RawMessage `json:"payload"`
}

// objectPath names the file for a (domain, key) pair.
func (s *Store) objectPath(domain string, k Key) string {
	return filepath.Join(s.dir, domain, string(k)+".json")
}

// Put stores v (JSON-marshaled) under (domain, key), atomically replacing
// any previous object. Concurrent Puts to the same key are safe; the last
// complete write wins.
func (s *Store) Put(domain string, k Key, v any) error {
	if !k.valid() {
		return &Error{Op: "put", Path: domain, Err: fmt.Errorf("invalid key %q", k)}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return &Error{Op: "put", Path: s.objectPath(domain, k), Err: err}
	}
	env := envelope{Version: Version, Key: k, Sum: payloadSum(payload), Payload: payload}
	path := s.objectPath(domain, k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return &Error{Op: "put", Path: path, Err: err}
	}
	data, err := json.Marshal(env)
	if err != nil {
		return &Error{Op: "put", Path: path, Err: err}
	}
	if err := writeAtomic(path, data); err != nil {
		return &Error{Op: "put", Path: path, Err: err}
	}
	return nil
}

// Get loads the object at (domain, key) into v. A missing object returns a
// *Error wrapping ErrNotFound; a truncated, tampered or version-skewed
// object returns a *Error wrapping ErrCorrupt / ErrKeyMismatch /
// ErrSchema. The object file is never trusted: version, embedded key and
// payload checksum are all verified before v sees a byte.
func (s *Store) Get(domain string, k Key, v any) error {
	if !k.valid() {
		return &Error{Op: "get", Path: domain, Err: fmt.Errorf("invalid key %q", k)}
	}
	path := s.objectPath(domain, k)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Error{Op: "get", Path: path, Err: ErrNotFound}
	}
	if err != nil {
		return &Error{Op: "get", Path: path, Err: err}
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return &Error{Op: "get", Path: path, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	if env.Version != Version {
		return &Error{Op: "get", Path: path, Err: fmt.Errorf("%w: object has v%d, this build reads v%d", ErrSchema, env.Version, Version)}
	}
	if env.Key != k {
		return &Error{Op: "get", Path: path, Err: fmt.Errorf("%w: object written under %s", ErrKeyMismatch, env.Key)}
	}
	if payloadSum(env.Payload) != env.Sum {
		return &Error{Op: "get", Path: path, Err: fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)}
	}
	if err := json.Unmarshal(env.Payload, v); err != nil {
		return &Error{Op: "get", Path: path, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	return nil
}

// List returns the keys of every object file present in a domain, sorted
// lexically. Files that do not look like object files are ignored; the
// objects themselves are not validated (Get does that per object).
func (s *Store) List(domain string) ([]Key, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, domain))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, &Error{Op: "list", Path: filepath.Join(s.dir, domain), Err: err}
	}
	var keys []Key
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || e.IsDir() {
			continue
		}
		if k := Key(name); k.valid() {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// payloadSum hashes a payload in canonical (compact) JSON form, so the
// checksum is insensitive to whitespace introduced by envelope re-encoding.
func payloadSum(payload []byte) string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		// Not valid JSON: hash the raw bytes; Get's Unmarshal rejects it.
		sum := sha256.Sum256(payload)
		return hex.EncodeToString(sum[:])
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:])
}

// writeAttempts bounds writeAtomic's retry loop; transient I/O errors
// (interrupted syscalls, momentary descriptor exhaustion) back off and
// retry, anything else fails immediately.
const writeAttempts = 3

// beforeRename, when non-nil, runs between the temp file's durable write
// and its rename — the crash window. Tests inject failures here to prove
// a process dying at the worst moment leaves the previous object intact
// under the final name.
var beforeRename func(path string) error

// writeAtomic writes data to path via a temp file + rename in the same
// directory, so concurrent writers and crashed processes can never leave a
// partial file under the final name. The temp file is fsynced before the
// rename — otherwise a machine crash could rename a name onto contents
// still in the page cache, replacing a good object with a hole — and the
// directory is fsynced after, so the rename itself is durable. Transient
// I/O errors are retried with a short exponential backoff.
func writeAtomic(path string, data []byte) error {
	var err error
	delay := 2 * time.Millisecond
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		err = writeAtomicOnce(path, data)
		if err == nil || !transientIO(err) {
			return err
		}
	}
	return err
}

// writeAtomicOnce is one write-fsync-rename attempt.
func writeAtomicOnce(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if beforeRename != nil {
		if err := beforeRename(path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir makes a completed rename durable by fsyncing its directory.
// Best-effort: not every platform or filesystem supports directory sync,
// and the rename's atomicity does not depend on it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// transientIO classifies errors worth retrying: interrupted syscalls and
// momentary resource exhaustion clear on their own; corrupt input or
// permission failures never do.
func transientIO(err error) bool {
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.EMFILE)
}

// mustJSON marshals a value whose encoding cannot fail (static structs).
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
