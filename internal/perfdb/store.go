package perfdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/store"
)

// This file persists the database through a content-addressed store, one
// object per *workload column* — everything Build computes for one
// workload across the request's (GPU types × counts). Column granularity
// is what makes invalidation partial: the legacy single-file snapshot is
// all-or-nothing (one new workload in the mix forces a full rebuild),
// while a column store rebuilds exactly the missing columns and reuses
// every other one byte for byte.
//
// A column's key hashes everything its entries depend on: the column
// schema version, the engine fingerprint (seed + tunables), the
// workload's model-graph fingerprint and global batch, the full GPU-type
// list with each device's spec fingerprint, and MaxN. The type list and
// MaxN belong to the key because the build's offline communication table
// spans all requested types and counts. Content addressing also shares
// columns across option sets: two requests that agree on those inputs hit
// the same objects regardless of which other workloads each one asked for.

// columnSchema versions the column dump layout; hashed into every key, so
// a bump orphans old objects instead of misreading them.
const columnSchema = 1

// columnDomain is the store domain database columns persist under.
const columnDomain = "perfdb"

// columnDump is the serializable contribution of one workload to a
// database: its entries over (types × counts) plus its profiling wall
// times.
type columnDump struct {
	Seed        uint64   `json:"seed"`
	Model       string   `json:"model"`
	GlobalBatch int      `json:"globalBatch"`
	GPUTypes    []string `json:"gpuTypes"`
	MaxN        int      `json:"maxN"`

	Entries []colEntry `json:"entries"`

	ArenaWall float64 `json:"arenaProfileWall"`
	DPWall    float64 `json:"dpProfileWall"`
	SiaWall   float64 `json:"siaProfileWall"`
}

type colEntry struct {
	GPUType string `json:"gpuType"`
	N       int    `json:"n"`
	Entry   Entry  `json:"entry"`
}

// StoreStats reports how a BuildOrLoadStore request was served.
type StoreStats struct {
	// LoadedColumns / BuiltColumns count workload columns served from the
	// store vs searched from scratch.
	LoadedColumns, BuiltColumns int
	// Skipped collects typed per-object read failures (corrupt, truncated,
	// version-skewed); each skipped column was rebuilt, so the database is
	// complete regardless. Callers warn, never abort.
	Skipped []error
}

// FromStore reports whether every requested column came from the store
// (the partial-build analogue of a full snapshot hit).
func (s StoreStats) FromStore() bool { return s.BuiltColumns == 0 && s.LoadedColumns > 0 }

// columnKey derives the content address of one workload column.
func columnKey(engineFP string, w model.Workload, graphFP string, gpuTypes []string, gpuFPs []string, maxN int) store.Key {
	fields := []string{
		"v" + strconv.Itoa(columnSchema), engineFP,
		w.Model, graphFP, strconv.Itoa(w.GlobalBatch),
		strconv.Itoa(maxN),
	}
	for i, t := range gpuTypes {
		fields = append(fields, t, gpuFPs[i])
	}
	return store.NewKey(columnDomain, fields...)
}

// BuildOrLoadStore returns a database for the request, serving each
// workload column from the content-addressed store when present and
// building only the missing columns — so adding one workload to an
// otherwise-cached request profiles and searches that workload alone,
// while every pre-existing column is reused byte for byte. Freshly built
// columns are written back for the next run.
//
// The merged result is bit-identical to a cold Build of the same options:
// workload columns are independent by construction (each build runs its
// own planner and profiler over the same pure engine, and measurement
// caches — per-workload or shared via Options.EvalCache — only memoize
// that engine's pure results), which
// TestStorePartialBuildMatchesColdBuild asserts.
//
// A column write failure returns the fully usable database together with
// a *SnapshotError, matching BuildOrLoad's warn-and-continue convention;
// unreadable column objects are rebuilt and reported in StoreStats.Skipped.
func BuildOrLoadStore(ctx context.Context, eng *exec.Engine, opts Options, st *store.Store) (*DB, StoreStats, error) {
	var stats StoreStats
	if ctx == nil {
		ctx = context.Background()
	}
	if st == nil {
		db, err := BuildCtx(ctx, eng, opts)
		if db != nil {
			stats.BuiltColumns = len(opts.Workloads)
		}
		return db, stats, err
	}
	if len(opts.GPUTypes) == 0 {
		return nil, stats, fmt.Errorf("perfdb: no GPU types")
	}
	if opts.Seed != 0 && opts.Seed != eng.Seed() {
		return nil, stats, fmt.Errorf("perfdb: options seed %d does not match engine seed %d", opts.Seed, eng.Seed())
	}
	if opts.MaxN < 1 {
		opts.MaxN = 16
	}
	if len(opts.Workloads) == 0 {
		opts.Workloads = model.Workloads()
	}

	engineFP := evalcache.EngineFingerprint(eng)
	gpuFPs := make([]string, len(opts.GPUTypes))
	for i, t := range opts.GPUTypes {
		spec, err := hw.Lookup(t)
		if err != nil {
			return nil, stats, err
		}
		gpuFPs[i] = evalcache.GPUFingerprint(spec)
	}

	keys := make([]store.Key, len(opts.Workloads))
	for i, w := range opts.Workloads {
		g, err := model.BuildClustered(w.Model)
		if err != nil {
			return nil, stats, err
		}
		keys[i] = columnKey(engineFP, w, evalcache.GraphFingerprint(g), opts.GPUTypes, gpuFPs, opts.MaxN)
	}

	db := &DB{
		GPUTypes:         opts.GPUTypes,
		MaxN:             opts.MaxN,
		seed:             eng.Seed(),
		entries:          map[Key]*Entry{},
		arenaProfileWall: map[model.Workload]float64{},
		dpProfileWall:    map[model.Workload]float64{},
		siaProfileWall:   map[model.Workload]float64{},
		observed:         map[Key]float64{},
	}

	var missing []model.Workload
	var missingKeys []store.Key
	for i, w := range opts.Workloads {
		var col columnDump
		err := st.Get(columnDomain, keys[i], &col)
		switch {
		case err == nil && col.Seed == eng.Seed() && col.Model == w.Model && col.GlobalBatch == w.GlobalBatch:
			db.importColumn(w, &col)
			stats.LoadedColumns++
			continue
		case err == nil:
			// The object passed the store's integrity checks but declares a
			// different identity than its key implies — treat as corrupt.
			stats.Skipped = append(stats.Skipped, &store.Error{
				Op: "get", Path: string(keys[i]),
				Err: fmt.Errorf("%w: column identity %s@%d/seed %d does not match request",
					store.ErrCorrupt, col.Model, col.GlobalBatch, col.Seed),
			})
		case !isNotFound(err):
			stats.Skipped = append(stats.Skipped, err)
		}
		missing = append(missing, w)
		missingKeys = append(missingKeys, keys[i])
	}

	if len(missing) > 0 {
		buildOpts := opts
		buildOpts.Workloads = missing
		built, err := BuildCtx(ctx, eng, buildOpts)
		if err != nil {
			return nil, stats, err
		}
		stats.BuiltColumns = len(missing)
		var saveErr error
		for i, w := range missing {
			col := built.exportColumn(w)
			db.importColumn(w, col)
			if err := st.Put(columnDomain, missingKeys[i], col); err != nil && saveErr == nil {
				saveErr = &SnapshotError{Path: string(missingKeys[i]), Err: err}
			}
		}
		if saveErr != nil {
			return db, stats, saveErr
		}
	}
	return db, stats, nil
}

// isNotFound distinguishes the ordinary cache miss from real read failures.
func isNotFound(err error) bool {
	return errors.Is(err, store.ErrNotFound)
}

// exportColumn snapshots one workload's contribution in deterministic
// order.
func (db *DB) exportColumn(w model.Workload) *columnDump {
	col := &columnDump{
		Seed: db.seed, Model: w.Model, GlobalBatch: w.GlobalBatch,
		GPUTypes: db.GPUTypes, MaxN: db.MaxN,
		ArenaWall: db.arenaProfileWall[w],
		DPWall:    db.dpProfileWall[w],
		SiaWall:   db.siaProfileWall[w],
	}
	for k, e := range db.entries {
		if k.Workload == w {
			col.Entries = append(col.Entries, colEntry{GPUType: k.GPUType, N: k.N, Entry: *e})
		}
	}
	sort.Slice(col.Entries, func(i, j int) bool {
		a, b := col.Entries[i], col.Entries[j]
		if a.GPUType != b.GPUType {
			return a.GPUType < b.GPUType
		}
		return a.N < b.N
	})
	return col
}

// importColumn merges one column into the database.
func (db *DB) importColumn(w model.Workload, col *columnDump) {
	for _, ce := range col.Entries {
		e := ce.Entry
		db.entries[Key{Workload: w, GPUType: ce.GPUType, N: ce.N}] = &e
	}
	db.arenaProfileWall[w] = col.ArenaWall
	db.dpProfileWall[w] = col.DPWall
	db.siaProfileWall[w] = col.SiaWall
}
