package arena

import (
	"fmt"

	"github.com/sjtu-epcc/arena/internal/hw"
)

// Option configures a Session at construction time. Options are applied
// in order; later options override earlier ones.
type Option func(*sessionConfig) error

// sessionConfig is the resolved configuration a Session is built from.
type sessionConfig struct {
	seed      uint64
	workers   int
	gpuTypes  []string
	maxN      int
	workloads []Workload
	cluster   *ClusterSpec
	cache     *EvalCache
	snapshot  string
	storeDir  string
	progress  ProgressFunc
	faults    *FaultsConfig
}

// defaultSessionConfig matches the paper's defaults: seed 42, every
// catalog GPU type reachable through the configured cluster (or all, when
// none is set at use time), allocations up to 16 GPUs, the default trace
// workload mix, and a worker pool as wide as the machine.
func defaultSessionConfig() sessionConfig {
	return sessionConfig{seed: 42, maxN: 16}
}

// WithSeed sets the determinism seed the session's engine — and therefore
// every measurement, search and database entry — derives from.
func WithSeed(seed uint64) Option {
	return func(c *sessionConfig) error {
		c.seed = seed
		return nil
	}
}

// WithWorkers bounds the worker-pool width of the session's parallel
// steps (candidate profiling inside searches, performance-database
// builds). n <= 0 means all cores. Worker counts change wall-clock time
// only, never results.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) error {
		c.workers = n
		return nil
	}
}

// WithGPUTypes restricts the session to the given catalog GPU types (the
// scope of ProfileJob, BuildPerfDB and the communication table). Unknown
// types are rejected at New time.
func WithGPUTypes(types ...string) Option {
	return func(c *sessionConfig) error {
		for _, t := range types {
			if _, err := hw.Lookup(t); err != nil {
				return err
			}
		}
		c.gpuTypes = append([]string(nil), types...)
		return nil
	}
}

// WithCluster scopes the session to a cluster: its GPU types drive
// profiling and database builds, and Simulate uses it as the default
// cluster spec.
func WithCluster(spec ClusterSpec) Option {
	return func(c *sessionConfig) error {
		c.cluster = &spec
		c.gpuTypes = spec.GPUTypes()
		return nil
	}
}

// WithMaxN caps per-job GPU allocations (power-of-two counts up to this
// bound are profiled and stored in the performance database).
func WithMaxN(n int) Option {
	return func(c *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("arena: WithMaxN(%d): need at least 1 GPU", n)
		}
		c.maxN = n
		return nil
	}
}

// WithWorkloads fixes the workload mix BuildPerfDB covers. Defaults to
// the trace generator's workload mix.
func WithWorkloads(ws ...Workload) Option {
	return func(c *sessionConfig) error {
		c.workloads = append([]Workload(nil), ws...)
		return nil
	}
}

// WithStore attaches a content-addressed measurement store rooted at dir,
// created on first use. It subsumes the WithEvalCache/WithPerfDBSnapshot
// pairing with one persistent mechanism covering both layers:
//
//   - the session's stage/op/plan measurement memo hydrates from the
//     store lazily — one object read per measurement context, on first
//     use — and Close flushes back the contexts that gained
//     measurements, so repeated CLI invocations skip even cold-search
//     profiling while a large shared store costs only what the session
//     actually touches;
//   - BuildPerfDB persists the performance database per workload column
//     and rebuilds only columns the store lacks, so adding one workload
//     no longer forces a full rebuild.
//
// Objects are keyed by content (engine seed and tunables, model-graph and
// device-spec fingerprints, workload params, schema version): changing any
// input orphans exactly the objects it invalidates, and processes — or
// differently configured sessions — whose inputs agree share objects.
// Corrupt or stale objects are skipped and rebuilt (see EvalStoreStats /
// PerfDBStoreStats), never served.
//
// The store directory admits one process at a time: New takes an advisory
// file lock released by Close (or process exit), and a second opener —
// say a CLI pointed at a running arena-server's store — fails fast with
// an error wrapping store.ErrLocked instead of racing the first's writes.
//
// An empty dir is a no-op. When both WithStore and WithPerfDBSnapshot are
// given, the store serves BuildPerfDB and the snapshot path is ignored.
func WithStore(dir string) Option {
	return func(c *sessionConfig) error {
		c.storeDir = dir
		return nil
	}
}

// WithEvalCache attaches an existing stage-measurement cache, sharing
// memoized measurements with other sessions or call sites bound to an
// engine with the same seed. The default is a fresh cache per session.
//
// Deprecated: in-process sharing still works, but for persistence across
// processes use WithStore, which loads and flushes the memo through a
// content-addressed on-disk store. The two compose: a shared cache is
// warmed from the store when both are configured.
func WithEvalCache(c *EvalCache) Option {
	return func(cfg *sessionConfig) error {
		cfg.cache = c
		return nil
	}
}

// WithPerfDBSnapshot persists the session's performance database as a
// JSON snapshot at path: BuildPerfDB loads it when it matches the
// session's request and writes it after a fresh build.
//
// Deprecated: use WithStore. The single-file snapshot is all-or-nothing —
// one new workload, seed or GPU type forces a full rebuild — while the
// store invalidates per workload column and shares content-identical
// columns across requests. WithPerfDBSnapshot is kept as a working shim
// and is ignored when WithStore is also configured.
func WithPerfDBSnapshot(path string) Option {
	return func(c *sessionConfig) error {
		c.snapshot = path
		return nil
	}
}

// WithFaults enables deterministic fault injection in the session's
// simulations: crashes preempt jobs on dead nodes and roll them back to
// their last modeled checkpoint, stragglers degrade throughput, and the
// Summary gains goodput/waste accounting. The realization is drawn from
// the session seed, so runs stay bit-identical. A Simulate call whose
// SimConfig sets its own Faults field overrides this default; the zero
// FaultsConfig here disables injection again.
func WithFaults(fc FaultsConfig) Option {
	return func(c *sessionConfig) error {
		c.faults = &fc
		return nil
	}
}

// WithProgress streams progress events from every long-running session
// method (BuildPerfDB, searches, ProfileJob, Simulate) to fn. The session
// serializes calls, so fn needs no locking of its own. Progress never
// affects results.
func WithProgress(fn ProgressFunc) Option {
	return func(c *sessionConfig) error {
		c.progress = fn
		return nil
	}
}
