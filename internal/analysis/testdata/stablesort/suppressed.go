package fixture

import "sort"

// A reasoned suppression: uniqueness makes the single key total, which
// the chain shape cannot express.
func byUniqueKey(ids []string) {
	//arena:allow stablesort ids are unique by construction, the order is total
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
