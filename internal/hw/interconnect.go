package hw

import "fmt"

// Link describes a point-to-point communication fabric with an alpha-beta
// cost model: transferring v bytes costs Alpha + v/Beta seconds. Alpha
// captures software + wire latency per message; Beta is the saturated
// bandwidth. EffCurveBytes is the message size at which the link reaches
// half of its saturated bandwidth — small messages see much lower
// effective bandwidth, which is why the profiler's volume interpolation
// (§3.4) needs multiple sample points rather than a single slope.
type Link struct {
	Name          string
	Alpha         float64 // per-message latency, seconds
	Beta          float64 // saturated bandwidth, bytes/s
	EffCurveBytes float64 // half-bandwidth message size, bytes
}

// Intra-node fabrics.
var (
	// NVLink4 (Hopper): 900 GB/s aggregate per GPU.
	NVLink4 = Link{Name: "NVLink4", Alpha: 3e-6, Beta: 900e9, EffCurveBytes: 512 * 1024}
	// NVLink3 (Ampere SXM): 600 GB/s.
	NVLink3 = Link{Name: "NVLink3", Alpha: 3.5e-6, Beta: 600e9, EffCurveBytes: 512 * 1024}
	// NVLink2 (Volta): 300 GB/s.
	NVLink2 = Link{Name: "NVLink2", Alpha: 4e-6, Beta: 300e9, EffCurveBytes: 512 * 1024}
	// PCIe 4.0 x16: 64 GB/s node-internal aggregate (paper, Cluster-B L20
	// description); a single peer-to-peer path sustains ~half of that.
	PCIe4 = Link{Name: "PCIe4", Alpha: 6e-6, Beta: 32e9, EffCurveBytes: 256 * 1024}
)

// Inter-node NICs (Table 1).
var (
	// ConnectX-5: 100 Gb/s InfiniBand EDR.
	ConnectX5 = Link{Name: "ConnectX5", Alpha: 12e-6, Beta: 12.5e9, EffCurveBytes: 1024 * 1024}
	// ConnectX-6: 200 Gb/s InfiniBand HDR.
	ConnectX6 = Link{Name: "ConnectX6", Alpha: 10e-6, Beta: 25e9, EffCurveBytes: 1024 * 1024}
)

// EffBandwidth returns the effective bandwidth (bytes/s) the link sustains
// for a message of v bytes: Beta * v / (v + EffCurveBytes). The curve is the
// standard latency-bandwidth ramp observed in NCCL bus-bandwidth sweeps.
func (l Link) EffBandwidth(v float64) float64 {
	if v <= 0 {
		return l.Beta
	}
	return l.Beta * v / (v + l.EffCurveBytes)
}

// TransferTime returns the time to move v bytes across the link including
// per-message latency and the bandwidth ramp.
func (l Link) TransferTime(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return l.Alpha + v/l.EffBandwidth(v)
}

// Primitive identifies a communication collective. The disaggregated
// profiler (§3.4) samples each primitive offline per topology and
// interpolates online by transfer volume.
type Primitive string

// Collectives used by the parallelism strategies in the paper: all-reduce
// for data-parallel gradient sync and tensor-parallel activations,
// all-gather/reduce-scatter for ZeRO-style sharding, all-to-all for MoE
// expert dispatch, and point-to-point sends between pipeline stages.
const (
	AllReduce     Primitive = "all-reduce"
	AllGather     Primitive = "all-gather"
	ReduceScatter Primitive = "reduce-scatter"
	AllToAll      Primitive = "all-to-all"
	P2P           Primitive = "p2p"
)

// Primitives lists all supported collectives in canonical order.
func Primitives() []Primitive {
	return []Primitive{AllReduce, AllGather, ReduceScatter, AllToAll, P2P}
}

// Topology describes the span of a communicator group: how many
// participants and whether the group crosses node boundaries. The
// bottleneck link for a ring collective is the slowest hop in the ring —
// the inter-node NIC as soon as the group spans nodes. NICShare accounts
// for ranks co-located on one node sharing that node's single NIC: a ring
// over 8 GPUs on 2-GPU nodes drives each NIC with two ranks' traffic,
// halving the effective per-rank bandwidth.
type Topology struct {
	GPUType   string // catalog name, determines link speeds
	Workers   int    // communicator size (k)
	CrossNode bool   // true when the ring includes an inter-node hop
	NICShare  int    // ranks of this group per node (≥1); 0 means 1
}

// String implements fmt.Stringer for diagnostics and table keys.
func (t Topology) String() string {
	span := "intra"
	if t.CrossNode {
		span = fmt.Sprintf("inter/share%d", t.nicShare())
	}
	return fmt.Sprintf("%s/%d/%s", t.GPUType, t.Workers, span)
}

func (t Topology) nicShare() int {
	if t.NICShare < 1 {
		return 1
	}
	return t.NICShare
}

// GroupTopology derives the Topology for k workers of the given GPU type
// placed with buddy locality: groups up to GPUsPerNode stay on one node;
// larger groups pack GPUsPerNode ranks per node, all sharing that NIC.
func GroupTopology(g GPU, k int) Topology {
	t := Topology{GPUType: g.Name, Workers: k, NICShare: 1}
	if k > g.GPUsPerNode {
		t.CrossNode = true
		t.NICShare = g.GPUsPerNode
	}
	return t
}

// bottleneck returns the ring's slowest link for the topology, with the
// inter-node NIC bandwidth divided among co-located ranks.
func (t Topology) bottleneck() (Link, error) {
	g, err := Lookup(t.GPUType)
	if err != nil {
		return Link{}, err
	}
	if t.CrossNode {
		l := g.InterLink
		l.Beta /= float64(t.nicShare())
		return l, nil
	}
	return g.IntraLink, nil
}

// CollectiveTime returns the analytic cost of running primitive p over v
// bytes with the given topology. Ring algorithms are assumed (the NCCL
// default at these scales):
//
//	all-reduce:      2(k-1)/k * v / B  + 2(k-1) * alpha
//	all-gather:       (k-1)/k * v / B  +  (k-1) * alpha
//	reduce-scatter:   (k-1)/k * v / B  +  (k-1) * alpha
//	all-to-all:       (k-1)/k * v / B  +  (k-1) * alpha   (pairwise exchange)
//	p2p:                       v / B  +          alpha
//
// where B is the volume-dependent effective bandwidth of the bottleneck
// link. v is the per-participant payload (e.g. the gradient bytes each
// replica contributes for all-reduce).
func CollectiveTime(p Primitive, t Topology, v float64) (float64, error) {
	if v < 0 {
		return 0, fmt.Errorf("hw: negative volume %g", v)
	}
	link, err := t.bottleneck()
	if err != nil {
		return 0, err
	}
	k := float64(t.Workers)
	if t.Workers <= 1 && p != P2P {
		return 0, nil // single participant: no communication
	}
	// Effective bandwidth is set by the per-step chunk size (v/k for rings).
	chunk := v
	if t.Workers > 1 {
		chunk = v / k
	}
	bw := link.EffBandwidth(chunk)
	switch p {
	case AllReduce:
		return 2*(k-1)/k*v/bw + 2*(k-1)*link.Alpha, nil
	case AllGather, ReduceScatter, AllToAll:
		return (k-1)/k*v/bw + (k-1)*link.Alpha, nil
	case P2P:
		return link.TransferTime(v), nil
	default:
		return 0, fmt.Errorf("hw: unknown primitive %q", p)
	}
}

// MustCollectiveTime is CollectiveTime for callers with validated inputs.
func MustCollectiveTime(p Primitive, t Topology, v float64) float64 {
	d, err := CollectiveTime(p, t, v)
	if err != nil {
		panic(err)
	}
	return d
}

// P2PTime returns the cost of a point-to-point activation transfer between
// pipeline stages of the given GPU type. crossNode selects the NIC path.
func P2PTime(g GPU, v float64, crossNode bool) float64 {
	l := g.IntraLink
	if crossNode {
		l = g.InterLink
	}
	return l.TransferTime(v)
}
