package hw

import (
	"fmt"
	"sort"
)

// Region describes a homogeneous pool of GPUs of one type, matching the
// production layout the paper describes (§2.1, §3.5): clusters house
// homogeneous GPUs in the same region with neighboring nodes, and a job is
// always allocated GPUs of a single type (intra-job homogeneity).
type Region struct {
	GPUType string // catalog name
	Nodes   int    // number of nodes in the region
}

// GPUs returns the region's total GPU count.
func (r Region) GPUs() (int, error) {
	g, err := Lookup(r.GPUType)
	if err != nil {
		return 0, err
	}
	return r.Nodes * g.GPUsPerNode, nil
}

// ClusterSpec is the static description of a heterogeneous cluster: a set
// of typed regions. The three evaluation clusters of §5.1 are provided as
// constructors below.
type ClusterSpec struct {
	Name    string
	Regions []Region
}

// Validate checks all regions reference known GPU types and have capacity.
func (c ClusterSpec) Validate() error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("hw: cluster %q has no regions", c.Name)
	}
	seen := map[string]bool{}
	for _, r := range c.Regions {
		if _, err := Lookup(r.GPUType); err != nil {
			return fmt.Errorf("hw: cluster %q: %w", c.Name, err)
		}
		if r.Nodes <= 0 {
			return fmt.Errorf("hw: cluster %q: region %s has %d nodes", c.Name, r.GPUType, r.Nodes)
		}
		if seen[r.GPUType] {
			return fmt.Errorf("hw: cluster %q: duplicate region for %s", c.Name, r.GPUType)
		}
		seen[r.GPUType] = true
	}
	return nil
}

// TotalGPUs returns the cluster-wide GPU count.
func (c ClusterSpec) TotalGPUs() int {
	total := 0
	for _, r := range c.Regions {
		n, err := r.GPUs()
		if err != nil {
			continue
		}
		total += n
	}
	return total
}

// GPUTypes returns the cluster's GPU type names sorted fastest-first
// (catalog order), restricted to types present in the cluster.
func (c ClusterSpec) GPUTypes() []string {
	present := map[string]bool{}
	for _, r := range c.Regions {
		present[r.GPUType] = true
	}
	var out []string
	for _, name := range TypeNames() {
		if present[name] {
			out = append(out, name)
		}
	}
	// Any type outside the canonical order (custom catalogs) goes last.
	var extra []string
	for t := range present {
		found := false
		for _, o := range out {
			if o == t {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, t)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Region returns the region for a GPU type, if present.
func (c ClusterSpec) Region(gpuType string) (Region, bool) {
	for _, r := range c.Regions {
		if r.GPUType == gpuType {
			return r, true
		}
	}
	return Region{}, false
}

// ClusterA is the paper's first physical testbed: 32 nodes, 64 GPUs —
// 16 nodes with 2×A40 and 16 nodes with 2×A10 (§5.1).
func ClusterA() ClusterSpec {
	return ClusterSpec{
		Name: "Cluster-A",
		Regions: []Region{
			{GPUType: "A40", Nodes: 16},
			{GPUType: "A10", Nodes: 16},
		},
	}
}

// ClusterB is the paper's cutting-edge testbed: 128 H100 (16 nodes × 8)
// and 256 L20 (16 nodes × 16) (§5.1).
func ClusterB() ClusterSpec {
	return ClusterSpec{
		Name: "Cluster-B",
		Regions: []Region{
			{GPUType: "H100", Nodes: 16},
			{GPUType: "L20", Nodes: 16},
		},
	}
}

// ClusterSim is the paper's 1,280-GPU simulated cluster with 4 GPU types:
// A100 (80 nodes × 4), A40 (160 × 2), A10 (160 × 2), V100 (20 × 16) (§5.1).
func ClusterSim() ClusterSpec {
	return ClusterSpec{
		Name: "Cluster-Sim",
		Regions: []Region{
			{GPUType: "A100", Nodes: 80},
			{GPUType: "A40", Nodes: 160},
			{GPUType: "A10", Nodes: 160},
			{GPUType: "V100", Nodes: 20},
		},
	}
}

// ClusterBHomogeneous is the homogeneous robustness study setup of §5.7:
// only the 128 H100 GPUs of Cluster-B.
func ClusterBHomogeneous() ClusterSpec {
	return ClusterSpec{
		Name: "Cluster-B-H100",
		Regions: []Region{
			{GPUType: "H100", Nodes: 16},
		},
	}
}
