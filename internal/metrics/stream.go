package metrics

import "sort"

// P2Quantile estimates a single quantile online with the P² algorithm
// (Jain & Chlamtac, 1985): five markers whose heights are nudged by a
// piecewise-parabolic update as observations stream in. O(1) memory and
// O(1) per observation, fully deterministic for a given input order —
// which is what lets two simulator cores that process completions in the
// same order report identical sketch values.
//
// For fewer than five observations the estimate is exact (it falls back
// to the interpolated percentile of everything seen).
type P2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based counts)
	des  [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
	init bool
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	return &P2Quantile{p: p, inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1}}
}

// P returns the quantile this estimator tracks.
func (s *P2Quantile) P() float64 { return s.p }

// Count returns the number of observations added.
func (s *P2Quantile) Count() int { return s.n }

// Add feeds one observation.
func (s *P2Quantile) Add(x float64) {
	if !s.init {
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			sort.Float64s(s.q[:])
			s.pos = [5]float64{1, 2, 3, 4, 5}
			s.des = [5]float64{1, 1 + 2*s.p, 1 + 4*s.p, 3 + 2*s.p, 5}
			s.init = true
		}
		return
	}
	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := 0; i < 5; i++ {
		s.des[i] += s.inc[i]
	}
	// Nudge the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.des[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			if qn := s.parabolic(i, sign); s.q[i-1] < qn && qn < s.q[i+1] {
				s.q[i] = qn
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
	s.n++
}

// parabolic is P²'s piecewise-parabolic height prediction for marker i
// moved by sign (±1).
func (s *P2Quantile) parabolic(i int, sign float64) float64 {
	return s.q[i] + sign/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+sign)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-sign)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots
// a neighbouring marker.
func (s *P2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return s.q[i] + sign*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Value returns the current quantile estimate (0 with no observations).
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		return 0
	}
	if !s.init {
		return Percentile(s.q[:s.n], s.p)
	}
	return s.q[2]
}

// Stream accumulates summary statistics one observation at a time: an
// exact count and mean plus P² sketches for any requested quantiles.
// It is the O(1)-memory replacement for the Summary's raw value slices
// when the simulator runs in streaming mode. Additions in a given order
// produce bitwise-identical sums to Mean over a slice in that order.
type Stream struct {
	n      int
	sum    float64
	quants []*P2Quantile
}

// NewStream returns a collector sketching the given quantiles.
func NewStream(ps ...float64) *Stream {
	st := &Stream{}
	for _, p := range ps {
		st.quants = append(st.quants, NewP2Quantile(p))
	}
	return st
}

// Add feeds one observation.
func (st *Stream) Add(x float64) {
	st.n++
	st.sum += x
	for _, q := range st.quants {
		q.Add(x)
	}
}

// Count returns the number of observations.
func (st *Stream) Count() int { return st.n }

// Sum returns the running sum.
func (st *Stream) Sum() float64 { return st.sum }

// Mean returns the exact mean (0 with no observations).
func (st *Stream) Mean() float64 {
	if st.n == 0 {
		return 0
	}
	return st.sum / float64(st.n)
}

// Quantile returns the sketch estimate for a configured quantile p, or 0
// if p was not requested at construction.
func (st *Stream) Quantile(p float64) float64 {
	for _, q := range st.quants {
		if q.P() == p {
			return q.Value()
		}
	}
	return 0
}
