// Package sim is the discrete-event cluster simulator: the reproduction
// of the paper's simulator.py (§4: "Arena provides a simulator to conduct
// large-scale scheduling experiments, ensuring high fidelity by sharing
// scheduling codes and logics with the real-testbed scheduler"). The same
// Policy implementations drive both this simulator and any finer-grained
// configuration — exactly the code-sharing fidelity argument of §5.2.
//
// Time advances in fixed scheduling rounds (5 minutes in the paper).
// Between rounds, running jobs progress continuously; completions free
// resources at their exact times. Reconfiguration overheads (AP search,
// checkpoint-resume) suppress a job's throughput until they elapse.
package sim

import (
	"context"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/clock"
	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/rng"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Config drives one simulation.
type Config struct {
	Spec   hw.ClusterSpec
	Policy sched.Policy
	// Jobs is the materialized trace. Kept working for every existing
	// call site; prefer Source for anything large.
	//
	// Deprecated: use Source (trace.SliceSource wraps a slice).
	Jobs []trace.Job
	// Source streams trace jobs on demand (non-decreasing SubmitTime),
	// so a 100k–1M-job synthetic trace never exists as a slice. Mutually
	// exclusive with Jobs. A Source that does not implement trace.Spanner
	// needs an explicit MaxRounds. Each Source is single-use: build a
	// fresh one per simulation.
	Source trace.Source
	DB     *perfdb.DB

	// RoundSeconds is the scheduling interval (paper: 5 minutes).
	RoundSeconds float64
	// MaxRounds bounds the simulation; 0 derives a horizon from the trace.
	MaxRounds int
	// MaxPerJob caps per-job allocations; 0 uses the database's MaxN.
	MaxPerJob int

	// ThroughputNoise adds deterministic per-(job, segment) variance to
	// achieved throughput, emulating real-testbed measurement conditions
	// for the §5.2 fidelity study. 0 = noiseless simulation.
	ThroughputNoise float64
	Seed            uint64

	// IncludeUnfinished censors unfinished jobs' JCT at the horizon and
	// includes them (Fig. 12's "unfinished jobs included").
	IncludeUnfinished bool

	// Streaming keeps memory O(active jobs): completed jobs are folded
	// into running aggregates (exact counts/means, P² quantile sketches
	// for P50/P90 JCT) and discarded instead of retained. Result.Jobs is
	// nil and Summary.JCTs/QueueTimes are nil in this mode; P50JCT and
	// P90JCT are sketch estimates rather than exact order statistics.
	Streaming bool

	// ReferenceScan runs the legacy per-round linear-scan core instead of
	// the event-heap core. Both cores share every progress/accounting
	// primitive and differ only in how the next due event is found, so
	// results are bit-identical — the parity tests prove it. The scan is
	// O(running jobs) per event and exists as the oracle the heap is
	// checked against.
	ReferenceScan bool

	// ReferenceScore runs the policies' full per-round candidate rescans
	// instead of their incremental score caches (launch ladders, failure
	// memos, marginal-gain heaps). Both paths make identical decisions —
	// the score parity tests prove it — so the flag exists, like
	// ReferenceScan, purely as the oracle the caches are checked against.
	// Policies without caches (FCFS) ignore it.
	ReferenceScore bool

	// Faults enables deterministic fault injection: crashes preempt the
	// jobs on the dead node and roll them back to their last modeled
	// checkpoint, stragglers degrade achieved throughput, and the Summary
	// gains goodput/wasted accounting. Nil (or a disabled config) keeps
	// the failure-free simulation bit-identical to the pre-fault model.
	Faults *faults.Config

	// Clock drives the round loop. Nil uses a virtual clock (discrete-
	// event time, no wall time burned — the classic simulator). A wall
	// clock turns the very same loop into real-time execution: rounds
	// still run at their nominal instants k*RoundSeconds, so results are
	// bit-identical across clocks. internal/server plugs its clock into
	// the same Engine this loop drives.
	Clock clock.Clock

	// Progress, when non-nil, receives one "sim.round" event per
	// scheduling round (called from the simulation loop, single-threaded).
	// It never affects outcomes.
	Progress core.ProgressFunc
}

// Result carries the aggregated metrics plus final job states.
type Result struct {
	metrics.Summary
	Jobs []*sched.Job
	// Horizon is the simulated end time.
	Horizon float64
}

// Run executes the simulation to completion or the round bound.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the round loop stops at
// the first cancelled check — always between rounds, so an in-flight
// round completes — and returns ctx.Err() with a nil result.
// Uncancelled, the simulation is bit-identical to Run.
//
// RunCtx is a thin driver over Engine: it hands Engine.Round to
// clock.Tick on the configured clock (virtual by default). The live
// server (internal/server) drives the identical Engine and loop with a
// wall clock and a journal — there is no forked round logic.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg() // normalized defaults (RoundSeconds, MaxPerJob)
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewVirtual()
	}
	maxRounds := e.MaxRounds()
	// The latest instant this run can ever simulate: nothing submitted
	// after it can be admitted, so an idle engine whose next arrival lies
	// beyond it would only burn empty rounds until the MaxRounds cap.
	horizonEnd := float64(maxRounds+1) * cfg.RoundSeconds
	lastNow := 0.0
	err = clock.Tick(ctx, clk, cfg.RoundSeconds, func(round int, now float64) bool {
		if round >= maxRounds {
			return false
		}
		lastNow = now
		e.Round(now)
		cfg.Progress.Emit("sim.round", cfg.Policy.Name(), round+1, maxRounds)
		return !(round > 1 && (e.Done() || e.idleBeyond(horizonEnd)))
	})
	if err != nil {
		return nil, err
	}
	return e.Finish(lastNow + cfg.RoundSeconds), nil
}

// state is the simulator's mutable world.
type state struct {
	cfg     Config
	cluster *cluster.Cluster

	pending []*sched.Job // submitted in the future
	queued  []*sched.Job
	running []*sched.Job
	done_   []*sched.Job // empty in streaming mode (jobs fold into aggregates)

	// Streaming trace source (nil when cfg.Jobs was staged up front).
	src     trace.Source
	srcPeek *trace.Job // pulled but not yet due
	srcDone bool

	thrSeries []float64
	lastTime  float64

	// Event core. heap holds completion predictions (epoch-validated,
	// lazily deleted) and the next pending fault event; predSeq is the
	// monotone counter that totally orders same-instant completions.
	heap    eventHeap
	predSeq uint64

	// Fault injection (nil faults = disabled; see internal/faults).
	faults *faults.Config
	events faults.Schedule // materialized realization, time-ordered
	evIdx  int             // next unapplied event

	// Per-job simulation record. sim is keyed by job pointer and only
	// ever read through a specific job — never iterated — so map order
	// cannot leak into results. Entries are deleted when jobs retire.
	sim           map[*sched.Job]*jobSim
	goodputGPUSec float64
	wastedGPUSec  float64
	recomputeSec  float64

	// Streaming-mode aggregates (cfg.Streaming): what finish() would
	// have derived from retained job records.
	jctS, queueS                 *metrics.Stream
	mFinished, mDropped, mFailed int
	mDeadlineSat, mDeadlineTot   int
	mResched                     float64
	mLaunched                    int
	mPreempt, mRestarts          int
}

// jobSim is one job's simulation record: checkpoint accounting plus the
// anchored-progress state the event core runs on.
//
// The progress model: RemainingSamples is exact as of instant `anchor`;
// between anchors the job trains at the cached effective throughput
// `thr` (from BusyUntil onwards), so its completion instant is fully
// determined the moment its rate last changed:
//
//	pred = max(anchorAtRateChange, BusyUntil) + RemainingSamples/thr
//
// pred is computed once per rate change (launch, rescale, migrate,
// straggler episode edge) and is *the* completion time — materializing
// progress at later instants never recomputes it, so completion times
// cannot drift with how often progress is observed, and the scan and
// heap cores agree bitwise by construction.
type jobSim struct {
	sinceCkptSec    float64 // productive seconds since the last checkpoint
	sinceCkptGPUSec float64 // GPU-seconds accumulated in that window
	retainedGPUSec  float64 // all GPU-seconds currently counted as goodput

	anchor float64 // instant RemainingSamples was last materialized
	thr    float64 // cached effective throughput (0 = not progressing)
	pred   float64 // predicted completion instant (+Inf when never)
	seq    uint64  // rate-change sequence: same-instant completion order
	epoch  uint64  // invalidates stale heap entries on any rate change
}

// simFor returns (creating on first use) a job's simulation record.
func (s *state) simFor(j *sched.Job) *jobSim {
	js, ok := s.sim[j]
	if !ok {
		js = &jobSim{pred: math.Inf(1)}
		s.sim[j] = js
	}
	return js
}

// advance processes every due event — completions at their predicted
// instants, fault events at theirs — up to and including t, in global
// (time, completion-before-fault, sequence) order. Completions at the
// same instant as a crash win (kindRank orders crashes last for the same
// reason). Both cores perform the identical operation sequence; they
// differ only in how the next due event is found (heap pop vs. linear
// scan), which is what the parity tests pin down.
func (s *state) advance(t float64) {
	if s.cfg.ReferenceScan {
		s.advanceScan(t)
	} else {
		s.advanceHeap(t)
	}
	s.lastTime = t
}

// advanceScan is the reference core: each iteration linearly scans the
// running set for the earliest predicted completion and plays it against
// the next fault event. O(running jobs) per event.
func (s *state) advanceScan(t float64) {
	for {
		var next *sched.Job
		var nextJS *jobSim
		for _, j := range s.running {
			js := s.sim[j]
			if js == nil || js.pred > t {
				continue
			}
			if nextJS == nil || js.pred < nextJS.pred ||
				(js.pred == nextJS.pred && js.seq < nextJS.seq) {
				next, nextJS = j, js
			}
		}
		faultAt := math.Inf(1)
		if s.evIdx < len(s.events) {
			faultAt = s.events[s.evIdx].Time
		}
		switch {
		case nextJS != nil && nextJS.pred <= faultAt:
			s.materialize(next, nextJS.pred)
			s.complete(next, nextJS.pred)
		case faultAt <= t:
			ev := s.events[s.evIdx]
			s.evIdx++
			s.applyFault(ev)
		default:
			return
		}
	}
}

// materialize brings a job's RemainingSamples (and checkpoint-window
// accounting) up to date at instant t, crossing checkpoint boundaries
// exactly as the legacy per-segment walk did. It does not touch the
// completion prediction — see jobSim.
func (s *state) materialize(j *sched.Job, t float64) {
	js := s.simFor(j)
	if t <= js.anchor {
		return
	}
	start := math.Max(js.anchor, j.BusyUntil)
	if js.thr > 0 && start < t {
		s.progressJob(j, start, t, js.thr)
	}
	js.anchor = t
}

// materializeRunning refreshes every running job at a round boundary, in
// launch order: policies read RemainingSamples directly, so the field
// must be current when Assign runs. O(running) with O(1) float work per
// job — this is the only per-round whole-set touch the core retains.
func (s *state) materializeRunning(now float64) {
	for _, j := range s.running {
		s.materialize(j, now)
	}
}

// rePredict re-anchors a job after a rate change at instant t: caches
// its new effective throughput, fixes its completion prediction, and
// (heap core) publishes the new prediction, invalidating prior entries
// via the epoch bump. Callers must materialize progress at t first
// (launch needs no progress; everything else does).
func (s *state) rePredict(j *sched.Job, t float64) {
	js := s.simFor(j)
	js.anchor = t
	js.thr = s.effectiveThr(j)
	js.epoch++
	s.predSeq++
	js.seq = s.predSeq
	if js.thr > 0 {
		js.pred = math.Max(t, j.BusyUntil) + j.RemainingSamples/js.thr
		if !s.cfg.ReferenceScan {
			s.heap.push(event{at: js.pred, class: classCompletion, seq: js.seq, job: j, epoch: js.epoch})
		}
	} else {
		js.pred = math.Inf(1)
	}
}

// invalidate takes a job out of the progress model (preemption, eviction,
// requeue): stale heap entries die via the epoch bump.
func (s *state) invalidate(j *sched.Job) {
	js := s.simFor(j)
	js.thr = 0
	js.pred = math.Inf(1)
	js.epoch++
}

// progressJob advances one job over [start, b) at throughput thr,
// crossing checkpoint boundaries. The checkpoint clock ticks on
// *productive* time: every CheckpointInterval seconds of actual training
// the job durably saves, and a later crash rolls back only to that point.
// Without fault injection the interval splitting is skipped, keeping the
// single-subtraction arithmetic (and so the trajectory) bit-identical to
// the failure-free model.
func (s *state) progressJob(j *sched.Job, start, b, thr float64) {
	n := float64(j.Alloc.N)
	ac := s.simFor(j)
	dt := b - start
	if s.faults != nil && s.faults.CheckpointInterval > 0 {
		ci := s.faults.CheckpointInterval
		for ac.sinceCkptSec+dt >= ci {
			step := ci - ac.sinceCkptSec
			j.RemainingSamples -= step * thr
			if j.RemainingSamples < 0 {
				j.RemainingSamples = 0
			}
			s.goodputGPUSec += step * n
			ac.retainedGPUSec += step * n
			j.CheckpointRemaining = j.RemainingSamples
			ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
			dt -= step
		}
	}
	j.RemainingSamples -= dt * thr
	if j.RemainingSamples < 0 {
		j.RemainingSamples = 0
	}
	s.goodputGPUSec += dt * n
	ac.retainedGPUSec += dt * n
	ac.sinceCkptSec += dt
	ac.sinceCkptGPUSec += dt * n
}

// effectiveThr is the job's achieved throughput including straggler
// degradation and the fidelity noise knob.
func (s *state) effectiveThr(j *sched.Job) float64 {
	thr := j.ActualThr
	if thr <= 0 {
		return 0
	}
	if f := j.SlowFactor; f > 0 && f < 1 {
		thr *= f
	}
	if s.cfg.ThroughputNoise > 0 {
		r := rng.Derive(s.cfg.Seed, rng.HashString(j.Trace.ID), uint64(j.Resched))
		thr *= 1 + s.cfg.ThroughputNoise*(2*r.Float64()-1)
	}
	return thr
}

// complete finishes a job and frees its resources.
func (s *state) complete(j *sched.Job, at float64) {
	j.State = sched.StateFinished
	j.FinishedAt = at
	s.cluster.Free(j.Trace.ID)
	s.running = removeJob(s.running, j)
	s.retire(j)
}

// retire takes a job that reached a terminal state (finished, dropped,
// failed) out of the live world. Normally it joins done_ for the final
// report; in streaming mode it is folded into the running aggregates and
// dropped, which is what keeps memory O(active jobs).
func (s *state) retire(j *sched.Job) {
	delete(s.sim, j)
	if !s.cfg.Streaming {
		s.done_ = append(s.done_, j)
		return
	}
	s.accountTerminal(j)
}

// accountTerminal folds one terminal job into the streaming aggregates —
// the per-job arm of finish()'s summary loop, applied at retirement time
// instead of at the end.
func (s *state) accountTerminal(j *sched.Job) {
	switch j.State {
	case sched.StateFinished:
		s.mFinished++
		s.jctS.Add(j.FinishedAt - j.Trace.SubmitTime)
		if j.Trace.Deadline > 0 {
			s.mDeadlineTot++
			if j.FinishedAt <= j.Trace.SubmitTime+j.Trace.Deadline {
				s.mDeadlineSat++
			}
		}
	case sched.StateDropped:
		s.mDropped++
		if j.Trace.Deadline > 0 {
			s.mDeadlineTot++
		}
	case sched.StateFailed:
		s.mFailed++
		if j.Trace.Deadline > 0 {
			s.mDeadlineTot++
		}
	}
	if j.LaunchedAt >= 0 {
		s.queueS.Add(j.LaunchedAt - j.Trace.SubmitTime)
		s.mLaunched++
		s.mResched += float64(j.Resched)
	}
	s.mPreempt += j.Preemptions
	s.mRestarts += j.Restarts
}

// stage registers one trace job as a future submission, keeping pending
// sorted by effective submission time (SubmitTime plus the policy's
// profiling prepend) with ties in arrival order — the insertion-sort
// equivalent of the batch constructor's stable sort, so slice staging,
// streaming pulls and live Submits all produce identical pending order.
func (s *state) stage(tj trace.Job) *sched.Job {
	j := &sched.Job{
		Trace:            tj,
		State:            sched.StateQueued,
		SubmittedAt:      tj.SubmitTime + s.cfg.Policy.ProfilePrepend(s.cfg.DB, tj.Workload),
		LaunchedAt:       -1,
		RemainingSamples: tj.TotalSamples(),
		CurPriority:      tj.Priority,
	}
	// First index whose SubmittedAt exceeds the new job's: insert there,
	// i.e. after every earlier-or-equal submission.
	i := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].SubmittedAt > j.SubmittedAt
	})
	s.pending = append(s.pending, nil)
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = j
	return j
}

// pull stages every source job submitted at or before now. The profiling
// prepend only ever delays a submission, so pulling by raw SubmitTime
// covers every job admit() could possibly admit this round.
func (s *state) pull(now float64) {
	for s.src != nil {
		if s.srcPeek == nil {
			if s.srcDone {
				return
			}
			j, ok := s.src.Next()
			if !ok {
				s.srcDone = true
				return
			}
			s.srcPeek = &j
		}
		if s.srcPeek.SubmitTime > now {
			return
		}
		s.stage(*s.srcPeek)
		s.srcPeek = nil
	}
}

// drainSource stages everything the source still holds — the
// non-streaming finish path, where the final report must see the whole
// trace exactly as if it had been staged up front.
func (s *state) drainSource() {
	if s.src == nil {
		return
	}
	if s.srcPeek != nil {
		s.stage(*s.srcPeek)
		s.srcPeek = nil
	}
	for !s.srcDone {
		j, ok := s.src.Next()
		if !ok {
			s.srcDone = true
			break
		}
		s.stage(j)
	}
}

// srcExhausted reports whether the source has nothing left to emit.
func (s *state) srcExhausted() bool {
	return s.src == nil || (s.srcDone && s.srcPeek == nil)
}

// admit moves submitted jobs into the queue. pending is sorted by
// SubmittedAt, so this touches exactly the due prefix — jobs that cannot
// change state this round are never re-examined.
func (s *state) admit(now float64) {
	i := 0
	for ; i < len(s.pending); i++ {
		if s.pending[i].SubmittedAt > now {
			break
		}
		s.queued = append(s.queued, s.pending[i])
	}
	s.pending = s.pending[i:]
}

// apply executes the policy's assignment: drops, shrinks, launches, and
// growths, charging deployment overheads.
func (s *state) apply(now float64, asg sched.Assignment) {
	for _, id := range asg.Drop {
		if j := s.findQueued(id); j != nil {
			j.State = sched.StateDropped
			j.FinishedAt = now
			s.queued = removeJob(s.queued, j)
			s.retire(j)
		}
	}
	if len(asg.Migrate) > 0 {
		migrate := append([]string(nil), asg.Migrate...)
		sort.Strings(migrate)
		for _, id := range migrate {
			if _, placed := asg.Place[id]; placed {
				continue // a rescale supersedes the migration
			}
			if j := s.findAny(id); j != nil && j.Running() {
				s.migrate(now, j)
			}
		}
	}
	if len(asg.Place) == 0 {
		return
	}
	// Deterministic application order: shrinks and moves of running jobs
	// first (they free capacity), then queued launches, then growths.
	ids := make([]string, 0, len(asg.Place))
	for id := range asg.Place {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rank := func(id string) int {
		j := s.findAny(id)
		if j == nil {
			return 9
		}
		target := asg.Place[id]
		switch {
		case j.State == sched.StateQueued:
			return 2
		case target.N < j.Alloc.N:
			return 0
		case target.GPUType != j.Alloc.GPUType:
			return 1
		default:
			return 3
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return rank(ids[a]) < rank(ids[b]) })

	for _, id := range ids {
		target := asg.Place[id]
		j := s.findAny(id)
		if j == nil || target.IsZero() {
			continue
		}
		switch j.State {
		case sched.StateQueued:
			s.launch(now, j, target)
		case sched.StateRunning:
			if j.Alloc == target {
				continue
			}
			s.rescale(now, j, target)
		}
	}
}

// launch places a queued job.
func (s *state) launch(now float64, j *sched.Job, target sched.Alloc) {
	w := j.Workload()
	actual := s.cfg.Policy.ActualThr(s.cfg.DB, w, target.GPUType, target.N)
	if actual <= 0 {
		return // perceived-feasible but truly infeasible: stays queued
	}
	if err := s.cluster.Alloc(j.Trace.ID, target.GPUType, target.N); err != nil {
		return // fragmentation: retry next round
	}
	j.State = sched.StateRunning
	j.Alloc = target
	j.ActualThr = actual
	j.BusyUntil = now + s.cfg.Policy.DeployOverhead(s.cfg.DB, w, target.GPUType, target.N)
	if j.Restarting {
		// Crash-restart: restoring the checkpoint stalls the job on top
		// of the deployment search.
		j.BusyUntil += sched.CheckpointResume
		j.Restarting = false
	}
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	// A (re)launch starts a fresh checkpoint epoch from the restored state.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.simFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
	if j.LaunchedAt < 0 {
		j.LaunchedAt = now
	}
	s.queued = removeJob(s.queued, j)
	s.running = append(s.running, j)
	s.rePredict(j, now)
}

// migrate moves a running job to a fresh allocation of the same shape
// (straggler routing): the parallelism plan survives, so only checkpoint-
// resume is charged, no new search. Free-then-realloc with the cluster's
// healthy-first placement is what routes it off the degraded node.
func (s *state) migrate(now float64, j *sched.Job) {
	s.materialize(j, now)
	old := j.Alloc
	s.cluster.Free(j.Trace.ID)
	if err := s.cluster.Alloc(j.Trace.ID, old.GPUType, old.N); err != nil {
		// The freed block must refit (nothing else allocates in between);
		// requeue defensively if it somehow cannot.
		j.State = sched.StateQueued
		j.Alloc = sched.Alloc{}
		j.ActualThr = 0
		j.SlowFactor = 0
		s.running = removeJob(s.running, j)
		s.queued = append(s.queued, j)
		s.invalidate(j)
		return
	}
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	j.Migrations++
	j.Resched++
	j.BusyUntil = math.Max(now, j.BusyUntil) + sched.CheckpointResume
	// Migration checkpoints the job: progress so far is durable.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.simFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
	s.rePredict(j, now)
}

// rescale moves a running job to a new allocation, paying checkpoint-
// resume plus the parallelism search.
func (s *state) rescale(now float64, j *sched.Job, target sched.Alloc) {
	w := j.Workload()
	actual := s.cfg.Policy.ActualThr(s.cfg.DB, w, target.GPUType, target.N)
	if actual <= 0 {
		return
	}
	s.materialize(j, now)
	old := j.Alloc
	s.cluster.Free(j.Trace.ID)
	if err := s.cluster.Alloc(j.Trace.ID, target.GPUType, target.N); err != nil {
		// Fragmentation defeated the move; restore the old allocation.
		if err := s.cluster.Alloc(j.Trace.ID, old.GPUType, old.N); err != nil {
			// Old slots vanished too (should not happen: we just freed
			// them); requeue defensively.
			j.State = sched.StateQueued
			j.Alloc = sched.Alloc{}
			j.ActualThr = 0
			s.running = removeJob(s.running, j)
			s.queued = append(s.queued, j)
			s.invalidate(j)
		}
		return
	}
	j.Alloc = target
	j.ActualThr = actual
	j.Resched++
	j.SlowFactor = s.cluster.SlowFactor(j.Trace.ID)
	// §5.8: the rescheduling AP search is non-blocking (the runtime
	// searches while the job drains); only checkpoint-resume stops
	// training, plus a small blocking tail of the search. A job still
	// reconfiguring stacks the new stall after the old one — charging
	// from `now` let overlapping reconfigurations swallow each other.
	j.BusyUntil = math.Max(now, j.BusyUntil) + sched.CheckpointResume +
		0.2*s.cfg.Policy.DeployOverhead(s.cfg.DB, w, target.GPUType, target.N)
	// Checkpoint-resume implies a durable save of progress so far.
	j.CheckpointRemaining = j.RemainingSamples
	ac := s.simFor(j)
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
	s.rePredict(j, now)
}

// sampleThroughput records the instantaneous cluster throughput.
func (s *state) sampleThroughput(now float64) {
	var total float64
	for _, j := range s.running {
		if j.BusyUntil <= now {
			thr := j.ActualThr
			if f := j.SlowFactor; f > 0 && f < 1 {
				thr *= f
			}
			total += thr
		}
	}
	s.thrSeries = append(s.thrSeries, total)
}

func (s *state) done() bool {
	return len(s.pending) == 0 && len(s.queued) == 0 && len(s.running) == 0 &&
		s.srcExhausted()
}

// finish assembles the metrics summary.
func (s *state) finish(end float64) *Result {
	if s.cfg.Streaming {
		return s.finishStreaming(end)
	}
	// In the compatibility modes the report covers the whole trace, so
	// anything the source still holds is staged first — the result is
	// indistinguishable from having passed the trace as a slice.
	s.drainSource()
	// Total counts the jobs that belong to the simulated horizon: done,
	// running, queued, and the pending jobs whose trace submission falls
	// inside it. A pending job submitted after the horizon (a MaxRounds
	// cap can end the simulation mid-trace) was never part of this run —
	// counting it inflated Total and skewed every per-job ratio derived
	// from it.
	total := len(s.done_) + len(s.running) + len(s.queued)
	for _, j := range s.pending {
		if j.Trace.SubmitTime <= end {
			total++
		}
	}
	sum := metrics.Summary{
		Policy:           s.cfg.Policy.Name(),
		ThroughputSeries: s.thrSeries,
		Total:            total,
	}
	consider := append([]*sched.Job(nil), s.done_...)
	if s.cfg.IncludeUnfinished {
		consider = append(consider, s.running...)
		consider = append(consider, s.queued...)
		// Jobs still pending (e.g. stuck in their profiling prepend) are
		// censored too, as long as their trace submission precedes the
		// horizon.
		for _, j := range s.pending {
			if j.Trace.SubmitTime <= end {
				consider = append(consider, j)
			}
		}
	}
	var resched, launched float64
	for _, j := range consider {
		switch j.State {
		case sched.StateFinished:
			sum.Finished++
			sum.JCTs = append(sum.JCTs, j.FinishedAt-j.Trace.SubmitTime)
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
				if j.FinishedAt <= j.Trace.SubmitTime+j.Trace.Deadline {
					sum.DeadlineSatisfied++
				}
			}
		case sched.StateDropped:
			sum.Dropped++
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
			}
		case sched.StateFailed:
			sum.Failed++
			if j.Trace.Deadline > 0 {
				sum.DeadlineTotal++
			}
		default: // censored
			sum.JCTs = append(sum.JCTs, end-j.Trace.SubmitTime)
		}
		if j.LaunchedAt >= 0 {
			sum.QueueTimes = append(sum.QueueTimes, j.LaunchedAt-j.Trace.SubmitTime)
			launched++
			resched += float64(j.Resched)
		}
	}
	if launched > 0 {
		sum.AvgReschedules = resched / launched
	}
	jobs := append([]*sched.Job(nil), s.done_...)
	jobs = append(jobs, s.running...)
	jobs = append(jobs, s.queued...)
	jobs = append(jobs, s.pending...)
	sum.GoodputGPUHours = s.goodputGPUSec / 3600
	sum.WastedGPUHours = s.wastedGPUSec / 3600
	sum.RecomputeSeconds = s.recomputeSec
	for _, j := range jobs {
		sum.Preemptions += j.Preemptions
		sum.Restarts += j.Restarts
	}
	sum.Finalize()
	return &Result{Summary: sum, Jobs: jobs, Horizon: end}
}

// finishStreaming assembles the summary from the running aggregates:
// terminal jobs were folded in at retirement, so only the live
// (censored) jobs and the source's unreached tail are accounted here.
// Result.Jobs is nil and the raw JCTs/QueueTimes slices stay nil —
// memory never grew past O(active jobs). P50/P90 are P² sketch values;
// every count, sum and mean is exact.
func (s *state) finishStreaming(end float64) *Result {
	total := s.mFinished + s.mDropped + s.mFailed + len(s.running) + len(s.queued)
	preempt, restarts := s.mPreempt, s.mRestarts
	censor := func(j *sched.Job) {
		s.jctS.Add(end - j.Trace.SubmitTime)
		if j.LaunchedAt >= 0 {
			s.queueS.Add(j.LaunchedAt - j.Trace.SubmitTime)
			s.mLaunched++
			s.mResched += float64(j.Resched)
		}
	}
	for _, list := range [][]*sched.Job{s.running, s.queued} {
		for _, j := range list {
			preempt += j.Preemptions
			restarts += j.Restarts
			if s.cfg.IncludeUnfinished {
				censor(j)
			}
		}
	}
	for _, j := range s.pending {
		preempt += j.Preemptions
		restarts += j.Restarts
		if j.Trace.SubmitTime <= end {
			total++
			if s.cfg.IncludeUnfinished {
				censor(j)
			}
		}
	}
	// Jobs the source never emitted into the world: count (and censor)
	// the ones submitted inside the horizon, one at a time, without ever
	// materializing them.
	if s.srcPeek != nil {
		if s.srcPeek.SubmitTime <= end {
			total++
			if s.cfg.IncludeUnfinished {
				s.jctS.Add(end - s.srcPeek.SubmitTime)
			}
		}
		s.srcPeek = nil
	}
	for s.src != nil && !s.srcDone {
		tj, ok := s.src.Next()
		if !ok {
			s.srcDone = true
			break
		}
		if tj.SubmitTime <= end {
			total++
			if s.cfg.IncludeUnfinished {
				s.jctS.Add(end - tj.SubmitTime)
			}
		}
	}
	sum := metrics.Summary{
		Policy:            s.cfg.Policy.Name(),
		ThroughputSeries:  s.thrSeries,
		AvgThr:            metrics.Mean(s.thrSeries),
		PeakThr:           metrics.Max(s.thrSeries),
		Total:             total,
		Finished:          s.mFinished,
		Dropped:           s.mDropped,
		Failed:            s.mFailed,
		DeadlineSatisfied: s.mDeadlineSat,
		DeadlineTotal:     s.mDeadlineTot,
		AvgJCT:            s.jctS.Mean(),
		P50JCT:            s.jctS.Quantile(0.50),
		P90JCT:            s.jctS.Quantile(0.90),
		AvgQueue:          s.queueS.Mean(),
		GoodputGPUHours:   s.goodputGPUSec / 3600,
		WastedGPUHours:    s.wastedGPUSec / 3600,
		RecomputeSeconds:  s.recomputeSec,
		Preemptions:       preempt,
		Restarts:          restarts,
	}
	if s.mLaunched > 0 {
		sum.AvgReschedules = s.mResched / float64(s.mLaunched)
	}
	return &Result{Summary: sum, Jobs: nil, Horizon: end}
}

func (s *state) findQueued(id string) *sched.Job {
	for _, j := range s.queued {
		if j.Trace.ID == id {
			return j
		}
	}
	return nil
}

func (s *state) findAny(id string) *sched.Job {
	if j := s.findQueued(id); j != nil {
		return j
	}
	for _, j := range s.running {
		if j.Trace.ID == id {
			return j
		}
	}
	return nil
}

func removeJob(list []*sched.Job, j *sched.Job) []*sched.Job {
	for i, x := range list {
		if x == j {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
