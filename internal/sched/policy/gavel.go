package policy

import (
	"sort"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// Gavel performs heterogeneity-aware scheduling: it keeps each job's GPU
// count fixed at the user request but dynamically chooses the GPU *type*
// to maximize total throughput (a greedy stand-in for its ILP round
// solver, §5.1). Its knowledge is full-space DP profiling.
type Gavel struct {
	// SwitchGainThreshold gates type migration of running jobs: moving a
	// job pays checkpoint-resume + AP re-search, so only clear wins move.
	SwitchGainThreshold float64

	// refScore runs the full per-round rescans instead of the round-
	// scoped demand/score cache; see sched.ReferenceScorer.
	refScore bool
}

// SetReferenceScore implements sched.ReferenceScorer.
func (g *Gavel) SetReferenceScore(on bool) { g.refScore = on }

// NewGavel returns the policy with the default migration threshold.
func NewGavel() *Gavel { return &Gavel{SwitchGainThreshold: 1.3} }

// Name implements sched.Policy.
func (g *Gavel) Name() string { return "gavel" }

// perceived returns Gavel's DP view with the manual-fallback rule: when a
// workload fits DP nowhere, the user supplies a hand-tuned parallel plan
// and Gavel schedules it by its measured throughput.
func (g *Gavel) perceived(db *perfdb.DB, w model.Workload, typ string, n int) float64 {
	if t := db.DPThr(w, typ, n); t > 0 {
		return t
	}
	for _, tt := range db.GPUTypes {
		if db.MinFeasibleDP(w, tt) != 0 {
			return 0 // DP fits somewhere: this (type, n) just looks OOM
		}
	}
	return db.APThr(w, typ, n)
}

// Assign greedily places queued jobs on the type with the best perceived
// throughput, then migrates running jobs whose perceived gain on another
// type clears the threshold.
func (g *Gavel) Assign(ctx *sched.Context) sched.Assignment {
	asg := sched.NewAssignment()
	free := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		free[typ] = ctx.Cluster.FreeGPUs(typ)
	}

	// Queued jobs: best-type placement, highest density first (Gavel's
	// round solver maximizes Σ throughput).
	//
	// A job's demand and per-type throughputs are a pure function of its
	// (workload, requested count) within a round, so the fast path scores
	// each distinct pair once — a deep backlog of look-alike jobs costs
	// one lookup apiece instead of one database walk. The density sort
	// and the free-capacity placement loop are untouched: capacity is the
	// input that moves as jobs place.
	types := ctx.Cluster.GPUTypes()
	type score struct {
		n       int       // demand (0 = unservable)
		bestTyp string    // preferred type (first strict-max in type order)
		bestThr float64   // its perceived throughput
		byType  []float64 // perceived throughput per types[i] at n
	}
	type scoreKey struct {
		w   model.Workload
		req int
	}
	scoreOf := func(job *sched.Job) score {
		sc := score{n: g.demand(ctx.DB, job, ctx.MaxPerJob)}
		if sc.n == 0 {
			return sc
		}
		sc.byType = make([]float64, len(types))
		for ti, typ := range types {
			thr := g.perceived(ctx.DB, job.Workload(), typ, sc.n)
			sc.byType[ti] = thr
			if thr > sc.bestThr {
				sc.bestTyp, sc.bestThr = typ, thr
			}
		}
		return sc
	}
	var cache map[scoreKey]score
	if !g.refScore {
		cache = map[scoreKey]score{}
	}
	type cand struct {
		job *sched.Job
		thr float64
		typ string
		n   int
		sc  score
	}
	var cands []cand
	for _, job := range ctx.Queued {
		var sc score
		if cache != nil {
			key := scoreKey{w: job.Trace.Workload, req: job.Trace.ReqGPUs}
			var ok bool
			if sc, ok = cache[key]; !ok {
				sc = scoreOf(job)
				cache[key] = sc
			}
		} else {
			sc = scoreOf(job)
		}
		if sc.n == 0 || sc.bestThr <= 0 {
			continue
		}
		cands = append(cands, cand{job: job, thr: sc.bestThr, typ: sc.bestTyp, n: sc.n, sc: sc})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].thr/float64(cands[a].n) > cands[b].thr/float64(cands[b].n)
	})
	for _, c := range cands {
		// Preferred type first, then any type with capacity.
		if free[c.typ] >= c.n {
			asg.Place[c.job.Trace.ID] = sched.Alloc{GPUType: c.typ, N: c.n}
			free[c.typ] -= c.n
			continue
		}
		for ti, typ := range types {
			thr := c.sc.byType[ti]
			if g.refScore {
				thr = g.perceived(ctx.DB, c.job.Workload(), typ, c.n)
			}
			if thr > 0 && free[typ] >= c.n {
				asg.Place[c.job.Trace.ID] = sched.Alloc{GPUType: typ, N: c.n}
				free[typ] -= c.n
				break
			}
		}
	}

	// Running jobs: migrate types on clear perceived wins.
	for _, job := range ctx.Running {
		if job.BusyUntil > ctx.Now {
			continue
		}
		cur := job.Alloc
		curThr := g.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N)
		for _, typ := range ctx.Cluster.GPUTypes() {
			if typ == cur.GPUType || free[typ] < cur.N {
				continue
			}
			newThr := g.perceived(ctx.DB, job.Workload(), typ, cur.N)
			if curThr > 0 && newThr > curThr*g.SwitchGainThreshold {
				asg.Place[job.Trace.ID] = sched.Alloc{GPUType: typ, N: cur.N}
				free[typ] -= cur.N
				free[cur.GPUType] += cur.N
				break
			}
		}
	}
	return asg
}

// demand is the job's fixed GPU count: the user request, raised to the
// DP-feasibility floor its profiles report (Case#2's overestimation).
// When the DP floor exceeds the per-job cap, the job falls back to a
// manually partitioned plan at the AP floor.
func (g *Gavel) demand(db *perfdb.DB, job *sched.Job, maxPerJob int) int {
	dpMin, apMin := 0, 0
	for _, typ := range db.GPUTypes {
		if m := db.MinFeasibleDP(job.Workload(), typ); m != 0 && (dpMin == 0 || m < dpMin) {
			dpMin = m
		}
		if m := db.MinFeasibleAP(job.Workload(), typ); m != 0 && (apMin == 0 || m < apMin) {
			apMin = m
		}
	}
	minN := dpMin
	if minN == 0 || minN > maxPerJob {
		minN = apMin // manual plan fallback
	}
	if minN == 0 || minN > maxPerJob {
		return 0
	}
	n := job.Trace.ReqGPUs
	if minN > n {
		n = minN
	}
	if n > maxPerJob {
		n = maxPerJob
	}
	return n
}

// PerceivedThr implements sched.Policy.
func (g *Gavel) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return g.perceived(db, w, gpuType, n)
}

// ActualThr implements sched.Policy: execution uses AP (§5.1).
func (g *Gavel) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.APThr(w, gpuType, n)
}

// ProfilePrepend implements sched.Policy: full-space DP profiling.
func (g *Gavel) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	return db.DPProfileWall(w)
}

// DeployOverhead implements sched.Policy: full AP search per deployment.
func (g *Gavel) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.SearchTimeFull(w, gpuType, n)
}
