package policy

import (
	"math"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// ElasticFlow (the -LS "loosened deadline" variant the paper compares
// against) elastically scales each job's GPU *count* within its
// homogeneous region: jobs stay on their requested type, launch at the
// minimum feasible size, and idle GPUs flow to the jobs with the best
// marginal perceived gain. Knowledge is full-space DP profiling.
type ElasticFlow struct {
	// ScaleGainThreshold gates rescaling of running jobs (restart costs).
	ScaleGainThreshold float64
}

// NewElasticFlow returns the policy.
func NewElasticFlow() *ElasticFlow { return &ElasticFlow{ScaleGainThreshold: 1.25} }

// Name implements sched.Policy.
func (e *ElasticFlow) Name() string { return "elasticflow-ls" }

// perceived is the DP view with the everywhere-infeasible fallback.
func (e *ElasticFlow) perceived(db *perfdb.DB, w model.Workload, typ string, n int) float64 {
	if t := db.DPThr(w, typ, n); t > 0 {
		return t
	}
	for _, tt := range db.GPUTypes {
		if db.MinFeasibleDP(w, tt) != 0 {
			return 0
		}
	}
	return db.APThr(w, typ, n)
}

// region returns the job's home region: the requested type, or the first
// type where the job is perceived-feasible at all.
func (e *ElasticFlow) region(ctx *sched.Context, job *sched.Job) string {
	typ := job.Trace.ReqType
	for n := 1; n <= ctx.MaxPerJob; n *= 2 {
		if e.perceived(ctx.DB, job.Workload(), typ, n) > 0 {
			return typ
		}
	}
	for _, t := range ctx.Cluster.GPUTypes() {
		for n := 1; n <= ctx.MaxPerJob; n *= 2 {
			if e.perceived(ctx.DB, job.Workload(), t, n) > 0 {
				return t
			}
		}
	}
	return typ
}

// Assign admits queued jobs at their minimum feasible size, then grows
// the best marginal jobs (queued admissions included) with the remaining
// idle capacity; running jobs also shrink when newly admitted jobs need
// room (ElasticFlow's admission-driven elasticity).
func (e *ElasticFlow) Assign(ctx *sched.Context) sched.Assignment {
	asg := sched.NewAssignment()
	free := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		free[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	target := map[string]sched.Alloc{}
	jobOf := map[string]*sched.Job{}
	// order fixes the candidate iteration below: ranging over the target
	// map broke ties by map order, making the whole simulation
	// nondeterministic whenever two jobs had equal marginal gain.
	var order []string
	for _, j := range ctx.Running {
		target[j.Trace.ID] = j.Alloc
		jobOf[j.Trace.ID] = j
		order = append(order, j.Trace.ID)
	}

	// Admission at minimum feasible size, arrival order. Shrink work per
	// round is bounded so huge backlogs cannot stall the scheduler.
	shrinkBudget := 64
	for _, job := range ctx.Queued {
		typ := e.region(ctx, job)
		minN := 0
		for n := 1; n <= ctx.MaxPerJob; n *= 2 {
			if e.perceived(ctx.DB, job.Workload(), typ, n) > 0 {
				minN = n
				break
			}
		}
		if minN == 0 {
			continue
		}
		if free[typ] < minN && shrinkBudget > 0 {
			// Shrink running jobs in this region to admit the newcomer
			// (deadline-loosened ElasticFlow favours admission).
			e.shrinkRegion(ctx, typ, minN, free, target, asg.Place, &shrinkBudget)
		}
		if free[typ] >= minN {
			alloc := sched.Alloc{GPUType: typ, N: minN}
			asg.Place[job.Trace.ID] = alloc
			target[job.Trace.ID] = alloc
			jobOf[job.Trace.ID] = job
			order = append(order, job.Trace.ID)
			free[typ] -= minN
		}
	}

	// Elastic scale-up: repeatedly double the job with the best marginal
	// perceived gain per added GPU.
	for rounds := 0; rounds < 16; rounds++ {
		bestID := ""
		bestGain := 0.0
		for _, id := range order {
			cur := target[id]
			job := jobOf[id]
			if job == nil || cur.N*2 > ctx.MaxPerJob || free[cur.GPUType] < cur.N {
				continue
			}
			if job.Running() && job.BusyUntil > ctx.Now {
				continue
			}
			thrCur := e.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N)
			thrNew := e.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N*2)
			if thrCur <= 0 || thrNew <= thrCur*e.ScaleGainThreshold {
				continue
			}
			gain := (thrNew - thrCur) / float64(cur.N)
			if gain > bestGain {
				bestID, bestGain = id, gain
			}
		}
		if bestID == "" {
			break
		}
		cur := target[bestID]
		next := sched.Alloc{GPUType: cur.GPUType, N: cur.N * 2}
		free[cur.GPUType] -= cur.N
		target[bestID] = next
		asg.Place[bestID] = next
	}
	return asg
}

// shrinkRegion halves the running jobs with the least throughput loss per
// freed GPU until `need` GPUs are free in the region (or nothing more can
// shrink).
func (e *ElasticFlow) shrinkRegion(ctx *sched.Context, typ string, need int, free map[string]int, target map[string]sched.Alloc, place map[string]sched.Alloc, budget *int) {
	for free[typ] < need && *budget > 0 {
		*budget--
		var victim *sched.Job
		bestCost := math.MaxFloat64
		for _, j := range ctx.Running {
			cur := target[j.Trace.ID]
			if cur.GPUType != typ || cur.N < 2 || j.BusyUntil > ctx.Now {
				continue
			}
			thrCur := e.perceived(ctx.DB, j.Workload(), typ, cur.N)
			thrHalf := e.perceived(ctx.DB, j.Workload(), typ, cur.N/2)
			if thrHalf <= 0 {
				continue
			}
			cost := (thrCur - thrHalf) / float64(cur.N/2)
			if cost < bestCost {
				victim, bestCost = j, cost
			}
		}
		if victim == nil {
			return
		}
		cur := target[victim.Trace.ID]
		next := sched.Alloc{GPUType: typ, N: cur.N / 2}
		target[victim.Trace.ID] = next
		place[victim.Trace.ID] = next
		free[typ] += cur.N - next.N
	}
}

// PerceivedThr implements sched.Policy.
func (e *ElasticFlow) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return e.perceived(db, w, gpuType, n)
}

// ActualThr implements sched.Policy.
func (e *ElasticFlow) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.APThr(w, gpuType, n)
}

// ProfilePrepend implements sched.Policy: ElasticFlow profiles jobs with
// DP across allocable resources ahead of time (≈10 minutes, §1).
func (e *ElasticFlow) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	return db.DPProfileWall(w)
}

// DeployOverhead implements sched.Policy.
func (e *ElasticFlow) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.SearchTimeFull(w, gpuType, n)
}
