package policy

import (
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	once   sync.Once
	testDB *perfdb.DB
	bErr   error
)

func db(t *testing.T) *perfdb.DB {
	t.Helper()
	once.Do(func() {
		testDB, bErr = perfdb.Build(exec.NewEngine(42), perfdb.Options{
			GPUTypes: []string{"A40", "A10"},
			MaxN:     16,
			Workloads: []model.Workload{
				{Model: "WRes-1B", GlobalBatch: 256},
				{Model: "GPT-2.6B", GlobalBatch: 128},
				{Model: "GPT-6.7B", GlobalBatch: 128},
			},
		})
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return testDB
}

func ctx(t *testing.T, queued, running []*sched.Job) *sched.Context {
	t.Helper()
	cl, err := cluster.New(hw.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range running {
		j.State = sched.StateRunning
		if err := cl.Alloc(j.Trace.ID, j.Alloc.GPUType, j.Alloc.N); err != nil {
			t.Fatal(err)
		}
	}
	return &sched.Context{
		Now: 0, Queued: queued, Running: running,
		Cluster: cl, DB: db(t), MaxPerJob: 16,
	}
}

func job(id, m string, gb, req, prio int) *sched.Job {
	return &sched.Job{
		Trace: trace.Job{
			ID: id, Workload: model.Workload{Model: m, GlobalBatch: gb},
			Iterations: 200, ReqGPUs: req, ReqType: "A40", Priority: prio,
		},
		State: sched.StateQueued, LaunchedAt: -1,
		RemainingSamples: 200 * float64(gb), CurPriority: prio,
	}
}

func TestFCFSHonoursRequests(t *testing.T) {
	p := NewFCFS()
	j := job("j1", "WRes-1B", 256, 4, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok || alloc.N != 4 || alloc.GPUType != "A40" {
		t.Fatalf("FCFS should honour the 4xA40 request: %v", alloc)
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	p := NewFCFS()
	big := job("big", "WRes-1B", 256, 16, 1)
	small := job("small", "WRes-1B", 256, 1, 1)
	c := ctx(t, []*sched.Job{big, small}, nil)
	// Leave only 8 A40s free: the 16-GPU head blocks the 1-GPU follower.
	if err := c.Cluster.Alloc("filler", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if err := c.Cluster.Alloc("filler2", "A40", 8); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(c)
	if len(asg.Place) != 0 {
		t.Fatalf("FCFS must block behind the infeasible head: %v", asg.Place)
	}
}

func TestFCFSRaisesInfeasibleRequests(t *testing.T) {
	// A user cannot actually run GPT-6.7B on 1 GPU; FCFS sizes the request
	// up to the execution floor.
	p := NewFCFS()
	j := job("j1", "GPT-6.7B", 128, 1, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not placed")
	}
	if db(t).APThr(j.Workload(), alloc.GPUType, alloc.N) <= 0 {
		t.Fatalf("placed on an infeasible allocation %v", alloc)
	}
}

func TestGavelPicksBestType(t *testing.T) {
	p := NewGavel()
	j := job("j1", "WRes-1B", 256, 2, 1)
	j.Trace.ReqType = "A10"
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not placed")
	}
	d := db(t)
	// Gavel must pick the type its DP view prefers at n=2.
	wantA40 := d.DPThr(j.Workload(), "A40", 2) > d.DPThr(j.Workload(), "A10", 2)
	if wantA40 && alloc.GPUType != "A40" {
		t.Errorf("Gavel should switch to A40, got %v", alloc)
	}
}

func TestGavelKeepsCount(t *testing.T) {
	// Gavel has no elasticity: the placed GPU count equals the demand
	// (request raised to the feasibility floor), never scaled beyond.
	p := NewGavel()
	j := job("j1", "WRes-1B", 256, 4, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	if alloc := asg.Place["j1"]; alloc.N != 4 {
		t.Errorf("Gavel changed the GPU count: %v", alloc)
	}
}

func TestElasticFlowAdmitsAtMinThenGrows(t *testing.T) {
	p := NewElasticFlow()
	j := job("j1", "WRes-1B", 256, 8, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not admitted")
	}
	if alloc.GPUType != "A40" {
		t.Errorf("ElasticFlow is homogeneous: job must stay on its region, got %v", alloc)
	}
	if alloc.N < 1 {
		t.Errorf("bad allocation %v", alloc)
	}
}

func TestElasticFlowShrinksToAdmit(t *testing.T) {
	p := NewElasticFlow()
	run := job("incumbent", "WRes-1B", 256, 16, 1)
	run.Alloc = sched.Alloc{GPUType: "A40", N: 16}
	newcomer := job("new", "WRes-1B", 256, 2, 1)
	c := ctx(t, []*sched.Job{newcomer}, []*sched.Job{run})
	if err := c.Cluster.Alloc("filler", "A40", 16); err != nil {
		t.Fatal(err)
	}
	asg := p.Assign(c)
	if _, ok := asg.Place["new"]; !ok {
		t.Fatal("newcomer not admitted")
	}
	if down, ok := asg.Place["incumbent"]; !ok || down.N >= 16 {
		t.Fatalf("incumbent not shrunk: %v", down)
	}
}

func TestSiaAdmitsDensely(t *testing.T) {
	p := NewSia()
	j := job("j1", "WRes-1B", 256, 8, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not admitted")
	}
	if alloc.N < 1 || db(t).SiaEst(j.Workload(), alloc.GPUType, alloc.N, 1) <= 0 {
		t.Errorf("Sia placed on a perceived-infeasible alloc %v", alloc)
	}
}

func TestSiaRespectsDPFloor(t *testing.T) {
	// GPT-2.6B's DP floor on A40 exceeds its AP floor: Sia must not use
	// the dense AP-only allocation (Case#2 overestimation).
	d := db(t)
	w := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	apMin, dpMin := d.MinFeasibleAP(w, "A40"), d.MinFeasibleDP(w, "A40")
	if apMin == 0 || dpMin == 0 || apMin >= dpMin {
		t.Skip("fixture lacks a floor gap")
	}
	p := NewSia()
	j := job("j1", "GPT-2.6B", 128, 1, 1)
	asg := p.Assign(ctx(t, []*sched.Job{j}, nil))
	alloc, ok := asg.Place["j1"]
	if !ok {
		t.Fatal("job not admitted")
	}
	if alloc.GPUType == "A40" && alloc.N < dpMin {
		t.Errorf("Sia used a below-DP-floor allocation %v", alloc)
	}
}

func TestSiaObservationRefinement(t *testing.T) {
	d := db(t)
	p := NewSia()
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	// ActualThr records the observation; perceived then returns it.
	actual := p.ActualThr(d, w, "A40", 4)
	if actual <= 0 {
		t.Fatal("expected feasible actual throughput")
	}
	if got := p.PerceivedThr(d, w, "A40", 4); got != actual {
		t.Errorf("refined perception %v, want observed %v", got, actual)
	}
}

func TestBaselinesExecuteWithAP(t *testing.T) {
	// §5.1: every baseline's achieved throughput is the AP optimum.
	d := db(t)
	w := model.Workload{Model: "GPT-2.6B", GlobalBatch: 128}
	for _, p := range []sched.Policy{NewFCFS(), NewGavel(), NewElasticFlow(), NewSia()} {
		if got, want := p.ActualThr(d, w, "A40", 8), d.APThr(w, "A40", 8); got != want {
			t.Errorf("%s: actual %v, want AP %v", p.Name(), got, want)
		}
	}
}

func TestBaselineOverheadModels(t *testing.T) {
	d := db(t)
	w := model.Workload{Model: "WRes-1B", GlobalBatch: 256}
	for _, p := range []sched.Policy{NewGavel(), NewElasticFlow(), NewSia()} {
		if p.ProfilePrepend(d, w) <= 0 {
			t.Errorf("%s: no profiling prepend", p.Name())
		}
		if p.DeployOverhead(d, w, "A40", 8) <= 0 {
			t.Errorf("%s: no deployment overhead", p.Name())
		}
	}
	if NewFCFS().ProfilePrepend(d, w) != 0 {
		t.Error("FCFS should have no profiling prepend")
	}
	// Arena's pruned deployment must undercut the baselines' full search.
	arena := sched.NewArena()
	if arena.DeployOverhead(d, w, "A40", 8) >= NewSia().DeployOverhead(d, w, "A40", 8) {
		t.Error("Arena's deployment overhead should undercut Sia's")
	}
}

func TestPolicyNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []sched.Policy{NewFCFS(), NewGavel(), NewElasticFlow(), NewSia(), sched.NewArena()} {
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %s", p.Name())
		}
		seen[p.Name()] = true
	}
}
