package planner

// This file is the incremental prefix-DP partition enumerator — the
// default path behind PlanGrid and EnumerateCandidates. The reference
// enumerator (forEachPartition + buildCandidate) treats every one of the
// C(O−1, s−1) partitions as independent: it recomputes the fractional
// GPU shares of all s stages and runs the full power-of-two assignment
// DP (normalizeAssignment, O(s·n·log n)) from scratch per partition,
// even though consecutive partitions differ in a single boundary. After
// PR 1 removed the allocation cost, that redundant recomputation was the
// dominant cost of a cold performance-database build (~60%).
//
// The DP enumerator removes the redundancy by walking partitions as a
// tree of boundary choices and keying every piece of per-stage state to
// the deepest boundary it depends on:
//
//   - bounds[s-1] = O is fixed; the DFS chooses bounds[s-2], then
//     bounds[s-3], …, finally bounds[0] — right to left, so at depth k
//     the trailing k stages (a partition *suffix*) are determined and
//     shared by the whole subtree;
//   - a stage's fractional share ideal[j] is computed once when its
//     boundary pair is fixed, from the opRangeStats prefix sums (O(1)
//     per stage instead of O(s) per partition);
//   - the assignment DP's row j — dp[j][r], the minimal squared distance
//     of assigning stages j..s-1 exactly r power-of-two GPUs — depends
//     only on ideal[j..s-1], so it too is filled once per frontier
//     extension and reused by every partition below. At a leaf only the
//     O(log n) cells of row 1 the final minimum can touch are computed,
//     instead of the s full rows the reference path rebuilds;
//   - a stage range that fits device memory at no power-of-two GPU
//     count can never appear in any feasible candidate, so the subtree
//     under it is skipped wholesale — after counting its partitions with
//     a binomial table, keeping CandidatesEvaluated exact.
//
// Frontier stability (the ROADMAP's concern): reuse never changes what a
// cell holds, only when it is computed. Cell (j, r) is a pure function
// of (ideal[j..s-1], r) — same recurrence expression, same ascending
// power iteration, same strict-< tie-break as normalizeAssignment — so
// its value is bit-identical however many partitions share it. The one
// behavior the DFS does change is emission order (right-to-left boundary
// choice emits in colexicographic order), and candidate order is
// observable: exact (BComp, LComm) ties resolve by lexicographic
// partition rank, and the Fig. 14 population is reported in
// lexicographic order. enumerateDP therefore hands every sink the
// candidate's lexicographic rank, computed as an O(1) running total over
// suffix-cumulative binomial sums — the population sink uses it to
// rebuild the reference emission order without a comparison sort, the
// sweep frontier (frontier.go) to break metric ties identically to the
// lex-order reference enumerator. A forward (prefix-accumulated)
// recurrence was rejected for exactly this class of reason: it regroups
// the float summation d₀²+(d₁²+(…)) into ((d₀²+d₁²)+…) and flips exact
// ties between mirrored assignments — real ties, e.g. for uniform
// transformer layers. See docs/ARCHITECTURE.md for the full argument.

import (
	"math"
	"sync"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// partitionDP carries the frontier state of one DP enumeration pass over
// a grid. All slices are preallocated once per grid; the DFS mutates
// them in place, and the sink copies anything it retains.
type partitionDP struct {
	pl       *Planner
	grid     core.Grid
	stats    *opRangeStats
	intra    *intraSelector
	total    float64 // total operator load of the graph
	numMicro int

	s, n, numOps int

	bounds []int     // bounds[j] = exclusive end of stage j; bounds[s-1] = numOps
	ideal  []float64 // fractional GPU share per stage, valid for fixed stages
	opsPer []int     // operator count per stage, maintained like ideal
	assign []int     // reconstruction buffer for the chosen assignment

	// Suffix assignment DP, flat (s+1) × (n+1). Cell j*(n+1)+r is valid
	// iff its stamp equals rowEpoch[j]; rows are re-stamped instead of
	// cleared when a frontier extension replaces them. Row s is the base
	// (only cell (s, 0) is valid, value 0) and is never re-stamped.
	dp       []float64
	choice   []int32
	stamp    []uint32
	rowEpoch []uint32

	// feas memoizes per-operator-range memory feasibility for subtree
	// pruning: 0 unknown, 1 some power-of-two count fits, 2 none does.
	feas []int8

	pascal [][]int // pascal[m][k] = C(m, k): skip counts and lex ranks

	// rankCum[i][v] = Σ_{u ≥ v} C(m−u, k−1−i) over boundary positions —
	// suffix-cumulative binomial sums that make a partition's
	// lexicographic rank an O(1) running total along the DFS.
	rankCum [][]int

	evaluated int

	sink candidateSink // consumes leaves, keyed by lexicographic rank
}

// enumerateDP is the prefix-DP twin of the Exhaustive enumerate branch:
// same candidates, same lexicographic ranks, same partition count, ~4×
// less work.
func (pl *Planner) enumerateDP(
	g *model.Graph, grid core.Grid,
	stats *opRangeStats, intra *intraSelector,
	totalLoad float64, numMicro int, sink candidateSink,
) int {
	numOps := len(g.Ops)
	if grid.S == 1 {
		// A single partition has no boundary frontier to share; evaluate
		// it with the reference per-partition code path.
		scr := newCandScratch(1, grid.N)
		scr.ideal[0] = stats.loadOf(0, numOps) / totalLoad * float64(grid.N)
		scr.opsPer[0] = numOps
		if assign, bias2 := normalizeAssignment(scr.ideal, grid.N, scr); assign != nil {
			sink.offer([]int{numOps}, assign, scr.opsPer, scr.ideal, bias2, 0)
		}
		return 1
	}
	s, n := grid.S, grid.N
	e := &partitionDP{
		pl: pl, grid: grid, stats: stats, intra: intra,
		total: totalLoad, numMicro: numMicro,
		s: s, n: n, numOps: numOps,
		bounds: make([]int, s),
		ideal:  make([]float64, s),
		opsPer: make([]int, s),
		assign: make([]int, s),

		dp:       make([]float64, (s+1)*(n+1)),
		choice:   make([]int32, (s+1)*(n+1)),
		stamp:    make([]uint32, (s+1)*(n+1)),
		rowEpoch: make([]uint32, s+1),

		feas:   make([]int8, (numOps+1)*(numOps+1)),
		pascal: pascalTable(numOps),

		sink: sink,
	}
	// Base row: assigning zero trailing stages costs 0 with 0 GPUs left.
	e.rowEpoch[s] = 1
	e.stamp[s*(n+1)] = 1
	e.bounds[s-1] = numOps
	e.buildRankCum()

	e.descend(s-2, numOps, 0)
	return e.evaluated
}

// buildRankCum precomputes the suffix-cumulative binomial sums behind
// O(1) lexicographic ranking. A partition is the boundary combination
// {bounds[0] < … < bounds[k-1]} ⊂ {1, …, m} (m = numOps−1, k = s−1), and
// its rank in the combinatorial number system is
//
//	Σ_i Σ_{v = bounds[i-1]+1}^{bounds[i]-1} C(m−v, k−1−i),
//
// the combinations that branch off with a smaller boundary at position
// i. With rankCum[i][v] = Σ_{u ≥ v} C(m−u, k−1−i), each position's term
// collapses to rankCum[i][prev+1] − rankCum[i][bounds[i]], and the DFS
// accumulates terms as it fixes boundaries.
func (e *partitionDP) buildRankCum() {
	m, k := e.numOps-1, e.s-1
	e.rankCum = make([][]int, k)
	for i := 0; i < k; i++ {
		row := make([]int, m+2)
		for v := m; v >= 1; v-- {
			row[v] = row[v+1] + e.pascal[m-v][k-1-i]
		}
		e.rankCum[i] = row
	}
}

// descend chooses bounds[j] — the start of stage j+1, whose end hi is
// already fixed — extending the partition frontier one boundary leftward
// per level, then recurses. Stages 0..j must keep at least one operator
// each, so bounds[j] ranges over [j+1, hi-1]. rank carries the partial
// lexicographic rank of the fixed suffix: fixing bounds[j] = b completes
// boundary position j+1's pair (b, hi), whose rank term becomes known.
func (e *partitionDP) descend(j, hi, rank int) {
	for b := j + 1; b < hi; b++ {
		if e.rangeInfeasible(b, hi) {
			// Stage j+1 = [b, hi) fits no power-of-two GPU count: the
			// reference path rejects every partition below this node at
			// the same stage, so skip the subtree and count its
			// C(b-1, j) partitions (placements of bounds[0..j-1]).
			e.evaluated += e.pascal[b-1][j]
			continue
		}
		e.bounds[j] = b
		e.setStage(j+1, b, hi)
		childRank := rank
		if j+1 < e.s-1 {
			childRank += e.rankCum[j+1][b+1] - e.rankCum[j+1][hi]
		}
		if j == 0 {
			e.leaf(b, childRank)
		} else {
			e.fillRow(j + 1)
			e.descend(j-1, b, childRank)
		}
	}
}

// setStage records stage j's fractional GPU share and operator count,
// with the exact expression buildCandidate uses.
func (e *partitionDP) setStage(j, start, end int) {
	e.ideal[j] = e.stats.loadOf(start, end) / e.total * float64(e.grid.N)
	e.opsPer[j] = end - start
}

// fillRow computes assignment-DP row j from row j+1 under the current
// ideal[j]. The loop body mirrors normalizeAssignment cell for cell:
// ascending power-of-two candidates, the same cost expression, and
// first-valid-then-strict-< selection, so a cell's value and choice are
// bit-identical to the reference path's for the same stage suffix.
func (e *partitionDP) fillRow(j int) {
	n := e.n
	row, next := j*(n+1), (j+1)*(n+1)
	e.rowEpoch[j]++
	epoch, nextEpoch := e.rowEpoch[j], e.rowEpoch[j+1]
	idealJ := e.ideal[j]
	dp, choice, stamp := e.dp, e.choice, e.stamp
	for r := 1; r <= n; r++ {
		for p := 1; p <= r; p *= 2 {
			if stamp[next+r-p] != nextEpoch {
				continue
			}
			d := float64(p) - idealJ
			cost := d*d + dp[next+r-p]
			if stamp[row+r] != epoch || cost < dp[row+r] {
				dp[row+r] = cost
				choice[row+r] = int32(p)
				stamp[row+r] = epoch
			}
		}
	}
}

// cell1 computes assignment-DP cell (1, r) on demand from the already
// filled row 2, exactly as fillRow would. Only the O(log n) cells the
// leaf's final minimum touches are ever computed; the rest of row 1 —
// which the reference path fills wholesale — stays unevaluated.
func (e *partitionDP) cell1(r int) (float64, bool) {
	n := e.n
	row, next := 1*(n+1), 2*(n+1)
	epoch, nextEpoch := e.rowEpoch[1], e.rowEpoch[2]
	dp, choice, stamp := e.dp, e.choice, e.stamp
	ideal1 := e.ideal[1]
	valid := false
	for p := 1; p <= r; p *= 2 {
		if stamp[next+r-p] != nextEpoch {
			continue
		}
		d := float64(p) - ideal1
		cost := d*d + dp[next+r-p]
		if !valid || cost < dp[row+r] {
			dp[row+r] = cost
			choice[row+r] = int32(p)
			valid = true
		}
	}
	if valid {
		e.stamp[row+r] = epoch
	}
	return dp[row+r], valid
}

// leaf finalizes the partition selected by bounds[0] = b: stage 0 is
// [0, b), every other stage is fixed on the DFS path. It runs the final
// assignment minimum over stage 0's power-of-two choices, reconstructs
// the per-stage assignment from the frontier's choice rows, and offers
// the candidate to the sink at its lexicographic rank.
func (e *partitionDP) leaf(b, rank int) {
	e.evaluated++
	if e.rangeInfeasible(0, b) {
		return
	}
	e.setStage(0, 0, b)
	e.rowEpoch[1]++ // invalidate the previous leaf's sparse row-1 cells

	// dp[0][n] = min over p of (p − ideal[0])² + dp[1][n−p], in the
	// reference recurrence's exact accumulation and tie-break order.
	var bias2 float64
	var first int
	found := false
	for p := 1; p <= e.n; p *= 2 {
		v, ok := e.cell1(e.n - p)
		if !ok {
			continue
		}
		d := float64(p) - e.ideal[0]
		cost := d*d + v
		if !found || cost < bias2 {
			bias2, first, found = cost, p, true
		}
	}
	if !found {
		return // no power-of-two assignment sums to exactly n
	}

	assign := e.assign
	assign[0] = first
	r := e.n - first
	for j := 1; j < e.s; j++ {
		assign[j] = int(e.choice[j*(e.n+1)+r])
		r -= assign[j]
	}

	e.sink.offer(e.bounds, assign, e.opsPer, e.ideal, bias2, rank+e.rankCum[0][1]-e.rankCum[0][b])
}

// populationSink materializes every feasible candidate — the sink behind
// EnumerateCandidates (Fig. 14 measures whole grid populations) and the
// SortedPareto reference reduction. out accumulates candidates in
// arrival order; slots maps each partition's lexicographic rank to 1+its
// out index, so candidates() rebuilds the canonical lexicographic order
// by a linear slot scan instead of a comparison sort, whichever
// enumerator streamed in. Indices rather than pointers keep the hot loop
// free of GC write barriers. Retained storage is bump-allocated from the
// sink's arena instead of six heap objects per candidate; PlanGrid
// detaches the few candidates that survive Pareto reduction, releasing
// the arena with the enumeration.
type populationSink struct {
	intra    *intraSelector
	numMicro int

	stages []parallel.StagePlan // stageMetrics trial buffer
	out    []*Candidate
	slots  []int32
	arena  candArena
}

func newPopulationSink(g *model.Graph, grid core.Grid, intra *intraSelector, numMicro int) *populationSink {
	return &populationSink{
		intra:    intra,
		numMicro: numMicro,
		stages:   make([]parallel.StagePlan, grid.S),
		slots:    make([]int32, pascalTable(len(g.Ops))[len(g.Ops)-1][grid.S-1]),
	}
}

// offer implements candidateSink: compute the stage shapes and
// communication load through the shared stageMetrics core and retain the
// candidate at its rank slot. Memory-infeasible partitions are dropped.
func (p *populationSink) offer(bounds, assign, opsPer []int, ideal []float64, bias2 float64, rank int) {
	lComm, ok := stageMetrics(p.stages, p.intra, bounds, assign, p.numMicro)
	if !ok {
		return
	}
	s := len(bounds)
	cand := p.arena.newCandidate(s)
	cand.BComp = math.Sqrt(bias2)
	cand.LComm = lComm
	cand.Plan.NumMicrobatches = p.numMicro
	copy(cand.Plan.Stages, p.stages[:s])
	copy(cand.OpsPerStage, opsPer)
	copy(cand.GPUsPerStage, assign)
	copy(cand.IdealAssign, ideal)
	p.out = append(p.out, cand)
	p.slots[rank] = int32(len(p.out))
}

// candidates compacts the rank-addressed slots into the canonical
// lexicographic emission order.
func (p *populationSink) candidates() []*Candidate {
	out := make([]*Candidate, 0, len(p.out))
	for _, idx := range p.slots {
		if idx > 0 {
			out = append(out, p.out[idx-1])
		}
	}
	return out
}

// candidateBlock co-allocates a Candidate with its Plan; candArena hands
// them out in chunks.
type candidateBlock struct {
	cand Candidate
	plan parallel.Plan
}

// candArena bump-allocates the retained storage of DP-path candidates —
// the struct pair plus the three copied slices — in fixed-capacity
// chunks, replacing the per-candidate heap allocations that dominated
// the enumeration's residual cost. Chunks are never reused or moved, so
// handed-out pointers and slices stay valid for the arena's lifetime;
// everything is garbage once the last candidate referencing a chunk is
// dropped.
type candArena struct {
	blocks []candidateBlock
	nb     int
	stages []parallel.StagePlan
	ns     int
	ints   []int
	ni     int
	floats []float64
	nf     int
}

// newCandidate returns an arena-backed candidate for s stages with all
// slices sized and zeroed, Plan wired, and full-capacity slice bounds so
// a caller appending to one field can never bleed into a neighbor.
func (a *candArena) newCandidate(s int) *Candidate {
	if a.nb == len(a.blocks) {
		a.blocks = make([]candidateBlock, 256)
		a.nb = 0
	}
	blk := &a.blocks[a.nb]
	a.nb++
	if a.ns+s > len(a.stages) {
		a.stages = make([]parallel.StagePlan, max(1024, s))
		a.ns = 0
	}
	st := a.stages[a.ns : a.ns+s : a.ns+s]
	a.ns += s
	if a.ni+2*s > len(a.ints) {
		a.ints = make([]int, max(2048, 2*s))
		a.ni = 0
	}
	ints := a.ints[a.ni : a.ni+2*s]
	a.ni += 2 * s
	if a.nf+s > len(a.floats) {
		a.floats = make([]float64, max(1024, s))
		a.nf = 0
	}
	fl := a.floats[a.nf : a.nf+s : a.nf+s]
	a.nf += s

	c := &blk.cand
	c.Plan = &blk.plan
	c.Plan.Stages = st
	c.OpsPerStage = ints[:s:s]
	c.GPUsPerStage = ints[s : 2*s : 2*s]
	c.IdealAssign = fl
	return c
}

// rangeInfeasible reports whether operators [start, end) fit device
// memory at no power-of-two GPU count up to the grid's total — the
// condition under which the reference path rejects every partition
// containing the range (stageMetrics reports infeasibility at that stage
// whatever the assignment says). Memoized per range; misses warm the
// intra-stage selector's memo with lookups the surviving partitions
// would pay anyway.
func (e *partitionDP) rangeInfeasible(start, end int) bool {
	k := start*(e.numOps+1) + end
	if v := e.feas[k]; v != 0 {
		return v == 2
	}
	for p := 1; p <= e.n; p *= 2 {
		if e.intra.best(start, end, p) != nil {
			e.feas[k] = 1
			return false
		}
	}
	e.feas[k] = 2
	return true
}

// pascalSize is the shared binomial table's extent. C(64, 32) still fits
// a 64-bit int; graphs beyond 64 operators fall back to a private table.
const pascalSize = 64

var pascalOnce sync.Once
var pascalShared [][]int

// pascalTable returns binomial coefficients C(m, k) for m, k ≤ size —
// the shared table for every realistic graph (the clustered models have
// 16 operators), built once per process.
func pascalTable(size int) [][]int {
	if size > pascalSize {
		return pascalTriangle(size)
	}
	pascalOnce.Do(func() { pascalShared = pascalTriangle(pascalSize) })
	return pascalShared
}

// pascalTriangle builds binomial coefficients C(m, k) for m, k ≤ size.
func pascalTriangle(size int) [][]int {
	t := make([][]int, size+1)
	for m := 0; m <= size; m++ {
		t[m] = make([]int, size+1)
		t[m][0] = 1
		for k := 1; k <= m; k++ {
			t[m][k] = t[m-1][k-1] + t[m-1][k]
		}
	}
	return t
}
