// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one testing.B benchmark per experiment, plus
// micro-benchmarks of the core primitives. The figure benchmarks print
// their tables on the first iteration so `go test -bench=.` doubles as a
// report generator; deterministic seeds make every run identical.
package arena_test

import (
	"context"

	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/clock"
	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/experiments"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/search"
	"github.com/sjtu-epcc/arena/internal/server"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
)

func sharedEnv() *experiments.Env {
	envOnce.Do(func() { benchEnv = experiments.NewEnv(42) })
	return benchEnv
}

// benchExperiment runs one registered experiment b.N times, printing the
// resulting table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	env := sharedEnv()
	ex, err := env.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		table, err := ex.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var w io.Writer = os.Stdout
			if testing.Short() {
				w = io.Discard
			}
			table.Fprint(w)
		}
	}
}

// --- One benchmark per paper table/figure (§5). ---

func BenchmarkFig02APDynamicity(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig03ViewInversion(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig06PartitionBalance(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkEtaKnob(b *testing.B)               { benchExperiment(b, "eta") }
func BenchmarkFig10Testbeds(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFidelity(b *testing.B)              { benchExperiment(b, "fidelity") }
func BenchmarkFig11WeekSeries(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12LargeScale(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13HeliosPAI(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14ParetoProxy(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15PrunedSearch(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16Profiling(b *testing.B)        { benchExperiment(b, "fig16") }
func BenchmarkDeadline(b *testing.B)              { benchExperiment(b, "ddl") }
func BenchmarkFig17Ablation(b *testing.B)         { benchExperiment(b, "fig17") }
func BenchmarkFig18Breakdown(b *testing.B)        { benchExperiment(b, "fig18") }
func BenchmarkFig19LifespanScaling(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkSensitivityPD(b *testing.B)         { benchExperiment(b, "sens") }
func BenchmarkOverheads(b *testing.B)             { benchExperiment(b, "overheads") }
func BenchmarkDesignAblation(b *testing.B)        { benchExperiment(b, "design") }

// --- Micro-benchmarks of the core primitives. ---

func BenchmarkKernelTime(b *testing.B) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")
	op := g.Ops[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.KernelTime(op, spec, 16, 2)
	}
}

func BenchmarkCollectiveTime(b *testing.B) {
	eng := arena.NewEngine(42)
	topo := hw.Topology{GPUType: "A40", Workers: 8, CrossNode: true, NICShare: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.CollectiveTime(hw.AllReduce, topo, 1e9)
	}
}

func BenchmarkEvaluatePlan(b *testing.B) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")
	plan := arena.PureDP(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(g, plan, spec, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanGrid compares the planner's fast paths against their
// references on the grid columns a cold perfdb build actually plans:
// every (N, S) grid up to 16 GPUs for a memory-comfortable workload
// (GPT-1.3B on A40) and a memory-tight one (MoE-10B on A10, where the
// DP's infeasible-subtree skipping also engages). dp is the default
// (prefix-DP enumerator + incremental Pareto sweep); dp-sorted-pareto
// keeps the DP enumerator but reduces through the post-hoc
// sort-and-sweep reference, isolating the sweep's contribution;
// exhaustive is the from-scratch enumerator (through the sweep).
// TestPrefixDPMatchesExhaustive proves all variants emit bit-identical
// GridPlans, so the ratios are pure speedup.
func BenchmarkPlanGrid(b *testing.B) {
	cases := []struct {
		model string
		gb    int
		typ   string
	}{
		{"GPT-1.3B", 128, "A40"},
		{"MoE-10B", 256, "A10"},
	}
	type column struct {
		g     *model.Graph
		grids []core.Grid
	}
	var columns []column
	for _, c := range cases {
		g := arena.MustBuildModel(c.model)
		w := model.Workload{Model: c.model, GlobalBatch: c.gb}
		columns = append(columns, column{g: g, grids: core.Enumerate(w, len(g.Ops), []string{c.typ}, 16)})
	}
	run := func(b *testing.B, exhaustive, sortedPareto bool) {
		pl := planner.New()
		pl.Exhaustive = exhaustive
		pl.SortedPareto = sortedPareto
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, col := range columns {
				for _, grid := range col.grids {
					if _, err := pl.PlanGrid(col.g, grid); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("dp", func(b *testing.B) { run(b, false, false) })
	b.Run("dp-sorted-pareto", func(b *testing.B) { run(b, false, true) })
	b.Run("exhaustive", func(b *testing.B) { run(b, true, false) })
}

func BenchmarkFullSearch8GPU(b *testing.B) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.FullSearch(eng, g, spec, 128, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSearch compares the legacy serial uncached full search
// against the memoized + parallel path on the same inputs (one 16-GPU
// column, n = 1..16, as perfdb builds it). The cached variant starts
// from a cold cache every iteration, so the measured speedup is real
// intra-column reuse plus profiling fan-out, not warm-cache replay.
func BenchmarkFullSearch(b *testing.B) {
	eng := arena.NewEngine(42)
	g := arena.MustBuildModel("GPT-1.3B")
	spec := arena.MustGPU("A40")
	column := func(opts search.Options) {
		for n := 1; n <= 16; n *= 2 {
			if _, err := search.FullSearchOpts(eng, g, spec, 128, n, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			column(search.Options{})
		}
	})
	b.Run("cached-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			column(search.Options{Cache: evalcache.New(eng), Workers: -1})
		}
	})
}

// BenchmarkBuildPerfDB compares three ways of obtaining the same
// database on identical inputs: the pre-memoization build (NoCache:
// per-workload concurrency only, every search measuring from scratch),
// the cached build (shared per-workload evalcache plus the types ×
// counts fan-out), and the -db-cache path (BuildOrLoad against a warm
// JSON snapshot — what a repeated simulator run pays).
func BenchmarkBuildPerfDB(b *testing.B) {
	workloads := []model.Workload{
		{Model: "GPT-1.3B", GlobalBatch: 128},
		{Model: "WRes-1B", GlobalBatch: 256},
	}
	opts := func(noCache bool) perfdb.Options {
		return perfdb.Options{
			GPUTypes: []string{"A40"}, MaxN: 16,
			Workloads: workloads, NoCache: noCache,
		}
	}
	run := func(b *testing.B, noCache bool) {
		for i := 0; i < b.N; i++ {
			if _, err := perfdb.Build(arena.NewEngine(42), opts(noCache)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, true) })
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("snapshot", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "perfdb.json")
		eng := arena.NewEngine(42)
		if _, _, err := perfdb.BuildOrLoad(eng, opts(false), path); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db, loaded, err := perfdb.BuildOrLoad(eng, opts(false), path)
			if err != nil {
				b.Fatal(err)
			}
			if !loaded || db == nil {
				b.Fatal("snapshot not used")
			}
		}
	})
}

var (
	simBenchOnce sync.Once
	simBenchDB   *perfdb.DB
	simBenchJobs []trace.Job
	simBenchErr  error
)

// simBenchSetup builds the shared fixture of BenchmarkSimRun once per
// process: a small database over the trace's workloads and a Philly-like
// job arrival sequence, mirroring the simulator test setup.
func simBenchSetup() {
	simBenchOnce.Do(func() {
		workloads := []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
			{Model: "GPT-2.6B", GlobalBatch: 128},
		}
		simBenchDB, simBenchErr = perfdb.Build(arena.NewEngine(42), perfdb.Options{
			GPUTypes: []string{"A40", "A10"}, MaxN: 16, Workloads: workloads,
		})
		if simBenchErr != nil {
			return
		}
		simBenchJobs, simBenchErr = trace.Generate(trace.Config{
			Kind: trace.Philly, Duration: 3 * 3600, NumJobs: 40, Seed: 7,
			GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
			Workloads: workloads,
		})
	})
}

// BenchmarkSimRun guards the discrete-event simulator's hot path: one
// full Cluster-A run of the Arena scheduler over a 40-job Philly-like
// trace against a prebuilt database (the database build is excluded —
// BenchmarkBuildPerfDB guards that separately).
func BenchmarkSimRun(b *testing.B) {
	simBenchSetup()
	if simBenchErr != nil {
		b.Fatal(simBenchErr)
	}
	b.Run("arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: simBenchJobs,
				DB: simBenchDB, RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil simulation result")
			}
		}
	})
	// 100k runs the Arena policy itself — since the incremental scoring
	// layer (launch ladders, failure memos, gain heaps), the full policy
	// survives a 100k-job streamed day on 2048 GPUs inside the benchmark
	// budget, so the gate covers policy search at scale, not just the
	// engine.
	b.Run("100k", func(b *testing.B) {
		streamBenchRun(b, 100_000, func() sched.Policy { return sched.NewArena() }, false)
	})
}

// BenchmarkSimRunDeepQueue guards the incremental scoring layer where it
// matters: a 50k-job streamed day on 2048 GPUs under the Arena policy —
// a backlog deep enough that the pre-cache scheduler spent minutes per
// run re-scoring an almost-unchanged queue every round. The companion
// Reference benchmark below measures the full-rescan oracle on the same
// workload; the baseline gate holds the cached path to its recorded
// time, and the ISSUE's ≥10× claim is the ratio between the two.
func BenchmarkSimRunDeepQueue(b *testing.B) {
	b.Run("50k", func(b *testing.B) {
		streamBenchRun(b, 50_000, func() sched.Policy { return sched.NewArena() }, false)
	})
}

// BenchmarkSimRunDeepQueueReference is the same workload through the
// rescan oracle (ReferenceScore=true). Deliberately named outside the CI
// bench regexes and skipped under -short: it exists to measure the
// speedup on demand, not to gate commits at minutes per iteration.
func BenchmarkSimRunDeepQueueReference(b *testing.B) {
	if testing.Short() {
		b.Skip("reference rescan at 50k jobs skipped in -short mode")
	}
	streamBenchRun(b, 50_000, func() sched.Policy { return sched.NewArena() }, true)
}

// streamBenchSpec is the synthetic large cluster of the streaming
// benchmarks: 2048 GPUs across the two types the shared database knows.
func streamBenchSpec() hw.ClusterSpec {
	return hw.ClusterSpec{
		Name: "bench-xl",
		Regions: []hw.Region{
			{GPUType: "A40", Nodes: 512},
			{GPUType: "A10", Nodes: 512},
		},
	}
}

// streamBenchRun guards the event-heap core at scale: n jobs arrive from
// a streaming Helios-day generator (never materialized as a slice) and
// the simulator runs in streaming-summary mode, so memory stays O(active
// jobs) no matter how large n grows. A fresh single-use generator is
// built per iteration; its cost is a few RNG draws per job and stays in
// the timed region, as it would in any real streaming run. mkPolicy
// picks the scheduler; refScore=true swaps the policies' incremental
// score caches for their full-rescan reference (the parity oracle).
func streamBenchRun(b *testing.B, n int, mkPolicy func() sched.Policy, refScore bool) {
	simBenchSetup()
	if simBenchErr != nil {
		b.Fatal(simBenchErr)
	}
	cfg := trace.HeliosDay(7, []string{"A40", "A10"}, n)
	cfg.Workloads = []model.Workload{
		{Model: "WRes-1B", GlobalBatch: 256},
		{Model: "GPT-1.3B", GlobalBatch: 128},
		{Model: "GPT-2.6B", GlobalBatch: 128},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := trace.Stream(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Spec: streamBenchSpec(), Policy: mkPolicy(), Source: src,
			Streaming: true, DB: simBenchDB, RoundSeconds: 300,
			IncludeUnfinished: true, Seed: 1, ReferenceScore: refScore,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res == nil || res.Summary.Total < n/2 {
			b.Fatalf("streaming run lost jobs: %+v", res)
		}
	}
}

// BenchmarkSimRunMillion is the scale smoke for the streaming core: one
// million generated jobs through the same pipeline as SimRun/100k, but
// under FCFS — the cheapest Assign — so what it proves is O(active jobs)
// engine memory at extreme scale, not policy search speed. It is
// deliberately named outside the BenchmarkSimRun$ CI regexes — it exists
// to run on demand, not to gate every commit — and -short skips it.
func BenchmarkSimRunMillion(b *testing.B) {
	if testing.Short() {
		b.Skip("million-job smoke skipped in -short mode")
	}
	streamBenchRun(b, 1_000_000, func() sched.Policy { return policy.NewFCFS() }, false)
}

// BenchmarkSimRunFaults guards the fault-injected simulation path: the
// same Cluster-A Arena run as BenchmarkSimRun, but with a stochastic
// crash/straggler model and checkpoint accounting active, so regressions
// in event interleaving or goodput bookkeeping surface here rather than
// in the failure-free benchmark.
func BenchmarkSimRunFaults(b *testing.B) {
	simBenchSetup()
	if simBenchErr != nil {
		b.Fatal(simBenchErr)
	}
	fc := &faults.Config{
		Model: &faults.Model{
			Default: faults.TypeFaults{MTBF: 6 * 3600, MTTR: 1800, SlowEvery: 12 * 3600},
		},
		CheckpointInterval: 900,
	}
	b.Run("arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(sim.Config{
				Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: simBenchJobs,
				DB: simBenchDB, RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
				Faults: fc,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res == nil {
				b.Fatal("nil simulation result")
			}
		}
	})
}

// BenchmarkServerScheduleRound guards the daemon's hot path: one
// journaled scheduling round — inbox drain, policy Assign over the full
// backlog, in-memory commit, digest, fsynced journal append — with
// 10,000 jobs pending on Cluster A. Iteration counts are inflated so no
// job finishes inside the timed rounds and every round sees the whole
// backlog; the 10k submits (one journal record each) happen before the
// timer starts.
func BenchmarkServerScheduleRound(b *testing.B) {
	simBenchSetup()
	if simBenchErr != nil {
		b.Fatal(simBenchErr)
	}
	jobs, err := trace.Generate(trace.Config{
		Kind: trace.Philly, Duration: 3 * 3600, NumJobs: 10000, Seed: 7,
		GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
			{Model: "GPT-2.6B", GlobalBatch: 128},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("10k", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: simBenchDB,
			RoundSeconds: 300, Seed: 1,
			Store: st, Clock: clock.NewVirtual(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}()
		for _, j := range jobs {
			j.SubmitTime = 0   // the whole trace is backlog at round 0
			j.Iterations = 1e9 // nothing finishes inside the timed rounds
			if _, err := srv.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkProfileGridPlan(b *testing.B) {
	eng := arena.NewEngine(42)
	ct, err := profiler.OfflineSampleComm(eng, []string{"A40"}, 16)
	if err != nil {
		b.Fatal(err)
	}
	g := arena.MustBuildModel("GPT-1.3B")
	gp, err := planner.New().PlanGrid(g, core.Grid{
		Workload: model.Workload{Model: "GPT-1.3B", GlobalBatch: 128},
		GPUType:  "A40", N: 4, S: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := profiler.New(eng, ct)
		if _, err := pr.ProfileGridPlan(g, gp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildModelGraphs(b *testing.B) {
	names := model.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			if _, err := model.BuildClustered(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}
