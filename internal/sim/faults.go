package sim

import (
	"math"

	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// applyFault mutates the world for one fault event. Called from
// advanceTo at the event's exact time: progress up to the instant has
// already been applied, so a crash destroys exactly the since-checkpoint
// window and nothing more.
func (s *state) applyFault(ev faults.Event) {
	switch ev.Kind {
	case faults.Crash:
		victims := s.cluster.FailNode(ev.GPUType, ev.Node)
		for _, id := range victims {
			for _, j := range s.running {
				if j.Trace.ID == id {
					s.preempt(ev.Time, j)
					break
				}
			}
		}
	case faults.Recover:
		s.cluster.RecoverNode(ev.GPUType, ev.Node)
	case faults.SlowStart:
		s.cluster.SetSlow(ev.GPUType, ev.Node, ev.Factor)
		s.refreshSlowFactors(ev.Time)
	case faults.SlowEnd:
		s.cluster.ClearSlow(ev.GPUType, ev.Node)
		s.refreshSlowFactors(ev.Time)
	}
}

// refreshSlowFactors recomputes every running job's straggler factor
// from the cluster's node state (an episode may start or end under a
// live allocation). A job whose factor changed is a rate change: its
// progress is materialized at the episode edge under the old rate and
// its completion re-predicted under the new one.
func (s *state) refreshSlowFactors(t float64) {
	for _, j := range s.running {
		f := s.cluster.SlowFactor(j.Trace.ID)
		if f == j.SlowFactor {
			continue
		}
		s.materialize(j, t)
		j.SlowFactor = f
		s.rePredict(j, t)
	}
}

// preempt evicts a running job whose node died. Progress rolls back to
// the last durable checkpoint — the since-checkpoint window moves from
// goodput to waste and must be recomputed. Within its retry budget the
// job requeues behind an exponential backoff and will relaunch as a
// checkpoint restore; past it (or under the recovery-disabled ablation)
// it fails and every retained GPU-hour it ever earned becomes waste.
func (s *state) preempt(t float64, j *sched.Job) {
	// The job trained up to the crash instant; account that window before
	// rolling it back (the rollback is what destroys it).
	s.materialize(j, t)
	s.invalidate(j)
	s.cluster.Free(j.Trace.ID)
	s.running = removeJob(s.running, j)
	ac := s.simFor(j)
	s.goodputGPUSec -= ac.sinceCkptGPUSec
	s.wastedGPUSec += ac.sinceCkptGPUSec
	ac.retainedGPUSec -= ac.sinceCkptGPUSec
	lostSec := ac.sinceCkptSec
	ac.sinceCkptSec, ac.sinceCkptGPUSec = 0, 0
	j.RemainingSamples = j.CheckpointRemaining
	j.Preemptions++
	j.Alloc = sched.Alloc{}
	j.ActualThr = 0
	j.SlowFactor = 0
	j.BusyUntil = 0

	fc := s.faults
	if fc.DisableRecovery || j.Restarts >= fc.RetryBudget {
		// Dead for good: nothing it computed will ever be used.
		s.goodputGPUSec -= ac.retainedGPUSec
		s.wastedGPUSec += ac.retainedGPUSec
		ac.retainedGPUSec = 0
		j.State = sched.StateFailed
		j.FinishedAt = t
		s.retire(j)
		return
	}
	s.recomputeSec += lostSec
	j.Restarts++
	j.NextEligibleAt = t + fc.BackoffBase*math.Pow(2, float64(j.Restarts-1))
	j.Restarting = true
	j.State = sched.StateQueued
	s.queued = append(s.queued, j)
}
