// Package core implements the paper's central abstraction: the grid
// sharding of the joint scheduling-parallelism optimization space (§3.2).
//
// The joint space J = S × P couples every scheduling plan (job J_i, GPU
// count n, GPU type m) with every adaptive-parallelism plan (stage
// partition, GPU assignment, intra-stage parallelism). Arena's key
// observation is that for a model on fixed resources with a *fixed
// pipeline degree*, plans can be compared analytically — balanced
// inter-stage loads consistently win — while comparisons across pipeline
// degrees, resources or models need measured latencies. The grid is
// therefore "the optimization subspace with determined resource and
// pipeline degree": estimation happens within a grid (J_in), profiling
// across grids (J_out).
package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/model"
)

// MaxPipelineDegree bounds the pipeline degrees Arena enumerates per
// resource. The paper's workloads use up to 8 stages (Fig. 14).
const MaxPipelineDegree = 8

// Grid identifies one subspace of the joint optimization space for a job:
// all scheduling-parallelism plans with this resource allocation and this
// pipeline degree (Fig. 7).
type Grid struct {
	Workload model.Workload // job's model + global batch size
	GPUType  string         // resource type m
	N        int            // allocated GPU count n
	S        int            // pipeline degree (number of stages)
}

// String implements fmt.Stringer; the form doubles as a stable map key.
func (g Grid) String() string {
	return fmt.Sprintf("%s/%dx%s/s%d", g.Workload, g.N, g.GPUType, g.S)
}

// Resource is a grid's scheduling-space coordinate (n GPUs of type m)
// without the pipeline dimension — the unit the scheduler allocates.
type Resource struct {
	GPUType string
	N       int
}

// String implements fmt.Stringer.
func (r Resource) String() string { return fmt.Sprintf("%dx%s", r.N, r.GPUType) }

// PipelineDegrees returns the pipeline degrees enumerated for an n-GPU
// allocation over a graph with numOps clustered operators: every s with
// 1 ≤ s ≤ min(n, numOps, MaxPipelineDegree). Powers of two are not
// required — GPU assignments within a grid are power-of-two per stage,
// but the stage count itself is free (§3.2).
func PipelineDegrees(n, numOps int) []int {
	limit := n
	if numOps < limit {
		limit = numOps
	}
	if MaxPipelineDegree < limit {
		limit = MaxPipelineDegree
	}
	out := make([]int, 0, limit)
	for s := 1; s <= limit; s++ {
		out = append(out, s)
	}
	return out
}

// GPUCounts returns the power-of-two allocation sizes enumerated per GPU
// type: 1, 2, 4, ..., maxN (§3.3: per-stage GPU counts are limited to
// powers of two, following Sia).
func GPUCounts(maxN int) []int {
	var out []int
	for n := 1; n <= maxN; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Enumerate lists every grid for a workload across the given GPU types
// and a per-type maximum allocation, in deterministic order.
func Enumerate(w model.Workload, numOps int, gpuTypes []string, maxN int) []Grid {
	var grids []Grid
	for _, m := range gpuTypes {
		for _, n := range GPUCounts(maxN) {
			for _, s := range PipelineDegrees(n, numOps) {
				grids = append(grids, Grid{Workload: w, GPUType: m, N: n, S: s})
			}
		}
	}
	return grids
}

// SpaceSize reports analytic sizes of the optimization (sub)spaces for a
// job, used to document the complexity reduction of grid sharding
// (§3.2: profiling complexity drops from O(K·N·M·Σ C(O,s)·C(N,s)·2^s)
// to O(K·N²·M)).
type SpaceSize struct {
	JointPlans     float64 // |J| = |S × P|, scheduling × parallelism plans
	GridCount      int     // number of grids (profiled points, J_out)
	PerGridEstOnly float64 // average plans per grid (estimated, J_in)
}

// MeasureSpace computes SpaceSize for one workload given O clustered
// operators, M GPU types and per-type maximum N.
func MeasureSpace(numOps, numTypes, maxN int) SpaceSize {
	var joint float64
	gridCount := 0
	for _, n := range GPUCounts(maxN) {
		for _, s := range PipelineDegrees(n, numOps) {
			gridCount += numTypes
			// Plans within the grid: stage partitions × GPU assignments ×
			// intra-stage parallelism choices.
			partitions := binom(numOps-1, s-1)
			assignments := pow2Compositions(n, s)
			intra := math.Pow(float64(intraChoices(n)), float64(s))
			joint += float64(numTypes) * partitions * assignments * intra
		}
	}
	return SpaceSize{
		JointPlans:     joint,
		GridCount:      gridCount,
		PerGridEstOnly: joint / float64(gridCount),
	}
}

// binom returns C(n, k) as float64 (sizes only; exactness not required
// beyond float precision).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// pow2Compositions counts ordered s-tuples of powers of two summing to n.
func pow2Compositions(n, s int) float64 {
	memo := map[[2]int]float64{}
	var rec func(rem, parts int) float64
	rec = func(rem, parts int) float64 {
		if parts == 0 {
			if rem == 0 {
				return 1
			}
			return 0
		}
		if rem < parts { // each part ≥ 1
			return 0
		}
		key := [2]int{rem, parts}
		if v, ok := memo[key]; ok {
			return v
		}
		var total float64
		for p := 1; p <= rem; p *= 2 {
			total += rec(rem-p, parts-1)
		}
		memo[key] = total
		return total
	}
	return rec(n, s)
}

// intraChoices counts (dp, tp) factorizations with power-of-two factors
// for a stage of up to n GPUs (averaged upper bound: log2(n)+1).
func intraChoices(n int) int {
	c := 0
	for p := 1; p <= n; p *= 2 {
		c++
	}
	return c
}

// BestPerResource groups arbitrary per-grid scores (higher is better) by
// resource and returns, per resource, the grid with the best score —
// the traversal the scheduler performs when querying AP performance
// ("Arena traverses relevant grids for the best-performing one", §3.5).
func BestPerResource(scores map[Grid]float64) map[Resource]Grid {
	best := make(map[Resource]Grid)
	// Deterministic iteration: sort grid keys.
	grids := make([]Grid, 0, len(scores))
	for g := range scores {
		grids = append(grids, g)
	}
	sort.Slice(grids, func(i, j int) bool { return grids[i].String() < grids[j].String() })
	for _, g := range grids {
		r := Resource{GPUType: g.GPUType, N: g.N}
		cur, ok := best[r]
		if !ok || scores[g] > scores[cur] {
			best[r] = g
		}
	}
	return best
}
