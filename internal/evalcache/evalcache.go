package evalcache

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/store"
)

// shardKey identifies a measurement context: everything about a stage
// measurement that stays fixed across one search session.
type shardKey struct {
	graph       string
	gpu         string
	gpusPerNode int
}

// stageKey identifies one stage-candidate measurement within a shard.
// Micro-batch sample counts are keyed by their exact bit pattern so
// distinct fractional sample sizes never alias. Keeping the key small and
// string-free matters: on the search hot path the map hash is paid per
// candidate.
type stageKey struct {
	start, end int32
	dp, tp     int32
	microBits  uint64
}

// opCtxKey identifies one operator-measurement context within a shard:
// every op of the graph measured under (tp, samples-per-replica). Keying
// on samples-per-replica rather than (microbatch, DP) lets (micro=16,
// DP=2) and (micro=32, DP=4) share measurements — the op-level
// compute-redundancy elimination of §3.4. Within a context, ops index a
// flat slice, so stage assembly pays one lock and one map lookup total.
type opCtxKey struct {
	tp      int32
	sprBits uint64
}

// opCtx lazily materializes per-op measurements for one context.
type opCtx struct {
	mu   sync.Mutex
	vals []exec.OpMeasure
	have []bool
}

// planKey identifies one end-to-end plan evaluation.
type planKey struct {
	graph       string
	sig         string
	gpu         string
	globalBatch int
	gpusPerNode int
}

// Stats reports cache effectiveness counters.
type Stats struct {
	StageHits, StageMisses int
	PlanHits, PlanMisses   int
}

// Cache memoizes engine measurements. Construct with New; the zero value
// is not usable.
type Cache struct {
	eng *exec.Engine

	mu     sync.RWMutex
	shards map[shardKey]*StageShard
	plans  map[planKey]exec.Result

	// backing, when non-nil (AttachStore), persists measurement contexts:
	// each shard is loaded from its content-addressed object on first
	// resolution and written back by SaveStore when dirty. engineFP and
	// loadStats are maintained alongside it, all under mu.
	backing   *store.Store
	engineFP  string
	loadStats LoadStats

	stageHits, stageMisses atomic.Int64
	planHits, planMisses   atomic.Int64
}

// New returns an empty cache bound to the engine.
func New(eng *exec.Engine) *Cache {
	return &Cache{
		eng:    eng,
		shards: map[shardKey]*StageShard{},
		plans:  map[planKey]exec.Result{},
	}
}

// Engine returns the engine this cache memoizes.
func (c *Cache) Engine() *exec.Engine { return c.eng }

// sortedShardsLocked returns the shards in deterministic key order
// (graph, gpu, gpusPerNode). Persistence paths iterate this instead of
// the map so hydration order, save order and partial-failure behavior
// are reproducible. The caller holds mu.
func (c *Cache) sortedShardsLocked() []*StageShard {
	keys := make([]shardKey, 0, len(c.shards))
	for k := range c.shards {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.graph != b.graph {
			return a.graph < b.graph
		}
		if a.gpu != b.gpu {
			return a.gpu < b.gpu
		}
		return a.gpusPerNode < b.gpusPerNode
	})
	out := make([]*StageShard, len(keys))
	for i, k := range keys {
		out[i] = c.shards[k]
	}
	return out
}

// StageShard is the cache's view of one measurement context: a (graph,
// device, node-packing) triple. A search session resolves its shard once
// and then pays only a small integer-keyed lookup per candidate. Shards
// share the parent cache's storage and counters, so reuse still spans
// searches (full ↔ pruned, every GPU count of a column).
type StageShard struct {
	cache *Cache
	graph *model.Graph
	spec  hw.GPU
	gpn   int

	mu    sync.RWMutex
	m     map[stageKey]exec.StageMeasure
	ops   map[opCtxKey]*opCtx
	dirty bool // has measurements the backing store has not seen
}

// StageShard returns (creating on first use) the shard for a measurement
// context. The graph is identified by name; passing a different graph
// under a cached name returns the original context's shard. A
// gpusPerNode < 1 means the catalog default, exactly as the engine
// treats it — normalized here so the default and explicit spellings of
// one context share a shard.
func (c *Cache) StageShard(g *model.Graph, spec hw.GPU, gpusPerNode int) *StageShard {
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	key := shardKey{graph: g.Name, gpu: spec.Name, gpusPerNode: gpusPerNode}
	c.mu.RLock()
	sh, ok := c.shards[key]
	c.mu.RUnlock()
	if ok {
		return sh
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh, ok := c.shards[key]; ok {
		return sh
	}
	sh = &StageShard{
		cache: c, graph: g, spec: spec, gpn: gpusPerNode,
		m:   map[stageKey]exec.StageMeasure{},
		ops: map[opCtxKey]*opCtx{},
	}
	// First resolution of this measurement context: hydrate it from the
	// backing store (one targeted object read; contexts the session never
	// touches are never read).
	c.loadShardLocked(sh)
	c.shards[key] = sh
	return sh
}

// Measure returns the engine's measurement of one stage candidate in this
// shard's context, computing it at most once per distinct key. Misses
// assemble the stage from memoized per-operator measurements (the stage
// loop is pure summation in the engine's own order, so the result is bit
// identical to a direct MeasureStage), which collapses the search's
// O(ranges × range-length) kernel measurements to one per distinct
// operator configuration.
func (sh *StageShard) Measure(st parallel.StagePlan, microSamples float64) exec.StageMeasure {
	key := stageKey{
		start: int32(st.OpStart), end: int32(st.OpEnd),
		dp: int32(st.DP), tp: int32(st.TP),
		microBits: math.Float64bits(microSamples),
	}
	sh.mu.RLock()
	m, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.cache.stageHits.Add(1)
		return m
	}
	spr := microSamples / float64(st.DP)
	ctx := sh.opContext(opCtxKey{tp: int32(st.TP), sprBits: math.Float64bits(spr)})
	eng := sh.cache.eng
	// One lock spans the whole assembly: per-op work inside is either a
	// slice read or a rare pure computation filling the context in.
	ctx.mu.Lock()
	m = eng.MeasureStageFromOps(sh.graph, st, sh.spec, microSamples, sh.gpn, func(i int) exec.OpMeasure {
		if !ctx.have[i] {
			ctx.vals[i] = eng.MeasureOp(sh.graph.Ops[i], sh.spec, spr, st.TP, sh.gpn)
			ctx.have[i] = true
		}
		return ctx.vals[i]
	})
	ctx.mu.Unlock()
	sh.mu.Lock()
	sh.m[key] = m
	sh.dirty = true
	sh.mu.Unlock()
	sh.cache.stageMisses.Add(1)
	return m
}

// opContext returns (creating on first use) the per-(tp, spr) operator
// measurement context.
func (sh *StageShard) opContext(key opCtxKey) *opCtx {
	sh.mu.RLock()
	ctx, ok := sh.ops[key]
	sh.mu.RUnlock()
	if ok {
		return ctx
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ctx, ok := sh.ops[key]; ok {
		return ctx
	}
	n := len(sh.graph.Ops)
	ctx = &opCtx{vals: make([]exec.OpMeasure, n), have: make([]bool, n)}
	sh.ops[key] = ctx
	return ctx
}

// MeasureStage returns the engine's measurement of one stage candidate,
// computing it at most once per distinct key. Hot loops should resolve
// the StageShard once instead and call Measure on it.
func (c *Cache) MeasureStage(g *model.Graph, st parallel.StagePlan, spec hw.GPU, microSamples float64, gpusPerNode int) exec.StageMeasure {
	return c.StageShard(g, spec, gpusPerNode).Measure(st, microSamples)
}

// Evaluate returns the engine's end-to-end measurement of a plan,
// computing it at most once per distinct key. Errors (invalid plans,
// bad batch sizes) are never cached. The returned Result owns its
// StageTime slice; callers may mutate it freely.
func (c *Cache) Evaluate(g *model.Graph, p *parallel.Plan, spec hw.GPU, globalBatch, gpusPerNode int) (exec.Result, error) {
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode // match StageShard: one key per context
	}
	// Resolve the measurement context first: with a backing store this
	// hydrates the context's persisted plan evaluations (and stage/op
	// memo) before the lookup below, so a warm store serves the plan
	// without re-evaluating.
	sh := c.StageShard(g, spec, gpusPerNode)
	key := planKey{
		graph: g.Name, sig: parallel.StagesKey(p.Stages) + "#" + strconv.Itoa(p.NumMicrobatches),
		gpu: spec.Name, globalBatch: globalBatch, gpusPerNode: gpusPerNode,
	}
	c.mu.RLock()
	res, ok := c.plans[key]
	c.mu.RUnlock()
	if ok {
		c.planHits.Add(1)
		return copyResult(res), nil
	}
	// Evaluate through the cache's own stage measurements: the engine
	// re-measures every stage of the plan during evaluation, and a search
	// has typically profiled each of them already.
	res, err := c.eng.EvaluateMeasured(c, g, p, spec, globalBatch, gpusPerNode)
	if err != nil {
		return res, err
	}
	c.mu.Lock()
	c.plans[key] = res
	c.mu.Unlock()
	sh.mu.Lock()
	sh.dirty = true
	sh.mu.Unlock()
	c.planMisses.Add(1)
	return copyResult(res), nil
}

// copyResult detaches the mutable slice so cached entries stay pristine.
func copyResult(res exec.Result) exec.Result {
	if res.StageTime != nil {
		st := make([]float64, len(res.StageTime))
		copy(st, res.StageTime)
		res.StageTime = st
	}
	return res
}

// Stats returns a snapshot of the hit/miss counters.
func (c *Cache) Stats() Stats {
	return Stats{
		StageHits:   int(c.stageHits.Load()),
		StageMisses: int(c.stageMisses.Load()),
		PlanHits:    int(c.planHits.Load()),
		PlanMisses:  int(c.planMisses.Load()),
	}
}

// Len reports the number of memoized stage measurements and plan
// evaluations.
func (c *Cache) Len() (stages, plans int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sh := range c.shards {
		sh.mu.RLock()
		stages += len(sh.m)
		sh.mu.RUnlock()
	}
	return stages, len(c.plans)
}

// Reset drops all memoized measurements and counters. Required after
// mutating the bound engine's tunables; with a backing store it also
// re-derives the engine fingerprint, so subsequent contexts hydrate from
// (and save to) the retuned engine's own objects.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.shards = map[shardKey]*StageShard{}
	c.plans = map[planKey]exec.Result{}
	if c.backing != nil {
		c.engineFP = EngineFingerprint(c.eng)
	}
	c.loadStats = LoadStats{}
	c.mu.Unlock()
	c.stageHits.Store(0)
	c.stageMisses.Store(0)
	c.planHits.Store(0)
	c.planMisses.Store(0)
}
