package trace

import (
	"reflect"
	"testing"
)

func genCfg(kind Kind, jobs int) Config {
	switch kind {
	case Philly:
		return PhillyWeek(7, []string{"A40", "A10"}, jobs)
	case Helios:
		return HeliosDay(7, []string{"A40", "A10"}, jobs)
	default:
		return PAIDay(7, []string{"A40", "A10"}, jobs)
	}
}

func drain(t *testing.T, src Source) []Job {
	t.Helper()
	var jobs []Job
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		jobs = append(jobs, j)
		if len(jobs) > 1<<20 {
			t.Fatal("source never terminates")
		}
	}
	return jobs
}

func TestStreamDeterministicPerFamily(t *testing.T) {
	for _, kind := range []Kind{Philly, Helios, PAI} {
		cfg := genCfg(kind, 500)
		a, err := Stream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Stream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ja, jb := drain(t, a), drain(t, b)
		if !reflect.DeepEqual(ja, jb) {
			t.Errorf("%s: two generators from one config disagree", kind)
		}
		if len(ja) == 0 {
			t.Fatalf("%s: generator emitted nothing", kind)
		}
		// Exhausted sources stay exhausted.
		if _, ok := a.Next(); ok {
			t.Errorf("%s: Next returned a job after exhaustion", kind)
		}
	}
}

func TestStreamOrderedWithinSpan(t *testing.T) {
	for _, kind := range []Kind{Philly, Helios, PAI} {
		cfg := genCfg(kind, 800)
		g, err := Stream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.Span() != cfg.Duration {
			t.Errorf("%s: Span %g != Duration %g", kind, g.Span(), cfg.Duration)
		}
		jobs := drain(t, g)
		prev := 0.0
		ids := map[string]bool{}
		for _, j := range jobs {
			if j.SubmitTime < prev {
				t.Fatalf("%s: SubmitTime regressed %g -> %g", kind, prev, j.SubmitTime)
			}
			if j.SubmitTime >= cfg.Duration {
				t.Fatalf("%s: SubmitTime %g beyond span %g", kind, j.SubmitTime, cfg.Duration)
			}
			if j.Iterations <= 0 || j.ReqGPUs <= 0 || j.ReqType == "" {
				t.Fatalf("%s: malformed job %+v", kind, j)
			}
			if ids[j.ID] {
				t.Fatalf("%s: duplicate job ID %s", kind, j.ID)
			}
			ids[j.ID] = true
			prev = j.SubmitTime
		}
	}
}

func TestStreamExpectedCount(t *testing.T) {
	// NumJobs is the expected value of the Poisson process; the realized
	// count must land within a loose band around it (±20% at n=2000 is
	// ~9 standard deviations — failure means the rate normalization is
	// wrong, not bad luck).
	for _, kind := range []Kind{Philly, Helios, PAI} {
		g, err := Stream(genCfg(kind, 2000))
		if err != nil {
			t.Fatal(err)
		}
		n := len(drain(t, g))
		if n < 1600 || n > 2400 {
			t.Errorf("%s: realized %d jobs for expected 2000", kind, n)
		}
	}
}

func TestStreamValidatesConfig(t *testing.T) {
	if _, err := Stream(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := genCfg(Philly, 100)
	bad.GPUTypes = nil
	if _, err := Stream(bad); err == nil {
		t.Error("config without GPU types accepted")
	}
}

func TestSliceSourceSortsAndSpans(t *testing.T) {
	jobs := []Job{
		{ID: "c", SubmitTime: 300},
		{ID: "a", SubmitTime: 100},
		{ID: "b1", SubmitTime: 200},
		{ID: "b2", SubmitTime: 200},
	}
	src := SliceSource(jobs)
	sp, ok := src.(Spanner)
	if !ok {
		t.Fatal("SliceSource does not implement Spanner")
	}
	if sp.Span() != 300 {
		t.Errorf("Span = %g, want 300", sp.Span())
	}
	var got []string
	for {
		j, more := src.Next()
		if !more {
			break
		}
		got = append(got, j.ID)
	}
	// Stable sort: equal SubmitTimes keep slice order (b1 before b2).
	want := []string{"a", "b1", "b2", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order %v, want %v", got, want)
	}
	// The input slice must be untouched.
	if jobs[0].ID != "c" {
		t.Error("SliceSource mutated its input")
	}
}

func TestGenPreset(t *testing.T) {
	types := []string{"A40"}
	for name, wantJobs := range map[string]int{
		"philly-6h": 244, "philly-week": 3000, "helios-day": 900, "pai-day": 450,
	} {
		cfg, err := GenPreset(name, 7, types, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.NumJobs != wantJobs {
			t.Errorf("%s: default NumJobs %d, want %d", name, cfg.NumJobs, wantJobs)
		}
		cfg, err = GenPreset(name, 7, types, 123)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.NumJobs != 123 {
			t.Errorf("%s: explicit jobs ignored (got %d)", name, cfg.NumJobs)
		}
	}
	if _, err := GenPreset("nope", 7, types, 0); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestGenerateUnchangedByRefactor(t *testing.T) {
	// Generate was refactored to share normalized()/synthesize() with the
	// streaming generator; the draw sequence must be untouched. Pin a few
	// stable properties of a known seed.
	cfg := genCfg(Philly, 50)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate not deterministic")
	}
	if len(a) != 50 {
		t.Fatalf("Generate emitted %d jobs, want exactly 50", len(a))
	}
}
