package planner

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// push drives the staircase exactly as offer does once a candidate's
// metrics are known, letting the tests feed synthetic (BComp, LComm,
// rank) populations without a graph or an intra-stage selector.
func (f *sweepFrontier) push(bComp, lComm float64, rank int) {
	idx := sort.Search(len(f.entries), func(i int) bool { return f.entries[i].cand.BComp > bComp })
	if !f.admit(idx, bComp, lComm, rank) {
		return
	}
	f.insert(frontierEntry{cand: &Candidate{BComp: bComp, LComm: lComm}, rank: rank}, idx)
}

type synthCand struct {
	b, l float64
	rank int
}

// bruteMinima computes the staircase's specified content directly: the
// minima of the strict partial order "≤ on both metrics and (< on one,
// or < on rank with both exactly tied)", sorted by BComp — the frontier
// as a pure function of the population, no insertion order anywhere.
func bruteMinima(pop []synthCand) []synthCand {
	var out []synthCand
	for _, c := range pop {
		beaten := false
		for _, k := range pop {
			if k.b <= c.b && k.l <= c.l &&
				(k.b < c.b || k.l < c.l || (k.b == c.b && k.l == c.l && k.rank < c.rank)) {
				beaten = true
				break
			}
		}
		if !beaten {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].b < out[j].b })
	return out
}

// TestSweepFrontierOrderIndependence is the staircase's core contract:
// for randomized populations dense with exact dual ties, every offer
// permutation — including the lexicographic and colexicographic orders
// the two enumerators use — yields the same staircase, and that
// staircase equals both the brute-force minima and the sorted reference
// (paretoFrontier fed in rank order).
func TestSweepFrontierOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pop := make([]synthCand, n)
		for i := range pop {
			// Tiny value alphabets force duplicate metrics and dual ties.
			pop[i] = synthCand{
				b:    float64(1 + rng.Intn(4)),
				l:    float64(1+rng.Intn(5)) * 0.25,
				rank: i, // rank = position in the canonical (lex) order
			}
		}
		want := bruteMinima(pop)

		// The sorted reference: candidates presented in rank order.
		cands := make([]*Candidate, n)
		for i, c := range pop {
			cands[i] = &Candidate{BComp: c.b, LComm: c.l}
		}
		ref := paretoFrontier(cands)
		if len(ref) != len(want) {
			t.Fatalf("trial %d: sorted reference kept %d, brute force %d", trial, len(ref), len(want))
		}
		for i, c := range ref {
			if c.BComp != want[i].b || c.LComm != want[i].l || c != cands[want[i].rank] {
				t.Fatalf("trial %d: sorted reference diverged from brute force at %d", trial, i)
			}
		}

		for perm := 0; perm < 8; perm++ {
			order := rng.Perm(n)
			if perm == 0 {
				for i := range order {
					order[i] = i // lexicographic arrival
				}
			}
			if perm == 1 {
				for i := range order {
					order[i] = n - 1 - i // anti-lexicographic arrival
				}
			}
			f := &sweepFrontier{}
			for _, i := range order {
				f.push(pop[i].b, pop[i].l, pop[i].rank)
			}
			if len(f.entries) != len(want) {
				t.Fatalf("trial %d perm %d: staircase kept %d, want %d", trial, perm, len(f.entries), len(want))
			}
			for i, e := range f.entries {
				if e.cand.BComp != want[i].b || e.cand.LComm != want[i].l || e.rank != want[i].rank {
					t.Fatalf("trial %d perm %d: entry %d = (%v, %v, rank %d), want (%v, %v, rank %d)",
						trial, perm, i, e.cand.BComp, e.cand.LComm, e.rank, want[i].b, want[i].l, want[i].rank)
				}
			}
		}
	}
}

// TestSweepFrontierStaircaseShape pins the structural invariant the
// admit/insert pair maintains: entries strictly increasing in BComp and
// strictly decreasing in LComm, with no duplicates.
func TestSweepFrontierStaircaseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := &sweepFrontier{}
	for i := 0; i < 500; i++ {
		f.push(rng.Float64()*4, rng.Float64()*4, i)
		for j := 1; j < len(f.entries); j++ {
			a, b := f.entries[j-1].cand, f.entries[j].cand
			if !(a.BComp < b.BComp && a.LComm > b.LComm) {
				t.Fatalf("step %d: staircase broken at %d: (%v,%v) then (%v,%v)",
					i, j, a.BComp, a.LComm, b.BComp, b.LComm)
			}
		}
	}
}

// TestSweepFrontierRandomGraphParity extends the deterministic matrix
// with randomized graphs: operator loads drawn from a small alphabet
// (duplicating real transformer uniformity) plus zero-load operators,
// swept across every enumerator × reduction combination.
func TestSweepFrontierRandomGraphParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	variants := plannerVariants()
	for trial := 0; trial < 12; trial++ {
		numOps := 6 + rng.Intn(8)
		g := zeroLoadGraph(numOps, 0)
		for i := range g.Ops {
			switch rng.Intn(3) {
			case 0:
				g.Ops[i].FLOPs, g.Ops[i].Bytes = 0, 0 // reshape/cast-like
			case 1:
				g.Ops[i].FLOPs = 2e12
			}
		}
		n := 4 << rng.Intn(3)
		s := 1 + rng.Intn(numOps)
		if s > n {
			s = n
		}
		gr := grid(g.Name, 64, "A40", n, s)
		want, err := variants[0].pl.PlanGrid(g, gr)
		if err != nil {
			t.Fatalf("trial %d %v: %v", trial, gr, err)
		}
		for _, v := range variants[1:] {
			got, err := v.pl.PlanGrid(g, gr)
			if err != nil {
				t.Fatalf("trial %d %v: %s: %v", trial, gr, v.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: %s diverged from %s", trial, gr, v.name, variants[0].name)
			}
		}
	}
}
