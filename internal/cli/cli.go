// Package cli holds the plumbing shared by the four arena command-line
// tools (arena-sim, arena-bench, arena-plan, arena-profile): the common
// -seed/-workers/-store flags, cluster and trace pickers, a signal-aware
// root context, and one error/warning path so every tool reports failures
// in the same format.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	arena "github.com/sjtu-epcc/arena"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Common carries the flags every arena tool spells identically.
type Common struct {
	// Seed is the determinism seed (-seed).
	Seed uint64
	// Workers bounds profiling/search/build worker pools; 0 = all cores
	// (-workers).
	Workers int
	// Store is the content-addressed measurement store directory
	// (-store): op/stage/plan measurements and per-workload performance-
	// database columns persist across invocations, so repeated runs skip
	// cold profiling and adding a workload rebuilds only its own column.
	Store string
	// DBCache is the legacy all-or-nothing PerfDB snapshot path — a JSON
	// file, or a directory for arena-bench (-db-cache).
	//
	// Deprecated: use Store. Kept as a working alias; ignored when Store
	// is also set.
	DBCache string
}

// CommonFlags registers the shared flag set on flag.CommandLine. Call
// before flag.Parse.
func CommonFlags() *Common {
	c := &Common{}
	flag.Uint64Var(&c.Seed, "seed", 42, "determinism seed")
	flag.IntVar(&c.Workers, "workers", 0, "worker goroutines for profiling/search/build fan-out (0 = all cores)")
	flag.StringVar(&c.Store, "store", "", "content-addressed measurement store directory: persists op/stage measurements and per-workload PerfDB columns across runs")
	flag.StringVar(&c.DBCache, "db-cache", "", "deprecated: use -store. Legacy all-or-nothing PerfDB JSON snapshot path (arena-bench: directory)")
	return c
}

// Persistent reports whether any cross-run persistence is configured —
// the condition tools use to decide whether to print the perfdb section.
func (c *Common) Persistent() bool { return c.Store != "" || c.DBCache != "" }

// EffectiveDBCache resolves the deprecated -db-cache flag against -store,
// printing the uniform deprecation warning: -store supersedes -db-cache
// when both are given. Every tool must route its legacy snapshot path
// through this method so the precedence rule lives in exactly one place.
func (c *Common) EffectiveDBCache() string {
	switch {
	case c.DBCache == "":
		return ""
	case c.Store != "":
		fmt.Fprintf(os.Stderr, "%s: warning: -db-cache is deprecated and ignored because -store is set\n", Tool())
		return ""
	default:
		fmt.Fprintf(os.Stderr, "%s: warning: -db-cache is deprecated; prefer -store for partial, content-addressed reuse\n", Tool())
		return c.DBCache
	}
}

// SessionOptions translates the persistence flags into session options.
func (c *Common) SessionOptions() []arena.Option {
	var opts []arena.Option
	if c.Store != "" {
		opts = append(opts, arena.WithStore(c.Store))
	}
	if path := c.EffectiveDBCache(); path != "" {
		opts = append(opts, arena.WithPerfDBSnapshot(path))
	}
	return opts
}

// NewSession constructs the tool's session from the given options plus
// the persistence flags. A store written by an incompatible schema
// version is warned about and skipped — the tool runs without persistence
// rather than aborting, since the store is only a cache. A store held by
// another process is different: silently proceeding without it would look
// like a cold run, so the tool fails fast and names the conflict.
func NewSession(c *Common, opts ...arena.Option) *arena.Session {
	full := append(append([]arena.Option(nil), opts...), c.SessionOptions()...)
	sess, err := arena.New(full...)
	if err != nil && c.Store != "" && errors.Is(err, store.ErrSchema) {
		fmt.Fprintf(os.Stderr, "%s: warning: %v (continuing without the store)\n", Tool(), err)
		sess, err = arena.New(opts...)
	}
	if err != nil && c.Store != "" && errors.Is(err, store.ErrLocked) {
		Fatal(fmt.Errorf("%w; another arena process (an arena-server?) holds -store %s — stop it or point this tool elsewhere", err, c.Store))
	}
	if err != nil {
		Fatal(err)
	}
	return sess
}

// CloseSession flushes the session's measurement memo to the store and
// reports the session's profiling economics: what the store restored
// (hydration is lazy, so this is known only at the end) and how much cold
// measurement it saved. Persistence failures only lose the cross-run
// cache, so they warn instead of failing the tool.
func CloseSession(c *Common, sess *arena.Session) {
	if c.Store != "" {
		st := sess.EvalStoreStats()
		for _, serr := range st.Skipped {
			fmt.Fprintf(os.Stderr, "%s: warning: %v (object skipped; measurements rebuilt)\n", Tool(), serr)
		}
		if st.Stages+st.Ops+st.Plans > 0 {
			fmt.Fprintf(os.Stderr, "%s: store: restored %d stage, %d op, %d plan measurements from %s\n",
				Tool(), st.Stages, st.Ops, st.Plans, c.Store)
		}
		s := sess.EvalCache().Stats()
		fmt.Fprintf(os.Stderr, "%s: store: this run measured %d stages and %d plans cold (%d stage, %d plan requests served from the memo)\n",
			Tool(), s.StageMisses, s.PlanMisses, s.StageHits, s.PlanHits)
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: warning: %v (measurements from this run were not persisted)\n", Tool(), err)
	}
}

// Tool returns the running tool's name for message prefixes.
func Tool() string { return filepath.Base(os.Args[0]) }

// Fatal prints "<tool>: <err>" to stderr and exits 1.
func Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", Tool(), err)
	os.Exit(1)
}

// WarnSnapshot prints the uniform snapshot-persistence warning: the
// database was built fine, only the cross-run cache write failed.
func WarnSnapshot(err error) {
	fmt.Fprintf(os.Stderr, "%s: warning: %v (continuing with the built database)\n", Tool(), err)
}

// ReportDB funnels every tool's BuildPerfDB outcome through one policy:
// nil error passes, a snapshot persistence failure on a usable database
// warns and continues, anything else is fatal.
func ReportDB(db *perfdb.DB, err error) {
	if err == nil {
		return
	}
	var snapErr *perfdb.SnapshotError
	if db != nil && errors.As(err, &snapErr) {
		WarnSnapshot(err)
		return
	}
	Fatal(err)
}

// BuildDB builds (or store/snapshot-loads) the session's performance
// database, funnels the outcome through ReportDB, and labels the source
// the way the tools print it: "store" (all columns reused), "store,
// partial" (some columns built), "snapshot" (legacy single file), or
// "searched".
func BuildDB(ctx context.Context, sess *arena.Session) (*perfdb.DB, string) {
	db, err := sess.BuildPerfDB(ctx)
	ReportDB(db, err)
	stats := sess.PerfDBStoreStats()
	for _, serr := range stats.Skipped {
		fmt.Fprintf(os.Stderr, "%s: warning: %v (column rebuilt)\n", Tool(), serr)
	}
	switch {
	case stats.FromStore():
		return db, "store"
	case stats.LoadedColumns > 0:
		return db, fmt.Sprintf("store, partial: %d columns reused, %d built", stats.LoadedColumns, stats.BuiltColumns)
	case sess.PerfDBFromSnapshot():
		return db, "snapshot"
	default:
		return db, "searched"
	}
}

// Context returns the tool's root context, cancelled on SIGINT/SIGTERM —
// the one signal-handling path every arena process shares. For the batch
// tools a ^C aborts in-flight database builds and searches promptly
// instead of killing the process mid-write; for arena-server a SIGTERM
// is the graceful-shutdown request: the round loop observes cancellation
// between rounds, drains the in-flight round, and flushes the journal.
// After the first signal the registration is dropped, so a second ^C (or
// a supervisor's escalation to a repeat SIGTERM) terminates the process
// the default way even if some code path ignores the cancellation.
func Context() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// PickPolicies resolves the -policy flag spelling shared by the tools:
// one scheduler by name, or "all" for the paper's five in §5.1 order.
func PickPolicies(name string) ([]arena.Policy, error) {
	switch name {
	case "fcfs":
		return []arena.Policy{arena.NewFCFS()}, nil
	case "gavel":
		return []arena.Policy{arena.NewGavel()}, nil
	case "elasticflow":
		return []arena.Policy{arena.NewElasticFlow()}, nil
	case "sia":
		return []arena.Policy{arena.NewSia()}, nil
	case "arena":
		return []arena.Policy{arena.NewArenaPolicy()}, nil
	case "all":
		return []arena.Policy{
			arena.NewFCFS(), arena.NewGavel(), arena.NewElasticFlow(),
			arena.NewSia(), arena.NewArenaPolicy(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// PickPolicy is PickPolicies for tools that run exactly one scheduler
// (arena-server schedules one queue; "all" makes no sense there).
func PickPolicy(name string) (arena.Policy, error) {
	if name == "all" {
		return nil, fmt.Errorf("pick one policy (fcfs|gavel|elasticflow|sia|arena)")
	}
	pols, err := PickPolicies(name)
	if err != nil {
		return nil, err
	}
	return pols[0], nil
}

// PickCluster resolves the -cluster flag spelling shared by the tools.
func PickCluster(name string) (hw.ClusterSpec, error) {
	switch name {
	case "a":
		return hw.ClusterA(), nil
	case "b":
		return hw.ClusterB(), nil
	case "sim":
		return hw.ClusterSim(), nil
	case "b-homogeneous":
		return hw.ClusterBHomogeneous(), nil
	default:
		return hw.ClusterSpec{}, fmt.Errorf("unknown cluster %q", name)
	}
}

// PickTraceGen resolves the -trace-gen flag: a streaming-generator preset
// name (philly-6h|philly-week|helios-day|pai-day) to the trace.Config a
// trace.Stream source is built from, applying the preset's default job
// count when jobs is 0. Unlike PickTrace, the returned Config describes
// an expected Poisson job count — the realized count varies around it.
func PickTraceGen(name string, seed uint64, types []string, jobs int) (trace.Config, error) {
	return trace.GenPreset(name, seed, types, jobs)
}

// PickTrace resolves the -trace flag spelling shared by the tools,
// applying each trace's default job count when jobs is 0.
func PickTrace(kind string, seed uint64, types []string, jobs int) (trace.Config, error) {
	switch kind {
	case "philly":
		if jobs == 0 {
			jobs = 3000
		}
		return trace.PhillyWeek(seed, types, jobs), nil
	case "helios":
		if jobs == 0 {
			jobs = 900
		}
		return trace.HeliosDay(seed, types, jobs), nil
	case "pai":
		if jobs == 0 {
			jobs = 450
		}
		return trace.PAIDay(seed, types, jobs), nil
	default:
		return trace.Config{}, fmt.Errorf("unknown trace %q", kind)
	}
}
