// Package schedtest checks the structural invariants every policy's
// Assignment must satisfy, independent of which policy produced it or
// what it optimizes. The simulator applies assignments defensively
// (infeasible placements simply stay queued), so a policy bug that
// over-commits capacity or places nonsense does not crash a run — it
// silently warps results. These checks turn such bugs into test
// failures at the round that produced them.
//
// The invariants, against the round's pre-apply snapshot:
//
//   - Capacity: per GPU type, placements never exceed snapshot free
//     capacity plus whatever the same assignment frees (running jobs
//     that shrink, move away, or release). The balance may be spent in
//     any order — the engine applies shrinks first — but must end ≥ 0.
//   - Identity: every Place / Drop / Migrate id names a job in the
//     round's Queued or Running sets; no job is placed twice (Drop and
//     Migrate carry no duplicates, and neither overlaps Place/Drop in
//     a contradictory way).
//   - Shape: placements are at least one GPU on a known type; a zero
//     Alloc (release) is only meaningful for running jobs.
//   - Rigidity (opt-in): rigid policies place only profiled
//     power-of-two counts.
//   - Migration: every Migrate not superseded by a rescale targets a
//     running job with healthy capacity to land on — the engine
//     re-allocates the same shape, so proposing a move without a
//     healthy destination would bounce the job back to the queue.
package schedtest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// Options selects the opt-in invariants.
type Options struct {
	// RequirePow2 asserts every placed GPU count is a power of two —
	// the grid granularity rigid-mode policies must stay on.
	RequirePow2 bool
	// Profiled, when non-nil, asserts every placement (workload, type,
	// count) is one the checked policy could actually know about.
	Profiled func(w model.Workload, gpuType string, n int) bool
}

// Check validates one round's assignment against its snapshot context
// and returns a descriptive error listing every violated invariant.
func Check(ctx *sched.Context, asg sched.Assignment, opts Options) error {
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	queued := map[string]*sched.Job{}
	for _, j := range ctx.Queued {
		queued[j.Trace.ID] = j
	}
	running := map[string]*sched.Job{}
	for _, j := range ctx.Running {
		running[j.Trace.ID] = j
	}
	known := func(id string) bool {
		_, q := queued[id]
		_, r := running[id]
		return q || r
	}

	// Capacity balance per type: snapshot free, plus what running jobs'
	// re-places and releases free, minus what placements consume.
	types := map[string]bool{}
	balance := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		types[typ] = true
		balance[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	// Iterate placements in sorted id order: fail messages end up in the
	// returned error, so map-range order would make the report (and any
	// test asserting on it) differ run to run.
	placeIDs := make([]string, 0, len(asg.Place))
	for id := range asg.Place {
		placeIDs = append(placeIDs, id)
	}
	sort.Strings(placeIDs)
	for _, id := range placeIDs {
		target := asg.Place[id]
		j, isRunning := running[id]
		if !isRunning {
			var isQueued bool
			if j, isQueued = queued[id]; !isQueued {
				fail("Place[%s]: unknown job id", id)
				continue
			}
		}
		if target.IsZero() {
			if !isRunning {
				fail("Place[%s]: zero Alloc for a queued job (release of nothing)", id)
			} else {
				balance[j.Alloc.GPUType] += j.Alloc.N
			}
			continue
		}
		if target.N < 1 {
			fail("Place[%s]: %d GPUs", id, target.N)
			continue
		}
		if !types[target.GPUType] {
			fail("Place[%s]: unknown GPU type %q", id, target.GPUType)
			continue
		}
		if opts.RequirePow2 && target.N&(target.N-1) != 0 {
			fail("Place[%s]: %d GPUs is not a power of two", id, target.N)
		}
		if opts.Profiled != nil && !opts.Profiled(j.Workload(), target.GPUType, target.N) {
			fail("Place[%s]: unprofiled placement %d× %s for %v", id, target.N, target.GPUType, j.Workload())
		}
		if isRunning {
			balance[j.Alloc.GPUType] += j.Alloc.N
		}
		balance[target.GPUType] -= target.N
	}
	for _, typ := range ctx.Cluster.GPUTypes() {
		if balance[typ] < 0 {
			fail("type %s over-committed by %d GPUs (snapshot free %d)",
				typ, -balance[typ], ctx.Cluster.FreeGPUs(typ))
		}
	}

	// Drop: no duplicates, no overlap with Place, queued targets only.
	dropped := map[string]bool{}
	for _, id := range asg.Drop {
		if dropped[id] {
			fail("Drop: %s listed twice", id)
			continue
		}
		dropped[id] = true
		if _, placed := asg.Place[id]; placed {
			fail("%s both placed and dropped", id)
		}
		if !known(id) {
			fail("Drop: unknown job id %s", id)
		} else if _, q := queued[id]; !q {
			fail("Drop: %s is not queued", id)
		}
	}

	// Migrate: no duplicates, running targets, healthy destination.
	migrated := map[string]bool{}
	for _, id := range asg.Migrate {
		if migrated[id] {
			fail("Migrate: %s listed twice", id)
			continue
		}
		migrated[id] = true
		if dropped[id] {
			fail("%s both dropped and migrated", id)
		}
		if !known(id) {
			fail("Migrate: unknown job id %s", id)
			continue
		}
		if _, placed := asg.Place[id]; placed {
			continue // a rescale supersedes the migration; engine ignores it
		}
		j, isRunning := running[id]
		if !isRunning {
			fail("Migrate: %s is not running", id)
			continue
		}
		if !ctx.Cluster.CanAllocHealthy(j.Alloc.GPUType, j.Alloc.N) {
			fail("Migrate: %s has no healthy %d× %s destination", id, j.Alloc.N, j.Alloc.GPUType)
		}
	}

	if len(violations) > 0 {
		return fmt.Errorf("schedtest: %s", strings.Join(violations, "; "))
	}
	return nil
}

// Wrap returns a Policy delegating to p that fails t on the first round
// whose assignment violates the invariants. Drop it into any simulator
// config to turn a whole run into a property test.
func Wrap(t testing.TB, p sched.Policy, opts Options) sched.Policy {
	return &checked{t: t, p: p, opts: opts}
}

type checked struct {
	t    testing.TB
	p    sched.Policy
	opts Options
}

func (c *checked) Name() string { return c.p.Name() }

func (c *checked) Assign(ctx *sched.Context) sched.Assignment {
	asg := c.p.Assign(ctx)
	if err := Check(ctx, asg, c.opts); err != nil {
		c.t.Fatalf("%s at t=%g: %v", c.p.Name(), ctx.Now, err)
	}
	return asg
}

func (c *checked) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return c.p.PerceivedThr(db, w, gpuType, n)
}

func (c *checked) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return c.p.ActualThr(db, w, gpuType, n)
}

func (c *checked) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	return c.p.ProfilePrepend(db, w)
}

func (c *checked) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return c.p.DeployOverhead(db, w, gpuType, n)
}

// SetReferenceScore forwards the oracle flag so wrapped policies stay
// toggleable through sim.Config.ReferenceScore.
func (c *checked) SetReferenceScore(on bool) {
	if rs, ok := c.p.(sched.ReferenceScorer); ok {
		rs.SetReferenceScore(on)
	}
}
