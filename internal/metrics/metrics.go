// Package metrics aggregates the scheduling statistics the paper reports:
// cluster throughput time series (Fig. 11), JCT distributions and CDFs
// (Fig. 12), queuing delays (Fig. 10), deadline satisfaction (§5.6), and
// rescheduling counts (§5.3).
package metrics

import (
	"math"
	"sort"
)

// Summary is the outcome of one scheduling run.
type Summary struct {
	Policy string

	// ThroughputSeries samples cluster throughput (samples/s) per round.
	ThroughputSeries []float64
	AvgThr           float64
	PeakThr          float64

	// Per-finished-job statistics. When unfinished jobs are included
	// (Fig. 12's note), their JCT is censored at the horizon.
	JCTs       []float64
	QueueTimes []float64
	AvgJCT     float64
	P50JCT     float64
	P90JCT     float64
	AvgQueue   float64

	Finished int
	Dropped  int
	Total    int

	AvgReschedules float64

	DeadlineSatisfied int
	DeadlineTotal     int

	// Fault-injection accounting (all zero on failure-free runs).

	// GoodputGPUHours is GPU-time spent on work that survived: completed
	// or durably checkpointed. WastedGPUHours is GPU-time destroyed by
	// crashes — rolled-back windows plus everything a permanently failed
	// job ever computed. Their sum is the total busy GPU-time, so the
	// split directly measures what failure handling saves.
	GoodputGPUHours float64
	WastedGPUHours  float64
	// RecomputeSeconds totals the productive time crash survivors must
	// redo from their last checkpoint.
	RecomputeSeconds float64

	Preemptions int // crash evictions across all jobs
	Restarts    int // checkpoint restarts consumed
	Failed      int // jobs dead past their retry budget
}

// Finalize computes the aggregate fields from the raw series.
func (s *Summary) Finalize() {
	s.AvgThr = Mean(s.ThroughputSeries)
	s.PeakThr = Max(s.ThroughputSeries)
	s.AvgJCT = Mean(s.JCTs)
	s.P50JCT = Percentile(s.JCTs, 0.50)
	s.P90JCT = Percentile(s.JCTs, 0.90)
	s.AvgQueue = Mean(s.QueueTimes)
}

// DeadlineRatio returns the deadline satisfaction ratio (§5.6), or 0 when
// no job carried a deadline.
func (s *Summary) DeadlineRatio() float64 {
	if s.DeadlineTotal == 0 {
		return 0
	}
	return float64(s.DeadlineSatisfied) / float64(s.DeadlineTotal)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) with linear
// interpolation; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	X float64 // value
	F float64 // fraction ≤ X
}

// CDF returns the empirical CDF sampled at up to `points` positions
// (Fig. 12(a)'s JCT CDF).
func CDF(xs []float64, points int) []CDFPoint {
	if len(xs) == 0 || points < 2 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (len(sorted) - 1) * i / (points - 1)
		out = append(out, CDFPoint{
			X: sorted[idx],
			F: float64(idx+1) / float64(len(sorted)),
		})
	}
	return out
}

// RelErr returns |a−b| / b (0 when b is 0) — the simulation-fidelity
// metric of §5.2.
func RelErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Abs(b)
}
