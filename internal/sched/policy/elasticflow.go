package policy

import (
	"math"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// ElasticFlow (the -LS "loosened deadline" variant the paper compares
// against) elastically scales each job's GPU *count* within its
// homogeneous region: jobs stay on their requested type, launch at the
// minimum feasible size, and idle GPUs flow to the jobs with the best
// marginal perceived gain. Knowledge is full-space DP profiling.
type ElasticFlow struct {
	// ScaleGainThreshold gates rescaling of running jobs (restart costs).
	ScaleGainThreshold float64

	// refScore runs the full per-round rescans instead of the round-
	// scoped caches below; see sched.ReferenceScorer.
	refScore bool
}

// SetReferenceScore implements sched.ReferenceScorer.
func (e *ElasticFlow) SetReferenceScore(on bool) { e.refScore = on }

// NewElasticFlow returns the policy.
func NewElasticFlow() *ElasticFlow { return &ElasticFlow{ScaleGainThreshold: 1.25} }

// Name implements sched.Policy.
func (e *ElasticFlow) Name() string { return "elasticflow-ls" }

// perceived is the DP view with the everywhere-infeasible fallback.
func (e *ElasticFlow) perceived(db *perfdb.DB, w model.Workload, typ string, n int) float64 {
	if t := db.DPThr(w, typ, n); t > 0 {
		return t
	}
	for _, tt := range db.GPUTypes {
		if db.MinFeasibleDP(w, tt) != 0 {
			return 0
		}
	}
	return db.APThr(w, typ, n)
}

// region returns the job's home region: the requested type, or the first
// type where the job is perceived-feasible at all.
func (e *ElasticFlow) region(ctx *sched.Context, job *sched.Job) string {
	typ := job.Trace.ReqType
	for n := 1; n <= ctx.MaxPerJob; n *= 2 {
		if e.perceived(ctx.DB, job.Workload(), typ, n) > 0 {
			return typ
		}
	}
	for _, t := range ctx.Cluster.GPUTypes() {
		for n := 1; n <= ctx.MaxPerJob; n *= 2 {
			if e.perceived(ctx.DB, job.Workload(), t, n) > 0 {
				return t
			}
		}
	}
	return typ
}

// Assign admits queued jobs at their minimum feasible size, then grows
// the best marginal jobs (queued admissions included) with the remaining
// idle capacity; running jobs also shrink when newly admitted jobs need
// room (ElasticFlow's admission-driven elasticity).
func (e *ElasticFlow) Assign(ctx *sched.Context) sched.Assignment {
	asg := sched.NewAssignment()
	free := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		free[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	target := map[string]sched.Alloc{}
	jobOf := map[string]*sched.Job{}
	// order fixes the candidate iteration below: ranging over the target
	// map broke ties by map order, making the whole simulation
	// nondeterministic whenever two jobs had equal marginal gain.
	var order []string
	for _, j := range ctx.Running {
		target[j.Trace.ID] = j.Alloc
		jobOf[j.Trace.ID] = j
		order = append(order, j.Trace.ID)
	}

	// Admission at minimum feasible size, arrival order. Shrink work per
	// round is bounded so huge backlogs cannot stall the scheduler.
	//
	// The fast path adds two round-scoped caches, neither changing a
	// decision: a (workload, requested-type) → (region, minN) memo —
	// perceived throughputs are fixed within a round, so the region scan
	// is a pure per-signature function — and a per-type no-victim flag.
	// Victim sets only shrink within a round (admission shrinks targets
	// and adds queued jobs, which the victim scan never looks at), so
	// once a region's scan comes up empty every later scan would too;
	// the reference's futile scan still costs one budget unit, which the
	// fast path replicates exactly.
	type regionKey struct {
		w       model.Workload
		reqType string
	}
	type regionVal struct {
		typ  string
		minN int
	}
	var regions map[regionKey]regionVal
	var noVictim map[string]bool
	if !e.refScore {
		regions = map[regionKey]regionVal{}
		noVictim = map[string]bool{}
	}
	shrinkBudget := 64
	for _, job := range ctx.Queued {
		var typ string
		var minN int
		if regions != nil {
			key := regionKey{w: job.Trace.Workload, reqType: job.Trace.ReqType}
			rv, ok := regions[key]
			if !ok {
				rv.typ = e.region(ctx, job)
				rv.minN = e.minFeasible(ctx, job.Trace.Workload, rv.typ)
				regions[key] = rv
			}
			typ, minN = rv.typ, rv.minN
		} else {
			typ = e.region(ctx, job)
			minN = e.minFeasible(ctx, job.Trace.Workload, typ)
		}
		if minN == 0 {
			continue
		}
		if free[typ] < minN && shrinkBudget > 0 {
			if noVictim != nil && noVictim[typ] {
				// The reference path would re-enter shrinkRegion, spend
				// one budget unit scanning the region, find no victim and
				// return; skip the scan but keep the spend.
				shrinkBudget--
			} else {
				// Shrink running jobs in this region to admit the newcomer
				// (deadline-loosened ElasticFlow favours admission).
				exhausted := e.shrinkRegion(ctx, typ, minN, free, target, asg.Place, &shrinkBudget)
				if exhausted && noVictim != nil {
					noVictim[typ] = true
				}
			}
		}
		if free[typ] >= minN {
			alloc := sched.Alloc{GPUType: typ, N: minN}
			asg.Place[job.Trace.ID] = alloc
			target[job.Trace.ID] = alloc
			jobOf[job.Trace.ID] = job
			order = append(order, job.Trace.ID)
			free[typ] -= minN
		}
	}

	// Elastic scale-up: repeatedly double the job with the best marginal
	// perceived gain per added GPU.
	e.grow(ctx, 16, order, jobOf, target, free, asg.Place)
	return asg
}

// minFeasible is the smallest profiled size the workload runs at on typ.
func (e *ElasticFlow) minFeasible(ctx *sched.Context, w model.Workload, typ string) int {
	for n := 1; n <= ctx.MaxPerJob; n *= 2 {
		if e.perceived(ctx.DB, w, typ, n) > 0 {
			return n
		}
	}
	return 0
}

// growthGain scores one growth candidate at its current target: the
// marginal perceived gain per held GPU of doubling it, with the static
// gates (cap, reconfiguration cooldown, the gain threshold) applied.
// The free-capacity check stays with the caller — it is the only input
// that moves without the candidate itself being doubled.
func (e *ElasticFlow) growthGain(ctx *sched.Context, job *sched.Job, cur sched.Alloc) (float64, bool) {
	if job == nil || cur.N*2 > ctx.MaxPerJob {
		return 0, false
	}
	if job.Running() && job.BusyUntil > ctx.Now {
		return 0, false
	}
	thrCur := e.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N)
	thrNew := e.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N*2)
	if thrCur <= 0 || thrNew <= thrCur*e.ScaleGainThreshold {
		return 0, false
	}
	return (thrNew - thrCur) / float64(cur.N), true
}

// grow runs the bounded marginal-gain doubling loop over order. The
// reference path rescans every candidate per selection; the fast path
// scores them once into a max-gain heap (ties break toward the earlier
// order index, exactly like the scan's strict `>`) and re-scores only
// the candidate each doubling dirtied. Free capacity only shrinks here,
// so popped candidates that no longer fit are discarded outright.
func (e *ElasticFlow) grow(ctx *sched.Context, rounds int, order []string, jobOf map[string]*sched.Job, target map[string]sched.Alloc, free map[string]int, place map[string]sched.Alloc) {
	if e.refScore {
		for r := 0; r < rounds; r++ {
			bestID := ""
			bestGain := 0.0
			for _, id := range order {
				cur := target[id]
				if free[cur.GPUType] < cur.N {
					continue
				}
				gain, ok := e.growthGain(ctx, jobOf[id], cur)
				if !ok {
					continue
				}
				if gain > bestGain {
					bestID, bestGain = id, gain
				}
			}
			if bestID == "" {
				break
			}
			cur := target[bestID]
			next := sched.Alloc{GPUType: cur.GPUType, N: cur.N * 2}
			free[cur.GPUType] -= cur.N
			target[bestID] = next
			place[bestID] = next
		}
		return
	}
	h := sched.NewGainHeap(len(order))
	for i, id := range order {
		if gain, ok := e.growthGain(ctx, jobOf[id], target[id]); ok {
			h.Update(i, gain)
		}
	}
	for r := 0; r < rounds; r++ {
		sel := -1
		for {
			i, ok := h.Pop()
			if !ok {
				return
			}
			cur := target[order[i]]
			if free[cur.GPUType] < cur.N {
				continue // free only shrinks: never feasible again
			}
			sel = i
			break
		}
		id := order[sel]
		cur := target[id]
		next := sched.Alloc{GPUType: cur.GPUType, N: cur.N * 2}
		free[cur.GPUType] -= cur.N
		target[id] = next
		place[id] = next
		if gain, ok := e.growthGain(ctx, jobOf[id], next); ok {
			h.Update(sel, gain)
		}
	}
}

// shrinkRegion halves the running jobs with the least throughput loss per
// freed GPU until `need` GPUs are free in the region (or nothing more can
// shrink). It reports whether it stopped because no shrinkable victim
// remains in the region — a condition that can only persist for the rest
// of the round, since admission never grows a running job's target.
func (e *ElasticFlow) shrinkRegion(ctx *sched.Context, typ string, need int, free map[string]int, target map[string]sched.Alloc, place map[string]sched.Alloc, budget *int) bool {
	for free[typ] < need && *budget > 0 {
		*budget--
		var victim *sched.Job
		bestCost := math.MaxFloat64
		for _, j := range ctx.Running {
			cur := target[j.Trace.ID]
			if cur.GPUType != typ || cur.N < 2 || j.BusyUntil > ctx.Now {
				continue
			}
			thrCur := e.perceived(ctx.DB, j.Workload(), typ, cur.N)
			thrHalf := e.perceived(ctx.DB, j.Workload(), typ, cur.N/2)
			if thrHalf <= 0 {
				continue
			}
			cost := (thrCur - thrHalf) / float64(cur.N/2)
			if cost < bestCost {
				victim, bestCost = j, cost
			}
		}
		if victim == nil {
			return true
		}
		cur := target[victim.Trace.ID]
		next := sched.Alloc{GPUType: typ, N: cur.N / 2}
		target[victim.Trace.ID] = next
		place[victim.Trace.ID] = next
		free[typ] += cur.N - next.N
	}
	return false
}

// PerceivedThr implements sched.Policy.
func (e *ElasticFlow) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return e.perceived(db, w, gpuType, n)
}

// ActualThr implements sched.Policy.
func (e *ElasticFlow) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.APThr(w, gpuType, n)
}

// ProfilePrepend implements sched.Policy: ElasticFlow profiles jobs with
// DP across allocable resources ahead of time (≈10 minutes, §1).
func (e *ElasticFlow) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	return db.DPProfileWall(w)
}

// DeployOverhead implements sched.Policy.
func (e *ElasticFlow) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.SearchTimeFull(w, gpuType, n)
}
