package fixture

import "context"

// A reasonless directive suppresses nothing: the shadow below stays a
// finding and the directive itself becomes one.
func reasonless(ctx context.Context) {
	{
		//arena:allow ctxshadow
		ctx := context.TODO()
		_ = ctx
	}
	_ = ctx
}
