package policy

import (
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
)

// Sia jointly optimizes GPU count *and* type (a greedy contention-aware
// stand-in for its ILP goodput solver, §5.1). Its knowledge is the
// bootstrapped linear estimate of §2.3 — 1-GPU profiles scaled by the GPU
// count, with the precision knob η — refined online by the throughputs of
// configurations it has actually run (Fig. 4(b)'s refinement loop).
//
// The linear estimate perceives *no diminishing returns*: the marginal
// gain of doubling any job stays constant, so whenever idle capacity
// exists Sia inflates allocations whose real marginal value has collapsed
// — the §2.2 Case#2 overestimation. Under bursts this throttles the
// cluster (Fig. 11's annotation ❶).
type Sia struct {
	// Eta is the §2.3 precision knob: allocations up to 2^(η−1) GPUs use
	// precise profiles, the rest extrapolate linearly. η=1 is stock Sia.
	Eta int
	// ScaleGainThreshold gates rescaling of running jobs.
	ScaleGainThreshold float64
	// DisableRefinement turns off the online observation loop so the η
	// knob alone controls estimate precision (§2.3's controlled study).
	DisableRefinement bool

	// refScore runs the full per-round rescans instead of the round-
	// scoped caches; see sched.ReferenceScorer. Sia's caches must be
	// round-scoped (not per-run): the perceived table is refined online
	// between rounds by observed throughputs.
	refScore bool
}

// SetReferenceScore implements sched.ReferenceScorer.
func (s *Sia) SetReferenceScore(on bool) { s.refScore = on }

// NewSia returns stock Sia (η = 1).
func NewSia() *Sia { return &Sia{Eta: 1, ScaleGainThreshold: 1.4} }

// Name implements sched.Policy.
func (s *Sia) Name() string { return "sia" }

// perceived returns the online-refined estimate when available, else the
// bootstrapped linear one.
func (s *Sia) perceived(db *perfdb.DB, w model.Workload, typ string, n int) float64 {
	if !s.DisableRefinement {
		if obs := db.ObservedThr(w, typ, n); obs > 0 {
			return obs
		}
	}
	return db.SiaEst(w, typ, n, s.Eta)
}

// Assign admits queued jobs at their smallest perceived-feasible size on
// the best type, then pours idle capacity into the jobs with the highest
// perceived marginal goodput — which the linear estimates systematically
// overstate for large allocations.
func (s *Sia) Assign(ctx *sched.Context) sched.Assignment {
	asg := sched.NewAssignment()
	free := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		free[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	target := map[string]sched.Alloc{}
	jobOf := map[string]*sched.Job{}
	// order fixes the candidate iteration below: ranging over the target
	// map broke ties by map order, making the whole simulation
	// nondeterministic whenever two jobs had equal marginal gain.
	var order []string
	for _, j := range ctx.Running {
		target[j.Trace.ID] = j.Alloc
		jobOf[j.Trace.ID] = j
		order = append(order, j.Trace.ID)
	}

	// Admission: smallest feasible allocation on the perceived-best type
	// (goodput of admitting a job always beats growing one).
	//
	// Per type, the reference inner loop reduces to "the smallest n with
	// positive perceived throughput, provided it fits free capacity" —
	// larger sizes can never be reached once either check fails, because
	// `continue` on a too-big n only meets bigger ones. The fast path
	// precomputes that (minN, thr) ladder per workload once per round
	// (the table is fixed within a round; observations land between
	// rounds) and memoizes failed workloads: admission only ever shrinks
	// free capacity, so a workload that found no feasible type cannot
	// succeed later in the same round.
	types := ctx.Cluster.GPUTypes()
	type minCand struct {
		minN int
		thr  float64
	}
	var table map[model.Workload][]minCand
	var failed map[model.Workload]bool
	if !s.refScore {
		table = map[model.Workload][]minCand{}
		failed = map[model.Workload]bool{}
	}
	for _, job := range ctx.Queued {
		var best sched.Alloc
		var bestThr float64
		if table != nil {
			w := job.Trace.Workload
			if failed[w] {
				continue
			}
			cands, ok := table[w]
			if !ok {
				cands = make([]minCand, len(types))
				for ti, typ := range types {
					for n := 1; n <= ctx.MaxPerJob; n *= 2 {
						if thr := s.perceived(ctx.DB, w, typ, n); thr > 0 {
							cands[ti] = minCand{minN: n, thr: thr}
							break
						}
					}
				}
				table[w] = cands
			}
			for ti, typ := range types {
				c := cands[ti]
				if c.minN == 0 || c.minN > free[typ] {
					continue
				}
				if c.thr/float64(c.minN) > bestThr {
					best, bestThr = sched.Alloc{GPUType: typ, N: c.minN}, c.thr/float64(c.minN)
				}
			}
			if best.IsZero() {
				failed[w] = true
			}
		} else {
			for _, typ := range types {
				for n := 1; n <= ctx.MaxPerJob; n *= 2 {
					thr := s.perceived(ctx.DB, job.Workload(), typ, n)
					if thr <= 0 || n > free[typ] {
						continue
					}
					// Smallest n per type; across types pick best density.
					if thr/float64(n) > bestThr {
						best, bestThr = sched.Alloc{GPUType: typ, N: n}, thr/float64(n)
					}
					break
				}
			}
		}
		if !best.IsZero() {
			asg.Place[job.Trace.ID] = best
			target[job.Trace.ID] = best
			jobOf[job.Trace.ID] = job
			order = append(order, job.Trace.ID)
			free[best.GPUType] -= best.N
		}
	}

	// Growth: repeatedly double the job with the best perceived marginal
	// gain per added GPU. With linear estimates the marginal never decays,
	// so growth continues while capacity lasts.
	s.grow(ctx, 32, order, jobOf, target, free, asg.Place)
	return asg
}

// growthGain scores one growth candidate; see ElasticFlow.growthGain —
// the loops share their shape, but each policy consults its own
// perceived table and threshold.
func (s *Sia) growthGain(ctx *sched.Context, job *sched.Job, cur sched.Alloc) (float64, bool) {
	if job == nil || cur.N*2 > ctx.MaxPerJob {
		return 0, false
	}
	if job.Running() && job.BusyUntil > ctx.Now {
		return 0, false
	}
	thrCur := s.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N)
	thrNew := s.perceived(ctx.DB, job.Workload(), cur.GPUType, cur.N*2)
	if thrCur <= 0 || thrNew <= thrCur*s.ScaleGainThreshold {
		return 0, false
	}
	return (thrNew - thrCur) / float64(cur.N), true
}

// grow is the bounded marginal-gain doubling loop: reference rescan per
// selection, or one max-gain heap re-scoring only dirtied entries (the
// same structure as ElasticFlow.grow; see there for the invariants).
func (s *Sia) grow(ctx *sched.Context, rounds int, order []string, jobOf map[string]*sched.Job, target map[string]sched.Alloc, free map[string]int, place map[string]sched.Alloc) {
	if s.refScore {
		for r := 0; r < rounds; r++ {
			bestID := ""
			bestGain := 0.0
			for _, id := range order {
				cur := target[id]
				if free[cur.GPUType] < cur.N {
					continue
				}
				gain, ok := s.growthGain(ctx, jobOf[id], cur)
				if !ok {
					continue
				}
				if gain > bestGain {
					bestID, bestGain = id, gain
				}
			}
			if bestID == "" {
				break
			}
			cur := target[bestID]
			next := sched.Alloc{GPUType: cur.GPUType, N: cur.N * 2}
			free[cur.GPUType] -= cur.N
			target[bestID] = next
			place[bestID] = next
		}
		return
	}
	h := sched.NewGainHeap(len(order))
	for i, id := range order {
		if gain, ok := s.growthGain(ctx, jobOf[id], target[id]); ok {
			h.Update(i, gain)
		}
	}
	for r := 0; r < rounds; r++ {
		sel := -1
		for {
			i, ok := h.Pop()
			if !ok {
				return
			}
			cur := target[order[i]]
			if free[cur.GPUType] < cur.N {
				continue // free only shrinks: never feasible again
			}
			sel = i
			break
		}
		id := order[sel]
		cur := target[id]
		next := sched.Alloc{GPUType: cur.GPUType, N: cur.N * 2}
		free[cur.GPUType] -= cur.N
		target[id] = next
		place[id] = next
		if gain, ok := s.growthGain(ctx, jobOf[id], next); ok {
			h.Update(sel, gain)
		}
	}
}

// PerceivedThr implements sched.Policy.
func (s *Sia) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return s.perceived(db, w, gpuType, n)
}

// ActualThr implements sched.Policy: AP execution; the simulator records
// the observation back into the database, closing Sia's refinement loop.
func (s *Sia) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	thr := db.APThr(w, gpuType, n)
	if thr > 0 && !s.DisableRefinement {
		db.Observe(w, gpuType, n, thr)
	}
	return thr
}

// ProfilePrepend implements sched.Policy: the 1-GPU bootstrap profile.
func (s *Sia) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	return db.SiaProfileWall(w)
}

// DeployOverhead implements sched.Policy: full AP search per deployment.
func (s *Sia) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	return db.SearchTimeFull(w, gpuType, n)
}
