package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StableSort polices unstable sorts in determinism-critical packages.
// sort.Slice's pdqsort picks an arbitrary survivor among elements that
// compare equal: deterministic for one Go release and one input order,
// but an artifact — the PR 5 planner-frontier bug, where metric ties
// let the sort algorithm choose which candidate survived (observed
// non-first in two thirds of the tie-heavy matrix's tie groups).
//
// A sort.Slice call is accepted only when its less function is a
// tie-break comparator chain the analyzer can see is total-order
// *shaped*: one or more guards of the form
//
//	if keyA != keyB { return keyA < keyB }   (or >)
//
// followed by a final `return lastA < lastB` (or >). The chain proves
// the author enumerated the tie-break keys down to a final
// discriminator; a single bare comparison (`return a.load > b.load`)
// proves nothing and is flagged. The analyzer cannot prove the final
// key is unique — that stays the author's obligation; when the chain
// shape cannot express it (e.g. comparing through a helper), use
// sort.SliceStable so ties preserve a deterministic input order, or
// suppress with //arena:allow stablesort <why the order is total>.
var StableSort = &Analyzer{
	Name: "stablesort",
	Doc: "report sort.Slice calls whose less func is not a visible tie-break chain; " +
		"use sort.SliceStable or a rank-extended total-order comparator",
	Scope: []string{
		"internal/sched", "internal/sim", "internal/planner",
		"internal/faults", "internal/trace", "internal/evalcache",
		"internal/server",
	},
	SkipTests: true,
	Run:       runStableSort,
}

func runStableSort(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" || obj.Name() != "Slice" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				pass.Reportf(call.Pos(),
					"sort.Slice with an opaque less func: the analyzer cannot prove a total order; use sort.SliceStable or inline a tie-break comparator chain")
				return true
			}
			if !isTieBreakChain(lit.Body) {
				pass.Reportf(call.Pos(),
					"sort.Slice without a tie-break chain: equal elements get an arbitrary order; use sort.SliceStable or extend the comparator to a total order")
			}
			return true
		})
	}
	return nil
}

// isTieBreakChain reports whether a less-func body has the shape
//
//	[ a, b := s[i], s[j] ]  { if a != b { return a < b } }+  ;  return x < y
//
// Leading short variable declarations (binding the two operands) are
// allowed. Guard conditions must be != (a chain written with < guards
// is accepted too when each guard's body is a bare `return true/false`
// — the expanded two-sided idiom). A body with no guard before the
// final comparison is not a chain.
func isTieBreakChain(body *ast.BlockStmt) bool {
	stmts := body.List
	for len(stmts) > 0 {
		as, ok := stmts[0].(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			break
		}
		stmts = stmts[1:]
	}
	if len(stmts) < 2 {
		return false
	}
	for _, st := range stmts[:len(stmts)-1] {
		ifs, ok := st.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil {
			return false
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cond.Op {
		case token.NEQ:
			// Body must be a single return of a strict comparison.
			if !isComparisonReturn(ifs.Body) {
				return false
			}
		case token.LSS, token.GTR:
			// Two-sided expansion: `if a < b { return true }`.
			if !isBoolReturn(ifs.Body) {
				return false
			}
		default:
			return false
		}
	}
	ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	return isStrictComparison(ret.Results[0])
}

func isComparisonReturn(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	return ok && len(ret.Results) == 1 && isStrictComparison(ret.Results[0])
}

func isBoolReturn(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	id, ok := ret.Results[0].(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false")
}

// isStrictComparison accepts `x < y` and `x > y`. <= and >= are
// rejected everywhere: a non-strict less func violates sort's contract
// outright (it makes less(a, a) true).
func isStrictComparison(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	return ok && (b.Op == token.LSS || b.Op == token.GTR)
}
