// Intra-job heterogeneity (§6): parallelize one model across *mixed* GPU
// types, with pipeline stages as the heterogeneity boundary. The paper
// leaves this as future work and sketches the required modifications —
// capability-quantified operator loads and per-stage GPU assignment —
// which this reproduction implements.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"

	arena "github.com/sjtu-epcc/arena"
)

// poolLabel renders a pool compactly in canonical type order.
func poolLabel(pool arena.HeteroPool) string {
	out := ""
	for _, typ := range []string{"H100", "A100", "L20", "A40", "A10", "V100"} {
		if n := pool[typ]; n > 0 {
			if out != "" {
				out += "+"
			}
			out += fmt.Sprintf("%dx%s", n, typ)
		}
	}
	return out
}

func main() {
	ctx := context.Background()
	s, err := arena.New(arena.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	g := arena.MustBuildModel("GPT-2.6B")
	const gb = 128

	fmt.Println("GPT-2.6B across mixed pools (2 pipeline stages):")
	pools := []arena.HeteroPool{
		{"V100": 4},            // slow homogeneous
		{"A100": 4},            // fast homogeneous
		{"A100": 2, "V100": 2}, // half fast, half slow
		{"H100": 2, "V100": 4}, // very fast + many slow
	}
	for _, pool := range pools {
		label := poolLabel(pool)
		plan, err := s.PlanHetero(ctx, g, pool, 2, gb)
		if err != nil {
			fmt.Printf("  %-20s infeasible: %v\n", label, err)
			continue
		}
		res, err := s.EvaluateHetero(ctx, g, plan, gb)
		if err != nil {
			log.Fatal(err)
		}
		desc := ""
		for i, st := range plan.Stages {
			if i > 0 {
				desc += " | "
			}
			desc += fmt.Sprintf("stage%d: %dx%s DP%d TP%d", i, st.GPUs(), st.GPUType, st.DP, st.TP)
		}
		fmt.Printf("  %-20s %7.1f samples/s   %s\n", label, res.Throughput, desc)
	}
	fmt.Println("\nStages are the heterogeneity boundary: only small boundary activations cross regions,")
	fmt.Println("so mixing types costs far less between stages than inside a DP/TP group (§3.5).")
}
