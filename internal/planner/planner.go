package planner

import (
	"fmt"
	"math"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
)

// Planner holds the tunables of the planning pass.
type Planner struct {
	// MaxFrontier caps the Pareto frontier size; larger frontiers are
	// reduced by dropping the higher-communication plan of the most
	// similar partition pair (§3.3).
	MaxFrontier int
	// BiasTolerance widens the "minimum computation bias" filter during
	// proxy selection to plans within (1+BiasTolerance)×min, letting the
	// communication load break near-ties.
	BiasTolerance float64
	// Exhaustive switches PlanGrid and EnumerateCandidates from the
	// incremental prefix-DP enumerator (dp.go) to the reference
	// enumerator that recomputes every partition from scratch. Both emit
	// bit-identical GridPlans — proven by TestPrefixDPMatchesExhaustive —
	// so the flag changes wall-clock only. It exists for the determinism
	// tests and the BenchmarkPlanGrid baseline, and is scheduled for
	// deletion once a release has soaked with the DP path as default.
	Exhaustive bool
	// SortedPareto switches PlanGrid from the incremental Pareto sweep
	// (frontier.go) to the post-hoc reference reduction: materialize the
	// whole candidate population, sort it and sweep once (pareto.go).
	// Orthogonal to Exhaustive — all four combinations emit bit-identical
	// GridPlans (TestPrefixDPMatchesExhaustive sweeps the matrix) — and,
	// like it, exists for the parity tests and the benchmark baseline
	// until a release has soaked on the sweep.
	SortedPareto bool
}

// New returns a Planner with the paper-aligned defaults.
func New() *Planner {
	return &Planner{MaxFrontier: 16, BiasTolerance: 0.05}
}

// Candidate is one generated parallelism plan with its two planning
// metrics. Candidates never carry measured latencies.
type Candidate struct {
	Plan  *parallel.Plan
	BComp float64 // computation bias (Eq. 3); lower = better balanced
	LComm float64 // communication load (Eq. 4), seconds-equivalent

	OpsPerStage  []int     // partition shape, for similarity comparisons
	GPUsPerStage []int     // normalized power-of-two assignment
	IdealAssign  []float64 // fractional load-proportional assignment
}

// GridPlan is the planner's output for one grid.
type GridPlan struct {
	Grid     core.Grid
	Feasible bool         // false when no partition fits device memory
	Proxy    *Candidate   // the grid's representative plan (profiled later)
	Frontier []*Candidate // Pareto-optimal candidates (after reduction)

	// CandidatesEvaluated counts enumerated partitions, for cost analysis.
	CandidatesEvaluated int
}

// opRangeStats caches prefix aggregates so per-range queries are O(1).
type opRangeStats struct {
	load   []float64 // prefix sums of operator loads
	params []float64 // prefix sums of ParamBytes
}

func newRangeStats(g *model.Graph, spec hw.GPU) *opRangeStats {
	n := len(g.Ops)
	s := &opRangeStats{
		load:   make([]float64, n+1),
		params: make([]float64, n+1),
	}
	for i, op := range g.Ops {
		s.load[i+1] = s.load[i] + OperatorLoad(op, spec)
		s.params[i+1] = s.params[i] + op.ParamBytes
	}
	return s
}

func (s *opRangeStats) loadOf(i, j int) float64   { return s.load[j] - s.load[i] }
func (s *opRangeStats) paramsOf(i, j int) float64 { return s.params[j] - s.params[i] }

// OperatorLoad is the roofline-based load of Eq. 2 for one training step of
// one sample: L = FLOPs / R(I). Expressed through the ideal kernel time so
// memory-bound operators (R(I) = I·BW) reduce to bytes/bandwidth. Training
// moves ≈ 3× the forward FLOPs and traffic (fwd + 2× bwd).
func OperatorLoad(op model.Op, spec hw.GPU) float64 {
	return spec.IdealKernelTime(3*op.FLOPs, 3*op.Bytes)
}

// PlanGrid produces the proxy plan and Pareto frontier for one grid.
func (pl *Planner) PlanGrid(g *model.Graph, grid core.Grid) (*GridPlan, error) {
	spec, err := hw.Lookup(grid.GPUType)
	if err != nil {
		return nil, err
	}
	numOps := len(g.Ops)
	if grid.S < 1 || grid.S > numOps || grid.S > grid.N {
		return nil, fmt.Errorf("planner: grid %v infeasible shape (O=%d)", grid, numOps)
	}

	stats := newRangeStats(g, spec)
	totalLoad := stats.loadOf(0, numOps)
	if totalLoad <= 0 {
		return nil, fmt.Errorf("planner: graph %s has zero load", g.Name)
	}

	numMicro := parallel.DefaultMicrobatches(grid.S)
	intra := newIntraSelector(g, spec, grid, numMicro)

	out := &GridPlan{Grid: grid}
	var frontier []*Candidate
	if pl.SortedPareto {
		// Reference reduction: materialize the full population (arena-
		// backed), then sort-and-sweep post hoc. Survivors are detached
		// so the returned frontier does not pin the enumeration's arena.
		sink := newPopulationSink(g, grid, intra, numMicro)
		out.CandidatesEvaluated = pl.enumerate(g, grid, stats, intra, totalLoad, numMicro, sink)
		frontier = paretoFrontier(sink.candidates())
		for i, c := range frontier {
			frontier[i] = detachCandidate(c)
		}
	} else {
		// Default: the incremental sweep judges candidates as they are
		// emitted and materializes only staircase members, already
		// detached.
		sink := newSweepFrontier(grid.S, intra, numMicro)
		out.CandidatesEvaluated = pl.enumerate(g, grid, stats, intra, totalLoad, numMicro, sink)
		frontier = sink.candidates()
	}
	if len(frontier) == 0 {
		return out, nil // infeasible grid: nothing fits memory
	}
	out.Feasible = true
	out.Frontier = pl.reduceFrontier(frontier)
	out.Proxy = pl.selectProxy(out.Frontier)
	return out, nil
}

// detachCandidate deep-copies a candidate onto its own heap objects,
// preserving every value bit. Proxy selection runs after detachment, so
// the proxy remains a member of the returned frontier.
func detachCandidate(c *Candidate) *Candidate {
	return &Candidate{
		Plan: &parallel.Plan{
			Stages:          append([]parallel.StagePlan(nil), c.Plan.Stages...),
			NumMicrobatches: c.Plan.NumMicrobatches,
		},
		BComp:        c.BComp,
		LComm:        c.LComm,
		OpsPerStage:  append([]int(nil), c.OpsPerStage...),
		GPUsPerStage: append([]int(nil), c.GPUsPerStage...),
		IdealAssign:  append([]float64(nil), c.IdealAssign...),
	}
}

// EnumerateCandidates returns every generated candidate of the grid (one
// per memory-feasible partition) without Pareto filtering — used by the
// §5.4 case study (Fig. 14), which measures the whole grid population.
func (pl *Planner) EnumerateCandidates(g *model.Graph, grid core.Grid) []*Candidate {
	spec, err := hw.Lookup(grid.GPUType)
	if err != nil {
		return nil
	}
	numOps := len(g.Ops)
	if grid.S < 1 || grid.S > numOps || grid.S > grid.N {
		return nil
	}
	stats := newRangeStats(g, spec)
	totalLoad := stats.loadOf(0, numOps)
	if totalLoad <= 0 {
		return nil
	}
	numMicro := parallel.DefaultMicrobatches(grid.S)
	intra := newIntraSelector(g, spec, grid, numMicro)
	sink := newPopulationSink(g, grid, intra, numMicro)
	pl.enumerate(g, grid, stats, intra, totalLoad, numMicro, sink)
	return sink.candidates()
}

// candidateSink consumes the enumerators' output, one call per partition
// whose power-of-two GPU assignment exists. Arguments are the caller's
// scratch — a sink retaining any of them must copy. rank is the
// partition's lexicographic index among all C(O−1, s−1) partitions of
// the grid, the canonical candidate order: the population sink uses it
// to reproduce that order without a comparison sort, the sweep frontier
// to resolve exact (BComp, LComm) ties identically on both enumeration
// orders. The sink decides memory feasibility itself (via the
// intra-stage selector), so infeasible partitions are simply dropped.
type candidateSink interface {
	offer(bounds, assign, opsPer []int, ideal []float64, bias2 float64, rank int)
}

// enumerate streams every partition of the grid with a feasible GPU
// assignment into the sink and returns the count of partitions
// enumerated. The DP path (dp.go) is the default; Exhaustive selects the
// reference path that rebuilds every partition from scratch. The two
// differ in discovery order (lexicographic vs colexicographic), which is
// why sinks key on the lexicographic rank rather than arrival order.
func (pl *Planner) enumerate(
	g *model.Graph, grid core.Grid,
	stats *opRangeStats, intra *intraSelector,
	totalLoad float64, numMicro int, sink candidateSink,
) int {
	if !pl.Exhaustive {
		return pl.enumerateDP(g, grid, stats, intra, totalLoad, numMicro, sink)
	}
	evaluated := 0
	scr := newCandScratch(grid.S, grid.N)
	forEachPartition(len(g.Ops), grid.S, func(rank int, bounds []int) {
		evaluated++
		start := 0
		for j, end := range bounds {
			scr.ideal[j] = stats.loadOf(start, end) / totalLoad * float64(grid.N)
			scr.opsPer[j] = end - start
			start = end
		}
		if assign, bias2 := normalizeAssignment(scr.ideal, grid.N, scr); assign != nil {
			sink.offer(bounds, assign, scr.opsPer, scr.ideal, bias2, rank)
		}
	})
	return evaluated
}

// candScratch holds the per-partition working storage of one exhaustive
// enumeration pass. A grid enumerates C(O−1, s−1) partitions; reusing
// the trial buffers (and the assignment DP tables) across them removes
// the enumerator's dominant allocation cost. Sinks copy anything they
// retain, so accepted candidates never alias the scratch.
type candScratch struct {
	ideal  []float64
	opsPer []int
	assign []int
	dp     []float64 // flat (s+1) × (n+1) assignment DP table
	choice []int32
	stamp  []uint32 // cell validity epoch — skips the per-partition fill
	epoch  uint32
}

func newCandScratch(s, n int) *candScratch {
	size := (s + 1) * (n + 1)
	return &candScratch{
		ideal:  make([]float64, s),
		opsPer: make([]int, s),
		assign: make([]int, s),
		dp:     make([]float64, size),
		choice: make([]int32, size),
		stamp:  make([]uint32, size),
	}
}

// stageMetrics resolves a partition + GPU assignment into concrete
// stage shapes (written into the caller's buffer, len = stage count)
// and the communication-load metric, folding stages through the shared
// commAccum so the population and sweep paths cannot drift — a
// candidate's bytes depend only on (bounds, assign, numMicro), never on
// which sink computed them. Returns ok=false when a stage has no
// memory-feasible (dp, tp) shape.
func stageMetrics(stages []parallel.StagePlan, intra *intraSelector, bounds, assign []int, numMicro int) (lComm float64, ok bool) {
	var acc commAccum
	start := 0
	for j, end := range bounds {
		choice := intra.best(start, end, assign[j])
		if choice == nil {
			return 0, false // no feasible (dp, tp) for this stage
		}
		stages[j] = parallel.StagePlan{OpStart: start, OpEnd: end, DP: choice.dp, TP: choice.tp}
		acc.add(choice)
		start = end
	}
	return acc.load(numMicro), true
}

// forEachPartition enumerates all compositions of numOps operators into s
// non-empty contiguous groups in lexicographic order, invoking fn with
// the running rank and the exclusive end index of each group. fn must not
// retain the slice.
func forEachPartition(numOps, s int, fn func(rank int, bounds []int)) {
	bounds := make([]int, s)
	bounds[s-1] = numOps
	rank := 0
	var rec func(stage, start int)
	rec = func(stage, start int) {
		if stage == s-1 {
			fn(rank, bounds)
			rank++
			return
		}
		// Stage `stage` takes ops [start, end); leave ≥1 op per later stage.
		for end := start + 1; end <= numOps-(s-1-stage); end++ {
			bounds[stage] = end
			rec(stage+1, end)
		}
	}
	rec(0, 0)
}

// normalizeAssignment finds the power-of-two per-stage GPU counts summing
// to n that minimize the squared Euclidean distance to the ideal
// fractional assignment (Eq. 3), via dynamic programming over stages.
// Returns nil when n < len(ideal) (cannot give each stage a GPU). The
// returned slice is scratch-backed; callers retaining it must copy.
func normalizeAssignment(ideal []float64, n int, scr *candScratch) ([]int, float64) {
	s := len(ideal)
	if n < s {
		return nil, 0
	}
	const inf = math.MaxFloat64
	// dp[j][r] (stored flat at j*(n+1)+r): min cost assigning stages j..
	// with r GPUs remaining. Cells are valid only when their stamp matches
	// the current epoch; everything else reads as inf, so no per-partition
	// table fill is needed.
	dp, choice, stamp := scr.dp, scr.choice, scr.stamp
	scr.epoch++
	epoch := scr.epoch
	stamp[s*(n+1)+0] = epoch
	dp[s*(n+1)+0] = 0
	for j := s - 1; j >= 0; j-- {
		row, next := j*(n+1), (j+1)*(n+1)
		for r := 1; r <= n; r++ {
			for p := 1; p <= r; p *= 2 {
				if stamp[next+r-p] != epoch {
					continue
				}
				d := float64(p) - ideal[j]
				cost := d*d + dp[next+r-p]
				if stamp[row+r] != epoch || cost < dp[row+r] {
					dp[row+r] = cost
					choice[row+r] = int32(p)
					stamp[row+r] = epoch
				}
			}
		}
	}
	if stamp[n] != epoch {
		return nil, 0
	}
	assign := scr.assign
	r := n
	for j := 0; j < s; j++ {
		assign[j] = int(choice[j*(n+1)+r])
		r -= assign[j]
	}
	return assign, dp[n]
}
