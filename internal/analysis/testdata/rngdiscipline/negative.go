package fixture

import "github.com/sjtu-epcc/arena/internal/rng"

// The discipline: streams derived per entity at the point of use, a
// pure function of (seed, stream keys).
func nodeJitter(seed, nodeID uint64) float64 {
	stream := rng.Derive(seed, nodeID)
	return stream.Float64()
}

// Passing a derived stream down is fine; only package-level state is
// banned.
func consume(s *rng.SplitMix64, n int) int {
	return s.Intn(n)
}
