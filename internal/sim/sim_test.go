package sim

import (
	"reflect"
	"sync"
	"testing"

	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	once   sync.Once
	testDB *perfdb.DB
	bErr   error
)

func db(t *testing.T) *perfdb.DB {
	t.Helper()
	once.Do(func() {
		testDB, bErr = perfdb.Build(exec.NewEngine(42), perfdb.Options{
			GPUTypes: []string{"A40", "A10"},
			MaxN:     16,
			Workloads: []model.Workload{
				{Model: "WRes-1B", GlobalBatch: 256},
				{Model: "GPT-1.3B", GlobalBatch: 128},
				{Model: "GPT-2.6B", GlobalBatch: 128},
			},
		})
	})
	if bErr != nil {
		t.Fatal(bErr)
	}
	return testDB
}

func testJobs(t *testing.T, n int) []trace.Job {
	t.Helper()
	cfg := trace.Config{
		Kind: trace.Philly, Duration: 3 * 3600, NumJobs: n, Seed: 7,
		GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
			{Model: "GPT-2.6B", GlobalBatch: 128},
		},
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func runSim(t *testing.T, p sched.Policy, jobs []trace.Job) *Result {
	t.Helper()
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: p, Jobs: jobs, DB: db(t),
		RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimCompletesAllJobs(t *testing.T) {
	for _, p := range []sched.Policy{
		policy.NewFCFS(), policy.NewGavel(), policy.NewElasticFlow(),
		policy.NewSia(), sched.NewArena(),
	} {
		res := runSim(t, p, testJobs(t, 40))
		if res.Finished != 40 {
			t.Errorf("%s finished %d/40 jobs", p.Name(), res.Finished)
		}
		if res.Total != 40 {
			t.Errorf("%s total = %d", p.Name(), res.Total)
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	// Every policy, full-summary comparison. The elastic policies once
	// broke marginal-gain ties by Go map iteration order — caught only
	// because this test compares complete summaries across all five.
	jobs := testJobs(t, 30)
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return policy.NewFCFS() },
		func() sched.Policy { return policy.NewGavel() },
		func() sched.Policy { return policy.NewElasticFlow() },
		func() sched.Policy { return policy.NewSia() },
		func() sched.Policy { return sched.NewArena() },
	} {
		a := runSim(t, mk(), jobs)
		b := runSim(t, mk(), jobs)
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("%s: simulation is not deterministic", a.Policy)
		}
	}
}

func TestSimJCTIncludesQueueing(t *testing.T) {
	res := runSim(t, sched.NewArena(), testJobs(t, 30))
	for i, jct := range res.JCTs {
		if jct <= 0 {
			t.Errorf("JCT[%d] = %v", i, jct)
		}
	}
	if len(res.QueueTimes) == 0 {
		t.Fatal("no queue times recorded")
	}
	for _, q := range res.QueueTimes {
		if q < 0 {
			t.Errorf("negative queue time %v", q)
		}
	}
}

func TestSimThroughputBounded(t *testing.T) {
	// Cluster throughput can never exceed the sum of every job's possible
	// max; sanity: it must stay finite and non-negative.
	res := runSim(t, policy.NewSia(), testJobs(t, 40))
	for i, thr := range res.ThroughputSeries {
		if thr < 0 {
			t.Errorf("round %d: negative throughput", i)
		}
	}
	if res.PeakThr <= 0 {
		t.Error("no throughput recorded at all")
	}
}

func TestSimWorkConservation(t *testing.T) {
	// Every finished job must have processed exactly its trace work:
	// RemainingSamples reaches 0.
	res := runSim(t, sched.NewArena(), testJobs(t, 30))
	for _, j := range res.Jobs {
		if j.State == sched.StateFinished && j.RemainingSamples > 1e-6 {
			t.Errorf("job %s finished with %.1f samples left", j.Trace.ID, j.RemainingSamples)
		}
	}
}

func TestSimArenaBeatsFCFS(t *testing.T) {
	jobs := testJobs(t, 60)
	fcfs := runSim(t, policy.NewFCFS(), jobs)
	arena := runSim(t, sched.NewArena(), jobs)
	if arena.AvgJCT >= fcfs.AvgJCT {
		t.Errorf("Arena JCT %v should beat FCFS %v", arena.AvgJCT, fcfs.AvgJCT)
	}
	if arena.AvgQueue >= fcfs.AvgQueue {
		t.Errorf("Arena queueing %v should beat FCFS %v", arena.AvgQueue, fcfs.AvgQueue)
	}
}

func TestSimProfilePrependDelaysSubmission(t *testing.T) {
	// Baselines with heavy ahead-of-time profiling see delayed effective
	// submissions: a single job's queue time under Gavel includes the DP
	// profiling prepend relative to FCFS (which profiles nothing).
	jobs := testJobs(t, 1)
	fcfs := runSim(t, policy.NewFCFS(), jobs)
	gavel := runSim(t, policy.NewGavel(), jobs)
	if gavel.QueueTimes[0] <= fcfs.QueueTimes[0] {
		t.Errorf("Gavel queue %v should exceed FCFS %v (profiling prepend)",
			gavel.QueueTimes[0], fcfs.QueueTimes[0])
	}
}

func TestSimRescalePaysOverhead(t *testing.T) {
	// Arena reschedules some jobs; each rescale must be visible in the
	// per-job counters.
	res := runSim(t, sched.NewArena(), testJobs(t, 60))
	var anyRescheduled bool
	for _, j := range res.Jobs {
		if j.Resched > 0 {
			anyRescheduled = true
		}
	}
	if !anyRescheduled {
		t.Skip("no rescheduling occurred under this trace (acceptable)")
	}
	if res.AvgReschedules <= 0 {
		t.Error("rescheduling happened but the average is zero")
	}
}

func TestSimDeadlineAccounting(t *testing.T) {
	cfg := trace.Config{
		Kind: trace.Philly, Duration: 2 * 3600, NumJobs: 30, Seed: 11,
		GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
		DeadlineFraction: 1.0,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
		},
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sched.NewArena()
	p.Objective = sched.ObjDeadline
	res := runSim(t, p, jobs)
	if res.DeadlineTotal == 0 {
		t.Fatal("no deadline jobs accounted")
	}
	if res.DeadlineSatisfied > res.DeadlineTotal {
		t.Fatal("satisfied exceeds total")
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing policy/db should error")
	}
}

func TestSimMaxRoundsBound(t *testing.T) {
	jobs := testJobs(t, 40)
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: 4, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon > 5*300 {
		t.Errorf("horizon %v exceeds the round bound", res.Horizon)
	}
	// Censored JCTs must cover every job submitted before the horizon.
	submitted := 0
	for _, j := range jobs {
		if j.SubmitTime <= res.Horizon {
			submitted++
		}
	}
	if len(res.JCTs) != submitted {
		t.Errorf("expected %d (censored) JCTs, got %d", submitted, len(res.JCTs))
	}
	for _, jct := range res.JCTs {
		if jct < 0 {
			t.Errorf("negative censored JCT %v", jct)
		}
	}
}

func TestSimRigidNonPow2TraceFinishes(t *testing.T) {
	// Regression for rigid-mode starvation: with elasticity disabled, a
	// hand-written trace requesting 3 GPUs (production traces are
	// power-of-two, user-written ones need not be) used to probe 3→6→12
	// off the profiled grid and queue forever — the simulation ran out
	// its entire drain horizon with the job still queued, silently
	// diverging the w/o-elastic ablation. The request must snap to the
	// next profiled size and finish.
	p := sched.NewArena()
	p.DisableElastic = true
	jobs := []trace.Job{{
		ID:         "rigid-3",
		Workload:   model.Workload{Model: "WRes-1B", GlobalBatch: 256},
		Iterations: 50, ReqGPUs: 3, ReqType: "A40", Priority: 1,
	}}
	res := runSim(t, p, jobs)
	if res.Finished != 1 {
		t.Fatalf("rigid 3-GPU job starved: finished=%d dropped=%d", res.Finished, res.Dropped)
	}
	if res.Jobs[0].Alloc.N != 4 {
		t.Errorf("job ran at %d GPUs, want the snapped profiled size 4", res.Jobs[0].Alloc.N)
	}
}

// arenaVariants enumerates every ablation and objective variant of the
// Arena policy (the Fig. 17 matrix plus the §5.6/§5.5 objectives).
func arenaVariants() map[string]func() *sched.ArenaPolicy {
	mk := func(mod func(*sched.ArenaPolicy)) func() *sched.ArenaPolicy {
		return func() *sched.ArenaPolicy {
			p := sched.NewArena()
			mod(p)
			return p
		}
	}
	return map[string]func() *sched.ArenaPolicy{
		"arena":        mk(func(p *sched.ArenaPolicy) {}),
		"w/o-planner":  mk(func(p *sched.ArenaPolicy) { p.DisablePlanner = true }),
		"w/o-profiler": mk(func(p *sched.ArenaPolicy) { p.DisableProfiler = true }),
		"w/o-elastic":  mk(func(p *sched.ArenaPolicy) { p.DisableElastic = true }),
		"w/o-hetero":   mk(func(p *sched.ArenaPolicy) { p.DisableHetero = true }),
		"w/o-pruning":  mk(func(p *sched.ArenaPolicy) { p.DisablePruning = true }),
		"ddl":          mk(func(p *sched.ArenaPolicy) { p.Objective = sched.ObjDeadline }),
		"fair":         mk(func(p *sched.ArenaPolicy) { p.Objective = sched.ObjFairness }),
	}
}

// jobOutcome is the per-job end state the determinism matrix compares.
type jobOutcome struct {
	State      sched.JobState
	FinishedAt float64
	LaunchedAt float64
	Alloc      sched.Alloc
	Resched    int
	Remaining  float64
}

func outcomes(res *Result) map[string]jobOutcome {
	out := map[string]jobOutcome{}
	for _, j := range res.Jobs {
		out[j.Trace.ID] = jobOutcome{
			State: j.State, FinishedAt: j.FinishedAt, LaunchedAt: j.LaunchedAt,
			Alloc: j.Alloc, Resched: j.Resched, Remaining: j.RemainingSamples,
		}
	}
	return out
}

func TestSimAblationMatrixDeterministic(t *testing.T) {
	// Every Disable* / objective variant must simulate bit-identically
	// across two runs — the §5.7 ablation comparisons are meaningless if
	// any variant's trajectory depends on map order or leftover state.
	jobs := testJobs(t, 30)
	for name, mk := range arenaVariants() {
		a := runSim(t, mk(), jobs)
		b := runSim(t, mk(), jobs)
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("%s: summaries differ between identical runs", name)
		}
		if !reflect.DeepEqual(outcomes(a), outcomes(b)) {
			t.Errorf("%s: per-job outcomes differ between identical runs", name)
		}
	}
}

func TestSimTotalRespectsHorizon(t *testing.T) {
	// Regression: Total once counted every trace job, including pending
	// jobs whose submission lies beyond a MaxRounds-capped horizon —
	// jobs the simulation never saw.
	jobs := testJobs(t, 40)
	res, err := Run(Config{
		Spec: hw.ClusterA(), Policy: policy.NewFCFS(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, MaxRounds: 4, IncludeUnfinished: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, j := range jobs {
		if j.SubmitTime <= res.Horizon {
			want++
		}
	}
	if want >= len(jobs) {
		t.Fatalf("fixture broken: all %d jobs inside the %vs horizon", len(jobs), res.Horizon)
	}
	if res.Total != want {
		t.Errorf("Total = %d, want the %d jobs submitted within the horizon", res.Total, want)
	}
}

func TestSimFidelityNoiseChangesResults(t *testing.T) {
	jobs := testJobs(t, 30)
	clean := runSim(t, sched.NewArena(), jobs)
	noisy, err := Run(Config{
		Spec: hw.ClusterA(), Policy: sched.NewArena(), Jobs: jobs, DB: db(t),
		RoundSeconds: 300, ThroughputNoise: 0.05, IncludeUnfinished: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.AvgJCT == noisy.AvgJCT {
		t.Error("throughput noise should perturb results")
	}
	// ... but only slightly (§5.2's fidelity claim).
	rel := (clean.AvgJCT - noisy.AvgJCT) / noisy.AvgJCT
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("noise shifted JCT by %.1f%%, too much", 100*rel)
	}
}
