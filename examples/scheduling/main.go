// Cluster scheduling: Arena vs the four baselines on a small
// heterogeneous cluster (the paper's Cluster-A, 32×A40 + 32×A10) with a
// bursty 3-hour trace — a miniature of the §5.2 testbed evaluation.
//
// The session builds the performance database once (streaming progress
// while the planner, profiler and AP searches run) and every policy's
// simulation reuses it.
//
//	go run ./examples/scheduling
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	arena "github.com/sjtu-epcc/arena"
)

func main() {
	ctx := context.Background()
	spec := arena.ClusterA()

	// Synthesize a bursty Philly-shaped trace.
	cfg := arena.TraceConfig{
		Kind: "philly", Duration: 3 * 3600, NumJobs: 120, Seed: 42,
		GPUTypes: spec.GPUTypes(), MaxGPUs: 16,
	}
	jobs, err := arena.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The performance database exercises the whole stack: planner,
	// profiler, full and pruned AP searches, for every workload the trace
	// can draw. WithProgress streams one event per (workload, type, count)
	// point as it lands.
	points := 0
	s, err := arena.New(
		arena.WithSeed(42),
		arena.WithCluster(spec),
		arena.WithMaxN(16),
		arena.WithProgress(func(e arena.ProgressEvent) {
			if e.Step == "perfdb.build" {
				points = e.Done
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building the performance database (planner + profiler + AP searches)...")
	if _, err := s.BuildPerfDB(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d (workload, type, count) points built\n", points)

	policies := []arena.Policy{
		arena.NewFCFS(), arena.NewGavel(), arena.NewElasticFlow(),
		arena.NewSia(), arena.NewArenaPolicy(),
	}

	fmt.Printf("\n%-16s %12s %12s %10s %10s %10s\n",
		"policy", "avgJCT", "avgQueue", "avgThr", "peakThr", "finished")
	fmt.Println(strings.Repeat("-", 76))
	var fcfsJCT float64
	for _, p := range policies {
		res, err := s.Simulate(ctx, arena.SimConfig{
			Policy: p, Jobs: jobs,
			RoundSeconds: 300, IncludeUnfinished: true, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if p.Name() == "fcfs" {
			fcfsJCT = res.AvgJCT
		}
		fmt.Printf("%-16s %9.0fs %11.0fs %10.1f %10.1f %7d/%d\n",
			p.Name(), res.AvgJCT, res.AvgQueue, res.AvgThr, res.PeakThr,
			res.Finished, res.Total)
		if p.Name() == "arena" && fcfsJCT > 0 {
			fmt.Printf("\nArena cuts average JCT by %.1f%% vs FCFS on this trace.\n",
				100*(1-res.AvgJCT/fcfsJCT))
		}
	}
}
