package experiments

import (
	"context"

	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/search"
)

// Fig14 reproduces the Pareto-frontier case study (§5.4, Fig. 14): within
// a grid, every candidate partition is enumerated and measured; the proxy
// plan's percentile position and fraction-of-optimal are reported.
func (e *Env) Fig14(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Pareto frontier deduction: proxy plan vs all plans in the grid",
		Header: []string{"case", "plans", "proxy-thr", "best-thr", "proxy/best", "percentile"},
	}
	cases := []struct {
		modelName string
		gb, n, s  int
	}{
		{"WRes-1B", 256, 4, 2},
		{"WRes-2B", 512, 8, 4},
		{"WRes-4B", 1024, 16, 8},
	}
	pl := planner.New()
	spec := hw.MustLookup("A40")
	var fracSum float64
	for _, c := range cases {
		g, err := model.BuildClustered(c.modelName)
		if err != nil {
			return nil, err
		}
		grid := core.Grid{
			Workload: model.Workload{Model: c.modelName, GlobalBatch: c.gb},
			GPUType:  "A40", N: c.n, S: c.s,
		}
		gp, err := pl.PlanGrid(g, grid)
		if err != nil {
			return nil, err
		}
		if !gp.Feasible {
			t.AddRow(fmt.Sprintf("%s %dGPU %dstage", c.modelName, c.n, c.s), "0", "-", "-", "-", "-")
			continue
		}
		// Enumerate *all* candidate plans of the grid (every partition with
		// its normalized assignment and intra choice) and measure each.
		proxyRes, err := e.eng.Evaluate(g, gp.Proxy.Plan, spec, c.gb)
		if err != nil {
			return nil, err
		}
		var thrs []float64
		all := pl.EnumerateCandidates(g, grid)
		for _, cand := range all {
			res, err := e.eng.Evaluate(g, cand.Plan, spec, c.gb)
			if err == nil && res.Fits {
				thrs = append(thrs, res.Throughput)
			}
		}
		sort.Float64s(thrs)
		best := thrs[len(thrs)-1]
		// Percentile of the proxy among all measured plans.
		pos := sort.SearchFloat64s(thrs, proxyRes.Throughput)
		percentile := float64(pos) / float64(len(thrs))
		frac := proxyRes.Throughput / best
		fracSum += frac
		t.AddRow(
			fmt.Sprintf("%s %dGPU %dstage", c.modelName, c.n, c.s),
			fmt.Sprintf("%d", len(thrs)),
			fmt.Sprintf("%.1f", proxyRes.Throughput),
			fmt.Sprintf("%.1f", best),
			fmt.Sprintf("%.1f%%", 100*frac),
			fmt.Sprintf("p%.0f", 100*percentile),
		)
	}
	t.Note("paper: proxy achieves 86.2%%/85.6%%/94.3%% of grid-optimal on 4/8/16 GPUs; measured mean here: %.1f%%", 100*fracSum/float64(len(cases)))
	return t, nil
}

// Fig15 compares Arena's pruned AP search against the full-space (Alpa)
// search (§5.4, Fig. 15): plan quality and search-cost reduction.
func (e *Env) Fig15(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "AP search with pruning vs Alpa full search",
		Header: []string{"model", "n", "alpa-iter(s)", "arena-iter(s)", "quality", "alpa-search(s)", "arena-search(s)", "cost-cut"},
	}
	pl := planner.New()
	spec := hw.MustLookup("A40")
	var qualitySum, cutSum float64
	var count int
	var maxCut float64
	for _, m := range []struct {
		name string
		gb   int
	}{{"WRes-1B", 256}, {"GPT-1.3B", 128}, {"MoE-1.3B", 256}} {
		g, err := model.BuildClustered(m.name)
		if err != nil {
			return nil, err
		}
		w := model.Workload{Model: m.name, GlobalBatch: m.gb}
		for _, n := range []int{1, 2, 4, 8, 16} {
			full, err := search.FullSearchCtx(ctx, e.eng, g, spec, m.gb, n, search.Options{})
			if err != nil {
				return nil, err
			}
			if !full.Feasible() {
				continue
			}
			// Best grid by engine-measured proxy throughput.
			var bestGP *planner.GridPlan
			var bestThr float64
			for _, s := range core.PipelineDegrees(n, len(g.Ops)) {
				gp, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: "A40", N: n, S: s})
				if err != nil || !gp.Feasible {
					continue
				}
				res, err := e.eng.Evaluate(g, gp.Proxy.Plan, spec, m.gb)
				if err != nil || !res.Fits {
					continue
				}
				if bestGP == nil || res.Throughput > bestThr {
					bestGP, bestThr = gp, res.Throughput
				}
			}
			if bestGP == nil {
				continue
			}
			pruned, err := search.PrunedSearchCtx(ctx, e.eng, g, spec, m.gb, n, bestGP, search.Options{})
			if err != nil || !pruned.Feasible() {
				continue
			}
			quality := pruned.Result.Throughput / full.Result.Throughput
			cut := full.SearchTime / pruned.SearchTime
			qualitySum += quality
			cutSum += cut
			count++
			if cut > maxCut {
				maxCut = cut
			}
			t.AddRow(m.name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", full.Result.IterTime),
				fmt.Sprintf("%.2f", pruned.Result.IterTime),
				fmt.Sprintf("%.1f%%", 100*quality),
				fmt.Sprintf("%.0f", full.SearchTime),
				fmt.Sprintf("%.0f", pruned.SearchTime),
				fmt.Sprintf("%.2fx", cut))
		}
	}
	t.Note("measured: %.1f%% of Alpa quality on average; %.2fx mean (%.2fx max) search-cost reduction", 100*qualitySum/float64(count), cutSum/float64(count), maxCut)
	t.Note("paper: 96.2%% of Alpa performance; 5.48x mean / 10.88x max search-cost reduction")
	return t, nil
}

// Fig16 evaluates the disaggregated profiler (§5.5, Fig. 16): end-to-end
// estimation error and GPU-time cost vs the direct-measurement Oracle,
// per GPU count averaged across models.
func (e *Env) Fig16(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Disaggregated profiling: error rate and cost vs direct measurement",
		Header: []string{"n", "avg-error", "arena-cost(GPU*s)", "oracle-cost(GPU*s)", "cost-cut"},
	}
	types := []string{"A40", "A10", "V100", "A100"}
	ct, err := e.CommTable(types)
	if err != nil {
		return nil, err
	}
	pl := planner.New()

	models := []struct {
		name string
		gb   int
	}{{"WRes-1B", 256}, {"GPT-1.3B", 128}, {"MoE-1.3B", 256}, {"GPT-2.6B", 128}}

	var totalErrSum float64
	var totalErrCount int
	var totalCutSum float64
	var cutCount int
	minCut := math.MaxFloat64
	for _, n := range []int{1, 2, 4, 8, 16} {
		var errSum, arenaCost, oracleCost float64
		var errCount int
		for _, m := range models {
			for _, typ := range []string{"A40", "A100"} {
				g, err := model.BuildClustered(m.name)
				if err != nil {
					return nil, err
				}
				spec := hw.MustLookup(typ)
				w := model.Workload{Model: m.name, GlobalBatch: m.gb}
				// Per-(model, n) profiling session: fresh cache. The Oracle
				// alternative measures the same set of proxy plans by
				// direct multi-GPU execution (Fig. 16(b)).
				pr := profiler.New(e.eng, ct)
				var bestEst *profiler.Estimate
				for _, s := range core.PipelineDegrees(n, len(g.Ops)) {
					gp, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: typ, N: n, S: s})
					if err != nil || !gp.Feasible {
						continue
					}
					est, err := pr.ProfileGridPlan(g, gp)
					if err != nil {
						continue
					}
					arenaCost += est.ProfileGPUTime
					direct, err := e.eng.Evaluate(g, gp.Proxy.Plan, spec, m.gb)
					if err == nil && direct.Fits {
						oracleCost += exec.DirectMeasureCost(direct, gp.Proxy.Plan, pr.Trials)
					}
					if bestEst == nil || est.Throughput > bestEst.Throughput {
						cp := est
						bestEst = &cp
					}
				}
				if bestEst == nil {
					continue
				}
				res, err := e.eng.Evaluate(g, bestEst.Plan, spec, m.gb)
				if err != nil || !res.Fits {
					continue
				}
				errSum += math.Abs(bestEst.IterTime-res.IterTime) / res.IterTime
				errCount++
			}
		}
		if errCount == 0 {
			continue
		}
		cut := oracleCost / arenaCost
		totalErrSum += errSum
		totalErrCount += errCount
		totalCutSum += cut
		cutCount++
		if cut < minCut {
			minCut = cut
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", 100*errSum/float64(errCount)),
			fmt.Sprintf("%.0f", arenaCost),
			fmt.Sprintf("%.0f", oracleCost),
			fmt.Sprintf("%.2fx", cut))
	}
	t.Note("measured: %.1f%% mean error; %.2fx mean (%.2fx min) profiling cost reduction",
		100*totalErrSum/float64(totalErrCount), totalCutSum/float64(cutCount), minCut)
	t.Note("paper: 4.4/5.1/3.1/4.6/8.3%% error for 1/2/4/8/16 GPUs; 18.1x mean (2.55x min) GPU-time reduction")
	return t, nil
}

// Fig18 breaks a GPT-2.6B iteration into compute and communication GPU
// time across microbatch sizes and GPU counts (§5.7, Fig. 18), comparing
// Arena's plan, the unpruned full-AP plan, and the baseline (Sia-style
// over-allocation: 2× the GPUs under pure DP).
func (e *Env) Fig18(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "GPT-2.6B training GPU-time breakdown on A40 (compute / communication)",
		Header: []string{"sweep", "setting", "system", "plan", "compute(GPU*s)", "comm(GPU*s)"},
	}
	g, err := model.BuildClustered("GPT-2.6B")
	if err != nil {
		return nil, err
	}
	spec := hw.MustLookup("A40")
	pl := planner.New()

	eval := func(sweep, setting string, gb, n int) error {
		w := model.Workload{Model: "GPT-2.6B", GlobalBatch: gb}
		// Arena: pruned search on the best grid.
		var bestGP *planner.GridPlan
		var bestThr float64
		for _, s := range core.PipelineDegrees(n, len(g.Ops)) {
			gp, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: "A40", N: n, S: s})
			if err != nil || !gp.Feasible {
				continue
			}
			res, err := e.eng.Evaluate(g, gp.Proxy.Plan, spec, gb)
			if err != nil || !res.Fits {
				continue
			}
			if bestGP == nil || res.Throughput > bestThr {
				bestGP, bestThr = gp, res.Throughput
			}
		}
		if bestGP == nil {
			return fmt.Errorf("fig18: no feasible grid for n=%d gb=%d", n, gb)
		}
		arena, err := search.PrunedSearchCtx(ctx, e.eng, g, spec, gb, n, bestGP, search.Options{})
		if err != nil || !arena.Feasible() {
			return fmt.Errorf("fig18: pruned search failed: %v", err)
		}
		t.AddRow(sweep, setting, "arena", arena.Plan.Degrees(),
			fmt.Sprintf("%.1f", arena.Result.ComputeGPUTime),
			fmt.Sprintf("%.1f", arena.Result.CommGPUTime))

		full, err := search.FullSearchCtx(ctx, e.eng, g, spec, gb, n, search.Options{})
		if err == nil && full.Feasible() {
			t.AddRow(sweep, setting, "arena-w/o-pruning", full.Plan.Degrees(),
				fmt.Sprintf("%.1f", full.Result.ComputeGPUTime),
				fmt.Sprintf("%.1f", full.Result.CommGPUTime))
		}

		// Baseline: Sia-style over-allocation — 2× GPUs under the plans
		// its DP view prefers (§5.7: "we statically assume 2x more GPUs
		// allocated by it").
		bn := n * 2
		if bn > 16 {
			bn = 16
		}
		baseOut, err := search.FullSearchCtx(ctx, e.eng, g, spec, gb, bn, search.Options{})
		if err == nil && baseOut.Feasible() {
			t.AddRow(sweep, setting, "baseline(2x GPUs)", baseOut.Plan.Degrees(),
				fmt.Sprintf("%.1f", baseOut.Result.ComputeGPUTime),
				fmt.Sprintf("%.1f", baseOut.Result.CommGPUTime))
		}
		return nil
	}

	// (a) Scaling with microbatch size at 8 GPUs: global batch = 8 micro ×
	// microbatch size (the paper sweeps microbatch 8/16/32).
	for _, mbs := range []int{8, 16, 32} {
		if err := eval("batch", fmt.Sprintf("mbs=%d", mbs), mbs*8, 8); err != nil {
			return nil, err
		}
	}
	// (b) Scaling with GPU count at microbatch 16.
	for _, n := range []int{4, 8, 16} {
		if err := eval("gpus", fmt.Sprintf("n=%d", n), 128, n); err != nil {
			return nil, err
		}
	}
	t.Note("paper: widening DP barely changes compute GPU time but inflates communication GPU time (up to 9.15x); Arena matches full-AP plans within 5%%")
	return t, nil
}
