// Package store is a content-addressed, versioned, on-disk object store —
// the persistence substrate under the measurement caches (the evalcache's
// op/stage memo tables and the perfdb's per-workload columns). It knows
// nothing about either client: it stores JSON payloads under keys that the
// clients derive by hashing the inputs that determine the payload (engine
// seed and tunables, model-graph fingerprint, GPU spec, workload params,
// schema version).
//
// Content addressing is what makes invalidation free: when any input
// changes — a model definition, a device spec, the schema — the derived
// key changes with it, so stale objects are simply never looked up again.
// There is no mtime logic, no manual cache busting, and two processes (or
// two seeds) whose inputs are content-identical share objects.
//
// On disk a store is a directory:
//
//	dir/
//	  MANIFEST.json          {"version": 1}
//	  <domain>/<key>.json    one object per key
//
// Every object is an envelope carrying the store schema version, the key
// it was written under, and a checksum of the payload, so torn or tampered
// files are detected on read instead of poisoning results. Writes are
// atomic (temp file + rename in the target directory), which makes
// concurrent writers safe: the last complete write wins and a reader never
// observes a partial object.
//
// All read-side failures are reported as a *Error wrapping one of the
// sentinel errors (ErrNotFound, ErrSchema, ErrCorrupt, ErrKeyMismatch), so
// callers can route each object onto the rebuild-and-warn path — the same
// convention perfdb.SnapshotError established: persistence is a cache
// concern and must never abort work that can be recomputed.
//
// The clients' key-derivation and invalidation rules — which fields feed
// which hash, and what a drifted input orphans — are documented in
// docs/ARCHITECTURE.md alongside the rest of the persistence design.
package store
