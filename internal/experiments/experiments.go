// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each Fig* function returns a printable Table whose rows
// mirror the series the paper plots; cmd/arena-bench prints them and
// bench_test.go wraps them as benchmarks. Shared state (execution engine,
// communication table, performance databases) is cached per Env so a full
// suite run builds each database once.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment identifier, e.g. "fig11"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-form annotation.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	fmt.Fprintln(w)
}

// Env caches the expensive shared state across experiments.
type Env struct {
	Seed uint64

	// StoreDir, when non-empty, persists the performance databases the
	// experiments build through the content-addressed measurement store:
	// one object per workload column, shared across experiments and runs,
	// with partial rebuilds when only some columns are missing.
	StoreDir string

	// DBCacheDir, when non-empty, persists every performance database the
	// experiments build as a JSON snapshot under this directory (one file
	// per seed × GPU-type set) and reloads matching snapshots on later
	// runs, skipping the rebuild entirely.
	//
	// Deprecated: use StoreDir. Kept as a working shim; ignored when
	// StoreDir is also set.
	DBCacheDir string

	// Workers caps database-build worker pools; 0 = all cores.
	Workers int

	// Progress, when non-nil, receives build and simulation progress
	// events from the figures' Run(ctx) — one "perfdb.build" event per
	// completed (workload, type, count) point and one "sim.round" event
	// per scheduling round — the same stream arena.Session forwards.
	// Builds fan out over worker pools, so Env serializes the callback;
	// set it before the first Run call. cmd/arena-bench wires it to -v.
	Progress core.ProgressFunc

	// SnapshotWarn, when non-nil, receives snapshot persistence failures
	// (the build itself succeeded); the default prints to stderr.
	// cmd/arena-bench routes it through internal/cli for the uniform
	// tool-prefixed message.
	SnapshotWarn func(error)

	mu         sync.Mutex
	progressMu sync.Mutex // serializes Progress calls from worker pools
	eng        *exec.Engine
	comm       map[string]*profiler.CommTable
	dbs        map[string]*perfdb.DB
	store      *store.Store // lazily opened StoreDir; nil until first DB call
}

// NewEnv returns an experiment environment with the given determinism seed.
func NewEnv(seed uint64) *Env {
	return &Env{
		Seed: seed,
		eng:  exec.NewEngine(seed),
		comm: map[string]*profiler.CommTable{},
		dbs:  map[string]*perfdb.DB{},
	}
}

// Engine returns the shared execution engine.
func (e *Env) Engine() *exec.Engine { return e.eng }

// CommTable returns (building on first use) the offline communication
// table covering the given GPU types.
func (e *Env) CommTable(types []string) (*profiler.CommTable, error) {
	key := strings.Join(types, ",")
	e.mu.Lock()
	defer e.mu.Unlock()
	if ct, ok := e.comm[key]; ok {
		return ct, nil
	}
	ct, err := profiler.OfflineSampleComm(e.eng, types, 16)
	if err != nil {
		return nil, err
	}
	e.comm[key] = ct
	return ct, nil
}

// DB returns (building on first use) the performance database for a set
// of GPU types over the default trace workload mix. The build is
// cancelled through ctx; persistence goes through StoreDir (per-workload
// columns, partial rebuilds) or, as a deprecated fallback, DBCacheDir
// (all-or-nothing JSON snapshots).
func (e *Env) DB(ctx context.Context, types []string) (*perfdb.DB, error) {
	key := strings.Join(types, ",")
	e.mu.Lock()
	if db, ok := e.dbs[key]; ok {
		e.mu.Unlock()
		return db, nil
	}
	e.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	opts := perfdb.Options{
		Seed:      e.Seed,
		GPUTypes:  types,
		MaxN:      16,
		Workloads: trace.DefaultWorkloads(),
		Workers:   e.Workers,
		Progress:  e.progress(),
	}
	var db *perfdb.DB
	var err error
	if st := e.openStore(); st != nil {
		var stats perfdb.StoreStats
		db, stats, err = perfdb.BuildOrLoadStore(ctx, e.eng, opts, st)
		for _, serr := range stats.Skipped {
			e.warn(fmt.Errorf("%v (column rebuilt)", serr))
		}
	} else {
		db, _, err = perfdb.BuildOrLoadCtx(ctx, e.eng, opts, e.dbSnapshotPath(types))
	}
	if err != nil {
		// A failed snapshot or column write still returns a usable
		// database; experiments only lose the cross-run cache, not
		// correctness.
		if db == nil {
			return nil, err
		}
		e.warn(err)
	}
	e.mu.Lock()
	e.dbs[key] = db
	e.mu.Unlock()
	return db, nil
}

// progress returns the Env's serialized progress sink, or nil when no
// stream is configured so callees skip event construction — the same
// convention as arena.Session.
func (e *Env) progress() core.ProgressFunc {
	if e.Progress == nil {
		return nil
	}
	return func(ev core.Event) {
		e.progressMu.Lock()
		e.Progress(ev)
		e.progressMu.Unlock()
	}
}

// warn routes a persistence warning through SnapshotWarn or stderr.
func (e *Env) warn(err error) {
	if e.SnapshotWarn != nil {
		e.SnapshotWarn(err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: warning: %v (continuing with the built database)\n", err)
}

// openStore lazily opens StoreDir, warning once and falling back to the
// legacy path when the directory is unusable (the store is only a cache).
func (e *Env) openStore() *store.Store {
	e.mu.Lock()
	dir, st := e.StoreDir, e.store
	e.mu.Unlock()
	if dir == "" || st != nil {
		return st
	}
	opened, err := store.Open(dir)
	if err != nil {
		e.warn(err)
		e.mu.Lock()
		e.StoreDir = ""
		e.mu.Unlock()
		return nil
	}
	e.mu.Lock()
	if e.store == nil {
		e.store = opened
	}
	st = e.store
	e.mu.Unlock()
	return st
}

// dbSnapshotPath names the snapshot file for a GPU-type set, or "" when
// snapshotting is disabled.
func (e *Env) dbSnapshotPath(types []string) string {
	if e.DBCacheDir == "" {
		return ""
	}
	name := fmt.Sprintf("perfdb-seed%d-%s.json", e.Seed, strings.Join(types, "_"))
	return filepath.Join(e.DBCacheDir, name)
}

// Policies returns the five schedulers of §5.1 in the paper's order.
func Policies() []sched.Policy {
	return []sched.Policy{
		policy.NewFCFS(),
		policy.NewGavel(),
		policy.NewElasticFlow(),
		policy.NewSia(),
		sched.NewArena(),
	}
}

// runPolicies executes one trace under every policy and returns the
// results keyed by policy name, plus the name order. Cancelling ctx
// aborts between and within policy runs.
func (e *Env) runPolicies(ctx context.Context, spec hw.ClusterSpec, jobs []trace.Job, db *perfdb.DB, maxRounds int, pols []sched.Policy) (map[string]*sim.Result, []string, error) {
	results := map[string]*sim.Result{}
	var order []string
	for _, p := range pols {
		res, err := sim.RunCtx(ctx, sim.Config{
			Spec: spec, Policy: p, Jobs: jobs, DB: db,
			RoundSeconds: 300, MaxRounds: maxRounds,
			IncludeUnfinished: true, Seed: e.Seed,
			Progress: e.progress(),
		})
		if err != nil {
			return nil, nil, err
		}
		results[p.Name()] = res
		order = append(order, p.Name())
	}
	return results, order, nil
}

// pct formats a relative change vs a baseline value as the paper does
// ("-49.3%").
func pct(value, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(value-baseline)/baseline)
}

// ratio formats a multiplicative improvement ("1.49x").
func ratio(value, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", value/baseline)
}

// seconds formats a duration in seconds compactly.
func seconds(s float64) string { return fmt.Sprintf("%.0fs", s) }

// meanWindow averages a series over exactly `window` rounds: longer
// series are truncated, shorter ones padded with zeros (the cluster sits
// idle once all jobs finish), so policies with different horizons compare
// on the same denominator.
func meanWindow(series []float64, window int) float64 {
	if window <= 0 {
		window = len(series)
	}
	if len(series) > window {
		series = series[:window]
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	if window == 0 {
		return 0
	}
	return sum / float64(window)
}

// maxHorizon returns the longest throughput-series length across results
// — the common comparison window ("until every policy drained").
func maxHorizon(results map[string]*sim.Result) int {
	m := 0
	for _, r := range results {
		if len(r.ThroughputSeries) > m {
			m = len(r.ThroughputSeries)
		}
	}
	return m
}

// maxWindow is the peak of a truncated series.
func maxWindow(series []float64, window int) float64 {
	if len(series) > window {
		series = series[:window]
	}
	var m float64
	for _, v := range series {
		if v > m {
			m = v
		}
	}
	return m
}

// sortedWorkloadsOf lists the distinct workloads in a trace (diagnostics).
func sortedWorkloadsOf(jobs []trace.Job) []model.Workload {
	seen := map[model.Workload]bool{}
	for _, j := range jobs {
		seen[j.Workload] = true
	}
	out := make([]model.Workload, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
