package fixture

import c "context"

// Same-scope reuse produces no new object, so it can never shadow.
func sameScope(ctx c.Context) {
	ctx, cancel := c.WithCancel(ctx)
	defer cancel()
	_ = ctx
}

// The callback idiom: a nested function literal's own context.Context
// parameter is a deliberate rebind, whatever the import is named.
func callback(ctx c.Context, with func(func(ctx c.Context) error) error) error {
	_ = ctx
	return with(func(ctx c.Context) error { return ctx.Err() })
}

// A renamed local never collides with the parameter.
func renamed(ctx c.Context) {
	roundCtx := &roundCtx{n: 1}
	_ = roundCtx
	_ = ctx
}
