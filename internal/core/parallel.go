package core

import (
	"context"
	"sync"
)

// ParallelFor runs fn(i) for every i in [0, n) on up to `workers`
// goroutines, blocking until all complete. workers <= 1 (or n < 2) runs
// inline on the caller's goroutine. fn must be safe to call concurrently
// and must not panic across iterations it wants completed.
func ParallelFor(n, workers int, fn func(i int)) {
	_ = ParallelForCtx(context.Background(), n, workers, fn)
}

// ParallelForCtx is ParallelFor with cooperative cancellation: once ctx is
// cancelled no further iterations start, in-flight iterations finish, and
// the call returns ctx.Err(). Iterations that never started are simply
// skipped — callers must treat a non-nil return as "results incomplete".
// All worker goroutines are joined before returning, cancelled or not, so
// the pool cannot leak. With a background (never-cancelled) context the
// iteration set and ordering are identical to ParallelFor.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	// The channel is unbuffered, so a cancelled send means the index never
	// reached a worker: stopping here stops the whole remaining range
	// within one scheduling quantum of the pool.
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
