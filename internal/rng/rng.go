// Package rng provides small, allocation-free deterministic random number
// generators used throughout the Arena reproduction.
//
// Everything stochastic in this repository — execution-engine jitter, trace
// generation, workload synthesis — draws from seeded SplitMix64 streams so
// that every experiment is reproducible bit-for-bit across runs and
// platforms. The standard library's math/rand is deliberately avoided for
// core paths: SplitMix64 gives us a pure function from (seed, sequence
// position) to value, which makes per-entity streams (one per operator, one
// per job) trivial to derive without shared state.
package rng

import "math"

// SplitMix64 is a tiny, fast, well-distributed PRNG. It is the generator
// recommended for seeding xoshiro-family PRNGs and passes BigCrush.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 stream seeded with seed.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	// 53 high bits -> uniform double in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniformly distributed value in [lo, hi).
func (s *SplitMix64) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given mean,
// suitable for inter-arrival-time synthesis. Mean must be positive.
func (s *SplitMix64) Exp(mean float64) float64 {
	// Inverse-CDF sampling; guard against log(0).
	u := s.Float64()
	if u <= 0 {
		u = 1e-18
	}
	return -mean * ln(u)
}

// LogNormalish returns a heavy-tailed positive value with the given median
// and spread (a multiplicative sigma-like factor > 1). It approximates a
// log-normal by exponentiating a triangular sum of uniforms, avoiding
// math.Exp/math.Log imports in hot paths is not a concern here; we use the
// real functions for fidelity.
func (s *SplitMix64) LogNormalish(median, spread float64) float64 {
	// Sum of 3 uniforms in [-1,1] approximates a Gaussian with sigma ~ 0.577*sqrt(3).
	g := (s.Float64() + s.Float64() + s.Float64()) - 1.5 // ~N(0, 0.5)
	return median * pow(spread, g*2)
}

// Hash64 mixes an arbitrary 64-bit key into a well-distributed 64-bit value
// using the SplitMix64 finalizer. It is the basis for derived streams:
// Derive(seed, k1, k2, ...) produces independent streams per entity.
func Hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HashString hashes a string with FNV-1a into 64 bits and finalizes with
// SplitMix64 mixing. Used to derive per-name jitter streams.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Hash64(h)
}

// Derive combines a seed with a sequence of keys into a new independent
// stream. Keys are folded with distinct odd multipliers so that permuted
// key tuples yield unrelated streams.
func Derive(seed uint64, keys ...uint64) *SplitMix64 {
	h := Hash64(seed)
	for i, k := range keys {
		h = Hash64(h ^ (k+1)*odd(i))
	}
	return New(h)
}

func odd(i int) uint64 {
	// Distinct odd constants per position.
	consts := [...]uint64{
		0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9,
		0x27D4EB2F165667C5, 0x85EBCA77C2B2AE63, 0xFF51AFD7ED558CCD,
	}
	return consts[i%len(consts)]
}

func ln(x float64) float64     { return math.Log(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
