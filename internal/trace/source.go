package trace

import (
	"fmt"
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/rng"
)

// Source streams trace jobs one at a time, in non-decreasing SubmitTime
// order. It is the scale-friendly alternative to materializing a []Job:
// the simulator pulls jobs on demand, so a million-job trace never
// exists as a slice and simulation memory stays O(active jobs).
//
// A Source is single-use: Next returns (Job, true) until the trace is
// exhausted, then (Job{}, false) forever. Implementations must be
// deterministic — two Sources built from the same configuration yield
// identical sequences, which is what lets parity tests run the same
// trace through two simulator cores.
type Source interface {
	Next() (Job, bool)
}

// Spanner is optionally implemented by Sources that know their arrival
// span (the largest SubmitTime they will ever emit). The simulator uses
// it to derive a round horizon when MaxRounds is not set; a Source
// without a Span needs an explicit MaxRounds.
type Spanner interface {
	Span() float64
}

// sliceSource adapts a materialized []Job to the Source interface.
type sliceSource struct {
	jobs []Job
	i    int
}

// SliceSource wraps an in-memory trace as a streaming Source — the shim
// that lets existing []trace.Job call sites move to the Source API
// without regenerating anything. The slice is copied and stably sorted
// by SubmitTime (ties keep slice order), matching how the simulator has
// always staged a Jobs slice, so SliceSource(jobs) and Config.Jobs are
// interchangeable bit-for-bit.
func SliceSource(jobs []Job) Source {
	cp := append([]Job(nil), jobs...)
	sort.SliceStable(cp, func(a, b int) bool { return cp[a].SubmitTime < cp[b].SubmitTime })
	return &sliceSource{jobs: cp}
}

func (s *sliceSource) Next() (Job, bool) {
	if s.i >= len(s.jobs) {
		return Job{}, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

// Span returns the last submission time (0 for an empty trace).
func (s *sliceSource) Span() float64 {
	if len(s.jobs) == 0 {
		return 0
	}
	return s.jobs[len(s.jobs)-1].SubmitTime
}

// Generator is a streaming synthetic-trace Source: a non-homogeneous
// Poisson arrival process shaped like the configured trace family
// (Philly's bursty prefix + heavy suffix, Helios's diurnal ripple,
// PAI's thinning load), with the same workload/size/priority mixtures
// as Generate. Arrivals are drawn sequentially by thinning against the
// peak rate, so jobs come out already ordered by SubmitTime and the
// whole trace is never materialized.
//
// Generate draws i.i.d. submission times and sorts them — inherently
// O(NumJobs) memory — so Generator is a distinct (equally deterministic)
// process, not a bit-compatible replacement. NumJobs is the *expected*
// job count of the Poisson process; the realized count varies around it.
type Generator struct {
	cfg       Config
	workloads []model.Workload
	weights   []float64
	arrivals  *rng.SplitMix64 // arrival-process stream
	attrs     *rng.SplitMix64 // per-job attribute stream
	peak      float64         // thinning envelope: max of rate() over the span
	t         float64
	i         int
	done      bool
}

// Stream builds a streaming generator for the configuration. The same
// Config drives Generate; only the arrival process differs (see type
// doc). Two Generators from equal Configs emit identical sequences.
func Stream(cfg Config) (*Generator, error) {
	cfg, workloads, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	weights, err := workloadWeights(workloads)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:       cfg,
		workloads: workloads,
		weights:   weights,
		arrivals:  rng.Derive(cfg.Seed, rng.HashString("trace-stream-arrivals"), rng.HashString(string(cfg.Kind))),
		attrs:     rng.Derive(cfg.Seed, rng.HashString("trace-stream-attrs"), rng.HashString(string(cfg.Kind))),
	}
	g.peak = g.peakRate()
	return g, nil
}

// Next emits the next arrival, or false when the span is exhausted.
func (g *Generator) Next() (Job, bool) {
	if g.done {
		return Job{}, false
	}
	for {
		g.t += g.arrivals.Exp(1 / g.peak)
		if g.t >= g.cfg.Duration {
			g.done = true
			return Job{}, false
		}
		// Thinning: accept with probability rate(t)/peak.
		if g.arrivals.Float64()*g.peak <= g.rate(g.t) {
			break
		}
	}
	j := synthesize(g.attrs, g.cfg, g.workloads, g.weights, g.i, g.t)
	g.i++
	return j, true
}

// Span returns the trace span, letting the simulator derive a horizon.
func (g *Generator) Span() float64 { return g.cfg.Duration }

// rate is the instantaneous arrival intensity λ(t), shaped per family
// and normalized so the expected total over [0, Duration) is NumJobs.
func (g *Generator) rate(t float64) float64 {
	d, n := g.cfg.Duration, float64(g.cfg.NumJobs)
	switch g.cfg.Kind {
	case Philly:
		// 20% of the mass on the 3/7 prefix (12% spread + 8% in three
		// narrow bursts), 80% on the 4/7 suffix — Generate's shape.
		prefix := d * 3 / 7
		if t < prefix {
			lam := 0.12 * n / prefix
			for k := 0; k < 3; k++ {
				spike := float64(k) / 3 * prefix
				if t >= spike && t < spike+0.01*d {
					lam += 0.08 * n / 3 / (0.01 * d)
				}
			}
			return lam
		}
		return 0.8 * n / (d * 4 / 7)
	case Helios:
		// Moderate steady load with a gentle diurnal ripple.
		return n / d * (1 + 0.3*math.Sin(2*math.Pi*t/86400))
	case PAI:
		// Light load thinning out towards the end of the day.
		return 2 * n / d * (1 - t/d)
	default:
		return n / d
	}
}

// peakRate bounds rate() over the span — the thinning envelope.
func (g *Generator) peakRate() float64 {
	d, n := g.cfg.Duration, float64(g.cfg.NumJobs)
	switch g.cfg.Kind {
	case Philly:
		prefix := d * 3 / 7
		burst := 0.12*n/prefix + 0.08*n/3/(0.01*d)
		return math.Max(burst, 0.8*n/(d*4/7))
	case Helios:
		return 1.3 * n / d
	case PAI:
		return 2 * n / d
	default:
		return n / d
	}
}

// GenPreset resolves an arena-sim -trace-gen preset name to a generator
// configuration, applying the family's default job count when jobs is 0.
// The names mirror the paper's evaluation setups: the §5.2 six-hour
// Philly testbed trace and the §5.3 week/day simulation traces.
func GenPreset(name string, seed uint64, gpuTypes []string, jobs int) (Config, error) {
	switch name {
	case "philly-6h":
		cfg := PhillySixHour(seed, gpuTypes)
		if jobs > 0 {
			cfg.NumJobs = jobs
		}
		return cfg, nil
	case "philly-week":
		if jobs == 0 {
			jobs = 3000
		}
		return PhillyWeek(seed, gpuTypes, jobs), nil
	case "helios-day":
		if jobs == 0 {
			jobs = 900
		}
		return HeliosDay(seed, gpuTypes, jobs), nil
	case "pai-day":
		if jobs == 0 {
			jobs = 450
		}
		return PAIDay(seed, gpuTypes, jobs), nil
	default:
		return Config{}, fmt.Errorf("trace: unknown generator preset %q (want philly-6h|philly-week|helios-day|pai-day)", name)
	}
}
