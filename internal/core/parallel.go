package core

import "sync"

// ParallelFor runs fn(i) for every i in [0, n) on up to `workers`
// goroutines, blocking until all complete. workers <= 1 (or n < 2) runs
// inline on the caller's goroutine. fn must be safe to call concurrently
// and must not panic across iterations it wants completed.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
