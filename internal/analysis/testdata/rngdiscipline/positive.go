package fixture

import (
	"math/rand"           // want `math/rand in scheduling/fault code: derive a seeded stream with internal/rng.Derive instead`
	randv2 "math/rand/v2" // want `math/rand/v2 in scheduling/fault code`

	"github.com/sjtu-epcc/arena/internal/rng"
)

// Package-level generator state is shared mutable stream state, even
// for the blessed internal/rng types.
var legacy = rand.New(rand.NewSource(1)) // want `package-level RNG "legacy" is shared mutable stream state`

var pcg = randv2.NewPCG(1, 2) // want `package-level RNG "pcg" is shared mutable stream state`

var shared = rng.New(42) // want `package-level RNG "shared" is shared mutable stream state`

func flip() bool { return legacy.Float64() < 0.5 }

func next() uint64 { return pcg.Uint64() }

func jitter() float64 { return shared.Float64() }
