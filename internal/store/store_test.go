package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
)

type payload struct {
	Name string    `json:"name"`
	Vals []float64 `json:"vals"`
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test", "a", "b")
	in := payload{Name: "x", Vals: []float64{1.5, 0.1, 2.25e-300}}
	if err := s.Put("test", k, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Get("test", k, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != len(in.Vals) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Vals {
		if out.Vals[i] != in.Vals[i] {
			t.Fatalf("val %d: %v != %v", i, out.Vals[i], in.Vals[i])
		}
	}
}

func TestKeyDerivation(t *testing.T) {
	a := NewKey("d", "ab", "c")
	b := NewKey("d", "a", "bc")
	if a == b {
		t.Fatal("length-prefixed fields must not collide by concatenation")
	}
	if a != NewKey("d", "ab", "c") {
		t.Fatal("keys must be deterministic")
	}
	if NewKey("d1", "x") == NewKey("d2", "x") {
		t.Fatal("domains must separate keys")
	}
	if !a.valid() {
		t.Fatalf("derived key %q should be valid", a)
	}
	if Key("../../etc/passwd").valid() || Key("short").valid() {
		t.Fatal("non-digest keys must be rejected")
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	err = s.Get("test", NewKey("test", "nope"), &out)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("want *Error, got %T", err)
	}
}

func TestTruncatedObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test", "trunc")
	if err := s.Put("test", k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("test", k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Get("test", k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated object: want ErrCorrupt, got %v", err)
	}
}

func TestTamperedPayload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test", "tamper")
	if err := s.Put("test", k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("test", k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the payload's name in place: still valid JSON, wrong checksum.
	tampered := []byte(string(data))
	for i := 0; i+2 < len(tampered); i++ {
		if tampered[i] == '"' && tampered[i+1] == 'x' && tampered[i+2] == '"' {
			tampered[i+1] = 'y'
		}
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Get("test", k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered payload: want ErrCorrupt, got %v", err)
	}
}

func TestObjectSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test", "ver")
	if err := s.Put("test", k, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	path := s.objectPath("test", k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := []byte(fmt.Sprintf(`{"version":%d,"key":"%s","sum":"","payload":{}}`, Version+1, k))
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Get("test", k, &out); !errors.Is(err, ErrSchema) {
		t.Fatalf("skewed object: want ErrSchema, got %v", err)
	}
	_ = data
}

func TestKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k1 := NewKey("test", "one")
	k2 := NewKey("test", "two")
	if err := s.Put("test", k1, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a misplaced file: copy k1's object under k2's name.
	data, err := os.ReadFile(s.objectPath("test", k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath("test", k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Get("test", k2, &out); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("misplaced object: want ErrKeyMismatch, got %v", err)
	}
}

func TestManifestSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"),
		[]byte(fmt.Sprintf(`{"version":%d}`, Version+1)), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("manifest skew: want ErrSchema, got %v", err)
	}
}

// TestConcurrentWriters hammers one key from many goroutines and verifies
// every subsequent read sees a complete, checksum-valid object — the
// atomic-rename guarantee that makes cross-process sharing safe.
func TestConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test", "contended")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := payload{Name: fmt.Sprintf("w%d-%d", w, i), Vals: []float64{float64(w), float64(i)}}
				if err := s.Put("test", k, p); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				var out payload
				if err := s.Get("test", k, &out); err != nil {
					t.Errorf("get after concurrent puts: %v", err)
					return
				}
				if len(out.Vals) != 2 {
					t.Errorf("torn object observed: %+v", out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if keys, err := s.List("empty"); err != nil || keys != nil {
		t.Fatalf("empty domain: got %v, %v", keys, err)
	}
	k1, k2 := NewKey("d", "1"), NewKey("d", "2")
	if err := s.Put("d", k1, payload{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("d", k2, payload{}); err != nil {
		t.Fatal(err)
	}
	// Stray files must not surface as keys.
	if err := os.WriteFile(filepath.Join(s.Dir(), "d", "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("want 2 keys, got %v", keys)
	}
}

// TestCrashBetweenWriteAndRename kills a Put in the crash window — temp
// file durably written, rename not yet executed — and proves the previous
// object under the final name survives uncorrupted, the failure surfaces
// as a typed *Error (not silent loss), and no temp debris is left behind.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("d", "crash")
	if err := s.Put("d", k, payload{Name: "old", Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}

	crash := errors.New("simulated crash")
	beforeRename = func(string) error { return crash }
	defer func() { beforeRename = nil }()

	err = s.Put("d", k, payload{Name: "new"})
	var se *Error
	if !errors.As(err, &se) || !errors.Is(err, crash) {
		t.Fatalf("crashed Put must return a typed *Error wrapping the cause, got %v", err)
	}

	var out payload
	if err := s.Get("d", k, &out); err != nil {
		t.Fatalf("old object must survive the crash, got %v", err)
	}
	if out.Name != "old" || len(out.Vals) != 1 || out.Vals[0] != 1 {
		t.Fatalf("old object corrupted: %+v", out)
	}
	entries, err := os.ReadDir(filepath.Join(s.Dir(), "d"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("crash left temp debris: %s", e.Name())
		}
	}
}

// TestOrphanTempFileIgnored plants a half-written temp file (what a real
// crash leaves) and checks reads and listings never surface it.
func TestOrphanTempFileIgnored(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("d", "x")
	if err := s.Put("d", k, payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(s.Dir(), "d", ".store-12345")
	if err := os.WriteFile(orphan, []byte(`{"version":1,"key":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("d")
	if err != nil || len(keys) != 1 || keys[0] != k {
		t.Fatalf("orphan temp file leaked into listing: %v, %v", keys, err)
	}
	var out payload
	if err := s.Get("d", k, &out); err != nil || out.Name != "good" {
		t.Fatalf("orphan temp file disturbed reads: %+v, %v", out, err)
	}
}

// TestTransientWriteRetry fails the first rename window with a transient
// error (EINTR) and checks the Put succeeds on retry; a persistent
// transient error exhausts the attempts and surfaces.
func TestTransientWriteRetry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("d", "retry")
	calls := 0
	beforeRename = func(string) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("flaky disk: %w", syscall.EINTR)
		}
		return nil
	}
	defer func() { beforeRename = nil }()
	if err := s.Put("d", k, payload{Name: "v"}); err != nil {
		t.Fatalf("transient failure must be retried, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("want 1 retry (2 attempts), got %d attempts", calls)
	}

	calls = 0
	beforeRename = func(string) error {
		calls++
		return fmt.Errorf("flaky disk: %w", syscall.EINTR)
	}
	err = s.Put("d", NewKey("d", "retry2"), payload{})
	if !errors.Is(err, syscall.EINTR) {
		t.Fatalf("exhausted retries must surface the cause, got %v", err)
	}
	if calls != writeAttempts {
		t.Fatalf("want %d attempts, got %d", writeAttempts, calls)
	}
}
