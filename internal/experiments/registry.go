package experiments

import (
	"context"
	"fmt"
)

// Experiment pairs an identifier with its generator. Run observes ctx:
// cancelling it aborts the experiment mid-figure — in-flight database
// builds, searches and simulations all stop within one worker-pool
// quantum and Run returns ctx.Err().
type Experiment struct {
	ID    string
	Brief string
	Run   func(context.Context) (*Table, error)
}

// Registry lists every reproducible experiment in paper order.
func (e *Env) Registry() []Experiment {
	return []Experiment{
		{"fig2", "AP dynamicity across amount/type/interconnect (§2.2)", e.Fig2},
		{"fig3", "DP-view vs AP-view scheduling inversion (§2.2)", e.Fig3},
		{"fig6", "stage-partition balance at fixed pipeline degree (§3.2)", e.Fig6},
		{"eta", "Sia linear-estimation error and η knob (§2.3)", e.EtaKnob},
		{"fig10", "testbed comparison on Cluster-A/B (§5.2)", e.Fig10},
		{"fidelity", "simulation fidelity (§5.2)", e.Fidelity},
		{"fig11", "week-long throughput time series (§5.3)", e.Fig11},
		{"fig12", "large-scale numerical comparison (§5.3)", e.Fig12},
		{"fig13", "Helios and PAI traces (§5.3)", e.Fig13},
		{"fig14", "Pareto frontier and proxy optimality (§5.4)", e.Fig14},
		{"fig15", "pruned AP search vs Alpa (§5.4)", e.Fig15},
		{"fig16", "disaggregated profiling accuracy and cost (§5.5)", e.Fig16},
		{"ddl", "deadline-aware scheduling (§5.6)", e.Deadline},
		{"fig17", "component ablation (§5.7)", e.Fig17},
		{"fig18", "GPU-time breakdown of GPT-2.6B (§5.7)", e.Fig18},
		{"fig19", "Arena-Sched over lifespan scaling (§5.7)", e.Fig19},
		{"sens", "P and D sensitivity (§5.8)", e.Sensitivity},
		{"overheads", "system overhead analysis (§5.8)", e.Overheads},
		{"design", "planner design-choice ablation (DESIGN.md §4)", e.DesignAblation},
	}
}

// Lookup returns the experiment with the given ID.
func (e *Env) Lookup(id string) (Experiment, error) {
	for _, ex := range e.Registry() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
