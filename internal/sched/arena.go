package sched

import (
	"math"
	"sort"

	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
)

// Objective selects the scheduling goal of the generalized event-driven
// policy (§3.5): throughput maximization (Eq. 5), deadline awareness
// (Eq. 6), or finish-time fairness (Eq. 7).
type Objective string

// Supported objectives.
const (
	ObjThroughput Objective = "throughput"
	ObjDeadline   Objective = "deadline"
	ObjFairness   Objective = "fairness"
)

// ArenaPolicy implements Algorithm 1: priority-based multi-queue
// launching with conditional same-queue preemption and priority
// promotion, two-dimensional (elasticity × heterogeneity) scaling with a
// bounded search depth, and AP-aware performance data from the grid
// profiles. The Disable* switches realize the Fig. 17 ablations.
type ArenaPolicy struct {
	P            int     // priority queue count (§5.8: 3 in practice)
	D            int     // scaling search depth (§5.8: 2–5)
	PromoteAfter float64 // queueing time before priority promotion
	Objective    Objective

	// Ablation switches (§5.7, Fig. 17).
	DisablePlanner  bool // schedule on static-DP performance data
	DisableProfiler bool // fall back to direct multi-GPU profiling
	DisableElastic  bool // pin each job to its requested GPU count
	DisableHetero   bool // pin each job to its requested GPU type
	DisablePruning  bool // deploy with the full AP search

	// Warnf, when non-nil, receives scheduler warnings (currently:
	// rigid-mode jobs dropped because no profiled GPU count can run
	// them). Nil discards warnings, keeping simulation runs quiet; the
	// messages never influence decisions.
	Warnf func(format string, args ...any)

	// refScore switches Assign to the full per-round candidate rescans
	// instead of the incremental score caches (see score.go). Both paths
	// decide identically — the simulator's score parity matrix is the
	// proof — so the flag exists as the testing oracle.
	refScore bool
	// ladders caches per-signature launch candidate lists; ladderKey
	// fingerprints the inputs they were built from.
	ladders   map[launchSig]*ladder
	ladderKey ladderCacheKey
}

// SetReferenceScore implements ReferenceScorer.
func (p *ArenaPolicy) SetReferenceScore(on bool) { p.refScore = on }

// warnf forwards a warning to Warnf when one is installed.
func (p *ArenaPolicy) warnf(format string, args ...any) {
	if p.Warnf != nil {
		p.Warnf(format, args...)
	}
}

// NewArena returns the paper-default configuration.
func NewArena() *ArenaPolicy {
	return &ArenaPolicy{
		P: 3, D: 3,
		PromoteAfter: 2 * 3600,
		Objective:    ObjThroughput,
	}
}

// Name implements Policy.
func (p *ArenaPolicy) Name() string {
	switch {
	case p.DisablePlanner:
		return "arena-w/o-planner"
	case p.DisableProfiler:
		return "arena-w/o-profiler"
	case p.DisableElastic:
		return "arena-w/o-elastic"
	case p.DisableHetero:
		return "arena-w/o-hetero"
	case p.DisablePruning:
		return "arena-w/o-pruning"
	case p.Objective == ObjDeadline:
		return "arena-ddl"
	case p.Objective == ObjFairness:
		return "arena-fair"
	default:
		return "arena"
	}
}

// PerceivedThr implements Policy: Arena's estimates come from the
// profiled grid proxies; the w/o-planner ablation degrades to the static
// DP view (falling back to the AP estimate only when DP is infeasible on
// every resource, mirroring a manually configured plan).
func (p *ArenaPolicy) PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	if p.DisablePlanner {
		// "Assuming jobs are executed with DP" (§5.7): the DP profile
		// where it exists, otherwise the same linear bootstrapped view an
		// SP-aware scheduler would fall back to.
		if t := db.DPThr(w, gpuType, n); t > 0 {
			return t
		}
		return db.SiaEst(w, gpuType, n, 1)
	}
	return db.ArenaEstThr(w, gpuType, n)
}

// ActualThr implements Policy: jobs run the pruned-search plan (§3.6).
func (p *ArenaPolicy) ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	if t := db.ArenaActualThr(w, gpuType, n); t > 0 {
		return t
	}
	// Pruned search found nothing for this grid: fall back to full AP
	// (the runtime degrades gracefully to the backend's own search).
	return db.APThr(w, gpuType, n)
}

// ProfilePrepend implements Policy: single-GPU disaggregated grid
// profiling; the w/o-profiler ablation reverts to direct multi-GPU
// measurement, whose contention with in-flight jobs the paper highlights
// (§5.7) — modeled as a far longer ahead-of-time pass.
func (p *ArenaPolicy) ProfilePrepend(db *perfdb.DB, w model.Workload) float64 {
	if p.DisableProfiler {
		return 6 * db.DPProfileWall(w)
	}
	return db.ArenaProfileWall(w)
}

// DeployOverhead implements Policy: space-pruned AP search (§3.6), or the
// full search under the w/o-pruning ablation.
func (p *ArenaPolicy) DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64 {
	if p.DisablePruning {
		return db.SearchTimeFull(w, gpuType, n)
	}
	if t := db.SearchTimePruned(w, gpuType, n); t > 0 {
		return t
	}
	return db.SearchTimeFull(w, gpuType, n)
}

// freeMap snapshots per-type free capacity for what-if planning.
func freeMap(ctx *Context) map[string]int {
	m := map[string]int{}
	for _, typ := range ctx.Cluster.GPUTypes() {
		m[typ] = ctx.Cluster.FreeGPUs(typ)
	}
	return m
}

// Assign implements Algorithm 1.
func (p *ArenaPolicy) Assign(ctx *Context) Assignment {
	asg := NewAssignment()
	free := freeMap(ctx)
	// Track per-round target sizes of running jobs (after scale ops).
	target := map[string]Alloc{}
	for _, j := range ctx.Running {
		target[j.Trace.ID] = j.Alloc
	}
	depth := 0

	p.promote(ctx)

	// --- Launch phase (LEventHandler, lines 6–16). ---
	queued := append([]*Job(nil), ctx.Queued...)
	sort.SliceStable(queued, func(a, b int) bool {
		if queued[a].CurPriority != queued[b].CurPriority {
			return queued[a].CurPriority < queued[b].CurPriority
		}
		return queued[a].SubmittedAt < queued[b].SubmittedAt
	})
	blockedPrio := p.P + 1
	// The admission window: within one round, a failed launch is a pure
	// function of (signature, free capacity). Free capacity only shrinks
	// while the phase runs — the single exception, a landed launch whose
	// staged victim shrinks moved capacity between types, clears the memo
	// — so jobs repeating an already-failed signature skip the candidate
	// search entirely. Deadline mode scores per-job feasibility (remaining
	// work against the clock), so the memo stays off there.
	var failed map[launchSig]bool
	if !p.refScore && p.Objective != ObjDeadline {
		failed = map[launchSig]bool{}
	}
	if !p.refScore {
		p.ensureLadders(ctx)
	}
	for _, job := range queued {
		if job.CurPriority > blockedPrio {
			// A higher-priority queue is blocked; later queues must wait
			// (Algorithm 1, line 9). Same-queue jobs may still try — the
			// conditional preemption privilege of §3.5.
			break
		}
		if p.Objective == ObjDeadline && p.hopeless(ctx, job) {
			asg.Drop = append(asg.Drop, job.Trace.ID)
			continue
		}
		if p.DisableElastic && len(p.launchCounts(ctx, job)) == 0 {
			// Rigid mode with a request no profiled size can serve on any
			// allowed type: drop the job instead of letting it queue
			// forever and head-of-line-block its priority queue. (Elastic
			// counts are never empty, so only rigid mode can drop here.)
			p.warnf("sched: dropping rigid job %s: no feasible GPU count for request of %d (type %s)",
				job.Trace.ID, job.Trace.ReqGPUs, job.Trace.ReqType)
			asg.Drop = append(asg.Drop, job.Trace.ID)
			continue
		}
		if failed != nil && failed[p.sigOf(job)] {
			// Provably identical failure: a same-signature launch already
			// ran the full search this round and nothing it depends on has
			// grown since. The skip must still lower the blocking bar —
			// Algorithm 1 line 9 blocks on the failed job's priority, not
			// on whether its search was re-run.
			if job.CurPriority < blockedPrio {
				blockedPrio = job.CurPriority
			}
			continue
		}
		depth = 0 // the search depth bounds each launch event (Alg. 1 l.13)
		ok, shrank := p.tryLaunch(ctx, job, free, target, &depth, &asg)
		switch {
		case !ok:
			if failed != nil {
				failed[p.sigOf(job)] = true
			}
			if job.CurPriority < blockedPrio {
				blockedPrio = job.CurPriority
			}
		case shrank && failed != nil:
			// Victim shrinks landed: capacity may have moved onto a type a
			// memoized failure found full. Every memo entry is stale.
			clear(failed)
		}
	}

	// --- Straggler-routing phase (fault-aware extension). ---
	p.routeStragglers(ctx, free, &asg)

	// --- Scale-up phase (InFlightHandler, lines 17–20). ---
	depth = 0
	p.scaleUp(ctx, free, target, &depth, &asg)
	return asg
}

// routeStragglers migrates running jobs pinned to degraded nodes onto
// healthy capacity of the same shape. A migration keeps the parallelism
// plan (no new search) but pays checkpoint-resume, so it is taken only
// under the same promising-job rule as scaling: the move must pay for
// itself before the job would have finished at its degraded pace.
func (p *ArenaPolicy) routeStragglers(ctx *Context, free map[string]int, asg *Assignment) {
	const slowCut = 0.9 // ignore degradation the resume overhead would dwarf
	running := append([]*Job(nil), ctx.Running...)
	sort.SliceStable(running, func(a, b int) bool {
		return running[a].Trace.ID < running[b].Trace.ID
	})
	for _, j := range running {
		f := j.SlowFactor
		if f <= 0 || f >= slowCut {
			continue
		}
		if j.BusyUntil > ctx.Now {
			continue // mid-reconfiguration; moving again would thrash
		}
		if _, placed := asg.Place[j.Trace.ID]; placed {
			continue // this round already rescales it
		}
		cur := j.Alloc
		// The move frees cur.N and takes cur.N elsewhere: require that
		// much untouched free capacity of the type, on fully healthy
		// nodes, so the migration cannot land back on the straggler.
		if free[cur.GPUType] < cur.N || !ctx.Cluster.CanAllocHealthy(cur.GPUType, cur.N) {
			continue
		}
		thr := p.PerceivedThr(ctx.DB, j.Workload(), cur.GPUType, cur.N)
		if thr <= 0 {
			continue
		}
		tStay := j.RemainingSamples / (thr * f)
		tMove := j.RemainingSamples/thr + CheckpointResume
		if tMove >= tStay {
			continue
		}
		asg.Migrate = append(asg.Migrate, j.Trace.ID)
	}
}

// promote raises the live priority of long-queued jobs (§3.5: "a job
// priority λ is promoted to λ−1 after prolonged queuing").
func (p *ArenaPolicy) promote(ctx *Context) {
	for _, j := range ctx.Queued {
		waited := ctx.Now - j.SubmittedAt
		levels := 0
		if p.PromoteAfter > 0 {
			levels = int(waited / p.PromoteAfter)
		}
		cur := j.Trace.Priority - levels
		if cur < 1 {
			cur = 1
		}
		j.CurPriority = cur
	}
}

// allowedTypes respects the heterogeneity ablation.
func (p *ArenaPolicy) allowedTypes(ctx *Context, job *Job) []string {
	if p.DisableHetero {
		return []string{job.Trace.ReqType}
	}
	return ctx.Cluster.GPUTypes()
}

// allowedCounts respects the elasticity ablation. Without elasticity the
// request is pinned, but snapped up onto the profiled power-of-two grid
// and still raised to the smallest feasible size beyond it — rigid
// schedulers pad requests to the sizes they can actually place rather
// than starving them. Returns nil when no profiled size up to MaxPerJob
// is feasible on any allowed type; the launch loop drops such jobs with
// a warning. (Before the snap, a non-power-of-two request — e.g. 3 —
// probed 3→6→12 entirely off the profiled grid, saw zero perceived
// throughput everywhere, and queued forever while head-of-line-blocking
// its priority queue, silently diverging the w/o-elastic ablation from
// Fig. 17 on such traces.)
func (p *ArenaPolicy) allowedCounts(ctx *Context, job *Job) []int {
	if p.DisableElastic {
		for n := ceilPow2(job.Trace.ReqGPUs); n <= ctx.MaxPerJob; n *= 2 {
			for _, typ := range p.allowedTypes(ctx, job) {
				if p.PerceivedThr(ctx.DB, job.Workload(), typ, n) > 0 {
					return []int{n}
				}
			}
		}
		return nil
	}
	var out []int
	for n := 1; n <= ctx.MaxPerJob; n *= 2 {
		out = append(out, n)
	}
	return out
}

// launchCounts is allowedCounts through the per-signature ladder cache;
// the reference path recomputes it each time.
func (p *ArenaPolicy) launchCounts(ctx *Context, job *Job) []int {
	if p.refScore {
		return p.allowedCounts(ctx, job)
	}
	return p.launchLadder(ctx, job).counts
}

// ceilPow2 returns the smallest power of two ≥ n (minimum 1) — the
// granularity the performance database profiles grids at.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// meetsDeadline checks Eq. 6 for a candidate throughput.
func (p *ArenaPolicy) meetsDeadline(ctx *Context, job *Job, thr float64) bool {
	if p.Objective != ObjDeadline || job.Trace.Deadline <= 0 {
		return true
	}
	finish := ctx.Now + job.RemainingSamples/thr
	return finish <= job.SubmittedAt+job.Trace.Deadline
}

// hopeless reports that no allocation (even ignoring current occupancy)
// can meet the job's deadline — such jobs are dropped (§5.6).
func (p *ArenaPolicy) hopeless(ctx *Context, job *Job) bool {
	if job.Trace.Deadline <= 0 {
		return false
	}
	for _, typ := range p.allowedTypes(ctx, job) {
		for _, n := range p.allowedCounts(ctx, job) {
			thr := p.PerceivedThr(ctx.DB, job.Workload(), typ, n)
			if thr > 0 && p.meetsDeadline(ctx, job, thr) {
				return false
			}
		}
	}
	return true
}

// tryLaunch finds the best allocation for a queued job under the
// remaining free capacity, invoking bounded scale-down of in-flight jobs
// when the cluster is full (GetOptimalScaleDown). Victim shrinks are
// speculative: they exist only to free capacity for this launch, so they
// are staged and rolled back — free and target restored, the asg.Place
// entries returned to their pre-call state — if bestUnderFree still
// fails at the depth bound. (They used to be applied unconditionally,
// so a launch that never landed still cost every victim half its GPUs
// for nothing.)
//
// shrank reports that the launch landed *and* staged victim shrinks with
// it — the one case where free capacity can grow on a type other than
// the launch's own, which invalidates the launch phase's failure memo.
// A failed call reverts completely, so it never sets shrank.
func (p *ArenaPolicy) tryLaunch(ctx *Context, job *Job, free map[string]int, target map[string]Alloc, depth *int, asg *Assignment) (ok, shrank bool) {
	if alloc, ok := p.bestUnderFree(ctx, job, free); ok {
		asg.Place[job.Trace.ID] = alloc
		target[job.Trace.ID] = alloc
		free[alloc.GPUType] -= alloc.N
		return true, false
	}
	// Cluster full: iteratively scale down the in-flight job that loses
	// the least throughput per freed GPU, up to the search depth.
	type shrink struct {
		victim    *Job
		old       Alloc // target before this shrink
		prevPlace Alloc // asg.Place entry before this shrink, if any
		hadPlace  bool  // (an earlier launch may have already rescaled it)
	}
	var staged []shrink
	for *depth < p.D {
		victim, newAlloc, ok := p.optimalScaleDown(ctx, free, target)
		if !ok {
			break
		}
		*depth++
		old := target[victim.Trace.ID]
		prev, had := asg.Place[victim.Trace.ID]
		staged = append(staged, shrink{victim: victim, old: old, prevPlace: prev, hadPlace: had})
		target[victim.Trace.ID] = newAlloc
		asg.Place[victim.Trace.ID] = newAlloc
		free[old.GPUType] += old.N
		free[newAlloc.GPUType] -= newAlloc.N
		if alloc, ok := p.bestUnderFree(ctx, job, free); ok {
			asg.Place[job.Trace.ID] = alloc
			target[job.Trace.ID] = alloc
			free[alloc.GPUType] -= alloc.N
			return true, true
		}
	}
	// The enabling launch never landed: revert the staged shrinks in
	// reverse order so the round's capacity and targets are exactly as if
	// the search had not run.
	for i := len(staged) - 1; i >= 0; i-- {
		s := staged[i]
		cur := target[s.victim.Trace.ID]
		free[cur.GPUType] += cur.N
		free[s.old.GPUType] -= s.old.N
		target[s.victim.Trace.ID] = s.old
		if s.hadPlace {
			asg.Place[s.victim.Trace.ID] = s.prevPlace
		} else {
			delete(asg.Place, s.victim.Trace.ID)
		}
	}
	return false, false
}

// bestUnderFree picks the launch allocation maximizing Eq. 5's cluster
// objective: admitting a queued job adds its full throughput, so the
// launch size stops at the efficiency knee — growth beyond it is left to
// the scale-up phase, which weighs it against admitting further jobs.
// Deadline mode additionally requires Eq. 6.
func (p *ArenaPolicy) bestUnderFree(ctx *Context, job *Job, free map[string]int) (Alloc, bool) {
	if !p.refScore {
		// Fast path: iterate the signature's cached ladder — the same
		// survivors the loops below visit, in the same order, with only
		// the per-round checks (free capacity, deadline) left live.
		var best Alloc
		var bestDensity float64
		found := false
		for _, c := range p.launchLadder(ctx, job).cands {
			if c.n > free[c.typ] || !p.meetsDeadline(ctx, job, c.thr) {
				continue
			}
			density := c.thr / float64(c.n)
			if !found || density > bestDensity {
				best, bestDensity, found = Alloc{GPUType: c.typ, N: c.n}, density, true
			}
		}
		return best, found
	}
	var best Alloc
	var bestDensity float64
	found := false
	for _, typ := range p.allowedTypes(ctx, job) {
		var prevThr float64
		for _, n := range p.allowedCounts(ctx, job) {
			thr := p.PerceivedThr(ctx.DB, job.Workload(), typ, n)
			if thr <= 0 {
				continue
			}
			// Knee rule: stop growing on this type once doubling yields
			// under 30% more throughput (diminishing returns, §2.2).
			if prevThr > 0 && thr < prevThr*1.3 {
				break
			}
			prevThr = thr
			if n > free[typ] || !p.meetsDeadline(ctx, job, thr) {
				continue
			}
			density := thr / float64(n)
			if !found || density > bestDensity {
				best, bestDensity, found = Alloc{GPUType: typ, N: n}, density, true
			}
		}
	}
	return best, found
}

// optimalScaleDown locates the running job whose halving frees GPUs at
// the lowest throughput cost while staying executable (§3.5: "Arena
// scales down jobs with excessive resources but limited performance").
func (p *ArenaPolicy) optimalScaleDown(ctx *Context, free map[string]int, target map[string]Alloc) (*Job, Alloc, bool) {
	var bestJob *Job
	var bestAlloc Alloc
	bestCost := math.MaxFloat64
	for _, j := range ctx.Running {
		if p.DisableElastic {
			continue
		}
		cur := target[j.Trace.ID]
		if cur.N < 2 {
			continue
		}
		half := cur.N / 2
		thrCur := p.PerceivedThr(ctx.DB, j.Workload(), cur.GPUType, cur.N)
		thrHalf := p.PerceivedThr(ctx.DB, j.Workload(), cur.GPUType, half)
		if thrHalf <= 0 { // would become non-executable: forbidden (§3.5)
			continue
		}
		if !p.meetsDeadline(ctx, j, thrHalf) {
			continue
		}
		cost := (thrCur - thrHalf) / float64(cur.N-half)
		if cost < bestCost {
			bestJob, bestAlloc, bestCost = j, Alloc{GPUType: cur.GPUType, N: half}, cost
		}
	}
	if bestJob == nil {
		return nil, Alloc{}, false
	}
	return bestJob, bestAlloc, true
}

// scaleUp gives idle GPUs to the in-flight jobs with the best marginal
// gain (GetOptimalScaleUp), within the remaining search depth. Under the
// fairness objective the marginal gain is weighted by remaining work, so
// the laggard jobs scale first (Eq. 7's min-max finish time).
func (p *ArenaPolicy) scaleUp(ctx *Context, free map[string]int, target map[string]Alloc, depth *int, asg *Assignment) {
	if p.DisableElastic {
		return
	}
	jobs := map[string]*Job{}
	for _, j := range ctx.Running {
		jobs[j.Trace.ID] = j
	}
	for _, j := range ctx.Queued {
		if _, ok := target[j.Trace.ID]; ok {
			jobs[j.Trace.ID] = j // launched this round
		}
	}
	ids := make([]string, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if p.refScore {
		// Reference: rescan every candidate per selection.
		for *depth < p.D {
			var bestJob *Job
			var bestAlloc Alloc
			bestGain := 0.0
			for _, id := range ids {
				j := jobs[id]
				cur := target[id]
				if free[cur.GPUType] < cur.N { // need cur.N more GPUs
					continue
				}
				gain, ok := p.scaleGain(ctx, j, cur)
				if !ok {
					continue
				}
				if gain > bestGain {
					bestJob, bestAlloc, bestGain = j, Alloc{GPUType: cur.GPUType, N: cur.N * 2}, gain
				}
			}
			if bestJob == nil {
				return
			}
			*depth++
			old := target[bestJob.Trace.ID]
			target[bestJob.Trace.ID] = bestAlloc
			asg.Place[bestJob.Trace.ID] = bestAlloc
			free[old.GPUType] -= bestAlloc.N - old.N
		}
		return
	}

	// Fast path: a candidate's gain moves only when that candidate is
	// doubled, so score everything once into a max-gain heap and re-score
	// just the selected entry after each doubling. Free capacity only
	// shrinks in this phase, so a popped candidate that no longer fits can
	// be discarded for good — the rescan above would skip it every
	// remaining iteration too.
	h := NewGainHeap(len(ids))
	for i, id := range ids {
		if gain, ok := p.scaleGain(ctx, jobs[id], target[id]); ok {
			h.Update(i, gain)
		}
	}
	for *depth < p.D {
		sel := -1
		for {
			i, ok := h.Pop()
			if !ok {
				return
			}
			cur := target[ids[i]]
			if free[cur.GPUType] < cur.N {
				continue // permanently infeasible: free never grows here
			}
			sel = i
			break
		}
		*depth++
		j := jobs[ids[sel]]
		old := target[ids[sel]]
		next := Alloc{GPUType: old.GPUType, N: old.N * 2}
		target[ids[sel]] = next
		asg.Place[ids[sel]] = next
		free[old.GPUType] -= next.N - old.N
		// Only the doubled job's gain is dirtied; re-score it alone.
		if gain, ok := p.scaleGain(ctx, j, next); ok {
			h.Update(sel, gain)
		}
	}
}

// scaleGain scores one scale-up candidate at its current target size:
// the marginal perceived gain per held GPU of doubling it, with the
// static eligibility gates (cap, reconfiguration cooldown, the 1.02
// meaningful-gain floor, the §3.5 promising-job rule and the fairness
// weighting) applied. ok=false marks an ineligible candidate. The free-
// capacity check is deliberately not here: it is the only input that
// moves between selections without the candidate itself being doubled.
func (p *ArenaPolicy) scaleGain(ctx *Context, j *Job, cur Alloc) (float64, bool) {
	if cur.IsZero() || cur.N*2 > ctx.MaxPerJob {
		return 0, false
	}
	// Rescaling a reconfiguring job again would thrash; fresh
	// launches (still queued) are free to size up.
	if j.Running() && j.BusyUntil > ctx.Now {
		return 0, false
	}
	double := cur.N * 2
	thrCur := p.PerceivedThr(ctx.DB, j.Workload(), cur.GPUType, cur.N)
	thrNew := p.PerceivedThr(ctx.DB, j.Workload(), cur.GPUType, double)
	if thrNew <= thrCur*1.02 {
		return 0, false // no meaningful gain
	}
	// Promising jobs only (§3.5): the restart (checkpoint-resume +
	// search tail) must pay for itself before the job finishes.
	if j.Running() {
		restart := CheckpointResume + 0.2*p.DeployOverhead(ctx.DB, j.Workload(), cur.GPUType, double)
		tCur := j.RemainingSamples / thrCur
		tNew := j.RemainingSamples/thrNew + restart
		if tNew >= tCur {
			return 0, false
		}
	}
	gain := (thrNew - thrCur) / float64(cur.N)
	if p.Objective == ObjFairness {
		gain *= j.RemainingSamples / math.Max(thrCur, 1e-9)
	}
	return gain, true
}
