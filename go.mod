module github.com/sjtu-epcc/arena

go 1.22
