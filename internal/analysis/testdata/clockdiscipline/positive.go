package fixture

import "time"

// Direct clock reads in scheduling code: every banned entry point, and
// through an alias in aliased.go.
func deadline() time.Time {
	return time.Now().Add(5 * time.Second) // want `time.Now in scheduling code: take time from internal/clock`
}

func pause() {
	time.Sleep(time.Second) // want `time.Sleep in scheduling code`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in scheduling code`
}

func wait(d time.Duration) <-chan time.Time {
	return time.After(d) // want `time.After in scheduling code`
}

func ticker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `time.NewTicker in scheduling code`
}
