// Command arena-plan runs Arena's execution-free parallelism planner on
// one model and resource, printing the per-grid proxy plans and Pareto
// frontiers — the analogue of the paper artifact's crius_cell_profile.py
// (§A.4.3; "cell" is the artifact's name for a grid).
//
// Usage:
//
//	arena-plan -model GPT-1.3B -batch 128 -gpu A40 -n 4
//	arena-plan -model WRes-1B -batch 256 -gpu A40 -n 4 -s 2 -frontier
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/planner"
)

func main() {
	var (
		modelName = flag.String("model", "GPT-1.3B", "model variant (see -models)")
		batch     = flag.Int("batch", 128, "global batch size")
		gpu       = flag.String("gpu", "A40", "GPU type")
		n         = flag.Int("n", 4, "allocated GPU count (power of two)")
		s         = flag.Int("s", 0, "pipeline degree; 0 = enumerate all grids")
		frontier  = flag.Bool("frontier", false, "print the Pareto frontier per grid")
		measure   = flag.Bool("measure", true, "measure proxy plans on the simulated testbed")
		seed      = flag.Uint64("seed", 42, "determinism seed")
		models    = flag.Bool("models", false, "list model variants and exit")
		dbCache   = flag.String("db-cache", "", "PerfDB JSON snapshot path: print the searched AP optimum vs Arena's deployed plan for this point, building (and saving) the database only when the snapshot is missing or stale")
	)
	flag.Parse()

	if *models {
		for _, name := range model.Names() {
			fmt.Println(name)
		}
		return
	}

	g, err := model.BuildClustered(*modelName)
	if err != nil {
		fatal(err)
	}
	spec, err := hw.Lookup(*gpu)
	if err != nil {
		fatal(err)
	}
	w := model.Workload{Model: *modelName, GlobalBatch: *batch}
	eng := exec.NewEngine(*seed)
	pl := planner.New()

	degrees := core.PipelineDegrees(*n, len(g.Ops))
	if *s > 0 {
		degrees = []int{*s}
	}
	fmt.Printf("planning %s (batch %d, %.2fB params) on %dx%s\n\n",
		*modelName, *batch, g.Params()/1e9, *n, *gpu)

	for _, deg := range degrees {
		grid := core.Grid{Workload: w, GPUType: *gpu, N: *n, S: deg}
		gp, err := pl.PlanGrid(g, grid)
		if err != nil {
			fatal(err)
		}
		if !gp.Feasible {
			fmt.Printf("grid s=%d: infeasible (no partition fits %s memory)\n", deg, *gpu)
			continue
		}
		fmt.Printf("grid s=%d: proxy %-24s b_comp=%.3f l_comm=%.4fs  (%d partitions, frontier %d)\n",
			deg, gp.Proxy.Plan, gp.Proxy.BComp, gp.Proxy.LComm,
			gp.CandidatesEvaluated, len(gp.Frontier))
		if *measure {
			res, err := eng.Evaluate(g, gp.Proxy.Plan, spec, *batch)
			if err == nil && res.Fits {
				fmt.Printf("          measured: %.3fs/iter, %.1f samples/s, peak mem %.1f GB\n",
					res.IterTime, res.Throughput, res.MaxMem/hw.GiB)
			}
		}
		if *frontier {
			for i, c := range gp.Frontier {
				fmt.Printf("          frontier[%d]: %-24s b_comp=%.3f l_comm=%.4fs ops=%v gpus=%v\n",
					i, c.Plan, c.BComp, c.LComm, c.OpsPerStage, c.GPUsPerStage)
			}
		}
	}

	if *dbCache != "" {
		db, loaded, err := perfdb.BuildOrLoad(eng, perfdb.Options{
			Seed: *seed, GPUTypes: []string{*gpu}, MaxN: *n,
			Workloads: []model.Workload{w},
		}, *dbCache)
		if err != nil {
			if db == nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "arena-plan: warning: %v (continuing with the built database)\n", err)
		}
		src := "searched"
		if loaded {
			src = "snapshot"
		}
		if e, ok := db.Entry(w, *gpu, *n); ok {
			fmt.Printf("\nperfdb (%s): AP optimum %-12s %8.1f samples/s (full search %.0fs)\n",
				src, e.APPlan, e.APThr, e.SearchTimeFull)
			fmt.Printf("             Arena       %-12s %8.1f samples/s (pruned search %.0fs, est %.1f)\n",
				e.ArenaPlan, e.ArenaActualThr, e.SearchTimePruned, e.ArenaEstThr)
		} else {
			fmt.Printf("\nperfdb (%s): no entry for n=%d (the database holds power-of-two GPU counts only)\n", src, *n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arena-plan:", err)
	os.Exit(1)
}
