package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sjtu-epcc/arena/internal/clock"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

var (
	dbOnce sync.Once
	testDB *perfdb.DB
	dbErr  error
)

func db(t *testing.T) *perfdb.DB {
	t.Helper()
	dbOnce.Do(func() {
		testDB, dbErr = perfdb.Build(exec.NewEngine(42), perfdb.Options{
			GPUTypes: []string{"A40", "A10"},
			MaxN:     16,
			Workloads: []model.Workload{
				{Model: "WRes-1B", GlobalBatch: 256},
				{Model: "GPT-1.3B", GlobalBatch: 128},
			},
		})
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return testDB
}

func testJobs(t *testing.T, n int) []trace.Job {
	t.Helper()
	jobs, err := trace.Generate(trace.Config{
		Kind: trace.Philly, Duration: 3 * 3600, NumJobs: n, Seed: 7,
		GPUTypes: []string{"A40", "A10"}, MaxGPUs: 16,
		Workloads: []model.Workload{
			{Model: "WRes-1B", GlobalBatch: 256},
			{Model: "GPT-1.3B", GlobalBatch: 128},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// newServer opens a store in dir and builds a server on it; the store is
// closed with the test.
func newServer(t *testing.T, dir string, p sched.Policy) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Spec: hw.ClusterA(), Policy: p, DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st, Clock: clock.NewVirtual(),
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return srv, st
}

// driveScript runs a fixed submit/cancel/round script against a server
// from its current round through round `until` (exclusive), returning
// the digest of every assignment fired. The script is a function of the
// round index, so an interrupted server resumes it mid-way.
func driveScript(t *testing.T, srv *Server, jobs []trace.Job, until int) []string {
	t.Helper()
	var digests []string
	for srv.NextRound() < until {
		round := srv.NextRound()
		// Submission schedule: ten jobs up front, ten before round 4,
		// ten before round 8 — arrivals interleaved with scheduling, the
		// daemon's actual regime.
		for _, batch := range []struct{ round, lo, hi int }{{0, 0, 10}, {4, 10, 20}, {8, 20, 30}} {
			if round == batch.round {
				for _, tj := range jobs[batch.lo:batch.hi] {
					if _, err := srv.Submit(tj); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		// One cancellation mid-stream.
		if round == 6 {
			if err := srv.Cancel(jobs[12].ID); err != nil {
				t.Fatal(err)
			}
		}
		asg, err := srv.Step()
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, jsonDigest(asg))
	}
	return digests
}

func TestCrashRecoveryBitIdentical(t *testing.T) {
	jobs := testJobs(t, 30)
	const crashRound, lastRound = 11, 20

	// Reference: one uninterrupted run.
	ref, refStore := newServer(t, t.TempDir(), sched.NewArena())
	defer refStore.Close()
	defer ref.Close()
	want := driveScript(t, ref, jobs, lastRound)

	// Victim: same script, but the process dies mid-round at crashRound —
	// after the round committed in memory, before it reached the journal.
	// That is the widest possible recovery window: the journal knows
	// nothing of the round, and restart must re-derive it.
	dir := t.TempDir()
	victim, victimStore := newServer(t, dir, sched.NewArena())
	got := driveScript(t, victim, jobs, crashRound)

	crashed := errors.New("simulated crash")
	crashBeforeCommit = func() error { return crashed }
	_, err := victim.Step()
	crashBeforeCommit = nil
	if !errors.Is(err, crashed) {
		t.Fatalf("crash hook: %v", err)
	}
	// The dead process's in-memory state is gone; only journal + lock
	// release survive a real crash.
	victim.Close()
	victimStore.Close()

	// Restart: replay the journal, resume the script, finish the run.
	revived, revivedStore := newServer(t, dir, sched.NewArena())
	defer revivedStore.Close()
	defer revived.Close()
	if revived.NextRound() != crashRound {
		t.Fatalf("revived server resumes at round %d, want %d (the crashed round was never journaled)", revived.NextRound(), crashRound)
	}
	got = append(got, driveScript(t, revived, jobs, lastRound)...)

	if len(got) != len(want) {
		t.Fatalf("interrupted run fired %d rounds, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: assignment digest %s after crash+recovery, want %s (scheduling diverged)", i, got[i], want[i])
		}
	}
}

func TestRecoveredStateMatchesJobLevel(t *testing.T) {
	jobs := testJobs(t, 30)
	dir := t.TempDir()
	srv, st := newServer(t, dir, sched.NewArena())
	driveScript(t, srv, jobs, 10)
	wantJobs := srv.Jobs()
	wantStats := srv.Stats()
	srv.Close()
	st.Close()

	revived, st2 := newServer(t, dir, sched.NewArena())
	defer st2.Close()
	defer revived.Close()
	gotJobs := revived.Jobs()
	gotStats := revived.Stats()
	// Clock reading differs across instances; everything else must not.
	wantStats.Now, gotStats.Now = 0, 0
	if gotStats != wantStats {
		t.Fatalf("recovered stats %+v, want %+v", gotStats, wantStats)
	}
	if len(gotJobs) != len(wantJobs) {
		t.Fatalf("recovered %d jobs, want %d", len(gotJobs), len(wantJobs))
	}
	for i := range wantJobs {
		if gotJobs[i] != wantJobs[i] {
			t.Fatalf("job %d recovered as %+v, want %+v", i, gotJobs[i], wantJobs[i])
		}
	}
}

// journalFile is the on-disk journal behind a server store.
func journalFile(dir string) string {
	return filepath.Join(dir, "journal", "server.log")
}

func TestServerRefusesTamperedJournal(t *testing.T) {
	jobs := testJobs(t, 30)
	dir := t.TempDir()
	srv, st := newServer(t, dir, sched.NewArena())
	driveScript(t, srv, jobs, 5)
	srv.Close()
	st.Close()

	data, err := os.ReadFile(journalFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"kind":"round"`), []byte(`"kind":"rownd"`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper had no effect")
	}
	if err := os.WriteFile(journalFile(dir), tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, err = New(Config{Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st2, Clock: clock.NewVirtual()})
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("tampered journal started with %v, want ErrCorrupt", err)
	}
}

func TestServerRefusesTruncatedJournal(t *testing.T) {
	jobs := testJobs(t, 30)
	dir := t.TempDir()
	srv, st := newServer(t, dir, sched.NewArena())
	driveScript(t, srv, jobs, 5)
	srv.Close()
	st.Close()

	data, err := os.ReadFile(journalFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalFile(dir), data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, err = New(Config{Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st2, Clock: clock.NewVirtual()})
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated journal started with %v, want ErrCorrupt", err)
	}
}

func TestServerRefusesConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	srv, st := newServer(t, dir, sched.NewArena())
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, err = New(Config{Spec: hw.ClusterA(), Policy: policy.NewFCFS(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st2, Clock: clock.NewVirtual()})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("policy switch started with %v, want ErrConfig", err)
	}
}

func TestServerRefusesDivergentDigest(t *testing.T) {
	// A journal that frames correctly but records a decision this binary
	// does not reproduce: built by hand through the store API.
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := st.OpenJournal("server")
	if err != nil {
		t.Fatal(err)
	}
	cfgRec := record{Kind: kindConfig, Policy: sched.NewArena().Name(),
		RoundSeconds: 300, Seed: 1, Cluster: jsonDigest(hw.ClusterA())}
	if err := j.Append(cfgRec); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(record{Kind: kindRound, Round: 0, Now: 0, Digest: "deadbeefdeadbeef"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, err = New(Config{Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st2, Clock: clock.NewVirtual()})
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("divergent digest started with %v, want ErrReplay", err)
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewStepped()
	srv, err := New(Config{Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()

	// Release two rounds and wait for them to commit.
	waitRound := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for srv.NextRound() < n {
			if time.Now().After(deadline) {
				t.Fatalf("round %d never fired", n-1)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRound(1) // round 0 fires at t=0
	clk.Set(300)
	waitRound(2)

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Both rounds were journaled before Run returned (flush-on-shutdown).
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2, err := New(Config{Spec: hw.ClusterA(), Policy: sched.NewArena(), DB: db(t),
		RoundSeconds: 300, Seed: 1, Store: st2, Clock: clock.NewVirtual()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.NextRound() != 2 {
		t.Fatalf("journal holds %d rounds, want 2", srv2.NextRound())
	}

	// No goroutines left behind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before Run, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPAPI(t *testing.T) {
	srv, st := newServer(t, t.TempDir(), policy.NewFCFS())
	defer st.Close()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Submit.
	resp, body := post(`{"ID":"j1","Workload":{"Model":"WRes-1B","GlobalBatch":256},"Iterations":2000,"ReqGPUs":2,"ReqType":"A40","Priority":1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var jv JobView
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.ID != "j1" || jv.State != string(sched.StateQueued) {
		t.Fatalf("submit echoed %+v", jv)
	}

	// Generated IDs.
	resp, body = post(`{"Workload":{"Model":"WRes-1B","GlobalBatch":256},"Iterations":2000}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit without ID: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &jv)
	if jv.ID == "" || jv.ID == "j1" {
		t.Fatalf("generated ID %q", jv.ID)
	}

	// Duplicate → 409; unknown workload → 400; garbage → 400.
	if resp, _ := post(`{"ID":"j1","Workload":{"Model":"WRes-1B","GlobalBatch":256},"Iterations":1}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"ID":"jx","Workload":{"Model":"NoSuchModel","GlobalBatch":1},"Iterations":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown workload: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"ID":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp.StatusCode)
	}

	// A round launches the FCFS job.
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	resp, body = get("/v1/jobs/j1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job: %d", resp.StatusCode)
	}
	json.Unmarshal(body, &jv)
	if jv.State != string(sched.StateRunning) || jv.GPUs == 0 {
		t.Fatalf("after one round, j1 = %+v", jv)
	}
	if resp, _ = get("/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown job: %d", resp.StatusCode)
	}

	// List.
	resp, body = get("/v1/jobs")
	var list []JobView
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list returned %d jobs", len(list))
	}

	// Cancel applies at the next round.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	if _, err := srv.Step(); err != nil {
		t.Fatal(err)
	}
	resp, body = get("/v1/jobs/j1")
	json.Unmarshal(body, &jv)
	if jv.State != string(sched.StateDropped) {
		t.Fatalf("after cancel round, j1 = %+v", jv)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j1", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of done job: %d", resp.StatusCode)
	}

	// Stats and metrics.
	resp, body = get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var sv StatsView
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Rounds != 2 || sv.Dropped != 1 || sv.Policy == "" {
		t.Fatalf("stats = %+v", sv)
	}
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "arena_rounds_total 2") {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if resp, _ = get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestSubmitStampsClockTime(t *testing.T) {
	srv, st := newServer(t, t.TempDir(), policy.NewFCFS())
	defer st.Close()
	defer srv.Close()
	// Advance the run timeline by stepping two rounds (nominal instants 0
	// and 300), then submit without a SubmitTime: the job must be stamped
	// with the timeline's current instant, not zero.
	srv.Step()
	srv.Step()
	tj, err := srv.Submit(trace.Job{Workload: model.Workload{Model: "WRes-1B", GlobalBatch: 256}, Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tj.SubmitTime != 300 {
		t.Fatalf("SubmitTime stamped %v, want 300", tj.SubmitTime)
	}
}
