package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenLocksOutSecondProcess(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir)

	// flock follows the open file description, so a second Open — even in
	// the same process — models a second process exactly.
	_, err := Open(dir)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open returned %v, want ErrLocked", err)
	}
	var serr *Error
	if !errors.As(err, &serr) || serr.Op != "open" {
		t.Fatalf("second Open error %v is not a typed store *Error", err)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
}

type jrec struct {
	Kind string  `json:"kind"`
	At   float64 `json:"at"`
}

// journalPath returns the on-disk file behind a named journal.
func journalPath(s *Store, name string) string {
	return filepath.Join(s.Dir(), "journal", name+".log")
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()

	j, entries, err := s.OpenJournal("rounds")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d entries", len(entries))
	}
	want := []jrec{{"submit", 0}, {"round", 300}, {"round", 600}}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", j.Len(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := s.OpenJournal("rounds")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != len(want) {
		t.Fatalf("reopened journal has %d entries, want %d", len(entries), len(want))
	}
	for i, raw := range entries {
		var got jrec
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want[i])
		}
	}
	// Appends continue the sequence after a reopen.
	if err := j2.Append(jrec{"round", 900}); err != nil {
		t.Fatal(err)
	}
	if j2.Len() != len(want)+1 {
		t.Fatalf("Len after reopen+append = %d", j2.Len())
	}
}

// corruptJournal writes three valid records then mangles the file via fn.
func corruptJournal(t *testing.T, fn func(data []byte) []byte) error {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	j, _, err := s.OpenJournal("rounds")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(jrec{"round", float64(i) * 300}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := journalPath(s, "rounds")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, _, err := s.OpenJournal("rounds")
	if err == nil {
		j2.Close()
	}
	return err
}

func TestJournalTruncatedTailRefused(t *testing.T) {
	err := corruptJournal(t, func(data []byte) []byte {
		return data[:len(data)-10] // tear the last record mid-frame
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated journal opened with %v, want ErrCorrupt", err)
	}
}

func TestJournalTamperedPayloadRefused(t *testing.T) {
	err := corruptJournal(t, func(data []byte) []byte {
		return []byte(strings.Replace(string(data), `"at":300`, `"at":301`, 1))
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered journal opened with %v, want ErrCorrupt", err)
	}
}

func TestJournalSplicedSequenceRefused(t *testing.T) {
	err := corruptJournal(t, func(data []byte) []byte {
		// Drop the middle record: checksums still pass, sequence does not.
		lines := strings.SplitAfter(string(data), "\n")
		return []byte(lines[0] + lines[2])
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("spliced journal opened with %v, want ErrCorrupt", err)
	}
}

func TestJournalVersionSkewRefused(t *testing.T) {
	err := corruptJournal(t, func(data []byte) []byte {
		return []byte(strings.ReplaceAll(string(data), `{"version":1,`, `{"version":99,`))
	})
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("version-skewed journal opened with %v, want ErrSchema", err)
	}
}

func TestJournalRejectsBadName(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	for _, name := range []string{"", "UPPER", "../escape", "a/b"} {
		if _, _, err := s.OpenJournal(name); err == nil {
			t.Fatalf("OpenJournal(%q) succeeded", name)
		}
	}
}
