package model

import (
	"fmt"
	"sort"
)

// DefaultClusterSize is the operator-cluster count used throughout the
// paper's pipeline: operators are pre-clustered to O = 16 groups to control
// problem size (§3.3, footnote 2, following Alpa).
const DefaultClusterSize = 16

// Build constructs the fine-grained operator graph for any model variant
// by name ("GPT-1.3B", "MoE-2.4B", "WRes-1B", ...).
func Build(name string) (*Graph, error) {
	if c, err := GPTConfigFor(name); err == nil {
		return c.Build(), nil
	}
	if c, err := MoEConfigFor(name); err == nil {
		return c.Build(), nil
	}
	if c, err := WResConfigFor(name); err == nil {
		return c.Build(), nil
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// BuildClustered constructs the operator graph clustered to the default
// 16 operator groups, the representation every Arena component consumes.
func BuildClustered(name string) (*Graph, error) {
	g, err := Build(name)
	if err != nil {
		return nil, err
	}
	return g.Cluster(DefaultClusterSize), nil
}

// MustBuildClustered is BuildClustered for static configuration.
func MustBuildClustered(name string) *Graph {
	g, err := BuildClustered(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Names returns every model variant name across the three families,
// grouped by family and ascending in size.
func Names() []string {
	var out []string
	out = append(out, WResSizes()...)
	out = append(out, GPTSizes()...)
	out = append(out, MoESizes()...)
	return out
}

// BatchSizes returns the global batch sizes Table 2 associates with a
// model family.
func BatchSizes(family string) ([]int, error) {
	switch family {
	case "gpt":
		return []int{128, 256, 512}, nil
	case "moe":
		return []int{256, 512, 1024}, nil
	case "wresnet":
		return []int{256, 512, 1024}, nil
	default:
		return nil, fmt.Errorf("model: unknown family %q", family)
	}
}

// Workload pairs a model with a global batch size — the unit the scheduler
// profiles and places.
type Workload struct {
	Model       string
	GlobalBatch int
}

// String implements fmt.Stringer; the form is used as a stable map key.
func (w Workload) String() string { return fmt.Sprintf("%s@%d", w.Model, w.GlobalBatch) }

// Workloads enumerates every (model, batch) pair of Table 2, sorted by the
// string key for deterministic iteration.
func Workloads() []Workload {
	var out []Workload
	add := func(names []string, family string) {
		batches, _ := BatchSizes(family)
		for _, n := range names {
			for _, b := range batches {
				out = append(out, Workload{Model: n, GlobalBatch: b})
			}
		}
	}
	add(WResSizes(), "wresnet")
	add(GPTSizes(), "gpt")
	add(MoESizes(), "moe")
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
