// Package exec is the simulated training testbed of this reproduction: a
// deterministic execution engine that plays the role the physical GPU
// clusters (and the Alpa/XLA runtime) play in the paper. Every estimator in
// the system — the planner's roofline loads, the disaggregated profiler,
// Sia-style linear extrapolation — is judged against this engine, exactly
// as the paper judges its estimators against direct measurement.
//
// The engine layers second-order effects on top of the ideal roofline that
// analytic estimators do not capture:
//
//   - shape-dependent kernel efficiency (thin slices of work under-utilize
//     SMs — the diminishing-returns effect of §2.2),
//   - deterministic per-kernel "implementation" jitter (irregular latencies
//     across shapes and architectures, §3.4),
//   - kernel launch overheads,
//   - bandwidth ramp and group-size contention in collectives,
//   - replica-synchronization stragglers growing with group size,
//   - a 1F1B pipeline wavefront with per-microbatch timing noise,
//   - fixed per-iteration framework overhead and allocator variance.
//
// Crucially, KernelTime is a pure function shared with the profiler: the
// profiler measures single-operator latencies through the very same code
// path ("kernel-level equivalence", §3.4), so its residual error comes only
// from the effects it models approximately (communication interpolation,
// closed-form pipeline math, stragglers) — mirroring the paper's error
// anatomy (Fig. 16).
package exec

import (
	"fmt"
	"math"

	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/rng"
)

// Engine evaluates parallelism plans on simulated hardware. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	seed uint64

	// Tunables (exposed for ablation benches; defaults in NewEngine).
	StragglerCoef    float64 // per-log2(group) sync penalty on compute
	ContentionCoef   float64 // per-log2(workers) penalty on collectives
	MicrobatchNoise  float64 // per-microbatch timing noise amplitude
	OverlapFraction  float64 // fraction of intra-node DP grad-sync hidden by backward
	CrossNodeOverlap float64 // overlap fraction when the DP ring crosses nodes
	IterOverheadS    float64 // fixed per-iteration framework overhead
	BwdFactor        float64 // backward/forward compute ratio (≈2)
	EffCeiling       float64 // max fraction of roofline achieved by kernels
	EffFloor         float64 // min fraction for tiny kernels
}

// NewEngine returns an engine with the default effect magnitudes,
// deterministic under the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		seed:             seed,
		StragglerCoef:    0.012,
		ContentionCoef:   0.045,
		MicrobatchNoise:  0.02,
		OverlapFraction:  0.5,
		CrossNodeOverlap: 0.15,
		IterOverheadS:    0.018,
		BwdFactor:        2.0,
		EffCeiling:       0.85,
		EffFloor:         0.22,
	}
}

// Seed returns the engine's determinism seed.
func (e *Engine) Seed() uint64 { return e.seed }

// KernelTime returns the measured latency of one (clustered) operator's
// forward kernels processing `samples` samples with tp-way tensor
// parallelism on the given device. It is shared verbatim with the
// disaggregated profiler: profiling an operator on a single GPU observes
// exactly this function.
func (e *Engine) KernelTime(op model.Op, spec hw.GPU, samples float64, tp int) float64 {
	if samples <= 0 {
		return 0
	}
	flops := op.FLOPs * samples / float64(tp)
	bytes := op.Bytes * samples / float64(tp)

	// Roofline bound with shape-dependent achievable fraction.
	eff := e.shapeEfficiency(spec, flops)
	var tCompute, tMemory float64
	if spec.PeakFLOPS > 0 {
		tCompute = flops / (spec.PeakFLOPS * eff)
	}
	if spec.MemBandwidth > 0 {
		tMemory = bytes / (spec.MemBandwidth * math.Min(1, eff+0.1))
	}
	t := math.Max(tCompute, tMemory)

	// Deterministic per-(kind, arch, shape-bucket) implementation jitter:
	// kernel libraries pick different implementations for different shapes.
	t *= e.kernelJitter(op.Kind, spec.Architecture, flops)

	// Kernel launch / dispatch overhead; clustered operators launch a
	// handful of kernels each.
	const kernelsPerClusteredOp = 6
	t += float64(kernelsPerClusteredOp) * spec.LaunchOverhead
	return t
}

// shapeEfficiency mirrors hw.GPU.ShapeEfficiency but with the engine's
// configurable floor/ceiling so ablations can widen or flatten the curve.
func (e *Engine) shapeEfficiency(spec hw.GPU, work float64) float64 {
	if work <= 0 {
		return e.EffFloor
	}
	frac := work / (work + spec.EffHalfWork)
	return e.EffFloor + (e.EffCeiling-e.EffFloor)*frac
}

// kernelJitter returns a multiplicative factor in [0.93, 1.07] keyed on
// operator kind, GPU architecture and the log-scale work bucket.
func (e *Engine) kernelJitter(kind model.OpKind, arch hw.Arch, flops float64) float64 {
	bucket := uint64(0)
	if flops > 1 {
		bucket = uint64(math.Log2(flops) * 2) // half-octave buckets
	}
	r := rng.Derive(e.seed, rng.HashString(string(kind)), rng.HashString(string(arch)), bucket)
	return 0.93 + 0.14*r.Float64()
}

// CollectiveTime returns the measured latency of a communication primitive
// over v bytes with the given topology, including the engine's group-size
// contention penalty on top of the analytic alpha-beta cost. Offline
// communication sampling by the profiler observes exactly this function at
// its chosen sample volumes.
func (e *Engine) CollectiveTime(p hw.Primitive, topo hw.Topology, v float64) float64 {
	base := hw.MustCollectiveTime(p, topo, v)
	if topo.Workers > 1 {
		base *= 1 + e.ContentionCoef*math.Log2(float64(topo.Workers))
	}
	return base
}

// Result reports the engine's measurement of one plan execution.
type Result struct {
	IterTime   float64 // seconds per training iteration (one global batch)
	Throughput float64 // samples per second
	Fits       bool    // false when any stage exceeds device memory
	MaxMem     float64 // peak per-GPU footprint, bytes

	// GPU-time breakdown per iteration (seconds × GPUs), the currency of
	// Fig. 16 (profiling cost) and Fig. 18 (compute/comm split).
	ComputeGPUTime float64
	CommGPUTime    float64
	IdleGPUTime    float64

	// StageTime is the per-microbatch latency of each stage (fwd+bwd,
	// including tensor-parallel communication).
	StageTime []float64
}

// Evaluate measures the plan on the device type with its default node
// size. See EvaluateWithNodes for explicit placement control.
func (e *Engine) Evaluate(g *model.Graph, p *parallel.Plan, spec hw.GPU, globalBatch int) (Result, error) {
	return e.EvaluateWithNodes(g, p, spec, globalBatch, spec.GPUsPerNode)
}

// StageMeasurer supplies per-stage measurements during plan evaluation.
// The engine itself is the canonical implementation; a memoization layer
// can substitute itself to reuse stage measurements a search already
// performed — MeasureStage is pure, so any implementation returning the
// engine's values yields an identical evaluation.
type StageMeasurer interface {
	MeasureStage(g *model.Graph, st parallel.StagePlan, spec hw.GPU, microSamples float64, gpusPerNode int) StageMeasure
}

// EvaluateWithNodes measures one training iteration of graph g under plan
// p on GPUs of the given type, with gpusPerNode GPUs packed per node
// (overriding the catalog default; Fig. 2(c)'s 2×1-A40-over-InfiniBand
// setup uses gpusPerNode = 1).
func (e *Engine) EvaluateWithNodes(g *model.Graph, p *parallel.Plan, spec hw.GPU, globalBatch, gpusPerNode int) (Result, error) {
	return e.EvaluateMeasured(e, g, p, spec, globalBatch, gpusPerNode)
}

// EvaluateMeasured is EvaluateWithNodes drawing stage measurements from
// an explicit StageMeasurer.
func (e *Engine) EvaluateMeasured(sm StageMeasurer, g *model.Graph, p *parallel.Plan, spec hw.GPU, globalBatch, gpusPerNode int) (Result, error) {
	if err := p.Validate(g); err != nil {
		return Result{}, err
	}
	if globalBatch < 1 {
		return Result{}, fmt.Errorf("exec: global batch %d", globalBatch)
	}
	if gpusPerNode < 1 {
		gpusPerNode = spec.GPUsPerNode
	}
	numStages := len(p.Stages)
	numMicro := p.NumMicrobatches
	totalGPUs := p.TotalGPUs()

	// Memory feasibility.
	maxMem, fits := parallel.PlanMemory(g, p, spec, globalBatch)
	res := Result{Fits: fits, MaxMem: maxMem}
	if !fits {
		return res, nil
	}

	microSamples := float64(globalBatch) / float64(numMicro)

	stageTimes := make([]float64, numStages)
	p2pTimes := make([]float64, numStages) // boundary after stage i
	var computeGPU, commGPU float64
	var maxGradSyncLatency float64

	for i, st := range p.Stages {
		m := sm.MeasureStage(g, st, spec, microSamples, gpusPerNode)
		m.BwdCompute *= e.bwdJitter(g, i) // per-stage backward variance
		stageTimes[i] = m.Time()

		group := float64(st.GPUs())
		if m.GradSync > 0 {
			commGPU += m.GradSync * group
			// Backward-overlap hides part of the sync; bucketed all-reduce
			// over a thin shared NIC overlaps far less than NVLink-local
			// rings do.
			overlap := e.OverlapFraction
			if st.GPUs() > gpusPerNode {
				overlap = e.CrossNodeOverlap
			}
			latent := m.GradSync * (1 - overlap)
			if latent > maxGradSyncLatency {
				maxGradSyncLatency = latent
			}
		}

		// Stage-boundary point-to-point activation transfer.
		if i < numStages-1 {
			lastOp := g.Ops[st.OpEnd-1]
			crossNode := totalGPUs > gpusPerNode
			p2pTimes[i] = hw.P2PTime(spec, lastOp.ActBytes*microSamples, crossNode)
		}

		computeGPU += (m.FwdCompute + m.BwdCompute) * float64(numMicro) * group
		commGPU += 2 * m.TPComm * float64(numMicro) * group
		if i < numStages-1 {
			commGPU += p2pTimes[i] * float64(numMicro) // sender side
		}
	}

	// 1F1B pipeline wavefront: done[i][m] is when stage i finishes its
	// m-th microbatch slot; per-slot time carries deterministic noise.
	pipeEnd := e.pipelineWavefront(g, stageTimes, p2pTimes, numMicro)

	iter := pipeEnd + maxGradSyncLatency + e.IterOverheadS
	// Allocator / framework variance per (model, plan shape, device).
	iter *= e.allocJitter(g, p, spec)

	res.IterTime = iter
	res.Throughput = float64(globalBatch) / iter
	res.StageTime = stageTimes
	res.ComputeGPUTime = computeGPU
	res.CommGPUTime = commGPU
	res.IdleGPUTime = math.Max(0, iter*float64(totalGPUs)-computeGPU-commGPU)
	return res, nil
}

// pipelineWavefront runs the microbatch recurrence
//
//	done[i][m] = max(done[i][m-1], done[i-1][m] + p2p[i-1]) + slot(i, m)
//
// which reduces to fill time + (B−1)×bottleneck for balanced stages and
// penalizes imbalance exactly as a real pipeline does.
func (e *Engine) pipelineWavefront(g *model.Graph, stageTimes, p2pTimes []float64, numMicro int) float64 {
	s := len(stageTimes)
	prev := make([]float64, s) // done[i][m-1]
	cur := make([]float64, s)
	noise := rng.Derive(e.seed, rng.HashString(g.Name), 0xF1F1)
	for m := 0; m < numMicro; m++ {
		for i := 0; i < s; i++ {
			ready := prev[i]
			if i > 0 {
				arrive := cur[i-1] + p2pTimes[i-1]
				if arrive > ready {
					ready = arrive
				}
			}
			slot := stageTimes[i] * (1 + e.MicrobatchNoise*(noise.Float64()-0.5))
			cur[i] = ready + slot
		}
		prev, cur = cur, prev
	}
	return prev[s-1]
}

// deriveFor returns one uniform draw from a (seed, name, key) stream —
// shared by the homogeneous and heterogeneous jitter paths.
func deriveFor(seed uint64, name string, key uint64) float64 {
	return rng.Derive(seed, rng.HashString(name), key).Float64()
}

// bwdJitter varies the backward/forward ratio slightly per stage.
func (e *Engine) bwdJitter(g *model.Graph, stage int) float64 {
	r := rng.Derive(e.seed, rng.HashString(g.Name), uint64(stage), 0xB3D)
	return 0.97 + 0.06*r.Float64()
}

// allocJitter is the per-(model, plan shape, device) allocator variance in
// [1.01, 1.05] — end-to-end effects no operator-level profiler can see.
func (e *Engine) allocJitter(g *model.Graph, p *parallel.Plan, spec hw.GPU) float64 {
	r := rng.Derive(e.seed,
		rng.HashString(g.Name),
		rng.HashString(spec.Name),
		uint64(len(p.Stages)),
		uint64(p.TotalGPUs()),
	)
	return 1.01 + 0.04*r.Float64()
}

// DirectMeasureCost returns the GPU-time cost (seconds × GPUs) of
// measuring the plan by direct execution — the Oracle of Fig. 16: the
// whole allocation is reserved for `trials` measured iterations plus a
// warm-up.
func DirectMeasureCost(r Result, p *parallel.Plan, trials int) float64 {
	if trials < 1 {
		trials = 1
	}
	// One warm-up iteration plus measured trials.
	return r.IterTime * float64(trials+1) * float64(p.TotalGPUs())
}
