// Command arena-bench regenerates the paper's evaluation tables and
// figures (§5). With no arguments it runs the full suite in paper order;
// -fig selects a comma-separated subset.
//
// Usage:
//
//	arena-bench                 # run everything
//	arena-bench -list           # list experiment IDs
//	arena-bench -fig fig11,fig12
//	arena-bench -seed 7         # change the determinism seed
//	arena-bench -fig fig11 -store ./measurements
//	arena-bench -fig fig12 -v   # stream per-figure build/sim progress
//
// With -store, every performance database the experiments build persists
// as content-addressed per-workload columns, so later runs — including
// runs selecting different figures — reuse them and rebuild only what is
// missing. A ^C cancels mid-figure: in-flight database builds, searches
// and simulations stop within one worker-pool quantum.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sjtu-epcc/arena/internal/cli"
	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/experiments"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		verbose = flag.Bool("v", false, "stream per-figure build/simulation progress to stderr")
	)
	c := cli.CommonFlags()
	flag.Parse()

	env := experiments.NewEnv(c.Seed)
	env.StoreDir = c.Store
	env.DBCacheDir = c.EffectiveDBCache()
	env.Workers = c.Workers
	env.SnapshotWarn = cli.WarnSnapshot
	if *verbose {
		env.Progress = func(ev core.Event) {
			if ev.Total > 0 {
				fmt.Fprintf(os.Stderr, "  [%s] %s (%d/%d)\n", ev.Step, ev.Item, ev.Done, ev.Total)
				return
			}
			fmt.Fprintf(os.Stderr, "  [%s] %s (%d)\n", ev.Step, ev.Item, ev.Done)
		}
	}
	ctx := cli.Context()
	if *list {
		for _, ex := range env.Registry() {
			fmt.Printf("%-10s %s\n", ex.ID, ex.Brief)
		}
		return
	}

	var selected []experiments.Experiment
	if *figs == "all" || *figs == "" {
		selected = env.Registry()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			ex, err := env.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, ex)
		}
	}

	for _, ex := range selected {
		start := time.Now()
		table, err := ex.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
}
