package fixture

import "context"

type roundCtx struct{ n int }

// The sim.RunCtx bug class: a round loop declares a scheduling context
// under the cancellation context's name, so the cancellation check
// below keeps working only by accident of statement order.
func run(ctx context.Context) int {
	for i := 0; i < 3; i++ {
		ctx := &roundCtx{n: i} // want `declaration of "ctx" shadows a context.Context parameter \[ctxshadow\]`
		_ = ctx
	}
	if ctx.Err() != nil {
		return 1
	}
	return 0
}

// Rebinding the name to another context is still a shadow: cancellation
// stops flowing through the parameter.
func rebind(ctx context.Context) {
	{
		ctx := context.TODO() // want `declaration of "ctx" shadows a context.Context parameter \[ctxshadow\]`
		_ = ctx
	}
	_ = ctx
}
