package arena

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/search"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/store"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// ProgressEvent is one progress report from a long-running Session
// method; see WithProgress.
type ProgressEvent = core.Event

// ProgressFunc receives progress events; see WithProgress.
type ProgressFunc = core.ProgressFunc

// Session is the context-aware facade over the whole Arena pipeline:
// planner → profiler → pruned AP search → performance database →
// scheduler → simulator (§3–§4). It owns the execution engine, planner,
// profiler, offline communication table, stage-measurement cache and
// performance database, constructing each lazily and sharing them across
// calls, so one Session amortizes every expensive artifact exactly the
// way the paper's runtime does.
//
// Every long-running method takes a context.Context and stops within one
// scheduling quantum of its worker pool when the context is cancelled,
// returning ctx.Err() and leaking no goroutines. Uncancelled, results are
// bit-identical to the package-level free functions the Session replaces
// (the engine is a pure function of its seed).
//
// A Session is safe for concurrent use: the engine, planner, profiler and
// eval cache are concurrency-safe, lazy construction is serialized, and
// the progress callback is serialized too.
type Session struct {
	cfg     sessionConfig
	eng     *exec.Engine
	planner *planner.Planner
	cache   *EvalCache

	// store is the content-addressed measurement store (nil without
	// WithStore).
	store *store.Store

	progressMu sync.Mutex // serializes cfg.progress calls

	mu    sync.Mutex // guards the lazy fields below
	comm  *profiler.CommTable
	prof  *profiler.Profiler
	graph map[string]*model.Graph

	// The database has its own lock so a long build never blocks the
	// session's other lazy state; dbBuilding marks an in-flight build
	// (closed on completion) for single-flight semantics whose waiters
	// still honor their own contexts.
	dbMu           sync.Mutex
	db             *perfdb.DB
	dbFromSnapshot bool
	dbStoreStats   PerfDBStoreStats
	dbBuilding     chan struct{}
}

// EvalStoreStats reports what a session restored from its measurement
// store at construction: counts of stage/op/plan measurements, plus typed
// errors for objects that were skipped (corrupt, truncated or stale) and
// will be transparently re-measured.
type EvalStoreStats = evalcache.LoadStats

// PerfDBStoreStats reports how BuildPerfDB was served from the store:
// workload columns loaded vs built, plus typed errors for skipped objects.
type PerfDBStoreStats = perfdb.StoreStats

// New constructs a Session from functional options:
//
//	s, err := arena.New(
//		arena.WithSeed(42),
//		arena.WithGPUTypes("A40", "A10"),
//		arena.WithPerfDBSnapshot("perfdb.json"),
//		arena.WithProgress(func(e arena.ProgressEvent) { ... }),
//	)
//
// Defaults: seed 42, all catalog GPU types, allocations up to 16 GPUs,
// the trace generator's workload mix, all cores, a fresh eval cache, no
// snapshot, no progress stream.
func New(opts ...Option) (*Session, error) {
	cfg := defaultSessionConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(cfg.gpuTypes) == 0 {
		for name := range hw.Catalog() {
			cfg.gpuTypes = append(cfg.gpuTypes, name)
		}
		sort.Strings(cfg.gpuTypes)
	}
	if len(cfg.workloads) == 0 {
		cfg.workloads = trace.DefaultWorkloads()
	}
	s := &Session{cfg: cfg, planner: planner.New()}
	if cfg.cache != nil {
		// Adopt the cache's engine: engines are pure functions of their
		// seed, so sharing the instance is what makes memoized
		// measurements transferable between sessions.
		if cfg.cache.Engine().Seed() != cfg.seed {
			return nil, fmt.Errorf("arena: eval cache is bound to seed %d, session wants %d",
				cfg.cache.Engine().Seed(), cfg.seed)
		}
		s.eng = cfg.cache.Engine()
		s.cache = cfg.cache
	} else {
		s.eng = exec.NewEngine(cfg.seed)
		s.cache = NewEvalCache(s.eng)
	}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			return nil, err
		}
		s.store = st
		// Hydration is lazy: each measurement context loads its store
		// object when first resolved, so a large shared store costs the
		// session only the contexts it actually touches.
		s.cache.AttachStore(st)
	}
	return s, nil
}

// Close flushes the session's measurement memo to the configured store
// and releases the store's single-writer lock so another process can
// open the directory; without WithStore it is a no-op. Closing does not
// invalidate the session — it may keep measuring — but persistence stops:
// the store is gone, so defer Close next to New and treat it as the end
// of the session's lifecycle. The returned error, when non-nil, is a
// *store-layer persistence failure; all measured results remain valid, so
// callers typically warn and continue, exactly as with
// perfdb.SnapshotError.
func (s *Session) Close() error {
	if s.store == nil {
		return nil
	}
	err := s.cache.SaveStore(s.store)
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	s.store = nil
	return err
}

// Store exposes the session's open measurement store, or nil without
// WithStore. Long-running callers (arena-server) journal scheduler state
// through it; batch tools never need it.
func (s *Session) Store() *store.Store {
	return s.store
}

// EvalStoreStats reports what the session has restored from the
// measurement store so far (zero without WithStore). Hydration is lazy —
// per measurement context, on first use — so the counts grow as the
// session works. Skipped entries are the warn-and-rebuild path: each
// names one store object that was corrupt, truncated or misplaced.
func (s *Session) EvalStoreStats() EvalStoreStats { return s.cache.StoreStats() }

// PerfDBStoreStats reports how the last BuildPerfDB call was served from
// the store (zero before the first call or without WithStore).
func (s *Session) PerfDBStoreStats() PerfDBStoreStats {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return s.dbStoreStats
}

// MustNew is New or panic — for examples and tests where the options are
// known good.
func MustNew(opts ...Option) *Session {
	s, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Seed returns the session's determinism seed.
func (s *Session) Seed() uint64 { return s.cfg.seed }

// GPUTypes returns the catalog GPU types the session covers.
func (s *Session) GPUTypes() []string { return append([]string(nil), s.cfg.gpuTypes...) }

// MaxN returns the session's per-job GPU allocation cap.
func (s *Session) MaxN() int { return s.cfg.maxN }

// Engine returns the session's deterministic execution engine for direct
// low-level measurements.
func (s *Session) Engine() *Engine { return s.eng }

// Planner returns the session's execution-free parallelism planner.
func (s *Session) Planner() *Planner { return s.planner }

// EvalCache returns the session's stage-measurement cache. Pass it to
// another session via WithEvalCache to share memoized measurements.
func (s *Session) EvalCache() *EvalCache { return s.cache }

// emit forwards a progress event, serializing the user's callback.
func (s *Session) emit(e core.Event) {
	if s.cfg.progress == nil {
		return
	}
	s.progressMu.Lock()
	s.cfg.progress(e)
	s.progressMu.Unlock()
}

// progress returns the session's serialized progress sink (nil when no
// progress stream is configured, so callees skip event construction).
func (s *Session) progress() core.ProgressFunc {
	if s.cfg.progress == nil {
		return nil
	}
	return s.emit
}

// buildGraph returns the memoized clustered operator graph for a model:
// the model registry guarantees a name determines the graph, and the
// evalcache keys measurements by graph name, so one instance per session
// is both safe and what lets repeated Plan/Search calls skip the rebuild.
func (s *Session) buildGraph(name string) (*Graph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.graph[name]; ok {
		return g, nil
	}
	g, err := model.BuildClustered(name)
	if err != nil {
		return nil, err
	}
	if s.graph == nil {
		s.graph = map[string]*model.Graph{}
	}
	s.graph[name] = g
	return g, nil
}

// checkScope rejects profiling requests outside what the session sampled:
// the communication table only covers the configured GPU types with
// communicator groups up to max(16, MaxN) workers, and failing here beats
// a cryptic interpolation error deep inside the profiler.
func (s *Session) checkScope(gpuType string, n int) error {
	found := false
	for _, t := range s.cfg.gpuTypes {
		if t == gpuType {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("arena: GPU type %q is outside the session's scope %v (configure it with WithGPUTypes or WithCluster)",
			gpuType, s.cfg.gpuTypes)
	}
	if bound := max(16, s.cfg.maxN); n > bound {
		return fmt.Errorf("arena: n=%d exceeds the session's sampled communicator bound %d (raise WithMaxN)", n, bound)
	}
	return nil
}

// searchOptions resolves the session's search execution options.
func (s *Session) searchOptions() search.Options {
	workers := s.cfg.workers
	if workers <= 0 {
		workers = -1 // search convention: < 0 means all cores
	}
	return search.Options{Cache: s.cache, Workers: workers, Progress: s.progress()}
}

// CommTable returns the session's offline-sampled communication table,
// building it on first use over the session's GPU types with communicator
// groups up to max(16, MaxN) workers.
func (s *Session) CommTable(ctx context.Context) (*CommTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.comm != nil {
		return s.comm, nil
	}
	ct, err := profiler.OfflineSampleComm(s.eng, s.cfg.gpuTypes, max(16, s.cfg.maxN))
	if err != nil {
		return nil, err
	}
	s.comm = ct
	return ct, nil
}

// Profiler returns the session's single-device disaggregated profiler,
// building it (and the communication table it samples from) on first use.
// Its operator-latency cache persists for the session's lifetime, so
// profiling many jobs skips repeated operator configurations.
func (s *Session) Profiler(ctx context.Context) (*Profiler, error) {
	ct, err := s.CommTable(ctx)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prof == nil {
		s.prof = profiler.New(s.eng, ct)
	}
	return s.prof, nil
}

// Plan runs the execution-free parallelism planner on one grid (§3.3).
func (s *Session) Plan(ctx context.Context, grid Grid) (*GridPlan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := s.buildGraph(grid.Workload.Model)
	if err != nil {
		return nil, err
	}
	return s.planner.PlanGrid(g, grid)
}

// ProfileJob plans and profiles every grid of a workload across the
// session's GPU types up to MaxN GPUs per type (§3.4) — the scheduler's
// complete view of the job's adaptive-parallelism performance.
func (s *Session) ProfileJob(ctx context.Context, w Workload) (*JobProfile, error) {
	g, err := s.buildGraph(w.Model)
	if err != nil {
		return nil, err
	}
	pr, err := s.Profiler(ctx)
	if err != nil {
		return nil, err
	}
	return profiler.ProfileJobCtx(ctx, s.planner, pr, g, w, s.cfg.gpuTypes, s.cfg.maxN, s.progress())
}

// FullSearch runs the full-space (Alpa-style) AP search for n GPUs of a
// type (§3.6 baseline), through the session's eval cache and worker pool.
func (s *Session) FullSearch(ctx context.Context, g *Graph, gpuType string, globalBatch, n int) (SearchOutcome, error) {
	spec, err := hw.Lookup(gpuType)
	if err != nil {
		return SearchOutcome{}, err
	}
	return search.FullSearchCtx(ctx, s.eng, g, spec, globalBatch, n, s.searchOptions())
}

// PrunedSearch runs Arena's space-pruned AP search for a selected grid
// (§3.6), through the session's eval cache and worker pool. Sharing the
// session across the full and pruned searches of one deployment point
// reuses every overlapping stage measurement.
func (s *Session) PrunedSearch(ctx context.Context, g *Graph, gpuType string, globalBatch, n int, gp *GridPlan) (SearchOutcome, error) {
	spec, err := hw.Lookup(gpuType)
	if err != nil {
		return SearchOutcome{}, err
	}
	return search.PrunedSearchCtx(ctx, s.eng, g, spec, globalBatch, n, gp, s.searchOptions())
}

// Search runs Arena's whole deployment pipeline for one workload on one
// resource: plan every grid of the (type, n) column, profile the proxies
// on a single device, pick the best grid, and space-prune-search it. This
// is what happens when the scheduler (re)deploys a job (§3.5–§3.6).
func (s *Session) Search(ctx context.Context, w Workload, gpuType string, n int) (SearchOutcome, error) {
	if err := s.checkScope(gpuType, n); err != nil {
		return SearchOutcome{}, err
	}
	g, err := s.buildGraph(w.Model)
	if err != nil {
		return SearchOutcome{}, err
	}
	pr, err := s.Profiler(ctx)
	if err != nil {
		return SearchOutcome{}, err
	}
	jp, err := profiler.ProfileJobCtx(ctx, s.planner, pr, g, w, []string{gpuType}, n, s.progress())
	if err != nil {
		return SearchOutcome{}, err
	}
	grid, ok := jp.BestGrid(Resource{GPUType: gpuType, N: n})
	if !ok {
		return SearchOutcome{}, fmt.Errorf("arena: no feasible grid for %s on %dx%s", w, n, gpuType)
	}
	return s.PrunedSearch(ctx, g, gpuType, w.GlobalBatch, n, jp.GridPlans[grid])
}

// Evaluate measures a plan end to end on the simulated testbed, through
// the session's eval cache (bit-identical to a direct engine measurement,
// but memoized across the session).
func (s *Session) Evaluate(ctx context.Context, g *Graph, p *Plan, gpuType string, globalBatch int) (ExecResult, error) {
	if err := ctx.Err(); err != nil {
		return ExecResult{}, err
	}
	spec, err := hw.Lookup(gpuType)
	if err != nil {
		return ExecResult{}, err
	}
	return s.cache.Evaluate(g, p, spec, globalBatch, 0)
}

// BuildPerfDB returns the session's performance database, building it on
// first use over (GPU types × counts up to MaxN × workloads) — by far the
// most expensive step of a simulator run. With WithStore each workload
// column is served from the content-addressed store when present and only
// missing columns are built (and written back); with WithPerfDBSnapshot
// it loads a matching all-or-nothing snapshot instead, and writes one
// after a fresh build.
//
// A snapshot or column persistence failure returns the fully usable
// database together with a *perfdb.SnapshotError-wrapped error; callers
// decide whether to warn or abort. PerfDBFromSnapshot reports which path
// served the call, and PerfDBStoreStats breaks a store-served build down
// by column.
func (s *Session) BuildPerfDB(ctx context.Context) (*PerfDB, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.dbMu.Lock()
		if s.db != nil {
			db := s.db
			s.dbMu.Unlock()
			return db, nil
		}
		if building := s.dbBuilding; building != nil {
			// Another goroutine is building: wait for it without holding
			// the lock, but never past this call's own context.
			s.dbMu.Unlock()
			select {
			case <-building:
				continue // re-check: memoized on success, retry on failure
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		building := make(chan struct{})
		s.dbBuilding = building
		s.dbMu.Unlock()

		opts := perfdb.Options{
			Seed:      s.cfg.seed,
			GPUTypes:  s.cfg.gpuTypes,
			MaxN:      s.cfg.maxN,
			Workloads: s.cfg.workloads,
			Workers:   s.cfg.workers,
			Progress:  s.progress(),
			// The session's own cache: with WithStore attached, even a
			// first-ever build reuses op and stage measurements earlier
			// searches persisted, and the build's measurements flow back
			// into the session memo (and to the store on Close).
			EvalCache: s.cache,
		}
		var (
			db     *perfdb.DB
			loaded bool
			stats  perfdb.StoreStats
			err    error
		)
		if s.store != nil {
			db, stats, err = perfdb.BuildOrLoadStore(ctx, s.eng, opts, s.store)
			loaded = stats.FromStore()
		} else {
			db, loaded, err = perfdb.BuildOrLoadCtx(ctx, s.eng, opts, s.cfg.snapshot)
		}
		s.dbMu.Lock()
		s.dbBuilding = nil
		if db != nil {
			s.db, s.dbFromSnapshot, s.dbStoreStats = db, loaded, stats
		}
		s.dbMu.Unlock()
		close(building)
		return db, err
	}
}

// PerfDBFromSnapshot reports whether BuildPerfDB served the database from
// the configured snapshot (false before the first BuildPerfDB call).
func (s *Session) PerfDBFromSnapshot() bool {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return s.dbFromSnapshot
}

// Simulate runs the discrete-event cluster simulation. Config fields the
// caller leaves zero are filled from the session: a nil DB uses
// BuildPerfDB (tolerating snapshot persistence failures), an empty Spec
// uses the WithCluster spec, a nil Faults uses the WithFaults config, and
// a nil Progress uses the session stream.
func (s *Session) Simulate(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	if cfg.DB == nil {
		db, err := s.BuildPerfDB(ctx)
		if db == nil {
			return nil, err
		}
		cfg.DB = db
	}
	if len(cfg.Spec.Regions) == 0 && s.cfg.cluster != nil {
		cfg.Spec = *s.cfg.cluster
	}
	if cfg.Faults == nil && s.cfg.faults != nil {
		cfg.Faults = s.cfg.faults
	}
	if cfg.Progress == nil {
		cfg.Progress = s.progress()
	}
	return sim.RunCtx(ctx, cfg)
}

// PlanHetero partitions a model across a mixed GPU pool (§6's intra-job
// heterogeneity) with the session's planner.
func (s *Session) PlanHetero(ctx context.Context, g *Graph, pool HeteroPool, stages, globalBatch int) (*HeteroPlan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.planner.PlanHetero(g, pool, stages, globalBatch)
}

// EvaluateHetero measures a heterogeneous pipeline on the simulated
// testbed.
func (s *Session) EvaluateHetero(ctx context.Context, g *Graph, p *HeteroPlan, globalBatch int) (ExecResult, error) {
	if err := ctx.Err(); err != nil {
		return ExecResult{}, err
	}
	return s.eng.EvaluateHetero(g, p, globalBatch)
}
