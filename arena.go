// Package arena is the public API of the Arena reproduction: a training
// system that co-designs inter-job dynamic scheduling and intra-job
// adaptive parallelism for large models in heterogeneous GPU clusters
// (Xue et al., "Arena: Efficiently Training Large Models via Dynamic
// Scheduling and Adaptive Parallelism Co-Design", EUROSYS 2026).
//
// The library is organized in layers, all re-exported here:
//
//   - Hardware substrate: GPU catalog, roofline model, interconnects and
//     collective cost models (hw).
//   - Model zoo: analytic operator graphs for GPT-3, GShard-MoE and
//     Wide-ResNet (model).
//   - Parallelism plans and the memory-footprint model (parallel).
//   - Execution engine: the deterministic simulated testbed against which
//     every estimator is validated (exec).
//   - The grid abstraction sharding the joint scheduling-parallelism
//     space (core).
//   - The three Arena components: the execution-free parallelism planner,
//     the single-device disaggregated profiler, and the space-pruned AP
//     search (planner, profiler, search).
//   - The stage-measurement cache (evalcache): a concurrency-safe memo
//     table between the searchers and the engine. The engine is a pure
//     function of its seed, so a stage candidate measured once is reused
//     across the pipeline degrees of one search, across the full and
//     pruned searches of a deployment point, and across every GPU count
//     of a perfdb column. With it, candidate profiling inside a search
//     and the types × counts loop of a database build both fan out over
//     worker pools with bit-identical results (search.Options wires both
//     into FullSearchOpts/PrunedSearchOpts).
//   - The cluster scheduler: Arena's generalized event-driven policy plus
//     the FCFS/Gavel/ElasticFlow/Sia baselines (sched, sched/policy).
//   - The discrete-event cluster simulator, trace synthesis, performance
//     database and metrics (sim, trace, perfdb, metrics).
//
// # Quick start
//
// A Session is the one wiring path through the pipeline: it owns the
// engine, planner, profiler, communication table, stage-measurement cache
// and performance database, and exposes every stage as a context-aware
// method.
//
//	s, _ := arena.New(arena.WithSeed(42), arena.WithGPUTypes("A40"))
//	ctx := context.Background()
//
//	// Plan a grid (4 GPUs, 2 pipeline stages) without any execution.
//	w := arena.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
//	gp, _ := s.Plan(ctx, arena.Grid{Workload: w, GPUType: "A40", N: 4, S: 2})
//
//	// Measure the proxy plan on the simulated testbed.
//	graph := arena.MustBuildModel("GPT-1.3B")
//	res, _ := s.Evaluate(ctx, graph, gp.Proxy.Plan, "A40", 128)
//	fmt.Printf("%s: %.1f samples/s\n", gp.Proxy.Plan, res.Throughput)
//
//	// Or run the whole deployment pipeline (plan → profile → pruned
//	// search) for a resource in one call:
//	out, _ := s.Search(ctx, w, "A40", 4)
//
// Long-running methods (BuildPerfDB, FullSearch/PrunedSearch/Search,
// ProfileJob, Simulate) stop promptly when their context is cancelled,
// returning ctx.Err() without leaking goroutines, and stream progress to
// the WithProgress callback. Uncancelled, their results are bit-identical
// to the deprecated package-level free functions they replace.
//
// # The measurement store
//
// Every expensive artifact in the pipeline is a deterministic function of
// its inputs: the engine is a pure function of its seed, so op and stage
// measurements, plan evaluations and whole performance-database columns
// are all reusable whenever those inputs repeat. WithStore persists them
// in a content-addressed on-disk store (internal/store): objects are
// keyed by hashes of (engine seed and tunables, model-graph fingerprint,
// GPU-spec fingerprint, workload params, schema version), so
//
//   - repeated CLI invocations skip even cold-search profiling (the
//     op/stage memo hydrates lazily per measurement context and
//     Session.Close flushes back what the session added);
//   - BuildPerfDB rebuilds only the workload columns the store lacks —
//     adding one workload profiles that workload alone;
//   - changing any input (a model definition, a device spec, the seed)
//     invalidates exactly the objects derived from it, for free.
//
// The cmd tools expose this uniformly as -store (alongside the equally
// uniform -seed and -workers):
//
//	arena-sim     -policy all -trace philly -store ./measurements
//	arena-bench   -fig fig11 -store ./measurements
//	arena-plan    -model GPT-1.3B -gpu A40 -n 8 -store ./measurements
//	arena-profile -model WRes-1B -gpu A40 -n 4 -store ./measurements
//
// The deprecated WithPerfDBSnapshot / -db-cache single-file snapshot path
// is kept as a working shim, but it is all-or-nothing: one new workload,
// seed or GPU type forces a full rebuild.
//
// See examples/ for runnable programs and cmd/arena-bench for the full
// reproduction of the paper's evaluation.
package arena

import (
	"io"

	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/faults"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/metrics"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/parallel"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
	"github.com/sjtu-epcc/arena/internal/sched"
	"github.com/sjtu-epcc/arena/internal/sched/policy"
	"github.com/sjtu-epcc/arena/internal/search"
	"github.com/sjtu-epcc/arena/internal/sim"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// --- Hardware substrate ---

// GPU is a device specification (catalog entry).
type GPU = hw.GPU

// ClusterSpec describes a heterogeneous cluster as typed regions.
type ClusterSpec = hw.ClusterSpec

// Topology identifies a communicator group's physical span.
type Topology = hw.Topology

// GPUCatalog returns the Table 1 device catalog.
func GPUCatalog() map[string]GPU { return hw.Catalog() }

// MustGPU returns a catalog device or panics.
func MustGPU(name string) GPU { return hw.MustLookup(name) }

// The paper's evaluation clusters (§5.1).
var (
	ClusterA            = hw.ClusterA
	ClusterB            = hw.ClusterB
	ClusterSim          = hw.ClusterSim
	ClusterBHomogeneous = hw.ClusterBHomogeneous
)

// --- Models ---

// Graph is a model's operator graph.
type Graph = model.Graph

// Op is one (clustered) operator.
type Op = model.Op

// Workload pairs a model with a global batch size.
type Workload = model.Workload

// BuildModel constructs the clustered operator graph for a Table 2 model
// variant ("GPT-1.3B", "MoE-2.4B", "WRes-1B", ...).
func BuildModel(name string) (*Graph, error) { return model.BuildClustered(name) }

// MustBuildModel is BuildModel or panic.
func MustBuildModel(name string) *Graph { return model.MustBuildClustered(name) }

// ModelNames lists every available model variant.
func ModelNames() []string { return model.Names() }

// --- Parallelism plans ---

// Plan is a hybrid parallelism plan (pipeline stages × DP × TP).
type Plan = parallel.Plan

// StagePlan is one pipeline stage's operator range and intra-stage shape.
type StagePlan = parallel.StagePlan

// PureDP returns the single-stage pure data-parallel plan.
func PureDP(g *Graph, n int) *Plan { return parallel.PureDP(g, n) }

// PureTP returns the single-stage pure tensor-parallel plan.
func PureTP(g *Graph, n int) *Plan { return parallel.PureTP(g, n) }

// PlanMemory returns the plan's peak per-GPU footprint and feasibility.
func PlanMemory(g *Graph, p *Plan, spec GPU, globalBatch int) (float64, bool) {
	return parallel.PlanMemory(g, p, spec, globalBatch)
}

// --- Execution engine (simulated testbed) ---

// Engine is the deterministic execution engine.
type Engine = exec.Engine

// ExecResult is an engine measurement.
type ExecResult = exec.Result

// NewEngine returns an engine seeded for reproducibility.
func NewEngine(seed uint64) *Engine { return exec.NewEngine(seed) }

// --- Grid abstraction (the paper's core idea, §3.2) ---

// Grid is one subspace of the joint scheduling-parallelism space.
type Grid = core.Grid

// Resource is a grid's (type, count) scheduling coordinate.
type Resource = core.Resource

// EnumerateGrids lists a workload's grids over types and counts.
func EnumerateGrids(w Workload, numOps int, gpuTypes []string, maxN int) []Grid {
	return core.Enumerate(w, numOps, gpuTypes, maxN)
}

// PipelineDegrees lists the candidate pipeline degrees for n GPUs of a
// model with numOps clustered operators.
func PipelineDegrees(n, numOps int) []int { return core.PipelineDegrees(n, numOps) }

// GiB is the byte size the facade reports GPU memory in.
const GiB = hw.GiB

// --- Planner (§3.3) ---

// Planner is the execution-free load-aware parallelism planner.
type Planner = planner.Planner

// GridPlan is the planner's per-grid output (proxy + Pareto frontier).
type GridPlan = planner.GridPlan

// PlanCandidate is one candidate plan with its planning metrics.
type PlanCandidate = planner.Candidate

// NewPlanner returns a planner with paper defaults.
func NewPlanner() *Planner { return planner.New() }

// --- Profiler (§3.4) ---

// Profiler performs single-device disaggregated profiling.
type Profiler = profiler.Profiler

// CommTable is the offline-sampled communication latency table.
type CommTable = profiler.CommTable

// ProfileEstimate is a profiled grid estimate.
type ProfileEstimate = profiler.Estimate

// JobProfile aggregates a job's profiled grids.
type JobProfile = profiler.JobProfile

// SampleComm builds the offline communication table over the engine.
//
// Deprecated: use Session.CommTable, which builds and caches the table
// for the session's GPU types.
func SampleComm(eng *Engine, gpuTypes []string, maxWorkers int) (*CommTable, error) {
	return profiler.OfflineSampleComm(eng, gpuTypes, maxWorkers)
}

// NewProfiler returns a profiler over an engine and a sampled table.
func NewProfiler(eng *Engine, ct *CommTable) *Profiler { return profiler.New(eng, ct) }

// ProfileJob plans and profiles every grid of a workload.
//
// Deprecated: use Session.ProfileJob, which is cancellable, streams
// progress, and shares the session's planner and profiler caches.
func ProfileJob(pl *Planner, pr *Profiler, g *Graph, w Workload, gpuTypes []string, maxN int) (*JobProfile, error) {
	return profiler.ProfileJob(pl, pr, g, w, gpuTypes, maxN)
}

// --- AP search (§3.6) ---

// SearchOutcome is a search result with cost accounting.
type SearchOutcome = search.Outcome

// SearchOptions tune search execution (memoization cache, profiling
// fan-out, node packing) without changing outcomes.
type SearchOptions = search.Options

// FullSearch runs the Alpa-style full-space AP search.
//
// Deprecated: use Session.FullSearch, which is cancellable and goes
// through the session's eval cache and worker pool.
func FullSearch(eng *Engine, g *Graph, spec GPU, globalBatch, n int) (SearchOutcome, error) {
	return search.FullSearch(eng, g, spec, globalBatch, n)
}

// FullSearchOpts is FullSearch with execution options.
//
// Deprecated: use Session.FullSearch.
func FullSearchOpts(eng *Engine, g *Graph, spec GPU, globalBatch, n int, opts SearchOptions) (SearchOutcome, error) {
	return search.FullSearchOpts(eng, g, spec, globalBatch, n, opts)
}

// PrunedSearch runs Arena's space-pruned AP search for a selected grid.
//
// Deprecated: use Session.PrunedSearch (or Session.Search for the whole
// plan → profile → pruned-search deployment pipeline).
func PrunedSearch(eng *Engine, g *Graph, spec GPU, globalBatch, n int, gp *GridPlan) (SearchOutcome, error) {
	return search.PrunedSearch(eng, g, spec, globalBatch, n, gp)
}

// PrunedSearchOpts is PrunedSearch with execution options.
//
// Deprecated: use Session.PrunedSearch.
func PrunedSearchOpts(eng *Engine, g *Graph, spec GPU, globalBatch, n int, gp *GridPlan, opts SearchOptions) (SearchOutcome, error) {
	return search.PrunedSearchOpts(eng, g, spec, globalBatch, n, gp, opts)
}

// --- Stage-measurement cache ---

// EvalCache memoizes stage measurements and plan evaluations for one
// engine; share one across searches to eliminate redundant profiling.
type EvalCache = evalcache.Cache

// EvalCacheStats reports cache hit/miss counters.
type EvalCacheStats = evalcache.Stats

// NewEvalCache returns an empty cache bound to the engine.
func NewEvalCache(eng *Engine) *EvalCache { return evalcache.New(eng) }

// --- Scheduling ---

// Policy is a cluster scheduling policy with its knowledge models.
type Policy = sched.Policy

// ArenaPolicy is Arena's generalized event-driven scheduler (Algorithm 1).
type ArenaPolicy = sched.ArenaPolicy

// Objective selects the scheduling goal (throughput, deadline, fairness).
type Objective = sched.Objective

// Scheduling objectives (§3.5).
const (
	ObjThroughput = sched.ObjThroughput
	ObjDeadline   = sched.ObjDeadline
	ObjFairness   = sched.ObjFairness
)

// NewArenaPolicy returns the paper-default Arena scheduler.
func NewArenaPolicy() *ArenaPolicy { return sched.NewArena() }

// Baseline schedulers (§5.1).
var (
	NewFCFS        = policy.NewFCFS
	NewGavel       = policy.NewGavel
	NewElasticFlow = policy.NewElasticFlow
	NewSia         = policy.NewSia
)

// --- Cluster state, traces, performance database, simulation ---

// Cluster tracks runtime allocation state with buddy locality.
type Cluster = cluster.Cluster

// NewCluster builds a fully free cluster from a spec.
func NewCluster(spec ClusterSpec) (*Cluster, error) { return cluster.New(spec) }

// TraceJob is one synthetic trace record.
type TraceJob = trace.Job

// TraceConfig drives trace synthesis.
type TraceConfig = trace.Config

// GenerateTrace synthesizes a deterministic production-shaped trace.
func GenerateTrace(cfg TraceConfig) ([]TraceJob, error) { return trace.Generate(cfg) }

// TraceSource streams trace jobs on demand — SimConfig.Source's type.
type TraceSource = trace.Source

// SliceTraceSource wraps an in-memory trace as a streaming TraceSource.
func SliceTraceSource(jobs []TraceJob) TraceSource { return trace.SliceSource(jobs) }

// StreamTrace builds a streaming synthetic-trace source: same workload
// mixtures as GenerateTrace, Poisson arrivals shaped per trace family,
// O(1) memory regardless of NumJobs.
func StreamTrace(cfg TraceConfig) (TraceSource, error) { return trace.Stream(cfg) }

// Trace configurations from the paper (§5.1–5.3).
var (
	PhillySixHour = trace.PhillySixHour
	PhillyWeek    = trace.PhillyWeek
	HeliosDay     = trace.HeliosDay
	PAIDay        = trace.PAIDay
)

// DefaultWorkloads is the trace generator's workload mix — the default
// coverage of a Session's performance database.
func DefaultWorkloads() []Workload { return trace.DefaultWorkloads() }

// DirectMeasureCost models the GPU-time bill of measuring a plan directly
// on its full allocation (the baseline the disaggregated profiler is
// compared against, §5.5).
func DirectMeasureCost(res ExecResult, p *Plan, trials int) float64 {
	return exec.DirectMeasureCost(res, p, trials)
}

// PerfDB is the performance database all schedulers consult.
type PerfDB = perfdb.DB

// PerfDBOptions configure a database build.
type PerfDBOptions = perfdb.Options

// BuildPerfDB constructs the database over the engine.
//
// Deprecated: use Session.BuildPerfDB, which is cancellable, streams
// progress, caches the database for the session, and handles snapshots.
func BuildPerfDB(eng *Engine, opts PerfDBOptions) (*PerfDB, error) { return perfdb.Build(eng, opts) }

// SavePerfDB is db.Save: it writes the database as a JSON snapshot.
//
// Deprecated: configure the session with WithPerfDBSnapshot instead.
func SavePerfDB(db *PerfDB, path string) error { return db.Save(path) }

// LoadPerfDB reads a JSON snapshot back into a usable database.
//
// Deprecated: configure the session with WithPerfDBSnapshot instead.
func LoadPerfDB(path string) (*PerfDB, error) { return perfdb.Load(path) }

// BuildOrLoadPerfDB loads the snapshot at path when it matches the
// request (seed, GPU types, counts, workloads) and otherwise builds
// fresh, saving the snapshot for next time. The bool reports a load.
//
// Deprecated: use Session.BuildPerfDB with WithPerfDBSnapshot.
func BuildOrLoadPerfDB(eng *Engine, opts PerfDBOptions, path string) (*PerfDB, bool, error) {
	return perfdb.BuildOrLoad(eng, opts, path)
}

// SimConfig drives one cluster simulation.
type SimConfig = sim.Config

// SimResult is a simulation outcome with aggregated metrics.
type SimResult = sim.Result

// Simulate runs the discrete-event cluster simulation.
//
// Deprecated: use Session.Simulate, which is cancellable and fills the
// database, cluster spec and progress stream from the session.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// Summary aggregates scheduling statistics (JCT, queuing, throughput).
type Summary = metrics.Summary

// --- Fault injection (internal/faults) ---

// FaultsConfig drives deterministic fault injection in Simulate: Poisson
// crash/recovery and straggler processes, scripted failure traces,
// checkpoint-restart accounting, and the retry/backoff policy.
type FaultsConfig = faults.Config

// FaultModel is the stochastic per-GPU-type crash/straggler model.
type FaultModel = faults.Model

// TypeFaults parameterizes one GPU type's fault processes.
type TypeFaults = faults.TypeFaults

// FaultEvent is one scripted or generated fault occurrence.
type FaultEvent = faults.Event

// FaultSchedule is a time-ordered fault-event sequence.
type FaultSchedule = faults.Schedule

// ParseFaultTrace reads a scripted failure trace (one event per line;
// malformed lines are rejected with a typed error).
func ParseFaultTrace(r io.Reader) (FaultSchedule, error) { return faults.ParseTrace(r) }

// LoadFaultTrace reads a scripted failure trace from a file.
func LoadFaultTrace(path string) (FaultSchedule, error) { return faults.LoadTrace(path) }

// --- Intra-job heterogeneity extension (§6) ---

// HeteroPool is a per-type GPU budget for one job.
type HeteroPool = planner.HeteroPool

// HeteroPlan is a pipeline whose stages run on different GPU types.
type HeteroPlan = exec.HeteroPlan

// HeteroStage is one stage of a heterogeneous pipeline.
type HeteroStage = exec.HeteroStage

// PlanHetero partitions a model across a mixed GPU pool with
// capability-weighted stage assignment (§6's intra-job heterogeneity).
func PlanHetero(pl *Planner, g *Graph, pool HeteroPool, s, globalBatch int) (*HeteroPlan, error) {
	return pl.PlanHetero(g, pool, s, globalBatch)
}
