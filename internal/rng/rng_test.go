package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %v", v)
		}
	}
}

func TestExpPositiveWithMean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp < 0: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ≈ 3.0", mean)
	}
}

func TestLogNormalishMedianPositive(t *testing.T) {
	r := New(13)
	below, above := 0, 0
	for i := 0; i < 10000; i++ {
		v := r.LogNormalish(10, 2)
		if v <= 0 {
			t.Fatalf("LogNormalish <= 0: %v", v)
		}
		if v < 10 {
			below++
		} else {
			above++
		}
	}
	// Median ≈ 10: the two halves should be roughly balanced.
	ratio := float64(below) / float64(above)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("below/above = %v, want ≈ 1", ratio)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("attention") != HashString("attention") {
		t.Fatal("HashString not stable")
	}
	if HashString("attention") == HashString("mlp") {
		t.Fatal("trivial HashString collision")
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, 1, 2)
	b := Derive(42, 2, 1) // permuted keys must give a different stream
	if a.Uint64() == b.Uint64() {
		t.Fatal("permuted Derive keys produced identical streams")
	}
	c := Derive(42, 1, 2)
	a2 := Derive(42, 1, 2)
	if c.Uint64() != a2.Uint64() {
		t.Fatal("Derive is not deterministic")
	}
}

func TestDeriveProperty(t *testing.T) {
	// Property: derived streams for different keys never start identically.
	f := func(seed, k1, k2 uint64) bool {
		if k1 == k2 {
			return true
		}
		return Derive(seed, k1).Uint64() != Derive(seed, k2).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Property(t *testing.T) {
	// Property: consecutive outputs are never equal (would indicate a
	// stuck generator state).
	f := func(seed uint64) bool {
		r := New(seed)
		prev := r.Uint64()
		for i := 0; i < 16; i++ {
			cur := r.Uint64()
			if cur == prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
