package cluster

import (
	"testing"
	"testing/quick"

	"github.com/sjtu-epcc/arena/internal/hw"
)

func newCluster(t *testing.T, spec hw.ClusterSpec) *Cluster {
	t.Helper()
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterFullyFree(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if c.TotalFree() != 64 || c.Utilization() != 0 {
		t.Fatalf("fresh cluster: free=%d util=%v", c.TotalFree(), c.Utilization())
	}
	if c.FreeGPUs("A40") != 32 || c.FreeGPUs("A10") != 32 {
		t.Fatal("per-region free counts wrong")
	}
	if c.FreeGPUs("H100") != 0 {
		t.Fatal("unknown region should report 0")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if err := c.Alloc("j1", "A40", 4); err != nil {
		t.Fatal(err)
	}
	typ, n := c.Holding("j1")
	if typ != "A40" || n != 4 {
		t.Fatalf("holding %s/%d", typ, n)
	}
	if c.FreeGPUs("A40") != 28 {
		t.Fatalf("free = %d", c.FreeGPUs("A40"))
	}
	c.Free("j1")
	if c.FreeGPUs("A40") != 32 {
		t.Fatal("free did not restore capacity")
	}
	if _, n := c.Holding("j1"); n != 0 {
		t.Fatal("job still holds after free")
	}
}

func TestDoubleAllocRejected(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if err := c.Alloc("j1", "A40", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc("j1", "A40", 2); err == nil {
		t.Fatal("double alloc should fail")
	}
}

func TestAllocValidation(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if err := c.Alloc("j", "H100", 2); err == nil {
		t.Error("unknown type should fail")
	}
	if err := c.Alloc("j", "A40", 0); err == nil {
		t.Error("zero GPUs should fail")
	}
	if err := c.Alloc("j", "A40", 33); err == nil {
		t.Error("over-capacity should fail")
	}
}

func TestMultiNodeNeedsFreeNodes(t *testing.T) {
	// A40 nodes hold 2 GPUs. Fill the region with singles (best-fit packs
	// two per node), then free one of each pair: every node ends with
	// exactly 1 free GPU — 16 free total, but no multi-node block.
	c := newCluster(t, hw.ClusterA())
	for i := 0; i < 32; i++ {
		if err := c.Alloc(jobID(i), "A40", 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i += 2 {
		c.Free(jobID(i))
	}
	if c.FreeGPUs("A40") != 16 {
		t.Fatalf("free = %d", c.FreeGPUs("A40"))
	}
	if c.CanAlloc("A40", 4) {
		t.Fatal("no fully free nodes: 4-GPU block must be unallocatable")
	}
	if !c.CanAlloc("A40", 1) {
		t.Fatal("single GPUs should still fit")
	}
	if got := c.Fragmentation("A40"); got != 1.0 {
		t.Fatalf("fragmentation = %v, want 1.0", got)
	}
}

func TestBestFitPreservesBigBlocks(t *testing.T) {
	// Allocating 1 GPU twice should pack both on the same node (best fit),
	// keeping other nodes fully free for multi-node jobs.
	c := newCluster(t, hw.ClusterA())
	if err := c.Alloc("a", "A40", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Alloc("b", "A40", 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Fragmentation("A40"); got != 0 {
		t.Fatalf("best fit should leave no fragmentation, got %v", got)
	}
}

func TestLargestAllocatable(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if got := c.LargestAllocatable("A40"); got != 32 {
		t.Fatalf("fresh region largest = %d", got)
	}
	// Consume 17 nodes' worth... Cluster-A A40 region: 16 nodes × 2.
	if err := c.Alloc("big", "A40", 16); err != nil {
		t.Fatal(err)
	}
	if got := c.LargestAllocatable("A40"); got != 16 {
		t.Fatalf("largest after half taken = %d", got)
	}
}

func TestHeterogeneousRegionsIndependent(t *testing.T) {
	c := newCluster(t, hw.ClusterSim())
	if err := c.Alloc("j1", "A100", 16); err != nil {
		t.Fatal(err)
	}
	if c.FreeGPUs("A100") != 320-16 {
		t.Fatal("A100 region accounting wrong")
	}
	if c.FreeGPUs("A40") != 320 {
		t.Fatal("A40 region should be untouched")
	}
}

func TestV100SixteenGPUNodes(t *testing.T) {
	// V100 nodes hold 16 GPUs (Table 1): a 16-GPU job fits on one node.
	c := newCluster(t, hw.ClusterSim())
	if err := c.Alloc("j", "V100", 16); err != nil {
		t.Fatal(err)
	}
	if c.Fragmentation("V100") != 0 {
		t.Fatal("whole-node alloc should not fragment")
	}
}

func TestUtilization(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	if err := c.Alloc("j", "A40", 32); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestFreeUnknownJobNoop(t *testing.T) {
	c := newCluster(t, hw.ClusterA())
	c.Free("ghost")
	if c.TotalFree() != 64 {
		t.Fatal("freeing unknown job changed state")
	}
}

func TestAllocFreeProperty(t *testing.T) {
	// Property: any sequence of alloc/free pairs conserves capacity.
	spec := hw.ClusterA()
	f := func(sizes []uint8) bool {
		c, err := New(spec)
		if err != nil {
			return false
		}
		ids := make([]string, 0, len(sizes))
		for i, raw := range sizes {
			n := 1 << (raw % 5) // 1..16
			id := jobID(i)
			if c.CanAlloc("A40", n) {
				if err := c.Alloc(id, "A40", n); err != nil {
					return false
				}
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			c.Free(id)
		}
		return c.TotalFree() == 64 && c.Fragmentation("A40") == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func jobID(i int) string {
	return "job-" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
}
