package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogCompleteness(t *testing.T) {
	want := []string{"H100", "L20", "A100", "A40", "A10", "V100"}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(want))
	}
	for _, name := range want {
		g, ok := cat[name]
		if !ok {
			t.Fatalf("missing GPU %s", name)
		}
		if g.PeakFLOPS <= 0 || g.MemBandwidth <= 0 || g.MemBytes <= 0 {
			t.Errorf("%s has non-positive specs: %+v", name, g)
		}
		if g.GPUsPerNode < 1 {
			t.Errorf("%s GPUsPerNode = %d", name, g.GPUsPerNode)
		}
		if g.IntraLink.Beta <= 0 || g.InterLink.Beta <= 0 {
			t.Errorf("%s has invalid links", name)
		}
	}
}

func TestCatalogTable1Shapes(t *testing.T) {
	// Table 1 invariants that matter to the experiments.
	h100 := MustLookup("H100")
	if h100.GPUsPerNode != 8 || h100.MemBytes != 80*GiB {
		t.Errorf("H100 spec mismatch: %+v", h100)
	}
	v100 := MustLookup("V100")
	if v100.GPUsPerNode != 16 {
		t.Errorf("V100 should have 16 GPUs/node (Table 1), got %d", v100.GPUsPerNode)
	}
	a10 := MustLookup("A10")
	if a10.MemBytes != 24*GiB {
		t.Errorf("A10 should have 24 GB, got %v", a10.MemBytes/GiB)
	}
	// NVLink-equipped parts (Table 1 dagger) must have faster intra links
	// than the PCIe parts.
	a100, a40 := MustLookup("A100"), MustLookup("A40")
	if a100.IntraLink.Beta <= a40.IntraLink.Beta {
		t.Error("A100 NVLink should beat A40 PCIe")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("TPUv9"); err == nil {
		t.Fatal("expected error for unknown GPU")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup did not panic")
		}
	}()
	MustLookup("nope")
}

func TestTypeNamesCoverCatalog(t *testing.T) {
	names := TypeNames()
	if len(names) != len(Catalog()) {
		t.Fatalf("TypeNames has %d entries, catalog %d", len(names), len(Catalog()))
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Errorf("TypeNames contains unknown %q", n)
		}
	}
}

func TestRooflineRidge(t *testing.T) {
	g := MustLookup("A100")
	ridge := g.RidgeIntensity()
	// Below the ridge: memory-bound, R(I) = I × BW.
	low := g.Roofline(ridge / 10)
	if math.Abs(low-(ridge/10)*g.MemBandwidth)/low > 1e-12 {
		t.Errorf("memory-bound roofline wrong: %v", low)
	}
	// Above the ridge: compute-bound, R(I) = peak.
	if got := g.Roofline(ridge * 10); got != g.PeakFLOPS {
		t.Errorf("compute-bound roofline = %v, want peak", got)
	}
}

func TestRooflineMonotone(t *testing.T) {
	g := MustLookup("A40")
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return g.Roofline(a) <= g.Roofline(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdealKernelTime(t *testing.T) {
	g := MustLookup("A100")
	// Compute-bound op: time = flops/peak.
	flops, bytes := 1e12, 1e6
	want := flops / g.PeakFLOPS
	if got := g.IdealKernelTime(flops, bytes); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("compute-bound time %v, want %v", got, want)
	}
	// Memory-bound op: time = bytes/BW.
	flops, bytes = 1e6, 1e12
	want = bytes / g.MemBandwidth
	if got := g.IdealKernelTime(flops, bytes); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("memory-bound time %v, want %v", got, want)
	}
}

func TestShapeEfficiencyBounds(t *testing.T) {
	g := MustLookup("H100")
	f := func(work float64) bool {
		e := g.ShapeEfficiency(math.Abs(work))
		return e >= 0.25-1e-12 && e <= 0.92+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if g.ShapeEfficiency(1e15) < g.ShapeEfficiency(1e6) {
		t.Error("efficiency should grow with work size")
	}
}

func TestLinkEffBandwidth(t *testing.T) {
	l := NVLink3
	if bw := l.EffBandwidth(1e12); bw < 0.99*l.Beta {
		t.Errorf("huge message should approach saturated bandwidth: %v < %v", bw, l.Beta)
	}
	small := l.EffBandwidth(float64(l.EffCurveBytes))
	if math.Abs(small-l.Beta/2)/l.Beta > 0.01 {
		t.Errorf("half-bandwidth point mismatch: %v", small)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	l := ConnectX5
	prev := 0.0
	for v := 1024.0; v < 1e10; v *= 2 {
		cur := l.TransferTime(v)
		if cur <= prev {
			t.Fatalf("transfer time not monotone at %v bytes", v)
		}
		prev = cur
	}
}

func TestCollectiveTimeSingleWorker(t *testing.T) {
	topo := Topology{GPUType: "A100", Workers: 1}
	d, err := CollectiveTime(AllReduce, topo, 1e9)
	if err != nil || d != 0 {
		t.Fatalf("1-worker all-reduce = %v, %v; want 0", d, err)
	}
}

func TestCollectiveAllReduceTwiceAllGather(t *testing.T) {
	topo := Topology{GPUType: "A100", Workers: 4}
	v := 1e9
	ar := MustCollectiveTime(AllReduce, topo, v)
	ag := MustCollectiveTime(AllGather, topo, v)
	// Ring all-reduce = reduce-scatter + all-gather: ≈ 2× all-gather.
	if math.Abs(ar-2*ag)/ar > 0.05 {
		t.Errorf("all-reduce %v vs 2×all-gather %v", ar, 2*ag)
	}
}

func TestCollectiveCrossNodeSlower(t *testing.T) {
	intra := Topology{GPUType: "A100", Workers: 4, CrossNode: false}
	inter := Topology{GPUType: "A100", Workers: 4, CrossNode: true, NICShare: 1}
	v := 1e9
	if MustCollectiveTime(AllReduce, inter, v) <= MustCollectiveTime(AllReduce, intra, v) {
		t.Error("cross-node collective should be slower than NVLink-local")
	}
}

func TestNICShareSlowdown(t *testing.T) {
	base := Topology{GPUType: "A40", Workers: 8, CrossNode: true, NICShare: 1}
	shared := Topology{GPUType: "A40", Workers: 8, CrossNode: true, NICShare: 2}
	v := 1e9
	tb := MustCollectiveTime(AllReduce, base, v)
	ts := MustCollectiveTime(AllReduce, shared, v)
	if ts <= tb {
		t.Error("NIC sharing must slow the collective")
	}
	if ts > 2.5*tb {
		t.Errorf("share-2 slowdown too large: %v vs %v", ts, tb)
	}
}

func TestCollectiveVolumeMonotone(t *testing.T) {
	topo := Topology{GPUType: "V100", Workers: 8, CrossNode: false}
	prev := -1.0
	for v := 1e3; v <= 1e11; v *= 10 {
		cur := MustCollectiveTime(AllReduce, topo, v)
		if cur <= prev {
			t.Fatalf("collective time not monotone at %v", v)
		}
		prev = cur
	}
}

func TestCollectiveNegativeVolume(t *testing.T) {
	if _, err := CollectiveTime(AllReduce, Topology{GPUType: "A100", Workers: 2}, -5); err == nil {
		t.Fatal("expected error for negative volume")
	}
}

func TestGroupTopology(t *testing.T) {
	a100 := MustLookup("A100") // 4 GPUs/node
	if topo := GroupTopology(a100, 4); topo.CrossNode {
		t.Error("4 GPUs on a 4-GPU node should stay intra-node")
	}
	topo := GroupTopology(a100, 8)
	if !topo.CrossNode || topo.NICShare != 4 {
		t.Errorf("8 GPUs should cross nodes with share 4: %+v", topo)
	}
}

func TestP2PTime(t *testing.T) {
	g := MustLookup("A100")
	intra := P2PTime(g, 1e8, false)
	inter := P2PTime(g, 1e8, true)
	if inter <= intra {
		t.Error("inter-node P2P should be slower")
	}
}

func TestClusterSpecs(t *testing.T) {
	cases := []struct {
		spec ClusterSpec
		gpus int
	}{
		{ClusterA(), 64},
		{ClusterB(), 128 + 256},
		{ClusterSim(), 80*4 + 160*2 + 160*2 + 20*16},
		{ClusterBHomogeneous(), 128},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Errorf("%s: %v", c.spec.Name, err)
		}
		if got := c.spec.TotalGPUs(); got != c.gpus {
			t.Errorf("%s: %d GPUs, want %d", c.spec.Name, got, c.gpus)
		}
	}
	// Paper: the simulated cluster has 1,280 GPUs (§5.1).
	if ClusterSim().TotalGPUs() != 1280 {
		t.Errorf("simulated cluster should have 1280 GPUs, got %d", ClusterSim().TotalGPUs())
	}
}

func TestClusterValidateErrors(t *testing.T) {
	bad := ClusterSpec{Name: "x", Regions: []Region{{GPUType: "nope", Nodes: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown GPU type should fail validation")
	}
	dup := ClusterSpec{Name: "x", Regions: []Region{{GPUType: "A40", Nodes: 1}, {GPUType: "A40", Nodes: 2}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate region should fail validation")
	}
	empty := ClusterSpec{Name: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("empty cluster should fail validation")
	}
}

func TestClusterGPUTypesOrdered(t *testing.T) {
	types := ClusterSim().GPUTypes()
	want := []string{"A100", "A40", "A10", "V100"}
	if len(types) != len(want) {
		t.Fatalf("types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v, want %v", types, want)
		}
	}
}

func TestRegionLookup(t *testing.T) {
	c := ClusterA()
	r, ok := c.Region("A40")
	if !ok || r.Nodes != 16 {
		t.Fatalf("A40 region = %+v, %v", r, ok)
	}
	if _, ok := c.Region("H100"); ok {
		t.Fatal("Cluster-A has no H100 region")
	}
}
