package analysis

// All returns the full determinism-discipline suite in a stable order.
// arena-vet, the repo-sweep test and the shadowcheck compatibility shim
// all run exactly this set, so a finding has one name everywhere.
func All() []*Analyzer {
	return []*Analyzer{
		ClockDiscipline,
		CtxShadow,
		MapOrder,
		RngDiscipline,
		StableSort,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
