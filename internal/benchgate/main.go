// Command benchgate is the CI benchmark-regression gate: it parses `go
// test -bench` output, reduces repeated runs (-count N) to per-benchmark
// medians, and compares them against the wall-clock baselines recorded in
// BENCH_search.json. The tolerance is deliberately generous — shared CI
// runners are noisy, so the gate exists to catch order-of-magnitude
// regressions (a cache that stopped hitting, a fan-out that went serial),
// not single-digit percentage drift.
//
// Usage:
//
//	go test -run XXX -bench 'BenchmarkFullSearch$|BenchmarkBuildPerfDB' \
//	    -benchtime 5x -count 3 . | tee bench-output.txt
//	go run ./internal/benchgate -bench bench-output.txt \
//	    -baseline BENCH_search.json -tolerance 2.5
//
// Exit status 1 means at least one benchmark's median exceeded
// tolerance × baseline; 2 means the inputs could not be interpreted or a
// baseline went unmatched by any run (both must fail CI too — a gate that
// silently matches less than it used to guards less than it claims).
// Local runs benching a subset can pass -require-all-baselines=false.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		benchPath  = flag.String("bench", "", "go test -bench output file (default stdin)")
		basePath   = flag.String("baseline", "BENCH_search.json", "baseline file")
		tolerance  = flag.Float64("tolerance", 2.5, "fail when median > tolerance x baseline")
		requireAll = flag.Bool("require-all-baselines", true, "fail when a baseline matches no benchmark run (guards against silent coverage erosion)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	runs, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	baselines, err := loadBaselines(*basePath)
	if err != nil {
		fatal(err)
	}

	results := compare(runs, baselines, *tolerance)
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark in the input matched any baseline in %s", *basePath))
	}
	failed := false
	fmt.Printf("%-40s %15s %15s %7s  %s\n", "benchmark", "median ns/op", "baseline ns/op", "ratio", "status")
	for _, r := range results {
		status := "ok"
		if r.Failed {
			status = fmt.Sprintf("FAIL (> %.2fx)", *tolerance)
			failed = true
		}
		fmt.Printf("%-40s %15.0f %15.0f %6.2fx  %s\n", r.Name, r.Median, r.Baseline, r.Ratio, status)
	}
	if missing := unmatchedBaselines(runs, baselines); len(missing) > 0 {
		for _, name := range missing {
			fmt.Printf("%-40s %15s %15.0f %7s  baseline not exercised by any run\n", name, "-", baselines[name], "-")
		}
		if *requireAll {
			fatal(fmt.Errorf("%d baseline(s) matched no benchmark run (renamed benchmark or drifted baseline key?); rerun with -require-all-baselines=false if the subset is intentional", len(missing)))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// unmatchedBaselines lists baselines no run exercised, sorted for stable
// output.
func unmatchedBaselines(runs map[string][]float64, baselines map[string]float64) []string {
	var missing []string
	for name := range baselines {
		if _, ok := runs[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}

// parseBenchOutput collects ns/op samples per benchmark name from `go
// test -bench` output, stripping the trailing -GOMAXPROCS suffix so
// repeated -count runs aggregate under one name.
func parseBenchOutput(r io.Reader) (map[string][]float64, error) {
	runs := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-4  <iters>  <ns> ns/op [extra metrics...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs[name] = append(runs[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return runs, nil
}

// baselineFile mirrors the relevant shape of BENCH_search.json: a
// "benchmarks" object whose members hold <variant>_ns_per_op numbers.
type baselineFile struct {
	Benchmarks map[string]map[string]any `json:"benchmarks"`
}

// loadBaselines flattens BENCH_search.json into full benchmark names:
// benchmarks.BenchmarkFullSearch.serial_ns_per_op becomes
// "BenchmarkFullSearch/serial". Underscores in the variant map to dashes
// in the sub-benchmark name (cached_parallel -> cached-parallel).
func loadBaselines(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for bench, members := range bf.Benchmarks {
		for key, val := range members {
			variant, ok := strings.CutSuffix(key, "_ns_per_op")
			if !ok {
				continue
			}
			ns, ok := val.(float64)
			if !ok || ns <= 0 {
				continue
			}
			out[bench+"/"+strings.ReplaceAll(variant, "_", "-")] = ns
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no *_ns_per_op baselines found", path)
	}
	return out, nil
}

// comparison is one benchmark's verdict.
type comparison struct {
	Name             string
	Median, Baseline float64
	Ratio            float64
	Failed           bool
}

// compare reduces each matched benchmark's samples to the median and
// judges it against tolerance × baseline. Benchmarks without a baseline
// (new ones) and baselines without a run (not selected) are skipped.
func compare(runs map[string][]float64, baselines map[string]float64, tolerance float64) []comparison {
	var out []comparison
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baselines[name]
		if !ok {
			continue
		}
		med := median(runs[name])
		out = append(out, comparison{
			Name: name, Median: med, Baseline: base,
			Ratio:  med / base,
			Failed: med > tolerance*base,
		})
	}
	return out
}

// median returns the middle sample (mean of the middle two for even
// counts).
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
