package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzParseTrace drives ParseTrace with arbitrary bytes. The contract
// under fuzzing: never panic; any rejection is a typed *ParseError
// wrapping ErrTraceSyntax (callers match the class with errors.Is); and
// any accepted schedule is sane — finite non-negative times in sorted
// order, SlowStart factors inside (0, 1).
func FuzzParseTrace(f *testing.F) {
	// The documented grammar, one seed per form plus the comment/blank
	// cases the scanner skips.
	f.Add("100 crash A40 0\n")
	f.Add("200 recover A40 0\n")
	f.Add("300 slow A10 2 0.5 600\n")
	f.Add("# comment\n\n  \n100 crash A40 1\n")
	f.Add("0 crash A40 0\n0 recover A40 0\n0 slow A40 0 0.9 1\n")
	// Truncations and field-count mistakes.
	f.Add("100 crash A40\n")
	f.Add("100 slow A10 2 0.5\n")
	f.Add("100 crash A40 0 extra\n")
	f.Add("100\n")
	// Numeric edge cases: NaN sails past `< 0` checks, Inf past range
	// errors, huge literals overflow ParseFloat, and a slow end time can
	// overflow even with finite inputs.
	f.Add("NaN crash A40 0\n")
	f.Add("Inf crash A40 0\n")
	f.Add("1e9999 crash A40 0\n")
	f.Add("100 slow A10 2 NaN 600\n")
	f.Add("100 slow A10 2 0.5 NaN\n")
	f.Add("100 slow A10 2 0.5 Inf\n")
	f.Add("1e308 slow A10 2 0.5 1e308\n")
	f.Add("-1 crash A40 0\n")
	f.Add("100 crash A40 -1\n")
	f.Add("100 explode A40 0\n")
	// A line longer than bufio.Scanner's 64KB token limit: the scanner
	// itself errors, which must still surface as a *ParseError.
	f.Add("# " + strings.Repeat("x", 70_000) + "\n")

	f.Fuzz(func(t *testing.T, input string) {
		sched, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-ParseError failure: %T %v", err, err)
			}
			if !errors.Is(err, ErrTraceSyntax) {
				t.Fatalf("ParseError does not wrap ErrTraceSyntax: %v", err)
			}
			if sched != nil {
				t.Fatalf("rejected input returned a schedule of %d events", len(sched))
			}
			return
		}
		prev := math.Inf(-1)
		for i, ev := range sched {
			if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) || ev.Time < 0 {
				t.Fatalf("event %d accepted with unusable time %g", i, ev.Time)
			}
			if ev.Time < prev {
				t.Fatalf("schedule not sorted: event %d at %g after %g", i, ev.Time, prev)
			}
			prev = ev.Time
			if ev.Node < 0 {
				t.Fatalf("event %d accepted with negative node %d", i, ev.Node)
			}
			if ev.Kind == SlowStart && (math.IsNaN(ev.Factor) || ev.Factor <= 0 || ev.Factor >= 1) {
				t.Fatalf("event %d accepted with straggler factor %g outside (0, 1)", i, ev.Factor)
			}
		}
	})
}
