// Command arena-profile runs the single-device disaggregated profiler and
// compares its end-to-end estimate against direct measurement on the
// simulated testbed — the analogue of the paper artifact's
// runtime_profiler.py with --estimate_e2e vs --measure_with_alpa
// (§A.4.2).
//
// Usage:
//
//	arena-profile -model WRes-1B -batch 256 -gpu A40 -n 4 -s 4
//	arena-profile -model GPT-2.6B -batch 128 -gpu V100 -n 4   # all degrees
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
)

func main() {
	var (
		modelName = flag.String("model", "WRes-1B", "model variant")
		batch     = flag.Int("batch", 256, "global batch size")
		gpu       = flag.String("gpu", "A40", "GPU type")
		n         = flag.Int("n", 4, "allocated GPU count")
		s         = flag.Int("s", 0, "pipeline degree; 0 = all grids")
		seed      = flag.Uint64("seed", 42, "determinism seed")
	)
	flag.Parse()

	g, err := model.BuildClustered(*modelName)
	if err != nil {
		fatal(err)
	}
	spec, err := hw.Lookup(*gpu)
	if err != nil {
		fatal(err)
	}
	eng := exec.NewEngine(*seed)

	fmt.Printf("offline-sampling communication primitives for %s...\n", *gpu)
	ct, err := profiler.OfflineSampleComm(eng, []string{*gpu}, 16)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d (primitive, topology) tables, modeled one-shot cost %.1fh\n\n",
		len(ct.Keys()), ct.OfflineCostSeconds/3600)

	pl := planner.New()
	pr := profiler.New(eng, ct)
	w := model.Workload{Model: *modelName, GlobalBatch: *batch}

	degrees := core.PipelineDegrees(*n, len(g.Ops))
	if *s > 0 {
		degrees = []int{*s}
	}
	fmt.Printf("profiling %s (batch %d) on %dx%s with a single profiling GPU\n\n", *modelName, *batch, *n, *gpu)
	for _, deg := range degrees {
		gp, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: *gpu, N: *n, S: deg})
		if err != nil {
			fatal(err)
		}
		if !gp.Feasible {
			fmt.Printf("s=%d: infeasible\n", deg)
			continue
		}
		est, err := pr.ProfileGridPlan(g, gp)
		if err != nil {
			fatal(err)
		}
		res, err := eng.Evaluate(g, gp.Proxy.Plan, spec, *batch)
		if err != nil {
			fatal(err)
		}
		oracle := exec.DirectMeasureCost(res, gp.Proxy.Plan, pr.Trials)
		errPct := 100 * (est.IterTime - res.IterTime) / res.IterTime
		fmt.Printf("s=%d plan %-24s estimated %.3fs/iter, measured %.3fs/iter (err %+.1f%%)\n",
			deg, gp.Proxy.Plan, est.IterTime, res.IterTime, errPct)
		fmt.Printf("     profiling cost %.1f GPU*s (%d/%d unique ops) vs direct measurement %.1f GPU*s => %.1fx cheaper\n",
			est.ProfileGPUTime, est.UniqueOps, est.TotalOps, oracle, oracle/est.ProfileGPUTime)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arena-profile:", err)
	os.Exit(1)
}
