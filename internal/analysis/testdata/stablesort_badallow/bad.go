package fixture

import "sort"

func reasonless(xs []int) {
	//arena:allow stablesort
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
