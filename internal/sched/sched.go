// Package sched defines the scheduling layer: job state, the policy
// interface, and Arena's generalized event-driven scheduler (§3.5) with
// its priority multi-queue launching, two-dimensional scaling and
// pluggable objectives. Baseline policies (FCFS, Gavel, ElasticFlow, Sia)
// live in the policy subpackage.
//
// A Policy supplies four knowledge models besides its assignment logic:
// the throughput it *perceives* when deciding (DP profiles for SP-aware
// baselines, profiled grid estimates for Arena), the throughput a job
// *actually* achieves once deployed (full-AP for baselines, Arena's
// pruned-search plan for Arena — §5.1: every scheduler executes jobs with
// adaptive parallelism), the ahead-of-time profiling wall time prepended
// to submissions, and the parallelism-search overhead paid at every
// (re)deployment. The simulator consults these models so each scheduler
// lives in exactly the information regime the paper gives it.
package sched

import (
	"github.com/sjtu-epcc/arena/internal/cluster"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/perfdb"
	"github.com/sjtu-epcc/arena/internal/trace"
)

// Alloc is a resource grant: n GPUs of one type (intra-job homogeneity,
// §3.5).
type Alloc struct {
	GPUType string
	N       int
}

// IsZero reports an empty grant.
func (a Alloc) IsZero() bool { return a.N == 0 }

// JobState tracks a job through its lifecycle.
type JobState string

// Lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateFinished JobState = "finished"
	StateDropped  JobState = "dropped"
	// StateFailed marks a job killed by fault injection: its retry budget
	// is exhausted (or recovery is ablated away), so its progress is lost
	// for good. Distinct from StateDropped, which is a deliberate
	// deadline-admission decision.
	StateFailed JobState = "failed"
)

// Job is the scheduler-facing job record.
type Job struct {
	Trace trace.Job
	State JobState

	// SubmittedAt is the effective submission time: trace submission plus
	// the policy's ahead-of-time profiling prepend (§5.1).
	SubmittedAt float64
	// LaunchedAt is the first time the job received resources (<0 = never).
	LaunchedAt float64
	// FinishedAt is set on completion or drop.
	FinishedAt float64

	Alloc            Alloc   // current grant (zero while queued)
	ActualThr        float64 // achieved samples/s under the current grant
	RemainingSamples float64
	// BusyUntil: the job is reconfiguring (AP search, checkpoint-resume)
	// and contributes zero throughput until this time.
	BusyUntil float64

	Resched int // reallocation count (the paper reports 2.29 avg, §5.3)

	// CurPriority is the live priority (promotion lowers it over time).
	CurPriority int

	// Fault-model bookkeeping (populated only by fault-injected runs).

	// Preemptions counts crash evictions suffered; Restarts counts the
	// retry budget consumed; Migrations counts straggler-avoidance moves.
	Preemptions int
	Restarts    int
	Migrations  int
	// NextEligibleAt gates relaunch after a crash: exponential backoff
	// keeps a flapping node from burning the retry budget in one storm.
	NextEligibleAt float64
	// CheckpointRemaining is RemainingSamples at the last durable
	// checkpoint — where a crash rolls the job back to.
	CheckpointRemaining float64
	// Restarting marks that the next launch is a checkpoint restore and
	// must pay the resume overhead on top of the deployment search.
	Restarting bool
	// SlowFactor is the straggler degradation of the current allocation
	// (multiplies achieved throughput; 0 or 1 = healthy).
	SlowFactor float64
}

// Workload is shorthand for the job's (model, batch) pair.
func (j *Job) Workload() model.Workload { return j.Trace.Workload }

// Running reports whether the job currently holds resources.
func (j *Job) Running() bool { return j.State == StateRunning }

// Context is the policy's view of one scheduling round.
type Context struct {
	Now     float64
	Queued  []*Job // submitted, not running; ascending submission order
	Running []*Job
	Cluster *cluster.Cluster
	DB      *perfdb.DB
	// MaxPerJob caps any single job's allocation (the paper's N, §2.3).
	MaxPerJob int
}

// Assignment is a policy's decision for the round.
type Assignment struct {
	// Place maps job ID → target allocation. Queued jobs with a target
	// launch; running jobs with a different target rescale (paying the
	// reconfiguration overhead); a zero Alloc releases resources back to
	// the queue (only meaningful for deadline-mode admission control).
	Place map[string]Alloc
	// Drop lists jobs abandoned as unable to meet their deadline (§5.6).
	Drop []string
	// Migrate lists running jobs to move to a fresh allocation of the
	// *same* shape, paying checkpoint-resume but no new parallelism
	// search — the straggler-routing escape hatch. Ignored for ids that
	// also appear in Place.
	Migrate []string
}

// NewAssignment returns an empty assignment.
func NewAssignment() Assignment {
	return Assignment{Place: map[string]Alloc{}}
}

// Policy is a cluster scheduling policy plus its knowledge models.
type Policy interface {
	Name() string

	// Assign computes this round's decisions.
	Assign(ctx *Context) Assignment

	// PerceivedThr is the throughput the policy believes the workload
	// achieves on n GPUs of the type — the basis of its decisions.
	PerceivedThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64

	// ActualThr is the throughput the job really achieves there (§5.1:
	// execution always uses adaptive parallelism).
	ActualThr(db *perfdb.DB, w model.Workload, gpuType string, n int) float64

	// ProfilePrepend is the ahead-of-time profiling wall time added to
	// the job's submission (§5.1).
	ProfilePrepend(db *perfdb.DB, w model.Workload) float64

	// DeployOverhead is the parallelism-search plus restart time paid
	// when (re)deploying a job on an allocation.
	DeployOverhead(db *perfdb.DB, w model.Workload, gpuType string, n int) float64
}

// CheckpointResume is the state save/restore time charged on top of the
// parallelism search whenever a *running* job is rescaled or migrated
// (§5.8: "checkpoint-resume (<5 minutes)").
const CheckpointResume = 300.0

// BestFeasible returns the allocation maximizing thr(type, n) over the
// policy-perceived table, subject to current free capacity; ok = false
// when nothing feasible fits. Ties prefer fewer GPUs, then the canonical
// type order.
func BestFeasible(ctx *Context, thr func(gpuType string, n int) float64) (Alloc, bool) {
	var best Alloc
	var bestThr float64
	found := false
	for _, typ := range ctx.Cluster.GPUTypes() {
		for n := 1; n <= ctx.MaxPerJob; n *= 2 {
			t := thr(typ, n)
			if t <= 0 || !ctx.Cluster.CanAlloc(typ, n) {
				continue
			}
			better := t > bestThr ||
				(t == bestThr && found && n < best.N)
			if !found || better {
				best, bestThr, found = Alloc{GPUType: typ, N: n}, t, true
			}
		}
	}
	return best, found
}

// MinFeasible returns the cheapest (fewest-GPU) allocation with positive
// perceived throughput under current capacity.
func MinFeasible(ctx *Context, thr func(gpuType string, n int) float64) (Alloc, bool) {
	var best Alloc
	var bestThr float64
	found := false
	for _, typ := range ctx.Cluster.GPUTypes() {
		for n := 1; n <= ctx.MaxPerJob; n *= 2 {
			t := thr(typ, n)
			if t <= 0 || !ctx.Cluster.CanAlloc(typ, n) {
				continue
			}
			if !found || n < best.N || (n == best.N && t > bestThr) {
				best, bestThr, found = Alloc{GPUType: typ, N: n}, t, true
			}
			break // smallest n for this type found
		}
	}
	return best, found
}
