// Package planner implements Arena's load-aware, execution-free parallelism
// planning (§3.3). For each grid (fixed resource and pipeline degree) it:
//
//  1. computes roofline-based operator loads L_i = FLOPs_i / R(I_i) from
//     static model information and hardware specifications only (Eq. 2);
//  2. enumerates the C(O−1, s−1) contiguous stage partitions, assigns each
//     stage GPUs proportional to its load, and normalizes the assignment to
//     powers of two by minimizing the computation-bias metric b_comp, the
//     Euclidean distance to the ideal fractional assignment (Eq. 3);
//  3. selects intra-stage parallelism per stage by minimizing analytic
//     communication cost within memory limits;
//  4. scores each candidate with the communication-load metric l_comm
//     (Eq. 4), deduces the Pareto frontier over (b_comp, l_comm), reduces
//     it when oversized, and picks the proxy plan: minimum computation
//     bias first, then minimum communication load.
//
// Everything here is execution-free: only hardware specs and operator
// shape arithmetic are consulted, never measured latencies.
//
// # Enumeration
//
// Step 2 runs on one of two interchangeable enumerators, both streaming
// into a candidateSink. The default is the incremental prefix DP of
// dp.go: partitions are walked as a tree of boundary choices, per-stage
// fractional shares and the power-of-two assignment DP's rows are keyed
// to the deepest boundary they depend on and computed once per frontier
// extension instead of once per partition, and stage ranges that fit
// device memory at no GPU count prune their whole subtree.
// Planner.Exhaustive selects the reference enumerator that evaluates
// every partition from scratch.
//
// # Pareto reduction
//
// Step 4 likewise has a fast path and a reference. By default PlanGrid
// fuses the reduction into emission: the incremental sweep of
// frontier.go maintains the (b_comp, l_comm) staircase online, rejects
// dominated candidates at O(log F) insertion time without materializing
// them, and queries intra-stage selection lazily — a candidate's
// communication scan stops at the first stage that proves domination.
// Planner.SortedPareto selects the post-hoc reference (pareto.go):
// materialize the population, sort, sweep once. Exact metric ties
// resolve by lexicographic partition rank on both paths, so all four
// enumerator × reduction combinations emit bit-identical GridPlans (the
// stability analysis and proof obligations are spelled out in dp.go,
// frontier.go and docs/ARCHITECTURE.md); the reference flags exist only
// for determinism tests and benchmark baselines.
//
// PlanHetero extends the same partition machinery to mixed GPU pools
// (§6): stages stay internally homogeneous, each pinned to one type with
// capability-proportional GPU shares.
package planner
