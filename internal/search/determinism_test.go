package search

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/sjtu-epcc/arena/internal/core"
	"github.com/sjtu-epcc/arena/internal/evalcache"
	"github.com/sjtu-epcc/arena/internal/exec"
	"github.com/sjtu-epcc/arena/internal/hw"
	"github.com/sjtu-epcc/arena/internal/model"
	"github.com/sjtu-epcc/arena/internal/planner"
	"github.com/sjtu-epcc/arena/internal/profiler"
)

// waitGoroutines polls until the goroutine count returns to the baseline,
// failing the test if worker goroutines outlive their search.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestCachedParallelFullSearchIsDeterministic asserts the tentpole
// invariant: the memoized, parallel search path returns outcomes
// bit-identical to the legacy serial uncached path — same plan, same
// measured result, and the same StageEvals/PlanEvals/SearchTime cost
// accounting.
func TestCachedParallelFullSearchIsDeterministic(t *testing.T) {
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	cache := evalcache.New(eng)
	for _, tc := range []struct {
		model string
		gb, n int
	}{
		{"GPT-1.3B", 128, 4},
		{"GPT-1.3B", 128, 8},
		{"WRes-1B", 256, 8},
		{"MoE-1.3B", 256, 4},
	} {
		g, err := model.BuildClustered(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := FullSearch(eng, g, spec, tc.gb, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		// One shared cache across all cases: cross-(model, n) pollution
		// must be impossible by key construction.
		cached, err := FullSearchOpts(eng, g, spec, tc.gb, tc.n, Options{Cache: cache, Workers: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, cached) {
			t.Errorf("%s n=%d: cached/parallel outcome diverged\nserial: %+v plan %v\ncached: %+v plan %v",
				tc.model, tc.n, serial.Result, serial.Plan, cached.Result, cached.Plan)
		}
		// And again fully warm: every measurement now comes from the memo
		// table.
		warm, err := FullSearchOpts(eng, g, spec, tc.gb, tc.n, Options{Cache: cache, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, warm) {
			t.Errorf("%s n=%d: warm-cache outcome diverged", tc.model, tc.n)
		}
	}
	if s := cache.Stats(); s.StageHits == 0 {
		t.Error("shared cache recorded no stage hits across degrees/counts")
	}
}

// TestCachedPrunedSearchIsDeterministic covers the pruned search and the
// full↔pruned cache sharing of one deployment point.
func TestCachedPrunedSearchIsDeterministic(t *testing.T) {
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	pl := planner.New()
	var gp *planner.GridPlan
	for _, s := range core.PipelineDegrees(8, len(g.Ops)) {
		cand, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: "A40", N: 8, S: s})
		if err != nil {
			t.Fatal(err)
		}
		if cand.Feasible {
			gp = cand
			break
		}
	}
	if gp == nil {
		t.Fatal("no feasible grid plan")
	}

	serial, err := PrunedSearch(eng, g, spec, 128, 8, gp)
	if err != nil {
		t.Fatal(err)
	}

	cache := evalcache.New(eng)
	if _, err := FullSearchOpts(eng, g, spec, 128, 8, Options{Cache: cache, Workers: -1}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	cached, err := PrunedSearchOpts(eng, g, spec, 128, 8, gp, Options{Cache: cache, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, cached) {
		t.Errorf("pruned outcome diverged\nserial: %+v plan %v\ncached: %+v plan %v",
			serial.Result, serial.Plan, cached.Result, cached.Plan)
	}
	after := cache.Stats()
	if after.StageHits <= before.StageHits {
		t.Error("pruned search reused no stage measurements from the full search")
	}
}

// TestFullSearchCancellation covers the tentpole's cancellation contract:
// a cancelled context aborts FullSearchCtx promptly with ctx.Err(), leaks
// no goroutines, and a subsequent uncancelled run on the same cache still
// matches the serial uncached reference bit for bit.
func TestFullSearchCancellation(t *testing.T) {
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	cache := evalcache.New(eng)
	before := runtime.NumGoroutine()

	// Pre-cancelled: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FullSearchCtx(ctx, eng, g, spec, 128, 8, Options{Cache: cache, Workers: -1}); err != context.Canceled {
		t.Fatalf("pre-cancelled full search: err = %v, want context.Canceled", err)
	}

	// Cancelled mid-flight, deterministically: the progress hook fires
	// after the first pipeline degree completes.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	opts := Options{Cache: cache, Workers: -1, Progress: func(e core.Event) {
		if e.Done == 1 {
			cancel2()
		}
	}}
	if _, err := FullSearchCtx(ctx2, eng, g, spec, 128, 8, opts); err != context.Canceled {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, before)

	// The same session state must still produce the serial reference.
	serial, err := FullSearch(eng, g, spec, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FullSearchOpts(eng, g, spec, 128, 8, Options{Cache: cache, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, warm) {
		t.Errorf("post-cancel outcome diverged from serial reference\nserial: %+v plan %v\nwarm:   %+v plan %v",
			serial.Result, serial.Plan, warm.Result, warm.Plan)
	}
}

// TestPrunedSearchCancellation is the pruned-search half of the contract.
func TestPrunedSearchCancellation(t *testing.T) {
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	pl := planner.New()
	var gp *planner.GridPlan
	for _, s := range core.PipelineDegrees(8, len(g.Ops)) {
		cand, err := pl.PlanGrid(g, core.Grid{Workload: w, GPUType: "A40", N: 8, S: s})
		if err != nil {
			t.Fatal(err)
		}
		if cand.Feasible {
			gp = cand
			break
		}
	}
	if gp == nil {
		t.Fatal("no feasible grid plan")
	}

	cache := evalcache.New(eng)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrunedSearchCtx(ctx, eng, g, spec, 128, 8, gp, Options{Cache: cache, Workers: -1}); err != context.Canceled {
		t.Fatalf("pre-cancelled pruned search: err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, before)

	serial, err := PrunedSearch(eng, g, spec, 128, 8, gp)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := PrunedSearchCtx(context.Background(), eng, g, spec, 128, 8, gp, Options{Cache: cache, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, warm) {
		t.Errorf("post-cancel pruned outcome diverged from serial reference")
	}
}

func TestOptionsRejectForeignCache(t *testing.T) {
	eng := exec.NewEngine(42)
	other := exec.NewEngine(7)
	g, err := model.BuildClustered("GPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	_, err = FullSearchOpts(eng, g, hw.MustLookup("A40"), 128, 4, Options{Cache: evalcache.New(other)})
	if err == nil {
		t.Fatal("want error for cache bound to a different engine")
	}
}

// TestSearchPlannerDPParity carries the planner's fast-path/reference
// equivalence — the prefix-DP enumerator and the incremental Pareto
// sweep against their references — through the layers that consume
// GridPlans: profile a workload with each variant, then run the pruned
// search from the best grid of each. Job profiles (estimates and
// retained grid plans) and search outcomes must be deep-equal — the
// whole deployment pipeline may not observe which enumerator or which
// Pareto reduction planned its grids.
func TestSearchPlannerDPParity(t *testing.T) {
	eng := exec.NewEngine(42)
	spec := hw.MustLookup("A40")
	ct, err := profiler.OfflineSampleComm(eng, []string{"A40"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := model.Workload{Model: "GPT-1.3B", GlobalBatch: 128}
	g, err := model.BuildClustered(w.Model)
	if err != nil {
		t.Fatal(err)
	}

	profile := func(pl *planner.Planner) *profiler.JobProfile {
		t.Helper()
		jp, err := profiler.ProfileJobCtx(context.Background(), pl, profiler.New(eng, ct), g, w, []string{"A40"}, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		return jp
	}
	dpPl := planner.New()
	exPl := planner.New()
	exPl.Exhaustive = true
	sortedPl := planner.New()
	sortedPl.SortedPareto = true
	refPl := planner.New()
	refPl.Exhaustive = true
	refPl.SortedPareto = true
	dpJP, exJP := profile(dpPl), profile(exPl)
	for name, jp := range map[string]*profiler.JobProfile{
		"exhaustive":        exJP,
		"sorted-pareto":     profile(sortedPl),
		"exhaustive+sorted": profile(refPl),
	} {
		if !reflect.DeepEqual(dpJP.Estimates, jp.Estimates) {
			t.Fatalf("profiled estimates diverged between default and %s planner", name)
		}
		if !reflect.DeepEqual(dpJP.GridPlans, jp.GridPlans) {
			t.Fatalf("retained grid plans diverged between default and %s planner", name)
		}
	}

	r := core.Resource{GPUType: "A40", N: 8}
	dpGrid, ok := dpJP.BestGrid(r)
	if !ok {
		t.Fatal("no feasible grid")
	}
	exGrid, _ := exJP.BestGrid(r)
	if dpGrid != exGrid {
		t.Fatalf("best grids diverged: %v vs %v", dpGrid, exGrid)
	}
	dpOut, err := PrunedSearch(eng, g, spec, w.GlobalBatch, 8, dpJP.GridPlans[dpGrid])
	if err != nil {
		t.Fatal(err)
	}
	exOut, err := PrunedSearch(eng, g, spec, w.GlobalBatch, 8, exJP.GridPlans[exGrid])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dpOut, exOut) {
		t.Fatalf("pruned search outcomes diverged:\ndp:        %+v\nexhaustive: %+v", dpOut, exOut)
	}
}
